// Guardedbutton: the paper's worked one-shot example (§4.3). A guarded
// button "must be pressed twice, in close, but not too close succession"
// — it renders as "Bu-tt-on" while guarded, a one-shot thread arms it
// after the arming period, and a second one-shot period repaints the
// guard if the user never confirms.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/paradigm"
	"repro/internal/sim"
	"repro/internal/vclock"
)

func main() {
	w := core.NewWorld(core.WorldConfig{Seed: 1})
	defer w.Shutdown()
	reg := core.NewRegistry()

	deleted := 0
	b := paradigm.NewGuardedButton(w, reg, "delete-everything", func(t *sim.Thread) {
		deleted++
		fmt.Printf("%-10s *** ACTION FIRED (delete everything) ***\n", t.Now())
	})
	b.ArmDelay = 200 * core.Millisecond
	b.FireWindow = 1 * core.Second

	click := func(at core.Duration, label string) {
		w.At(core.Time(at), func() {
			w.Spawn("user-click", core.PriorityHigh, func(t *sim.Thread) any {
				fmt.Printf("%-10s click (%s); button shows %q\n", t.Now(), label, b.Appearance())
				b.Click(t)
				return nil
			})
		})
	}
	probe := func(at core.Duration) {
		w.At(core.Time(at), func() {
			fmt.Printf("%-10s button shows %q\n", w.Now(), b.Appearance())
		})
	}

	fmt.Println("-- attempt 1: double-click too fast (second click inside the arming period) --")
	click(0, "first")
	click(100*core.Millisecond, "too close — ignored")
	probe(300 * core.Millisecond)  // armed now, shows "Button"
	probe(1600 * core.Millisecond) // window expired, guard repainted

	fmt.Println()
	w.At(core.Time(1700*core.Millisecond), func() {
		fmt.Println("-- attempt 2: proper confirmation (second click inside the fire window) --")
	})
	click(1700*core.Millisecond, "first")
	click(2200*core.Millisecond, "confirm")

	w.Run(core.At(5 * core.Second))
	fmt.Printf("\nfired %d time(s); repaints after expiry: %d; one-shot sites registered: %d\n",
		deleted, b.Repaints(), reg.Count(paradigm.KindOneShot))
	_ = vclock.Second
}
