// Mailer: the paper's everyday motifs in one small mail client — "forking
// to send a mail message" (§4.1's defer-work list), a sleeper that
// "check[s] for network connection timeout every T seconds" (§4.3), and
// the §5.5 lesson about timeout values rotting when the network changes,
// fixed with an adaptive estimator.
//
// The user queues three messages; each send is deferred to a forked
// worker so the compose window never blocks; the connection keepalive
// sleeper ticks in the background; and halfway through, the "network"
// degrades 25x — watch the fixed-timeout retry counter spin while the
// adaptive sender shrugs.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/paradigm"
	"repro/internal/sim"
	"repro/internal/vclock"
)

func main() {
	w := core.NewWorld(core.WorldConfig{Seed: 4, TimeoutGranularity: core.Millisecond})
	defer w.Shutdown()
	reg := core.NewRegistry()

	// The "network": a server thread that acknowledges sends after a
	// delay that degrades from 8ms to 200ms at t=2s (§5.5's "now-obsolete
	// network architecture").
	var netDelay = 8 * core.Millisecond
	w.At(core.At(2*core.Second), func() {
		netDelay = 200 * core.Millisecond
		fmt.Printf("%-10s [network degrades: RTT 8ms -> 200ms]\n", w.Now())
	})

	smtp := monitor.New(w, "smtp-conn")
	ackCV := smtp.NewCondTimeout("ack", 20*core.Millisecond) // tuned for the fast era
	var awaitingAck, acked bool

	// The server side of the connection.
	w.Spawn("smtp-server", core.PriorityNormal, func(t *sim.Thread) any {
		for {
			smtp.Enter(t)
			for !awaitingAck {
				ackCV.Wait(t)
			}
			smtp.Exit(t)
			t.BlockIO(netDelay) // the round trip
			smtp.Enter(t)
			awaitingAck = false
			acked = true
			ackCV.Notify(t)
			smtp.Exit(t)
		}
	})

	est := paradigm.NewAdaptiveTimeout(20 * core.Millisecond)
	retries := 0

	// send delivers one message over the shared connection, retrying on
	// timeout; adaptive=false uses the hardcoded 20ms forever.
	send := func(t *sim.Thread, msg string, adaptive bool) {
		start := t.Now()
		smtp.Enter(t)
		awaitingAck = true
		acked = false
		ackCV.Notify(t)
		for !acked {
			if adaptive {
				ackCV.SetTimeout(est.Next())
			} else {
				ackCV.SetTimeout(20 * core.Millisecond)
			}
			if ackCV.Wait(t) && !acked {
				retries++
				if adaptive {
					est.ObserveTimeout()
				}
			}
		}
		smtp.Exit(t)
		lat := t.Now().Sub(start)
		if adaptive {
			est.Observe(lat)
		}
		fmt.Printf("%-10s sent %-28q in %-10s (total retries so far: %d)\n", t.Now(), msg, lat, retries)
	}

	// The compose window: a serializer handling user commands; hitting
	// "send" forks the delivery (defer work) so typing never stalls.
	compose := paradigm.NewMBQueue(w, reg, "compose-window", core.PriorityHigh)
	queueMail := func(at core.Duration, msg string, adaptive bool) {
		w.At(core.Time(at), func() {
			compose.EnqueueExternal(200*core.Microsecond, func(t *sim.Thread) {
				fmt.Printf("%-10s compose: queued %q — window free immediately\n", t.Now(), msg)
				paradigm.DeferTo(reg, t, "mail-sender", func(s *sim.Thread) {
					send(s, msg, adaptive)
				})
			})
		})
	}

	// A keepalive sleeper checks the connection every 800ms (§4.3).
	keepalives := 0
	paradigm.StartSleeper(w, reg, "conn-keepalive", core.PriorityLow, 800*core.Millisecond, func(t *sim.Thread) {
		keepalives++
	})

	queueMail(500*core.Millisecond, "status report (fast era)", false)
	queueMail(2500*core.Millisecond, "meeting notes (slow era, fixed)", false)
	queueMail(3500*core.Millisecond, "quarterly review (slow era, adaptive)", true)

	w.At(core.At(6*core.Second), w.Stop)
	w.Run(core.At(core.Minute))

	fmt.Printf("\nkeepalive checks: %d; paradigm census: defer-work=%d sleepers=%d serializers=%d\n",
		keepalives,
		reg.Count(paradigm.KindDeferWork), reg.Count(paradigm.KindSleeper), reg.Count(paradigm.KindSerializer))
	fmt.Println(`the paper (§5.5): "timeouts related to ... expected network server response times`)
	fmt.Println(`are more difficult to specify simply for all time ... dynamically tuning application`)
	fmt.Println(`timeout values based on end-to-end system performance may be a workable solution."`)
	_ = vclock.Second
}
