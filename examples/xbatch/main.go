// Xbatch: the paper's hardest case study (§5.2/§6.3) as a runnable demo.
// An imaging thread feeds paint requests to a higher-priority buffer
// thread (a slack process) that batches and merges them before sending
// them to the X server. Watch what each wait strategy does — and how the
// scheduling quantum secretly clocks the whole pipeline.
package main

import (
	"fmt"

	"repro/internal/paradigm"
	"repro/internal/vclock"
	"repro/internal/xwin"
)

func main() {
	const dur = 10 * vclock.Second

	fmt.Println("== Wait strategy (50ms quantum) ==")
	fmt.Printf("%-22s %10s %12s %12s %12s\n", "strategy", "painted/s", "flushes/s", "merge", "latency")
	var plain, fixed xwin.PipelineResult
	for _, s := range []paradigm.WaitStrategy{
		paradigm.SlackNone, paradigm.SlackYield, paradigm.SlackYieldButNotToMe, paradigm.SlackSleep,
	} {
		cfg := xwin.DefaultPipelineConfig()
		cfg.Strategy = s
		r := xwin.RunPipeline(cfg, 50*vclock.Millisecond, 1, dur)
		fmt.Printf("%-22s %10.0f %12.1f %12.2f %12s\n",
			s.String(), float64(r.Produced)/dur.Seconds(),
			float64(r.Flushes)/dur.Seconds(), r.MergeRatio, r.MeanLatency)
		switch s {
		case paradigm.SlackYield:
			plain = r
		case paradigm.SlackYieldButNotToMe:
			fixed = r
		}
	}
	fmt.Printf("\nYieldButNotToMe vs plain YIELD: %.1fx more imaging throughput\n",
		float64(fixed.Produced)/float64(plain.Produced))
	fmt.Println(`(the paper: "the user experiences about a three-fold performance improvement")`)

	fmt.Println("\n== Quantum sweep (YieldButNotToMe) ==")
	fmt.Printf("%-10s %12s %12s %15s %12s\n", "quantum", "flushes/s", "merge", "max paint gap", "latency")
	for _, q := range []vclock.Duration{
		1 * vclock.Millisecond, 20 * vclock.Millisecond, 50 * vclock.Millisecond, vclock.Second,
	} {
		r := xwin.RunPipeline(xwin.DefaultPipelineConfig(), q, 1, dur)
		fmt.Printf("%-10s %12.1f %12.2f %15s %12s\n",
			q, float64(r.Flushes)/dur.Seconds(), r.MergeRatio, r.MaxPaintGap, r.MeanLatency)
	}
	fmt.Println(`(the paper: "it is the 50 millisecond quantum that is clocking the sending of the X requests")`)
}
