// Quickstart: the Mesa thread model in 80 lines — FORK/JOIN, a monitor
// with a condition variable, priorities and preemption, all on virtual
// time (the program finishes instantly in wall-clock terms but simulates
// seconds of thread behavior, deterministically).
package main

import (
	"fmt"

	"repro/internal/core"
)

func main() {
	w := core.NewWorld(core.WorldConfig{Seed: 42})
	defer w.Shutdown()

	// A monitor-protected queue with a condition variable, exactly the
	// §2 model: WAIT in a loop, NOTIFY on state change.
	mu := core.NewMonitor(w, "queue")
	nonEmpty := mu.NewCond("non-empty")
	var queue []string

	w.Spawn("consumer", core.PriorityNormal, func(t *core.Thread) any {
		for received := 0; received < 3; received++ {
			mu.Enter(t)
			for len(queue) == 0 {
				nonEmpty.Wait(t) // WHILE, never IF (§5.3)
			}
			msg := queue[0]
			queue = queue[1:]
			mu.Exit(t)
			fmt.Printf("%-10s consumer got %q\n", t.Now(), msg)
		}
		return nil
	})

	w.Spawn("producer", core.PriorityNormal, func(t *core.Thread) any {
		for _, msg := range []string{"defer", "work", "freely"} {
			t.Compute(100 * core.Millisecond) // simulate building the message
			mu.Enter(t)
			queue = append(queue, msg)
			nonEmpty.Notify(t)
			mu.Exit(t)
		}

		// FORK a child, do something else, JOIN it for its result.
		child := t.Fork("squarer", func(c *core.Thread) any {
			c.Compute(50 * core.Millisecond)
			return 21 * 2
		})
		t.Compute(10 * core.Millisecond)
		result, err := t.Join(child)
		fmt.Printf("%-10s producer joined child: %v (err=%v)\n", t.Now(), result, err)

		// A higher-priority thread preempts immediately when forked.
		t.ForkPri("urgent", core.PriorityHigh, func(c *core.Thread) any {
			fmt.Printf("%-10s urgent work preempted the producer\n", c.Now())
			return nil
		}).Detach()
		fmt.Printf("%-10s producer resumes after the urgent work\n", t.Now())
		return nil
	})

	outcome := w.Run(core.At(10 * core.Second))
	fmt.Printf("%-10s simulation ended: %v\n", w.Now(), outcome)
}
