// Rejuvenation: the §4.5 paradigm in action. An input event dispatcher
// makes unforked callbacks to client code — fast, but one bad callback
// kills it. ("This thread is in trouble. Ok, let's make two of them!")
// A task-rejuvenating fork keeps a fresh copy of the dispatcher running
// after every uncaught error, so the editor keeps responding even with a
// client that crashes on every 10th event.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/paradigm"
	"repro/internal/sim"
	"repro/internal/vclock"
)

func main() {
	w := core.NewWorld(core.WorldConfig{Seed: 3})
	defer w.Shutdown()
	reg := core.NewRegistry()

	events := paradigm.NewDeviceQueue(w, "events")
	dispatched := 0
	crashes := 0

	// The client callback: buggy — panics on every 10th event.
	callback := func(t *sim.Thread, ev int) {
		t.Compute(300 * core.Microsecond)
		if ev%10 == 9 {
			panic(fmt.Sprintf("client bug handling event %d", ev))
		}
		dispatched++
	}

	// The dispatcher runs the callbacks unforked (they are on the
	// critical path and usually very short) under task rejuvenation.
	svc := paradigm.StartService(w, reg, "event-dispatcher", core.PriorityHigh, 100,
		func(t *sim.Thread) {
			for {
				ev, ok := events.Get(t)
				if !ok {
					return
				}
				callback(t, ev.(int)) // unforked: an error kills this thread
			}
		},
		func(restart int, cause error) {
			crashes++
			fmt.Printf("%-10s dispatcher died (%v); forked copy #%d\n", w.Now(), cause, restart)
		})

	// 50 events, one every 20ms.
	for i := 0; i < 50; i++ {
		i := i
		w.At(core.Time(vclock.Duration(i)*20*core.Millisecond), func() { events.Push(i) })
	}
	w.At(core.At(2*core.Second), func() { w.Stop() })
	w.Run(core.At(core.Minute))

	fmt.Printf("\nevents dispatched: %d/50 (the 5 crashing events die with their incarnation)\n", dispatched)
	fmt.Printf("dispatcher deaths: %d, restarts: %d, still alive: %v\n",
		crashes, svc.Restarts(), svc.Alive())
	fmt.Printf("paradigm census : task rejuvenation sites = %d\n", reg.Count(paradigm.KindTaskRejuvenate))
	fmt.Println("\nthe paper: task rejuvenation \"adds significantly to the robustness of our systems\"")
	fmt.Println("but \"its ability to mask underlying design problems suggests that it be used with caution\".")
}
