// Editor: an interactive text editor's input path built from the paper's
// paradigms — a keyboard device, the high-priority Notifier (§4.1's
// "critical thread [that] forks to defer almost any work at all"), an
// MBQueue serialization context (§4.6), and a work-deferring echo fork
// per keystroke. It types a sentence and reports the user-visible
// keystroke-to-echo latency, the number the paper's authors cared about
// most ("the time between when a key is pressed and the corresponding
// glyph is echoed to a window is very important").
package main

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/paradigm"
	"repro/internal/sim"
	"repro/internal/vclock"
)

type keystroke struct {
	r       rune
	pressed core.Time
}

func main() {
	w := core.NewWorld(core.WorldConfig{Seed: 7})
	defer w.Shutdown()
	reg := core.NewRegistry()

	keyboard := paradigm.NewDeviceQueue(w, "keyboard")
	editorCtx := paradigm.NewMBQueue(w, reg, "editor-context", core.PriorityNormal)

	var screen []rune
	var latencies []core.Duration

	// A background task competing for the CPU, so the latencies are not
	// trivially zero: repagination at low priority.
	w.Spawn("repaginator", core.PriorityBackground, func(t *core.Thread) any {
		for {
			t.Compute(30 * core.Millisecond)
			t.Sleep(50 * core.Millisecond)
		}
	})

	// The Notifier: highest priority, does almost nothing itself — it
	// hands each event to the editor's serialization context, where the
	// handler forks the actual echo work.
	w.Spawn("Notifier", core.PriorityInterrupt, func(t *core.Thread) any {
		for {
			ev, ok := keyboard.Get(t)
			if !ok {
				editorCtx.Close()
				return nil
			}
			ks := ev.(keystroke)
			editorCtx.Enqueue(t, 50*core.Microsecond, func(h *sim.Thread) {
				// Serialized: update the document model...
				h.Compute(200 * core.Microsecond)
				screen = append(screen, ks.r)
				// ...and defer the glyph painting to a forked worker
				// (§4.1: work deferrers are introduced freely).
				paradigm.DeferTo(reg, h, "echo-painter", func(p *sim.Thread) {
					p.Compute(1500 * core.Microsecond) // rasterize + blit
					latencies = append(latencies, p.Now().Sub(ks.pressed))
				})
			})
		}
	})

	// Type a sentence at ~8 characters per second.
	text := "the quick brown fox jumps over the lazy dog"
	for i, r := range text {
		r := r
		at := core.Time(vclock.Duration(i) * 125 * core.Millisecond)
		w.At(at, func() {
			keyboard.Push(keystroke{r: r, pressed: w.Now()})
		})
	}
	w.At(core.At(7*core.Second), func() { w.Stop() })
	w.Run(core.At(vclock.Minute))

	fmt.Printf("typed   : %q\n", text)
	fmt.Printf("screen  : %q\n", string(screen))
	if string(screen) != text {
		fmt.Println("ERROR: the serializer lost or reordered keystrokes!")
		return
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) core.Duration {
		if len(latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(latencies)-1))
		return latencies[i]
	}
	fmt.Printf("echoes  : %d/%d\n", len(latencies), len(text))
	fmt.Printf("latency : p50=%s p90=%s max=%s\n", pct(0.5), pct(0.9), pct(1.0))
	fmt.Printf("census  : defer-work sites=%d serializers=%d\n",
		reg.Count(paradigm.KindDeferWork), reg.Count(paradigm.KindSerializer))
}
