// Timeline: see the §5.2 bug with your own eyes. The paper's authors
// found it by staring at microscopic event histories ("even after a year
// of looking at the same 100 millisecond event histories we are seeing
// new things in them"); this example renders exactly that view for the
// X-server pipeline under the broken plain YIELD and under
// YieldButNotToMe.
//
// In the YIELD timeline the buffer thread (high priority) and the imaging
// thread alternate in a tight ping-pong — every paint request makes a
// full round trip, nothing merges. In the YieldButNotToMe timeline the
// imaging thread owns long runs of the processor and the buffer thread
// wakes once per quantum to flush a merged batch.
package main

import (
	"fmt"

	"repro/internal/paradigm"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vclock"
	"repro/internal/xwin"
)

func show(strategy paradigm.WaitStrategy) {
	var buf trace.Buffer
	w := sim.NewWorld(sim.Config{Seed: 1, Trace: &buf})
	defer w.Shutdown()
	reg := paradigm.NewRegistry()
	srv := xwin.NewServer(w)
	cfg := xwin.DefaultPipelineConfig()
	cfg.Strategy = strategy
	p := xwin.StartPipeline(w, reg, srv, cfg)
	w.Run(vclock.Time(500 * vclock.Millisecond))

	names := make(map[int32]string)
	for _, th := range w.Threads() {
		names[th.ID()] = th.Name()
	}
	tl := stats.Timeline{
		From:  vclock.Time(200 * vclock.Millisecond),
		To:    vclock.Time(320 * vclock.Millisecond),
		Width: 96,
	}
	fmt.Printf("=== %s ===  (flushes so far: %d, merge ratio %.2f)\n",
		strategy, srv.Flushes(), p.MergeRatio())
	fmt.Print(tl.Render(trace.Trace{Events: buf.Events, Names: names}))
	fmt.Println()
}

func main() {
	show(paradigm.SlackYield)
	show(paradigm.SlackYieldButNotToMe)
	fmt.Println(`the paper: "Most of the time the image thread is the thread favored with the`)
	fmt.Println(`extra cycles and there is a big improvement in the system's perceived performance."`)
}
