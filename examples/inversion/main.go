// Inversion: the §6.2 stable priority inversion, live. A low-priority
// thread holds a lock a high-priority thread needs, while a
// middle-priority CPU hog keeps the holder off the processor. Watch the
// three cures: nothing (stable inversion), PCR's SystemDaemon (random
// timeslice donations), and priority inheritance (the paper's §7 future
// work, implemented here).
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/vclock"
)

func scenario(name string, daemon, inheritance bool) {
	w := core.NewWorld(core.WorldConfig{Seed: 9, SystemDaemon: daemon})
	defer w.Shutdown()
	m := monitor.NewWithOptions(w, "shared-resource", monitor.Options{PriorityInheritance: inheritance})

	w.Spawn("lo-holder(pri 3)", core.PriorityLow, func(t *sim.Thread) any {
		m.Enter(t)
		t.Compute(20 * core.Millisecond) // 20ms critical section
		m.Exit(t)
		return nil
	})
	start := core.Time(core.Millisecond)
	var acquired core.Time
	w.At(start, func() {
		w.Spawn("mid-hog(pri 4)", core.PriorityNormal, func(t *sim.Thread) any {
			for {
				t.Compute(10 * core.Millisecond)
			}
		})
		w.Spawn("hi-waiter(pri 5)", core.PriorityHigh, func(t *sim.Thread) any {
			m.Enter(t)
			acquired = t.Now()
			m.Exit(t)
			w.Stop()
			return nil
		})
	})
	w.Run(core.At(10 * core.Second))
	if acquired == 0 {
		fmt.Printf("%-38s hi-waiter NEVER acquired the lock (10s horizon)\n", name+":")
		return
	}
	fmt.Printf("%-38s hi-waiter acquired after %s\n", name+":", acquired.Sub(start))
}

func main() {
	fmt.Println("A low-priority thread holds a lock for 20ms; a middle-priority hog owns the CPU;")
	fmt.Println("a high-priority thread wants the lock. (\"The problem is not hypothetical\" — §6.2)")
	fmt.Println()
	scenario("strict priority, no workarounds", false, false)
	scenario("SystemDaemon random donation (PCR)", true, false)
	scenario("priority inheritance (§7 future work)", false, true)
	fmt.Println()
	fmt.Println("PCR shipped the SystemDaemon and metalock donation instead of inheritance, at the")
	fmt.Println("price the paper laments: \"the thread model is incompletely specified with respect")
	fmt.Println("to priorities, adversely affecting our ability to reason about existing code\".")
	_ = vclock.Second
}
