// Package repro's benchmark harness regenerates every table and figure of
// "Using Threads in Interactive Systems: A Case Study" (one benchmark per
// artifact; see DESIGN.md §3 for the experiment index) and measures the
// simulator's own throughput. Run:
//
//	go test -bench=. -benchmem
//
// Each BenchmarkTableN/BenchmarkFigX iteration performs one full
// regeneration at the quick (10 s virtual window) setting; the reported
// ns/op is the wall-clock cost of reproducing that artifact.
package repro

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/experiments"
	"repro/internal/monitor"
	"repro/internal/paradigm"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vclock"
	"repro/internal/workload"
	"repro/internal/xwin"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := e.Run(experiments.Config{Quick: true, Seed: 1})
		if len(r.Tables) == 0 {
			b.Fatalf("%s produced no tables", id)
		}
	}
}

// The paper's four tables.

func BenchmarkTable1(b *testing.B) { benchExperiment(b, "T1") }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "T2") }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "T3") }
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "T4") }

// The paper's prose-reported results ("figures" F1-F8; DESIGN.md §3).

func BenchmarkFigExecIntervals(b *testing.B) { benchExperiment(b, "F1") }
func BenchmarkFigPriorities(b *testing.B)    { benchExperiment(b, "F2") }
func BenchmarkFigSlack(b *testing.B)         { benchExperiment(b, "F3") }
func BenchmarkFigQuantum(b *testing.B)       { benchExperiment(b, "F4") }
func BenchmarkFigSpurious(b *testing.B)      { benchExperiment(b, "F5") }
func BenchmarkFigInversion(b *testing.B)     { benchExperiment(b, "F6") }
func BenchmarkFigXlib(b *testing.B)          { benchExperiment(b, "F7") }
func BenchmarkFigMistakes(b *testing.B)      { benchExperiment(b, "F8") }

// The two §7 future-work investigations the paper called for.

func BenchmarkFigInheritance(b *testing.B) { benchExperiment(b, "F9") }
func BenchmarkFigAdaptive(b *testing.B)    { benchExperiment(b, "F10") }

// Individual Table 1-3 rows, for quick per-benchmark iteration: e.g.
//
//	go test -bench='BenchmarkWorkload/Cedar/Keyboard'
func BenchmarkWorkload(b *testing.B) {
	rc := workload.DefaultRunConfig()
	rc.Window = 10 * vclock.Second
	for _, bench := range workload.AllBenchmarks() {
		bench := bench
		b.Run(bench.System+"/"+bench.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r := workload.Run(bench, rc)
				if r.Analysis.MLEnters == 0 {
					b.Fatal("benchmark produced no monitor traffic")
				}
			}
		})
	}
}

// Ablations of the §5.2 pipeline: what each design ingredient buys.
func BenchmarkSlackAblation(b *testing.B) {
	cases := []struct {
		name     string
		strategy paradigm.WaitStrategy
		quantum  vclock.Duration
	}{
		{"NoSlack", paradigm.SlackNone, 50 * vclock.Millisecond},
		{"PlainYield", paradigm.SlackYield, 50 * vclock.Millisecond},
		{"YieldButNotToMe", paradigm.SlackYieldButNotToMe, 50 * vclock.Millisecond},
		{"YieldButNotToMe-1msQuantum", paradigm.SlackYieldButNotToMe, vclock.Millisecond},
		{"YieldButNotToMe-1sQuantum", paradigm.SlackYieldButNotToMe, vclock.Second},
		{"Sleep", paradigm.SlackSleep, 50 * vclock.Millisecond},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			var produced int
			for i := 0; i < b.N; i++ {
				cfg := xwin.DefaultPipelineConfig()
				cfg.Strategy = c.strategy
				r := xwin.RunPipeline(cfg, c.quantum, 1, 5*vclock.Second)
				produced = r.Produced
			}
			b.ReportMetric(float64(produced)/5, "painted/vsec")
		})
	}
}

// Simulator micro-benchmarks: the cost of the discrete-event kernel
// itself, in wall-clock terms.

// BenchmarkSimContextSwitch measures one full block/wake/switch cycle
// between two threads.
func BenchmarkSimContextSwitch(b *testing.B) {
	w := sim.NewWorld(sim.Config{SwitchCost: -1, TimeoutGranularity: 1})
	defer w.Shutdown()
	m := monitor.NewWithOptions(w, "mu", monitor.Options{LockCost: -1, NotifyCost: -1, WaitCost: -1})
	cv := m.NewCond("cv")
	stop := false
	for _, name := range []string{"ping", "pong"} {
		w.Spawn(name, sim.PriorityNormal, func(t *sim.Thread) any {
			m.Enter(t)
			for !stop {
				cv.Notify(t)
				cv.Wait(t)
				// Advance virtual time so each Run horizon terminates
				// (a zero-cost ping-pong would spin forever inside one
				// virtual instant).
				m.Exit(t)
				t.Compute(vclock.Microsecond)
				m.Enter(t)
			}
			cv.Notify(t)
			m.Exit(t)
			return nil
		})
	}
	horizon := vclock.Time(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// ~one notify/wait/switch round trip per iteration (each cycle
		// consumes 2µs of virtual time across the two threads).
		horizon = horizon.Add(2 * vclock.Microsecond)
		w.Run(horizon)
	}
	b.StopTimer()
	stop = true
}

// BenchmarkSimForkJoin measures creating, scheduling, completing and
// joining one thread.
func BenchmarkSimForkJoin(b *testing.B) {
	w := sim.NewWorld(sim.Config{SwitchCost: -1, TimeoutGranularity: 1})
	defer w.Shutdown()
	done := make(chan struct{})
	n := b.N
	b.ResetTimer()
	w.Spawn("parent", sim.PriorityNormal, func(t *sim.Thread) any {
		for i := 0; i < n; i++ {
			c := t.Fork("child", func(c *sim.Thread) any { return nil })
			t.Join(c)
		}
		close(done)
		return nil
	})
	w.Run(vclock.Never - 1)
	<-done
}

// BenchmarkSimMonitorEnterExit measures an uncontended monitor section.
func BenchmarkSimMonitorEnterExit(b *testing.B) {
	w := sim.NewWorld(sim.Config{SwitchCost: -1, TimeoutGranularity: 1})
	defer w.Shutdown()
	m := monitor.NewWithOptions(w, "mu", monitor.Options{LockCost: -1, NotifyCost: -1, WaitCost: -1})
	n := b.N
	b.ResetTimer()
	w.Spawn("worker", sim.PriorityNormal, func(t *sim.Thread) any {
		for i := 0; i < n; i++ {
			m.Enter(t)
			m.Exit(t)
		}
		return nil
	})
	w.Run(vclock.Never - 1)
}

// BenchmarkSimEventThroughput measures raw timer-event processing.
func BenchmarkSimEventThroughput(b *testing.B) {
	w := sim.NewWorld(sim.Config{SwitchCost: -1, TimeoutGranularity: 1})
	defer w.Shutdown()
	n := b.N
	fired := 0
	b.ResetTimer()
	var tick func()
	tick = func() {
		fired++
		if fired < n {
			w.After(vclock.Microsecond, tick)
		}
	}
	w.After(vclock.Microsecond, tick)
	w.Run(vclock.Never - 1)
	if fired != n {
		b.Fatalf("fired %d of %d", fired, n)
	}
}

func BenchmarkFigMultiprocessor(b *testing.B) { benchExperiment(b, "F11") }

// Ablation: the §6.2 inversion under each remedy. The reported metric is
// the high-priority thread's acquisition delay in virtual milliseconds.
func BenchmarkInversionAblation(b *testing.B) {
	cases := []struct {
		name                string
		daemon, inheritance bool
	}{
		{"None", false, false},
		{"SystemDaemon", true, false},
		{"Inheritance", false, true},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			var delay vclock.Duration
			for i := 0; i < b.N; i++ {
				w := sim.NewWorld(sim.Config{Seed: 9, SystemDaemon: c.daemon})
				m := monitor.NewWithOptions(w, "mu", monitor.Options{PriorityInheritance: c.inheritance})
				var acquired vclock.Time
				w.Spawn("lo", sim.PriorityLow, func(t *sim.Thread) any {
					m.Enter(t)
					t.Compute(20 * vclock.Millisecond)
					m.Exit(t)
					return nil
				})
				start := vclock.Time(vclock.Millisecond)
				w.At(start, func() {
					w.Spawn("hog", sim.PriorityNormal, func(t *sim.Thread) any {
						for {
							t.Compute(10 * vclock.Millisecond)
						}
					})
					w.Spawn("hi", sim.PriorityHigh, func(t *sim.Thread) any {
						m.Enter(t)
						acquired = t.Now()
						m.Exit(t)
						w.Stop()
						return nil
					})
				})
				w.Run(vclock.Time(10 * vclock.Second))
				if acquired == 0 {
					delay = 10 * vclock.Second
				} else {
					delay = acquired.Sub(start)
				}
				w.Shutdown()
			}
			b.ReportMetric(delay.Millis(), "vms-to-acquire")
		})
	}
}

// Ablation: the §6.1 NOTIFY fix's effect on wasted scheduler work.
func BenchmarkNotifyFixAblation(b *testing.B) {
	for _, deferFix := range []bool{false, true} {
		deferFix := deferFix
		name := "WakeAtNotify"
		if deferFix {
			name = "DeferToExit"
		}
		b.Run(name, func(b *testing.B) {
			var switches int
			for i := 0; i < b.N; i++ {
				var buf trace.Buffer
				w := sim.NewWorld(sim.Config{Trace: &buf, Seed: 1})
				m := monitor.NewWithOptions(w, "mu", monitor.Options{DeferNotifyReschedule: deferFix})
				cv := m.NewCond("cv")
				items := 0
				w.Spawn("hi", sim.PriorityHigh, func(t *sim.Thread) any {
					for n := 0; n < 200; n++ {
						m.Enter(t)
						for items == 0 {
							cv.Wait(t)
						}
						items--
						m.Exit(t)
					}
					w.Stop()
					return nil
				})
				w.Spawn("lo", sim.PriorityLow, func(t *sim.Thread) any {
					for {
						t.Compute(200 * vclock.Microsecond)
						m.Enter(t)
						items++
						cv.Notify(t)
						t.Compute(100 * vclock.Microsecond)
						m.Exit(t)
					}
				})
				w.Run(vclock.Time(vclock.Minute))
				switches = 0
				for _, ev := range buf.Events {
					if ev.Kind == trace.KindSwitch && ev.Thread != trace.NoThread {
						switches++
					}
				}
				w.Shutdown()
			}
			b.ReportMetric(float64(switches), "switches/200-notifies")
		})
	}
}

func BenchmarkFigEchoLatency(b *testing.B) { benchExperiment(b, "F12") }

// The parallel experiment harness: one full regeneration of every
// registered artifact per iteration, under increasing worker-pool sizes. The
// parallel=1 row is the old serial harness; the speedup of the larger
// rows is the harness's whole point (the experiments share nothing, so
// the sweep should scale until it runs out of cores).
func BenchmarkRunAll(b *testing.B) {
	widths := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p > 4 {
		widths = append(widths, p)
	}
	for _, par := range widths {
		par := par
		b.Run(fmt.Sprintf("parallel=%d", par), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				outs := experiments.RunAll(experiments.Config{Quick: true, Seed: 1}, par)
				if want := len(experiments.All()); len(outs) != want {
					b.Fatalf("got %d outcomes, want %d", len(outs), want)
				}
				var events int64
				for _, o := range outs {
					events += o.Metrics.Events
				}
				if events == 0 {
					b.Fatal("harness observed no simulator events")
				}
			}
		})
	}
}

// BenchmarkRunAllVerify measures the -verify mode: every experiment run
// twice, concurrently with itself, plus the output diff.
func BenchmarkRunAllVerify(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		outs := experiments.RunWith(experiments.Config{Quick: true, Seed: 1},
			experiments.Options{Verify: true})
		for _, o := range outs {
			if o.Mismatch {
				b.Fatalf("%s nondeterministic", o.Report.ID)
			}
		}
	}
}
