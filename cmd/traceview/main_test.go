package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
	"repro/internal/vclock"
)

func writeTrace(t *testing.T) string {
	t.Helper()
	events := []trace.Event{
		{Time: 0, Kind: trace.KindFork, Thread: trace.NoThread, Arg: 1, Aux: 4},
		{Time: 0, Kind: trace.KindSwitch, Thread: 1, Arg: trace.NoThread, Aux: 0},
		{Time: vclock.Time(10 * vclock.Millisecond), Kind: trace.KindMLEnter, Thread: 1, Arg: 7},
		{Time: vclock.Time(20 * vclock.Millisecond), Kind: trace.KindExit, Thread: 1},
		{Time: vclock.Time(20 * vclock.Millisecond), Kind: trace.KindSwitch, Thread: trace.NoThread, Arg: 1, Aux: 0},
	}
	path := filepath.Join(t.TempDir(), "t.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := trace.Write(f, events); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSummaryAndDump(t *testing.T) {
	path := writeTrace(t)
	if err := run(path, mode{}, 0, 0); err != nil {
		t.Fatalf("summary: %v", err)
	}
	if err := run(path, mode{dump: true}, 0, 0); err != nil {
		t.Fatalf("dump: %v", err)
	}
	if err := run(path, mode{dump: true}, 5*time.Millisecond, 15*time.Millisecond); err != nil {
		t.Fatalf("windowed dump: %v", err)
	}
	if err := run(path, mode{timeline: true, width: 40, rows: 5}, 0, 0); err != nil {
		t.Fatalf("timeline: %v", err)
	}
	svgPath := filepath.Join(t.TempDir(), "out.svg")
	if err := run(path, mode{svg: svgPath, rows: 5}, 0, 0); err != nil {
		t.Fatalf("svg: %v", err)
	}
	b, err := os.ReadFile(svgPath)
	if err != nil || !strings.Contains(string(b), "<svg") {
		t.Fatalf("svg output bad: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(filepath.Join(t.TempDir(), "missing.bin"), mode{}, 0, 0); err == nil {
		t.Fatal("expected error for missing file")
	}
	bad := filepath.Join(t.TempDir(), "bad.bin")
	if err := os.WriteFile(bad, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(bad, mode{}, 0, 0); err == nil {
		t.Fatal("expected error for garbage trace")
	}
}

// TestCLI exercises the cliflag-based flag surface end to end.
func TestCLI(t *testing.T) {
	path := writeTrace(t)
	cases := []struct {
		name     string
		args     []string
		wantCode int
		wantOut  string // substring of stdout
		wantErr  string // substring of stderr
	}{
		{"summary", []string{path}, 0, "thread switches/sec", ""},
		{"dump", []string{"-dump", path}, 0, "", ""},
		{"missing operand", []string{}, 2, "", "usage: traceview"},
		{"extra operand", []string{path, "extra"}, 2, "", "usage: traceview"},
		{"unknown flag", []string{"-bogus", path}, 2, "", "flag provided but not defined"},
		{"narrow timeline rejected", []string{"-timeline", "-width", "4", path}, 2, "", "-width 4: the timeline needs at least 8 columns"},
		{"zero rows rejected", []string{"-timeline", "-rows", "0", path}, 2, "", "-rows 0: the timeline needs at least one row"},
		{"missing file", []string{"nope.bin"}, 1, "", "traceview: "},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			code := cli(tc.args, &stdout, &stderr)
			if code != tc.wantCode {
				t.Fatalf("cli(%v) = %d, want %d (stderr: %s)", tc.args, code, tc.wantCode, stderr.String())
			}
			if tc.wantOut != "" && !strings.Contains(stdout.String(), tc.wantOut) {
				t.Errorf("stdout missing %q:\n%s", tc.wantOut, stdout.String())
			}
			if tc.wantErr != "" && !strings.Contains(stderr.String(), tc.wantErr) {
				t.Errorf("stderr missing %q:\n%s", tc.wantErr, stderr.String())
			}
		})
	}
}
