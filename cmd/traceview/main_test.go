package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
	"repro/internal/vclock"
)

func writeTrace(t *testing.T) string {
	t.Helper()
	events := []trace.Event{
		{Time: 0, Kind: trace.KindFork, Thread: trace.NoThread, Arg: 1, Aux: 4},
		{Time: 0, Kind: trace.KindSwitch, Thread: 1, Arg: trace.NoThread, Aux: 0},
		{Time: vclock.Time(10 * vclock.Millisecond), Kind: trace.KindMLEnter, Thread: 1, Arg: 7},
		{Time: vclock.Time(20 * vclock.Millisecond), Kind: trace.KindExit, Thread: 1},
		{Time: vclock.Time(20 * vclock.Millisecond), Kind: trace.KindSwitch, Thread: trace.NoThread, Arg: 1, Aux: 0},
	}
	path := filepath.Join(t.TempDir(), "t.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := trace.Write(f, events); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSummaryAndDump(t *testing.T) {
	path := writeTrace(t)
	if err := run(path, mode{}, 0, 0); err != nil {
		t.Fatalf("summary: %v", err)
	}
	if err := run(path, mode{dump: true}, 0, 0); err != nil {
		t.Fatalf("dump: %v", err)
	}
	if err := run(path, mode{dump: true}, 5*time.Millisecond, 15*time.Millisecond); err != nil {
		t.Fatalf("windowed dump: %v", err)
	}
	if err := run(path, mode{timeline: true, width: 40, rows: 5}, 0, 0); err != nil {
		t.Fatalf("timeline: %v", err)
	}
	svgPath := filepath.Join(t.TempDir(), "out.svg")
	if err := run(path, mode{svg: svgPath, rows: 5}, 0, 0); err != nil {
		t.Fatalf("svg: %v", err)
	}
	b, err := os.ReadFile(svgPath)
	if err != nil || !strings.Contains(string(b), "<svg") {
		t.Fatalf("svg output bad: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(filepath.Join(t.TempDir(), "missing.bin"), mode{}, 0, 0); err == nil {
		t.Fatal("expected error for missing file")
	}
	bad := filepath.Join(t.TempDir(), "bad.bin")
	if err := os.WriteFile(bad, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(bad, mode{}, 0, 0); err == nil {
		t.Fatal("expected error for garbage trace")
	}
}
