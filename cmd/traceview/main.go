// Command traceview inspects binary thread-event traces written by
// cmd/threadstudy -trace: it can dump them as text (the microscopic
// "100 millisecond event histories" the paper's authors pored over) or
// summarize them with the paper's macroscopic statistics.
//
// Usage:
//
//	threadstudy -trace idle.bin -benchmark "Cedar/Idle Cedar"
//	traceview idle.bin                       # summary
//	traceview -dump idle.bin                 # full text dump
//	traceview -dump -from 1s -to 1.1s idle.bin
//	traceview -profile idle.bin              # per-thread scheduler accounting
//	traceview -chrometrace out.json idle.bin # Chrome trace-event JSON (Perfetto)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/profile"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vclock"
)

func main() {
	var (
		dump     = flag.Bool("dump", false, "dump events as text instead of summarizing")
		timeline = flag.Bool("timeline", false, "render an ASCII thread timeline of the window")
		svg      = flag.String("svg", "", "write an SVG thread timeline of the window to this file")
		width    = flag.Int("width", 100, "timeline width in columns")
		rows     = flag.Int("rows", 20, "timeline rows (busiest threads first)")
		from     = flag.Duration("from", 0, "window start (virtual)")
		to       = flag.Duration("to", 0, "window end (virtual; 0 = end of trace)")
		prof     = flag.Bool("profile", false, "print per-thread scheduler accounting for the whole trace")
		chrome   = flag.String("chrometrace", "", "write the whole trace as Chrome trace-event JSON to this file")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: traceview [-dump|-timeline|-profile] [-chrometrace f] [-from d] [-to d] trace.bin")
		os.Exit(2)
	}
	m := mode{dump: *dump, timeline: *timeline, svg: *svg, width: *width, rows: *rows,
		profile: *prof, chrome: *chrome}
	if err := run(flag.Arg(0), m, *from, *to); err != nil {
		fmt.Fprintln(os.Stderr, "traceview:", err)
		os.Exit(1)
	}
}

// mode selects the output form.
type mode struct {
	dump, timeline bool
	svg            string
	width, rows    int
	profile        bool
	chrome         string
}

func run(path string, m mode, from, to time.Duration) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.ReadTrace(f)
	if err != nil {
		return err
	}
	events := tr.Events
	lo := vclock.Time(from.Microseconds())
	hi := vclock.Never
	if to > 0 {
		hi = vclock.Time(to.Microseconds())
	}

	if m.profile || m.chrome != "" {
		return profileTrace(tr, m)
	}
	if m.timeline || m.svg != "" {
		end := hi
		if end == vclock.Never {
			if len(events) == 0 {
				return fmt.Errorf("empty trace")
			}
			end = events[len(events)-1].Time
		}
		tl := stats.Timeline{From: lo, To: end, Width: m.width, MaxRows: m.rows}
		if m.svg != "" {
			if err := os.WriteFile(m.svg, []byte(tl.RenderSVG(tr)), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", m.svg)
		}
		if m.timeline {
			fmt.Print(tl.Render(tr))
		}
		return nil
	}
	if m.dump {
		var window []trace.Event
		for _, ev := range events {
			if ev.Time >= lo && ev.Time <= hi {
				window = append(window, ev)
			}
		}
		return trace.WriteTextNamed(os.Stdout, trace.Trace{Events: window, Names: tr.Names})
	}

	a := stats.Analyze(events, lo, hi)
	t := stats.NewTable(fmt.Sprintf("%s: %d events, window %s..%s", path, len(events), a.From, a.To),
		"Metric", "Value")
	t.AddRowf("%s", "forks/sec", "%.2f", a.ForksPerSec())
	t.AddRowf("%s", "thread switches/sec", "%.1f", a.SwitchesPerSec())
	t.AddRowf("%s", "waits/sec", "%.1f", a.WaitsPerSec())
	t.AddRowf("%s", "% waits timing out", "%.1f%%", 100*a.TimeoutFraction())
	t.AddRowf("%s", "ML-enters/sec", "%.1f", a.MLEntersPerSec())
	t.AddRowf("%s", "% entries contended", "%.3f%%", 100*a.ContentionFraction())
	t.AddRowf("%s", "distinct CVs", "%d", a.DistinctCVs)
	t.AddRowf("%s", "distinct MLs", "%d", a.DistinctMLs)
	t.AddRowf("%s", "max live threads", "%d", a.MaxLive)
	fmt.Println(t.String())
	fmt.Println("execution intervals:")
	fmt.Println(a.Intervals.String())
	fmt.Println("CPU time by priority:")
	for p := 1; p <= 7; p++ {
		fmt.Printf("  pri %d: %5.1f%%\n", p, 100*a.CPUShareOfPriority(p))
	}
	fmt.Println("\nbusiest threads (virtual CPU):")
	for _, id := range a.BusiestThreads(10) {
		fmt.Printf("  %-28s %s\n", tr.NameOf(id), a.ExecByThread[id])
	}
	return nil
}

// profileTrace replays the whole trace through the accounting profiler.
// The CPU count is inferred from the switch records, so CPUs that never
// dispatched a thread contribute no idle time here (the live profiler in
// cmd/threadstudy knows the real count and is exact).
func profileTrace(tr trace.Trace, m mode) error {
	events := tr.Events
	cpus := 1
	for _, ev := range events {
		if ev.Kind == trace.KindSwitch && int(ev.Aux)+1 > cpus {
			cpus = int(ev.Aux) + 1
		}
	}
	p := profile.New(cpus)
	p.KeepSpans = m.chrome != ""
	var end vclock.Time
	for _, ev := range events {
		p.Record(ev)
		end = ev.Time
	}
	prof := p.Finish(end)
	prof.ApplyNames(tr.Names)

	if m.chrome != "" {
		f, err := os.Create(m.chrome)
		if err != nil {
			return err
		}
		werr := profile.WriteChromeTrace(f, prof)
		cerr := f.Close()
		if werr != nil {
			return werr
		}
		if cerr != nil {
			return cerr
		}
		fmt.Printf("wrote %s (%d spans)\n", m.chrome, len(prof.Spans))
	}
	if m.profile {
		fmt.Print(profile.NewReport(prof).String())
	}
	return nil
}
