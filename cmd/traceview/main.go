// Command traceview inspects binary thread-event traces written by
// cmd/threadstudy -trace: it can dump them as text (the microscopic
// "100 millisecond event histories" the paper's authors pored over) or
// summarize them with the paper's macroscopic statistics.
//
// Usage:
//
//	threadstudy -trace idle.bin -benchmark "Cedar/Idle Cedar"
//	traceview idle.bin                       # summary
//	traceview -dump idle.bin                 # full text dump
//	traceview -dump -from 1s -to 1.1s idle.bin
//	traceview -profile idle.bin              # per-thread scheduler accounting
//	traceview -chrometrace out.json idle.bin # Chrome trace-event JSON (Perfetto)
package main

import (
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/cliflag"
	"repro/internal/profile"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vclock"
)

const usageLine = "usage: traceview [-dump|-timeline|-profile] [-chrometrace f] [-from d] [-to d] trace.bin"

func main() {
	os.Exit(cli(os.Args[1:], os.Stdout, os.Stderr))
}

// cli is main with its dependencies injected, so the flag surface is
// testable. It returns the process exit code.
func cli(args []string, stdout, stderr io.Writer) int {
	fs := cliflag.New("traceview", stderr)
	var (
		dump     = fs.Bool("dump", false, "dump events as text instead of summarizing")
		timeline = fs.Bool("timeline", false, "render an ASCII thread timeline of the window")
		svg      = fs.String("svg", "", "write an SVG thread timeline of the window to this file")
		width    = fs.Int("width", 100, "timeline width in columns")
		rows     = fs.Int("rows", 20, "timeline rows (busiest threads first)")
		from     = fs.Duration("from", 0, "window start (virtual)")
		to       = fs.Duration("to", 0, "window end (virtual; 0 = end of trace)")
		prof     = fs.Bool("profile", false, "print per-thread scheduler accounting for the whole trace")
		chrome   = fs.String("chrometrace", "", "write the whole trace as Chrome trace-event JSON to this file")
	)
	if err := fs.Parse(args); err != nil {
		return cliflag.ExitUsage
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, usageLine)
		return cliflag.ExitUsage
	}
	if err := cliflag.MinInt("width", *width, 8, "the timeline needs at least 8 columns"); err != nil {
		return fs.Fail(err)
	}
	if err := cliflag.MinInt("rows", *rows, 1, "the timeline needs at least one row"); err != nil {
		return fs.Fail(err)
	}
	m := mode{dump: *dump, timeline: *timeline, svg: *svg, width: *width, rows: *rows,
		profile: *prof, chrome: *chrome, stdout: stdout}
	if err := run(fs.Arg(0), m, *from, *to); err != nil {
		return fs.Error(err)
	}
	return cliflag.ExitOK
}

// mode selects the output form.
type mode struct {
	dump, timeline bool
	svg            string
	width, rows    int
	profile        bool
	chrome         string
	stdout         io.Writer // defaults to os.Stdout when nil
}

func (m mode) out() io.Writer {
	if m.stdout != nil {
		return m.stdout
	}
	return os.Stdout
}

func run(path string, m mode, from, to time.Duration) error {
	stdout := m.out()
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.ReadTrace(f)
	if err != nil {
		return err
	}
	events := tr.Events
	lo := vclock.Time(from.Microseconds())
	hi := vclock.Never
	if to > 0 {
		hi = vclock.Time(to.Microseconds())
	}

	if m.profile || m.chrome != "" {
		return profileTrace(tr, m)
	}
	if m.timeline || m.svg != "" {
		end := hi
		if end == vclock.Never {
			if len(events) == 0 {
				return fmt.Errorf("empty trace")
			}
			end = events[len(events)-1].Time
		}
		tl := stats.Timeline{From: lo, To: end, Width: m.width, MaxRows: m.rows}
		if m.svg != "" {
			if err := os.WriteFile(m.svg, []byte(tl.RenderSVG(tr)), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "wrote %s\n", m.svg)
		}
		if m.timeline {
			fmt.Fprint(stdout, tl.Render(tr))
		}
		return nil
	}
	if m.dump {
		var window []trace.Event
		for _, ev := range events {
			if ev.Time >= lo && ev.Time <= hi {
				window = append(window, ev)
			}
		}
		return trace.WriteTextNamed(stdout, trace.Trace{Events: window, Names: tr.Names})
	}

	a := stats.Analyze(events, lo, hi)
	t := stats.NewTable(fmt.Sprintf("%s: %d events, window %s..%s", path, len(events), a.From, a.To),
		"Metric", "Value")
	t.AddRowf("%s", "forks/sec", "%.2f", a.ForksPerSec())
	t.AddRowf("%s", "thread switches/sec", "%.1f", a.SwitchesPerSec())
	t.AddRowf("%s", "waits/sec", "%.1f", a.WaitsPerSec())
	t.AddRowf("%s", "% waits timing out", "%.1f%%", 100*a.TimeoutFraction())
	t.AddRowf("%s", "ML-enters/sec", "%.1f", a.MLEntersPerSec())
	t.AddRowf("%s", "% entries contended", "%.3f%%", 100*a.ContentionFraction())
	t.AddRowf("%s", "distinct CVs", "%d", a.DistinctCVs)
	t.AddRowf("%s", "distinct MLs", "%d", a.DistinctMLs)
	t.AddRowf("%s", "max live threads", "%d", a.MaxLive)
	fmt.Fprintln(stdout, t.String())
	fmt.Fprintln(stdout, "execution intervals:")
	fmt.Fprintln(stdout, a.Intervals.String())
	fmt.Fprintln(stdout, "CPU time by priority:")
	for p := 1; p <= 7; p++ {
		fmt.Fprintf(stdout, "  pri %d: %5.1f%%\n", p, 100*a.CPUShareOfPriority(p))
	}
	fmt.Fprintln(stdout, "\nbusiest threads (virtual CPU):")
	for _, id := range a.BusiestThreads(10) {
		fmt.Fprintf(stdout, "  %-28s %s\n", tr.NameOf(id), a.ExecByThread[id])
	}
	return nil
}

// profileTrace replays the whole trace through the accounting profiler.
// The CPU count is inferred from the switch records, so CPUs that never
// dispatched a thread contribute no idle time here (the live profiler in
// cmd/threadstudy knows the real count and is exact).
func profileTrace(tr trace.Trace, m mode) error {
	stdout := m.out()
	events := tr.Events
	cpus := 1
	for _, ev := range events {
		if ev.Kind == trace.KindSwitch && int(ev.Aux)+1 > cpus {
			cpus = int(ev.Aux) + 1
		}
	}
	p := profile.New(cpus)
	p.KeepSpans = m.chrome != ""
	var end vclock.Time
	for _, ev := range events {
		p.Record(ev)
		end = ev.Time
	}
	prof := p.Finish(end)
	prof.ApplyNames(tr.Names)

	if m.chrome != "" {
		f, err := os.Create(m.chrome)
		if err != nil {
			return err
		}
		werr := profile.WriteChromeTrace(f, prof)
		cerr := f.Close()
		if werr != nil {
			return werr
		}
		if cerr != nil {
			return cerr
		}
		fmt.Fprintf(stdout, "wrote %s (%d spans)\n", m.chrome, len(prof.Spans))
	}
	if m.profile {
		fmt.Fprint(stdout, profile.NewReport(prof).String())
	}
	return nil
}
