package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// waitFinding is one suspected §5.3 IF-wait.
type waitFinding struct {
	pos  token.Position
	text string
}

// checkWaits walks a parsed file looking for the paper's most persistent
// bug: a condition-variable Wait guarded by an IF instead of re-checked
// in a loop. "The practice has been a continuing source of bugs as
// programs are modified and the correctness conditions become untrue."
//
// The check is syntactic, like the authors' grep-then-read method: a call
// to a method named Wait whose nearest enclosing control structure is an
// *ast.IfStmt (with no intervening for-loop) is flagged. A deliberate
// IF-wait — a Hoare-semantics monitor, or a bug fixture the explorer is
// supposed to catch — is suppressed with a `waitcheck:ignore` comment on
// the Wait's line (the file must be parsed with comments).
func checkWaits(fset *token.FileSet, file *ast.File) []waitFinding {
	var findings []waitFinding

	ignored := map[int]bool{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, "waitcheck:ignore") {
				ignored[fset.Position(c.Pos()).Line] = true
			}
		}
	}

	// Walk with an explicit stack of enclosing statements so we know,
	// for each Wait call, whether an if or a for is nearest.
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)

		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Wait" {
			return true
		}
		// Find the nearest enclosing if/for above this call.
		for i := len(stack) - 2; i >= 0; i-- {
			switch enc := stack[i].(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				return true // looped: fine
			case *ast.IfStmt:
				// A Wait inside the if's *condition* (the idiomatic
				// `if cv.Wait(t) { ... }` timeout check inside a loop)
				// is not the guarded-body pattern; keep walking up.
				if enc.Cond != nil && call.Pos() >= enc.Cond.Pos() && call.End() <= enc.Cond.End() {
					continue
				}
				pos := fset.Position(call.Pos())
				if ignored[pos.Line] {
					return true
				}
				findings = append(findings, waitFinding{
					pos:  pos,
					text: fmt.Sprintf("%s: Wait guarded by IF, not re-checked in a loop (§5.3)", pos),
				})
				return true
			case *ast.FuncLit, *ast.FuncDecl:
				return true // top of the function: un-guarded Wait, fine
			}
		}
		return true
	})
	return findings
}
