package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/paradigm"
)

func writeFile(t *testing.T, dir, name, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestScanCountsParadigmCalls(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "a.go", `package a
func f() {
	paradigm.DeferTo(reg, t, "x", body)
	paradigm.DeferTo(reg, t, "y", body)
	paradigm.StartSlack(w, reg, src, dst, cfg)
	paradigm.NewMBQueue(w, reg, "q", 0)
	w.Spawn("raw", 4, body)
}
`)
	writeFile(t, dir, "b.go", `package a
func g() {
	paradigm.PeriodicalProcess(w, reg, "pp", p, fn) // sleeper + encapsulated fork
	t.Fork("child", body)
}
`)
	counts, files, sites, err := scan(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if files != 2 {
		t.Fatalf("files = %d, want 2", files)
	}
	if sites != 7 {
		t.Fatalf("sites = %d, want 7", sites)
	}
	if counts[paradigm.KindDeferWork] != 2 {
		t.Errorf("defer work = %d, want 2", counts[paradigm.KindDeferWork])
	}
	if counts[paradigm.KindSlackProcess] != 1 {
		t.Errorf("slack = %d", counts[paradigm.KindSlackProcess])
	}
	if counts[paradigm.KindSerializer] != 1 {
		t.Errorf("serializer = %d", counts[paradigm.KindSerializer])
	}
	if counts[paradigm.KindSleeper] != 1 || counts[paradigm.KindEncapsulatedFork] != 1 {
		t.Errorf("periodical process should register sleeper+encap: %d/%d",
			counts[paradigm.KindSleeper], counts[paradigm.KindEncapsulatedFork])
	}
	if counts[paradigm.KindUnknown] != 2 { // Spawn + Fork
		t.Errorf("unknown = %d, want 2", counts[paradigm.KindUnknown])
	}
}

func TestScanSkipsTestsAndBadFiles(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "a_test.go", `package a
func f() { paradigm.DeferTo(reg, t, "x", body) }
`)
	writeFile(t, dir, "broken.go", `this is not go`)
	counts, files, sites, err := scan(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if files != 0 || sites != 0 || counts[paradigm.KindDeferWork] != 0 {
		t.Fatalf("expected nothing scanned: files=%d sites=%d", files, sites)
	}
	// With -tests the test file is included.
	counts, files, sites, err = scan(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if files != 1 || sites != 1 || counts[paradigm.KindDeferWork] != 1 {
		t.Fatalf("with tests: files=%d sites=%d defer=%d", files, sites, counts[paradigm.KindDeferWork])
	}
}

func TestScanSkipsVendorAndHidden(t *testing.T) {
	dir := t.TempDir()
	for _, sub := range []string{"vendor", ".git", "testdata"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			t.Fatal(err)
		}
		writeFile(t, dir, filepath.Join(sub, "x.go"), `package x
func f() { paradigm.DeferTo(reg, t, "x", body) }
`)
	}
	_, files, sites, err := scan(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if files != 0 || sites != 0 {
		t.Fatalf("vendor/hidden/testdata should be skipped: files=%d sites=%d", files, sites)
	}
}

func TestScanSelfFindsParadigms(t *testing.T) {
	// Scanning our own workload models must find the census shape: defer
	// work and sleepers present, serializer present.
	counts, files, _, err := scan("../../internal/workload", false)
	if err != nil {
		t.Fatal(err)
	}
	if files == 0 {
		t.Fatal("no files scanned")
	}
	for _, k := range []paradigm.Kind{paradigm.KindDeferWork, paradigm.KindSleeper, paradigm.KindSerializer} {
		if counts[k] == 0 {
			t.Errorf("paradigm %v not found in internal/workload", k)
		}
	}
}

func TestKindMapNamesValid(t *testing.T) {
	for _, name := range sortedNames() {
		for _, k := range callKinds[name] {
			if k < 0 || k >= paradigm.NumKinds {
				t.Errorf("callKinds[%q] has invalid kind %d", name, k)
			}
		}
	}
}

func TestCalleeNameForms(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "c.go", `package a
func h() {
	DeferTo(reg, t, "bare", body)      // bare identifier
	x.y.StartSlack(a, b, c, d, e)      // nested selector
	(func(){})()                       // anonymous call: ignored
}
`)
	counts, _, sites, err := scan(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if sites != 2 || counts[paradigm.KindDeferWork] != 1 || counts[paradigm.KindSlackProcess] != 1 {
		t.Fatalf("sites=%d defer=%d slack=%d", sites, counts[paradigm.KindDeferWork], counts[paradigm.KindSlackProcess])
	}
}

func TestWaitCheckFlagsIFWaits(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "w.go", `package a
func good(t *T) {
	m.Enter(t)
	for len(queue) == 0 {
		cv.Wait(t) // looped: correct
	}
	m.Exit(t)
}
func bad(t *T) {
	m.Enter(t)
	if len(queue) == 0 {
		cv.Wait(t) // the bug
	}
	m.Exit(t)
}
func unguarded(t *T) {
	cv.Wait(t) // no surrounding control structure: not flagged
}
func loopInsideIf(t *T) {
	if enabled {
		for len(queue) == 0 {
			cv.Wait(t) // loop is nearer than the if: correct
		}
	}
}
func deliberate(t *T) {
	if len(queue) == 0 {
		cv.Wait(t) // waitcheck:ignore — Hoare monitor, IF is correct here
	}
}
`)
	findings, err := scanWaits(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		for _, f := range findings {
			t.Log(f.text)
		}
		t.Fatalf("findings = %d, want exactly 1 (the IF-wait in bad)", len(findings))
	}
	if !strings.Contains(findings[0].text, "w.go:12") {
		t.Errorf("finding at wrong location: %s", findings[0].text)
	}
}

func TestWaitCheckCleanOnOwnCode(t *testing.T) {
	// Our own monitor-using packages obey the WHILE law.
	for _, dir := range []string{"../../internal/paradigm", "../../internal/workload", "../../internal/xwin"} {
		findings, err := scanWaits(dir, false)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range findings {
			t.Errorf("IF-wait in our own code: %s", f.text)
		}
	}
}

// TestCLI exercises the cliflag-based flag surface end to end.
func TestCLI(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "a.go", `package a
func f() { paradigm.DeferTo(reg, t, "x", body) }
`)
	cases := []struct {
		name     string
		args     []string
		wantCode int
		wantOut  string // substring of stdout
		wantErr  string // substring of stderr
	}{
		{"census", []string{dir}, 0, "Static paradigm census", ""},
		{"waitcheck", []string{"-waitcheck", dir}, 0, "IF-guarded Wait call(s) found", ""},
		{"extra operand", []string{dir, "extra"}, 2, "", `unexpected argument "extra"`},
		{"unknown flag", []string{"-bogus"}, 2, "", "flag provided but not defined"},
		{"missing dir", []string{filepath.Join(dir, "nope")}, 1, "", "paradigmscan: "},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			code := run(tc.args, &stdout, &stderr)
			if code != tc.wantCode {
				t.Fatalf("run(%v) = %d, want %d (stderr: %s)", tc.args, code, tc.wantCode, stderr.String())
			}
			if tc.wantOut != "" && !strings.Contains(stdout.String(), tc.wantOut) {
				t.Errorf("stdout missing %q:\n%s", tc.wantOut, stdout.String())
			}
			if tc.wantErr != "" && !strings.Contains(stderr.String(), tc.wantErr) {
				t.Errorf("stderr missing %q:\n%s", tc.wantErr, stderr.String())
			}
		})
	}
}
