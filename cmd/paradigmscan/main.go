// Command paradigmscan applies the paper's Table 4 methodology — "we used
// grep to locate all uses of thread primitives and then read the
// surrounding code" — to a Go source tree: it parses every .go file and
// counts call sites of this repository's paradigm API (and of raw thread
// primitives, which land in "Unknown or other"), printing a Table 4-style
// census.
//
// Usage:
//
//	paradigmscan [dir]    # default: current directory
//	paradigmscan -tests   # include _test.go files
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/cliflag"
	"repro/internal/paradigm"
	"repro/internal/stats"
)

// callKinds maps paradigm-API function names to the Table 4 categories
// they instantiate. A call may register under several kinds, mirroring
// the paper's "threads may be counted in more than one category".
var callKinds = map[string][]paradigm.Kind{
	"DeferTo":               {paradigm.KindDeferWork},
	"DeferAt":               {paradigm.KindDeferWork},
	"StartPump":             {paradigm.KindGeneralPump},
	"SpawnPumpChain":        {paradigm.KindGeneralPump, paradigm.KindSleeper},
	"StartSlack":            {paradigm.KindSlackProcess},
	"StartPipeline":         {paradigm.KindSlackProcess, paradigm.KindGeneralPump},
	"StartSleeper":          {paradigm.KindSleeper},
	"SpawnEternals":         {paradigm.KindSleeper},
	"SpawnPokeables":        {paradigm.KindSleeper},
	"SpawnSleeperGroup":     {paradigm.KindSleeper},
	"SpawnSleeperGroupFunc": {paradigm.KindSleeper},
	"NewWorkQueue":          {paradigm.KindSleeper},
	"PeriodicalProcess":     {paradigm.KindSleeper, paradigm.KindEncapsulatedFork},
	"DelayedFork":           {paradigm.KindOneShot, paradigm.KindEncapsulatedFork},
	"PeriodicalFork":        {paradigm.KindOneShot, paradigm.KindEncapsulatedFork},
	"NewGuardedButton":      {paradigm.KindOneShot},
	"AvoidFork":             {paradigm.KindDeadlockAvoid},
	"ForkingCallback":       {paradigm.KindDeadlockAvoid},
	"StartService":          {paradigm.KindTaskRejuvenate},
	"NewMBQueue":            {paradigm.KindSerializer},
	"ParallelDo":            {paradigm.KindConcurrencyExploit},
	// Raw primitives whose paradigm we cannot classify statically.
	"Spawn":   {paradigm.KindUnknown},
	"Fork":    {paradigm.KindUnknown},
	"ForkPri": {paradigm.KindUnknown},
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its dependencies injected so the CLI surface is
// testable. It returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := cliflag.New("paradigmscan", stderr)
	includeTests := fs.Bool("tests", false, "include _test.go files")
	waitcheck := fs.Bool("waitcheck", false, "also flag §5.3 IF-guarded Wait calls")
	if err := fs.Parse(args); err != nil {
		return cliflag.ExitUsage
	}
	if err := fs.MaxArgs(1); err != nil {
		return fs.Fail(err)
	}
	root := "."
	if fs.NArg() > 0 {
		root = fs.Arg(0)
	}
	counts, files, sites, err := scan(root, *includeTests)
	if err != nil {
		return fs.Error(err)
	}
	if *waitcheck {
		findings, err := scanWaits(root, *includeTests)
		if err != nil {
			return fs.Error(err)
		}
		for _, f := range findings {
			fmt.Fprintln(stdout, f.text)
		}
		fmt.Fprintf(stdout, "%d IF-guarded Wait call(s) found\n\n", len(findings))
	}

	t := stats.NewTable(
		fmt.Sprintf("Static paradigm census of %s (%d files, %d call sites)", root, files, sites),
		"Paradigm", "Count", "%")
	total := 0
	for _, c := range counts {
		total += c
	}
	for k := paradigm.Kind(0); k < paradigm.NumKinds; k++ {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(counts[k]) / float64(total)
		}
		t.AddRowf("%s", k.String(), "%d", counts[k], "%.0f%%", pct)
	}
	t.AddRowf("%s", "TOTAL", "%d", total, "%s", "100%")
	fmt.Fprintln(stdout, t.String())
	return cliflag.ExitOK
}

// scan walks root, parsing .go files and counting paradigm call sites.
func scan(root string, includeTests bool) (counts [paradigm.NumKinds]int, files, sites int, err error) {
	fset := token.NewFileSet()
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, walkErr error) error {
		if walkErr != nil {
			return walkErr
		}
		if d.IsDir() {
			name := d.Name()
			if name != "." && (strings.HasPrefix(name, ".") || name == "vendor" || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		if !includeTests && strings.HasSuffix(path, "_test.go") {
			return nil
		}
		file, perr := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if perr != nil {
			// Unparseable files are skipped, like the authors skipping
			// modules their grep could not classify.
			return nil
		}
		files++
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := calleeName(call)
			kinds, ok := callKinds[name]
			if !ok {
				return true
			}
			sites++
			for _, k := range kinds {
				counts[k]++
			}
			return true
		})
		return nil
	})
	return counts, files, sites, err
}

// scanWaits walks root applying the §5.3 IF-wait check to every file.
func scanWaits(root string, includeTests bool) ([]waitFinding, error) {
	fset := token.NewFileSet()
	var findings []waitFinding
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, walkErr error) error {
		if walkErr != nil {
			return walkErr
		}
		if d.IsDir() {
			name := d.Name()
			if name != "." && (strings.HasPrefix(name, ".") || name == "vendor" || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || (!includeTests && strings.HasSuffix(path, "_test.go")) {
			return nil
		}
		file, perr := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution|parser.ParseComments)
		if perr != nil {
			return nil
		}
		findings = append(findings, checkWaits(fset, file)...)
		return nil
	})
	return findings, err
}

// calleeName extracts the final identifier of a call expression:
// paradigm.DeferTo -> DeferTo, w.Spawn -> Spawn, Fork -> Fork.
func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// sortedNames is used by tests to verify the kind map stays in sync with
// the paradigm package.
func sortedNames() []string {
	var names []string
	for n := range callKinds {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
