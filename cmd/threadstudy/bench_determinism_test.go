package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"testing"
)

// normalizeBench strips the wall-clock-derived fields from a bench
// artifact — per-experiment wall time, throughput ratios and allocator
// deltas, plus the run-level wall total and machine knobs — leaving
// only the deterministic virtual-time payload. Everything that survives
// must be byte-identical between runs regardless of -shards.
func normalizeBench(t *testing.T, path string) (whole string, perExp map[string]string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var sum benchSummary
	if err := json.Unmarshal(raw, &sum); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	sum.TotalWall = 0
	sum.Parallelism = 0
	sum.Shards = 0
	perExp = make(map[string]string, len(sum.Experiments))
	for i := range sum.Experiments {
		e := &sum.Experiments[i]
		e.WallTime = 0
		e.EventsPerSec = 0
		e.VirtualPerWall = 0
		e.AllocBytes = 0
		e.AllocObjects = 0
		one, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		perExp[e.ID] = string(one)
	}
	all, err := json.Marshal(sum)
	if err != nil {
		t.Fatal(err)
	}
	return string(all), perExp
}

// TestBenchShardDeterminism runs the full -bench sweep at shard counts
// {1, 4, GOMAXPROCS} and requires the artifacts to be byte-identical
// modulo wall-clock fields. This is the acceptance bar for widening
// Spec.Shards into the default `make bench` path: parallelism may only
// change how fast the artifact is produced, never its contents. The
// suite also runs under -race, so shard fan-out is exercised with the
// race detector watching the cluster advance loops.
func TestBenchShardDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full bench sweep per shard value; skipped in -short")
	}
	shardVals := []int{1, 4, runtime.GOMAXPROCS(0)}
	seen := map[int]bool{}
	var baseWhole string
	var basePer map[string]string
	for _, sh := range shardVals {
		if seen[sh] {
			continue
		}
		seen[sh] = true
		path := filepath.Join(t.TempDir(), "bench.json")
		var stdout, stderr bytes.Buffer
		args := []string{"-bench", path, "-shards", strconv.Itoa(sh)}
		if code := run(args, &stdout, &stderr); code != 0 {
			t.Fatalf("run(%v) = %d, stderr: %s", args, code, stderr.String())
		}
		whole, per := normalizeBench(t, path)
		if basePer == nil {
			baseWhole, basePer = whole, per
			continue
		}
		if whole == baseWhole {
			continue
		}
		// Name the diverging experiments rather than dumping two blobs.
		for id, want := range basePer {
			if got, ok := per[id]; !ok {
				t.Errorf("shards=%d: experiment %s missing", sh, id)
			} else if got != want {
				t.Errorf("shards=%d: experiment %s diverged from shards=1", sh, id)
			}
		}
		if len(per) != len(basePer) {
			t.Errorf("shards=%d: %d experiments, want %d", sh, len(per), len(basePer))
		}
		t.Errorf("shards=%d: bench JSON diverged from shards=1", sh)
	}
}
