package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// TestCaptureTraceRoundTrip writes a benchmark trace and decodes it with
// the trace package — the threadstudy->traceview pipeline.
func TestCaptureTraceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idle.bin")
	if err := captureTrace(path, "Cedar/Idle Cedar", 1, 2*vclock.Second); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.ReadTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	events := tr.Events
	if len(events) < 1000 {
		t.Fatalf("suspiciously few events: %d", len(events))
	}
	if len(tr.Names) < 30 {
		t.Fatalf("thread name table too small: %d", len(tr.Names))
	}
	foundNotifier := false
	for _, n := range tr.Names {
		if n == "Notifier" {
			foundNotifier = true
		}
	}
	if !foundNotifier {
		t.Error("name table missing the Notifier")
	}
	a := stats.Analyze(events, 0, vclock.Never)
	if a.MLEnters == 0 || a.Switches == 0 || a.WaitDones == 0 {
		t.Fatalf("trace missing core activity: %+v", a)
	}
	// Idle Cedar shape survives the encode/decode.
	if a.TimeoutFraction() < 0.6 {
		t.Errorf("timeout fraction = %v, want timeout-dominated", a.TimeoutFraction())
	}
}

func TestCaptureTraceErrors(t *testing.T) {
	dir := t.TempDir()
	if err := captureTrace(filepath.Join(dir, "x.bin"), "no-slash", 1, vclock.Second); err == nil {
		t.Fatal("expected error for malformed benchmark name")
	}
	err := captureTrace(filepath.Join(dir, "x.bin"), "Cedar/Nonexistent", 1, vclock.Second)
	if err == nil || !strings.Contains(err.Error(), "available:") {
		t.Fatalf("expected helpful error, got %v", err)
	}
	// Zero duration falls back to the default.
	if err := captureTrace(filepath.Join(dir, "y.bin"), "GVX/Idle GVX", 1, 0); err != nil {
		t.Fatal(err)
	}
}
