package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// TestCaptureTraceRoundTrip writes a benchmark trace and decodes it with
// the trace package — the threadstudy->traceview pipeline.
func TestCaptureTraceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idle.bin")
	if err := captureTrace(io.Discard, path, "Cedar/Idle Cedar", 1, 2*vclock.Second); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.ReadTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	events := tr.Events
	if len(events) < 1000 {
		t.Fatalf("suspiciously few events: %d", len(events))
	}
	if len(tr.Names) < 30 {
		t.Fatalf("thread name table too small: %d", len(tr.Names))
	}
	foundNotifier := false
	for _, n := range tr.Names {
		if n == "Notifier" {
			foundNotifier = true
		}
	}
	if !foundNotifier {
		t.Error("name table missing the Notifier")
	}
	a := stats.Analyze(events, 0, vclock.Never)
	if a.MLEnters == 0 || a.Switches == 0 || a.WaitDones == 0 {
		t.Fatalf("trace missing core activity: %+v", a)
	}
	// Idle Cedar shape survives the encode/decode.
	if a.TimeoutFraction() < 0.6 {
		t.Errorf("timeout fraction = %v, want timeout-dominated", a.TimeoutFraction())
	}
}

func TestCaptureTraceErrors(t *testing.T) {
	dir := t.TempDir()
	if err := captureTrace(io.Discard, filepath.Join(dir, "x.bin"), "no-slash", 1, vclock.Second); err == nil {
		t.Fatal("expected error for malformed benchmark name")
	}
	err := captureTrace(io.Discard, filepath.Join(dir, "x.bin"), "Cedar/Nonexistent", 1, vclock.Second)
	if err == nil || !strings.Contains(err.Error(), "available:") {
		t.Fatalf("expected helpful error, got %v", err)
	}
	// Zero duration falls back to the default.
	if err := captureTrace(io.Discard, filepath.Join(dir, "y.bin"), "GVX/Idle GVX", 1, 0); err != nil {
		t.Fatal(err)
	}
}

// TestCLIValidation is the regression suite for the flag-handling fixes:
// each formerly-silent misuse must now fail fast with a clear message.
func TestCLIValidation(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "out.bin")
	tests := []struct {
		name     string
		args     []string
		wantCode int
		wantErr  string // substring of stderr
		wantOut  string // substring of stdout
	}{
		{"list", []string{"-list"}, 0, "", "T1"},
		{"list shows presentation order", []string{"-list"}, 0, "", "F12"},
		{"unknown format rejected", []string{"-format", "yaml"}, 2, `unknown -format "yaml"`, ""},
		{"seed zero rejected", []string{"-seed", "0"}, 2, "-seed 0 is not a distinct seed", ""},
		{"parallel zero rejected", []string{"-parallel", "0"}, 2, "need at least one worker", ""},
		{"parallel negative rejected", []string{"-parallel", "-3"}, 2, "need at least one worker", ""},
		{"sub-microsecond traceduration rejected",
			[]string{"-trace", bin, "-traceduration", "500ns"}, 2, "need at least 1us", ""},
		{"negative traceduration rejected",
			[]string{"-trace", bin, "-traceduration", "-1s"}, 2, "need at least 1us", ""},
		{"unknown experiment", []string{"-experiment", "T9"}, 1, "unknown id", ""},
		{"unknown experiment lists IDs in order", []string{"-experiment", "T9"}, 1, "T1 T2 T3 T4 F1 F2", ""},
		{"duplicated experiment rejected", []string{"-experiment", "W1,W1"}, 2, `duplicate value "W1"`, ""},
		{"case-insensitive duplicate rejected", []string{"-experiment", "T1,t1"}, 2, `duplicate value "t1"`, ""},
		{"duplicate among valid IDs rejected", []string{"-experiment", "T1,T2,T1"}, 2, `duplicate value "T1"`, ""},
		{"experiment list runs in given order",
			[]string{"-experiment", "F5,T1", "-quick"}, 0, "", "== F5:"},
		{"unknown ID in list rejected", []string{"-experiment", "T1,T9"}, 1, "unknown id", ""},
		{"opt-in C experiment needs -series c",
			[]string{"-experiment", "C1"}, 2, "enable its series with -series c", ""},
		{"opt-in W experiment needs -series w",
			[]string{"-experiment", "W1"}, 2, "enable its series with -series w", ""},
		{"opt-in D experiment needs -series d",
			[]string{"-experiment", "D1"}, 2, "enable its series with -series d", ""},
		{"opt-in S experiment needs -series s",
			[]string{"-experiment", "S1"}, 2, "enable its series with -series s", ""},
		{"opt-in K experiment needs -series k",
			[]string{"-experiment", "K2"}, 2, "enable its series with -series k", ""},
		{"opt-in gate is case-insensitive",
			[]string{"-experiment", "w1"}, 2, "enable its series with -series w", ""},
		{"gated experiment runs with its series",
			[]string{"-series", "w", "-experiment", "W1", "-quick"}, 0, "", "== W1:"},
		{"default-set experiment ignores enabled series",
			[]string{"-series", "w", "-experiment", "T1", "-quick"}, 0, "", "== T1:"},
		{"duplicate series key rejected",
			[]string{"-series", "w,w"}, 2, `duplicate value "w"`, ""},
		{"unknown series key rejected",
			[]string{"-series", "x"}, 2, `unknown series "x"`, ""},
		{"alias duplicating -series rejected",
			[]string{"-series", "c", "-cseries"}, 2, `duplicate value "c"`, ""},
		{"deprecated alias warns but lists",
			[]string{"-list", "-wseries"}, 0, "-wseries is deprecated; use -series w", "W1"},
		{"series union lists in given order",
			[]string{"-list", "-series", "s,w"}, 0, "", "S1"},
		{"bad policy rejected",
			[]string{"-policy", "bogus"}, 2, `threadstudy: unknown policy "bogus"`, ""},
		{"bad policy param rejected",
			[]string{"-policy", "rr:nope=1"}, 2, `unknown param "nope"`, ""},
		{"duplicated D experiment rejected", []string{"-experiment", "D1,D1"}, 2, `duplicate value "D1"`, ""},
		{"case-insensitive D duplicate rejected", []string{"-experiment", "D2,d2"}, 2, `duplicate value "d2"`, ""},
		{"faultseed without faults on series d warns",
			[]string{"-series", "d", "-quick", "-faultseed", "9"}, 0, "has no effect on the D series", "D1"},
		{"unknown flag", []string{"-nope"}, 2, "flag provided but not defined", ""},
		{"missing fault plan rejected",
			[]string{"-faults", filepath.Join(t.TempDir(), "nope.json")}, 2, "no such file", ""},
		{"instance-scoped fault plan rejected at the flag",
			[]string{"-faults", instancePlan(t), "-experiment", "R1", "-quick"},
			2, "cluster-scoped fault kinds", ""},
		{"auditmin zero rejected", []string{"-audit", "-auditmin", "0"}, 2, "at least one observed wait", ""},
		{"faultseed without faults on T experiment warns",
			[]string{"-experiment", "T1", "-quick", "-faultseed", "9"}, 0, "-faultseed 9 has no effect", "T1"},
		{"huge parallel warns but still runs",
			[]string{"-experiment", "T1", "-quick", "-parallel", "100000"}, 0, "-parallel 100000 exceeds", "T1"},
	}
	for _, tc := range tests {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(tc.args, &stdout, &stderr)
			if code != tc.wantCode {
				t.Errorf("exit code %d, want %d (stderr: %s)", code, tc.wantCode, stderr.String())
			}
			if tc.wantErr != "" && !strings.Contains(stderr.String(), tc.wantErr) {
				t.Errorf("stderr %q missing %q", stderr.String(), tc.wantErr)
			}
			if tc.wantOut != "" && !strings.Contains(stdout.String(), tc.wantOut) {
				t.Errorf("stdout %q missing %q", stdout.String(), tc.wantOut)
			}
		})
	}
}

// instancePlan writes a syntactically valid but cluster-scoped fault
// plan, which -faults must reject before any experiment runs.
func instancePlan(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "instance.json")
	plan := `{"crash_instance": [{"instance": 1, "at": "220ms", "restart": "30ms"}]}`
	if err := os.WriteFile(path, []byte(plan), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// Warnings are stderr-only advisories: an R-series run consumes
// -faultseed (no warning), and a warned run's stdout stays byte-identical
// to the unwarned one.
func TestCLIWarningsScope(t *testing.T) {
	runOne := func(args ...string) (string, string) {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 0 {
			t.Fatalf("run(%v) = %d, stderr: %s", args, code, stderr.String())
		}
		return stdout.String(), stderr.String()
	}
	if _, errs := runOne("-experiment", "R2", "-quick", "-faultseed", "9"); strings.Contains(errs, "has no effect") {
		t.Errorf("R2 consumes -faultseed, must not warn: %q", errs)
	}
	plain, _ := runOne("-experiment", "T1", "-quick")
	warned, errs := runOne("-experiment", "T1", "-quick", "-faultseed", "9", "-parallel", "100000")
	if !strings.Contains(errs, "has no effect") || !strings.Contains(errs, "exceeds") {
		t.Fatalf("expected both warnings on stderr, got: %q", errs)
	}
	if warned != plain {
		t.Error("warnings leaked into stdout: output differs from unwarned run")
	}
}

// TestCLIParallelByteIdentical: the -parallel acceptance criterion, at
// the CLI layer, for a pair of cheap experiments.
func TestCLIParallelByteIdentical(t *testing.T) {
	runOne := func(args ...string) string {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 0 {
			t.Fatalf("run(%v) = %d, stderr: %s", args, code, stderr.String())
		}
		return stdout.String()
	}
	for _, id := range []string{"F5", "F8", "R2"} {
		serial := runOne("-experiment", id, "-quick", "-seed", "7", "-parallel", "1")
		parallel := runOne("-experiment", id, "-quick", "-seed", "7", "-parallel", "4")
		if serial != parallel {
			t.Errorf("%s: -parallel 4 output differs from -parallel 1", id)
		}
		if !strings.Contains(serial, "== "+id+":") {
			t.Errorf("%s: report header missing:\n%s", id, serial)
		}
	}
}

// TestCLIFaultPlan: a -faults plan is validated at startup and replaces
// the R-series' built-in faults. An empty plan means R1 injects nothing,
// so its report must show zero crashes.
func TestCLIFaultPlan(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"crash_thread":[{"thread":"[","at":0}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-faults", bad, "-experiment", "R1", "-quick"}, &stdout, &stderr); code != 2 {
		t.Fatalf("invalid plan: exit %d, want 2 (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "bad thread pattern") {
		t.Errorf("stderr %q missing validation detail", stderr.String())
	}

	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte(`{}`), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-faults", empty, "-experiment", "R1", "-quick"}, &stdout, &stderr); code != 0 {
		t.Fatalf("empty plan: exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "crashes injected") {
		t.Fatalf("R1 report missing crash row:\n%s", stdout.String())
	}
	if !strings.Contains(stdout.String(), "== R1:") {
		t.Errorf("missing R1 header:\n%s", stdout.String())
	}
}

// TestCLIAudit: -audit prints §5.3 findings after the report. F8 builds
// timeout-masked missing-NOTIFY monitors on purpose; its buggy consumer
// blocks only once, so the test needs -auditmin 1.
func TestCLIAudit(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-audit", "-auditmin", "1", "-experiment", "F8", "-quick"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "== F8:") {
		t.Fatalf("report missing:\n%s", out)
	}
	if !strings.Contains(out, "audit F8: ") || !strings.Contains(out, "masked-missing-NOTIFY") {
		t.Errorf("audit findings missing:\n%s", out)
	}
	// At the default threshold the findings disappear but the audit
	// trailer still reports the sweep ran.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-audit", "-experiment", "F5", "-quick"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "audit F5: no suspicious condition variables") {
		t.Errorf("missing clean-audit trailer:\n%s", stdout.String())
	}
}

// TestCLIJSONSummary: -json writes a parseable summary with populated
// per-experiment metrics.
func TestCLIJSONSummary(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-experiment", "F6", "-quick", "-json", path}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var sum jsonSummary
	if err := json.Unmarshal(data, &sum); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, data)
	}
	if sum.Seed != 1 || !sum.Quick || len(sum.Experiments) != 1 {
		t.Fatalf("summary header wrong: %+v", sum)
	}
	m := sum.Experiments[0]
	if m.ID != "F6" || m.WallTime <= 0 || m.VirtualTime <= 0 || m.Events <= 0 || m.EventsPerSec <= 0 {
		t.Errorf("metrics not populated: %+v", m)
	}
}

// TestCLIVerify: -verify runs each experiment twice concurrently and
// reports success for the deterministic suite.
func TestCLIVerify(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-experiment", "F9", "-quick", "-verify"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "deterministic ok") {
		t.Errorf("missing verify confirmation: %q", stdout.String())
	}
}

// TestCLIWSeries: the load workloads are an explicit opt-in. They never
// appear in the default list (the golden stdout pins that), -wseries
// selects them, and their latency percentiles flow into the -json
// summary.
func TestCLIWSeries(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exit %d", code)
	}
	if strings.Contains(stdout.String(), "W1") {
		t.Fatalf("W series leaked into the default -list:\n%s", stdout.String())
	}

	stdout.Reset()
	if code := run([]string{"-list", "-series", "w"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list -series w exit %d", code)
	}
	for _, id := range []string{"W1", "W2", "W3"} {
		if !strings.Contains(stdout.String(), id) {
			t.Errorf("-list -series w missing %s:\n%s", id, stdout.String())
		}
	}
	if strings.Contains(stdout.String(), "T1") {
		t.Errorf("-list -series w should list only the W series:\n%s", stdout.String())
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-experiment", "W1"}, &stdout, &stderr); code != 2 {
		t.Fatalf("-experiment W1 without -series w: exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "-series w") {
		t.Errorf("stderr %q", stderr.String())
	}

	path := filepath.Join(t.TempDir(), "w1.json")
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-series", "w", "-experiment", "W1", "-quick", "-json", path}, &stdout, &stderr); code != 0 {
		t.Fatalf("W1 run exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "== W1:") {
		t.Fatalf("W1 report missing:\n%s", stdout.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var sum jsonSummary
	if err := json.Unmarshal(data, &sum); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, data)
	}
	if sum.Schema != 1 {
		t.Errorf("schema = %d, want 1", sum.Schema)
	}
	if len(sum.Experiments) != 1 {
		t.Fatalf("experiments = %d", len(sum.Experiments))
	}
	load := sum.Experiments[0].Load
	if load == nil || load.Completed == 0 || load.P99US < load.P50US {
		t.Fatalf("load summary missing from -json: %+v", load)
	}
}

// TestCLICSeries: the cluster fleet experiments are opt-in like the W
// series — absent from the default list, selected by -cseries, and
// their per-instance and aggregate SLO records flow into -json under
// the same schema.
func TestCLICSeries(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exit %d", code)
	}
	if strings.Contains(stdout.String(), "C1") {
		t.Fatalf("C series leaked into the default -list:\n%s", stdout.String())
	}

	stdout.Reset()
	if code := run([]string{"-list", "-series", "c"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list -series c exit %d", code)
	}
	for _, id := range []string{"C1", "C2", "C3"} {
		if !strings.Contains(stdout.String(), id) {
			t.Errorf("-list -series c missing %s:\n%s", id, stdout.String())
		}
	}
	if strings.Contains(stdout.String(), "T1") || strings.Contains(stdout.String(), "W1") {
		t.Errorf("-list -series c should list only the C series:\n%s", stdout.String())
	}

	path := filepath.Join(t.TempDir(), "c1.json")
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-series", "c", "-experiment", "C1", "-quick", "-json", path}, &stdout, &stderr); code != 0 {
		t.Fatalf("C1 run exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "== C1:") {
		t.Fatalf("C1 report missing:\n%s", stdout.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var sum jsonSummary
	if err := json.Unmarshal(data, &sum); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, data)
	}
	if sum.Schema != 1 || len(sum.Experiments) != 1 {
		t.Fatalf("summary header wrong: %+v", sum)
	}
	cl := sum.Experiments[0].Cluster
	if len(cl) < 3 {
		t.Fatalf("cluster records missing from -json: %+v", sum.Experiments[0])
	}
	for _, s := range cl {
		if s.Completed == 0 || len(s.PerInstance) != s.Instances {
			t.Fatalf("degenerate cluster record: %+v", s)
		}
	}
}

// TestCLIDSeries: the resilience study is opt-in like the W and C
// series — absent from the default list, selected by -dseries — and a
// single D experiment's graceful-degradation buckets and mechanism
// ledger flow into -json under the same schema.
func TestCLIDSeries(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exit %d", code)
	}
	if strings.Contains(stdout.String(), "D1") {
		t.Fatalf("D series leaked into the default -list:\n%s", stdout.String())
	}

	stdout.Reset()
	if code := run([]string{"-list", "-series", "d"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list -series d exit %d", code)
	}
	for _, id := range []string{"D1", "D2", "D3", "D4"} {
		if !strings.Contains(stdout.String(), id) {
			t.Errorf("-list -series d missing %s:\n%s", id, stdout.String())
		}
	}
	if strings.Contains(stdout.String(), "T1") || strings.Contains(stdout.String(), "C1") {
		t.Errorf("-list -series d should list only the D series:\n%s", stdout.String())
	}

	path := filepath.Join(t.TempDir(), "d3.json")
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-series", "d", "-experiment", "D3", "-quick", "-json", path}, &stdout, &stderr); code != 0 {
		t.Fatalf("D3 run exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "== D3:") {
		t.Fatalf("D3 report missing:\n%s", stdout.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var sum jsonSummary
	if err := json.Unmarshal(data, &sum); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, data)
	}
	if sum.Schema != 1 || len(sum.Experiments) != 1 {
		t.Fatalf("summary header wrong: %+v", sum)
	}
	cl := sum.Experiments[0].Cluster
	if len(cl) != 3 {
		t.Fatalf("cluster records missing from -json: %+v", sum.Experiments[0])
	}
	for _, s := range cl {
		if got := s.Rejected + s.Shed + s.Failed + s.Degraded + s.Goodput; got != s.Offered {
			t.Errorf("bucket identity broken in -json record: %+v", s)
		}
	}
	// The overloaded rows carry the mechanism ledger; the run must show
	// the storm (retries issued) and the budget's suppression (denials).
	if cl[1].Resilience == nil || cl[1].Resilience.Retries == 0 {
		t.Errorf("unmetered D3 row missing retry ledger: %+v", cl[1].Resilience)
	}
	if cl[2].Resilience == nil || cl[2].Resilience.RetriesDenied == 0 {
		t.Errorf("metered D3 row missing denials: %+v", cl[2].Resilience)
	}
}

// TestCLIExperimentListOrder: a comma-separated -experiment list runs in
// the order given, mixing series freely.
func TestCLIExperimentListOrder(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-experiment", "F5, T1", "-quick"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	f5, t1 := strings.Index(out, "== F5:"), strings.Index(out, "== T1:")
	if f5 < 0 || t1 < 0 || f5 > t1 {
		t.Fatalf("expected F5 before T1 (F5 at %d, T1 at %d):\n%s", f5, t1, out)
	}
}

// TestCLISchemaFields: every machine-readable output carries the
// top-level schema version.
func TestCLISchemaFields(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-profilejson", "-", "-traceduration", "100ms"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("profilejson exit %d, stderr: %s", code, stderr.String())
	}
	var doc map[string]any
	if err := json.Unmarshal(stdout.Bytes(), &doc); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, stdout.String())
	}
	if v, ok := doc["schema"].(float64); !ok || v != 1 {
		t.Errorf("-profilejson schema = %v, want 1", doc["schema"])
	}
	if _, ok := doc["threads"]; !ok {
		t.Errorf("-profilejson missing accounting payload:\n%s", stdout.String())
	}
}

// TestCLISSeries: the scheduling-policy lab is opt-in like the W series
// — absent from the default list, selected by -sseries, per-policy
// summaries in -json, and byte-identical output at any -shards value
// (the S-series worlds never consult the shard count).
func TestCLISSeries(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exit %d", code)
	}
	if strings.Contains(stdout.String(), "S1") {
		t.Fatalf("S series leaked into the default -list:\n%s", stdout.String())
	}

	stdout.Reset()
	if code := run([]string{"-list", "-series", "s"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list -series s exit %d", code)
	}
	for _, id := range []string{"S1", "S2", "S3", "S4"} {
		if !strings.Contains(stdout.String(), id) {
			t.Errorf("-list -series s missing %s:\n%s", id, stdout.String())
		}
	}
	if strings.Contains(stdout.String(), "T1") || strings.Contains(stdout.String(), "W1") {
		t.Errorf("-list -series s should list only the S series:\n%s", stdout.String())
	}

	path := filepath.Join(t.TempDir(), "s4.json")
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-series", "s", "-experiment", "S4", "-quick", "-json", path}, &stdout, &stderr); code != 0 {
		t.Fatalf("S4 run exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "== S4:") {
		t.Fatalf("S4 report missing:\n%s", stdout.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var sum jsonSummary
	if err := json.Unmarshal(data, &sum); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, data)
	}
	sched := sum.Experiments[0].Sched
	if len(sched) != 3 {
		t.Fatalf("sched summaries missing from -json: %+v", sum.Experiments[0])
	}
	for _, s := range sched {
		if s.Policy == "" || len(s.Classes) == 0 {
			t.Errorf("malformed sched summary in -json: %+v", s)
		}
	}

	// Shard determinism: -shards is advance parallelism for the cluster
	// series and a no-op here; either way stdout must not move.
	shardRun := func(n string) string {
		var out, errb bytes.Buffer
		if code := run([]string{"-series", "s", "-quick", "-shards", n}, &out, &errb); code != 0 {
			t.Fatalf("-series s -shards %s exit %d, stderr: %s", n, code, errb.String())
		}
		return out.String()
	}
	if a, b := shardRun("1"), shardRun("4"); a != b {
		t.Errorf("-series s output differs between -shards 1 and -shards 4")
	}
}

// TestCLIPolicyByteIdentical: an explicit -policy pcr-rr parses to the
// simulator's default-policy singleton, so both the default experiment
// stdout and the policy-sensitive W-series stdout are byte-identical
// with and without the flag — while a genuinely different policy moves
// the W-series numbers.
func TestCLIPolicyByteIdentical(t *testing.T) {
	runArgs := func(args ...string) string {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 0 {
			t.Fatalf("run(%v) = %d, stderr: %s", args, code, stderr.String())
		}
		return stdout.String()
	}
	if def, exp := runArgs("-quick"), runArgs("-quick", "-policy", "pcr-rr"); def != exp {
		t.Errorf("default stdout differs with explicit -policy pcr-rr")
	}
	w := runArgs("-series", "w", "-experiment", "W3", "-quick")
	if exp := runArgs("-series", "w", "-experiment", "W3", "-quick", "-policy", "pcr-rr"); w != exp {
		t.Errorf("W3 stdout differs with explicit -policy pcr-rr")
	}
	if rr := runArgs("-series", "w", "-experiment", "W3", "-quick", "-policy", "rr"); w == rr {
		t.Errorf("W3 stdout identical under -policy rr; the flag is not reaching the world")
	}
}

// TestCLIKSeries covers the capacity lab's CLI surface: opt-in listing,
// and a run whose -json summary carries the knee records CI uploads as
// an artifact.
func TestCLIKSeries(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list", "-series", "k"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list -series k exit %d", code)
	}
	for _, id := range []string{"K1", "K2", "K3"} {
		if !strings.Contains(stdout.String(), id) {
			t.Errorf("-list -series k missing %s:\n%s", id, stdout.String())
		}
	}
	if strings.Contains(stdout.String(), "T1") || strings.Contains(stdout.String(), "W1") {
		t.Errorf("-list -series k should list only the K series:\n%s", stdout.String())
	}

	path := filepath.Join(t.TempDir(), "k1.json")
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-series", "k", "-experiment", "K1", "-quick", "-json", path}, &stdout, &stderr); code != 0 {
		t.Fatalf("K1 run exit %d, stderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var sum struct {
		Experiments []struct {
			ID       string `json:"id"`
			Capacity []struct {
				Schema    int     `json:"schema"`
				Name      string  `json:"name"`
				KneeRate  float64 `json:"knee_rate"`
				Saturated bool    `json:"saturated"`
			} `json:"capacity"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal(data, &sum); err != nil {
		t.Fatalf("bad -json output: %v", err)
	}
	if len(sum.Experiments) != 1 || sum.Experiments[0].ID != "K1" {
		t.Fatalf("unexpected experiments in -json: %+v", sum.Experiments)
	}
	caps := sum.Experiments[0].Capacity
	if len(caps) == 0 {
		t.Fatal("K1 -json summary has no capacity records")
	}
	for _, c := range caps {
		if c.Schema != 1 || c.Name == "" || c.KneeRate <= 0 {
			t.Errorf("malformed capacity record in -json: %+v", c)
		}
	}
}
