// Command threadstudy regenerates the tables and figures of "Using
// Threads in Interactive Systems: A Case Study" (Hauser et al., SOSP '93)
// from the simulated Cedar/GVX worlds.
//
// Usage:
//
//	threadstudy                  # run everything (T1..T4, F1..F12)
//	threadstudy -list            # list experiment IDs
//	threadstudy -experiment T2   # run one experiment
//	threadstudy -experiment T2,W1,C1
//	                             # run several, in the order given
//	                             # (duplicated IDs are a usage error)
//	threadstudy -quick           # ~3x shorter measurement windows
//	threadstudy -seed 7          # change the deterministic seed
//	threadstudy -parallel 4      # worker-pool parallelism (default GOMAXPROCS);
//	                             # output is byte-identical to -parallel 1
//	threadstudy -json out.json   # also write per-experiment metrics
//	                             # (wall time, virtual time, events, events/sec)
//	threadstudy -verify          # run each experiment twice, concurrently,
//	                             # and fail on any output difference
//	threadstudy -trace out.bin -benchmark "Cedar/Idle Cedar"
//	                             # capture a benchmark's raw event trace
//	                             # (inspect with cmd/traceview)
//	threadstudy -profile         # per-thread scheduler accounting, monitor
//	                             # contention, CV waits and §6.2 inversion
//	                             # episodes for the -benchmark world
//	threadstudy -chrometrace out.json
//	                             # export the profiled run as Chrome
//	                             # trace-event JSON (load in Perfetto)
//	threadstudy -profilejson out.json
//	                             # machine-readable accounting summary
//	threadstudy -bench BENCH.json
//	                             # fixed-seed quick sweep of every
//	                             # experiment with profiling; write the
//	                             # combined metrics+accounting JSON
//	threadstudy -faults plan.json -experiment R1
//	                             # replace the R-series' built-in fault
//	                             # plans with one loaded from JSON
//	threadstudy -faultseed 9     # reseed the injector RNG only
//	threadstudy -audit -auditmin 1 -experiment F8
//	                             # print §5.3 CV audit findings after
//	                             # each report
//	threadstudy -series w        # run the W-series open-loop load
//	                             # workloads (W1..W3) instead of the
//	                             # default T/F/R set
//	threadstudy -series c,d      # run several opt-in series in the
//	                             # order given: w (load), c (cluster
//	                             # fleets), d (resilience), s
//	                             # (scheduling policies), k (capacity
//	                             # knees); duplicate or unknown keys
//	                             # are a usage error
//	threadstudy -series k -json CAPACITY.json
//	                             # run the K-series capacity sweeps and
//	                             # write the schema-versioned knee
//	                             # records into the metrics summary
//	threadstudy -series w -policy mlfq
//	                             # run the W-series under a non-default
//	                             # scheduling policy (name[:key=val,...];
//	                             # see cmd/schedcheck -list for specs)
//	threadstudy -series w -experiment W1 -json -
//	                             # one load workload, with throughput and
//	                             # latency percentiles in the summary
//	                             # (-experiment ids from an opt-in series
//	                             # require that series in -series)
//	threadstudy -series c -experiment C2 -json -
//	                             # one fleet sweep, with per-instance and
//	                             # aggregate SLO records in the summary
//	threadstudy -series d -experiment D3 -json -
//	                             # one resilience experiment, with the
//	                             # graceful-degradation buckets and the
//	                             # mechanism ledger in the summary
//
// The former per-series flags (-wseries, -cseries, -dseries, -sseries)
// remain as deprecated aliases for -series w/c/d/s and warn on stderr.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"time"

	"repro/internal/cliflag"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/paradigm"
	"repro/internal/profile"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vclock"
	"repro/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// outputSchema versions every machine-readable output this command
// writes (-json, -profilejson, -bench). Downstream tooling checks it
// before parsing; the schedcheck replay-token prefix "v1" is the same
// version 1. The schemas are documented in EXPERIMENTS.md.
const outputSchema = 1

// jsonSummary is the machine-readable -json report: enough context to
// reproduce the run (seed, quick, parallelism) plus one Metrics record
// per experiment in presentation order. BENCH_*.json trajectory tracking
// consumes these.
type jsonSummary struct {
	Schema      int                   `json:"schema"`
	Seed        int64                 `json:"seed"`
	Quick       bool                  `json:"quick"`
	Parallelism int                   `json:"parallelism"`
	GoMaxProcs  int                   `json:"gomaxprocs"`
	Verify      bool                  `json:"verify,omitempty"`
	TotalWall   time.Duration         `json:"total_wall_ns"`
	Experiments []experiments.Metrics `json:"experiments"`
}

// run is main with its dependencies injected, so the CLI surface —
// flag validation included — is testable. It returns the process exit
// code: 0 success, 1 runtime failure, 2 usage error.
func run(args []string, stdout, stderr io.Writer) int {
	fs := cliflag.New("threadstudy", stderr)
	var (
		list      = fs.Bool("list", false, "list experiment IDs and exit")
		expID     = fs.String("experiment", "", "run selected experiments by ID, comma-separated (default: all; opt-in series ids need their series in -series)")
		series    = fs.String("series", "", "enable opt-in experiment series, comma-separated keys: w (load), c (cluster), d (resilience), s (scheduling), k (capacity)")
		wseries   = fs.Bool("wseries", false, "deprecated alias for -series w")
		cseries   = fs.Bool("cseries", false, "deprecated alias for -series c")
		dseries   = fs.Bool("dseries", false, "deprecated alias for -series d")
		sseries   = fs.Bool("sseries", false, "deprecated alias for -series s")
		policy    = fs.String("policy", "", "scheduling policy for the W-series worlds, as name[:key=val,...] (default pcr-rr)")
		quick     = fs.Bool("quick", false, "use ~3x shorter measurement windows")
		format    = fs.String("format", "text", "output format: text or markdown")
		verify    = fs.Bool("verify", false, "run each experiment twice concurrently and fail on nondeterminism")
		seed      = fs.Int64("seed", 1, "deterministic seed (must be nonzero)")
		parallel  = fs.Int("parallel", runtime.GOMAXPROCS(0), "number of experiments to run concurrently")
		jsonOut   = fs.String("json", "", "write a machine-readable metrics summary to this file (\"-\" for stdout)")
		traceOut  = fs.String("trace", "", "write a benchmark's binary event trace to this file")
		benchName = fs.String("benchmark", "Cedar/Idle Cedar", "benchmark for -trace, as System/Name")
		traceDur  = fs.Duration("traceduration", 5*time.Second, "virtual duration for -trace (wall-clock syntax, interpreted as virtual time)")
		faultsIn  = fs.String("faults", "", "JSON fault plan replacing the R-series experiments' built-in plans")
		faultSeed = fs.Int64("faultseed", 0, "seed for the fault injector RNG (default: derived from -seed)")
		audit     = fs.Bool("audit", false, "run the §5.3 CV auditors and print findings after each report")
		auditMin  = fs.Int("auditmin", 10, "minimum observed waits before a CV is auditable (lower is more sensitive)")
		profFlag  = fs.Bool("profile", false, "print per-thread scheduler accounting for the -benchmark world")
		chromeOut = fs.String("chrometrace", "", "write the profiled -benchmark run as Chrome trace-event JSON to this file")
		profJSON  = fs.String("profilejson", "", "write the profiled run's accounting summary as JSON (\"-\" for stdout)")
		benchOut  = fs.String("bench", "", "run the fixed-seed quick sweep with profiling and write combined JSON to this file (\"-\" for stdout)")
		benchBase = fs.String("benchbaseline", "", "compare the -bench sweep against this baseline JSON and fail if aggregate events/sec regresses")
		shards    = fs.Int("shards", 0, "cluster advance parallelism for the C/D-series fleets (0: GOMAXPROCS; output is byte-identical at any value)")
	)
	if err := fs.Parse(args); err != nil {
		return cliflag.ExitUsage
	}

	if err := fs.NoArgs(); err != nil {
		return fs.Fail(err)
	}
	if err := cliflag.OneOf("format", *format, "text", "markdown"); err != nil {
		return fs.Fail(err)
	}
	// Config.seed() would silently remap 0 to the default seed 1, which
	// corrupts seed sweeps; reject it instead.
	if err := cliflag.CheckSeed(*seed, "0 is not a distinct seed (it selects the default, 1); pick a nonzero seed"); err != nil {
		return fs.Fail(err)
	}
	if err := cliflag.MinInt("parallel", *parallel, 1, "need at least one worker"); err != nil {
		return fs.Fail(err)
	}
	if limit := runtime.NumCPU() * 4; *parallel > limit {
		// Results are deterministic regardless, so this is a warning, not
		// an error: the extra workers only add scheduler thrash.
		fs.Warnf("-parallel %d exceeds %d (4x %d CPUs); extra workers add contention, not speed",
			*parallel, limit, runtime.NumCPU())
	}
	if err := cliflag.MinInt("auditmin", *auditMin, 1, "a CV needs at least one observed wait to be auditable"); err != nil {
		return fs.Fail(err)
	}
	if err := cliflag.MinInt("shards", *shards, 0, "negative shard counts are meaningless; 0 selects GOMAXPROCS"); err != nil {
		return fs.Fail(err)
	}
	if *shards == 0 {
		*shards = runtime.GOMAXPROCS(0)
	}
	if *benchBase != "" && *benchOut == "" {
		return fs.Fail(fmt.Errorf("-benchbaseline requires -bench"))
	}
	// -series enables opt-in experiment series by one-letter key, in the
	// order given. The four former per-series flags survive as deprecated
	// aliases that append their key (so existing scripts keep working),
	// each warning once on stderr. A duplicated or unknown key is a usage
	// error either way.
	seriesKeys := cliflag.List(*series)
	for _, alias := range []struct {
		set  bool
		flag string
		key  string
	}{
		{*wseries, "wseries", "w"},
		{*cseries, "cseries", "c"},
		{*dseries, "dseries", "d"},
		{*sseries, "sseries", "s"},
	} {
		if alias.set {
			fs.Warnf("-%s is deprecated; use -series %s", alias.flag, alias.key)
			seriesKeys = append(seriesKeys, alias.key)
		}
	}
	if err := cliflag.NoDuplicates("series", seriesKeys); err != nil {
		return fs.Fail(err)
	}
	enabled := make(map[string]bool, len(seriesKeys))
	for _, key := range seriesKeys {
		if _, err := experiments.BySeries(key); err != nil {
			return fs.Fail(err)
		}
		enabled[key] = true
	}
	// Validate the policy spec at the flag boundary: a typo'd name or
	// parameter is a usage error here, not a panic deep inside a world.
	if *policy != "" {
		if _, err := sched.Parse(*policy); err != nil {
			return fs.Fail(err)
		}
	}
	// -experiment takes a comma-separated ID list; a duplicated ID would
	// silently run (and print) an experiment twice, so it is a usage
	// error, not a request. IDs belonging to an opt-in series require
	// that series in -series — the same gate every series now shares.
	expIDs := cliflag.List(*expID)
	if err := cliflag.NoDuplicates("experiment", expIDs); err != nil {
		return fs.Fail(err)
	}
	for _, id := range expIDs {
		if key := experiments.SeriesOf(id); key != "" && !enabled[key] {
			return fs.Fail(fmt.Errorf("-experiment %s selects an opt-in experiment; enable its series with -series %s", id, key))
		}
	}
	var plan *fault.Plan
	if *faultsIn != "" {
		p, err := fault.Load(*faultsIn)
		if err != nil {
			return fs.Fail(err)
		}
		// -faults replaces the R-series' single-world plans; the
		// instance-scoped kinds only make sense inside a cluster fleet
		// (the D-series carries its own built-in plans). fault.New would
		// reject the plan anyway, but deep inside the run — fail at the
		// flag boundary instead.
		if p.HasInstanceFaults() {
			return fs.Fail(fmt.Errorf("-faults %s: plan has cluster-scoped fault kinds (crash_instance/stall_instance/degrade_instance); -faults drives the single-world R experiments, which cannot host them", *faultsIn))
		}
		plan = &p
	}

	// seriesSet is the enabled opt-in series' experiments, in the order
	// the keys were given; empty when no series was enabled.
	var seriesSet []experiments.Experiment
	for _, key := range seriesKeys {
		exps, _ := experiments.BySeries(key)
		seriesSet = append(seriesSet, exps...)
	}

	if *list {
		set := experiments.All()
		if len(seriesSet) > 0 {
			set = seriesSet
		}
		for _, e := range set {
			fmt.Fprintf(stdout, "%-4s %s\n", e.ID, e.Title)
		}
		return 0
	}

	if *traceOut != "" || *profFlag || *chromeOut != "" || *profJSON != "" {
		dur, err := cliflag.VirtualDuration("traceduration", *traceDur)
		if err != nil {
			return fs.Fail(err)
		}
		if *traceOut != "" {
			if err := captureTrace(stdout, *traceOut, *benchName, *seed, dur); err != nil {
				return fs.Error(err)
			}
			return cliflag.ExitOK
		}
		err = profileBenchmark(stdout, profileOpts{
			bench:    *benchName,
			seed:     *seed,
			dur:      dur,
			markdown: *format == "markdown",
			print:    *profFlag,
			chrome:   *chromeOut,
			jsonPath: *profJSON,
		})
		if err != nil {
			return fs.Error(err)
		}
		return cliflag.ExitOK
	}

	if *benchOut != "" {
		if err := runBench(stdout, *benchOut, *parallel, *shards, *benchBase); err != nil {
			return fs.Error(err)
		}
		return cliflag.ExitOK
	}

	cfg := experiments.Config{Quick: *quick, Seed: *seed, Faults: plan, FaultSeed: *faultSeed, Shards: *shards, Policy: *policy}
	var todo []experiments.Experiment
	switch {
	case len(expIDs) > 0:
		for _, id := range expIDs {
			e, err := experiments.ByID(id)
			if err != nil {
				return fs.Error(err)
			}
			todo = append(todo, e)
		}
	case len(seriesSet) > 0:
		todo = seriesSet
	default:
		todo = experiments.All()
	}
	if *faultSeed != 0 && plan == nil {
		// Without -faults, only the R-series experiments (built-in plans)
		// consult the injector seed. Flag the silently ignored knob. (The
		// D-series injects instance faults, but from the specs' own
		// deterministic plans: its fault seed derives from the run seed,
		// not from -faultseed.)
		hasR := false
		for _, e := range todo {
			hasR = hasR || strings.HasPrefix(e.ID, "R")
		}
		if !hasR {
			target := *expID
			if target == "" {
				var names []string
				for _, key := range seriesKeys {
					names = append(names, strings.ToUpper(key))
				}
				target = "the " + strings.Join(names, "/") + " series"
			}
			fs.Warnf("-faultseed %d has no effect on %s without -faults (only R-series experiments inject faults)",
				*faultSeed, target)
		}
	}

	failed := false
	start := time.Now()
	outcomes := experiments.RunWith(cfg, experiments.Options{
		Parallelism:   *parallel,
		Verify:        *verify,
		Audit:         *audit,
		AuditMinWaits: *auditMin,
		Experiments:   todo,
		OnResult: func(o experiments.Outcome) {
			if *verify {
				if o.Mismatch {
					fmt.Fprintf(stderr, "threadstudy: %s is NOT deterministic\n", o.Report.ID)
					failed = true
				} else {
					fmt.Fprintf(stdout, "%-4s deterministic ok\n", o.Report.ID)
				}
				return
			}
			if *format == "markdown" {
				fmt.Fprintln(stdout, o.Report.Markdown())
			} else {
				fmt.Fprintln(stdout, o.Report.String())
			}
			if *audit {
				if len(o.Audit) == 0 {
					fmt.Fprintf(stdout, "audit %s: no suspicious condition variables\n\n", o.Report.ID)
				} else {
					for _, f := range o.Audit {
						fmt.Fprintf(stdout, "audit %s: %s\n", o.Report.ID, f)
					}
					fmt.Fprintln(stdout)
				}
			}
		},
	})
	totalWall := time.Since(start)

	if *jsonOut != "" {
		sum := jsonSummary{
			Schema:      outputSchema,
			Seed:        *seed,
			Quick:       *quick,
			Parallelism: *parallel,
			GoMaxProcs:  runtime.GOMAXPROCS(0),
			Verify:      *verify,
			TotalWall:   totalWall,
		}
		for _, o := range outcomes {
			sum.Experiments = append(sum.Experiments, o.Metrics)
		}
		if err := writeJSON(*jsonOut, stdout, sum); err != nil {
			return fs.Error(err)
		}
	}
	if failed {
		return cliflag.ExitFailure
	}
	return cliflag.ExitOK
}

// writeJSON marshals sum to path, or to stdout when path is "-".
func writeJSON(path string, stdout io.Writer, sum jsonSummary) error {
	data, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// findBench resolves a System/Name benchmark flag value.
func findBench(benchName string) (workload.Benchmark, error) {
	system, name, ok := strings.Cut(benchName, "/")
	if !ok {
		return workload.Benchmark{}, fmt.Errorf("benchmark must be System/Name, e.g. %q", "Cedar/Idle Cedar")
	}
	b, err := workload.FindBenchmark(system, name)
	if err != nil {
		var names []string
		for _, bb := range workload.AllBenchmarks() {
			names = append(names, bb.System+"/"+bb.Name)
		}
		sort.Strings(names)
		return workload.Benchmark{}, fmt.Errorf("%v; available: %s", err, strings.Join(names, ", "))
	}
	return b, nil
}

// captureTrace runs one benchmark and writes its raw event stream.
func captureTrace(stdout io.Writer, path, benchName string, seed int64, dur vclock.Duration) error {
	b, err := findBench(benchName)
	if err != nil {
		return err
	}
	if dur <= 0 {
		dur = 5 * vclock.Second
	}
	var buf trace.Buffer
	w := sim.NewWorld(sim.Config{Trace: &buf, Seed: seed, SystemDaemon: true})
	defer w.Shutdown()
	reg := paradigm.NewRegistry()
	b.Build(w, reg)
	w.Run(vclock.Time(0).Add(dur))

	names := make(map[int32]string)
	for _, th := range w.Threads() {
		names[th.ID()] = th.Name()
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.WriteTrace(f, trace.Trace{Events: buf.Events, Names: names}); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %d events, %d thread names (%s of virtual time) to %s\n", buf.Len(), len(names), dur, path)
	return nil
}

// profileOpts parameterizes one profiled benchmark run.
type profileOpts struct {
	bench    string
	seed     int64
	dur      vclock.Duration
	markdown bool
	print    bool   // print the accounting report
	chrome   string // Chrome trace-event JSON output path, "" to skip
	jsonPath string // accounting-summary JSON path, "" to skip, "-" for stdout
}

// profileBenchmark runs one benchmark with an attached profiler and
// renders the per-thread scheduler accounting in the requested forms.
func profileBenchmark(stdout io.Writer, o profileOpts) error {
	b, err := findBench(o.bench)
	if err != nil {
		return err
	}
	set := profile.NewSet()
	set.KeepSpans = o.chrome != ""
	w := sim.NewWorld(sim.Config{
		Seed:         o.seed,
		SystemDaemon: true,
		Hooks:        sim.Hooks{OnWorld: set.Attach},
	})
	defer w.Shutdown()
	reg := paradigm.NewRegistry()
	b.Build(w, reg)
	w.Run(vclock.Time(0).Add(o.dur))

	prof := set.Finish()[0]
	if o.print {
		rep := profile.NewReport(prof)
		if o.markdown {
			fmt.Fprintln(stdout, rep.Markdown())
		} else {
			fmt.Fprintln(stdout, rep.String())
		}
	}
	if o.chrome != "" {
		f, err := os.Create(o.chrome)
		if err != nil {
			return err
		}
		werr := profile.WriteChromeTrace(f, prof)
		cerr := f.Close()
		if werr != nil {
			return werr
		}
		if cerr != nil {
			return cerr
		}
		fmt.Fprintf(stdout, "wrote Chrome trace (%d spans, %s of virtual time) to %s\n",
			len(prof.Spans), o.dur, o.chrome)
	}
	if o.jsonPath != "" {
		sum := struct {
			Schema int `json:"schema"`
			profile.Summary
		}{outputSchema, profile.Summarize(prof)}
		data, err := json.MarshalIndent(sum, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if o.jsonPath == "-" {
			_, err = stdout.Write(data)
			return err
		}
		if err := os.WriteFile(o.jsonPath, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote accounting summary to %s\n", o.jsonPath)
	}
	return nil
}

// benchExperiment is one sweep entry of the -bench summary: the run's
// metrics plus its aggregated scheduler accounting.
type benchExperiment struct {
	experiments.Metrics
	Profile *profile.Summary `json:"profile,omitempty"`
}

// benchSummary is the -bench output (BENCH_PR7.json): a fixed-seed quick
// sweep of every experiment — the T/F/R set plus the W-series load
// workloads, the C-series cluster fleets, and the D-series resilience
// study — with profiling on, plus the accounting summary of the default
// benchmark world. Wall-clock fields vary between machines; every
// virtual-time field is deterministic.
type benchSummary struct {
	Schema      int               `json:"schema"`
	Seed        int64             `json:"seed"`
	Quick       bool              `json:"quick"`
	Parallelism int               `json:"parallelism"`
	Shards      int               `json:"shards,omitempty"`
	GoMaxProcs  int               `json:"gomaxprocs"`
	TotalWall   time.Duration     `json:"total_wall_ns"`
	Experiments []benchExperiment `json:"experiments"`
	Benchmark   struct {
		Name    string          `json:"name"`
		Profile profile.Summary `json:"profile"`
	} `json:"benchmark"`
}

// runBench executes the benchmark sweep and writes the combined JSON.
// A nonzero accounting residue anywhere fails the run: the exactness
// invariant is part of what the bench artifact certifies. When baseline
// names a previous bench artifact, the run also fails if aggregate
// events/sec regresses below it.
func runBench(stdout io.Writer, path string, parallel, shards int, baseline string) error {
	// The sweep is a throughput benchmark over fixed deterministic work:
	// virtual results do not depend on collector cadence, so amortize GC
	// across the run instead of collecting at the default 100% heap-growth
	// trigger (world setup — goroutine stacks, registries — dominates
	// allocation; steady-state scheduling allocates nothing).
	defer debug.SetGCPercent(debug.SetGCPercent(600))
	cfg := experiments.Config{Quick: true, Seed: 1, Shards: shards}
	start := time.Now()
	outcomes := experiments.RunWith(cfg, experiments.Options{
		Parallelism: parallel,
		Profile:     true,
		// The sweep covers the full population: the T/F/R artifact set,
		// the W-series load workloads, the C-series cluster fleets, and
		// the D-series resilience study, so the bench artifact tracks
		// report fidelity, server-scale throughput, fleet-scale SLOs and
		// fault-tolerance behavior together.
		Experiments: append(append(append(experiments.All(),
			experiments.WSeries()...), experiments.CSeries()...), experiments.DSeries()...),
	})
	sum := benchSummary{
		Schema:      outputSchema,
		Seed:        1,
		Quick:       true,
		Parallelism: parallel,
		Shards:      shards,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		TotalWall:   time.Since(start),
	}
	for _, o := range outcomes {
		sum.Experiments = append(sum.Experiments, benchExperiment{Metrics: o.Metrics, Profile: o.Profile})
		if o.Profile != nil && o.Profile.Residue != 0 {
			return fmt.Errorf("%s: accounting residue %dus (want 0)", o.Metrics.ID, int64(o.Profile.Residue))
		}
	}

	b, err := findBench("Cedar/Idle Cedar")
	if err != nil {
		return err
	}
	set := profile.NewSet()
	w := sim.NewWorld(sim.Config{
		Seed:         1,
		SystemDaemon: true,
		Hooks:        sim.Hooks{OnWorld: set.Attach},
	})
	defer w.Shutdown()
	reg := paradigm.NewRegistry()
	b.Build(w, reg)
	w.Run(vclock.Time(0).Add(5 * vclock.Second))
	sum.Benchmark.Name = "Cedar/Idle Cedar"
	sum.Benchmark.Profile = set.Summary()
	if r := sum.Benchmark.Profile.Residue; r != 0 {
		return fmt.Errorf("benchmark profile: accounting residue %dus (want 0)", int64(r))
	}

	if baseline != "" {
		// With the summary going to stdout, keep stdout pure JSON: the
		// gate still fails loudly, only its progress line is suppressed.
		gateOut := stdout
		if path == "-" {
			gateOut = io.Discard
		}
		if err := checkBenchBaseline(gateOut, sum, baseline); err != nil {
			return err
		}
	}

	data, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = stdout.Write(data)
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote bench summary (%d experiments) to %s\n", len(sum.Experiments), path)
	return nil
}

// aggregateRate returns total events over total per-experiment wall time
// in events/sec — the headline the BENCH_*.json trajectory tracks.
func aggregateRate(exps []benchExperiment) (events int64, rate float64) {
	var wall time.Duration
	for _, e := range exps {
		events += e.Events
		wall += e.WallTime
	}
	if wall <= 0 {
		return events, 0
	}
	return events, float64(events) / wall.Seconds()
}

// checkBenchBaseline fails the bench run if the new sweep's aggregate
// events/sec fell below the baseline artifact's, or if the deterministic
// per-experiment event counts drifted — a drifted count means the two
// sweeps did different work, which would make the rate gate meaningless.
func checkBenchBaseline(stdout io.Writer, sum benchSummary, path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("benchbaseline: %w", err)
	}
	var base benchSummary
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("benchbaseline %s: %w", path, err)
	}
	baseEvents := make(map[string]int64, len(base.Experiments))
	for _, e := range base.Experiments {
		baseEvents[e.ID] = e.Events
	}
	for _, e := range sum.Experiments {
		if want, ok := baseEvents[e.ID]; ok && want != e.Events {
			return fmt.Errorf("benchbaseline %s: %s processed %d events, baseline %d — deterministic work drifted",
				path, e.ID, e.Events, want)
		}
	}
	_, baseRate := aggregateRate(base.Experiments)
	events, rate := aggregateRate(sum.Experiments)
	fmt.Fprintf(stdout, "bench aggregate: %d events at %.0f events/sec (baseline %.0f, %.2fx)\n",
		events, rate, baseRate, rate/baseRate)
	if rate < baseRate {
		return fmt.Errorf("benchbaseline %s: aggregate %.0f events/sec regressed below baseline %.0f",
			path, rate, baseRate)
	}
	return nil
}
