// Command threadstudy regenerates the tables and figures of "Using
// Threads in Interactive Systems: A Case Study" (Hauser et al., SOSP '93)
// from the simulated Cedar/GVX worlds.
//
// Usage:
//
//	threadstudy                  # run everything (T1..T4, F1..F8)
//	threadstudy -list            # list experiment IDs
//	threadstudy -experiment T2   # run one experiment
//	threadstudy -quick           # ~3x shorter measurement windows
//	threadstudy -seed 7          # change the deterministic seed
//	threadstudy -trace out.bin -benchmark "Cedar/Idle Cedar"
//	                             # capture a benchmark's raw event trace
//	                             # (inspect with cmd/traceview)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"time"

	"repro/internal/experiments"
	"repro/internal/paradigm"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vclock"
	"repro/internal/workload"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list experiment IDs and exit")
		expID     = flag.String("experiment", "", "run a single experiment by ID (default: all)")
		quick     = flag.Bool("quick", false, "use ~3x shorter measurement windows")
		format    = flag.String("format", "text", "output format: text or markdown")
		verify    = flag.Bool("verify", false, "run each experiment twice and fail on nondeterminism")
		seed      = flag.Int64("seed", 1, "deterministic seed")
		traceOut  = flag.String("trace", "", "write a benchmark's binary event trace to this file")
		benchName = flag.String("benchmark", "Cedar/Idle Cedar", "benchmark for -trace, as System/Name")
		traceDur  = flag.Duration("traceduration", 5*time.Second, "virtual duration for -trace (wall-clock syntax, interpreted as virtual time)")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	if *traceOut != "" {
		if err := captureTrace(*traceOut, *benchName, *seed, vclock.Duration((*traceDur).Microseconds())); err != nil {
			fmt.Fprintln(os.Stderr, "threadstudy:", err)
			os.Exit(1)
		}
		return
	}

	cfg := experiments.Config{Quick: *quick, Seed: *seed}
	var todo []experiments.Experiment
	if *expID != "" {
		e, err := experiments.ByID(*expID)
		if err != nil {
			fmt.Fprintln(os.Stderr, "threadstudy:", err)
			os.Exit(1)
		}
		todo = []experiments.Experiment{e}
	} else {
		todo = experiments.All()
	}
	failed := false
	for _, e := range todo {
		r := e.Run(cfg)
		if *verify {
			again := e.Run(cfg)
			if r.String() != again.String() {
				fmt.Fprintf(os.Stderr, "threadstudy: %s is NOT deterministic\n", e.ID)
				failed = true
				continue
			}
			fmt.Printf("%-4s deterministic ok\n", e.ID)
			continue
		}
		if *format == "markdown" {
			fmt.Println(r.Markdown())
		} else {
			fmt.Println(r.String())
		}
	}
	if failed {
		os.Exit(1)
	}
}

// captureTrace runs one benchmark and writes its raw event stream.
func captureTrace(path, benchName string, seed int64, dur vclock.Duration) error {
	system, name, ok := strings.Cut(benchName, "/")
	if !ok {
		return fmt.Errorf("benchmark must be System/Name, e.g. %q", "Cedar/Idle Cedar")
	}
	b, err := workload.FindBenchmark(system, name)
	if err != nil {
		var names []string
		for _, bb := range workload.AllBenchmarks() {
			names = append(names, bb.System+"/"+bb.Name)
		}
		sort.Strings(names)
		return fmt.Errorf("%v; available: %s", err, strings.Join(names, ", "))
	}
	if dur <= 0 {
		dur = 5 * vclock.Second
	}
	var buf trace.Buffer
	w := sim.NewWorld(sim.Config{Trace: &buf, Seed: seed, SystemDaemon: true})
	defer w.Shutdown()
	reg := paradigm.NewRegistry()
	b.Build(w, reg)
	w.Run(vclock.Time(0).Add(dur))

	names := make(map[int32]string)
	for _, th := range w.Threads() {
		names[th.ID()] = th.Name()
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.WriteTrace(f, trace.Trace{Events: buf.Events, Names: names}); err != nil {
		return err
	}
	fmt.Printf("wrote %d events, %d thread names (%s of virtual time) to %s\n", buf.Len(), len(names), dur, path)
	return nil
}
