package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden files from current output")

// goldenCases pins the CLI's stdout byte-for-byte at the default seed.
// Any intentional change to report formatting or to the simulation's
// deterministic results must regenerate these with `go test -run
// TestGolden ./cmd/threadstudy -update` and show up in the diff.
var goldenCases = []struct {
	file string
	args []string
	slow bool // skipped with -short
}{
	{file: "list.txt", args: []string{"-list"}},
	{file: "quick.txt", args: []string{"-quick"}},
	{file: "quick-markdown.txt", args: []string{"-quick", "-format", "markdown"}},
	{file: "t1-markdown.txt", args: []string{"-experiment", "T1", "-format", "markdown"}},
	{file: "profile.txt", args: []string{"-profile", "-traceduration", "2s"}},
	{file: "cseries-quick.txt", args: []string{"-series", "c", "-quick"}},
	{file: "dseries-quick.txt", args: []string{"-series", "d", "-quick"}},
	{file: "sseries-quick.txt", args: []string{"-series", "s", "-quick"}},
	{file: "default.txt", args: nil, slow: true},
}

func TestGolden(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(strings.TrimSuffix(tc.file, ".txt"), func(t *testing.T) {
			if tc.slow && testing.Short() {
				t.Skip("full-length run; use the non-short suite")
			}
			t.Parallel()
			var stdout, stderr strings.Builder
			if code := run(tc.args, &stdout, &stderr); code != 0 {
				t.Fatalf("run(%v) = %d, stderr: %s", tc.args, code, stderr.String())
			}
			if stderr.Len() != 0 {
				t.Errorf("unexpected stderr: %s", stderr.String())
			}
			path := filepath.Join("testdata", "golden", tc.file)
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(stdout.String()), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (generate with -update): %v", err)
			}
			if got := stdout.String(); got != string(want) {
				t.Errorf("output differs from %s (regenerate with -update if intended)\n%s",
					path, firstDiff(got, string(want)))
			}
		})
	}
}

// firstDiff locates the first differing line so a golden mismatch is
// readable without an external diff tool.
func firstDiff(got, want string) string {
	gl, wl := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(gl) || i < len(wl); i++ {
		var g, w string
		if i < len(gl) {
			g = gl[i]
		}
		if i < len(wl) {
			w = wl[i]
		}
		if g != w {
			return fmt.Sprintf("first difference at line %d:\n  got:  %s\n  want: %s", i+1, g, w)
		}
	}
	return "outputs identical?"
}
