package main

import (
	"strings"
	"testing"
)

func TestSchedcheckCLI(t *testing.T) {
	cases := []struct {
		name     string
		args     []string
		wantCode int
		wantOut  []string // substrings of stdout
		wantErr  []string // substrings of stderr
	}{
		{
			name:     "list",
			args:     []string{"-list"},
			wantCode: 0,
			wantOut:  []string{"! broken-timeout-wait", "pump-chain", "r1-crash-rejuvenate", "oracles:", "policies", "mlfq", "hybrid"},
		},
		{
			name:     "unknown flag",
			args:     []string{"-bogus"},
			wantCode: 2,
			wantErr:  []string{"flag provided but not defined"},
		},
		{
			name:     "positional arg rejected",
			args:     []string{"ping-pong"},
			wantCode: 2,
			wantErr:  []string{"unexpected argument"},
		},
		{
			name:     "replay and shrink exclusive",
			args:     []string{"-replay", "v1;x;seed=1;steps=-", "-shrink", "v1;x;seed=1;steps=-"},
			wantCode: 2,
			wantErr:  []string{"mutually exclusive"},
		},
		{
			name:     "zero seed rejected",
			args:     []string{"-seed", "0"},
			wantCode: 2,
			wantErr:  []string{"-seed must be nonzero"},
		},
		{
			name:     "zero budget rejected",
			args:     []string{"-budget", "0"},
			wantCode: 2,
			wantErr:  []string{"-budget must be at least 1"},
		},
		{
			name:     "unknown scenario",
			args:     []string{"-scenario", "no-such"},
			wantCode: 2,
			wantErr:  []string{`unknown scenario "no-such"`},
		},
		{
			name:     "malformed token",
			args:     []string{"-replay", "garbage"},
			wantCode: 2,
			wantErr:  []string{"malformed token"},
		},
		{
			name:     "token for unknown scenario",
			args:     []string{"-replay", "v1;no-such;seed=1;steps=-"},
			wantCode: 2,
			wantErr:  []string{"no-such"},
		},
		{
			name:     "unknown policy rejected",
			args:     []string{"-policy", "bogus"},
			wantCode: 2,
			wantErr:  []string{`schedcheck: unknown policy "bogus"`},
		},
		{
			name:     "unknown policy param rejected",
			args:     []string{"-policy", "rr:nope=1"},
			wantCode: 2,
			wantErr:  []string{`unknown param "nope"`},
		},
		{
			name:     "policy and replay exclusive",
			args:     []string{"-policy", "rr", "-replay", "v1;x;seed=1;steps=-"},
			wantCode: 2,
			wantErr:  []string{"-policy and -replay are mutually exclusive"},
		},
		{
			name:     "policy and shrink exclusive",
			args:     []string{"-policy", "rr", "-shrink", "v1;x;seed=1;steps=-"},
			wantCode: 2,
			wantErr:  []string{"-policy and -shrink are mutually exclusive"},
		},
		{
			name:     "explore healthy scenario",
			args:     []string{"-scenario", "ping-pong", "-budget", "50"},
			wantCode: 0,
			wantOut:  []string{"ok   ping-pong", "50 runs"},
		},
		{
			name:     "explore under a non-default policy",
			args:     []string{"-scenario", "ping-pong", "-budget", "40", "-policy", "rr"},
			wantCode: 0,
			wantOut:  []string{"ok   ping-pong", "40 runs"},
		},
		{
			name:     "explore fixture finds and shrinks",
			args:     []string{"-scenario", "broken-timeout-wait"},
			wantCode: 0,
			wantOut:  []string{"ok!  broken-timeout-wait", "replay: v1;broken-timeout-wait;seed=1;steps="},
		},
		{
			name:     "replay regression token",
			args:     []string{"-replay", "v1;broken-timeout-wait;seed=1;steps=1.1"},
			wantCode: 0,
			wantOut:  []string{"reproduced", "gave up"},
		},
		{
			name:     "replay healthy schedule not a failure",
			args:     []string{"-replay", "v1;timeout-rescue;seed=1;steps=-"},
			wantCode: 1,
			wantOut:  []string{"no longer fails"},
		},
		{
			name:     "shrink strips padding",
			args:     []string{"-shrink", "v1;broken-timeout-wait;seed=1;steps=1.1"},
			wantCode: 0,
			wantOut:  []string{"reproduced", "replay: v1;broken-timeout-wait;seed=1;steps=1.1"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			code := run(tc.args, &stdout, &stderr)
			if code != tc.wantCode {
				t.Fatalf("run(%v) = %d, want %d\nstdout:\n%s\nstderr:\n%s",
					tc.args, code, tc.wantCode, stdout.String(), stderr.String())
			}
			for _, want := range tc.wantOut {
				if !strings.Contains(stdout.String(), want) {
					t.Errorf("stdout missing %q; got:\n%s", want, stdout.String())
				}
			}
			for _, want := range tc.wantErr {
				if !strings.Contains(stderr.String(), want) {
					t.Errorf("stderr missing %q; got:\n%s", want, stderr.String())
				}
			}
		})
	}
}

// The default full sweep must stay fast enough for CI's bounded-explore
// target and exit 0 (fixtures failing counts as expected behaviour).
func TestSchedcheckFullSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep covered by per-scenario cases in short mode")
	}
	var stdout, stderr strings.Builder
	if code := run(nil, &stdout, &stderr); code != 0 {
		t.Fatalf("full sweep exited %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "ok!  broken-timeout-wait") {
		t.Errorf("fixture line missing from sweep output:\n%s", stdout.String())
	}
}
