// Command schedcheck runs the CHESS-style schedule explorer
// (internal/explore) over the registered paradigm scenarios: it sweeps
// seeds, forces single and paired scheduler decisions, and random-walks
// the remaining budget, checking the §5/§6 oracles after every run. A
// failing schedule is shrunk to a minimal decision sequence and printed
// as a replay token.
//
// Usage:
//
//	schedcheck                    # explore every scenario (fixtures must fail)
//	schedcheck -list              # list scenarios, oracles and policies
//	schedcheck -scenario ping-pong -budget 2000
//	schedcheck -policy mlfq       # explore under a non-default scheduling
//	                              # policy (name[:key=val,...]); scenarios
//	                              # that opted into the strict-priority
//	                              # oracle are checked against the policy's
//	                              # own invariant instead
//	schedcheck -replay 'v1;broken-timeout-wait;seed=1;steps=1.1'
//	schedcheck -shrink 'v1;broken-timeout-wait;seed=1;steps=1.1,7.2'
//
// Exit codes: 0 — every scenario behaved as expected (healthy ones clean,
// known-bad fixtures failing), or a replayed/shrunk token still
// reproduces; 1 — a healthy scenario failed, a fixture stopped failing,
// or a replayed token no longer reproduces; 2 — usage error.
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/cliflag"
	"repro/internal/explore"
	"repro/internal/paradigm"
	"repro/internal/sched"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its dependencies injected so the CLI surface is
// testable. It returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := cliflag.New("schedcheck", stderr)
	var (
		list     = fs.Bool("list", false, "list scenarios and exit")
		scenario = fs.String("scenario", "", "explore a single scenario by name (default: all)")
		budget   = fs.Int("budget", 200, "run budget per scenario")
		seed     = fs.Int64("seed", 1, "first world seed of the sweep (must be nonzero)")
		policy   = fs.String("policy", "", "scheduling policy to explore under, as name[:key=val,...] (default pcr-rr)")
		replay   = fs.String("replay", "", "replay one schedule token and report")
		shrink   = fs.String("shrink", "", "replay one failing token and shrink it further")
	)
	if err := fs.Parse(args); err != nil {
		return cliflag.ExitUsage
	}
	if err := fs.NoArgs(); err != nil {
		return fs.Fail(err)
	}
	if err := cliflag.Exclusive("replay", *replay != "", "shrink", *shrink != ""); err != nil {
		return fs.Fail(err)
	}
	// A replay token reproduces the schedule it recorded, which only
	// means anything under the policy it was recorded under (the
	// default); -policy would silently change what the token replays.
	if err := cliflag.Exclusive("policy", *policy != "", "replay", *replay != ""); err != nil {
		return fs.Fail(err)
	}
	if err := cliflag.Exclusive("policy", *policy != "", "shrink", *shrink != ""); err != nil {
		return fs.Fail(err)
	}
	if err := cliflag.CheckSeed(*seed, "must be nonzero (0 would disable the world RNG)"); err != nil {
		return fs.Fail(err)
	}
	if err := cliflag.AtLeast("budget", *budget, 1); err != nil {
		return fs.Fail(err)
	}
	// Validate the policy spec at the flag boundary: a typo'd name or
	// parameter is a usage error here, not a per-run "policy" failure.
	if *policy != "" {
		if _, err := sched.Parse(*policy); err != nil {
			return fs.Fail(err)
		}
	}

	if *list {
		for _, sc := range paradigm.Scenarios() {
			mark := " "
			if sc.KnownBad {
				mark = "!"
			}
			fmt.Fprintf(stdout, "%s %-22s %s\n", mark, sc.Name, sc.Desc)
		}
		fmt.Fprintf(stdout, "\n%d scenarios ('!' = known-bad fixture, exploration must find its failure)\n", len(paradigm.Scenarios()))
		fmt.Fprintf(stdout, "oracles: %v\n", explore.OracleNames())
		fmt.Fprintf(stdout, "policies (-policy, each contributing its oracle above):\n")
		for _, name := range sched.Names() {
			fmt.Fprintf(stdout, "  %-7s %s\n", name, sched.Doc(name))
		}
		return 0
	}

	opts := explore.Options{Budget: *budget, Seeds: []int64{*seed, *seed + 1}, Policy: *policy}

	if *replay != "" || *shrink != "" {
		tok := *replay
		if tok == "" {
			tok = *shrink
		}
		res, err := explore.Replay(tok)
		if err != nil {
			return fs.Fail(err)
		}
		if res.Failure == nil {
			fmt.Fprintf(stdout, "%s: schedule no longer fails (%d forced steps)\n", res.Scenario, len(res.Schedule.Steps))
			return 1
		}
		fmt.Fprintf(stdout, "%s: reproduced %s\n", res.Scenario, res.Failure.Error())
		if *shrink != "" {
			sc, _ := paradigm.ScenarioByName(res.Scenario)
			min, runs := explore.Shrink(sc, res.Failure, opts)
			fmt.Fprintf(stdout, "shrunk %d -> %d steps in %d runs\nreplay: %s\n",
				len(res.Failure.Schedule.Steps), len(min.Schedule.Steps), runs, explore.EncodeToken(res.Scenario, min.Schedule))
		}
		return 0
	}

	scenarios := paradigm.Scenarios()
	if *scenario != "" {
		sc, ok := paradigm.ScenarioByName(*scenario)
		if !ok {
			return fs.Failf("unknown scenario %q (see -list)", *scenario)
		}
		scenarios = []paradigm.Scenario{sc}
	}

	code := 0
	for _, sc := range scenarios {
		v := explore.Explore(sc, opts)
		switch {
		case v.Failure == nil && !sc.KnownBad:
			fmt.Fprintf(stdout, "ok   %-22s %d runs, %d decision points\n", sc.Name, v.Runs, v.Decisions)
		case v.Failure == nil && sc.KnownBad:
			fmt.Fprintf(stdout, "MISS %-22s known-bad fixture survived %d runs — explorer regression?\n", sc.Name, v.Runs)
			code = 1
		default:
			min, _ := explore.Shrink(sc, v.Failure, opts)
			verdict := "FAIL"
			if sc.KnownBad {
				verdict = "ok! " // fixtures are supposed to fail
			} else {
				code = 1
			}
			fmt.Fprintf(stdout, "%s %-22s %s (found in %d runs, shrunk to %d steps)\n     replay: %s\n",
				verdict, sc.Name, min.Error(), v.Runs, len(min.Schedule.Steps), explore.EncodeToken(sc.Name, min.Schedule))
		}
	}
	return code
}
