package experiments

import (
	"fmt"

	"repro/internal/monitor"
	"repro/internal/paradigm"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/vclock"
)

// The paper's §7 closes with two research suggestions. These experiments
// carry them out on the reproduced substrate:
//
//   - F9 investigates priority inheritance — the technique PCR declined
//     to implement — against the SystemDaemon workaround it shipped.
//   - F10 investigates dynamically tuned timeouts — §5.5's answer to the
//     "timeouts and pauses with ridiculous values" the archeology found.

// FigInheritance (F9) measures the stable-inversion scenario of §6.2
// under the three policies: nothing, the SystemDaemon, and direct
// priority inheritance on the monitor.
func FigInheritance(cfg Config) *Report {
	type outcome struct {
		delay   vclock.Duration
		hogWork vclock.Duration // how much the mid-priority hog got done meanwhile
	}
	run := func(daemon, inheritance bool) outcome {
		w := sim.NewWorld(sim.Config{Seed: cfg.seed(), SystemDaemon: daemon, Hooks: cfg.Hooks})
		defer w.Shutdown()
		m := monitor.NewWithOptions(w, "resource", monitor.Options{PriorityInheritance: inheritance})
		var acquired vclock.Time
		var hogDone vclock.Duration
		w.Spawn("lo-holder", sim.PriorityLow, func(t *sim.Thread) any {
			m.Enter(t)
			t.Compute(20 * vclock.Millisecond)
			m.Exit(t)
			return nil
		})
		start := vclock.Time(vclock.Millisecond)
		w.At(start, func() {
			w.Spawn("mid-hog", sim.PriorityNormal, func(t *sim.Thread) any {
				for {
					t.Compute(vclock.Millisecond)
					if acquired == 0 {
						hogDone += vclock.Millisecond
					}
				}
			})
			w.Spawn("hi-waiter", sim.PriorityHigh, func(t *sim.Thread) any {
				m.Enter(t)
				acquired = t.Now()
				m.Exit(t)
				w.Stop()
				return nil
			})
		})
		w.Run(vclock.Time(vclock.Minute))
		if acquired == 0 {
			return outcome{delay: vclock.Minute, hogWork: hogDone}
		}
		return outcome{delay: acquired.Sub(start), hogWork: hogDone}
	}

	none := run(false, false)
	daemon := run(true, false)
	inherit := run(false, true)

	t := stats.NewTable("Priority inheritance vs PCR's workarounds (stable inversion, 20ms critical section)",
		"Policy", "hi-priority acquisition delay", "hog CPU during inversion")
	t.AddRowf("%s", "strict priority (none)", "%s", none.delay.String(), "%s", none.hogWork.String())
	t.AddRowf("%s", "SystemDaemon random donation (PCR)", "%s", daemon.delay.String(), "%s", daemon.hogWork.String())
	t.AddRowf("%s", "priority inheritance (future work)", "%s", inherit.delay.String(), "%s", inherit.hogWork.String())
	return &Report{ID: "F9", Title: "Priority inheritance for interactive systems (§7 future work)",
		Tables: []*stats.Table{t},
		Notes: []string{
			"inheritance bounds the inversion by the critical-section length (~20ms) and is deterministic;",
			"the SystemDaemon bounds it only probabilistically (its delay varies with the seed) and violates",
			"strict priority for everyone, which is exactly the paper's complaint: 'the thread model is",
			"incompletely specified with respect to priorities'. Inheritance here is direct (one level) —",
			"the paper's caveat stands: CV-based 'abstract resources' cannot be inherited automatically.",
		}}
}

// FigAdaptive (F10) measures fixed vs dynamically tuned client timeouts
// when the environment changes under the program — §5.5's scenario of
// values "chosen with some particular now-obsolete processor speed or
// network architecture in mind".
func FigAdaptive(cfg Config) *Report {
	const requests = 60
	run := func(adaptive bool, serverDelay vclock.Duration) (spurious int, mean vclock.Duration) {
		w := sim.NewWorld(sim.Config{Seed: cfg.seed(), TimeoutGranularity: vclock.Millisecond, Hooks: cfg.Hooks})
		defer w.Shutdown()
		m := monitor.New(w, "rpc")
		reqCV := m.NewCond("request")
		respCV := m.NewCondTimeout("response", 10*vclock.Millisecond)
		var reqPending, respReady bool

		w.Spawn("server", sim.PriorityNormal, func(t *sim.Thread) any {
			for {
				m.Enter(t)
				for !reqPending {
					reqCV.Wait(t)
				}
				reqPending = false
				m.Exit(t)
				t.BlockIO(serverDelay) // the "network" round trip
				m.Enter(t)
				respReady = true
				respCV.Notify(t)
				m.Exit(t)
			}
		})

		est := paradigm.NewAdaptiveTimeout(10 * vclock.Millisecond)
		var total vclock.Duration
		w.Spawn("client", sim.PriorityNormal, func(t *sim.Thread) any {
			for i := 0; i < requests; i++ {
				start := t.Now()
				m.Enter(t)
				reqPending = true
				reqCV.Notify(t)
				for !respReady {
					if adaptive {
						respCV.SetTimeout(est.Next())
					}
					if respCV.Wait(t) {
						// Timed out before the response: the §5.5 bug in
						// action (a retry storm in a real RPC system).
						spurious++
						if adaptive {
							est.ObserveTimeout()
						}
					}
				}
				respReady = false
				m.Exit(t)
				lat := t.Now().Sub(start)
				total += lat
				if adaptive {
					est.Observe(lat)
				}
				t.Compute(500 * vclock.Microsecond)
			}
			w.Stop()
			return nil
		})
		w.Run(vclock.Time(vclock.Minute))
		return spurious, total / requests
	}

	t := stats.NewTable(fmt.Sprintf("Fixed 10ms timeout vs adaptive timeout, %d requests", requests),
		"Strategy", "server at 4ms", "spurious TOs", "server at 120ms", "spurious TOs")
	fFast, fFastTO := vclock.Duration(0), 0
	fSlow, fSlowTO := vclock.Duration(0), 0
	aFast, aFastTO := vclock.Duration(0), 0
	aSlow, aSlowTO := vclock.Duration(0), 0
	fFastTO, fFast = swap(run(false, 4*vclock.Millisecond))
	fSlowTO, fSlow = swap(run(false, 120*vclock.Millisecond))
	aFastTO, aFast = swap(run(true, 4*vclock.Millisecond))
	aSlowTO, aSlow = swap(run(true, 120*vclock.Millisecond))
	t.AddRowf("%s", "fixed 10ms (tuned for the old, fast era)",
		"%s", fFast.String(), "%d", fFastTO, "%s", fSlow.String(), "%d", fSlowTO)
	t.AddRowf("%s", "adaptive (EWMA x2 margin, backoff on TO)",
		"%s", aFast.String(), "%d", aFastTO, "%s", aSlow.String(), "%d", aSlowTO)
	return &Report{ID: "F10", Title: "Dynamically tuned timeouts (§5.5 future work)",
		Tables: []*stats.Table{t},
		Notes: []string{
			"when the environment slows 30x under it, the fixed timeout fires spuriously ~12 times per request",
			"forever; the adaptive estimator pays a handful of timeouts while it learns, then none. Completion",
			"latency is the same either way because the NOTIFY still arrives — the waste is pure overhead,",
			"which is why §5.3 warns that timeout-driven systems 'apparently work correctly but slowly'.",
		}}
}

// swap reorders run's (spurious, mean) return for tidy assignment above.
func swap(spurious int, mean vclock.Duration) (int, vclock.Duration) { return spurious, mean }
