package experiments

import (
	"fmt"
	"io"

	"repro/internal/fault"
	"repro/internal/monitor"
	"repro/internal/paradigm"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/vclock"
	"repro/internal/workload"
)

// The R-series experiments inject faults from internal/fault into the
// paper's workloads and measure how well the paper's own robustness
// paradigms recover: task rejuvenation (§4.5) against crashed threads
// (§5.5), FORK retry against thread-limit exhaustion (§5.4), and the
// SystemDaemon's random donation against stable priority inversion
// (§6.2), with a watchdog sleeper supplying detection. Each experiment
// runs a fault-free baseline of the same seed next to the faulted world,
// so recovery is reported as measured deltas (events dropped, detection
// latency, restart count), not adjectives.

// progressSample is a (virtual time, counter) pair recorded by a driver
// sampler; the R experiments derive detection and recovery latencies
// from these traces.
type progressSample struct {
	at vclock.Time
	n  int64
}

// valueAt returns the last sampled value at or before t (0 before the
// first sample).
func valueAt(s []progressSample, t vclock.Time) int64 {
	var v int64
	for _, p := range s {
		if p.at > t {
			break
		}
		v = p.n
	}
	return v
}

// firstAdvanceAfter returns the time of the first sample after t whose
// value exceeds the value at t, or vclock.Never if progress never
// resumed.
func firstAdvanceAfter(s []progressSample, t vclock.Time) vclock.Time {
	base := valueAt(s, t)
	for _, p := range s {
		if p.at > t && p.n > base {
			return p.at
		}
	}
	return vclock.Never
}

// r1Result is one R1 world's measurements.
type r1Result struct {
	dispatched int64
	restarts   int
	crashes    []vclock.Time
	samples    []progressSample
}

// R1DefaultPlan is R1's standard fault plan: it crashes the dispatcher at one third and two thirds of
// the window, deferred until it is blocked in its wait loop.
func R1DefaultPlan(span vclock.Duration) fault.Plan {
	return fault.Plan{CrashThread: []fault.CrashThread{
		{Thread: "^event-dispatcher$", At: fault.D(span / 3), WhenBlocked: true},
		{Thread: "^event-dispatcher$", At: fault.D(2 * span / 3), WhenBlocked: true},
	}}
}

// r1Run drives the Cedar compile+keyboard workload for span under plan,
// sampling the dispatcher's progress counter every 5 ms.
func r1Run(cfg Config, plan fault.Plan, span vclock.Duration) r1Result {
	inj := fault.MustNew(plan, cfg.faultSeed())
	simCfg := sim.Config{Seed: cfg.seed(), SystemDaemon: true, Hooks: cfg.Hooks}
	inj.Configure(&simCfg)
	w := sim.NewWorld(simCfg)
	defer w.Shutdown()
	inj.Arm(w)
	reg := paradigm.NewRegistry()
	c := workload.NewCedar(w, reg, workload.DefaultCedarParams())
	c.StartKeyboard(8)
	c.StartCompile()
	var samples []progressSample
	w.Every(5*vclock.Millisecond, func() {
		samples = append(samples, progressSample{w.Now(), c.Dispatched})
	})
	w.Run(vclock.Time(span))
	c.Stop()
	return r1Result{c.Dispatched, c.Dispatcher().Restarts(), inj.CrashTimes(), samples}
}

// ResCrash is R1: crash the Cedar input event dispatcher mid-run, twice,
// under the compile workload, and let §4.5 task rejuvenation pick up the
// pieces. A fault-free run of the same seed provides the baseline for
// events dropped and post-crash throughput.
func ResCrash(cfg Config) *Report {
	span := cfg.window() / 2
	base := r1Run(cfg, fault.Plan{}, span)
	faulted := r1Run(cfg, cfg.faultPlan(R1DefaultPlan(span)), span)

	t := stats.NewTable(fmt.Sprintf("R1: dispatcher crashes under Cedar compile+keyboard (%s window)", vclock.Duration(span)),
		"Metric", "baseline", "faulted")
	t.AddRowf("%s", "events dispatched", "%d", base.dispatched, "%d", faulted.dispatched)
	t.AddRowf("%s", "crashes injected", "%d", len(base.crashes), "%d", len(faulted.crashes))
	t.AddRowf("%s", "dispatcher restarts", "%d", base.restarts, "%d", faulted.restarts)
	t.AddRowf("%s", "events dropped vs baseline", "%s", "-", "%d", base.dispatched-faulted.dispatched)

	// Recovery latency: crash time to the first observed dispatch after
	// it (5 ms sampling floor).
	for i, ct := range faulted.crashes {
		resumed := firstAdvanceAfter(faulted.samples, ct)
		lat := "never"
		if resumed != vclock.Never {
			lat = resumed.Sub(ct).String()
		}
		t.AddRowf("%s", fmt.Sprintf("recovery latency, crash %d", i+1), "%s", "-", "%s", lat)
	}

	notes := []string{
		"the dispatcher runs under §4.5 task rejuvenation ('an exception handler may simply fork a new",
		"copy of the service'), so each injected §5.5 crash costs at most the in-flight event;",
		"recovery latency is bounded by the 5 ms progress sampler, not the restart itself.",
	}
	// Post-crash throughput, measured from the last crash to the end of
	// the window in both runs.
	if len(faulted.crashes) > 0 {
		last := faulted.crashes[len(faulted.crashes)-1]
		left := vclock.Time(span).Sub(last).Seconds()
		if left > 0 {
			bRate := float64(base.dispatched-valueAt(base.samples, last)) / left
			fRate := float64(faulted.dispatched-valueAt(faulted.samples, last)) / left
			t.AddRowf("%s", "post-crash dispatch rate", "%.1f/s", bRate, "%.1f/s", fRate)
		}
	}
	return &Report{ID: "R1", Title: "Crash-and-rejuvenate under the Cedar compile workload",
		Tables: []*stats.Table{t}, Notes: notes}
}

// r2Result is one R2 variant's measurements.
type r2Result struct {
	served, lost, retries int
	latencySum            vclock.Duration
	latencyMax            vclock.Duration
	forks                 int
}

// R2DefaultPlan is R2's standard fault plan: it clamps the thread limit to 2 (the notifier plus one
// transient) for a window covering several keystrokes.
func R2DefaultPlan() fault.Plan {
	return fault.Plan{ForkExhaustion: []fault.ForkExhaustion{{
		Max: 2, From: fault.D(500 * vclock.Millisecond), Until: fault.D(1200 * vclock.Millisecond),
	}}}
}

// r2Run delivers 20 keystrokes, 100 ms apart, to a notifier that forks
// an echo transient per keystroke (bare TryFork, or under the retry
// policy), with the plan's clamp active mid-stream.
func r2Run(cfg Config, retry bool) r2Result {
	const (
		keys          = 20
		keyEvery      = 100 * vclock.Millisecond
		firstKey      = 50 * vclock.Millisecond
		transientLife = 180 * vclock.Millisecond
	)
	plan := cfg.faultPlan(R2DefaultPlan())
	inj := fault.MustNew(plan, cfg.faultSeed())
	simCfg := sim.Config{Seed: cfg.seed(), MaxThreads: 16, Hooks: cfg.Hooks}
	inj.Configure(&simCfg)
	w := sim.NewWorld(simCfg)
	defer w.Shutdown()
	inj.Arm(w)
	dev := paradigm.NewDeviceQueue(w, "keyboard")
	for i := 0; i < keys; i++ {
		at := vclock.Time(firstKey + vclock.Duration(i)*keyEvery)
		w.At(at, func() { dev.Push(at) })
	}
	w.At(vclock.Time(firstKey+vclock.Duration(keys)*keyEvery), dev.CloseDevice)

	var res r2Result
	policy := fault.RetryPolicy{Tries: 12, Backoff: 10 * vclock.Millisecond, Ceiling: 100 * vclock.Millisecond}
	w.Spawn("notifier", sim.PriorityInterrupt, func(t *sim.Thread) any {
		for {
			v, ok := dev.Get(t)
			if !ok {
				return nil
			}
			born := v.(vclock.Time)
			echo := func(c *sim.Thread) any {
				c.Compute(2 * vclock.Millisecond)
				lat := c.Now().Sub(born)
				res.served++
				res.latencySum += lat
				if lat > res.latencyMax {
					res.latencyMax = lat
				}
				c.BlockIO(transientLife) // the transient's working life
				return nil
			}
			var child *sim.Thread
			var err error
			if retry {
				var n int
				child, n, err = policy.Fork(t, "echo", echo)
				res.retries += n
			} else {
				child, err = t.TryFork("echo", echo)
			}
			if err != nil {
				res.lost++ // the keystroke is gone
				continue
			}
			child.Detach()
		}
	})
	w.Run(vclock.Time(10 * vclock.Second))
	res.forks = inj.Counts().Forks
	return res
}

// ResForkExhaustion is R2: a notifier that must FORK a transient per
// keystroke (Cedar's §3 pattern) runs into a clamped thread limit
// mid-stream (§5.4). The bare old-PCR behavior — TryFork raises, the
// keystroke is dropped — is compared against fault.RetryPolicy, the
// "good recovery scheme" §5.4 says was never worked out.
func ResForkExhaustion(cfg Config) *Report {
	bare := r2Run(cfg, false)
	retried := r2Run(cfg, true)

	t := stats.NewTable("R2: 20 keystrokes, thread limit clamped to 2 during [0.5s, 1.2s)",
		"Metric", "bare TryFork", "retry policy")
	t.AddRowf("%s", "keystrokes served", "%d", bare.served, "%d", retried.served)
	t.AddRowf("%s", "keystrokes lost", "%d", bare.lost, "%d", retried.lost)
	t.AddRowf("%s", "FORK retries", "%d", bare.retries, "%d", retried.retries)
	mean := func(r r2Result) string {
		if r.served == 0 {
			return "-"
		}
		return (r.latencySum / vclock.Duration(r.served)).String()
	}
	t.AddRowf("%s", "mean echo latency", "%s", mean(bare), "%s", mean(retried))
	t.AddRowf("%s", "max echo latency", "%s", bare.latencyMax.String(), "%s", retried.latencyMax.String())
	return &Report{ID: "R2", Title: "FORK exhaustion under keystrokes",
		Tables: []*stats.Table{t},
		Notes: []string{
			"paper §5.4: older PCR raised an error on FORK past the limit and 'the standard programming",
			"practice was to catch the error and to try to recover, but good recovery schemes seem never",
			"to have been worked out'; capped-backoff retry trades bounded latency for zero loss.",
		}}
}

// r3Result is one R3 variant's measurements.
type r3Result struct {
	detections int
	detectAt   vclock.Time
	clearedAt  vclock.Time // Never if still starving at the horizon
	dumped     bool
	progress   int64
}

// r3Horizon bounds each R3 world; the daemon-enabled variant needs a few
// virtual seconds of random 5 ms donations to push the stalled holder
// through its 60 ms critical section.
const r3Horizon = 6 * vclock.Second

// R3DefaultPlan is R3's standard fault plan: it pins lo-holder's critical-section compute (MinDemand
// skips the monitor's lock-cost bookkeeping charges) for an extra 50 ms.
func R3DefaultPlan() fault.Plan {
	return fault.Plan{StallThread: []fault.StallThread{{
		Thread: "^lo-holder$", At: fault.D(0), Stall: fault.D(50 * vclock.Millisecond),
		MinDemand: fault.D(5 * vclock.Millisecond),
	}}}
}

// r3Run stages §6.2's inversion: a low-priority lock holder stalled by
// the plan, a middle-priority CPU hog, a high-priority waiter whose lock
// acquisitions are the watched progress counter, and a fault.Watchdog
// detecting its starvation.
func r3Run(cfg Config, daemon bool) r3Result {
	plan := cfg.faultPlan(R3DefaultPlan())
	inj := fault.MustNew(plan, cfg.faultSeed())
	simCfg := sim.Config{Seed: cfg.seed(), SystemDaemon: daemon, Hooks: cfg.Hooks}
	inj.Configure(&simCfg)
	w := sim.NewWorld(simCfg)
	defer w.Shutdown()
	inj.Arm(w)
	m := monitor.New(w, "resource")
	var res r3Result
	res.clearedAt = vclock.Never
	w.Spawn("lo-holder", sim.PriorityLow, func(t *sim.Thread) any {
		m.Enter(t)
		t.Compute(10 * vclock.Millisecond) // stalled to 60 ms by the plan
		m.Exit(t)
		return nil
	})
	var progress int64
	w.At(vclock.Time(vclock.Millisecond), func() {
		w.Spawn("mid-hog", sim.PriorityNormal, func(t *sim.Thread) any {
			for {
				t.Compute(10 * vclock.Millisecond)
			}
		})
		w.Spawn("hi-waiter", sim.PriorityHigh, func(t *sim.Thread) any {
			for {
				m.Enter(t)
				progress++
				m.Exit(t)
				t.BlockIO(10 * vclock.Millisecond)
			}
		})
	})
	wd := fault.StartWatchdog(w, nil, "inversion-watchdog", 20*vclock.Millisecond, 3,
		func() int64 { return progress },
		func(dump func(out io.Writer)) { res.dumped = true })
	w.Run(vclock.Time(r3Horizon))
	res.detections = wd.Detections()
	if res.detections > 0 {
		res.detectAt = wd.DetectTimes()[0]
	}
	if ct := wd.ClearTimes(); len(ct) > 0 {
		res.clearedAt = ct[0]
	}
	res.progress = progress
	return res
}

// ResInversion is R3: see r3Run. The SystemDaemon's random donation is
// the paper's own countermeasure, so the induced inversion clears only
// in the daemon-enabled variant.
func ResInversion(cfg Config) *Report {
	bare := r3Run(cfg, false)
	daemon := r3Run(cfg, true)

	fmtTime := func(t vclock.Time) string {
		if t == vclock.Never {
			return "never"
		}
		return t.Sub(vclock.Time(0)).String()
	}
	t := stats.NewTable(fmt.Sprintf("R3: induced stable inversion (lock holder stalled 50 ms at t=0), %s horizon", vclock.Duration(r3Horizon)),
		"Metric", "strict priority", "SystemDaemon")
	t.AddRowf("%s", "starvation detected", "%d", bare.detections, "%d", daemon.detections)
	t.AddRowf("%s", "detection time", "%s", fmtTime(bare.detectAt), "%s", fmtTime(daemon.detectAt))
	t.AddRowf("%s", "state dump captured", "%v", bare.dumped, "%v", daemon.dumped)
	t.AddRowf("%s", "inversion cleared", "%s", fmtTime(bare.clearedAt), "%s", fmtTime(daemon.clearedAt))
	t.AddRowf("%s", "hi-waiter lock acquisitions", "%d", bare.progress, "%d", daemon.progress)
	return &Report{ID: "R3", Title: "Induced priority inversion, watchdog detection, SystemDaemon recovery",
		Tables: []*stats.Table{t},
		Notes: []string{
			"paper §6.2: 'the system seemed to stop... the threads were in this exact configuration' —",
			"the watchdog turns that post-hoc debugging story into bounded-latency detection, and the",
			"SystemDaemon ('donates, using a directed yield, a small timeslice to another thread chosen",
			"at random') is what eventually pushes the stalled holder through its critical section.",
		}}
}
