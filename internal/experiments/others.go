package experiments

import (
	"repro/internal/paradigm"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/vclock"
)

// Section 4.9 of the paper checks the taxonomy against three other
// Mesa-based systems it shares no code with, deducing their paradigm
// mixes from Lampson & Redell's published description: "Pilot: almost
// all sleepers. Violet: sleepers, one-shots and work deferral. Gateway:
// sleepers and pumps." These miniature models instantiate exactly those
// mixes, and their censuses are appended to the Table 4 report.

func buildPilot(w *sim.World, reg *paradigm.Registry) {
	// An operating system: device and housekeeping sleepers, nothing else.
	names := []string{"disk-scavenger", "vm-laundry", "net-watchdog",
		"clock-daemon", "directory-sweeper", "console-poll", "lease-renewer"}
	for i, n := range names {
		period := vclock.Duration(200+100*i) * vclock.Millisecond
		paradigm.StartSleeper(w, reg, "pilot-"+n, sim.PriorityNormal, period, func(t *sim.Thread) {
			t.Compute(500 * vclock.Microsecond)
		})
	}
}

func buildViolet(w *sim.World, reg *paradigm.Registry) {
	// A distributed calendar: refresh sleepers, one-shot reminders, and
	// commands that defer their work.
	paradigm.StartSleeper(w, reg, "violet-refresher", sim.PriorityNormal, 300*vclock.Millisecond, func(t *sim.Thread) {
		t.Compute(vclock.Millisecond)
	})
	paradigm.StartSleeper(w, reg, "violet-sync", sim.PriorityLow, 700*vclock.Millisecond, func(t *sim.Thread) {
		t.Compute(vclock.Millisecond)
	})
	paradigm.DelayedFork(w, reg, "violet-reminder", 150*vclock.Millisecond, func(t *sim.Thread) {
		t.Compute(vclock.Millisecond)
	})
	w.Spawn("violet-command", sim.PriorityNormal, func(t *sim.Thread) any {
		// A user command returns promptly by deferring the update.
		paradigm.DeferTo(reg, t, "violet-update", func(c *sim.Thread) {
			c.Compute(5 * vclock.Millisecond)
		})
		return nil
	})
}

func buildGateway(w *sim.World, reg *paradigm.Registry) {
	// A store-and-forward communication server: packet pumps between
	// links, plus timeout sleepers for retransmission.
	in := paradigm.NewBuffer(w, "gw-in", 16)
	mid := paradigm.NewBuffer(w, "gw-mid", 16)
	out := paradigm.NewBuffer(w, "gw-out", 16)
	paradigm.StartPump(w, reg, in, mid, paradigm.PumpConfig{Name: "gw-route", Work: 200 * vclock.Microsecond})
	paradigm.StartPump(w, reg, mid, out, paradigm.PumpConfig{Name: "gw-forward", Work: 200 * vclock.Microsecond})
	paradigm.StartSleeper(w, reg, "gw-retransmit", sim.PriorityNormal, 250*vclock.Millisecond, func(t *sim.Thread) {
		t.Compute(300 * vclock.Microsecond)
	})
	paradigm.StartSleeper(w, reg, "gw-keepalive", sim.PriorityLow, 900*vclock.Millisecond, func(t *sim.Thread) {
		t.Compute(300 * vclock.Microsecond)
	})
	// Feed a little traffic so the pumps run.
	w.Every(50*vclock.Millisecond, func() {
		w.Spawn("gw-src", sim.PriorityNormal, func(t *sim.Thread) any {
			in.Put(t, struct{}{})
			return nil
		}).Detach()
	})
	w.Spawn("gw-sink", sim.PriorityNormal, func(t *sim.Thread) any {
		for {
			if _, ok := out.Get(t); !ok {
				return nil
			}
		}
	})
}

// otherSystemsTable runs the three §4.9 models briefly and renders their
// censuses.
func otherSystemsTable(cfg Config) *stats.Table {
	census := func(build func(*sim.World, *paradigm.Registry)) *paradigm.Registry {
		w := sim.NewWorld(sim.Config{Seed: cfg.seed(), Hooks: cfg.Hooks})
		defer w.Shutdown()
		reg := paradigm.NewRegistry()
		build(w, reg)
		w.Run(vclock.Time(2 * vclock.Second))
		return reg
	}
	pilot := census(buildPilot)
	violet := census(buildViolet)
	gateway := census(buildGateway)

	t := stats.NewTable("Paradigm mix of other Mesa systems (§4.9's deduction, instantiated)",
		"Paradigm", "Pilot", "Violet", "Gateway")
	for _, k := range []paradigm.Kind{
		paradigm.KindSleeper, paradigm.KindOneShot, paradigm.KindDeferWork, paradigm.KindGeneralPump,
	} {
		t.AddRowf("%s", k.String(), "%d", pilot.Count(k), "%d", violet.Count(k), "%d", gateway.Count(k))
	}
	return t
}
