package experiments

import (
	"strings"
	"testing"
)

func TestWSeriesRegistered(t *testing.T) {
	ws := WSeries()
	if len(ws) != 3 {
		t.Fatalf("WSeries has %d entries, want 3", len(ws))
	}
	// The W series is reachable by ID but stays out of the default set,
	// so the default stdout (and its goldens) never see it.
	for _, e := range ws {
		got, err := ByID(e.ID)
		if err != nil || got.ID != e.ID {
			t.Fatalf("ByID(%q) = %v, %v", e.ID, got.ID, err)
		}
		for _, d := range All() {
			if d.ID == e.ID {
				t.Fatalf("%s leaked into the default experiment list", e.ID)
			}
		}
	}
	if _, err := ByID("W9"); err == nil || !strings.Contains(err.Error(), "W1") {
		t.Fatalf("ByID(W9) error should list W-series IDs, got %v", err)
	}
}

func TestWSeriesQuick(t *testing.T) {
	for _, e := range WSeries() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			rep := e.Run(Config{Quick: true})
			if rep.ID != e.ID {
				t.Fatalf("report ID %q, want %q", rep.ID, e.ID)
			}
			l := rep.Load
			if l == nil {
				t.Fatal("W-series report without a Load summary")
			}
			if l.Completed != l.Offered || l.Completed == 0 {
				t.Fatalf("offered=%d completed=%d, want all served", l.Offered, l.Completed)
			}
			if l.P50US <= 0 || l.P95US < l.P50US || l.P99US < l.P95US || l.MaxUS < l.P99US {
				t.Fatalf("percentiles not monotone: %+v", l)
			}
			if l.ThroughputPerSec <= 0 || l.Threads <= 0 {
				t.Fatalf("degenerate load summary: %+v", l)
			}
		})
	}
}

func TestWSeriesMetricsCarryLoad(t *testing.T) {
	outs := RunWith(Config{Quick: true}, Options{Parallelism: 2, Experiments: WSeries()[:1]})
	if len(outs) != 1 {
		t.Fatalf("got %d outcomes", len(outs))
	}
	m := outs[0].Metrics
	if m.Load == nil || m.Load.Completed == 0 {
		t.Fatalf("runner dropped the load summary: %+v", m.Load)
	}
	if m.Events == 0 || m.Worlds != 1 {
		t.Fatalf("probe counters missing: events=%d worlds=%d", m.Events, m.Worlds)
	}
}

func TestWSeriesQuickDeterministic(t *testing.T) {
	for _, e := range WSeries() {
		a := e.Run(Config{Quick: true, Seed: 3}).String()
		b := e.Run(Config{Quick: true, Seed: 3}).String()
		if a != b {
			t.Fatalf("%s: same seed diverged:\n%s\n---\n%s", e.ID, a, b)
		}
	}
}
