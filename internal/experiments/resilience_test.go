package experiments

import (
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/vclock"
)

// TestR1RecoversFromCrashes asserts the R1 acceptance criteria: the
// dispatcher restarts at least once per injected crash, and post-crash
// throughput stays within 10% of the fault-free baseline of the same
// seed.
func TestR1RecoversFromCrashes(t *testing.T) {
	cfg := Config{Quick: true}
	span := cfg.window() / 2
	base := r1Run(cfg, fault.Plan{}, span)
	faulted := r1Run(cfg, R1DefaultPlan(span), span)

	if len(faulted.crashes) != 2 {
		t.Fatalf("crashes delivered = %d, want 2", len(faulted.crashes))
	}
	if faulted.restarts < 1 {
		t.Fatal("dispatcher never restarted after injected crashes")
	}
	if base.restarts != 0 || len(base.crashes) != 0 {
		t.Fatalf("fault-free baseline saw %d restarts, %d crashes", base.restarts, len(base.crashes))
	}
	last := faulted.crashes[len(faulted.crashes)-1]
	left := vclock.Time(span).Sub(last).Seconds()
	bRate := float64(base.dispatched-valueAt(base.samples, last)) / left
	fRate := float64(faulted.dispatched-valueAt(faulted.samples, last)) / left
	if bRate <= 0 {
		t.Fatalf("degenerate baseline post-crash rate %.2f", bRate)
	}
	if ratio := fRate / bRate; ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("post-crash throughput %.2f/s vs baseline %.2f/s (ratio %.3f), want within 10%%",
			fRate, bRate, ratio)
	}
	// Every crash recovered before the window's end.
	for i, ct := range faulted.crashes {
		if firstAdvanceAfter(faulted.samples, ct) == vclock.Never {
			t.Errorf("no dispatch progress after crash %d at %v", i+1, ct)
		}
	}
}

// TestR2RetryPolicyEliminatesLoss asserts the R2 acceptance criteria:
// bare TryFork drops keystrokes during the clamp, the retry policy
// drops none.
func TestR2RetryPolicyEliminatesLoss(t *testing.T) {
	cfg := Config{Quick: true}
	bare := r2Run(cfg, false)
	if bare.lost == 0 {
		t.Fatal("bare TryFork lost no keystrokes: the clamp never bit")
	}
	if bare.served+bare.lost != 20 {
		t.Fatalf("served %d + lost %d != 20 keystrokes", bare.served, bare.lost)
	}
	retried := r2Run(cfg, true)
	if retried.lost != 0 {
		t.Fatalf("retry policy lost %d keystrokes, want 0", retried.lost)
	}
	if retried.served != 20 {
		t.Fatalf("retry policy served %d keystrokes, want all 20", retried.served)
	}
	if retried.retries == 0 {
		t.Fatal("retry policy needed no retries: the clamp never bit")
	}
	// Recovery is not free: the retried keystrokes pay latency.
	if retried.latencyMax <= bare.latencyMax {
		t.Errorf("retry max latency %v not above bare %v", retried.latencyMax, bare.latencyMax)
	}
}

// TestR3WatchdogDetectsAndDaemonClears asserts the R3 acceptance
// criteria: the watchdog detects the induced inversion in both
// variants, and only the SystemDaemon variant clears it.
func TestR3WatchdogDetectsAndDaemonClears(t *testing.T) {
	cfg := Config{Quick: true}
	bare := r3Run(cfg, false)
	if bare.detections < 1 {
		t.Fatal("watchdog missed the inversion under strict priority")
	}
	if !bare.dumped {
		t.Error("watchdog did not hand out a state dump")
	}
	if bare.clearedAt != vclock.Never {
		t.Fatalf("strict-priority inversion cleared at %v: it should be stable", bare.clearedAt)
	}
	if bare.progress != 0 {
		t.Fatalf("hi-waiter acquired the lock %d times under a stable inversion", bare.progress)
	}
	daemon := r3Run(cfg, true)
	if daemon.detections < 1 {
		t.Fatal("watchdog missed the inversion with the daemon enabled")
	}
	if daemon.clearedAt == vclock.Never {
		t.Fatal("SystemDaemon variant never cleared the inversion")
	}
	if daemon.progress == 0 {
		t.Fatal("hi-waiter made no progress even after the daemon cleared the inversion")
	}
	if daemon.clearedAt <= daemon.detectAt {
		t.Fatalf("cleared at %v before detection at %v", daemon.clearedAt, daemon.detectAt)
	}
}

// TestFaultsConfigOverridesPlan verifies the -faults path: a custom plan
// replaces each R experiment's built-in faults.
func TestFaultsConfigOverridesPlan(t *testing.T) {
	empty := fault.Plan{}
	cfg := Config{Quick: true, Faults: &empty}
	faulted := r1Run(cfg, cfg.faultPlan(R1DefaultPlan(cfg.window()/2)), cfg.window()/2)
	if len(faulted.crashes) != 0 {
		t.Fatalf("empty -faults plan still delivered %d crashes", len(faulted.crashes))
	}
	// And the report text reflects the absence of faults.
	rep := ResCrash(cfg).String()
	if !strings.Contains(rep, "crashes injected") {
		t.Fatalf("unexpected R1 report:\n%s", rep)
	}
}

// TestAuditOptionCollectsFindings verifies the runner's audit sweep: F8
// deliberately builds timeout-masked missing-NOTIFY monitors, so
// auditing it must produce at least one §5.3 finding, and auditing must
// not change the rendered report.
func TestAuditOptionCollectsFindings(t *testing.T) {
	e, err := ByID("F8")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Quick: true}
	plain := RunWith(cfg, Options{Parallelism: 1, Experiments: []Experiment{e}})
	// F8's buggy consumer blocks only once before the queue fills, so the
	// sweep needs the most sensitive threshold to flag it.
	audited := RunWith(cfg, Options{Parallelism: 1, Experiments: []Experiment{e}, Audit: true, AuditMinWaits: 1})
	if len(audited) != 1 || len(plain) != 1 {
		t.Fatalf("outcomes = %d/%d, want 1/1", len(plain), len(audited))
	}
	if len(audited[0].Audit) == 0 {
		t.Fatal("audit of F8 produced no findings; its masked-NOTIFY CVs should be suspicious")
	}
	for _, f := range audited[0].Audit {
		if !strings.Contains(f, "masked-missing-NOTIFY") {
			t.Errorf("finding %q missing the §5.3 signature tag", f)
		}
	}
	if plain[0].Audit != nil {
		t.Error("audit findings attached without Options.Audit")
	}
	if plain[0].Report.String() != audited[0].Report.String() {
		t.Error("auditing changed the rendered report")
	}
}
