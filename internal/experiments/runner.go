package experiments

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vclock"
	"repro/internal/workload/capacity"
)

// Metrics is one experiment run's observability record: how long the run
// took on the wall clock, how much virtual time its worlds simulated, and
// how much work the simulator did to get there. The JSON tags name the
// units explicitly so the -json summaries are self-describing and
// comparable across machines.
type Metrics struct {
	ID    string `json:"id"`
	Title string `json:"title"`

	// WallTime is the wall-clock cost of the run (nanoseconds in JSON).
	WallTime time.Duration `json:"wall_ns"`
	// VirtualTime is the total virtual time simulated across every
	// world the experiment created (microseconds in JSON).
	VirtualTime vclock.Duration `json:"virtual_us"`
	// Worlds is the number of simulated worlds the experiment built.
	Worlds int64 `json:"worlds"`
	// Events is the number of discrete events those worlds' drivers
	// processed.
	Events int64 `json:"events"`
	// EventsPerSec is Events divided by wall-clock seconds: the
	// simulator's throughput while reproducing this artifact.
	EventsPerSec float64 `json:"events_per_sec"`
	// VirtualPerWall is virtual seconds simulated per wall-clock
	// second — how much faster than real time the simulation runs.
	VirtualPerWall float64 `json:"virtual_per_wall"`
	// AllocBytes and AllocObjects are heap-allocation deltas observed
	// over the run. They are exact at parallelism 1; with concurrent
	// runs the runtime's global counters intermix experiments, so treat
	// them as approximate there.
	AllocBytes   uint64 `json:"alloc_bytes"`
	AllocObjects uint64 `json:"alloc_objects"`

	// Load is the W-series throughput/latency summary; omitted for the
	// T/F/R series.
	Load *LoadSummary `json:"load,omitempty"`

	// Cluster is the C-series fleet summary list (one entry per sweep
	// point, presentation order); omitted for every other series.
	Cluster []*cluster.Summary `json:"cluster,omitempty"`

	// Sched is the S-series per-policy summary list (one entry per
	// ladder policy, presentation order); omitted for every other series.
	Sched []*SchedSummary `json:"sched,omitempty"`

	// Capacity is the K-series saturation-knee record list (one entry
	// per configuration, presentation order); omitted for every other
	// series.
	Capacity []*capacity.Result `json:"capacity,omitempty"`
}

// Outcome couples an experiment's report with its run metrics and, in
// verify mode, the determinism verdict.
type Outcome struct {
	Report  *Report
	Metrics Metrics

	// Verified is true when the runner re-ran the experiment
	// concurrently and compared outputs; Mismatch is true when the two
	// renderings differed (a determinism bug).
	Verified bool
	Mismatch bool

	// Audit holds the §5.3 masked-missing-NOTIFY findings gathered from
	// every monitor the run created (Options.Audit); nil when auditing
	// was off or nothing was suspicious.
	Audit []string

	// Profile aggregates per-thread scheduler accounting over every
	// world the run created (Options.Profile); nil when profiling was
	// off. Purely observational: reports are byte-identical with
	// profiling on or off, and the profile itself is deterministic
	// across Parallelism settings.
	Profile *profile.Summary
}

// Options configures RunWith.
type Options struct {
	// Parallelism is the worker count; values < 1 select GOMAXPROCS.
	// Results are always emitted in presentation order and are
	// byte-identical regardless of parallelism — every experiment owns
	// its own worlds and registries and shares nothing.
	Parallelism int
	// Verify re-runs each experiment concurrently with itself and
	// diffs the two rendered reports, flagging nondeterminism.
	Verify bool
	// Experiments is the set to run; nil means All().
	Experiments []Experiment
	// OnResult, when non-nil, is invoked once per experiment in
	// presentation order, streaming each outcome as soon as it and all
	// of its predecessors have finished (later experiments may still be
	// running). It is called from RunWith's goroutine.
	OnResult func(Outcome)
	// Audit sweeps every CV the run's monitors created for the §5.3
	// masked-missing-NOTIFY signature after the run finishes and attaches
	// the findings to the outcome. Purely observational: reports are
	// byte-identical with auditing on or off.
	Audit bool
	// AuditMinWaits is the minimum completed-wait count before a CV is
	// suspicious; values < 1 select 10.
	AuditMinWaits int
	// Profile attaches a profiler to every world of each run (via
	// sim.Hooks.OnWorld) and stores the aggregated accounting summary
	// in the outcome.
	Profile bool
}

// RunAll executes every experiment with the given parallelism and
// returns the outcomes in presentation order.
func RunAll(cfg Config, parallelism int) []Outcome {
	return RunWith(cfg, Options{Parallelism: parallelism})
}

// RunWith executes opts.Experiments on a pool of opts.Parallelism
// workers. Each run gets a fresh sim.Probe (any probe already present in
// cfg is replaced for the run) so the per-experiment counters are exact
// even when runs overlap.
func RunWith(cfg Config, opts Options) []Outcome {
	todo := opts.Experiments
	if todo == nil {
		todo = All()
	}
	workers := opts.Parallelism
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(todo) {
		workers = len(todo)
	}

	outcomes := make([]Outcome, len(todo))
	done := make([]chan struct{}, len(todo))
	for i := range done {
		done[i] = make(chan struct{})
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for n := 0; n < workers; n++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				outcomes[i] = runOne(todo[i], cfg, opts)
				close(done[i])
			}
		}()
	}
	go func() {
		for i := range todo {
			jobs <- i
		}
		close(jobs)
	}()

	// Emit strictly in presentation order as prefixes complete.
	for i := range todo {
		<-done[i]
		if opts.OnResult != nil {
			opts.OnResult(outcomes[i])
		}
	}
	wg.Wait()
	return outcomes
}

// runOne executes a single experiment with a private probe, measuring
// wall time and allocation deltas around Experiment.Run. In verify mode
// the experiment runs twice concurrently — deliberately racing two
// identical copies so `go test -race` and output diffing together prove
// the experiment shares no hidden mutable state.
func runOne(e Experiment, cfg Config, opts Options) Outcome {
	verify := opts.Verify
	probe := &sim.Probe{}
	runCfg := cfg
	runCfg.Hooks.Probe = probe

	var set *profile.Set
	if opts.Profile {
		set = profile.NewSet()
		prev := runCfg.Hooks.OnWorld
		runCfg.Hooks.OnWorld = func(w *sim.World) trace.Sink {
			s := set.Attach(w)
			if prev != nil {
				if extra := prev(w); extra != nil {
					return trace.Tee(s, extra)
				}
			}
			return s
		}
	}

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()

	var report, again *Report
	if verify {
		verifyCfg := cfg
		verifyCfg.Hooks.Probe = nil // keep the primary run's counters exact
		var vg sync.WaitGroup
		vg.Add(1)
		go func() {
			defer vg.Done()
			again = e.Run(verifyCfg)
		}()
		report = e.Run(runCfg)
		vg.Wait()
	} else {
		report = e.Run(runCfg)
	}

	wall := time.Since(start)
	runtime.ReadMemStats(&after)

	m := Metrics{
		ID:          e.ID,
		Title:       e.Title,
		WallTime:    wall,
		VirtualTime: probe.VirtualTime(),
		Worlds:      probe.Worlds(),
		Events:      probe.Events(),

		AllocBytes:   after.TotalAlloc - before.TotalAlloc,
		AllocObjects: after.Mallocs - before.Mallocs,
	}
	if secs := wall.Seconds(); secs > 0 {
		m.EventsPerSec = float64(m.Events) / secs
		m.VirtualPerWall = m.VirtualTime.Seconds() / secs
	}
	m.Load = report.Load
	m.Cluster = report.Cluster
	m.Sched = report.Sched
	m.Capacity = report.Capacity
	out := Outcome{Report: report, Metrics: m}
	if set != nil {
		sum := set.Summary()
		out.Profile = &sum
	}
	if verify {
		out.Verified = true
		out.Mismatch = report.String() != again.String()
	}
	if opts.Audit {
		min := opts.AuditMinWaits
		if min < 1 {
			min = 10
		}
		out.Audit = probe.Audit(min)
	}
	return out
}
