package experiments

import (
	"fmt"
	"testing"
)

func TestAllExperimentsQuick(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			r := e.Run(Config{Quick: true})
			if r.ID != e.ID {
				t.Errorf("report ID %q != %q", r.ID, e.ID)
			}
			out := r.String()
			if len(out) < 50 {
				t.Errorf("report suspiciously short:\n%s", out)
			}
			fmt.Println(out)
		})
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("f5")
	if err != nil || e.ID != "F5" {
		t.Fatalf("ByID(f5) = %v, %v", e.ID, err)
	}
	if _, err := ByID("T9"); err == nil {
		t.Fatal("expected error for unknown ID")
	}
	if len(All()) != 19 { // T1-T4 + F1-F12 + R1-R3
		t.Fatalf("experiment count = %d, want 19", len(All()))
	}
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Errorf("duplicate experiment ID %s", e.ID)
		}
		seen[e.ID] = true
	}
}

func TestConfigWindows(t *testing.T) {
	if (Config{Quick: true}).window() >= (Config{}).window() {
		t.Fatal("quick window should be shorter")
	}
	if (Config{}).seed() != 1 || (Config{Seed: 7}).seed() != 7 {
		t.Fatal("seed defaulting wrong")
	}
}

// TestReportsDeterministic: the same config yields byte-identical reports
// for the cheap experiments (the expensive ones are covered by the
// workload determinism tests).
func TestReportsDeterministic(t *testing.T) {
	for _, id := range []string{"F5", "F6", "F8", "F9", "F10", "R2", "R3"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		a := e.Run(Config{Quick: true}).String()
		b := e.Run(Config{Quick: true}).String()
		if a != b {
			t.Errorf("%s: identical configs produced different reports", id)
		}
	}
}
