package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// render concatenates the rendered reports in emit order.
func render(outs []Outcome) string {
	var sb strings.Builder
	for _, o := range outs {
		sb.WriteString(o.Report.String())
	}
	return sb.String()
}

// TestRunAllMatchesSerial: the parallel harness must be byte-identical
// to the serial one for every experiment, across several seeds — the
// acceptance bar for -parallel.
func TestRunAllMatchesSerial(t *testing.T) {
	seeds := []int64{1, 7, 42}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg := Config{Quick: true, Seed: seed}
			serial := RunAll(cfg, 1)
			parallel := RunAll(cfg, 4)
			if len(serial) != len(All()) || len(parallel) != len(All()) {
				t.Fatalf("got %d serial / %d parallel outcomes, want %d", len(serial), len(parallel), len(All()))
			}
			if a, b := render(serial), render(parallel); a != b {
				t.Errorf("parallel output differs from serial output for seed %d", seed)
			}
		})
	}
}

// TestRunWithEmitsInOrder: OnResult must stream outcomes in presentation
// order even when workers finish out of order.
func TestRunWithEmitsInOrder(t *testing.T) {
	var want, got []string
	for _, e := range All() {
		want = append(want, e.ID)
	}
	outs := RunWith(Config{Quick: true, Seed: 1}, Options{
		Parallelism: 8,
		OnResult:    func(o Outcome) { got = append(got, o.Report.ID) },
	})
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("emit order %v, want %v", got, want)
	}
	for i, o := range outs {
		if o.Report.ID != want[i] {
			t.Errorf("outcome %d is %s, want %s", i, o.Report.ID, want[i])
		}
	}
}

// TestRunMetricsPopulated: every experiment must report nonzero wall
// time, virtual time, world and event counts — the -json acceptance
// criterion.
func TestRunMetricsPopulated(t *testing.T) {
	for _, o := range RunAll(Config{Quick: true, Seed: 1}, 0) {
		m := o.Metrics
		if m.ID == "" || m.Title == "" {
			t.Errorf("metrics missing identity: %+v", m)
		}
		if m.WallTime <= 0 {
			t.Errorf("%s: wall time %v, want > 0", m.ID, m.WallTime)
		}
		if m.VirtualTime <= 0 {
			t.Errorf("%s: virtual time %v, want > 0", m.ID, m.VirtualTime)
		}
		if m.Worlds < 1 {
			t.Errorf("%s: %d worlds, want >= 1", m.ID, m.Worlds)
		}
		if m.Events < 100 {
			t.Errorf("%s: suspiciously few events: %d", m.ID, m.Events)
		}
		if m.EventsPerSec <= 0 || m.VirtualPerWall <= 0 {
			t.Errorf("%s: rates not computed: %+v", m.ID, m)
		}
	}
}

// TestRunWithVerify: verify mode re-runs each experiment concurrently
// and flags only genuinely nondeterministic ones.
func TestRunWithVerify(t *testing.T) {
	cheap := []string{"F5", "F6", "F8", "F9", "F10"}
	var todo []Experiment
	for _, id := range cheap {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		todo = append(todo, e)
	}
	for _, o := range RunWith(Config{Quick: true, Seed: 1}, Options{Parallelism: 2, Verify: true, Experiments: todo}) {
		if !o.Verified {
			t.Errorf("%s: not verified in verify mode", o.Report.ID)
		}
		if o.Mismatch {
			t.Errorf("%s: flagged nondeterministic", o.Report.ID)
		}
	}

	// A deliberately nondeterministic experiment must be caught.
	calls := make(chan int, 2)
	calls <- 1
	calls <- 2
	rigged := Experiment{ID: "X1", Title: "rigged", Run: func(cfg Config) *Report {
		return &Report{ID: "X1", Title: "rigged", Notes: []string{fmt.Sprintf("call %d", <-calls)}}
	}}
	outs := RunWith(Config{}, Options{Verify: true, Experiments: []Experiment{rigged}})
	if len(outs) != 1 || !outs[0].Mismatch {
		t.Errorf("rigged experiment not flagged: %+v", outs)
	}
}

// TestByIDErrorOrder: the unknown-ID error must list IDs in presentation
// order, not lexicographic order ("F1 F10 F11 F12 F2 ...").
func TestByIDErrorOrder(t *testing.T) {
	_, err := ByID("T9")
	if err == nil {
		t.Fatal("expected error")
	}
	var want []string
	for _, e := range All() {
		want = append(want, e.ID)
	}
	if !strings.Contains(err.Error(), strings.Join(want, " ")) {
		t.Errorf("error %q does not list IDs in presentation order %v", err, want)
	}
	if strings.Contains(err.Error(), "F1 F10") {
		t.Errorf("error %q is lexicographically sorted", err)
	}
}

// TestProbeDoesNotChangeOutput: attaching a probe must never perturb an
// experiment's report.
func TestProbeDoesNotChangeOutput(t *testing.T) {
	e, err := ByID("F5")
	if err != nil {
		t.Fatal(err)
	}
	bare := e.Run(Config{Quick: true}).String()
	probed := RunWith(Config{Quick: true}, Options{Experiments: []Experiment{e}})
	if got := probed[0].Report.String(); got != bare {
		t.Error("probe changed the report output")
	}
	if probed[0].Metrics.Events == 0 {
		t.Error("probe observed no events")
	}
}
