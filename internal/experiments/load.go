package experiments

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/vclock"
	"repro/internal/workload"
	"repro/internal/workload/spec"
)

// The W-series drives the simulator at server scale: open-loop Poisson
// load through thousands of threads, reporting throughput and latency
// percentiles. Where the T/F/R series reproduce the paper's artifacts,
// the W series measures the regime the ROADMAP points at — "heavy traffic
// from millions of users" — on the same scheduler model. The series runs
// only behind threadstudy -wseries (or -experiment W1..W3), keeping the
// default experiment list and its golden stdout untouched.

// LoadSummary is the machine-readable face of a W-series run, attached
// to the experiment's Metrics under "load" in -json/-bench output. All
// latencies are virtual microseconds.
type LoadSummary struct {
	Offered          int64   `json:"offered"`
	Completed        int64   `json:"completed"`
	Threads          int     `json:"threads"`
	WindowUS         int64   `json:"window_us"`
	ThroughputPerSec float64 `json:"throughput_per_sec"`
	P50US            int64   `json:"p50_us"`
	P95US            int64   `json:"p95_us"`
	P99US            int64   `json:"p99_us"`
	MaxUS            int64   `json:"max_us"`
}

// summarizeLoad converts workload stats to the JSON form.
func summarizeLoad(s *workload.LoadStats) *LoadSummary {
	return &LoadSummary{
		Offered:          s.Offered,
		Completed:        s.Completed,
		Threads:          s.Threads,
		WindowUS:         int64(s.Window),
		ThroughputPerSec: s.Throughput(),
		P50US:            int64(s.Latency.Percentile(0.5)),
		P95US:            int64(s.Latency.Percentile(0.95)),
		P99US:            int64(s.Latency.Percentile(0.99)),
		MaxUS:            int64(s.Latency.Max()),
	}
}

// loadTable renders one stats row in the W-series' shared table shape.
func loadTable(title string, s *workload.LoadStats) *stats.Table {
	t := stats.NewTable(title,
		"Metric", "Value")
	t.AddRowf("%s", "threads", "%d", s.Threads)
	t.AddRowf("%s", "requests offered", "%d", s.Offered)
	t.AddRowf("%s", "requests completed", "%d", s.Completed)
	t.AddRowf("%s", "measurement window", "%s", s.Window)
	t.AddRowf("%s", "throughput", "%.0f req/s", s.Throughput())
	t.AddRowf("%s", "latency p50", "%s", s.Latency.Percentile(0.5))
	t.AddRowf("%s", "latency p95", "%s", s.Latency.Percentile(0.95))
	t.AddRowf("%s", "latency p99", "%s", s.Latency.Percentile(0.99))
	t.AddRowf("%s", "latency max", "%s", s.Latency.Max())
	return t
}

// shippedSpec loads a shipped W-series spec, scaled to the run mode by
// the mutator. The experiments consume the embedded JSON through the
// same StartSpec path any user-supplied spec takes; the bridge tests pin
// this output byte-identical to the historical hardcoded parameters.
func shippedSpec(name string, quick bool, scale func(*spec.Spec)) *spec.Spec {
	sp := spec.MustShipped(name)
	if quick && scale != nil {
		scale(sp)
	}
	return sp
}

// startSpec compiles sp into a fresh world built from cfg. Shipped specs
// always compile; an error here is a bug, not an input problem.
func startSpec(cfg Config, sp *spec.Spec) (*sim.World, *workload.SpecRun) {
	w := sim.NewWorld(sim.Config{Seed: cfg.seed(), SystemDaemon: sp.SystemDaemon, Hooks: cfg.hooks()})
	run, err := workload.StartSpec(w, sp, workload.SpecOptions{})
	if err != nil {
		w.Shutdown()
		panic(err)
	}
	return w, run
}

// LoadEcho (W1) is the multi-user echo server: one session thread per
// user, Poisson arrivals fanned uniformly across the population. The
// full-scale population is the acceptance point (ten thousand threads,
// one hundred thousand requests); quick mode keeps the shape at a tenth
// the size.
func LoadEcho(cfg Config) *Report {
	sp := shippedSpec("w1", cfg.Quick, func(sp *spec.Spec) {
		sp.Cohorts[0].Sessions = 1000
		sp.Cohorts[0].Requests = 10_000
	})
	w, run := startSpec(cfg, sp)
	defer w.Shutdown()
	// The horizon is generous: injection alone needs Requests/Rate, and
	// the world quiesces (every session exits) well before 4x that.
	outcome := w.Run(vclock.Time(0).Add(run.Horizon))
	s := run.Load()

	c := &sp.Cohorts[0]
	rep := &Report{ID: "W1", Title: "Open-loop echo server under Poisson load",
		Tables: []*stats.Table{loadTable(
			fmt.Sprintf("Echo server: %d sessions, %.0f req/s offered, %s service",
				c.Sessions, c.Arrival.Rate, c.ServiceMean()), s)},
		Notes: []string{
			fmt.Sprintf("open-loop: arrivals keep their own schedule, so the percentiles include queueing delay; run ended %v", outcome),
			"one thread per user at a uniform priority — the paper's systems held hundreds of threads (§3);",
			"this population is two orders of magnitude past that on the same scheduler model.",
		},
		Load: summarizeLoad(s)}
	return rep
}

// LoadPipeline (W2) is the slack-process pipeline under load: stage
// chains at descending priority joined by monitor-based bounded buffers.
func LoadPipeline(cfg Config) *Report {
	sp := shippedSpec("w2", cfg.Quick, func(sp *spec.Spec) {
		sp.Pipeline.Pipelines = 16
		sp.Pipeline.Requests = 5000
	})
	w, run := startSpec(cfg, sp)
	defer w.Shutdown()
	outcome := w.Run(vclock.Time(0).Add(run.Horizon))
	s := run.Load()

	p := sp.Pipeline
	return &Report{ID: "W2", Title: "Slack-process pipelines under open-loop load (§5.2)",
		Tables: []*stats.Table{loadTable(
			fmt.Sprintf("Pipelines: %d chains x %d stages, buffer %d, %.0f req/s offered",
				p.Pipelines, p.Stages, p.Buffer, p.Rate), s)},
		Notes: []string{
			fmt.Sprintf("stages run at descending priority, so downstream stages batch like the §5.2 slack process; run ended %v", outcome),
			"each hop crosses a monitor-based bounded buffer — the latency percentiles price the paper's",
			"serializer paradigm (§4.2) under sustained load rather than single keystrokes.",
		},
		Load: summarizeLoad(s)}
}

// LoadMixed (W3) is the §6.2 priority mix under load: high-priority
// interactive echo sessions over an always-ready background batch pool.
func LoadMixed(cfg Config) *Report {
	sp := shippedSpec("w3", cfg.Quick, func(sp *spec.Spec) {
		sp.Cohorts[0].Sessions = 64
		sp.Cohorts[0].Requests = 8000
		sp.Batch.Workers = 16
		sp.HorizonUS = (10 * vclock.Second).Micros()
	})
	w, run := startSpec(cfg, sp)
	defer w.Shutdown()
	outcome := w.Run(vclock.Time(0).Add(run.Horizon))
	m := run.Mixed
	s := run.Load()

	c := &sp.Cohorts[0]
	t := loadTable(fmt.Sprintf("Interactive: %d sessions at %.0f req/s over %d batch threads",
		c.Sessions, c.Arrival.Rate, sp.Batch.Workers), s)
	t.AddRowf("%s", "batch chunks completed", "%d", m.BatchChunks)
	t.AddRowf("%s", "batch throughput", "%.0f chunks/s", float64(m.BatchChunks)/run.Horizon.Seconds())
	return &Report{ID: "W3", Title: "Mixed interactive and batch priorities under load (§6.2)",
		Tables: []*stats.Table{t},
		Notes: []string{
			fmt.Sprintf("strict priorities protect the interactive percentiles while the batch pool soaks every idle cycle; run ended %v", outcome),
			"the SystemDaemon is on, donating timeslices so the background pool is never starved outright (§6.2).",
		},
		Load: summarizeLoad(s)}
}

// WSeries returns the open-loop load experiments, in presentation order.
// They are not part of All(): the W series runs only on explicit request
// (threadstudy -wseries or -experiment W1..W3), so the default output and
// its goldens are untouched by load-workload evolution.
func WSeries() []Experiment {
	return []Experiment{
		{"W1", "Open-loop echo server under Poisson load", LoadEcho},
		{"W2", "Slack-process pipelines under open-loop load (§5.2)", LoadPipeline},
		{"W3", "Mixed interactive and batch priorities under load (§6.2)", LoadMixed},
	}
}
