package experiments

import (
	"reflect"
	"testing"
)

// TestProfileDeterministicAcrossParallelism proves the accounting
// summaries — like the reports they ride along with — are byte-identical
// whether experiments run sequentially or on a worker pool, and that the
// exactness invariant (zero residue) holds on real experiment worlds.
func TestProfileDeterministicAcrossParallelism(t *testing.T) {
	var subset []Experiment
	for _, id := range []string{"T2", "F3", "R2"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		subset = append(subset, e)
	}
	run := func(par int) []Outcome {
		return RunWith(Config{Quick: true, Seed: 1}, Options{
			Parallelism: par,
			Profile:     true,
			Experiments: subset,
		})
	}
	seq := run(1)
	par := run(4)
	if len(seq) != len(subset) || len(par) != len(subset) {
		t.Fatalf("outcome counts %d/%d, want %d", len(seq), len(par), len(subset))
	}
	for i := range seq {
		id := seq[i].Metrics.ID
		if seq[i].Profile == nil || par[i].Profile == nil {
			t.Fatalf("%s: missing profile summary (Options.Profile was set)", id)
		}
		if !reflect.DeepEqual(*seq[i].Profile, *par[i].Profile) {
			t.Errorf("%s: profile summary differs between -parallel 1 and 4:\n seq: %+v\n par: %+v",
				id, *seq[i].Profile, *par[i].Profile)
		}
		if r := seq[i].Profile.Residue; r != 0 {
			t.Errorf("%s: accounting residue %dus, want 0", id, int64(r))
		}
		if seq[i].Report.String() != par[i].Report.String() {
			t.Errorf("%s: report differs across parallelism", id)
		}
	}
}

// TestProfileOffByDefault pins that profiling stays opt-in: without
// Options.Profile the outcome carries no summary and no profiler is
// attached to the run's worlds.
func TestProfileOffByDefault(t *testing.T) {
	e, err := ByID("T4")
	if err != nil {
		t.Fatal(err)
	}
	outs := RunWith(Config{Quick: true, Seed: 1}, Options{
		Parallelism: 1,
		Experiments: []Experiment{e},
	})
	if outs[0].Profile != nil {
		t.Fatalf("profile summary present without Options.Profile")
	}
}
