package experiments

import (
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/vclock"
	"repro/internal/workload"
	"repro/internal/workload/spec"
)

// The S-series is the scheduling-policy lab: each experiment runs the
// same SLO-cohort workload once per policy in a fixed comparison ladder
// and reports per-class latency percentiles, SLO attainment, a Jain
// fairness index over the attainments, and the promptness score — the
// minimum attainment across classes, the number a policy can only raise
// by serving every class adequately rather than sacrificing one. Like
// the W series, the S series runs only behind explicit request
// (threadstudy -sseries or -experiment S1..S4), keeping the default
// experiment list and its golden stdout untouched.

// ClassSummary is one class's results under one policy. All latencies
// are virtual microseconds.
type ClassSummary struct {
	Class      string  `json:"class"`
	Offered    int64   `json:"offered"`
	Completed  int64   `json:"completed"`
	P50US      int64   `json:"p50_us"`
	P99US      int64   `json:"p99_us"`
	Attainment float64 `json:"attainment"`
}

// SchedSummary is the machine-readable face of one policy's run within
// an S-series experiment, attached to the experiment's Metrics under
// "sched" in -json/-bench output.
type SchedSummary struct {
	// Policy is the full spec the run executed under (sched.Parse
	// syntax), parameters included.
	Policy string `json:"policy"`
	// Classes holds the per-class breakdown, sorted by class name.
	Classes []ClassSummary `json:"classes"`
	// Fairness is Jain's index over the per-class attainments.
	Fairness float64 `json:"fairness"`
	// Score is the minimum attainment across classes — the mixed-load
	// promptness metric the S4 acceptance criterion is stated in.
	Score float64 `json:"score"`
}

// sloCohort builds one constant-service Poisson cohort of the SLO spec.
func sloCohort(name string, sessions int, requests int64, rate float64, service, slo vclock.Duration, prio string) spec.Cohort {
	return spec.Cohort{
		Name: name, Sessions: sessions, Requests: requests,
		Arrival:  &spec.Arrival{Process: spec.ProcPoisson, Rate: rate},
		Service:  &spec.Service{Dist: spec.DistConst, MeanUS: service.Micros()},
		Priority: prio, SLOUS: slo.Micros(),
	}
}

// sloSpec assembles an S-series workload description. The experiments
// declare their operating points as spec documents and compile them
// through StartSpec like any user-supplied spec.
func sloSpec(name string, horizon vclock.Duration, batch *spec.Batch, cohorts ...spec.Cohort) *spec.Spec {
	return &spec.Spec{Schema: spec.Schema, Name: name, Kind: spec.KindSLO,
		Cohorts: cohorts, Batch: batch, HorizonUS: horizon.Micros()}
}

// runPolicy compiles the SLO spec once under the given policy and
// summarizes the run. Each call builds a fresh world and a fresh policy
// instance: stateful policies key their books by thread pointer and
// serve exactly one world.
func runPolicy(cfg Config, policy string, sp *spec.Spec) *SchedSummary {
	h := cfg.Hooks
	h.Policy = sched.MustParse(policy)
	w := sim.NewWorld(sim.Config{Seed: cfg.seed(), Hooks: h})
	defer w.Shutdown()
	run, err := workload.StartSpec(w, sp, workload.SpecOptions{})
	if err != nil {
		panic(err) // the S-series specs are literals; failing to compile is a bug
	}
	w.Run(vclock.Time(0).Add(run.Horizon))
	s := run.SLO.Finish()

	sum := &SchedSummary{Policy: policy, Score: 1}
	var atts []float64
	for _, class := range s.Classes() {
		cs := ClassSummary{
			Class:      class,
			Offered:    s.Offered[class],
			Completed:  s.Completed[class],
			Attainment: s.Attainment(class),
		}
		if r := s.Latency.Class(class); r != nil {
			cs.P50US = int64(r.Percentile(0.5))
			cs.P99US = int64(r.Percentile(0.99))
		}
		sum.Classes = append(sum.Classes, cs)
		atts = append(atts, cs.Attainment)
		if cs.Attainment < sum.Score {
			sum.Score = cs.Attainment
		}
	}
	sum.Fairness = stats.JainFairness(atts)
	return sum
}

// sweepPolicies runs the ladder and renders the two shared S-series
// tables: the per-class breakdown and the policy summary.
func sweepPolicies(cfg Config, ladder []string, sp *spec.Spec, title string) ([]*SchedSummary, []*stats.Table) {
	var sums []*SchedSummary
	breakdown := stats.NewTable(title,
		"Policy", "Class", "Offered", "Done", "p50", "p99", "On-time")
	for _, policy := range ladder {
		sum := runPolicy(cfg, policy, sp)
		sums = append(sums, sum)
		for _, cs := range sum.Classes {
			breakdown.AddRowf("%s", sum.Policy, "%s", cs.Class,
				"%d", cs.Offered, "%d", cs.Completed,
				"%s", vclock.Duration(cs.P50US), "%s", vclock.Duration(cs.P99US),
				"%.3f", cs.Attainment)
		}
	}
	summary := stats.NewTable("Policy summary: min attainment across classes (score) and Jain fairness over attainments",
		"Policy", "Score", "Fairness")
	for _, sum := range sums {
		summary.AddRowf("%s", sum.Policy, "%.3f", sum.Score, "%.3f", sum.Fairness)
	}
	return sums, []*stats.Table{breakdown, summary}
}

// sloScale multiplies quick-mode request counts and horizons up to the
// full-length operating point.
func sloScale(cfg Config, n int64) int64 {
	if cfg.Quick {
		return n
	}
	return 3 * n
}

func sloHorizon(cfg Config, d vclock.Duration) vclock.Duration {
	if cfg.Quick {
		return d
	}
	return 3 * d
}

// SchedPolicyLab (S1) runs every registered policy over a two-cohort
// interactive/bulk mix with a background batch pool — the broad survey
// the comparison experiments S2-S4 then sharpen.
func SchedPolicyLab(cfg Config) *Report {
	sp := sloSpec("s1-policy-lab", sloHorizon(cfg, 8*vclock.Second),
		&spec.Batch{Workers: 4, ChunkUS: (5 * vclock.Millisecond).Micros(),
			SLOUS: (50 * vclock.Millisecond).Micros(), Priority: "background"},
		sloCohort("interactive", 16, sloScale(cfg, 2800), 450,
			vclock.Millisecond, 25*vclock.Millisecond, "high"),
		sloCohort("bulk", 8, sloScale(cfg, 600), 100,
			2*vclock.Millisecond, 100*vclock.Millisecond, "normal"))
	ladder := []string{"pcr-rr", "rr", "edf", "sjf", "mlfq", "hybrid"}
	sums, tables := sweepPolicies(cfg, ladder, sp,
		"Policy lab: interactive (1ms/25ms SLO, ~45% load) + bulk (2ms/100ms SLO, ~20% load) over a 4-thread batch pool")
	return &Report{ID: "S1", Title: "Scheduling-policy lab over an interactive/bulk/batch mix",
		Tables: tables,
		Notes: []string{
			"every policy sees the same offered load and seed; only the dispatch discipline differs;",
			"pcr-rr is the paper's fixed priority structure — the ladder measures what each departure",
			"from it buys (fairness, deadlines, short jobs) and what it costs in interactive promptness.",
		},
		Sched: sums}
}

// SchedDeadlines (S2) compares deadline-blind and deadline-aware
// disciplines on tight- vs loose-deadline cohorts at equal priority.
func SchedDeadlines(cfg Config) *Report {
	sp := sloSpec("s2-deadlines", sloHorizon(cfg, 10*vclock.Second), nil,
		sloCohort("tight", 8, sloScale(cfg, 1200), 150,
			2*vclock.Millisecond, 15*vclock.Millisecond, "normal"),
		sloCohort("loose", 8, sloScale(cfg, 2400), 300,
			2*vclock.Millisecond, 250*vclock.Millisecond, "normal"))
	ladder := []string{"pcr-rr", "rr", "edf"}
	sums, tables := sweepPolicies(cfg, ladder, sp,
		"Deadline cohorts at one priority: tight (15ms SLO) vs loose (250ms SLO), ~90% utilization")
	return &Report{ID: "S2", Title: "EDF vs deadline-blind round-robin on mixed deadlines",
		Tables: tables,
		Notes: []string{
			"both cohorts share one priority, so pcr-rr degenerates to FIFO service order and the tight",
			"cohort queues behind loose work it cannot overtake; edf reads the deadline each session",
			"stamps from its oldest pending request and runs the urgent session first.",
		},
		Sched: sums}
}

// SchedServiceAware (S3) compares service-blind and service-aware
// disciplines on a bimodal short/long service mix at equal priority.
func SchedServiceAware(cfg Config) *Report {
	sp := sloSpec("s3-service-aware", sloHorizon(cfg, 10*vclock.Second), nil,
		sloCohort("short", 12, sloScale(cfg, 4800), 600,
			500*vclock.Microsecond, 10*vclock.Millisecond, "normal"),
		sloCohort("long", 6, sloScale(cfg, 480), 60,
			10*vclock.Millisecond, 250*vclock.Millisecond, "normal"))
	ladder := []string{"pcr-rr", "sjf", "mlfq"}
	sums, tables := sweepPolicies(cfg, ladder, sp,
		"Bimodal service at one priority: short (0.5ms/10ms SLO) vs long (10ms/250ms SLO)")
	return &Report{ID: "S3", Title: "SJF and MLFQ vs FIFO on bimodal service times",
		Tables: tables,
		Notes: []string{
			"sjf reads the declared pending-service estimate and overtakes long work explicitly; mlfq",
			"infers the same split by demoting sessions that burn whole quanta — feedback approximating",
			"SJF without metadata, at the price of its aging machinery.",
		},
		Sched: sums}
}

// SchedPromptness (S4) is the promptness-vs-throughput demonstration:
// strict priority starves the batch pool's chunk latency, single-level
// round-robin destroys interactive latency, and the hybrid bounds both —
// beating both pure disciplines on the min-attainment score.
func SchedPromptness(cfg Config) *Report {
	sp := sloSpec("s4-promptness", sloHorizon(cfg, 8*vclock.Second),
		&spec.Batch{Workers: 4, ChunkUS: (2 * vclock.Millisecond).Micros(),
			SLOUS: (15 * vclock.Millisecond).Micros(), Priority: "background"},
		sloCohort("interactive", 24, sloScale(cfg, 4000), 600,
			vclock.Millisecond, 30*vclock.Millisecond, "high"))
	ladder := []string{"pcr-rr", "rr", "hybrid:slice=10ms,share=0.3"}
	sums, tables := sweepPolicies(cfg, ladder, sp,
		"Promptness vs throughput: interactive (1ms/30ms SLO, ~60% load) over a 4-thread batch pool (2ms chunks, 15ms SLO)")
	return &Report{ID: "S4", Title: "Hybrid promptness: bounding both interactive and batch latency",
		Tables: tables,
		Notes: []string{
			"the score is min attainment across classes, so a policy wins only by serving both: strict",
			"priority sacrifices batch chunk latency, pure round-robin sacrifices keystroke echo, and the",
			"hybrid's periodic batch boost (one 10ms slice per cycle, 30% share) bounds each class's wait —",
			"the Competitive Parallelism split grafted onto the paper's priority structure.",
		},
		Sched: sums}
}

// SSeries returns the scheduling-policy experiments, in presentation
// order. Like the W series, they are not part of All(): the S series
// runs only on explicit request (threadstudy -sseries or -experiment
// S1..S4), and it is deliberately kept out of the bench sweep so the
// BENCH baseline's per-experiment event counts stay comparable across
// PRs.
func SSeries() []Experiment {
	return []Experiment{
		{"S1", "Scheduling-policy lab over an interactive/bulk/batch mix", SchedPolicyLab},
		{"S2", "EDF vs deadline-blind round-robin on mixed deadlines", SchedDeadlines},
		{"S3", "SJF and MLFQ vs FIFO on bimodal service times", SchedServiceAware},
		{"S4", "Hybrid promptness: bounding both interactive and batch latency", SchedPromptness},
	}
}
