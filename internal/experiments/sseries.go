package experiments

import (
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/vclock"
	"repro/internal/workload"
)

// The S-series is the scheduling-policy lab: each experiment runs the
// same SLO-cohort workload once per policy in a fixed comparison ladder
// and reports per-class latency percentiles, SLO attainment, a Jain
// fairness index over the attainments, and the promptness score — the
// minimum attainment across classes, the number a policy can only raise
// by serving every class adequately rather than sacrificing one. Like
// the W series, the S series runs only behind explicit request
// (threadstudy -sseries or -experiment S1..S4), keeping the default
// experiment list and its golden stdout untouched.

// ClassSummary is one class's results under one policy. All latencies
// are virtual microseconds.
type ClassSummary struct {
	Class      string  `json:"class"`
	Offered    int64   `json:"offered"`
	Completed  int64   `json:"completed"`
	P50US      int64   `json:"p50_us"`
	P99US      int64   `json:"p99_us"`
	Attainment float64 `json:"attainment"`
}

// SchedSummary is the machine-readable face of one policy's run within
// an S-series experiment, attached to the experiment's Metrics under
// "sched" in -json/-bench output.
type SchedSummary struct {
	// Policy is the full spec the run executed under (sched.Parse
	// syntax), parameters included.
	Policy string `json:"policy"`
	// Classes holds the per-class breakdown, sorted by class name.
	Classes []ClassSummary `json:"classes"`
	// Fairness is Jain's index over the per-class attainments.
	Fairness float64 `json:"fairness"`
	// Score is the minimum attainment across classes — the mixed-load
	// promptness metric the S4 acceptance criterion is stated in.
	Score float64 `json:"score"`
}

// runPolicy executes the SLO workload once under the given policy spec
// and summarizes the run. Each call builds a fresh world and a fresh
// policy instance: stateful policies key their books by thread pointer
// and serve exactly one world.
func runPolicy(cfg Config, spec string, p workload.SLOParams) *SchedSummary {
	h := cfg.Hooks
	h.Policy = sched.MustParse(spec)
	w := sim.NewWorld(sim.Config{Seed: cfg.seed(), Hooks: h})
	defer w.Shutdown()
	l := workload.StartSLO(w, p)
	w.Run(vclock.Time(0).Add(p.Horizon))
	s := l.Finish()

	sum := &SchedSummary{Policy: spec, Score: 1}
	var atts []float64
	for _, class := range s.Classes() {
		cs := ClassSummary{
			Class:      class,
			Offered:    s.Offered[class],
			Completed:  s.Completed[class],
			Attainment: s.Attainment(class),
		}
		if r := s.Latency.Class(class); r != nil {
			cs.P50US = int64(r.Percentile(0.5))
			cs.P99US = int64(r.Percentile(0.99))
		}
		sum.Classes = append(sum.Classes, cs)
		atts = append(atts, cs.Attainment)
		if cs.Attainment < sum.Score {
			sum.Score = cs.Attainment
		}
	}
	sum.Fairness = stats.JainFairness(atts)
	return sum
}

// sweepPolicies runs the ladder and renders the two shared S-series
// tables: the per-class breakdown and the policy summary.
func sweepPolicies(cfg Config, ladder []string, p workload.SLOParams, title string) ([]*SchedSummary, []*stats.Table) {
	var sums []*SchedSummary
	breakdown := stats.NewTable(title,
		"Policy", "Class", "Offered", "Done", "p50", "p99", "On-time")
	for _, spec := range ladder {
		sum := runPolicy(cfg, spec, p)
		sums = append(sums, sum)
		for _, cs := range sum.Classes {
			breakdown.AddRowf("%s", sum.Policy, "%s", cs.Class,
				"%d", cs.Offered, "%d", cs.Completed,
				"%s", vclock.Duration(cs.P50US), "%s", vclock.Duration(cs.P99US),
				"%.3f", cs.Attainment)
		}
	}
	summary := stats.NewTable("Policy summary: min attainment across classes (score) and Jain fairness over attainments",
		"Policy", "Score", "Fairness")
	for _, sum := range sums {
		summary.AddRowf("%s", sum.Policy, "%.3f", sum.Score, "%.3f", sum.Fairness)
	}
	return sums, []*stats.Table{breakdown, summary}
}

// sloScale multiplies quick-mode request counts and horizons up to the
// full-length operating point.
func sloScale(cfg Config, n int64) int64 {
	if cfg.Quick {
		return n
	}
	return 3 * n
}

func sloHorizon(cfg Config, d vclock.Duration) vclock.Duration {
	if cfg.Quick {
		return d
	}
	return 3 * d
}

// SchedPolicyLab (S1) runs every registered policy over a two-cohort
// interactive/bulk mix with a background batch pool — the broad survey
// the comparison experiments S2-S4 then sharpen.
func SchedPolicyLab(cfg Config) *Report {
	p := workload.SLOParams{
		Cohorts: []workload.SLOCohort{
			{Name: "interactive", Sessions: 16, Requests: sloScale(cfg, 2800), Rate: 450,
				Service: vclock.Millisecond, SLO: 25 * vclock.Millisecond, Priority: sim.PriorityHigh},
			{Name: "bulk", Sessions: 8, Requests: sloScale(cfg, 600), Rate: 100,
				Service: 2 * vclock.Millisecond, SLO: 100 * vclock.Millisecond, Priority: sim.PriorityNormal},
		},
		Batch: 4, BatchChunk: 5 * vclock.Millisecond, BatchSLO: 50 * vclock.Millisecond,
		BatchPriority: sim.PriorityBackground,
		Horizon:       sloHorizon(cfg, 8*vclock.Second),
	}
	ladder := []string{"pcr-rr", "rr", "edf", "sjf", "mlfq", "hybrid"}
	sums, tables := sweepPolicies(cfg, ladder, p,
		"Policy lab: interactive (1ms/25ms SLO, ~45% load) + bulk (2ms/100ms SLO, ~20% load) over a 4-thread batch pool")
	return &Report{ID: "S1", Title: "Scheduling-policy lab over an interactive/bulk/batch mix",
		Tables: tables,
		Notes: []string{
			"every policy sees the same offered load and seed; only the dispatch discipline differs;",
			"pcr-rr is the paper's fixed priority structure — the ladder measures what each departure",
			"from it buys (fairness, deadlines, short jobs) and what it costs in interactive promptness.",
		},
		Sched: sums}
}

// SchedDeadlines (S2) compares deadline-blind and deadline-aware
// disciplines on tight- vs loose-deadline cohorts at equal priority.
func SchedDeadlines(cfg Config) *Report {
	p := workload.SLOParams{
		Cohorts: []workload.SLOCohort{
			{Name: "tight", Sessions: 8, Requests: sloScale(cfg, 1200), Rate: 150,
				Service: 2 * vclock.Millisecond, SLO: 15 * vclock.Millisecond, Priority: sim.PriorityNormal},
			{Name: "loose", Sessions: 8, Requests: sloScale(cfg, 2400), Rate: 300,
				Service: 2 * vclock.Millisecond, SLO: 250 * vclock.Millisecond, Priority: sim.PriorityNormal},
		},
		Horizon: sloHorizon(cfg, 10*vclock.Second),
	}
	ladder := []string{"pcr-rr", "rr", "edf"}
	sums, tables := sweepPolicies(cfg, ladder, p,
		"Deadline cohorts at one priority: tight (15ms SLO) vs loose (250ms SLO), ~90% utilization")
	return &Report{ID: "S2", Title: "EDF vs deadline-blind round-robin on mixed deadlines",
		Tables: tables,
		Notes: []string{
			"both cohorts share one priority, so pcr-rr degenerates to FIFO service order and the tight",
			"cohort queues behind loose work it cannot overtake; edf reads the deadline each session",
			"stamps from its oldest pending request and runs the urgent session first.",
		},
		Sched: sums}
}

// SchedServiceAware (S3) compares service-blind and service-aware
// disciplines on a bimodal short/long service mix at equal priority.
func SchedServiceAware(cfg Config) *Report {
	p := workload.SLOParams{
		Cohorts: []workload.SLOCohort{
			{Name: "short", Sessions: 12, Requests: sloScale(cfg, 4800), Rate: 600,
				Service: 500 * vclock.Microsecond, SLO: 10 * vclock.Millisecond, Priority: sim.PriorityNormal},
			{Name: "long", Sessions: 6, Requests: sloScale(cfg, 480), Rate: 60,
				Service: 10 * vclock.Millisecond, SLO: 250 * vclock.Millisecond, Priority: sim.PriorityNormal},
		},
		Horizon: sloHorizon(cfg, 10*vclock.Second),
	}
	ladder := []string{"pcr-rr", "sjf", "mlfq"}
	sums, tables := sweepPolicies(cfg, ladder, p,
		"Bimodal service at one priority: short (0.5ms/10ms SLO) vs long (10ms/250ms SLO)")
	return &Report{ID: "S3", Title: "SJF and MLFQ vs FIFO on bimodal service times",
		Tables: tables,
		Notes: []string{
			"sjf reads the declared pending-service estimate and overtakes long work explicitly; mlfq",
			"infers the same split by demoting sessions that burn whole quanta — feedback approximating",
			"SJF without metadata, at the price of its aging machinery.",
		},
		Sched: sums}
}

// SchedPromptness (S4) is the promptness-vs-throughput demonstration:
// strict priority starves the batch pool's chunk latency, single-level
// round-robin destroys interactive latency, and the hybrid bounds both —
// beating both pure disciplines on the min-attainment score.
func SchedPromptness(cfg Config) *Report {
	p := workload.SLOParams{
		Cohorts: []workload.SLOCohort{
			{Name: "interactive", Sessions: 24, Requests: sloScale(cfg, 4000), Rate: 600,
				Service: vclock.Millisecond, SLO: 30 * vclock.Millisecond, Priority: sim.PriorityHigh},
		},
		Batch: 4, BatchChunk: 2 * vclock.Millisecond, BatchSLO: 15 * vclock.Millisecond,
		BatchPriority: sim.PriorityBackground,
		Horizon:       sloHorizon(cfg, 8*vclock.Second),
	}
	ladder := []string{"pcr-rr", "rr", "hybrid:slice=10ms,share=0.3"}
	sums, tables := sweepPolicies(cfg, ladder, p,
		"Promptness vs throughput: interactive (1ms/30ms SLO, ~60% load) over a 4-thread batch pool (2ms chunks, 15ms SLO)")
	return &Report{ID: "S4", Title: "Hybrid promptness: bounding both interactive and batch latency",
		Tables: tables,
		Notes: []string{
			"the score is min attainment across classes, so a policy wins only by serving both: strict",
			"priority sacrifices batch chunk latency, pure round-robin sacrifices keystroke echo, and the",
			"hybrid's periodic batch boost (one 10ms slice per cycle, 30% share) bounds each class's wait —",
			"the Competitive Parallelism split grafted onto the paper's priority structure.",
		},
		Sched: sums}
}

// SSeries returns the scheduling-policy experiments, in presentation
// order. Like the W series, they are not part of All(): the S series
// runs only on explicit request (threadstudy -sseries or -experiment
// S1..S4), and it is deliberately kept out of the bench sweep so the
// BENCH baseline's per-experiment event counts stay comparable across
// PRs.
func SSeries() []Experiment {
	return []Experiment{
		{"S1", "Scheduling-policy lab over an interactive/bulk/batch mix", SchedPolicyLab},
		{"S2", "EDF vs deadline-blind round-robin on mixed deadlines", SchedDeadlines},
		{"S3", "SJF and MLFQ vs FIFO on bimodal service times", SchedServiceAware},
		{"S4", "Hybrid promptness: bounding both interactive and batch latency", SchedPromptness},
	}
}
