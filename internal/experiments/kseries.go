package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/stats"
	"repro/internal/vclock"
	"repro/internal/workload/capacity"
	"repro/internal/workload/spec"
)

// The K-series is the capacity lab: each experiment asks "where does
// this configuration saturate?" by ramping the offered rate across whole
// deterministic runs until an overload criterion trips, then bisecting
// to the knee (internal/workload/capacity). Where the W and S series
// measure fixed operating points, the K series finds the operating
// envelope — the number a capacity planner actually wants. Like the
// other opt-in series it runs only behind explicit request (threadstudy
// -series k or -experiment K1..K3) and is kept out of the bench sweep:
// a knee search's event count is a step function of the measured knee,
// useless as a regression baseline.

// kneeWindow scales the per-point injection window to the run mode.
func kneeWindow(cfg Config, d vclock.Duration) vclock.Duration {
	if cfg.Quick {
		return d / 2
	}
	return d
}

// kneeHorizon bounds one measured run: the injection window plus half
// again for draining, so a healthy point completes everything it
// offered and an overloaded point visibly does not.
func kneeHorizon(window vclock.Duration) vclock.Duration {
	return window + window/2
}

// kneeEchoRunner measures one single-world operating point: a 200-thread
// session pool under open-loop Poisson load with 200us constant service,
// compiled through the general cohorts kind. Offered load scales with
// the probed rate so every point injects over the same virtual window.
func kneeEchoRunner(cfg Config, window vclock.Duration) capacity.Runner {
	return func(rate float64) capacity.Point {
		sp := &spec.Spec{Schema: spec.Schema, Name: "k1-echo-knee", Kind: spec.KindCohorts,
			Cohorts: []spec.Cohort{{
				Name: "echo", Sessions: 200, Requests: int64(rate * window.Seconds()),
				Arrival:  &spec.Arrival{Process: spec.ProcPoisson, Rate: rate},
				Service:  &spec.Service{Dist: spec.DistConst, MeanUS: 200},
				Priority: "normal",
			}},
			HorizonUS: kneeHorizon(window).Micros(),
		}
		w, run := startSpec(cfg, sp)
		defer w.Shutdown()
		w.Run(vclock.Time(0).Add(run.Horizon))
		s := run.Load()
		return capacity.Point{Offered: s.Offered, Completed: s.Completed,
			P99US: int64(s.Latency.Percentile(0.99))}
	}
}

// kneeFleetRunner measures one fleet operating point: a three-instance
// cedar cluster with 12 sessions each, 500us service, and a short drain
// so overload shows up as undone work, under the given router.
func kneeFleetRunner(cfg Config, router string, window vclock.Duration) capacity.Runner {
	return func(rate float64) capacity.Point {
		sum, err := cluster.Run(cluster.Spec{
			Preset:    "cedar",
			Instances: 3,
			Sessions:  12,
			Router:    router,
			Seed:      cfg.seed(),
			Requests:  int64(rate * window.Seconds()),
			Rate:      rate,
			Service:   500 * vclock.Microsecond,
			Drain:     250 * vclock.Millisecond,
			Shards:    cfg.Shards,
			Hooks:     cfg.Hooks,
		})
		if err != nil {
			panic(err) // the sweep's specs are literals; failing to build is a bug
		}
		return capacity.Point{Offered: sum.Offered, Completed: sum.Completed, P99US: sum.P99Us}
	}
}

// kneeSLORunner measures one scheduling-policy operating point: the S4
// promptness shape (interactive echo over a 4-thread batch pool) with
// the interactive cohort's rate probed. The verdict reads only the
// interactive class — the knee under test is keystroke promptness, not
// batch completion.
func kneeSLORunner(cfg Config, policy string, window vclock.Duration) capacity.Runner {
	return func(rate float64) capacity.Point {
		sp := sloSpec("k3-promptness-knee", kneeHorizon(window),
			&spec.Batch{Workers: 4, ChunkUS: (2 * vclock.Millisecond).Micros(),
				SLOUS: (15 * vclock.Millisecond).Micros(), Priority: "background"},
			sloCohort("interactive", 24, int64(rate*window.Seconds()), rate,
				vclock.Millisecond, 30*vclock.Millisecond, "high"))
		sum := runPolicy(cfg, policy, sp)
		for _, cs := range sum.Classes {
			if cs.Class == "interactive" {
				return capacity.Point{Offered: cs.Offered, Completed: cs.Completed, P99US: cs.P99US}
			}
		}
		return capacity.Point{}
	}
}

// kneeTable renders one sweep's measured points in probe order.
func kneeTable(res *capacity.Result) *stats.Table {
	t := stats.NewTable(fmt.Sprintf("%s: ramp and bisection probes", res.Name),
		"Rate", "Offered", "Done", "Ratio", "p99", "Verdict")
	for _, p := range res.Points {
		verdict := "ok"
		if p.Overloaded {
			verdict = p.Reason
		}
		t.AddRowf("%g", p.Rate, "%d", p.Offered, "%d", p.Completed,
			"%.3f", p.Ratio, "%s", vclock.Duration(p.P99US), "%s", verdict)
	}
	return t
}

// kneeSummary renders the cross-configuration knee comparison.
func kneeSummary(title string, results ...*capacity.Result) *stats.Table {
	t := stats.NewTable(title, "Config", "Knee rate", "Saturated", "Probes")
	for _, r := range results {
		t.AddRowf("%s", r.Name, "%g req/s", r.KneeRate, "%t", r.Saturated, "%d", len(r.Points))
	}
	return t
}

// CapacityEcho (K1) finds the saturation knee of a single W1-shaped
// world: one CPU, 200us constant service, so the analytic capacity is
// 5000 req/s and the measured knee prices the scheduler's overhead
// against it.
func CapacityEcho(cfg Config) *Report {
	win := kneeWindow(cfg, 2*vclock.Second)
	res := capacity.Find(capacity.Sweep{
		Name: "k1-echo", Start: 1000, MaxSteps: 5,
		Criterion: capacity.Criterion{P99SLOUS: 5000, MinRatio: 0.95},
	}, kneeEchoRunner(cfg, win))
	return &Report{ID: "K1", Title: "Saturation knee of the open-loop echo server",
		Tables: []*stats.Table{kneeTable(res), kneeSummary("Knee", res)},
		Notes: []string{
			fmt.Sprintf("200us constant service on one CPU bounds capacity at 5000 req/s; the measured knee is %g req/s (saturated=%t)", res.KneeRate, res.Saturated),
			"each probe is one full deterministic run at a fixed seed — the whole search, probes and knee, is byte-reproducible.",
		},
		Capacity: []*capacity.Result{res}}
}

// CapacityFleet (K2) finds the knee of a three-instance cedar fleet
// under round-robin vs least-loaded routing: load-aware routing should
// carry the fleet closer to its aggregate capacity before the tail or
// the completion ratio gives out.
func CapacityFleet(cfg Config) *Report {
	win := kneeWindow(cfg, vclock.Second)
	crit := capacity.Criterion{P99SLOUS: 10_000, MinRatio: 0.90}
	rr := capacity.Find(capacity.Sweep{
		Name: "k2-fleet-rr", Start: 750, MaxSteps: 5, Bisect: 2, Criterion: crit,
	}, kneeFleetRunner(cfg, cluster.RouteRoundRobin, win))
	ll := capacity.Find(capacity.Sweep{
		Name: "k2-fleet-least-loaded", Start: 750, MaxSteps: 5, Bisect: 2, Criterion: crit,
	}, kneeFleetRunner(cfg, cluster.RouteLeastLoaded, win))
	return &Report{ID: "K2", Title: "Fleet capacity knee: round-robin vs least-loaded routing",
		Tables: []*stats.Table{kneeTable(rr), kneeTable(ll),
			kneeSummary("Knee by router", rr, ll)},
		Notes: []string{
			"three cedar instances share the offered load; the cedar background population steals cycles, so",
			"the fleet knee sits below the bare 3x2000 req/s service bound and moves with the router's skill;",
			fmt.Sprintf("rr knee %g req/s vs least-loaded knee %g req/s under the same p99/ratio criterion.", rr.KneeRate, ll.KneeRate),
		},
		Capacity: []*capacity.Result{rr, ll}}
}

// CapacityPolicy (K3) measures how the scheduling policy shifts the
// interactive knee on the S4 promptness shape: the hybrid's reserved
// batch share is paid for in interactive capacity, and the knee shift
// is that price, measured.
func CapacityPolicy(cfg Config) *Report {
	win := kneeWindow(cfg, 2*vclock.Second)
	crit := capacity.Criterion{P99SLOUS: 30_000, MinRatio: 0.95}
	pcr := capacity.Find(capacity.Sweep{
		Name: "k3-pcr-rr", Start: 200, MaxSteps: 5, Criterion: crit,
	}, kneeSLORunner(cfg, "pcr-rr", win))
	hyb := capacity.Find(capacity.Sweep{
		Name: "k3-hybrid", Start: 200, MaxSteps: 5, Criterion: crit,
	}, kneeSLORunner(cfg, "hybrid:slice=10ms,share=0.3", win))
	return &Report{ID: "K3", Title: "Policy knee shift: pcr-rr vs hybrid on the promptness mix",
		Tables: []*stats.Table{kneeTable(pcr), kneeTable(hyb),
			kneeSummary("Interactive knee by policy", pcr, hyb)},
		Notes: []string{
			"the criterion reads only the interactive class (p99 over its 30ms SLO, or undone work): the",
			"hybrid's 30% batch share bounds batch wait at every rate, and this sweep prices that guarantee",
			fmt.Sprintf("in interactive headroom: pcr-rr knee %g req/s vs hybrid knee %g req/s.", pcr.KneeRate, hyb.KneeRate),
		},
		Capacity: []*capacity.Result{pcr, hyb}}
}

// KSeries returns the capacity experiments, in presentation order. Like
// the other opt-in series they are not part of All() and stay out of
// the bench sweep.
func KSeries() []Experiment {
	return []Experiment{
		{"K1", "Saturation knee of the open-loop echo server", CapacityEcho},
		{"K2", "Fleet capacity knee: round-robin vs least-loaded routing", CapacityFleet},
		{"K3", "Policy knee shift: pcr-rr vs hybrid on the promptness mix", CapacityPolicy},
	}
}
