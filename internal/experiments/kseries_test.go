package experiments

import (
	"encoding/json"
	"runtime"
	"testing"
)

// kneeJSON runs one K experiment and returns its knee records as JSON —
// the artifact the CI job uploads, so byte equality here is byte
// equality there.
func kneeJSON(t *testing.T, id string, cfg Config) string {
	t.Helper()
	e, err := ByID(id)
	if err != nil {
		t.Fatalf("ByID(%s): %v", id, err)
	}
	rep := e.Run(cfg)
	if len(rep.Capacity) == 0 {
		t.Fatalf("%s: no capacity records", id)
	}
	b, err := json.Marshal(rep.Capacity)
	if err != nil {
		t.Fatalf("%s: marshal: %v", id, err)
	}
	return string(b)
}

func TestKSeriesRegistered(t *testing.T) {
	for _, id := range []string{"K1", "K2", "K3"} {
		if _, err := ByID(id); err != nil {
			t.Errorf("ByID(%s): %v", id, err)
		}
	}
	exps, err := BySeries("k")
	if err != nil {
		t.Fatalf("BySeries(k): %v", err)
	}
	if len(exps) != 3 {
		t.Fatalf("BySeries(k) = %d experiments, want 3", len(exps))
	}
	if got := SeriesOf("k2"); got != "k" {
		t.Errorf("SeriesOf(k2) = %q, want k", got)
	}
	if got := SeriesOf("T1"); got != "" {
		t.Errorf("SeriesOf(T1) = %q, want empty", got)
	}
}

// TestKSeriesDeterministic pins the acceptance criterion: the knee JSON
// is byte-identical across reruns, and each sweep actually finds a
// saturation knee rather than running off the end of its ramp.
func TestKSeriesDeterministic(t *testing.T) {
	for _, id := range []string{"K1", "K2", "K3"} {
		a := kneeJSON(t, id, Config{Quick: true})
		b := kneeJSON(t, id, Config{Quick: true})
		if a != b {
			t.Errorf("%s: knee JSON differs across reruns:\n%s\n%s", id, a, b)
		}
		e, _ := ByID(id)
		for _, res := range e.Run(Config{Quick: true}).Capacity {
			if !res.Saturated {
				t.Errorf("%s: sweep %s never saturated (knee %g is only a lower bound)", id, res.Name, res.KneeRate)
			}
			if res.KneeRate <= 0 {
				t.Errorf("%s: sweep %s found no healthy rate at all", id, res.Name)
			}
		}
	}
}

// TestKSeriesShardIndependent pins the other half of the criterion: the
// fleet knee's JSON does not depend on the cluster's advance
// parallelism.
func TestKSeriesShardIndependent(t *testing.T) {
	base := kneeJSON(t, "K2", Config{Quick: true, Shards: 1})
	for _, shards := range []int{4, runtime.GOMAXPROCS(0)} {
		if got := kneeJSON(t, "K2", Config{Quick: true, Shards: shards}); got != base {
			t.Errorf("K2: knee JSON at %d shards differs from serial:\n%s\n%s", shards, got, base)
		}
	}
}
