// Package experiments regenerates every table and figure-equivalent of
// the paper's evaluation: Tables 1–4 and the case-study results the paper
// reports in prose (execution-interval distributions, priority usage, the
// §5.2 slack process, the §6.3 quantum sweep, §6.1 spurious lock
// conflicts, §6.2 priority inversion, §5.6 Xlib vs Xl, and the §5.3
// common mistakes). Each experiment has a stable ID (T1..T4, F1..F8) used
// by cmd/threadstudy, the benchmark harness and EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/vclock"
	"repro/internal/workload/capacity"
)

// Config scales the experiments. The zero value selects full-length runs.
type Config struct {
	// Quick shortens measurement windows ~3x for tests and -short runs.
	Quick bool
	// Seed drives all randomness. Zero selects the default seed 1 (a
	// deliberate remap so the zero Config is usable); callers that need
	// to distinguish "unset" from an explicit 0 — seed-sweep scripts —
	// must validate before building the Config, as cmd/threadstudy does.
	Seed int64
	// Hooks carries the observability seams (sim.Config.Hooks) into
	// every world an experiment creates — directly or through the
	// workload and xwin helpers. The observe-only hooks never affect an
	// experiment's output; the runner attaches one probe (and, when
	// profiling, one profiler set) per run via this field.
	Hooks sim.Hooks
	// Faults, when non-nil, replaces the built-in fault plan of the
	// faulted world in each R-series resilience experiment (threadstudy
	// -faults). The T and F experiments never consult it: their outputs
	// are byte-identical with or without a plan.
	Faults *fault.Plan
	// FaultSeed seeds the fault injector's private RNG; zero derives a
	// seed from Seed so fault randomness never aliases workload
	// randomness.
	FaultSeed int64
	// Policy is the scheduling-policy spec (sched.Parse syntax) the
	// load-driven W series runs under; empty means the default pcr-rr.
	// Specs must be pre-validated (cmd/threadstudy does): the
	// experiments parse with sched.MustParse, one fresh instance per
	// world, because stateful policies serve exactly one world. The T, F,
	// R, C and D series never consult it — their worlds model the paper's
	// fixed PCR discipline — and the S-series comparison ladders sweep
	// their own fixed policy lists by design.
	Policy string
	// Shards sets cluster.Spec.Shards for the C- and D-series fleets —
	// advance parallelism only, byte-identical output at any value (the
	// shard determinism tests run both series at several values). Zero
	// leaves the cluster default (serial). The default `make bench` path
	// passes GOMAXPROCS so a single run uses every core inside one
	// experiment.
	Shards int
}

func (c Config) window() vclock.Duration {
	if c.Quick {
		return 10 * vclock.Second
	}
	return 30 * vclock.Second
}

func (c Config) seed() int64 {
	if c.Seed == 0 {
		return 1
	}
	return c.Seed
}

func (c Config) faultSeed() int64 {
	if c.FaultSeed != 0 {
		return c.FaultSeed
	}
	return c.seed() + 0x5eed
}

// faultPlan selects the plan a resilience experiment injects into its
// faulted world: the operator's -faults plan when given, else def.
func (c Config) faultPlan(def fault.Plan) fault.Plan {
	if c.Faults != nil {
		return *c.Faults
	}
	return def
}

// hooks returns c.Hooks with the selected scheduling policy attached,
// freshly parsed so every world gets its own instance. An explicit
// "pcr-rr" parses to the shared default singleton, which the simulator
// recognizes and keeps its pre-policy fast paths for — byte-identical
// output to an empty Policy. A Policy already present in c.Hooks (tests
// injecting instances directly) wins over the spec.
func (c Config) hooks() sim.Hooks {
	h := c.Hooks
	if c.Policy != "" && h.Policy == nil {
		h.Policy = sched.MustParse(c.Policy)
	}
	return h
}

// Report is one experiment's output: rendered tables plus free-form
// notes recording the paper-vs-measured comparison.
type Report struct {
	ID    string
	Title string

	Tables []*stats.Table
	Notes  []string

	// Load carries a W-series run's machine-readable throughput and
	// latency summary; nil for the T/F/R series. The runner copies it
	// into the run's Metrics so -json and -bench output include it.
	Load *LoadSummary

	// Cluster carries a C-series run's fleet summaries, one per sweep
	// point in presentation order; nil for every other series. Like
	// Load, the runner copies it into the run's Metrics.
	Cluster []*cluster.Summary

	// Sched carries an S-series run's per-policy scheduling summaries,
	// one per ladder entry in presentation order; nil for every other
	// series. Like Load, the runner copies it into the run's Metrics.
	Sched []*SchedSummary

	// Capacity carries a K-series run's schema-versioned saturation-knee
	// records, one per configuration in presentation order; nil for
	// every other series. Like Load, the runner copies it into the run's
	// Metrics.
	Capacity []*capacity.Result
}

// String renders the report as plain text.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n\n", r.ID, r.Title)
	for _, t := range r.Tables {
		sb.WriteString(t.String())
		sb.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Markdown renders the report as GitHub-flavored markdown.
func (r *Report) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "## %s — %s\n\n", r.ID, r.Title)
	for _, t := range r.Tables {
		sb.WriteString(t.Markdown())
		sb.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "> %s\n", n)
	}
	return sb.String()
}

// Experiment couples an ID with its regeneration function.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config) *Report
}

// All returns every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{"T1", "Forking and thread-switching rates (Table 1)", Table1},
		{"T2", "Wait-CV and monitor entry rates (Table 2)", Table2},
		{"T3", "Number of different CVs and monitor locks used (Table 3)", Table3},
		{"T4", "Static paradigm counts (Table 4)", Table4},
		{"F1", "Execution-interval distributions (§3)", FigExecIntervals},
		{"F2", "Priority usage (§3)", FigPriorities},
		{"F3", "The X-server slack process: YIELD vs YieldButNotToMe (§5.2)", FigSlack},
		{"F4", "The effect of the time-slice quantum (§6.3)", FigQuantum},
		{"F5", "Spurious lock conflicts (§6.1)", FigSpurious},
		{"F6", "Stable priority inversion and its workarounds (§6.2)", FigInversion},
		{"F7", "Multi-threaded Xlib vs Xl (§5.6)", FigXlib},
		{"F8", "Common mistakes: IF-waits and timeout-masked notifies (§5.3)", FigMistakes},
		{"F9", "Priority inheritance for interactive systems (§7 future work)", FigInheritance},
		{"F10", "Dynamically tuned timeouts (§5.5 future work)", FigAdaptive},
		{"F11", "Multiprocessors: exploiter scaling and contention (§4.7/§5.1)", FigMultiprocessor},
		{"F12", "Keystroke echo latency and the priority structure (§1/§3)", FigEchoLatency},
		{"R1", "Crash-and-rejuvenate under the Cedar compile workload (§4.5/§5.5)", ResCrash},
		{"R2", "FORK exhaustion under keystrokes: bare TryFork vs retry policy (§5.4)", ResForkExhaustion},
		{"R3", "Induced priority inversion, watchdog detection, SystemDaemon recovery (§6.2)", ResInversion},
	}
}

// Series keys the opt-in experiment series for flag plumbing: each maps
// a one-letter -series id to its experiment list, in presentation order.
func Series() []struct {
	Key  string
	Exps []Experiment
} {
	return []struct {
		Key  string
		Exps []Experiment
	}{
		{"w", WSeries()},
		{"c", CSeries()},
		{"d", DSeries()},
		{"s", SSeries()},
		{"k", KSeries()},
	}
}

// BySeries returns the opt-in series with the given one-letter key.
func BySeries(key string) ([]Experiment, error) {
	for _, s := range Series() {
		if s.Key == key {
			return s.Exps, nil
		}
	}
	return nil, fmt.Errorf("experiments: unknown series %q", key)
}

// SeriesOf returns the one-letter key of the opt-in series owning the
// experiment ID ("" for the always-on default set).
func SeriesOf(id string) string {
	for _, s := range Series() {
		for _, e := range s.Exps {
			if strings.EqualFold(e.ID, id) {
				return s.Key
			}
		}
	}
	return ""
}

// ByID returns the experiment with the given ID (case-insensitive),
// searching the default set and the W, C, D, S and K series.
func ByID(id string) (Experiment, error) {
	all := All()
	for _, s := range Series() {
		all = append(all, s.Exps...)
	}
	for _, e := range all {
		if strings.EqualFold(e.ID, id) {
			return e, nil
		}
	}
	// List the IDs in presentation order — sorting lexicographically
	// would interleave them as "F1 F10 F11 F12 F2 ...".
	var ids []string
	for _, e := range all {
		ids = append(ids, e.ID)
	}
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (have %s)", id, strings.Join(ids, " "))
}
