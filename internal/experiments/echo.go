package experiments

import (
	"repro/internal/paradigm"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/vclock"
	"repro/internal/workload"
)

// FigEchoLatency (F12) measures the number the paper says matters most:
// "the time between when a key is pressed and the corresponding glyph is
// echoed to a window is very important to the usability of these
// systems." It quantifies what Cedar's priority structure buys — "higher
// priority is used for threads associated with devices or aspects of the
// user interface, keeping the system responsive for interactive work" —
// by typing at 4 keys/s while a document formats in the background, under
// the shipped priority structure and under a flattened one.
func FigEchoLatency(cfg Config) *Report {
	run := func(load, flat bool, quantum vclock.Duration) *stats.LatencyRecorder {
		w := sim.NewWorld(sim.Config{Seed: cfg.seed(), SystemDaemon: true, Quantum: quantum, Hooks: cfg.Hooks})
		defer w.Shutdown()
		reg := paradigm.NewRegistry()
		p := workload.DefaultCedarParams()
		if flat {
			// The ablation: no privileged input path, and the batch task
			// competes at the default priority.
			p.NotifierPriority = sim.PriorityNormal
			p.FormatterPriority = sim.PriorityNormal
		}
		c := workload.NewCedar(w, reg, p)
		c.StartKeyboard(4.0)
		if load {
			c.StartFormatter()
		}
		w.Run(vclock.Time(0).Add(cfg.window()))
		return &c.EchoLatency
	}

	ms := func(n int64) vclock.Duration { return vclock.Duration(n) * vclock.Millisecond }
	t := stats.NewTable("Keystroke-to-echo latency while typing at 4 keys/s",
		"Configuration", "p50", "p95", "max")
	rows := []struct {
		name       string
		load, flat bool
		quantum    vclock.Duration
	}{
		{"Cedar priorities, 50ms quantum, idle", false, false, ms(50)},
		{"Cedar priorities, 50ms quantum, formatting", true, false, ms(50)},
		{"Cedar priorities, 20ms quantum, idle", false, false, ms(20)},
		{"Cedar priorities, 20ms quantum, formatting", true, false, ms(20)},
		{"flat priorities, 50ms quantum, formatting", true, true, ms(50)},
	}
	for _, row := range rows {
		r := run(row.load, row.flat, row.quantum)
		t.AddRowf("%s", row.name,
			"%s", r.Percentile(0.5).String(),
			"%s", r.Percentile(0.95).String(),
			"%s", r.Max().String())
	}
	return &Report{ID: "F12", Title: "Keystroke echo latency, priorities, and the quantum",
		Tables: []*stats.Table{t},
		Notes: []string{
			"two of the paper's claims, quantified: (1) priorities protect responsiveness — flatten them and",
			"background formatting queues its 70ms computes ahead of every echo; (2) §6.3's complaint that",
			"PCR's '50 millisecond quantum is a little bit too long for snappy keyboard echoing' — the tail",
			"latency is quantum-bound (an echo can queue a full slice behind equal-priority background work),",
			"and a 20ms quantum cuts it proportionally.",
		}}
}
