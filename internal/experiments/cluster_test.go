package experiments

import (
	"runtime"
	"strings"
	"testing"
)

// Every C-series experiment must produce its sweep table, attach the
// machine-readable summaries, and render identically when re-run — the
// same determinism bar the rest of the registry holds.
func TestCSeriesShapes(t *testing.T) {
	cfg := Config{Quick: true}
	for _, e := range CSeries() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			rep := e.Run(cfg)
			if rep.ID != e.ID {
				t.Fatalf("report ID %q, want %q", rep.ID, e.ID)
			}
			if len(rep.Tables) == 0 || rep.Tables[0].Rows() < 2 {
				t.Fatalf("%s: missing sweep table", e.ID)
			}
			if len(rep.Cluster) != rep.Tables[0].Rows() {
				t.Fatalf("%s: %d summaries for %d sweep rows", e.ID, len(rep.Cluster), rep.Tables[0].Rows())
			}
			for _, s := range rep.Cluster {
				if s.Completed == 0 {
					t.Fatalf("%s: sweep point %q/%q/%d completed nothing", e.ID, s.Router, s.Admission, s.Instances)
				}
				if s.Admitted+s.Rejected != s.Offered {
					t.Fatalf("%s: admission accounting broken: %d+%d != %d", e.ID, s.Admitted, s.Rejected, s.Offered)
				}
			}
			if again := e.Run(cfg); again.String() != rep.String() {
				t.Fatalf("%s: nondeterministic report", e.ID)
			}
		})
	}
}

// TestCSeriesShardDeterminism renders every C experiment at shard
// counts {1, 4, GOMAXPROCS} and requires byte-identical output. The
// default `make bench` path now passes GOMAXPROCS here, so this is the
// invariant that keeps the bench artifact comparable across machines.
func TestCSeriesShardDeterminism(t *testing.T) {
	for _, e := range CSeries() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			base := renderD(t, e.Run(Config{Quick: true, Shards: 1}))
			for _, sh := range []int{4, runtime.GOMAXPROCS(0)} {
				if got := renderD(t, e.Run(Config{Quick: true, Shards: sh})); got != base {
					t.Errorf("%s: shards=%d diverged from serial", e.ID, sh)
				}
			}
		})
	}
}

// C1 sweeps at least {1,4,16} instances and aggregate throughput grows
// with the fleet (the acceptance criterion's sweep floor).
func TestCSeriesScalingSweep(t *testing.T) {
	rep := ClusterScaling(Config{Quick: true})
	if len(rep.Cluster) < 3 {
		t.Fatalf("C1 swept %d points, want >= 3", len(rep.Cluster))
	}
	sizes := map[int]bool{}
	for _, s := range rep.Cluster {
		sizes[s.Instances] = true
	}
	for _, n := range []int{1, 4, 16} {
		if !sizes[n] {
			t.Fatalf("C1 sweep missing %d instances (got %v)", n, sizes)
		}
	}
	one, sixteen := rep.Cluster[0], rep.Cluster[len(rep.Cluster)-1]
	if sixteen.Throughput < 8*one.Throughput {
		t.Fatalf("weak scaling collapsed: 1-instance %.0f req/s, 16-instance %.0f req/s",
			one.Throughput, sixteen.Throughput)
	}
}

// C3's token bucket must actually reject under overload, and its report
// must surface the rejection count.
func TestCSeriesAdmissionRejects(t *testing.T) {
	rep := ClusterAdmission(Config{Quick: true})
	always, bucket := rep.Cluster[0], rep.Cluster[1]
	if always.Rejected != 0 {
		t.Fatalf("always-admit rejected %d", always.Rejected)
	}
	if bucket.Rejected == 0 {
		t.Fatal("token bucket rejected nothing under 2x overload")
	}
	if bucket.P99Us >= always.P99Us {
		t.Fatalf("admission control did not protect the tail: bucket p99 %dus vs always %dus",
			bucket.P99Us, always.P99Us)
	}
	if !strings.Contains(rep.String(), "token-bucket") {
		t.Fatal("report does not name the token-bucket row")
	}
}
