package experiments

import (
	"repro/internal/paradigm"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/vclock"
	"repro/internal/workload"
)

// FigMultiprocessor (F11) is a postscript the paper deliberately left out
// of scope ("this paper emphasizes the role of threads in program
// structuring rather than how they are used to exploit multiprocessors")
// but repeatedly gestures at: the systems did run on multiprocessors, the
// concurrency-exploiter paradigm existed but was rare, and §5.1 calls the
// lack of guidance for exploiting them in interactive systems a research
// gap. Two measurements:
//
//  1. the concurrency-exploiter paradigm's actual scaling on 1/2/4
//     simulated processors, and
//  2. what extra processors do to the Cedar keyboard benchmark — almost
//     nothing for latency-bound interactive work, but monitor contention
//     becomes real because threads finally overlap.
func FigMultiprocessor(cfg Config) *Report {
	// (1) ParallelDo scaling.
	t1 := stats.NewTable("Concurrency exploiter (§4.7): 4 workers x 100ms on N CPUs",
		"CPUs", "wall time", "speedup")
	var base vclock.Duration
	for _, cpus := range []int{1, 2, 4} {
		w := sim.NewWorld(sim.Config{CPUs: cpus, Seed: cfg.seed(), Hooks: cfg.Hooks})
		reg := paradigm.NewRegistry()
		var elapsed vclock.Duration
		w.Spawn("exploiter", sim.PriorityNormal, func(t *sim.Thread) any {
			start := t.Now()
			paradigm.ParallelDo(reg, t, "worker", 4, func(c *sim.Thread, i int) {
				c.Compute(100 * vclock.Millisecond)
			})
			elapsed = t.Now().Sub(start)
			return nil
		})
		w.Run(vclock.Time(10 * vclock.Second))
		w.Shutdown()
		if cpus == 1 {
			base = elapsed
		}
		t1.AddRowf("%d", cpus, "%s", elapsed.String(), "%.1fx", float64(base)/float64(elapsed))
	}

	// (2) The keyboard benchmark with extra processors.
	t2 := stats.NewTable("Cedar keyboard benchmark on 1 vs 2 CPUs",
		"CPUs", "switches/sec", "ML-enters/sec", "%entries contended", "%waits timing out")
	rc := workload.DefaultRunConfig()
	rc.Window = cfg.window()
	rc.Seed = cfg.seed()
	rc.Hooks = cfg.Hooks
	b, _ := workload.FindBenchmark("Cedar", "Keyboard input")
	for _, cpus := range []int{1, 2} {
		rc.CPUs = cpus
		a := workload.Run(b, rc).Analysis
		t2.AddRowf("%d", cpus,
			"%.0f", a.SwitchesPerSec(),
			"%.0f", a.MLEntersPerSec(),
			"%.3f%%", 100*a.ContentionFraction(),
			"%.0f%%", 100*a.TimeoutFraction())
	}
	return &Report{ID: "F11", Title: "Multiprocessors (out of the paper's scope, measured anyway)",
		Tables: []*stats.Table{t1, t2},
		Notes: []string{
			"the exploiter paradigm scales as Birrell promised; the interactive benchmark barely changes:",
			"its threads are latency- and event-bound, not CPU-bound, and even with genuine overlap the",
			"contention stays negligible because entries spread over hundreds of distinct library monitors —",
			"the systems' serialization is structural (queues and pipelines), not lock-based, which is the",
			"§4.6 design point.",
		}}
}
