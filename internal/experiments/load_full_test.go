//go:build !race

package experiments

import "testing"

// The full-scale W1 acceptance point: one hundred thousand requests
// through ten thousand live threads, deterministically. Excluded under
// the race detector, whose channel instrumentation makes the 10k-thread
// population an order of magnitude slower; the quick-scale tests cover
// the same code paths under -race.
func TestW1FullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale W1 population skipped in -short")
	}
	a := LoadEcho(Config{})
	l := a.Load
	if l.Threads < 10_000 {
		t.Fatalf("threads = %d, want >= 10000", l.Threads)
	}
	if l.Completed < 100_000 || l.Completed != l.Offered {
		t.Fatalf("offered=%d completed=%d, want >= 100k fully served", l.Offered, l.Completed)
	}
	if l.P50US <= 0 || l.MaxUS < l.P99US {
		t.Fatalf("bad percentiles: %+v", l)
	}
	b := LoadEcho(Config{})
	if a.String() != b.String() {
		t.Fatalf("full-scale W1 is nondeterministic:\n%s\n---\n%s", a.String(), b.String())
	}
	if *a.Load != *b.Load {
		t.Fatalf("load summaries diverged: %+v vs %+v", a.Load, b.Load)
	}
}
