package experiments

import (
	"fmt"

	"repro/internal/paradigm"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/vclock"
	"repro/internal/workload"
)

// runAll executes the twelve benchmarks of Tables 1–3.
func runAll(cfg Config) []*workload.Result {
	rc := workload.DefaultRunConfig()
	rc.Window = cfg.window()
	rc.Seed = cfg.seed()
	rc.Hooks = cfg.Hooks
	var out []*workload.Result
	for _, b := range workload.AllBenchmarks() {
		out = append(out, workload.Run(b, rc))
	}
	return out
}

func label(b workload.Benchmark) string {
	if b.System == "GVX" && b.Name != "Idle GVX" {
		return b.Name + " (GVX)"
	}
	return b.Name
}

// Table1 regenerates the paper's Table 1: forks/sec and thread
// switches/sec for the eight Cedar and four GVX benchmarks.
func Table1(cfg Config) *Report {
	t := stats.NewTable("Table 1: Forking and thread-switching rates",
		"Benchmark", "Forks/sec", "(paper)", "Switches/sec", "(paper)")
	for _, r := range runAll(cfg) {
		a := r.Analysis
		t.AddRowf("%s", label(r.Benchmark),
			"%.1f", a.ForksPerSec(), "%.1f", r.Benchmark.PaperForks,
			"%.0f", a.SwitchesPerSec(), "%.0f", r.Benchmark.PaperSwitches)
	}
	return &Report{ID: "T1", Title: "Forking and thread-switching rates", Tables: []*stats.Table{t},
		Notes: []string{
			"shape checks: keyboard forks ~1/keystroke; GVX forks 0 for all UI activity;",
			"compute tasks (make, compile) fork ~3x less than idle; Cedar switches several times GVX's.",
		}}
}

// Table2 regenerates Table 2: waits/sec, per-cent timeouts, and monitor
// entry rates.
func Table2(cfg Config) *Report {
	t := stats.NewTable("Table 2: Wait-CV and monitor entry rates",
		"Benchmark", "Waits/sec", "(paper)", "%timeouts", "(paper)", "ML-enters/sec", "(paper)")
	var notes []string
	for _, r := range runAll(cfg) {
		a := r.Analysis
		t.AddRowf("%s", label(r.Benchmark),
			"%.0f", a.WaitsPerSec(), "%.0f", r.Benchmark.PaperWaits,
			"%.0f%%", 100*a.TimeoutFraction(), "%.0f%%", 100*r.Benchmark.PaperTimeout,
			"%.0f", a.MLEntersPerSec(), "%.0f", r.Benchmark.PaperMLEnters)
		if r.Benchmark.Name == "Window scrolling" {
			notes = append(notes, fmt.Sprintf("%s contention: %.2f%% of entries (paper: GVX 0.4%%, Cedar 0.01-0.1%%)",
				label(r.Benchmark), 100*a.ContentionFraction()))
		}
	}
	return &Report{ID: "T2", Title: "Wait-CV and monitor entry rates", Tables: []*stats.Table{t}, Notes: notes}
}

// Table3 regenerates Table 3: the number of distinct CVs and monitor
// locks used during each benchmark.
func Table3(cfg Config) *Report {
	t := stats.NewTable("Table 3: Number of different CVs and monitor locks used",
		"Benchmark", "#CVs", "(paper)", "#MLs", "(paper)")
	for _, r := range runAll(cfg) {
		a := r.Analysis
		t.AddRowf("%s", label(r.Benchmark),
			"%d", a.DistinctCVs, "%d", r.Benchmark.PaperCVs,
			"%d", a.DistinctMLs, "%d", r.Benchmark.PaperMLs)
	}
	return &Report{ID: "T3", Title: "Number of different CVs and monitor locks", Tables: []*stats.Table{t},
		Notes: []string{"shape checks: compile visits by far the widest monitor set; GVX uses ~5 CVs and ~50 MLs total."}}
}

// paperTable4 holds the paper's static counts (Cedar, GVX) per kind.
var paperTable4 = map[paradigm.Kind][2]int{
	paradigm.KindDeferWork:          {108, 77},
	paradigm.KindGeneralPump:        {48, 33},
	paradigm.KindSlackProcess:       {7, 2},
	paradigm.KindSleeper:            {67, 15},
	paradigm.KindOneShot:            {25, 11},
	paradigm.KindDeadlockAvoid:      {35, 6},
	paradigm.KindTaskRejuvenate:     {11, 0},
	paradigm.KindSerializer:         {5, 7},
	paradigm.KindEncapsulatedFork:   {14, 5},
	paradigm.KindConcurrencyExploit: {3, 0},
	paradigm.KindUnknown:            {25, 78},
}

// Table4 regenerates Table 4: the static census of paradigm use. The
// registries count distinct code sites exercised in our Cedar and GVX
// models (the paper's method applied to our codebase — obviously far
// fewer than a 2.5 MLoC corpus); cmd/paradigmscan additionally applies
// the authors' grep-the-sources method to any Go tree.
func Table4(cfg Config) *Report {
	census := func(system string) *paradigm.Registry {
		w := sim.NewWorld(sim.Config{Seed: cfg.seed(), SystemDaemon: true, Hooks: cfg.Hooks})
		defer w.Shutdown()
		reg := paradigm.NewRegistry()
		if system == "Cedar" {
			c := workload.NewCedar(w, reg, workload.DefaultCedarParams())
			// Exercise every activity so all code sites register.
			c.StartKeyboard(4)
			c.StartMouse(30)
			c.StartScrolling(1)
			c.StartFormatter()
			c.StartPreviewer()
			c.StartMake()
			c.StartCompile()
		} else {
			g := workload.NewGVX(w, reg, workload.DefaultGVXParams())
			g.StartKeyboard(4)
			g.StartMouse(30)
			g.StartScrolling(1)
		}
		w.Run(vclock.Time(5 * vclock.Second))
		return reg
	}
	cedar := census("Cedar")
	gvx := census("GVX")

	t := stats.NewTable("Table 4: Static paradigm counts (code sites in our models vs the paper's 2.5 MLoC corpus)",
		"Paradigm", "Cedar", "(paper)", "GVX", "(paper)")
	for k := paradigm.Kind(0); k < paradigm.NumKinds; k++ {
		p := paperTable4[k]
		t.AddRowf("%s", k.String(), "%d", cedar.Count(k), "%d", p[0], "%d", gvx.Count(k), "%d", p[1])
	}
	t.AddRowf("%s", "TOTAL", "%d", cedar.Total(), "%d", 348, "%d", gvx.Total(), "%d", 234)
	others := otherSystemsTable(cfg)
	return &Report{ID: "T4", Title: "Static paradigm counts", Tables: []*stats.Table{t, others},
		Notes: []string{
			"absolute counts reflect our model's size, not Xerox's corpus; the reproduced shape is the ordering:",
			"defer work is the most common use, concurrency exploiters are near-absent, GVX lacks task rejuvenation",
			"and slack processes almost entirely, and GVX's census is smaller than Cedar's across the board.",
			"run cmd/paradigmscan to apply the same census to any Go source tree. The second table",
			"instantiates §4.9's deduction about Pilot ('almost all sleepers'), Violet ('sleepers,",
			"one-shots and work deferral') and Gateway ('sleepers and pumps').",
		}}
}
