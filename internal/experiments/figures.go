package experiments

import (
	"fmt"

	"repro/internal/monitor"
	"repro/internal/paradigm"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vclock"
	"repro/internal/workload"
	"repro/internal/xwin"
)

func ms(n int64) vclock.Duration { return vclock.Duration(n) * vclock.Millisecond }

// FigExecIntervals reproduces §3's execution-interval analysis: a peak of
// short (1–5 ms) intervals from eternal and transient threads, a second
// peak at the scheduling quantum, with the quantum-length intervals
// accounting for a large share of total execution time.
func FigExecIntervals(cfg Config) *Report {
	rc := workload.DefaultRunConfig()
	rc.Window = cfg.window()
	rc.Seed = cfg.seed()
	rc.Hooks = cfg.Hooks

	t := stats.NewTable("Execution intervals (between thread switches)",
		"Benchmark", "%intervals 0-5ms", "(paper)", "%exec time ~quantum", "(paper)", "peak")
	rows := []struct {
		system, name string
		paperShort   string
		paperQuantum string
	}{
		{"Cedar", "Idle Cedar", "~75%", "20-50%"},
		{"Cedar", "Keyboard input", "~75%", "20-50%"},
		{"GVX", "Idle GVX", "50-70%", "30-80%"},
		{"GVX", "Keyboard input", "50-70%", "30-80%"},
	}
	var notes []string
	for _, row := range rows {
		b, err := workload.FindBenchmark(row.system, row.name)
		if err != nil {
			continue
		}
		a := workload.Run(b, rc).Analysis
		short := a.Intervals.FractionCount(0, ms(5))
		long := a.Intervals.FractionTotal(ms(45), ms(55))
		peak := a.Intervals.PeakBucket()
		lo, hi, unbounded := a.Intervals.BucketRange(peak)
		peakLabel := fmt.Sprintf("%s-%s", lo, hi)
		if unbounded {
			peakLabel = lo.String() + "+"
		}
		t.AddRowf("%s", row.system+" "+row.name,
			"%.0f%%", 100*short, "%s", row.paperShort,
			"%.0f%%", 100*long, "%s", row.paperQuantum,
			"%s", peakLabel)
		if row.name == "Idle Cedar" {
			notes = append(notes, "idle Cedar interval histogram:\n"+a.Intervals.String())
		}
	}
	notes = append(notes,
		"the paper's second peak sits at ~45ms (quantum minus scheduler overhead); ours sits at 50-55ms",
		"because the switch cost is charged inside the incoming interval — same phenomenon, shifted bucket.")
	return &Report{ID: "F1", Title: "Execution-interval distributions", Tables: []*stats.Table{t}, Notes: notes}
}

// FigPriorities reproduces §3's priority observations: Cedar spreads its
// long-lived threads over levels 1–4 and never uses level 5; GVX
// concentrates nearly everything at level 3 and never uses level 7;
// level 6 is the SystemDaemon in both; interrupts are level 7 in Cedar
// and level 5 in GVX.
func FigPriorities(cfg Config) *Report {
	rc := workload.DefaultRunConfig()
	rc.Window = cfg.window()
	rc.Seed = cfg.seed()
	rc.Hooks = cfg.Hooks
	cedarB, _ := workload.FindBenchmark("Cedar", "Keyboard input")
	gvxB, _ := workload.FindBenchmark("GVX", "Keyboard input")
	cedar := workload.Run(cedarB, rc).Analysis
	gvx := workload.Run(gvxB, rc).Analysis

	t := stats.NewTable("CPU share by priority level (keyboard benchmarks)",
		"Priority", "Cedar", "GVX", "role")
	roles := map[int][2]string{
		1: {"background", "unused helpers"},
		2: {"background", "background helpers"},
		3: {"standard", "almost everything"},
		4: {"standard/default", "-"},
		5: {"UNUSED", "interrupt (Notifier)"},
		6: {"SystemDaemon+GC", "SystemDaemon"},
		7: {"interrupt (Notifier)", "UNUSED"},
	}
	for p := 1; p <= 7; p++ {
		t.AddRowf("%d", p,
			"%.1f%%", 100*cedar.CPUShareOfPriority(p),
			"%.1f%%", 100*gvx.CPUShareOfPriority(p),
			"%s", roles[p][0]+" / "+roles[p][1])
	}
	return &Report{ID: "F2", Title: "Priority usage", Tables: []*stats.Table{t},
		Notes: []string{"paper: each system leaves exactly one level unused — 5 in Cedar, 7 in GVX — and they disagree on where interrupts live."}}
}

// FigSlack reproduces §5.2: without YieldButNotToMe the high-priority
// buffer thread is rescheduled right back, no merging occurs, and the X
// server does far more work; with it "the user experiences about a
// three-fold performance improvement".
func FigSlack(cfg Config) *Report {
	dur := cfg.window() / 3
	t := stats.NewTable("The X-server slack process (buffer thread) by wait strategy",
		"Strategy", "imaging throughput", "flushes/sec", "requests/sec", "merge ratio", "mean latency")
	results := map[paradigm.WaitStrategy]xwin.PipelineResult{}
	for _, s := range []paradigm.WaitStrategy{paradigm.SlackNone, paradigm.SlackYield, paradigm.SlackYieldButNotToMe, paradigm.SlackSleep} {
		pc := xwin.DefaultPipelineConfig()
		pc.Strategy = s
		pc.Hooks = cfg.Hooks
		r := xwin.RunPipeline(pc, ms(50), cfg.seed(), dur)
		results[s] = r
		secs := dur.Seconds()
		t.AddRowf("%s", s.String(),
			"%.0f/s", float64(r.Produced)/secs,
			"%.1f", float64(r.Flushes)/secs,
			"%.0f", float64(r.Requests)/secs,
			"%.2f", r.MergeRatio,
			"%s", r.MeanLatency.String())
	}
	improvement := float64(results[paradigm.SlackYieldButNotToMe].Produced) /
		float64(results[paradigm.SlackYield].Produced)
	return &Report{ID: "F3", Title: "The X-server slack process", Tables: []*stats.Table{t},
		Notes: []string{fmt.Sprintf("YieldButNotToMe vs plain YIELD throughput improvement: %.1fx (paper: 'about a three-fold performance improvement')", improvement)}}
}

// FigQuantum reproduces §6.3: with YieldButNotToMe it is the scheduling
// quantum that clocks the sending of X requests — 1 s buffers for a
// second (bursty), 1 ms yields too briefly to merge, and ~20 ms would
// have made a timeout-based buffer thread viable.
func FigQuantum(cfg Config) *Report {
	dur := cfg.window() / 3
	t := stats.NewTable("YieldButNotToMe pipeline vs scheduling quantum",
		"Quantum", "flushes/sec", "merge ratio", "max paint gap", "mean latency")
	for _, q := range []vclock.Duration{ms(1), ms(20), ms(50), ms(1000)} {
		pc := xwin.DefaultPipelineConfig()
		pc.Hooks = cfg.Hooks
		r := xwin.RunPipeline(pc, q, cfg.seed(), dur)
		t.AddRowf("%s", q.String(),
			"%.1f", float64(r.Flushes)/dur.Seconds(),
			"%.2f", r.MergeRatio,
			"%s", r.MaxPaintGap.String(),
			"%s", r.MeanLatency.String())
	}

	// The §6.3 alternative: a sleeping buffer thread under different
	// timeout granularities.
	t2 := stats.NewTable("Sleep-strategy buffer thread vs timeout granularity (20ms slack requested)",
		"Granularity", "flushes/sec", "merge ratio", "mean latency")
	for _, g := range []vclock.Duration{ms(20), ms(50)} {
		w := sim.NewWorld(sim.Config{TimeoutGranularity: g, Seed: cfg.seed(), Hooks: cfg.Hooks})
		reg := paradigm.NewRegistry()
		srv := xwin.NewServer(w)
		pc := xwin.DefaultPipelineConfig()
		pc.Strategy = paradigm.SlackSleep
		pc.Slack = ms(20)
		p := xwin.StartPipeline(w, reg, srv, pc)
		w.Run(vclock.Time(0).Add(dur))
		t2.AddRowf("%s", g.String(),
			"%.1f", float64(srv.Flushes())/dur.Seconds(),
			"%.2f", p.MergeRatio(),
			"%s", srv.MeanLatency().String())
		w.Shutdown()
	}
	return &Report{ID: "F4", Title: "The effect of the time-slice quantum", Tables: []*stats.Table{t, t2},
		Notes: []string{
			"paper: 'it is the 50 millisecond quantum that is clocking the sending of the X requests';",
			"'if the quantum were 1 second ... very bursty screen painting'; 'if the quantum were 1 millisecond",
			"... back to the start of our problems'; 'if the scheduler quantum were 20 milliseconds, using a",
			"timeout instead of a yield in the buffer thread would work fine.'",
		}}
}

// FigSpurious reproduces §6.1: a higher-priority notifyee wakes while the
// notifier still holds the monitor, blocks immediately on the mutex, and
// wastes trips through the scheduler — eliminated by deferring the
// reschedule (not the notification) until monitor exit.
func FigSpurious(cfg Config) *Report {
	const rounds = 300
	run := func(deferFix bool) (contended int, switches int) {
		var buf trace.Buffer
		w := sim.NewWorld(sim.Config{Trace: &buf, Seed: cfg.seed(), Hooks: cfg.Hooks})
		defer w.Shutdown()
		opt := monitor.Options{DeferNotifyReschedule: deferFix}
		m := monitor.NewWithOptions(w, "mu", opt)
		cv := m.NewCond("cv")
		items := 0
		w.Spawn("hi-consumer", sim.PriorityHigh, func(t *sim.Thread) any {
			for done := 0; done < rounds; done++ {
				m.Enter(t)
				for items == 0 {
					cv.Wait(t)
				}
				items--
				m.Exit(t)
			}
			w.Stop()
			return nil
		})
		w.Spawn("lo-producer", sim.PriorityLow, func(t *sim.Thread) any {
			for {
				t.Compute(200 * vclock.Microsecond)
				m.Enter(t)
				items++
				cv.Notify(t)
				t.Compute(100 * vclock.Microsecond) // work after NOTIFY, lock held
				m.Exit(t)
			}
		})
		w.Run(vclock.Time(vclock.Minute))
		for _, ev := range buf.Events {
			switch ev.Kind {
			case trace.KindMLEnter:
				if ev.Aux == 1 {
					contended++
				}
			case trace.KindSwitch:
				if ev.Thread != trace.NoThread {
					switches++
				}
			}
		}
		return contended, switches
	}
	nc, ns := run(false)
	fc, fs := run(true)
	t := stats.NewTable(fmt.Sprintf("Spurious lock conflicts over %d notifications (uniprocessor, hi-pri notifyee)", rounds),
		"NOTIFY implementation", "contended ML entries", "thread switches")
	t.AddRowf("%s", "wake at NOTIFY (naive)", "%d", nc, "%d", ns)
	t.AddRowf("%s", "defer reschedule to exit (PCR fix)", "%d", fc, "%d", fs)
	return &Report{ID: "F5", Title: "Spurious lock conflicts", Tables: []*stats.Table{t},
		Notes: []string{"paper: the fix 'prevents the problem both in the case of interpriority notifications and on multiprocessors'."}}
}

// FigInversion reproduces §6.2's stable priority inversion: a high
// priority thread waits on a lock held by a low-priority thread that a
// middle-priority CPU hog keeps off the processor — plus the two PCR
// workarounds (the SystemDaemon's random donations, and metalock cycle
// donation).
func FigInversion(cfg Config) *Report {
	inversion := func(daemon bool) vclock.Duration {
		w := sim.NewWorld(sim.Config{Seed: cfg.seed(), SystemDaemon: daemon, Hooks: cfg.Hooks})
		defer w.Shutdown()
		m := monitor.New(w, "resource")
		var acquired vclock.Time
		w.Spawn("lo-holder", sim.PriorityLow, func(t *sim.Thread) any {
			m.Enter(t)
			t.Compute(20 * vclock.Millisecond)
			m.Exit(t)
			return nil
		})
		w.At(vclock.Time(vclock.Millisecond), func() {
			w.Spawn("mid-hog", sim.PriorityNormal, func(t *sim.Thread) any {
				for {
					t.Compute(10 * vclock.Millisecond)
				}
			})
			w.Spawn("hi-waiter", sim.PriorityHigh, func(t *sim.Thread) any {
				m.Enter(t)
				acquired = t.Now()
				m.Exit(t)
				w.Stop()
				return nil
			})
		})
		w.Run(vclock.Time(vclock.Minute))
		if acquired == 0 {
			return vclock.Minute // never acquired within horizon
		}
		return acquired.Sub(vclock.Time(vclock.Millisecond))
	}

	metalock := func(donation bool) vclock.Duration {
		w := sim.NewWorld(sim.Config{Seed: cfg.seed(), Hooks: cfg.Hooks})
		defer w.Shutdown()
		opt := monitor.Options{MetalockHold: 200 * vclock.Microsecond, MetalockDonation: donation}
		m := monitor.NewWithOptions(w, "mu", opt)
		var acquired vclock.Time
		w.Spawn("lo", sim.PriorityLow, func(t *sim.Thread) any {
			m.Enter(t)
			t.Compute(vclock.Millisecond)
			m.Exit(t) // metalock held during the exit path
			return nil
		})
		// The contender arrives while lo is inside the Exit-path metalock
		// hold (switch-in 50µs + lock 1µs + entry metalock 200µs + 1ms
		// compute puts the exit hold at roughly [1.25ms, 1.45ms)).
		arrive := vclock.Time(1300 * vclock.Microsecond)
		w.At(arrive, func() {
			w.Spawn("hog", sim.PriorityNormal, func(t *sim.Thread) any {
				t.Compute(300 * vclock.Millisecond)
				return nil
			})
			w.Spawn("hi", sim.PriorityHigh, func(t *sim.Thread) any {
				m.Enter(t)
				acquired = t.Now()
				m.Exit(t)
				return nil
			})
		})
		w.Run(vclock.Time(vclock.Minute))
		return acquired.Sub(arrive)
	}

	t := stats.NewTable("Stable priority inversion: time for the high-priority thread to acquire the lock",
		"Scenario", "acquisition delay")
	t.AddRowf("%s", "strict priority, no workarounds", "%s", inversion(false).String())
	t.AddRowf("%s", "SystemDaemon random donation", "%s", inversion(true).String())
	t.AddRowf("%s", "metalock inversion, no donation", "%s", metalock(false).String())
	t.AddRowf("%s", "metalock inversion, cycle donation (PCR)", "%s", metalock(true).String())
	return &Report{ID: "F6", Title: "Stable priority inversion", Tables: []*stats.Table{t},
		Notes: []string{
			"paper: PCR donates cycles only for the per-monitor metalock ('It is not done for monitors themselves,",
			"where we don't know how to implement it efficiently'); the SystemDaemon 'ensures that all ready",
			"threads get some cpu resource, regardless of their priorities'.",
		}}
}

// FigXlib reproduces §5.6: the thread-safe-Xlib model versus Xl's
// dedicated reading thread.
func FigXlib(cfg Config) *Report {
	dur := cfg.window()
	t := stats.NewTable("Multi-threaded X client libraries (events every 100ms, steady paint output)",
		"Library", "events", "mean event latency", "flushes/sec", "empty flushes", "reqs/flush", "worst mutex delay")
	for _, k := range []xwin.ClientKind{xwin.ClientXlib, xwin.ClientXl} {
		r := xwin.RunClientComparison(k, ms(100), cfg.seed(), dur, cfg.Hooks)
		t.AddRowf("%s", r.Kind.String(),
			"%d", r.EventsGot,
			"%s", r.MeanEventLat.String(),
			"%.1f", float64(r.Flushes)/dur.Seconds(),
			"%d", r.EmptyFlushes,
			"%.1f", r.MeanBatch,
			"%s", r.MaxEnterDelay.String())
	}
	return &Report{ID: "F7", Title: "Multi-threaded Xlib vs Xl", Tables: []*stats.Table{t},
		Notes: []string{
			"paper: the library-mutex design forces short-timeout reads, causing 'an excessive number of output",
			"flushes, defeating the throughput gains of batching', and opens a priority-inversion window; the",
			"reading thread 'can block indefinitely' and client timeouts are 'handled perfectly by the condition",
			"variable timeout mechanism'.",
		}}
}

// FigMistakes reproduces §5.3's two recurring bugs: IF-based WAITs that
// break when a third thread steals the condition, and timeouts introduced
// to compensate for missing NOTIFYs — the system "apparently works
// correctly but slowly".
func FigMistakes(cfg Config) *Report {
	// (a) IF vs WHILE under a condition thief: a high-priority thread
	// queues on the mutex between the NOTIFY and the waiter's
	// reacquisition and steals the item. The WHILE waiter re-waits and
	// picks up the second (late) item; the IF waiter finds the queue
	// empty — the crash the paper kept finding.
	waitStyle := func(useWhile, hoare bool, seed int64) (ok bool) {
		w := sim.NewWorld(sim.Config{Seed: seed, Hooks: cfg.Hooks})
		defer w.Shutdown()
		m := monitor.NewWithOptions(w, "queue", monitor.Options{HoareSignal: hoare})
		nonEmpty := m.NewCond("non-empty")
		var queue []int
		w.Spawn("waiter", sim.PriorityNormal, func(t *sim.Thread) any {
			m.Enter(t)
			defer m.Exit(t)
			if useWhile {
				for len(queue) == 0 {
					nonEmpty.Wait(t)
				}
			} else if len(queue) == 0 {
				nonEmpty.Wait(t)
			}
			if len(queue) == 0 {
				return nil // would have crashed; report failure
			}
			queue = queue[1:]
			ok = true
			return nil
		})
		w.At(vclock.Time(5*vclock.Millisecond), func() {
			w.Spawn("producer", sim.PriorityNormal, func(t *sim.Thread) any {
				m.Enter(t)
				queue = append(queue, 1)
				nonEmpty.Notify(t)
				t.Compute(2 * vclock.Millisecond) // hold the lock past the notify
				m.Exit(t)
				// A second item much later so WHILE-waiters complete.
				t.Sleep(500 * vclock.Millisecond)
				m.Enter(t)
				queue = append(queue, 2)
				nonEmpty.Notify(t)
				m.Exit(t)
				return nil
			})
		})
		w.At(vclock.Time(6*vclock.Millisecond), func() {
			w.Spawn("thief", sim.PriorityHigh, func(t *sim.Thread) any {
				m.Enter(t)
				if len(queue) > 0 {
					queue = queue[1:]
				}
				m.Exit(t)
				return nil
			})
		})
		w.Run(vclock.Time(2 * vclock.Second))
		return ok
	}
	ifOK, whileOK, hoareOK := 0, 0, 0
	const trials = 20
	for i := int64(0); i < trials; i++ {
		if waitStyle(false, false, cfg.seed()+i) {
			ifOK++
		}
		if waitStyle(true, false, cfg.seed()+i) {
			whileOK++
		}
		if waitStyle(false, true, cfg.seed()+i) {
			hoareOK++
		}
	}
	t1 := stats.NewTable(fmt.Sprintf("WAIT in IF vs WHILE with a condition thief (%d trials)", trials),
		"Style", "correct completions")
	t1.AddRowf("%s", "Mesa, IF NOT cond THEN WAIT (§5.3 bug)", "%d", ifOK)
	t1.AddRowf("%s", "Mesa, WHILE NOT cond DO WAIT (the law)", "%d", whileOK)
	t1.AddRowf("%s", "Hoare monitors, IF-wait ('appropriate')", "%d", hoareOK)

	// (b) A missing NOTIFY masked by a CV timeout: the consumer still
	// drains the queue, one 50 ms timeout at a time.
	missingNotify := func(notify bool) vclock.Duration {
		w := sim.NewWorld(sim.Config{Seed: cfg.seed(), Hooks: cfg.Hooks})
		defer w.Shutdown()
		m := monitor.New(w, "queue")
		cv := m.NewCondTimeout("non-empty", 50*vclock.Millisecond)
		const items = 20
		queued := 0
		var done vclock.Time
		w.Spawn("consumer", sim.PriorityNormal, func(t *sim.Thread) any {
			for got := 0; got < items; {
				m.Enter(t)
				for queued == 0 {
					cv.Wait(t)
				}
				queued--
				got++
				m.Exit(t)
				t.Compute(100 * vclock.Microsecond)
			}
			done = t.Now()
			w.Stop()
			return nil
		})
		w.Spawn("producer", sim.PriorityNormal, func(t *sim.Thread) any {
			for i := 0; i < items; i++ {
				t.Compute(300 * vclock.Microsecond)
				m.Enter(t)
				queued++
				if notify {
					cv.Notify(t)
				} // else: the bug — nobody tells the consumer
				m.Exit(t)
			}
			return nil
		})
		w.Run(vclock.Time(vclock.Minute))
		return vclock.Duration(done)
	}
	correct := missingNotify(true)
	buggy := missingNotify(false)
	t2 := stats.NewTable("Missing NOTIFY masked by a CV timeout (20 items)",
		"Implementation", "completion time")
	t2.AddRowf("%s", "NOTIFY present", "%s", correct.String())
	t2.AddRowf("%s", "NOTIFY missing, 50ms timeout saves it", "%s", buggy.String())
	return &Report{ID: "F8", Title: "Common mistakes", Tables: []*stats.Table{t1, t2},
		Notes: []string{
			"paper: 'the system can become timeout driven — it apparently works correctly but slowly. Debugging",
			"the poor performance is often harder than figuring out why a system has stopped.'",
		}}
}
