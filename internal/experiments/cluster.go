package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/stats"
	"repro/internal/vclock"
)

// The C-series runs the cluster layer: fleets of complete single-machine
// simulations behind routing and admission control, reporting aggregate
// SLOs. Where the W series scales one world up, the C series scales the
// number of worlds out — the ROADMAP's production-fleet framing. Like
// the W series it is opt-in only (threadstudy -cseries or -experiment
// C1..C3), so the default output and its goldens never see it.

// clusterTable renders one summary per row: the shared C-series shape.
func clusterTable(title string, sums []*cluster.Summary, label func(*cluster.Summary) string) *stats.Table {
	t := stats.NewTable(title,
		"Config", "Offered", "Rejected", "Completed", "Tput req/s", "p50", "p95", "p99")
	for _, s := range sums {
		t.AddRowf(
			"%s", label(s),
			"%d", s.Offered,
			"%d", s.Rejected,
			"%d", s.Completed,
			"%.0f", s.Throughput,
			"%s", vclock.Duration(s.P50Us),
			"%s", vclock.Duration(s.P95Us),
			"%s", vclock.Duration(s.P99Us),
		)
	}
	return t
}

// mustCluster runs one spec; C-series specs are static, so an error is
// a programming bug, not an operator input.
func mustCluster(spec cluster.Spec) *cluster.Summary {
	s, err := cluster.Run(spec)
	if err != nil {
		panic(err)
	}
	return s
}

// routedSpread returns max/min routed requests across instances, the
// imbalance figure for routing comparisons.
func routedSpread(s *cluster.Summary) (int64, int64) {
	min, max := s.PerInstance[0].Routed, s.PerInstance[0].Routed
	for _, in := range s.PerInstance {
		if in.Routed < min {
			min = in.Routed
		}
		if in.Routed > max {
			max = in.Routed
		}
	}
	return min, max
}

// ClusterScaling (C1) grows the fleet at fixed per-instance load — weak
// scaling over {1, 4, 16} instances of the w1-echo preset behind
// round-robin. Aggregate throughput should scale with the fleet while
// the percentiles hold, because each instance sees the same local rate.
func ClusterScaling(cfg Config) *Report {
	perInstReq := int64(2000)
	if cfg.Quick {
		perInstReq = 400
	}
	var sums []*cluster.Summary
	for _, n := range []int{1, 4, 16} {
		sums = append(sums, mustCluster(cluster.Spec{
			Preset:    "w1-echo",
			Instances: n,
			Sessions:  64,
			Router:    cluster.RouteRoundRobin,
			Seed:      cfg.seed(),
			Shards:    cfg.Shards,
			Requests:  int64(n) * perInstReq,
			Rate:      float64(n) * 4000,
			Service:   100 * vclock.Microsecond,
			Hooks:     cfg.Hooks,
		}))
	}
	return &Report{ID: "C1", Title: "Fleet weak scaling: instances x fixed per-instance load",
		Tables: []*stats.Table{clusterTable(
			"w1-echo fleet, round-robin, 4000 req/s and 64 sessions per instance",
			sums, func(s *cluster.Summary) string {
				return fmt.Sprintf("%d instance(s)", s.Instances)
			})},
		Notes: []string{
			"weak scaling: offered load grows with the fleet, so aggregate throughput should track instance count",
			"while p50/p99 stay near the single-instance baseline — each world is an independent 1993 machine;",
			"the cluster adds routing, not contention. Divergence here means the driver, not the fleet, is the bottleneck.",
		},
		Cluster: sums}
}

// ClusterRouting (C2) compares routing policies on one fleet under a
// hot-user skew and a heavy service tail — the regime where policy
// choice is visible: blind rotation spreads the hot users' bursts,
// affinity concentrates them, least-loaded steers around the instances
// digesting heavy requests.
func ClusterRouting(cfg Config) *Report {
	requests := int64(16_000)
	if cfg.Quick {
		requests = 4000
	}
	base := cluster.Spec{
		Preset:        "w1-echo",
		Instances:     8,
		Sessions:      32,
		Seed:          cfg.seed(),
		Shards:        cfg.Shards,
		Requests:      requests,
		Rate:          24_000,
		Service:       50 * vclock.Microsecond,
		Users:         256,
		HotUsers:      3,
		HotFraction:   0.4,
		HeavyFraction: 0.05,
		HeavyFactor:   40,
		Hooks:         cfg.Hooks,
	}
	var sums []*cluster.Summary
	for _, r := range cluster.RouterNames() {
		spec := base
		spec.Router = r
		sums = append(sums, mustCluster(spec))
	}
	t := clusterTable(
		"8 w1-echo instances, 40% of load from 3 hot users, 5% of requests 40x heavier",
		sums, func(s *cluster.Summary) string { return s.Router })
	imb := stats.NewTable("Routing imbalance (requests routed per instance)",
		"Policy", "Min", "Max")
	for _, s := range sums {
		min, max := routedSpread(s)
		imb.AddRowf("%s", s.Router, "%d", min, "%d", max)
	}
	return &Report{ID: "C2", Title: "Routing policies under skew and heavy tails",
		Tables: []*stats.Table{t, imb},
		Notes: []string{
			"round-robin ignores both identity and load; affinity pins users (hot users pile onto their home",
			"instances — compare the imbalance table); least-loaded reads the fleet's queue depths at each",
			"arrival and pays for that knowledge with a per-arrival advance barrier in the driver.",
		},
		Cluster: sums}
}

// ClusterAdmission (C3) offers the cedar-preset fleet ~2x its capacity
// and compares always-admit with a token bucket sized at ~75% of
// capacity. The bucket trades completed requests for tail latency:
// rejected work never queues, so p99 collapses from queueing-dominated
// to service-dominated.
func ClusterAdmission(cfg Config) *Report {
	requests := int64(24_000)
	if cfg.Quick {
		requests = 6000
	}
	base := cluster.Spec{
		Preset:    "cedar",
		Instances: 4,
		Sessions:  16,
		Router:    cluster.RouteRoundRobin,
		Seed:      cfg.seed(),
		Shards:    cfg.Shards,
		Requests:  requests,
		Rate:      16_000,
		Service:   500 * vclock.Microsecond,
		Hooks:     cfg.Hooks,
	}
	always := base
	always.Admission = cluster.AdmitAlways
	bucket := base
	bucket.Admission = cluster.AdmitTokenBucket
	bucket.TokenRate = 6000
	bucket.TokenBurst = 50
	sums := []*cluster.Summary{mustCluster(always), mustCluster(bucket)}
	return &Report{ID: "C3", Title: "Admission control under overload: always-admit vs token-bucket",
		Tables: []*stats.Table{clusterTable(
			"4 cedar instances (paper-era background running), offered ~2x capacity",
			sums, func(s *cluster.Summary) string { return s.Admission })},
		Notes: []string{
			"each instance runs Idle Cedar's desktop population under the routed sessions, so fleet requests",
			"compete with 1993-era background work; always-admit queues the overload and the percentiles price",
			"the backlog, while the token bucket rejects at the door and keeps the admitted tail near service time.",
		},
		Cluster: sums}
}

// CSeries returns the cluster experiments, in presentation order. Like
// WSeries they are not part of All(): opt-in only, goldens untouched.
func CSeries() []Experiment {
	return []Experiment{
		{"C1", "Fleet weak scaling: instances x fixed per-instance load", ClusterScaling},
		{"C2", "Routing policies under skew and heavy tails", ClusterRouting},
		{"C3", "Admission control under overload: always-admit vs token-bucket", ClusterAdmission},
	}
}
