package experiments

import (

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/stats"
	"repro/internal/vclock"
)

// The D-series is the resilience study: fleets with injected instance
// faults (crashes, stalls, brownouts) under the cluster's client-side
// policy stack — health-aware failover, per-attempt timeouts, budgeted
// retries, tail hedging, and circuit breakers. Each experiment compares
// a protected fleet against an unprotected control AND against the
// same-seed fault-free baseline, so both the cost of the fault and the
// value of the mechanism are visible in one table. Like the W and C
// series it is opt-in only (threadstudy -dseries or -experiment D1..D4);
// the default output and its goldens never see it.
//
// Every spec pins Start explicitly, so the fault windows provably
// overlap the arrival window in both quick and full runs, whatever the
// session-park default would have chosen.

// dDur is shorthand for plan times in D-series specs.
func dDur(d vclock.Duration) fault.Dur { return fault.Dur{Duration: d} }

// dTable renders the graceful-degradation buckets, one summary per row.
func dTable(title string, sums []*cluster.Summary, labels []string) *stats.Table {
	t := stats.NewTable(title,
		"Config", "Goodput", "Degraded", "Shed", "Failed", "Rejected", "p99", "Faulted p99")
	for i, s := range sums {
		t.AddRowf(
			"%s", labels[i],
			"%d", s.Goodput,
			"%d", s.Degraded,
			"%d", s.Shed,
			"%d", s.Failed,
			"%d", s.Rejected,
			"%s", vclock.Duration(s.P99Us),
			"%s", vclock.Duration(dFaultedP99(s)),
		)
	}
	return t
}

// dFaultedP99 extracts the faulted-phase p99 (zero when the run had no
// faulted-phase successes — the baseline rows).
func dFaultedP99(s *cluster.Summary) int64 {
	if s.Resilience == nil {
		return 0
	}
	for _, p := range s.Resilience.Phases {
		if p.Phase == "faulted" {
			return p.P99Us
		}
	}
	return 0
}

// dMechTable renders the mechanism ledger for the same rows.
func dMechTable(sums []*cluster.Summary, labels []string) *stats.Table {
	t := stats.NewTable("Mechanism ledger",
		"Config", "Timeouts", "Retries", "Denied", "Hedges", "HedgeWins", "BrkOpens", "Ejections", "Recovery")
	for i, s := range sums {
		r := s.Resilience
		if r == nil {
			r = &cluster.ResilienceSummary{}
		}
		t.AddRowf(
			"%s", labels[i],
			"%d", r.Timeouts,
			"%d", r.Retries,
			"%d", r.RetriesDenied,
			"%d", r.Hedges,
			"%d", r.HedgeWins,
			"%d", r.BreakerOpens,
			"%d", r.Ejections,
			"%s", vclock.Duration(r.RecoveryUs),
		)
	}
	return t
}

// dRequests scales the offered load for quick mode.
func dRequests(cfg Config, full int64) int64 {
	if cfg.Quick {
		return full / 4
	}
	return full
}

// ClusterCrashFailover (D1) kills one of four instances mid-window
// (restarting it 30ms later) and compares three fleets: fault-free,
// faulted with retries but blind routing (no health monitor — every
// round-robin turn keeps dialing the corpse), and faulted with the
// health monitor ejecting and re-admitting the instance.
func ClusterCrashFailover(cfg Config) *Report {
	base := cluster.Spec{
		Preset:       "w1-echo",
		Instances:    4,
		Sessions:     16,
		Router:       cluster.RouteRoundRobin,
		Seed:         cfg.seed(),
		Requests:     dRequests(cfg, 6000),
		Rate:         20_000,
		Service:      100 * vclock.Microsecond,
		Start:        200 * vclock.Millisecond,
		Timeout:      10 * vclock.Millisecond,
		Retries:      2,
		RetryBackoff: 500 * vclock.Microsecond,
		Hooks:        cfg.Hooks,
		Shards:       cfg.Shards,
	}
	crash := &fault.Plan{CrashInstance: []fault.CrashInstance{
		{Instance: 1, At: dDur(220 * vclock.Millisecond), Restart: dDur(30 * vclock.Millisecond)},
	}}
	baseline := base // resilient path (Timeout set), no faults
	blind := base
	blind.Faults = crash
	failover := base
	failover.Faults = crash
	failover.ProbeEvery = 2 * vclock.Millisecond
	sums := []*cluster.Summary{mustCluster(baseline), mustCluster(blind), mustCluster(failover)}
	labels := []string{"fault-free", "crash, no failover", "crash + health failover"}
	return &Report{ID: "D1", Title: "Instance crash: health-aware failover vs blind retries",
		Tables: []*stats.Table{
			dTable("4 w1-echo instances, instance 1 down 220-250ms, rr routing", sums, labels),
			dMechTable(sums, labels),
		},
		Notes: []string{
			"without the monitor every fourth dispatch keeps hitting the dead instance and must burn a refusal",
			"plus a retry to land elsewhere; with probes the corpse is ejected after 3 failed probes, traffic",
			"re-homes along the ring, and re-admission is visible as the recovery time in the ledger.",
		},
		Cluster: sums}
}

// ClusterStallBreaker (D2) freezes one instance for 25ms — it admits
// requests but serves nothing, the paper's "the system seemed to stop"
// scaled to a machine — and compares bare per-attempt timeouts against
// breaker + hedging on top. Timeouts alone pay the full deadline before
// every escape; hedging duplicates the waiting request to a healthy
// instance at a p99-derived delay and the breaker stops new dispatches
// from queueing on the stalled machine at all.
func ClusterStallBreaker(cfg Config) *Report {
	base := cluster.Spec{
		Preset:       "w1-echo",
		Instances:    4,
		Sessions:     16,
		Router:       cluster.RouteRoundRobin,
		Seed:         cfg.seed(),
		Requests:     dRequests(cfg, 6000),
		Rate:         20_000,
		Service:      100 * vclock.Microsecond,
		Start:        200 * vclock.Millisecond,
		Timeout:      10 * vclock.Millisecond,
		Retries:      2,
		RetryBackoff: 500 * vclock.Microsecond,
		Hooks:        cfg.Hooks,
		Shards:       cfg.Shards,
	}
	stall := &fault.Plan{StallInstance: []fault.StallInstance{
		{Instance: 2, From: dDur(215 * vclock.Millisecond), Until: dDur(240 * vclock.Millisecond)},
	}}
	baseline := base
	bare := base
	bare.Faults = stall
	guarded := base
	guarded.Faults = stall
	guarded.BreakerAfter = 5
	guarded.BreakerOpenFor = 10 * vclock.Millisecond
	guarded.HedgeAfter = 2 * vclock.Millisecond
	sums := []*cluster.Summary{mustCluster(baseline), mustCluster(bare), mustCluster(guarded)}
	labels := []string{"fault-free", "stall, bare timeouts", "stall, breaker + hedge"}
	return &Report{ID: "D2", Title: "Stalled instance: circuit breaker + hedging vs bare timeouts",
		Tables: []*stats.Table{
			dTable("4 w1-echo instances, instance 2 frozen 215-240ms, rr routing", sums, labels),
			dMechTable(sums, labels),
		},
		Notes: []string{
			"a stalled instance is worse than a dead one: it accepts work and sits on it, so shallow probes and",
			"refusals never fire. Bare timeouts pay the whole 10ms deadline per trapped attempt; the hedge frees",
			"the waiting request after ~p99, and the opened breaker fast-fails dispatches to the frozen machine,",
			"which is why the faulted-phase p99 drops by several milliseconds.",
		},
		Cluster: sums}
}

// ClusterRetryStorm (D3) offers the fleet twice its capacity so
// deadlines blow and every timeout wants a retry — the classic
// self-amplifying storm — and compares an unmetered fleet against one
// holding retries to 10% of offered load.
func ClusterRetryStorm(cfg Config) *Report {
	base := cluster.Spec{
		Preset:       "w1-echo",
		Instances:    4,
		Sessions:     16,
		Router:       cluster.RouteRoundRobin,
		Seed:         cfg.seed(),
		Requests:     dRequests(cfg, 4000),
		Rate:         40_000, // ~2x the fleet's 100us-service capacity
		Service:      200 * vclock.Microsecond,
		Start:        200 * vclock.Millisecond,
		Timeout:      5 * vclock.Millisecond,
		Retries:      3,
		RetryBackoff: 250 * vclock.Microsecond,
		DegradedOver: 5 * vclock.Millisecond,
		Hooks:        cfg.Hooks,
		Shards:       cfg.Shards,
	}
	baseline := base
	baseline.Rate = 16_000 // the same fleet inside capacity: no storm to meter
	unmetered := base
	metered := base
	metered.RetryBudget = 0.1
	sums := []*cluster.Summary{mustCluster(baseline), mustCluster(unmetered), mustCluster(metered)}
	labels := []string{"in-capacity", "2x overload, no budget", "2x overload, 10% budget"}
	return &Report{ID: "D3", Title: "Retry storm under overload: unmetered vs 10% retry budget",
		Tables: []*stats.Table{
			dTable("4 w1-echo instances, 200us service, offered 2x capacity", sums, labels),
			dMechTable(sums, labels),
		},
		Notes: []string{
			"overload is not a fault any instance can see — every machine is merely busy. Unmetered clients",
			"answer each timeout with a retry, multiplying offered load exactly when capacity ran out; the",
			"budget caps fleet-wide retries at a fraction of arrivals, so the denied column absorbs the storm",
			"instead of the service queues.",
		},
		Cluster: sums}
}

// ClusterBrownout (D4) slows one instance 8x for a window — a brownout
// the shallow health probe cannot see, since the machine still answers
// — and runs the same degraded fleet under each routing policy. Only
// load-aware routing steers around sickness that doesn't look like
// death.
func ClusterBrownout(cfg Config) *Report {
	base := cluster.Spec{
		Preset:       "w1-echo",
		Instances:    4,
		Sessions:     16,
		Seed:         cfg.seed(),
		Requests:     dRequests(cfg, 6000),
		Rate:         20_000,
		Service:      100 * vclock.Microsecond,
		Users:        256,
		Start:        200 * vclock.Millisecond,
		ProbeEvery:   2 * vclock.Millisecond,
		DegradedOver: 2 * vclock.Millisecond,
		Hooks:        cfg.Hooks,
		Shards:       cfg.Shards,
	}
	brown := &fault.Plan{DegradeInstance: []fault.DegradeInstance{
		{Instance: 0, Factor: 8, From: dDur(215 * vclock.Millisecond), Until: dDur(245 * vclock.Millisecond)},
	}}
	var sums []*cluster.Summary
	var labels []string
	for _, r := range cluster.RouterNames() {
		spec := base
		spec.Router = r
		spec.Faults = brown
		sums = append(sums, mustCluster(spec))
		labels = append(labels, r)
	}
	// One fault-free reference under rr anchors the healthy numbers.
	ref := base
	ref.Router = cluster.RouteRoundRobin
	sums = append(sums, mustCluster(ref))
	labels = append(labels, "rr, fault-free")
	return &Report{ID: "D4", Title: "Brownout below the health probe: routing policy is the defense",
		Tables: []*stats.Table{
			dTable("4 w1-echo instances, instance 0 8x slower 215-245ms", sums, labels),
			dMechTable(sums, labels),
		},
		Notes: []string{
			"the ejections column stays zero in every row: the probe asks 'are you serving?' and the browned-out",
			"instance truthfully answers yes, slowly. Round-robin and affinity keep feeding it and accumulate",
			"degraded requests; least-loaded notices the swelling queue — the only signal a brownout emits —",
			"and routes around it without any failure detector at all.",
		},
		Cluster: sums}
}

// DSeries returns the resilience experiments, in presentation order.
// Not part of All(): opt-in only, goldens untouched.
func DSeries() []Experiment {
	return []Experiment{
		{"D1", "Instance crash: health-aware failover vs blind retries", ClusterCrashFailover},
		{"D2", "Stalled instance: circuit breaker + hedging vs bare timeouts", ClusterStallBreaker},
		{"D3", "Retry storm under overload: unmetered vs 10% retry budget", ClusterRetryStorm},
		{"D4", "Brownout below the health probe: routing policy is the defense", ClusterBrownout},
	}
}
