package experiments

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

// renderS canonicalizes an S-series report for byte comparison: every
// table's rendered text plus the per-policy summaries as JSON.
func renderS(t *testing.T, r *Report) string {
	t.Helper()
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", r.ID, r.Title)
	for _, tb := range r.Tables {
		b.WriteString(tb.String())
		b.WriteByte('\n')
	}
	raw, err := json.Marshal(r.Sched)
	if err != nil {
		t.Fatal(err)
	}
	b.Write(raw)
	return b.String()
}

// TestSSeriesShapes pins the series roster: IDs, registration through
// ByID, exclusion from All() (the golden default output) and from the
// bench sweep's comparable series.
func TestSSeriesShapes(t *testing.T) {
	ss := SSeries()
	wantIDs := []string{"S1", "S2", "S3", "S4"}
	if len(ss) != len(wantIDs) {
		t.Fatalf("SSeries has %d experiments, want %d", len(ss), len(wantIDs))
	}
	for i, e := range ss {
		if e.ID != wantIDs[i] {
			t.Errorf("SSeries[%d].ID = %q, want %q", i, e.ID, wantIDs[i])
		}
		if _, err := ByID(strings.ToLower(e.ID)); err != nil {
			t.Errorf("ByID(%q): %v", e.ID, err)
		}
	}
	for _, e := range All() {
		if strings.HasPrefix(e.ID, "S") {
			t.Errorf("S-series experiment %s leaked into All(): default output must not change", e.ID)
		}
	}
}

// TestSSeriesReportShape: every S experiment reports one summary per
// ladder policy, each with per-class p50/p99 + attainment, a fairness
// index in [0,1], and score equal to the minimum class attainment.
func TestSSeriesReportShape(t *testing.T) {
	for _, e := range SSeries() {
		rep := e.Run(Config{Quick: true})
		if rep.ID != e.ID {
			t.Errorf("%s: report ID %q", e.ID, rep.ID)
		}
		if len(rep.Sched) < 3 {
			t.Fatalf("%s: %d policy summaries, want >= 3", e.ID, len(rep.Sched))
		}
		if len(rep.Tables) != 2 {
			t.Errorf("%s: %d tables, want breakdown + summary", e.ID, len(rep.Tables))
		}
		for _, s := range rep.Sched {
			if len(s.Classes) == 0 {
				t.Fatalf("%s/%s: no class summaries", e.ID, s.Policy)
			}
			min := 1.0
			for _, cs := range s.Classes {
				if cs.Offered <= 0 || cs.Completed <= 0 {
					t.Errorf("%s/%s/%s: offered=%d completed=%d, want work done",
						e.ID, s.Policy, cs.Class, cs.Offered, cs.Completed)
				}
				if cs.P99US < cs.P50US || cs.P50US <= 0 {
					t.Errorf("%s/%s/%s: p50=%d p99=%d", e.ID, s.Policy, cs.Class, cs.P50US, cs.P99US)
				}
				if cs.Attainment < 0 || cs.Attainment > 1 {
					t.Errorf("%s/%s/%s: attainment %v", e.ID, s.Policy, cs.Class, cs.Attainment)
				}
				if cs.Attainment < min {
					min = cs.Attainment
				}
			}
			if s.Score != min {
				t.Errorf("%s/%s: score %v != min attainment %v", e.ID, s.Policy, s.Score, min)
			}
			if s.Fairness < 0 || s.Fairness > 1+1e-12 {
				t.Errorf("%s/%s: fairness %v", e.ID, s.Policy, s.Fairness)
			}
		}
	}
}

// findPolicy returns the summary whose spec starts with the given name.
func findPolicy(t *testing.T, rep *Report, name string) *SchedSummary {
	t.Helper()
	for _, s := range rep.Sched {
		if s.Policy == name || strings.HasPrefix(s.Policy, name+":") {
			return s
		}
	}
	t.Fatalf("%s: no %q summary", rep.ID, name)
	return nil
}

// TestS4HybridBeatsBothExtremes pins the PR's acceptance demonstration:
// on the S4 mixed load, the hybrid's min-attainment score beats both
// pure strict-priority (which sacrifices batch chunk latency) and pure
// round-robin (which sacrifices interactive latency) — with margin, so
// parameter drift shows up as a loud failure, not a coin flip.
func TestS4HybridBeatsBothExtremes(t *testing.T) {
	rep := SchedPromptness(Config{Quick: true})
	pcr := findPolicy(t, rep, "pcr-rr")
	rr := findPolicy(t, rep, "rr")
	hybrid := findPolicy(t, rep, "hybrid")
	if hybrid.Score < pcr.Score+0.05 {
		t.Errorf("hybrid score %.3f does not beat pcr-rr %.3f with margin", hybrid.Score, pcr.Score)
	}
	if hybrid.Score < rr.Score+0.05 {
		t.Errorf("hybrid score %.3f does not beat rr %.3f with margin", hybrid.Score, rr.Score)
	}
	// The mechanism, not just the scalar: strict priority's weak class is
	// the batch pool, round-robin's is interactive, and the hybrid holds
	// both classes above either loser.
	for _, cs := range pcr.Classes {
		if cs.Class == "interactive" && cs.Attainment < 0.9 {
			t.Errorf("pcr-rr interactive attainment %.3f, want the protected class near 1", cs.Attainment)
		}
	}
	for _, cs := range rr.Classes {
		if cs.Class == "batch" && cs.Attainment < 0.5 {
			t.Errorf("rr batch attainment %.3f, want the fair-shared class healthy", cs.Attainment)
		}
	}
}

// TestS2EDFBeatsDeadlineBlind and TestS3FeedbackBeatsFIFO pin the other
// two comparison experiments' directions.
func TestS2EDFBeatsDeadlineBlind(t *testing.T) {
	rep := SchedDeadlines(Config{Quick: true})
	if edf, pcr := findPolicy(t, rep, "edf"), findPolicy(t, rep, "pcr-rr"); edf.Score < pcr.Score+0.05 {
		t.Errorf("edf score %.3f does not beat pcr-rr %.3f with margin", edf.Score, pcr.Score)
	}
}

func TestS3FeedbackBeatsFIFO(t *testing.T) {
	rep := SchedServiceAware(Config{Quick: true})
	pcr := findPolicy(t, rep, "pcr-rr")
	for _, name := range []string{"sjf", "mlfq"} {
		if s := findPolicy(t, rep, name); s.Score < pcr.Score+0.05 {
			t.Errorf("%s score %.3f does not beat pcr-rr %.3f with margin", name, s.Score, pcr.Score)
		}
	}
}

// TestSSeriesDeterministic: rerunning an S experiment — same config, or
// a config differing only in Shards (which the S-series worlds never
// consult) — reproduces the rendered tables and JSON summaries byte for
// byte. Run under -race this also shakes out any shared mutable state
// between the per-policy worlds.
func TestSSeriesDeterministic(t *testing.T) {
	for _, e := range SSeries() {
		base := renderS(t, e.Run(Config{Quick: true}))
		for _, cfg := range []Config{{Quick: true}, {Quick: true, Shards: 4}} {
			if got := renderS(t, e.Run(cfg)); got != base {
				t.Errorf("%s: rerun with %+v diverged:\n%s\n--- vs ---\n%s", e.ID, cfg, got, base)
			}
		}
	}
}
