package experiments

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"repro/internal/cluster"
)

// renderD canonicalizes a D-series report for byte comparison: every
// table's rendered text plus the full cluster summaries as JSON.
func renderD(t *testing.T, r *Report) string {
	t.Helper()
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", r.ID, r.Title)
	for _, tb := range r.Tables {
		b.WriteString(tb.String())
		b.WriteByte('\n')
	}
	raw, err := json.Marshal(r.Cluster)
	if err != nil {
		t.Fatal(err)
	}
	b.Write(raw)
	return b.String()
}

func dInvariant(t *testing.T, r *Report) {
	t.Helper()
	for i, s := range r.Cluster {
		if got := s.Rejected + s.Shed + s.Failed + s.Degraded + s.Goodput; got != s.Offered {
			t.Errorf("%s row %d: rejected %d + shed %d + failed %d + degraded %d + goodput %d = %d != offered %d",
				r.ID, i, s.Rejected, s.Shed, s.Failed, s.Degraded, s.Goodput, got, s.Offered)
		}
	}
}

// TestDSeriesShapes pins the series roster: IDs, registration through
// ByID, exclusion from All(), and that every report carries its fleet
// summaries for the bench artifact.
func TestDSeriesShapes(t *testing.T) {
	ds := DSeries()
	wantIDs := []string{"D1", "D2", "D3", "D4"}
	if len(ds) != len(wantIDs) {
		t.Fatalf("DSeries has %d experiments, want %d", len(ds), len(wantIDs))
	}
	for i, e := range ds {
		if e.ID != wantIDs[i] {
			t.Errorf("DSeries[%d].ID = %q, want %q", i, e.ID, wantIDs[i])
		}
		if _, err := ByID(strings.ToLower(e.ID)); err != nil {
			t.Errorf("ByID(%q): %v", e.ID, err)
		}
	}
	for _, e := range All() {
		if strings.HasPrefix(e.ID, "D") {
			t.Errorf("D-series experiment %s leaked into All(): default output must not change", e.ID)
		}
	}
	r := ds[0].Run(Config{Quick: true})
	if len(r.Tables) < 2 || len(r.Cluster) < 3 || len(r.Notes) == 0 {
		t.Errorf("D1 report shape: %d tables, %d summaries, %d notes", len(r.Tables), len(r.Cluster), len(r.Notes))
	}
	dInvariant(t, r)
}

// TestDSeriesShardAndRerunDeterminism renders every D experiment at
// shard counts {1, 2, GOMAXPROCS} plus a rerun, and requires
// byte-identical output — the ISSUE's core acceptance bar.
func TestDSeriesShardAndRerunDeterminism(t *testing.T) {
	for _, e := range DSeries() {
		base := renderD(t, e.Run(Config{Quick: true, Shards: 1}))
		if again := renderD(t, e.Run(Config{Quick: true, Shards: 1})); again != base {
			t.Errorf("%s: rerun diverged", e.ID)
		}
		for _, sh := range []int{2, runtime.GOMAXPROCS(0)} {
			got := renderD(t, e.Run(Config{Quick: true, Shards: sh}))
			// Shards must not leak into the rendered report or the
			// summaries (cluster.Summary deliberately omits it).
			if got != base {
				t.Errorf("%s: shards=%d diverged from serial", e.ID, sh)
			}
		}
	}
}

// TestDSeriesInvariantAndBaselineDeltas checks the accounting identity
// for every row of every D report, and that each faulted run actually
// differs from its same-seed fault-free baseline (the delta the series
// exists to show).
func TestDSeriesInvariantAndBaselineDeltas(t *testing.T) {
	for _, e := range DSeries() {
		r := e.Run(Config{Quick: true})
		dInvariant(t, r)
		base, err := json.Marshal(r.Cluster[0])
		if err != nil {
			t.Fatal(err)
		}
		faulted, err := json.Marshal(r.Cluster[1])
		if err != nil {
			t.Fatal(err)
		}
		if string(base) == string(faulted) {
			t.Errorf("%s: faulted run identical to baseline — plan never fired", e.ID)
		}
	}
}

// TestD1FailoverRecoversGoodput pins D1's claim: the health monitor
// turns most of the crash window's losses back into goodput, cheaper
// than blind retries.
func TestD1FailoverRecoversGoodput(t *testing.T) {
	r := ClusterCrashFailover(Config{Quick: true})
	baseline, blind, failover := r.Cluster[0], r.Cluster[1], r.Cluster[2]
	if failover.Goodput <= blind.Goodput {
		t.Errorf("failover goodput %d <= blind %d", failover.Goodput, blind.Goodput)
	}
	if failover.Resilience.Retries >= blind.Resilience.Retries {
		t.Errorf("failover burned %d retries, blind %d — ejection saved nothing",
			failover.Resilience.Retries, blind.Resilience.Retries)
	}
	if failover.Resilience.Ejections == 0 || failover.Resilience.RecoveryUs <= 0 {
		t.Errorf("no ejection/recovery recorded: %+v", failover.Resilience)
	}
	if baseline.Goodput != baseline.Completed || baseline.Degraded != 0 {
		t.Errorf("baseline not clean: %+v", baseline)
	}
}

// TestD2BreakerHedgeShavesStallTail pins the acceptance margin: during
// the stall window, breaker + hedging must beat bare timeouts' p99 by
// a clear margin (the bare control pays the 10ms deadline; the hedge
// escapes at ~2ms).
func TestD2BreakerHedgeShavesStallTail(t *testing.T) {
	r := ClusterStallBreaker(Config{Quick: true})
	bare, guarded := r.Cluster[1], r.Cluster[2]
	bp, gp := dFaultedP99(bare), dFaultedP99(guarded)
	if bp == 0 || gp == 0 {
		t.Fatalf("missing faulted-phase p99: bare %d guarded %d", bp, gp)
	}
	if gp+2000 > bp { // guarded must win by >= 2ms of virtual time
		t.Errorf("guarded faulted p99 %dus not clearly better than bare %dus", gp, bp)
	}
	if guarded.Resilience.Hedges == 0 || guarded.Resilience.HedgeWins == 0 {
		t.Errorf("hedging never fired/won: %+v", guarded.Resilience)
	}
}

// TestD3BudgetSuppressesStorm pins the acceptance counter: under the
// same overload, the 10% budget must deny retries and issue measurably
// fewer than the unmetered fleet.
func TestD3BudgetSuppressesStorm(t *testing.T) {
	r := ClusterRetryStorm(Config{Quick: true})
	unmetered, metered := r.Cluster[1], r.Cluster[2]
	if metered.Resilience.RetriesDenied == 0 {
		t.Errorf("budget denied nothing")
	}
	if metered.Resilience.Retries*2 >= unmetered.Resilience.Retries {
		t.Errorf("metered retries %d not < half of unmetered %d — no measurable suppression",
			metered.Resilience.Retries, unmetered.Resilience.Retries)
	}
	if in := r.Cluster[0]; in.Resilience.Retries != 0 {
		t.Errorf("in-capacity baseline retried %d times", in.Resilience.Retries)
	}
}

// TestD4OnlyLoadAwareRoutingSeesBrownout pins D4's story: the probe
// ejects nothing (the brownout answers probes), and least-loaded is the
// only policy that keeps the degraded count down.
func TestD4OnlyLoadAwareRoutingSeesBrownout(t *testing.T) {
	r := ClusterBrownout(Config{Quick: true})
	byRouter := map[string]*cluster.Summary{}
	for _, s := range r.Cluster[:3] {
		byRouter[s.Router] = s
		if s.Resilience.Ejections != 0 {
			t.Errorf("%s: probe ejected a browned-out instance (%d ejections); brownouts must slip past shallow probes",
				s.Router, s.Resilience.Ejections)
		}
	}
	ll, rr := byRouter[cluster.RouteLeastLoaded], byRouter[cluster.RouteRoundRobin]
	if ll == nil || rr == nil {
		t.Fatalf("missing router rows: %v", byRouter)
	}
	if ll.Degraded*2 >= rr.Degraded {
		t.Errorf("least-loaded degraded %d not < half of rr %d — load steering invisible", ll.Degraded, rr.Degraded)
	}
	dInvariant(t, r)
}
