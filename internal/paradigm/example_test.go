package paradigm_test

import (
	"fmt"

	"repro/internal/paradigm"
	"repro/internal/sim"
	"repro/internal/vclock"
)

// The defer-work paradigm: a command returns to the user immediately and
// the real work happens in a forked worker (§4.1).
func ExampleDeferTo() {
	w := sim.NewWorld(sim.Config{SwitchCost: -1, TimeoutGranularity: 1})
	defer w.Shutdown()
	reg := paradigm.NewRegistry()

	w.Spawn("command", sim.PriorityNormal, func(t *sim.Thread) any {
		paradigm.DeferTo(reg, t, "print-document", func(worker *sim.Thread) {
			worker.Compute(80 * vclock.Millisecond)
			fmt.Println("document printed at", worker.Now())
		})
		fmt.Println("control returned at", t.Now())
		return nil
	})
	w.Run(vclock.Time(vclock.Second))
	fmt.Println("defer-work sites:", reg.Count(paradigm.KindDeferWork))
	// Output:
	// control returned at 0.000000s
	// document printed at 0.080000s
	// defer-work sites: 1
}

// The serializer paradigm (§4.6): procedures enqueued from anywhere run
// strictly in order in the context's thread.
func ExampleMBQueue() {
	w := sim.NewWorld(sim.Config{SwitchCost: -1, TimeoutGranularity: 1})
	defer w.Shutdown()
	reg := paradigm.NewRegistry()
	q := paradigm.NewMBQueue(w, reg, "menu-context", sim.PriorityNormal)

	for _, label := range []string{"click-1", "click-2", "click-3"} {
		label := label
		q.EnqueueExternal(vclock.Millisecond, func(t *sim.Thread) {
			fmt.Println(label, "at", t.Now())
		})
	}
	w.At(vclock.Time(100*vclock.Millisecond), q.Close)
	w.Run(vclock.Time(vclock.Second))
	// Output:
	// click-1 at 0.001000s
	// click-2 at 0.002000s
	// click-3 at 0.003000s
}

// The sleeper paradigm (§4.3): a thread that wakes every period, works
// briefly, and waits again — the population behind the paper's
// timeout-dominated Table 2.
func ExampleStartSleeper() {
	w := sim.NewWorld(sim.Config{SwitchCost: -1, TimeoutGranularity: 1})
	defer w.Shutdown()
	reg := paradigm.NewRegistry()

	sweeps := 0
	paradigm.StartSleeper(w, reg, "cache-sweeper", sim.PriorityLow, 100*vclock.Millisecond, func(t *sim.Thread) {
		sweeps++
	})
	w.At(vclock.Time(350*vclock.Millisecond), w.Stop)
	w.Run(vclock.Time(vclock.Second))
	fmt.Println("sweeps:", sweeps)
	// Output:
	// sweeps: 3
}

// Task rejuvenation (§4.5): the dying service forks its own replacement.
func ExampleStartService() {
	w := sim.NewWorld(sim.Config{SwitchCost: -1, TimeoutGranularity: 1})
	defer w.Shutdown()
	reg := paradigm.NewRegistry()

	attempt := 0
	svc := paradigm.StartService(w, reg, "dispatcher", sim.PriorityNormal, 5, func(t *sim.Thread) {
		attempt++
		t.Compute(vclock.Millisecond)
		if attempt < 3 {
			panic("bad client callback")
		}
		fmt.Println("attempt", attempt, "survived")
	}, nil)
	w.Run(vclock.Time(vclock.Second))
	fmt.Println("restarts:", svc.Restarts())
	// Output:
	// attempt 3 survived
	// restarts: 2
}

// The slack process (§4.2/§5.2): batch and merge before an expensive
// downstream consumer.
func ExampleStartSlack() {
	w := sim.NewWorld(sim.Config{TimeoutGranularity: 1})
	defer w.Shutdown()
	reg := paradigm.NewRegistry()

	src := paradigm.NewBuffer(w, "paint-queue", 0)
	sent := 0
	sink := sinkFunc(func(item any) { sent++ })

	s := paradigm.StartSlack(w, reg, src, sink, paradigm.SlackConfig{
		Strategy: paradigm.SlackYieldButNotToMe,
		Merge:    func(batch []any) []any { return batch[len(batch)-1:] }, // last write wins
	})
	w.Spawn("imaging", sim.PriorityLow, func(t *sim.Thread) any {
		for i := 0; i < 20; i++ {
			src.Put(t, i)
			t.Compute(500 * vclock.Microsecond)
		}
		src.Close(t)
		return nil
	})
	w.Run(vclock.Time(vclock.Second))
	fmt.Printf("gathered %d, sent %d\n", s.In(), sent)
	// All 20 paint requests accumulated during one ceded timeslice and
	// merged into a single downstream transaction.
	// Output:
	// gathered 20, sent 1
}

// sinkFunc adapts a function to the Sink interface for the example.
type sinkFunc func(item any)

func (f sinkFunc) Put(t *sim.Thread, item any) bool { f(item); return true }
func (f sinkFunc) Close(t *sim.Thread)              {}
