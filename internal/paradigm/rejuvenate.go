package paradigm

import (
	"repro/internal/sim"
)

// Service is a task-rejuvenating service (§4.5): when the service thread
// dies of an uncaught error "an exception handler may simply fork a new
// copy of the service". The paper calls the paradigm tricky and a bit
// counter-intuitive ("This thread is in trouble. OK, let's make two of
// them!") but credits it with real robustness gains — a rejuvenating FORK
// was added to Cedar's input event dispatcher precisely because unforked
// callbacks left it vulnerable to client errors.
type Service struct {
	name     string
	restarts int
	max      int
	deaths   []error
	current  *sim.Thread
}

// StartService spawns body under rejuvenation: if it panics, the dying
// thread forks a replacement from its exception handler, up to
// maxRestarts times. onRestart (optional) observes each death. The
// paradigm can mask underlying design problems, which is why the paper
// calls for caution — hence the hard restart bound.
func StartService(w *sim.World, reg *Registry, name string, pri sim.Priority, maxRestarts int, body func(t *sim.Thread), onRestart func(restart int, cause error)) *Service {
	reg.registerInternal(KindTaskRejuvenate)
	if pri == 0 {
		pri = sim.PriorityNormal
	}
	s := &Service{name: name, max: maxRestarts}
	var wrap sim.Proc
	wrap = func(t *sim.Thread) any {
		defer func() {
			r := recover()
			if r == nil {
				return
			}
			if t.Killed() {
				panic(r) // world teardown, not an application error
			}
			err := &sim.PanicError{Thread: name, Value: r}
			s.deaths = append(s.deaths, err)
			if s.restarts >= s.max {
				// Out of lives: die for real, propagating the error.
				panic(r)
			}
			s.restarts++
			if onRestart != nil {
				onRestart(s.restarts, err)
			}
			// Fork the new copy of the service from the handler of the
			// dying thread.
			s.current = t.Fork(name, wrap)
			s.current.Detach()
		}()
		body(t)
		return nil
	}
	s.current = w.Spawn(name, pri, wrap)
	s.current.Detach()
	return s
}

// Restarts returns how many times the service has been rejuvenated.
func (s *Service) Restarts() int { return s.restarts }

// Deaths returns the errors that killed each incarnation.
func (s *Service) Deaths() []error { return s.deaths }

// Thread returns the current incarnation's thread.
func (s *Service) Thread() *sim.Thread { return s.current }

// Alive reports whether the current incarnation is still running.
func (s *Service) Alive() bool {
	return s.current != nil && s.current.State() != sim.StateDead
}
