package paradigm

import (
	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// Source yields items to a consuming thread, blocking until one is
// available; ok=false means the source is closed and drained.
type Source interface {
	Get(t *sim.Thread) (item any, ok bool)
	// TryGet returns immediately; ok=false means empty right now or
	// closed (use Get to distinguish).
	TryGet(t *sim.Thread) (item any, ok bool)
}

// Sink accepts items from a producing thread. Put reports false when the
// sink has been closed.
type Sink interface {
	Put(t *sim.Thread, item any) bool
	Close(t *sim.Thread)
}

// Buffer is a monitor-protected bounded buffer — the connective tissue of
// the paper's pipelines ("bounded buffers and external devices are two
// common sources and sinks", §4.2). It implements Source and Sink.
type Buffer struct {
	m        *monitor.Monitor
	nonEmpty *monitor.Cond
	nonFull  *monitor.Cond
	items    []any
	capacity int
	closed   bool
}

// NewBuffer creates a bounded buffer. capacity <= 0 means unbounded.
func NewBuffer(w *sim.World, name string, capacity int) *Buffer {
	return NewBufferWithOptions(w, name, capacity, monitor.Options{})
}

// NewBufferWithOptions creates a bounded buffer with explicit monitor
// options (e.g. the §6.1 deferred-reschedule fix on or off).
func NewBufferWithOptions(w *sim.World, name string, capacity int, opt monitor.Options) *Buffer {
	m := monitor.NewWithOptions(w, name, opt)
	return &Buffer{
		m:        m,
		nonEmpty: m.NewCond(name + ".non-empty"),
		nonFull:  m.NewCond(name + ".non-full"),
		capacity: capacity,
	}
}

// Monitor exposes the buffer's monitor (for tests and instrumentation).
func (b *Buffer) Monitor() *monitor.Monitor { return b.m }

// Len returns the number of queued items.
func (b *Buffer) Len() int { return len(b.items) }

// Put appends item, blocking while the buffer is full. It returns false
// if the buffer is (or becomes) closed.
func (b *Buffer) Put(t *sim.Thread, item any) bool {
	b.m.Enter(t)
	defer b.m.Exit(t)
	for b.capacity > 0 && len(b.items) >= b.capacity && !b.closed {
		b.nonFull.Wait(t)
	}
	if b.closed {
		return false
	}
	b.items = append(b.items, item)
	b.nonEmpty.Notify(t)
	return true
}

// Get removes and returns the oldest item, blocking while the buffer is
// empty. ok=false means closed and drained.
func (b *Buffer) Get(t *sim.Thread) (any, bool) {
	b.m.Enter(t)
	defer b.m.Exit(t)
	for len(b.items) == 0 && !b.closed {
		b.nonEmpty.Wait(t)
	}
	return b.takeLocked(t)
}

// TryGet removes and returns the oldest item without blocking.
func (b *Buffer) TryGet(t *sim.Thread) (any, bool) {
	b.m.Enter(t)
	defer b.m.Exit(t)
	if len(b.items) == 0 {
		return nil, false
	}
	item, ok := b.takeLocked(t)
	return item, ok
}

func (b *Buffer) takeLocked(t *sim.Thread) (any, bool) {
	if len(b.items) == 0 {
		return nil, false
	}
	item := b.items[0]
	b.items = b.items[1:]
	b.nonFull.Notify(t)
	return item, true
}

// Close marks the buffer closed: pending and future Puts fail, Gets drain
// the remaining items and then report ok=false.
func (b *Buffer) Close(t *sim.Thread) {
	b.m.Enter(t)
	defer b.m.Exit(t)
	b.closed = true
	b.nonEmpty.Broadcast(t)
	b.nonFull.Broadcast(t)
}

// Pump is the paper's §4.2 paradigm: a thread that picks up input from
// one place, possibly transforms it, and produces it someplace else.
// Birrell framed pumps as multiprocessor pipeline stages; Cedar and GVX
// "mostly used [them] for structuring": tokens just appear in a queue and
// the programmer needs to understand less about the pieces connected.
type Pump struct {
	thread *sim.Thread
	moved  int
}

// PumpConfig parameterizes StartPump.
type PumpConfig struct {
	Name     string
	Priority sim.Priority // 0 means sim.PriorityNormal
	// Work is virtual CPU charged per item moved.
	Work vclock.Duration
	// Transform maps each input item to zero or more outputs; nil passes
	// items through unchanged.
	Transform func(item any) []any
}

// StartPump forks a pump thread moving items from src to dst until src
// closes, then closes dst (so pipelines shut down front to back).
func StartPump(w *sim.World, reg *Registry, src Source, dst Sink, cfg PumpConfig) *Pump {
	reg.registerInternal(KindGeneralPump)
	if cfg.Priority == 0 {
		cfg.Priority = sim.PriorityNormal
	}
	if cfg.Name == "" {
		cfg.Name = "pump"
	}
	p := &Pump{}
	p.thread = w.Spawn(cfg.Name, cfg.Priority, func(t *sim.Thread) any {
		for {
			item, ok := src.Get(t)
			if !ok {
				dst.Close(t)
				return p.moved
			}
			t.Compute(cfg.Work)
			outs := []any{item}
			if cfg.Transform != nil {
				outs = cfg.Transform(item)
			}
			for _, out := range outs {
				if !dst.Put(t, out) {
					return p.moved
				}
				p.moved++
			}
		}
	})
	return p
}

// Thread returns the pump's thread.
func (p *Pump) Thread() *sim.Thread { return p.thread }

// Moved returns the number of items delivered downstream so far.
func (p *Pump) Moved() int { return p.moved }

// DeviceQueue models an external event source (keyboard, mouse, network
// socket): the driver side pushes events with no thread context — the
// hardware interrupt — and a single consuming thread (the paper's
// Notifier, or Xl's reading thread) blocks on Get. It implements Source.
// The consumer's waits are traced as CV waits (in the real system they
// are), so they count toward Table 2's wait rates.
type DeviceQueue struct {
	w      *sim.World
	name   string
	cvID   int64
	items  []any
	waiter *sim.Thread
	closed bool
}

// NewDeviceQueue creates an empty device queue.
func NewDeviceQueue(w *sim.World, name string) *DeviceQueue {
	return &DeviceQueue{w: w, name: name, cvID: w.AllocCVID()}
}

// Push appends an event from driver context (an At callback) and wakes
// the consuming thread if it is blocked. It must not be called from
// thread context; threads feeding a queue should use a Buffer.
func (d *DeviceQueue) Push(item any) {
	if d.closed {
		return
	}
	d.items = append(d.items, item)
	d.wakeWaiter()
}

// CloseDevice closes the queue from driver context.
func (d *DeviceQueue) CloseDevice() {
	d.closed = true
	d.wakeWaiter()
}

func (d *DeviceQueue) wakeWaiter() {
	if d.waiter != nil {
		w := d.waiter
		d.waiter = nil
		d.w.WakeIfBlocked(w, nil)
	}
}

// Get blocks the calling thread until an event is available; ok=false
// means the device is closed and drained. Only one thread may consume.
func (d *DeviceQueue) Get(t *sim.Thread) (any, bool) {
	for len(d.items) == 0 && !d.closed {
		if d.waiter != nil && d.waiter != t {
			panic("paradigm: DeviceQueue has a single consumer")
		}
		d.waiter = t
		d.w.Trace().Record(trace.Event{Time: d.w.Now(), Kind: trace.KindWait, Thread: t.ID(), Arg: d.cvID, Aux: -1})
		t.Block(sim.BlockCV)
		d.w.Trace().Record(trace.Event{Time: d.w.Now(), Kind: trace.KindWaitDone, Thread: t.ID(), Arg: d.cvID, Aux: 0})
	}
	if len(d.items) == 0 {
		return nil, false
	}
	item := d.items[0]
	d.items = d.items[1:]
	return item, true
}

// TryGet removes an event without blocking.
func (d *DeviceQueue) TryGet(t *sim.Thread) (any, bool) {
	if len(d.items) == 0 {
		return nil, false
	}
	item := d.items[0]
	d.items = d.items[1:]
	return item, true
}

// Len returns the number of pending events.
func (d *DeviceQueue) Len() int { return len(d.items) }
