package paradigm

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/vclock"
)

// StageFunc transforms one item into zero or more outputs, with full
// thread context (so a stage may enter monitors, sleep, or do I/O).
type StageFunc func(t *sim.Thread, item any) []any

// PipelineBuilder composes pump stages connected by bounded buffers —
// §4.2's point that pipelines in these systems are "a programming
// convenience ... conceptually simpler: tokens just appear in a queue.
// The programmer needs to understand less about the pieces being
// connected." Build wires the stages front to back; closing the input
// shuts the pipeline down stage by stage.
type PipelineBuilder struct {
	w      *sim.World
	reg    *Registry
	name   string
	cap    int
	stages []stageSpec
}

type stageSpec struct {
	name string
	pri  sim.Priority
	work vclock.Duration
	fn   StageFunc
}

// NewPipeline starts a builder. Buffers between stages default to
// capacity 8.
func NewPipeline(w *sim.World, reg *Registry, name string) *PipelineBuilder {
	return &PipelineBuilder{w: w, reg: reg, name: name, cap: 8}
}

// Buffers sets the capacity of the connecting buffers (0 = unbounded).
func (b *PipelineBuilder) Buffers(capacity int) *PipelineBuilder {
	b.cap = capacity
	return b
}

// Stage appends a pump stage. work is CPU charged per item before fn
// runs; pri 0 means sim.PriorityNormal; a nil fn passes items through.
func (b *PipelineBuilder) Stage(name string, pri sim.Priority, work vclock.Duration, fn StageFunc) *PipelineBuilder {
	b.stages = append(b.stages, stageSpec{name: name, pri: pri, work: work, fn: fn})
	return b
}

// Pipeline is a built pipeline: Put into In, Get from Out.
type Pipeline struct {
	In  *Buffer
	Out *Buffer
	// Threads are the stage threads, front to back.
	Threads []*sim.Thread
	moved   []int
}

// Moved returns how many items stage i has emitted so far.
func (p *Pipeline) Moved(i int) int { return p.moved[i] }

// Build spawns the stage threads and returns the pipeline. It panics if
// no stages were added.
func (b *PipelineBuilder) Build() *Pipeline {
	if len(b.stages) == 0 {
		panic("paradigm: pipeline with no stages")
	}
	p := &Pipeline{moved: make([]int, len(b.stages))}
	bufs := make([]*Buffer, len(b.stages)+1)
	for i := range bufs {
		bufs[i] = NewBuffer(b.w, fmt.Sprintf("%s.q%d", b.name, i), b.cap)
	}
	p.In = bufs[0]
	p.Out = bufs[len(bufs)-1]
	for i, st := range b.stages {
		i, st := i, st
		if st.pri == 0 {
			st.pri = sim.PriorityNormal
		}
		b.reg.registerInternal(KindGeneralPump)
		src, dst := bufs[i], bufs[i+1]
		th := b.w.Spawn(fmt.Sprintf("%s.%s", b.name, st.name), st.pri, func(t *sim.Thread) any {
			for {
				item, ok := src.Get(t)
				if !ok {
					dst.Close(t)
					return p.moved[i]
				}
				t.Compute(st.work)
				outs := []any{item}
				if st.fn != nil {
					outs = st.fn(t, item)
				}
				for _, out := range outs {
					if !dst.Put(t, out) {
						return p.moved[i]
					}
					p.moved[i]++
				}
			}
		})
		p.Threads = append(p.Threads, th)
	}
	return p
}
