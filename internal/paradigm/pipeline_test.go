package paradigm

import (
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/vclock"
)

func TestPipelineBuilder(t *testing.T) {
	w := testWorld(t, fastCfg())
	reg := NewRegistry()
	p := NewPipeline(w, reg, "etl").
		Buffers(4).
		Stage("double", 0, vclock.Millisecond, func(t *sim.Thread, item any) []any {
			return []any{item.(int) * 2}
		}).
		Stage("filter-odd", sim.PriorityLow, 0, func(t *sim.Thread, item any) []any {
			if item.(int)%4 == 0 {
				return []any{item}
			}
			return nil
		}).
		Stage("passthrough", 0, 0, nil).
		Build()

	var got []int
	w.Spawn("source", sim.PriorityNormal, func(th *sim.Thread) any {
		for i := 1; i <= 6; i++ {
			p.In.Put(th, i)
		}
		p.In.Close(th)
		return nil
	})
	w.Spawn("drain", sim.PriorityNormal, func(th *sim.Thread) any {
		for {
			v, ok := p.Out.Get(th)
			if !ok {
				return nil
			}
			got = append(got, v.(int))
		}
	})
	if out := w.Run(vclock.Time(vclock.Second)); out != sim.OutcomeQuiescent {
		t.Fatalf("outcome = %v", out)
	}
	// doubles: 2,4,6,8,10,12; keep multiples of 4: 4,8,12
	if !reflect.DeepEqual(got, []int{4, 8, 12}) {
		t.Fatalf("got %v", got)
	}
	if p.Moved(0) != 6 || p.Moved(1) != 3 || p.Moved(2) != 3 {
		t.Fatalf("moved = %d %d %d", p.Moved(0), p.Moved(1), p.Moved(2))
	}
	if len(p.Threads) != 3 {
		t.Fatalf("threads = %d", len(p.Threads))
	}
	if reg.Count(KindGeneralPump) == 0 {
		t.Fatal("pumps not registered")
	}
}

func TestPipelineNoStagesPanics(t *testing.T) {
	w := testWorld(t, fastCfg())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPipeline(w, NewRegistry(), "empty").Build()
}

func TestPipelineBackpressure(t *testing.T) {
	w := testWorld(t, fastCfg())
	reg := NewRegistry()
	p := NewPipeline(w, reg, "slow").
		Buffers(1).
		Stage("slow", 0, 10*vclock.Millisecond, nil).
		Build()
	var srcDone vclock.Time
	w.Spawn("source", sim.PriorityNormal, func(th *sim.Thread) any {
		for i := 0; i < 5; i++ {
			p.In.Put(th, i) // bounded buffers throttle the producer
		}
		p.In.Close(th)
		srcDone = th.Now()
		return nil
	})
	w.Spawn("drain", sim.PriorityNormal, func(th *sim.Thread) any {
		for {
			if _, ok := p.Out.Get(th); !ok {
				return nil
			}
		}
	})
	w.Run(vclock.Time(vclock.Second))
	if srcDone < vclock.Time(20*vclock.Millisecond) {
		t.Fatalf("producer finished at %v; backpressure should have throttled it", srcDone)
	}
}
