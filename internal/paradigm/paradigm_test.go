package paradigm

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/vclock"
)

func newTestMonitor(w *sim.World, name string) *monitor.Monitor {
	return monitor.NewWithOptions(w, name, monitor.Options{LockCost: -1, NotifyCost: -1, WaitCost: -1})
}

// collectorSink is an external device sink (like a socket to the X
// server): Puts cost nothing and involve no thread.
type collectorSink struct{ items []any }

func (c *collectorSink) Put(t *sim.Thread, item any) bool {
	c.items = append(c.items, item)
	return true
}

func (c *collectorSink) Close(t *sim.Thread) {}

func testWorld(t *testing.T, cfg sim.Config) *sim.World {
	t.Helper()
	w := sim.NewWorld(cfg)
	t.Cleanup(w.Shutdown)
	return w
}

func fastCfg() sim.Config { return sim.Config{SwitchCost: -1, TimeoutGranularity: 1} }

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Register(KindDeferWork)
	r.Register(KindDeferWork)
	r.Register(KindSlackProcess)
	if r.Count(KindDeferWork) != 2 || r.Count(KindSlackProcess) != 1 || r.Total() != 3 {
		t.Fatalf("counts wrong: %d %d %d", r.Count(KindDeferWork), r.Count(KindSlackProcess), r.Total())
	}
	var nilReg *Registry
	nilReg.Register(KindSleeper) // must not panic
	if nilReg.Count(KindSleeper) != 0 || nilReg.Total() != 0 {
		t.Fatal("nil registry should count nothing")
	}
	tbl := r.Table("Table 4").String()
	if !strings.Contains(tbl, "Defer work") || !strings.Contains(tbl, "TOTAL") {
		t.Fatalf("table missing rows:\n%s", tbl)
	}
	if KindTaskRejuvenate.String() != "Task rejuvenation" {
		t.Fatalf("kind name = %q", KindTaskRejuvenate)
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Fatal("invalid kind should format its number")
	}
}

func TestRegistryInvalidKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRegistry().Register(Kind(99))
}

func TestBufferFIFOAndClose(t *testing.T) {
	w := testWorld(t, fastCfg())
	b := NewBuffer(w, "buf", 0)
	var got []int
	w.Spawn("producer", sim.PriorityNormal, func(th *sim.Thread) any {
		for i := 0; i < 5; i++ {
			b.Put(th, i)
		}
		b.Close(th)
		if b.Put(th, 99) {
			t.Error("Put after Close succeeded")
		}
		return nil
	})
	w.Spawn("consumer", sim.PriorityNormal, func(th *sim.Thread) any {
		for {
			v, ok := b.Get(th)
			if !ok {
				return nil
			}
			got = append(got, v.(int))
		}
	})
	if out := w.Run(vclock.Time(vclock.Second)); out != sim.OutcomeQuiescent {
		t.Fatalf("outcome = %v", out)
	}
	if !reflect.DeepEqual(got, []int{0, 1, 2, 3, 4}) {
		t.Fatalf("got %v", got)
	}
}

func TestBufferCapacityBlocksProducer(t *testing.T) {
	w := testWorld(t, fastCfg())
	b := NewBuffer(w, "buf", 2)
	var putDone vclock.Time
	w.Spawn("producer", sim.PriorityNormal, func(th *sim.Thread) any {
		b.Put(th, 1)
		b.Put(th, 2)
		b.Put(th, 3) // blocks until consumer takes one
		putDone = th.Now()
		return nil
	})
	w.Spawn("consumer", sim.PriorityNormal, func(th *sim.Thread) any {
		th.Compute(10 * vclock.Millisecond)
		b.Get(th)
		return nil
	})
	w.Run(vclock.Time(vclock.Second))
	if putDone < vclock.Time(10*vclock.Millisecond) {
		t.Fatalf("third Put completed at %v, want >= 10ms (bounded buffer)", putDone)
	}
}

func TestBufferTryGet(t *testing.T) {
	w := testWorld(t, fastCfg())
	b := NewBuffer(w, "buf", 0)
	w.Spawn("t", sim.PriorityNormal, func(th *sim.Thread) any {
		if _, ok := b.TryGet(th); ok {
			t.Error("TryGet on empty buffer succeeded")
		}
		b.Put(th, 7)
		v, ok := b.TryGet(th)
		if !ok || v.(int) != 7 {
			t.Errorf("TryGet = %v %v", v, ok)
		}
		return nil
	})
	w.Run(vclock.Time(vclock.Second))
}

func TestPumpPipeline(t *testing.T) {
	w := testWorld(t, fastCfg())
	reg := NewRegistry()
	a := NewBuffer(w, "a", 0)
	bq := NewBuffer(w, "b", 0)
	c := NewBuffer(w, "c", 0)
	// a -> double -> b -> stringify -> c
	StartPump(w, reg, a, bq, PumpConfig{Name: "double", Transform: func(x any) []any { return []any{x.(int) * 2} }})
	p2 := StartPump(w, reg, bq, c, PumpConfig{Name: "tag", Work: vclock.Millisecond})
	var got []int
	w.Spawn("source", sim.PriorityNormal, func(th *sim.Thread) any {
		for i := 1; i <= 3; i++ {
			a.Put(th, i)
		}
		a.Close(th)
		return nil
	})
	w.Spawn("drain", sim.PriorityNormal, func(th *sim.Thread) any {
		for {
			v, ok := c.Get(th)
			if !ok {
				return nil
			}
			got = append(got, v.(int))
		}
	})
	if out := w.Run(vclock.Time(vclock.Second)); out != sim.OutcomeQuiescent {
		t.Fatalf("outcome = %v", out)
	}
	if !reflect.DeepEqual(got, []int{2, 4, 6}) {
		t.Fatalf("pipeline output = %v", got)
	}
	if p2.Moved() != 3 {
		t.Fatalf("pump moved = %d", p2.Moved())
	}
	if reg.Count(KindGeneralPump) != 2 {
		t.Fatalf("registry pumps = %d", reg.Count(KindGeneralPump))
	}
}

func TestDeviceQueue(t *testing.T) {
	w := testWorld(t, fastCfg())
	d := NewDeviceQueue(w, "keys")
	var got []rune
	w.Spawn("notifier", sim.PriorityHigh, func(th *sim.Thread) any {
		for {
			v, ok := d.Get(th)
			if !ok {
				return nil
			}
			got = append(got, v.(rune))
		}
	})
	for i, r := range "abc" {
		r := r
		w.At(vclock.Time(vclock.Duration(i+1)*vclock.Millisecond), func() { d.Push(r) })
	}
	w.At(vclock.Time(10*vclock.Millisecond), d.CloseDevice)
	if out := w.Run(vclock.Time(vclock.Second)); out != sim.OutcomeQuiescent {
		t.Fatalf("outcome = %v", out)
	}
	if string(got) != "abc" {
		t.Fatalf("got %q", string(got))
	}
}

func TestSlackMergesWithYieldButNotToMe(t *testing.T) {
	// The §5.2 scenario in miniature: a low-priority producer emits paint
	// requests with small gaps; the high-priority slack process either
	// merges them (YieldButNotToMe) or forwards them one at a time
	// (plain Yield, because the scheduler hands the CPU right back). The
	// X server is an external process reached by a socket — a Sink, not
	// a competing thread.
	run := func(strategy WaitStrategy) *Slack {
		w := sim.NewWorld(sim.Config{TimeoutGranularity: 1})
		defer w.Shutdown()
		reg := NewRegistry()
		src := NewBuffer(w, "paint", 0)
		dst := &collectorSink{}
		s := StartSlack(w, reg, src, dst, SlackConfig{
			Name:     "buffer-thread",
			Strategy: strategy,
			Merge: func(batch []any) []any {
				return batch[len(batch)-1:] // replace earlier data with later
			},
		})
		w.Spawn("imaging", sim.PriorityLow, func(th *sim.Thread) any {
			for i := 0; i < 50; i++ {
				src.Put(th, i)
				th.Compute(200 * vclock.Microsecond)
			}
			src.Close(th)
			return nil
		})
		w.Run(vclock.Time(10 * vclock.Second))
		return s
	}
	plain := run(SlackYield)
	fixed := run(SlackYieldButNotToMe)
	if plain.In() != 50 || fixed.In() != 50 {
		t.Fatalf("slack did not see all items: plain=%d fixed=%d", plain.In(), fixed.In())
	}
	if fixed.Flushes() >= plain.Flushes() {
		t.Fatalf("YieldButNotToMe should flush less: plain=%d fixed=%d", plain.Flushes(), fixed.Flushes())
	}
	if fixed.MergeRatio() < 2 {
		t.Fatalf("YieldButNotToMe merge ratio = %v, want >= 2", fixed.MergeRatio())
	}
}

func TestSleeperTimeoutDriven(t *testing.T) {
	cfg := sim.Config{SwitchCost: -1, TimeoutGranularity: 50 * vclock.Millisecond}
	w := testWorld(t, cfg)
	reg := NewRegistry()
	runsAt := []vclock.Time{}
	s := StartSleeper(w, reg, "cache-sweeper", 0, 100*vclock.Millisecond, func(t *sim.Thread) {
		runsAt = append(runsAt, t.Now())
	})
	w.At(vclock.Time(350*vclock.Millisecond), w.Stop)
	w.Run(vclock.Time(vclock.Second))
	if s.Runs() != 3 {
		t.Fatalf("sleeper ran %d times in 350ms with 100ms period, want 3 (at %v)", s.Runs(), runsAt)
	}
	if s.Fires() != 0 {
		t.Fatalf("fires = %d, want 0 (all timeouts)", s.Fires())
	}
	if reg.Count(KindSleeper) != 1 {
		t.Fatal("sleeper not registered")
	}
}

func TestSleeperPoke(t *testing.T) {
	w := testWorld(t, fastCfg())
	reg := NewRegistry()
	var ran []vclock.Time
	// High priority so the poke preempts the client immediately.
	s := StartSleeper(w, reg, "svc", sim.PriorityHigh, vclock.Second, func(t *sim.Thread) {
		ran = append(ran, t.Now())
	})
	w.Spawn("client", sim.PriorityNormal, func(th *sim.Thread) any {
		th.Compute(10 * vclock.Millisecond)
		s.Poke(th)
		th.Compute(10 * vclock.Millisecond)
		s.Stop(th)
		return nil
	})
	w.At(vclock.Time(100*vclock.Millisecond), w.Stop)
	w.Run(vclock.Time(2 * vclock.Second))
	lo, hi := vclock.Time(10*vclock.Millisecond), vclock.Time(11*vclock.Millisecond)
	if len(ran) != 1 || ran[0] < lo || ran[0] > hi {
		t.Fatalf("poked sleeper ran at %v, want ~10ms", ran)
	}
	if s.Fires() != 1 {
		t.Fatalf("fires = %d", s.Fires())
	}
}

func TestSleeperPokeExternal(t *testing.T) {
	w := testWorld(t, fastCfg())
	reg := NewRegistry()
	runs := 0
	StartSleeper(w, reg, "svc", 0, vclock.Second, func(t *sim.Thread) { runs++ })
	w.At(vclock.Time(5*vclock.Millisecond), func() {
		for _, th := range w.Threads() {
			_ = th
		}
	})
	var s *Sleeper
	s = StartSleeper(w, reg, "svc2", 0, vclock.Second, func(t *sim.Thread) { runs++ })
	w.At(vclock.Time(10*vclock.Millisecond), s.PokeExternal)
	w.At(vclock.Time(50*vclock.Millisecond), w.Stop)
	w.Run(vclock.Time(2 * vclock.Second))
	if runs != 1 {
		t.Fatalf("runs = %d, want 1 (one external poke)", runs)
	}
}

func TestPeriodicalProcessRegistersBoth(t *testing.T) {
	w := testWorld(t, fastCfg())
	reg := NewRegistry()
	PeriodicalProcess(w, reg, "pp", 100*vclock.Millisecond, func(t *sim.Thread) {})
	if reg.Count(KindSleeper) != 1 || reg.Count(KindEncapsulatedFork) != 1 {
		t.Fatal("PeriodicalProcess should register sleeper + encapsulated fork")
	}
	w.At(vclock.Time(10*vclock.Millisecond), w.Stop)
	w.Run(vclock.Time(vclock.Second))
}

func TestWorkQueue(t *testing.T) {
	w := testWorld(t, fastCfg())
	reg := NewRegistry()
	q := NewWorkQueue(w, reg, "finalizer", 0)
	var done []int
	w.Spawn("gc", sim.PriorityDaemon, func(th *sim.Thread) any {
		for i := 0; i < 3; i++ {
			i := i
			q.Add(th, func(t *sim.Thread) {
				t.Compute(vclock.Millisecond)
				done = append(done, i)
			})
		}
		q.Close(th)
		return nil
	})
	if out := w.Run(vclock.Time(vclock.Second)); out != sim.OutcomeQuiescent {
		t.Fatalf("outcome = %v", out)
	}
	if !reflect.DeepEqual(done, []int{0, 1, 2}) || q.Served() != 3 {
		t.Fatalf("done = %v served = %d", done, q.Served())
	}
}

func TestDelayedFork(t *testing.T) {
	cfg := sim.Config{SwitchCost: -1, TimeoutGranularity: 50 * vclock.Millisecond}
	w := testWorld(t, cfg)
	reg := NewRegistry()
	var ranAt vclock.Time
	DelayedFork(w, reg, "later", 75*vclock.Millisecond, func(t *sim.Thread) {
		ranAt = t.Now()
	})
	w.Run(vclock.Time(vclock.Second))
	if ranAt != vclock.Time(100*vclock.Millisecond) { // 75 rounds to 100
		t.Fatalf("delayed fork ran at %v, want 100ms", ranAt)
	}
	if reg.Count(KindOneShot) != 1 || reg.Count(KindEncapsulatedFork) != 1 {
		t.Fatal("DelayedFork registration wrong")
	}
}

func TestPeriodicalFork(t *testing.T) {
	w := testWorld(t, fastCfg())
	reg := NewRegistry()
	runs := 0
	stop := PeriodicalFork(w, reg, "tick", 20*vclock.Millisecond, func(t *sim.Thread) {
		runs++
	})
	w.At(vclock.Time(70*vclock.Millisecond), stop)
	if out := w.Run(vclock.Time(vclock.Second)); out != sim.OutcomeQuiescent {
		t.Fatalf("outcome = %v", out)
	}
	if runs != 3 { // 20, 40, 60; at 80 sees stop
		t.Fatalf("runs = %d, want 3", runs)
	}
}

func TestGuardedButton(t *testing.T) {
	cfg := sim.Config{SwitchCost: -1, TimeoutGranularity: 1}
	w := testWorld(t, cfg)
	reg := NewRegistry()
	fired := 0
	b := NewGuardedButton(w, reg, "delete", func(t *sim.Thread) { fired++ })
	b.ArmDelay = 200 * vclock.Millisecond
	b.FireWindow = vclock.Second

	click := func(at vclock.Duration) {
		w.At(vclock.Time(at), func() {
			w.Spawn("clicker", sim.PriorityHigh, func(th *sim.Thread) any {
				b.Click(th)
				return nil
			})
		})
	}
	// Click 1 at 0 arms the button after 200ms. Click 2 at 100ms is too
	// close and ignored. Click 3 at 500ms (inside the fire window) fires.
	click(0)
	click(100 * vclock.Millisecond)
	click(500 * vclock.Millisecond)
	w.Run(vclock.Time(5 * vclock.Second))
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if b.State() != ButtonGuarded || b.Appearance() != "Bu-tt-on" {
		t.Fatalf("state = %v appearance = %q", b.State(), b.Appearance())
	}
}

func TestGuardedButtonExpires(t *testing.T) {
	w := testWorld(t, sim.Config{SwitchCost: -1, TimeoutGranularity: 1})
	reg := NewRegistry()
	b := NewGuardedButton(w, reg, "delete", func(t *sim.Thread) {
		t.World() // no-op
	})
	b.ArmDelay = 100 * vclock.Millisecond
	b.FireWindow = 500 * vclock.Millisecond
	w.At(0, func() {
		w.Spawn("clicker", sim.PriorityNormal, func(th *sim.Thread) any {
			b.Click(th)
			return nil
		})
	})
	// Probe the armed appearance mid-window.
	var armedAppearance string
	w.At(vclock.Time(300*vclock.Millisecond), func() { armedAppearance = b.Appearance() })
	w.Run(vclock.Time(5 * vclock.Second))
	if armedAppearance != "Button" {
		t.Fatalf("mid-window appearance = %q, want Button", armedAppearance)
	}
	if b.Fired() != 0 || b.Repaints() != 1 || b.State() != ButtonGuarded {
		t.Fatalf("fired=%d repaints=%d state=%v", b.Fired(), b.Repaints(), b.State())
	}
}

func TestMBQueueSerializes(t *testing.T) {
	w := testWorld(t, fastCfg())
	reg := NewRegistry()
	q := NewMBQueue(w, reg, "mbq", sim.PriorityNormal)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		q.EnqueueExternal(vclock.Millisecond, func(t *sim.Thread) {
			order = append(order, i)
		})
	}
	w.At(vclock.Time(100*vclock.Millisecond), q.Close)
	if out := w.Run(vclock.Time(vclock.Second)); out != sim.OutcomeQuiescent {
		t.Fatalf("outcome = %v", out)
	}
	if !reflect.DeepEqual(order, []int{0, 1, 2, 3, 4}) {
		t.Fatalf("order = %v", order)
	}
	if q.Served() != 5 {
		t.Fatalf("served = %d", q.Served())
	}
}

func TestMBQueueMixedContexts(t *testing.T) {
	w := testWorld(t, fastCfg())
	reg := NewRegistry()
	q := NewMBQueue(w, reg, "mbq", sim.PriorityHigh)
	var order []string
	q.EnqueueExternal(0, func(t *sim.Thread) { order = append(order, "ext1") })
	w.Spawn("client", sim.PriorityNormal, func(th *sim.Thread) any {
		q.Enqueue(th, 0, func(t *sim.Thread) { order = append(order, "thr") })
		return nil
	})
	w.At(vclock.Time(10*vclock.Millisecond), func() {
		q.EnqueueExternal(0, func(t *sim.Thread) { order = append(order, "ext2") })
		q.Close()
	})
	w.Run(vclock.Time(vclock.Second))
	if !reflect.DeepEqual(order, []string{"ext1", "thr", "ext2"}) {
		t.Fatalf("order = %v", order)
	}
}

func TestRejuvenationRestartsService(t *testing.T) {
	w := testWorld(t, fastCfg())
	reg := NewRegistry()
	attempts := 0
	var restarts []int
	s := StartService(w, reg, "dispatcher", 0, 3, func(t *sim.Thread) {
		attempts++
		t.Compute(vclock.Millisecond)
		if attempts < 3 {
			panic("bad callback")
		}
		// Third incarnation survives.
	}, func(n int, cause error) {
		restarts = append(restarts, n)
		if !strings.Contains(cause.Error(), "bad callback") {
			t.Errorf("cause = %v", cause)
		}
	})
	if out := w.Run(vclock.Time(vclock.Second)); out != sim.OutcomeQuiescent {
		t.Fatalf("outcome = %v", out)
	}
	if attempts != 3 || s.Restarts() != 2 {
		t.Fatalf("attempts=%d restarts=%d", attempts, s.Restarts())
	}
	if !reflect.DeepEqual(restarts, []int{1, 2}) {
		t.Fatalf("restart seq = %v", restarts)
	}
	if len(s.Deaths()) != 2 {
		t.Fatalf("deaths = %v", s.Deaths())
	}
}

func TestRejuvenationGivesUp(t *testing.T) {
	w := testWorld(t, fastCfg())
	reg := NewRegistry()
	attempts := 0
	s := StartService(w, reg, "hopeless", 0, 2, func(t *sim.Thread) {
		attempts++
		panic("always broken")
	}, nil)
	w.Run(vclock.Time(vclock.Second))
	if attempts != 3 { // initial + 2 restarts
		t.Fatalf("attempts = %d, want 3", attempts)
	}
	if s.Alive() {
		t.Fatal("service should be dead after exhausting restarts")
	}
	if s.Thread().Err() == nil {
		t.Fatal("final death should propagate the error")
	}
}

func TestAvoidForkEscapesLockOrder(t *testing.T) {
	w := testWorld(t, fastCfg())
	reg := NewRegistry()
	muA := newTestMonitor(w, "A")
	muB := newTestMonitor(w, "B")
	repainted := false
	w.Spawn("adjuster", sim.PriorityNormal, func(th *sim.Thread) any {
		// Holds B (out of order w.r.t. A); repainting needs A then B.
		muB.Enter(th)
		AvoidFork(reg, th, "painter", func(c *sim.Thread) {
			muA.Enter(c)
			muB.Enter(c)
			repainted = true
			muB.Exit(c)
			muA.Exit(c)
		})
		th.Compute(vclock.Millisecond)
		muB.Exit(th)
		return nil
	})
	if out := w.Run(vclock.Time(vclock.Second)); out != sim.OutcomeQuiescent {
		t.Fatalf("outcome = %v", out)
	}
	if !repainted {
		t.Fatal("painter never completed")
	}
	if reg.Count(KindDeadlockAvoid) != 1 {
		t.Fatal("not registered")
	}
}

func TestLockSetDetectsViolation(t *testing.T) {
	w := testWorld(t, fastCfg())
	muA := newTestMonitor(w, "A")
	muB := newTestMonitor(w, "B")
	ls := NewLockSet(muA, muB)
	th := w.Spawn("violator", sim.PriorityNormal, func(th *sim.Thread) any {
		ls.Acquire(th, muB)
		if got := ls.Holding(th); len(got) != 1 || got[0] != muB {
			t.Errorf("holding = %v", got)
		}
		ls.Acquire(th, muA) // out of order: panics
		return nil
	})
	w.Run(vclock.Time(vclock.Second))
	if th.Err() == nil || !strings.Contains(th.Err().Error(), "lock-order violation") {
		t.Fatalf("err = %v", th.Err())
	}
}

func TestLockSetOrderedUseWorks(t *testing.T) {
	w := testWorld(t, fastCfg())
	muA := newTestMonitor(w, "A")
	muB := newTestMonitor(w, "B")
	ls := NewLockSet(muA, muB)
	th := w.Spawn("orderly", sim.PriorityNormal, func(th *sim.Thread) any {
		ls.Acquire(th, muA)
		ls.Acquire(th, muB)
		ls.Release(th, muB)
		ls.Release(th, muA)
		return nil
	})
	if out := w.Run(vclock.Time(vclock.Second)); out != sim.OutcomeQuiescent {
		t.Fatalf("outcome = %v", out)
	}
	if th.Err() != nil {
		t.Fatalf("err = %v", th.Err())
	}
}

func TestForkingCallback(t *testing.T) {
	w := testWorld(t, fastCfg())
	reg := NewRegistry()
	directRan, forkedRan := false, false
	var serviceDied error
	svc := w.Spawn("service", sim.PriorityNormal, func(th *sim.Thread) any {
		ForkingCallback(reg, th, "cb1", false, func(c *sim.Thread) { directRan = true })
		ForkingCallback(reg, th, "cb2", true, func(c *sim.Thread) {
			forkedRan = true
			panic("client bug")
		})
		th.Compute(vclock.Millisecond)
		return nil
	})
	w.Run(vclock.Time(vclock.Second))
	serviceDied = svc.Err()
	if !directRan || !forkedRan {
		t.Fatal("callbacks did not run")
	}
	// The forked callback's panic must NOT kill the service thread.
	if serviceDied != nil {
		t.Fatalf("service died: %v", serviceDied)
	}
}

func TestParallelDo(t *testing.T) {
	cfg := fastCfg()
	cfg.CPUs = 4
	w := testWorld(t, cfg)
	reg := NewRegistry()
	var done vclock.Time
	results := make([]bool, 4)
	w.Spawn("exploiter", sim.PriorityNormal, func(th *sim.Thread) any {
		err := ParallelDo(reg, th, "worker", 4, func(c *sim.Thread, i int) {
			c.Compute(100 * vclock.Millisecond)
			results[i] = true
		})
		if err != nil {
			t.Errorf("ParallelDo err = %v", err)
		}
		done = th.Now()
		return nil
	})
	if out := w.Run(vclock.Time(vclock.Second)); out != sim.OutcomeQuiescent {
		t.Fatalf("outcome = %v", out)
	}
	for i, r := range results {
		if !r {
			t.Fatalf("worker %d did not run", i)
		}
	}
	// 4 workers on 4 CPUs: ~100ms wall, not 400ms.
	if done > vclock.Time(150*vclock.Millisecond) {
		t.Fatalf("parallel work took %v, want ~100ms", done)
	}
	if reg.Count(KindConcurrencyExploit) != 1 {
		t.Fatal("not registered")
	}
}

func TestParallelDoPropagatesError(t *testing.T) {
	w := testWorld(t, fastCfg())
	reg := NewRegistry()
	var got error
	w.Spawn("exploiter", sim.PriorityNormal, func(th *sim.Thread) any {
		got = ParallelDo(reg, th, "worker", 2, func(c *sim.Thread, i int) {
			if i == 1 {
				panic("worker died")
			}
		})
		return nil
	})
	w.Run(vclock.Time(vclock.Second))
	if got == nil || !strings.Contains(got.Error(), "worker died") {
		t.Fatalf("err = %v", got)
	}
}

func TestDeferToAndDeferAt(t *testing.T) {
	w := testWorld(t, fastCfg())
	reg := NewRegistry()
	var order []string
	w.Spawn("notifier", sim.PriorityHigh, func(th *sim.Thread) any {
		DeferAt(reg, th, "real-work", sim.PriorityLow, func(c *sim.Thread) {
			c.Compute(vclock.Millisecond)
			order = append(order, "deferred")
		})
		order = append(order, "notifier-free")
		return nil
	})
	w.Run(vclock.Time(vclock.Second))
	// The critical thread continues before the low-priority work runs.
	if !reflect.DeepEqual(order, []string{"notifier-free", "deferred"}) {
		t.Fatalf("order = %v", order)
	}
	if reg.Count(KindDeferWork) != 1 {
		t.Fatal("not registered")
	}

	w2 := testWorld(t, fastCfg())
	ran := false
	w2.Spawn("cmd", sim.PriorityNormal, func(th *sim.Thread) any {
		DeferTo(reg, th, "print-doc", func(c *sim.Thread) { ran = true })
		return nil
	})
	w2.Run(vclock.Time(vclock.Second))
	if !ran || reg.Count(KindDeferWork) != 2 {
		t.Fatal("DeferTo failed")
	}
}

func TestSlackMaxBatch(t *testing.T) {
	w := testWorld(t, fastCfg())
	reg := NewRegistry()
	src := NewBuffer(w, "src", 0)
	var batches []int
	pending := 0
	sink := sinkCounter{onPut: func() { pending++ }}
	s := StartSlack(w, reg, src, sink, SlackConfig{
		Strategy: SlackNone,
		MaxBatch: 3,
		Merge: func(batch []any) []any {
			batches = append(batches, len(batch))
			return batch
		},
	})
	w.Spawn("producer", sim.PriorityLow, func(th *sim.Thread) any {
		for i := 0; i < 10; i++ {
			src.Put(th, i)
		}
		src.Close(th)
		return nil
	})
	if out := w.Run(vclock.Time(vclock.Second)); out != sim.OutcomeQuiescent {
		t.Fatalf("outcome = %v", out)
	}
	for _, b := range batches {
		if b > 3 {
			t.Fatalf("batch of %d exceeds MaxBatch 3 (batches %v)", b, batches)
		}
	}
	if s.In() != 10 || s.Out() != 10 {
		t.Fatalf("in/out = %d/%d", s.In(), s.Out())
	}
	if s.MergeRatio() != 1.0 {
		t.Fatalf("merge ratio = %v", s.MergeRatio())
	}
}

type sinkCounter struct{ onPut func() }

func (s sinkCounter) Put(t *sim.Thread, item any) bool { s.onPut(); return true }
func (s sinkCounter) Close(t *sim.Thread)              {}

func TestWaitStrategyString(t *testing.T) {
	names := map[WaitStrategy]string{
		SlackNone: "none", SlackYield: "yield",
		SlackYieldButNotToMe: "yield-but-not-to-me", SlackSleep: "sleep",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
	if WaitStrategy(99).String() != "invalid" {
		t.Error("out-of-range strategy name")
	}
}

func TestButtonStateString(t *testing.T) {
	if ButtonGuarded.String() != "guarded" || ButtonArmed.String() != "armed" || ButtonState(9).String() != "invalid" {
		t.Fatal("button state names wrong")
	}
}

func TestDeviceQueueSingleConsumerPanics(t *testing.T) {
	w := testWorld(t, fastCfg())
	d := NewDeviceQueue(w, "dev")
	w.Spawn("c1", sim.PriorityNormal, func(th *sim.Thread) any {
		d.Get(th)
		return nil
	})
	second := w.Spawn("c2", sim.PriorityNormal, func(th *sim.Thread) any {
		th.Compute(vclock.Millisecond)
		d.Get(th) // second consumer: panics
		return nil
	})
	w.Run(vclock.Time(vclock.Second))
	if second.Err() == nil {
		t.Fatal("second consumer should have panicked")
	}
}

func TestLockSetUnknownMonitorPanics(t *testing.T) {
	w := testWorld(t, fastCfg())
	ls := NewLockSet(newTestMonitor(w, "A"))
	stranger := newTestMonitor(w, "B")
	th := w.Spawn("t", sim.PriorityNormal, func(th *sim.Thread) any {
		ls.Acquire(th, stranger)
		return nil
	})
	w.Run(vclock.Time(vclock.Second))
	if th.Err() == nil {
		t.Fatal("acquiring a monitor outside the set should panic")
	}
	th2 := w.Spawn("t2", sim.PriorityNormal, func(th *sim.Thread) any {
		ls.Release(th, stranger)
		return nil
	})
	w.Run(vclock.Time(2 * vclock.Second))
	if th2.Err() == nil {
		t.Fatal("releasing an unheld monitor should panic")
	}
}
