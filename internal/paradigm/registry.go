// Package paradigm implements the ten thread-usage paradigms that the
// paper identifies in Cedar and GVX (§4): defer work, general pumps,
// slack processes, sleepers, one-shots, deadlock avoiders, task
// rejuvenation, serializers, encapsulated forks and concurrency
// exploiters.
//
// Each paradigm is provided as a small, documented building block over
// the sim kernel and monitor package, and every instantiation registers
// itself with a Registry so that a world's static paradigm census — the
// paper's Table 4 — can be printed for any program built from these
// pieces.
package paradigm

import (
	"fmt"
	"runtime"

	"repro/internal/stats"
)

// Kind classifies a thread-usage paradigm (the paper's Table 4 rows).
type Kind int

// The ten paradigms, plus Unknown for threads that fit no category
// (Table 4 keeps an "Unknown or other" row too).
const (
	KindDeferWork Kind = iota
	KindGeneralPump
	KindSlackProcess
	KindSleeper
	KindOneShot
	KindDeadlockAvoid
	KindTaskRejuvenate
	KindSerializer
	KindEncapsulatedFork
	KindConcurrencyExploit
	KindUnknown
	NumKinds
)

var kindNames = [NumKinds]string{
	"Defer work",
	"General pumps",
	"Slack processes",
	"Sleepers",
	"Oneshots",
	"Deadlock avoidance",
	"Task rejuvenation",
	"Serializers",
	"Encapsulated fork",
	"Concurrency exploiters",
	"Unknown or other",
}

// String returns the paper's Table 4 row label for k.
func (k Kind) String() string {
	if k >= 0 && k < NumKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Registry counts paradigm uses as a static census in the paper's sense:
// what is counted is the distinct *code sites* that use each paradigm,
// not how many threads they dynamically create — the authors "examined
// about 650 different code fragments that create threads". Registering
// the same kind twice from the same source line counts once. A use may be
// registered under more than one kind ("threads may be counted in more
// than one category"), e.g. a PeriodicalProcess is both a Sleeper and an
// EncapsulatedFork. A nil *Registry is valid and counts nothing, so
// instrumentation can be left in place unconditionally.
type Registry struct {
	counts [NumKinds]int
	sites  map[siteKey]bool
}

type siteKey struct {
	kind Kind
	file string
	line int
}

// NewRegistry returns an empty census.
func NewRegistry() *Registry { return &Registry{sites: make(map[siteKey]bool)} }

// Register records one use of kind k, attributed to the caller's source
// location. Nil-safe.
func (r *Registry) Register(k Kind) { r.registerDepth(k, 3) }

// registerInternal attributes the use to the caller of the paradigm
// function that invoked it (one more frame up).
func (r *Registry) registerInternal(k Kind) { r.registerDepth(k, 4) }

func (r *Registry) registerDepth(k Kind, depth int) {
	if r == nil {
		return
	}
	if k < 0 || k >= NumKinds {
		panic(fmt.Sprintf("paradigm: invalid kind %d", int(k)))
	}
	// Key on file:line, not PC: the compiler duplicates inlined closure
	// bodies, so one source site can have several PCs.
	_, file, line, ok := runtime.Caller(depth - 1)
	if !ok {
		file, line = "?", 0
	}
	key := siteKey{kind: k, file: file, line: line}
	if r.sites[key] {
		return
	}
	if r.sites == nil {
		r.sites = make(map[siteKey]bool)
	}
	r.sites[key] = true
	r.counts[k]++
}

// Count returns the number of registered uses of k.
func (r *Registry) Count(k Kind) int {
	if r == nil || k < 0 || k >= NumKinds {
		return 0
	}
	return r.counts[k]
}

// Total returns the number of registered uses across all kinds.
func (r *Registry) Total() int {
	if r == nil {
		return 0
	}
	n := 0
	for _, c := range r.counts {
		n += c
	}
	return n
}

// Table renders the census in the shape of the paper's Table 4.
func (r *Registry) Table(title string) *stats.Table {
	t := stats.NewTable(title, "Paradigm", "Count", "%")
	total := r.Total()
	for k := Kind(0); k < NumKinds; k++ {
		c := r.Count(k)
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(c) / float64(total)
		}
		t.AddRowf("%s", k.String(), "%d", c, "%.0f%%", pct)
	}
	t.AddRowf("%s", "TOTAL", "%d", total, "%s", "100%")
	return t
}
