package paradigm

import (
	"repro/internal/sim"
	"repro/internal/vclock"
)

// MBQueue ("Menu/Button Queue") encapsulates the serializer paradigm of
// §4.6: "a queue and a thread that processes the work on the queue. The
// queue acts as a point of serialization in the system." Mouse clicks and
// keystrokes cause procedures to be enqueued for the context; the thread
// then calls the procedures in the order received. The paper notes this
// queue-plus-thread is the only paradigm in the Macintosh, Microsoft
// Windows and X programming models.
type MBQueue struct {
	w      *sim.World
	dev    *DeviceQueue
	thread *sim.Thread
	served int
}

// queued is one serialized work item.
type queued struct {
	fn   func(t *sim.Thread)
	cost vclock.Duration
}

// NewMBQueue creates a serialization context and forks its processing
// thread.
func NewMBQueue(w *sim.World, reg *Registry, name string, pri sim.Priority) *MBQueue {
	reg.registerInternal(KindSerializer)
	if pri == 0 {
		pri = sim.PriorityNormal
	}
	q := &MBQueue{w: w, dev: NewDeviceQueue(w, name+".q")}
	q.thread = w.Spawn(name, pri, func(t *sim.Thread) any {
		for {
			item, ok := q.dev.Get(t)
			if !ok {
				return q.served
			}
			work := item.(queued)
			t.Compute(work.cost)
			if work.fn != nil {
				work.fn(t)
			}
			q.served++
		}
	})
	return q
}

// Enqueue adds work from thread context; cost is CPU charged when it
// runs. Items are processed strictly in arrival order regardless of which
// context enqueued them.
func (q *MBQueue) Enqueue(t *sim.Thread, cost vclock.Duration, fn func(t *sim.Thread)) {
	_ = t // the enqueue itself is lock-free: the queue is single-consumer
	q.dev.Push(queued{fn: fn, cost: cost})
}

// EnqueueExternal adds work from driver context (an input event).
func (q *MBQueue) EnqueueExternal(cost vclock.Duration, fn func(t *sim.Thread)) {
	q.dev.Push(queued{fn: fn, cost: cost})
}

// Close shuts the serializer down once the queue drains.
func (q *MBQueue) Close() { q.dev.CloseDevice() }

// Served returns the number of procedures called so far.
func (q *MBQueue) Served() int { return q.served }

// Thread returns the serializing thread.
func (q *MBQueue) Thread() *sim.Thread { return q.thread }

// Backlog returns the number of items waiting in the context.
func (q *MBQueue) Backlog() int { return q.dev.Len() }
