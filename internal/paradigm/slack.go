package paradigm

import (
	"repro/internal/sim"
	"repro/internal/vclock"
)

// WaitStrategy selects how a slack process adds latency between noticing
// work and forwarding it, hoping more work arrives to merge (§5.2
// discusses why the choice is so delicate).
type WaitStrategy int

// The strategies contrasted in §5.2 and §6.3 of the paper.
const (
	// SlackNone forwards immediately: a plain pump, no slack at all.
	SlackNone WaitStrategy = iota
	// SlackYield does a plain YIELD after waking. When the slack thread
	// outranks its producer the scheduler chooses the slack thread right
	// back and no merging happens — the §5.2 bug.
	SlackYield
	// SlackYieldButNotToMe cedes the processor to the best other ready
	// thread until the end of the timeslice — the §5.2 fix, which makes
	// the scheduling quantum clock the batches (§6.3).
	SlackYieldButNotToMe
	// SlackSleep waits a fixed interval before forwarding. With PCR's
	// 50 ms timeout granularity the smallest real sleep is too long for
	// snappy echoing; §6.3 notes this would work with a ~20 ms quantum.
	SlackSleep
)

var strategyNames = [...]string{"none", "yield", "yield-but-not-to-me", "sleep"}

// String names the strategy.
func (s WaitStrategy) String() string {
	if int(s) < len(strategyNames) {
		return strategyNames[s]
	}
	return "invalid"
}

// SlackConfig parameterizes a slack process.
type SlackConfig struct {
	Name     string
	Priority sim.Priority // 0 means sim.PriorityHigh: the §5.2 buffer thread outranked its producers
	Strategy WaitStrategy
	// Slack is the SlackSleep interval (subject to the world's timeout
	// granularity, like any PCR sleep).
	Slack vclock.Duration
	// MaxBatch bounds how many items are gathered per flush; 0 = no bound.
	MaxBatch int
	// Merge reduces a gathered batch before forwarding, "either by
	// merging input or replacing earlier data with later data". Nil
	// forwards the batch unchanged.
	Merge func(batch []any) []any
	// PerItemWork is CPU charged per item gathered.
	PerItemWork vclock.Duration
}

// Slack is the §4.2/§5.2 slack process: a pump that deliberately adds
// latency "in the hope of reducing the total amount of work done",
// useful when the downstream consumer incurs high per-transaction costs
// (an X server round trip, in the paper's case).
type Slack struct {
	thread  *sim.Thread
	in      int // items gathered
	out     int // items forwarded after merging
	flushes int // downstream transactions
}

// StartSlack forks the slack-process thread moving items from src to dst
// until src closes, then closes dst.
func StartSlack(w *sim.World, reg *Registry, src Source, dst Sink, cfg SlackConfig) *Slack {
	reg.registerInternal(KindSlackProcess)
	if cfg.Priority == 0 {
		cfg.Priority = sim.PriorityHigh
	}
	if cfg.Name == "" {
		cfg.Name = "slack"
	}
	s := &Slack{}
	s.thread = w.Spawn(cfg.Name, cfg.Priority, func(t *sim.Thread) any {
		for {
			// Block for the first item of a batch.
			first, ok := src.Get(t)
			if !ok {
				dst.Close(t)
				return s.flushes
			}
			batch := []any{first}
			t.Compute(cfg.PerItemWork)

			// Add slack so the producer can get ahead of us.
			switch cfg.Strategy {
			case SlackYield:
				t.Yield()
			case SlackYieldButNotToMe:
				t.YieldButNotToMe()
			case SlackSleep:
				t.Sleep(cfg.Slack)
			}

			// Gather whatever accumulated.
			for cfg.MaxBatch <= 0 || len(batch) < cfg.MaxBatch {
				item, ok := src.TryGet(t)
				if !ok {
					break
				}
				batch = append(batch, item)
				t.Compute(cfg.PerItemWork)
			}
			s.in += len(batch)

			if cfg.Merge != nil {
				batch = cfg.Merge(batch)
			}
			for _, item := range batch {
				if !dst.Put(t, item) {
					return s.flushes
				}
			}
			s.out += len(batch)
			s.flushes++
		}
	})
	return s
}

// Thread returns the slack process's thread.
func (s *Slack) Thread() *sim.Thread { return s.thread }

// In returns the number of items gathered from upstream.
func (s *Slack) In() int { return s.in }

// Out returns the number of items forwarded downstream after merging.
func (s *Slack) Out() int { return s.out }

// Flushes returns the number of downstream transactions (batch sends).
func (s *Slack) Flushes() int { return s.flushes }

// MergeRatio returns In/Out — how many upstream items each forwarded item
// represents (1.0 means no merging happened).
func (s *Slack) MergeRatio() float64 {
	if s.out == 0 {
		return 0
	}
	return float64(s.in) / float64(s.out)
}
