package paradigm

import (
	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/vclock"
)

// DelayedFork calls fn on a fresh thread at some time in the future — the
// encapsulated one-shot of §4.8 ("although one-shots are common in our
// system, DelayedFork is only used in our window systems"). It counts as
// both a OneShot and an EncapsulatedFork in the census.
func DelayedFork(w *sim.World, reg *Registry, name string, delay vclock.Duration, fn func(t *sim.Thread)) *sim.Thread {
	reg.registerInternal(KindOneShot)
	reg.registerInternal(KindEncapsulatedFork)
	th := w.Spawn(name, sim.PriorityNormal, func(t *sim.Thread) any {
		t.Sleep(delay)
		fn(t)
		return nil
	})
	th.Detach()
	return th
}

// PeriodicalFork repeats a DelayedFork "over and over again at fixed
// intervals" (§4.8). It returns a stop function usable from driver or
// thread context; the sleeper notices the flag at its next activation.
func PeriodicalFork(w *sim.World, reg *Registry, name string, period vclock.Duration, fn func(t *sim.Thread)) (stop func()) {
	reg.registerInternal(KindOneShot)
	reg.registerInternal(KindEncapsulatedFork)
	reg.registerInternal(KindSleeper)
	stopped := false
	th := w.Spawn(name, sim.PriorityNormal, func(t *sim.Thread) any {
		for {
			t.Sleep(period)
			if stopped {
				return nil
			}
			fn(t)
		}
	})
	th.Detach()
	return func() { stopped = true }
}

// ButtonState is the visible state of a GuardedButton.
type ButtonState int

// Guarded-button states: a guarded button "must be pressed twice, in
// close, but not too close succession" (§4.3). They render as "Bu-tt-on"
// while guarded.
const (
	ButtonGuarded ButtonState = iota // renders "Bu-tt-on"
	ButtonArming                     // first click seen, arm delay running
	ButtonArmed                      // renders "Button"; second click fires
)

var buttonNames = [...]string{"guarded", "arming", "armed"}

// String names the state.
func (s ButtonState) String() string {
	if int(s) < len(buttonNames) {
		return buttonNames[s]
	}
	return "invalid"
}

// GuardedButton implements the paper's worked one-shot example: after the
// first click a one-shot thread sleeps an arming period (a second click
// during it is "too close" and ignored), then changes the appearance to
// "Button" and sleeps again; a click during this window invokes the
// action, and if the window expires the one-shot repaints the guard.
type GuardedButton struct {
	w   *sim.World
	reg *Registry
	m   *monitor.Monitor

	ArmDelay   vclock.Duration // "too close" window after the first click
	FireWindow vclock.Duration // how long the button stays armed

	state    ButtonState
	epoch    int // invalidates stale one-shots
	action   func(t *sim.Thread)
	fired    int
	repaints int
}

// NewGuardedButton creates a guarded button that runs action when fired.
func NewGuardedButton(w *sim.World, reg *Registry, name string, action func(t *sim.Thread)) *GuardedButton {
	return &GuardedButton{
		w:          w,
		reg:        reg,
		m:          monitor.New(w, name+".button"),
		ArmDelay:   200 * vclock.Millisecond,
		FireWindow: 2 * vclock.Second,
		action:     action,
	}
}

// State returns the button's current visible state.
func (b *GuardedButton) State() ButtonState { return b.state }

// Appearance returns the label a user would see.
func (b *GuardedButton) Appearance() string {
	if b.state == ButtonArmed {
		return "Button"
	}
	return "Bu-tt-on"
}

// Fired returns how many times the action ran.
func (b *GuardedButton) Fired() int { return b.fired }

// Repaints returns how many times the guard was repainted after an armed
// window expired unfired.
func (b *GuardedButton) Repaints() int { return b.repaints }

// Click delivers one mouse click from thread context.
func (b *GuardedButton) Click(t *sim.Thread) {
	b.m.Enter(t)
	defer b.m.Exit(t)
	switch b.state {
	case ButtonGuarded:
		b.state = ButtonArming
		b.epoch++
		epoch := b.epoch
		b.reg.registerInternal(KindOneShot)
		th := b.w.Spawn("guarded-button-oneshot", sim.PriorityNormal, func(os *sim.Thread) any {
			os.Sleep(b.ArmDelay)
			b.m.Enter(os)
			if b.epoch == epoch && b.state == ButtonArming {
				b.state = ButtonArmed // appearance becomes "Button"
			}
			b.m.Exit(os)
			os.Sleep(b.FireWindow)
			b.m.Enter(os)
			if b.epoch == epoch && b.state == ButtonArmed {
				b.state = ButtonGuarded // expired: repaint the guard
				b.repaints++
			}
			b.m.Exit(os)
			return nil
		})
		th.Detach()
	case ButtonArming:
		// Second click too close: ignored.
	case ButtonArmed:
		b.state = ButtonGuarded
		b.epoch++
		b.fired++
		b.action(t)
	}
}
