package paradigm

import (
	"fmt"

	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/vclock"
)

// A Scenario is a small, self-contained concurrent program with an
// invariant, built for systematic schedule exploration (package explore):
// the explorer runs it repeatedly under perturbed scheduler decisions and
// checks that the invariant holds on every legal interleaving, not just
// the default one. Scenarios are deliberately tiny — a handful of
// equal-priority threads and a few milliseconds of virtual time — so that
// hundreds of schedules fit in a test budget.
type Scenario struct {
	// Name identifies the scenario in replay tokens and CLI flags.
	Name string

	// Desc is a one-line description for listings.
	Desc string

	// Horizon bounds each run's virtual time. Every scenario is sized to
	// quiesce well before its horizon on any legal schedule, so a horizon
	// outcome generally indicates a stuck schedule.
	Horizon vclock.Duration

	// KnownBad marks a committed bug fixture: exploration is expected to
	// find a failing schedule (the §5.3 broken timeout-WAIT). The explore
	// test suite asserts these fail and all others pass.
	KnownBad bool

	// Build constructs the world and its invariants. It must pass cfg
	// through to sim.NewWorld unchanged except for scenario-specific
	// fields (SystemDaemon, MaxThreads, fault hooks): the Seed, Trace and
	// OnSchedule fields belong to the explorer. Implementations may first
	// let a fault injector mutate cfg (fault.Injector.Configure).
	Build func(cfg sim.Config) (*sim.World, *ScenarioHooks)
}

// ScenarioHooks is what a scenario exposes for invariant checking after a
// run completes (and before the world is shut down).
type ScenarioHooks struct {
	// Monitors lists the monitors whose internal queues oracles may
	// inspect (exclusion end-state, deadlock-set soundness).
	Monitors []*monitor.Monitor

	// Oracles names the library oracles (package explore) to apply; nil
	// selects the explorer's default set. Scenarios using Hoare signalling
	// or metalocks must omit "fifo" (urgent-queue handoff is LIFO by
	// design), and scenarios with boosts or the SystemDaemon must omit
	// "strict-priority" (donation runs low-priority threads on purpose).
	Oracles []string

	// Check is the scenario-specific invariant, evaluated after the run
	// with the world still inspectable. A nil Check means the library
	// oracles are the whole contract.
	Check func(w *sim.World, out sim.Outcome) error
}

var (
	scenarioList  []Scenario
	scenarioIndex = map[string]int{}
)

// RegisterScenario adds a scenario to the global registry. Registration
// order is preserved — listings and exploration sweeps are deterministic —
// and duplicate names panic, since a replay token must name exactly one
// scenario.
func RegisterScenario(s Scenario) {
	if s.Name == "" || s.Build == nil {
		panic("paradigm: scenario needs a name and a Build function")
	}
	if _, dup := scenarioIndex[s.Name]; dup {
		panic(fmt.Sprintf("paradigm: duplicate scenario %q", s.Name))
	}
	if s.Horizon <= 0 {
		s.Horizon = 2 * vclock.Second
	}
	scenarioIndex[s.Name] = len(scenarioList)
	scenarioList = append(scenarioList, s)
}

// Scenarios returns every registered scenario in registration order.
func Scenarios() []Scenario {
	out := make([]Scenario, len(scenarioList))
	copy(out, scenarioList)
	return out
}

// ScenarioByName looks up a registered scenario.
func ScenarioByName(name string) (Scenario, bool) {
	i, ok := scenarioIndex[name]
	if !ok {
		return Scenario{}, false
	}
	return scenarioList[i], true
}

// The built-in scenarios cover each paradigm family the paper's systems
// were built from, plus one committed bug fixture. Oracle name strings
// are owned by package explore; they are spelled out here (rather than
// imported) because explore depends on this package.
func init() {
	ms := vclock.Millisecond
	us := vclock.Microsecond

	// pump-chain: §4.2's pipeline backbone — producer → buffer → pump →
	// buffer → consumer, all at one priority. Items must arrive complete
	// and in order under every interleaving.
	RegisterScenario(Scenario{
		Name:    "pump-chain",
		Desc:    "producer→pump→consumer over two bounded buffers; order preserved (§4.2)",
		Horizon: 2 * vclock.Second,
		Build: func(cfg sim.Config) (*sim.World, *ScenarioHooks) {
			w := sim.NewWorld(cfg)
			b1 := NewBuffer(w, "stage1", 2)
			b2 := NewBuffer(w, "stage2", 2)
			StartPump(w, nil, b1, b2, PumpConfig{Name: "pump", Work: 300 * us})
			const n = 8
			w.Spawn("producer", sim.PriorityNormal, func(t *sim.Thread) any {
				for i := 0; i < n; i++ {
					t.Compute(200 * us)
					b1.Put(t, i)
				}
				b1.Close(t)
				return nil
			})
			var got []int
			w.Spawn("consumer", sim.PriorityNormal, func(t *sim.Thread) any {
				for {
					v, ok := b2.Get(t)
					if !ok {
						return nil
					}
					t.Compute(100 * us)
					got = append(got, v.(int))
				}
			})
			return w, &ScenarioHooks{
				Monitors: []*monitor.Monitor{b1.Monitor(), b2.Monitor()},
				Oracles:  []string{"exclusion", "lost-wakeup", "fifo", "deadlock-sound"},
				Check: func(w *sim.World, out sim.Outcome) error {
					if out != sim.OutcomeQuiescent {
						return fmt.Errorf("outcome %v, want quiescent", out)
					}
					if len(got) != n {
						return fmt.Errorf("consumed %d of %d items", len(got), n)
					}
					for i, v := range got {
						if v != i {
							return fmt.Errorf("item %d arrived as %d: order broken", i, v)
						}
					}
					return nil
				},
			}
		},
	})

	// bounded-buffer: two producers and two consumers contending on a
	// capacity-1 buffer — the densest monitor/CV traffic in the set.
	RegisterScenario(Scenario{
		Name:    "bounded-buffer",
		Desc:    "2 producers + 2 consumers on a capacity-1 buffer; nothing lost or duplicated",
		Horizon: 2 * vclock.Second,
		Build: func(cfg sim.Config) (*sim.World, *ScenarioHooks) {
			w := sim.NewWorld(cfg)
			buf := NewBuffer(w, "box", 1)
			const perProducer = 6
			producersLeft := 2
			for p := 0; p < 2; p++ {
				p := p
				w.Spawn(fmt.Sprintf("producer-%d", p), sim.PriorityNormal, func(t *sim.Thread) any {
					for i := 0; i < perProducer; i++ {
						t.Compute(300 * us)
						buf.Put(t, p*perProducer+i)
					}
					producersLeft--
					if producersLeft == 0 {
						buf.Close(t)
					}
					return nil
				})
			}
			var sum, count int
			for c := 0; c < 2; c++ {
				w.Spawn(fmt.Sprintf("consumer-%d", c), sim.PriorityNormal, func(t *sim.Thread) any {
					for {
						v, ok := buf.Get(t)
						if !ok {
							return nil
						}
						t.Compute(200 * us)
						sum += v.(int)
						count++
					}
				})
			}
			return w, &ScenarioHooks{
				Monitors: []*monitor.Monitor{buf.Monitor()},
				Oracles:  []string{"exclusion", "lost-wakeup", "fifo", "deadlock-sound"},
				Check: func(w *sim.World, out sim.Outcome) error {
					if out != sim.OutcomeQuiescent {
						return fmt.Errorf("outcome %v, want quiescent", out)
					}
					const n = 2 * perProducer
					if count != n || sum != n*(n-1)/2 {
						return fmt.Errorf("consumed %d items summing %d, want %d summing %d", count, sum, n, n*(n-1)/2)
					}
					return nil
				},
			}
		},
	})

	// serializer: three clients racing actions into an MBQueue (§4.7's
	// window-system serializer); every action runs exactly once.
	RegisterScenario(Scenario{
		Name:    "serializer",
		Desc:    "3 clients × 4 actions through an MBQueue serializer; all served (§4.7)",
		Horizon: vclock.Second,
		Build: func(cfg sim.Config) (*sim.World, *ScenarioHooks) {
			w := sim.NewWorld(cfg)
			q := NewMBQueue(w, nil, "events", sim.PriorityNormal)
			var ran int
			clientsLeft := 3
			for c := 0; c < 3; c++ {
				w.Spawn(fmt.Sprintf("client-%d", c), sim.PriorityNormal, func(t *sim.Thread) any {
					for i := 0; i < 4; i++ {
						t.Compute(150 * us)
						q.Enqueue(t, 200*us, func(*sim.Thread) { ran++ })
					}
					clientsLeft--
					if clientsLeft == 0 {
						q.Close()
					}
					return nil
				})
			}
			return w, &ScenarioHooks{
				Oracles: []string{"exclusion", "lost-wakeup", "deadlock-sound"},
				Check: func(w *sim.World, out sim.Outcome) error {
					if out != sim.OutcomeQuiescent {
						return fmt.Errorf("outcome %v, want quiescent", out)
					}
					if ran != 12 || q.Served() != 12 {
						return fmt.Errorf("served %d actions (ran %d), want 12", q.Served(), ran)
					}
					return nil
				},
			}
		},
	})

	// work-queue: the §4.1 defer-work paradigm; two callers hand closures
	// to a shared background worker.
	RegisterScenario(Scenario{
		Name:    "work-queue",
		Desc:    "2 callers defer 5 tasks each to a work queue; all run (§4.1)",
		Horizon: vclock.Second,
		Build: func(cfg sim.Config) (*sim.World, *ScenarioHooks) {
			w := sim.NewWorld(cfg)
			q := NewWorkQueue(w, nil, "background", sim.PriorityNormal)
			var ran int
			left := 2
			for c := 0; c < 2; c++ {
				w.Spawn(fmt.Sprintf("caller-%d", c), sim.PriorityNormal, func(t *sim.Thread) any {
					for i := 0; i < 5; i++ {
						t.Compute(100 * us)
						q.Add(t, func(wt *sim.Thread) {
							wt.Compute(150 * us)
							ran++
						})
					}
					left--
					if left == 0 {
						q.Close(t)
					}
					return nil
				})
			}
			return w, &ScenarioHooks{
				Oracles: []string{"exclusion", "lost-wakeup", "deadlock-sound"},
				Check: func(w *sim.World, out sim.Outcome) error {
					if out != sim.OutcomeQuiescent {
						return fmt.Errorf("outcome %v, want quiescent", out)
					}
					if ran != 10 || q.Served() != 10 {
						return fmt.Errorf("served %d tasks (ran %d), want 10", q.Served(), ran)
					}
					return nil
				},
			}
		},
	})

	// device-pump: a Notifier draining a device queue and forking one
	// equal-priority transient per event (§3's keystroke echo shape).
	RegisterScenario(Scenario{
		Name:    "device-pump",
		Desc:    "notifier forks a transient per device event; every event echoed (§3)",
		Horizon: vclock.Second,
		Build: func(cfg sim.Config) (*sim.World, *ScenarioHooks) {
			w := sim.NewWorld(cfg)
			dev := NewDeviceQueue(w, "keyboard")
			const n = 10
			for i := 0; i < n; i++ {
				w.At(vclock.Time(vclock.Duration(i+1)*10*ms), func() { dev.Push(i) })
			}
			w.At(vclock.Time((n+2)*10*ms), dev.CloseDevice)
			var echoed int
			w.Spawn("notifier", sim.PriorityNormal, func(t *sim.Thread) any {
				for {
					_, ok := dev.Get(t)
					if !ok {
						return nil
					}
					child := t.Fork("echo", func(c *sim.Thread) any {
						c.Compute(500 * us)
						echoed++
						return nil
					})
					child.Detach()
				}
			})
			return w, &ScenarioHooks{
				Oracles: []string{"exclusion", "lost-wakeup", "deadlock-sound"},
				Check: func(w *sim.World, out sim.Outcome) error {
					if out != sim.OutcomeQuiescent {
						return fmt.Errorf("outcome %v, want quiescent", out)
					}
					if echoed != n {
						return fmt.Errorf("echoed %d of %d events", echoed, n)
					}
					return nil
				},
			}
		},
	})

	// guarded-button: §4.3's worked one-shot example under racing double
	// clicks from two mice; exactly one action may fire.
	RegisterScenario(Scenario{
		Name:    "guarded-button",
		Desc:    "two mice double-click one guarded button; the action fires exactly once (§4.3)",
		Horizon: 4 * vclock.Second,
		Build: func(cfg sim.Config) (*sim.World, *ScenarioHooks) {
			w := sim.NewWorld(cfg)
			b := NewGuardedButton(w, nil, "panic", func(*sim.Thread) {})
			for c := 0; c < 2; c++ {
				w.Spawn(fmt.Sprintf("mouse-%d", c), sim.PriorityNormal, func(t *sim.Thread) any {
					b.Click(t)
					t.Sleep(300 * ms) // past the 200 ms arm delay
					b.Click(t)
					return nil
				})
			}
			return w, &ScenarioHooks{
				Oracles: []string{"exclusion", "lost-wakeup", "deadlock-sound"},
				Check: func(w *sim.World, out sim.Outcome) error {
					if out != sim.OutcomeQuiescent {
						return fmt.Errorf("outcome %v, want quiescent", out)
					}
					if b.Fired() != 1 {
						return fmt.Errorf("action fired %d times, want exactly 1", b.Fired())
					}
					if b.State() != ButtonGuarded {
						return fmt.Errorf("final state %v, want guarded", b.State())
					}
					return nil
				},
			}
		},
	})

	// broadcast-barrier: N-way rendezvous; BROADCAST must release every
	// waiter exactly once regardless of arrival order.
	RegisterScenario(Scenario{
		Name:    "broadcast-barrier",
		Desc:    "4 threads rendezvous; the last one's BROADCAST releases all",
		Horizon: vclock.Second,
		Build: func(cfg sim.Config) (*sim.World, *ScenarioHooks) {
			w := sim.NewWorld(cfg)
			m := monitor.New(w, "barrier")
			cv := m.NewCond("barrier.full")
			const n = 4
			arrived, released := 0, 0
			for i := 0; i < n; i++ {
				w.Spawn(fmt.Sprintf("party-%d", i), sim.PriorityNormal, func(t *sim.Thread) any {
					t.Compute(vclock.Duration(100+50*i) * us)
					m.With(t, func() {
						arrived++
						if arrived == n {
							cv.Broadcast(t)
						} else {
							for arrived < n {
								cv.Wait(t)
							}
						}
						released++
					})
					return nil
				})
			}
			return w, &ScenarioHooks{
				Monitors: []*monitor.Monitor{m},
				Oracles:  []string{"exclusion", "lost-wakeup", "fifo", "deadlock-sound"},
				Check: func(w *sim.World, out sim.Outcome) error {
					if out != sim.OutcomeQuiescent {
						return fmt.Errorf("outcome %v, want quiescent", out)
					}
					if released != n {
						return fmt.Errorf("%d of %d parties released", released, n)
					}
					return nil
				},
			}
		},
	})

	// ping-pong: strict alternation through two CVs; the canonical
	// WAIT-in-a-loop handoff.
	RegisterScenario(Scenario{
		Name:    "ping-pong",
		Desc:    "two threads alternate turns via NOTIFY; 6 rounds each",
		Horizon: 2 * vclock.Second,
		Build: func(cfg sim.Config) (*sim.World, *ScenarioHooks) {
			w := sim.NewWorld(cfg)
			m := monitor.New(w, "turnstile")
			cvPing := m.NewCond("turnstile.ping")
			cvPong := m.NewCond("turnstile.pong")
			turn := "ping"
			rounds := 0
			const each = 6
			player := func(me, next string, myCV, nextCV *monitor.Cond) func(t *sim.Thread) any {
				return func(t *sim.Thread) any {
					for i := 0; i < each; i++ {
						m.With(t, func() {
							for turn != me {
								myCV.Wait(t)
							}
							rounds++
							turn = next
							nextCV.Notify(t)
						})
					}
					return nil
				}
			}
			w.Spawn("ping", sim.PriorityNormal, player("ping", "pong", cvPing, cvPong))
			w.Spawn("pong", sim.PriorityNormal, player("pong", "ping", cvPong, cvPing))
			return w, &ScenarioHooks{
				Monitors: []*monitor.Monitor{m},
				Oracles:  []string{"exclusion", "lost-wakeup", "fifo", "deadlock-sound"},
				Check: func(w *sim.World, out sim.Outcome) error {
					if out != sim.OutcomeQuiescent {
						return fmt.Errorf("outcome %v, want quiescent", out)
					}
					if rounds != 2*each {
						return fmt.Errorf("completed %d rounds, want %d", rounds, 2*each)
					}
					return nil
				},
			}
		},
	})

	// hoare-handoff: under Hoare signalling (§2) the signalled condition
	// is guaranteed on WAIT return, so the IF-waits here — bugs under
	// Mesa, per §5.3 — must be correct on every schedule.
	RegisterScenario(Scenario{
		Name:    "hoare-handoff",
		Desc:    "single-slot handoff with IF-waits under Hoare signalling; correct by §2",
		Horizon: vclock.Second,
		Build: func(cfg sim.Config) (*sim.World, *ScenarioHooks) {
			w := sim.NewWorld(cfg)
			m := monitor.NewWithOptions(w, "slot", monitor.Options{HoareSignal: true})
			cvFull := m.NewCond("slot.full")
			cvEmpty := m.NewCond("slot.empty")
			full := false
			val := 0
			var got []int
			const n = 5
			w.Spawn("producer", sim.PriorityNormal, func(t *sim.Thread) any {
				for i := 0; i < n; i++ {
					t.Compute(200 * us)
					m.With(t, func() {
						if full {
							cvEmpty.Wait(t) // waitcheck:ignore — IF is correct under Hoare signalling (§2)
						}
						val, full = i, true
						cvFull.Notify(t)
					})
				}
				return nil
			})
			w.Spawn("consumer", sim.PriorityNormal, func(t *sim.Thread) any {
				for i := 0; i < n; i++ {
					m.With(t, func() {
						if !full {
							cvFull.Wait(t) // waitcheck:ignore — IF is correct under Hoare signalling (§2)
						}
						got = append(got, val)
						full = false
						cvEmpty.Notify(t)
					})
					t.Compute(150 * us)
				}
				return nil
			})
			return w, &ScenarioHooks{
				Monitors: []*monitor.Monitor{m},
				// No "fifo": Hoare urgent-queue handoff is LIFO by design.
				Oracles: []string{"exclusion", "lost-wakeup", "deadlock-sound"},
				Check: func(w *sim.World, out sim.Outcome) error {
					if out != sim.OutcomeQuiescent {
						return fmt.Errorf("outcome %v, want quiescent", out)
					}
					if len(got) != n {
						return fmt.Errorf("consumed %d of %d values", len(got), n)
					}
					for i, v := range got {
						if v != i {
							return fmt.Errorf("slot %d delivered %d: Hoare handoff broke", i, v)
						}
					}
					return nil
				},
			}
		},
	})

	// priority-ladder: threads on three levels with no locks shared across
	// them; strict-priority dispatch must hold on every explored schedule
	// (every OnSchedule candidate set is one priority by construction).
	RegisterScenario(Scenario{
		Name:    "priority-ladder",
		Desc:    "high/normal/low compute mix; a runnable higher priority never starves",
		Horizon: vclock.Second,
		Build: func(cfg sim.Config) (*sim.World, *ScenarioHooks) {
			w := sim.NewWorld(cfg)
			w.Spawn("hi", sim.PriorityHigh, func(t *sim.Thread) any {
				for i := 0; i < 20; i++ {
					t.BlockIO(5 * ms)
					t.Compute(1 * ms)
				}
				return nil
			})
			for i := 0; i < 2; i++ {
				w.Spawn(fmt.Sprintf("mid-%d", i), sim.PriorityNormal, func(t *sim.Thread) any {
					for j := 0; j < 30; j++ {
						t.Compute(3 * ms)
					}
					return nil
				})
			}
			var lowDone bool
			w.Spawn("low", sim.PriorityLow, func(t *sim.Thread) any {
				for j := 0; j < 20; j++ {
					t.Compute(2 * ms)
				}
				lowDone = true
				return nil
			})
			return w, &ScenarioHooks{
				Oracles: []string{"exclusion", "strict-priority", "deadlock-sound"},
				Check: func(w *sim.World, out sim.Outcome) error {
					if out != sim.OutcomeQuiescent {
						return fmt.Errorf("outcome %v, want quiescent", out)
					}
					if !lowDone {
						return fmt.Errorf("low-priority thread never finished")
					}
					return nil
				},
			}
		},
	})

	// lock-ladder: two threads taking two monitors through a LockSet's
	// ordering discipline (§4.6); deadlock must be impossible.
	RegisterScenario(Scenario{
		Name:    "lock-ladder",
		Desc:    "2 threads × 2 monitors under LockSet ordering; no schedule deadlocks (§4.6)",
		Horizon: vclock.Second,
		Build: func(cfg sim.Config) (*sim.World, *ScenarioHooks) {
			w := sim.NewWorld(cfg)
			ma := monitor.New(w, "outer")
			mb := monitor.New(w, "inner")
			ls := NewLockSet(ma, mb)
			var crossings int
			for i := 0; i < 2; i++ {
				w.Spawn(fmt.Sprintf("climber-%d", i), sim.PriorityNormal, func(t *sim.Thread) any {
					for j := 0; j < 3; j++ {
						ls.Acquire(t, ma)
						ls.Acquire(t, mb)
						t.Compute(300 * us)
						crossings++
						ls.Release(t, mb)
						ls.Release(t, ma)
					}
					return nil
				})
			}
			return w, &ScenarioHooks{
				Monitors: []*monitor.Monitor{ma, mb},
				Oracles:  []string{"exclusion", "fifo", "deadlock-sound"},
				Check: func(w *sim.World, out sim.Outcome) error {
					if out != sim.OutcomeQuiescent {
						return fmt.Errorf("outcome %v, want quiescent", out)
					}
					if crossings != 6 {
						return fmt.Errorf("%d lock crossings, want 6", crossings)
					}
					return nil
				},
			}
		},
	})

	// fork-burst: §4.9 concurrency exploitation — fork four equal-priority
	// workers and join them all; no result may be lost.
	RegisterScenario(Scenario{
		Name:    "fork-burst",
		Desc:    "parent forks 4 workers and joins all; every result arrives (§4.9)",
		Horizon: vclock.Second,
		Build: func(cfg sim.Config) (*sim.World, *ScenarioHooks) {
			w := sim.NewWorld(cfg)
			const n = 4
			results := make([]int, n)
			var forkErr error
			w.Spawn("parent", sim.PriorityNormal, func(t *sim.Thread) any {
				forkErr = ParallelDo(nil, t, "worker", n, func(wt *sim.Thread, i int) {
					wt.Compute(vclock.Duration(200+100*i) * us)
					results[i] = i + 1
				})
				return nil
			})
			return w, &ScenarioHooks{
				Oracles: []string{"exclusion", "deadlock-sound"},
				Check: func(w *sim.World, out sim.Outcome) error {
					if out != sim.OutcomeQuiescent {
						return fmt.Errorf("outcome %v, want quiescent", out)
					}
					if forkErr != nil {
						return fmt.Errorf("ParallelDo: %v", forkErr)
					}
					for i, v := range results {
						if v != i+1 {
							return fmt.Errorf("worker %d result %d lost", i, v)
						}
					}
					return nil
				},
			}
		},
	})

	// timeout-rescue: the CORRECT §5.3 pattern — a timed WAIT inside a
	// WHILE loop. Timeouts may fire on adversarial schedules, but the loop
	// re-checks the condition, so the item is always consumed. This is the
	// healthy twin of the broken-timeout-wait fixture below.
	RegisterScenario(Scenario{
		Name:    "timeout-rescue",
		Desc:    "timed WAIT in a WHILE loop survives any schedule (§5.3, done right)",
		Horizon: 2 * vclock.Second,
		Build: func(cfg sim.Config) (*sim.World, *ScenarioHooks) {
			w := sim.NewWorld(cfg)
			m := monitor.New(w, "mailbox")
			cv := m.NewCondTimeout("mailbox.ready", 50*ms)
			ready, consumed := false, false
			w.Spawn("consumer", sim.PriorityNormal, func(t *sim.Thread) any {
				m.With(t, func() {
					for !ready {
						cv.Wait(t) // timeout → loop re-checks: always safe
					}
					consumed = true
				})
				return nil
			})
			w.Spawn("producer", sim.PriorityNormal, func(t *sim.Thread) any {
				t.Compute(60 * ms)
				m.With(t, func() {
					ready = true
					cv.Notify(t)
				})
				return nil
			})
			w.Spawn("decoy", sim.PriorityNormal, func(t *sim.Thread) any {
				t.Compute(60 * ms)
				return nil
			})
			return w, &ScenarioHooks{
				Monitors: []*monitor.Monitor{m},
				Oracles:  []string{"exclusion", "lost-wakeup", "fifo", "deadlock-sound"},
				Check: func(w *sim.World, out sim.Outcome) error {
					if out != sim.OutcomeQuiescent {
						return fmt.Errorf("outcome %v, want quiescent", out)
					}
					if !consumed {
						return fmt.Errorf("item produced but never consumed")
					}
					return nil
				},
			}
		},
	})

	// broken-timeout-wait: the committed §5.3 bug fixture. The consumer
	// uses IF instead of WHILE and trusts its timeout as "no data coming" —
	// exactly the deleted-NOTIFY/timeout-mistake family the paper's
	// maintainers kept finding. On the default schedule the NOTIFY lands
	// inside the 100 ms window (or rescues a racing timeout) and the run
	// passes; exploration must find the schedule where the consumer burns
	// its timeout while producer and decoy hold the CPU, gives up, and the
	// produced item is lost forever.
	RegisterScenario(Scenario{
		Name:     "broken-timeout-wait",
		Desc:     "IF-wait trusts its timeout (§5.3 bug); exploration must find the losing schedule",
		Horizon:  2 * vclock.Second,
		KnownBad: true,
		Build: func(cfg sim.Config) (*sim.World, *ScenarioHooks) {
			w := sim.NewWorld(cfg)
			m := monitor.New(w, "mailbox")
			cv := m.NewCondTimeout("mailbox.ready", 100*ms)
			ready, consumed, gaveUp := false, false, false
			w.Spawn("consumer", sim.PriorityNormal, func(t *sim.Thread) any {
				m.With(t, func() {
					if !ready {
						cv.Wait(t) // waitcheck:ignore — BUG on purpose: IF, not WHILE, timeout trusted; the explorer must catch it
					}
					if ready {
						consumed = true
					} else {
						gaveUp = true // "the timeout fired, so no data is coming"
					}
				})
				return nil
			})
			w.Spawn("producer", sim.PriorityNormal, func(t *sim.Thread) any {
				t.Compute(60 * ms)
				m.With(t, func() {
					ready = true
					cv.Notify(t)
				})
				return nil
			})
			w.Spawn("decoy", sim.PriorityNormal, func(t *sim.Thread) any {
				t.Compute(60 * ms)
				return nil
			})
			return w, &ScenarioHooks{
				Monitors: []*monitor.Monitor{m},
				Oracles:  []string{"exclusion", "lost-wakeup", "fifo", "deadlock-sound"},
				Check: func(w *sim.World, out sim.Outcome) error {
					if out != sim.OutcomeQuiescent {
						return fmt.Errorf("outcome %v, want quiescent", out)
					}
					if !consumed {
						return fmt.Errorf("produced item lost: consumer gave up on its timeout (gaveUp=%v)", gaveUp)
					}
					return nil
				},
			}
		},
	})
}
