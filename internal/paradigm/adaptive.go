package paradigm

import "repro/internal/vclock"

// AdaptiveTimeout implements the future-work idea of §5.5: the authors
// found "many instances of timeouts and pauses with ridiculous values
// ... presumably chosen with some particular now-obsolete processor
// speed or network architecture in mind" and suggested that "dynamically
// tuning application timeout values based on end-to-end system
// performance may be a workable solution."
//
// It maintains an exponentially weighted moving average of observed
// response times and proposes a timeout of Margin times that average,
// clamped to [Min, Max]. The zero value is not usable; use
// NewAdaptiveTimeout.
type AdaptiveTimeout struct {
	// Margin is the safety multiplier over the estimated response time.
	Margin float64
	// Min and Max clamp the proposed timeout.
	Min, Max vclock.Duration
	// Gain is the EWMA weight of each new observation (0 < Gain <= 1).
	Gain float64

	est      float64 // EWMA of observed response times, in microseconds
	observed int
}

// NewAdaptiveTimeout returns an estimator seeded with an initial guess
// (the value a fixed-timeout implementation would have hardcoded).
func NewAdaptiveTimeout(initial vclock.Duration) *AdaptiveTimeout {
	return &AdaptiveTimeout{
		Margin: 2.0,
		Min:    vclock.Millisecond,
		Max:    10 * vclock.Second,
		Gain:   0.25,
		est:    float64(initial),
	}
}

// Observe feeds one measured end-to-end response time.
func (a *AdaptiveTimeout) Observe(d vclock.Duration) {
	if d < 0 {
		d = 0
	}
	a.est += a.Gain * (float64(d) - a.est)
	a.observed++
}

// ObserveTimeout feeds a wait that expired unanswered at the current
// timeout: the true response time is at least that long, so the estimate
// grows multiplicatively (the classic RTO backoff shape).
func (a *AdaptiveTimeout) ObserveTimeout() {
	a.est *= 1.5
	if max := float64(a.Max); a.est > max {
		a.est = max
	}
	a.observed++
}

// Next returns the timeout to use for the next wait.
func (a *AdaptiveTimeout) Next() vclock.Duration {
	d := vclock.Duration(a.Margin * a.est)
	if d < a.Min {
		d = a.Min
	}
	if d > a.Max {
		d = a.Max
	}
	return d
}

// Estimate returns the current response-time estimate.
func (a *AdaptiveTimeout) Estimate() vclock.Duration { return vclock.Duration(a.est) }

// Observations returns how many samples have been fed.
func (a *AdaptiveTimeout) Observations() int { return a.observed }
