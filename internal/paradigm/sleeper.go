package paradigm

import (
	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/vclock"
)

// Sleeper is the §4.3 paradigm: a thread that "repeatedly waits for a
// triggering event and then executes". The trigger is usually a timeout
// (cache sweeps, cursor blinks, connection-timeout checks) but can also
// be an explicit poke (service callbacks queued by the GC or filesystem).
// Sleepers are why idle Cedar/GVX systems still wait on CVs ~120/30
// times a second with most waits timing out (Table 2).
type Sleeper struct {
	w       *sim.World
	m       *monitor.Monitor
	trigger *monitor.Cond
	thread  *sim.Thread
	stopped bool
	pending int // pokes not yet consumed
	runs    int
	fires   int // runs caused by a poke rather than a timeout
}

// StartSleeper forks a sleeper thread that runs fn every period, or
// sooner when Poke'd. fn runs outside the sleeper's monitor. A period of
// 0 makes the sleeper purely event-driven.
func StartSleeper(w *sim.World, reg *Registry, name string, pri sim.Priority, period vclock.Duration, fn func(t *sim.Thread)) *Sleeper {
	reg.registerInternal(KindSleeper)
	if pri == 0 {
		pri = sim.PriorityNormal
	}
	s := &Sleeper{w: w}
	s.m = monitor.New(w, name+".mon")
	s.trigger = s.m.NewCondTimeout(name+".trigger", period)
	s.thread = w.Spawn(name, pri, func(t *sim.Thread) any {
		for {
			s.m.Enter(t)
			// The §5.3 law: WAIT in a loop that re-checks the condition.
			// A timed-out wait is itself a trigger for a periodic sleeper.
			timedOut := false
			for s.pending == 0 && !s.stopped && !timedOut {
				timedOut = s.trigger.Wait(t)
			}
			if s.stopped {
				s.m.Exit(t)
				return s.runs
			}
			poked := s.pending > 0
			if poked {
				s.pending--
			}
			s.m.Exit(t)
			s.runs++
			if poked {
				s.fires++
			}
			fn(t)
		}
	})
	return s
}

// Poke triggers the sleeper from another thread before its timeout.
func (s *Sleeper) Poke(t *sim.Thread) {
	s.m.Enter(t)
	s.pending++
	s.trigger.Notify(t)
	s.m.Exit(t)
}

// PokeExternal triggers the sleeper from driver context (a device event).
// A waiting sleeper is notified (its wait counts as notified, not timed
// out); a mid-cycle sleeper just has the poke recorded for its next
// check.
func (s *Sleeper) PokeExternal() {
	s.pending++
	s.trigger.NotifyExternal()
}

// Stop makes the sleeper exit after its current cycle.
func (s *Sleeper) Stop(t *sim.Thread) {
	s.m.Enter(t)
	s.stopped = true
	s.trigger.Notify(t)
	s.m.Exit(t)
}

// Thread returns the sleeper's thread.
func (s *Sleeper) Thread() *sim.Thread { return s.thread }

// Runs returns how many times the body has executed.
func (s *Sleeper) Runs() int { return s.runs }

// Fires returns how many runs were poke-driven rather than timeouts.
func (s *Sleeper) Fires() int { return s.fires }

// PeriodicalProcess encapsulates the timeout-driven sleeper exactly as
// Cedar's PeriodicalProcess module did (§5.1: sleeper encapsulations
// that keep "the little bit of state necessary between activations" in a
// closure instead of a 100-kilobyte thread stack). It counts as both a
// Sleeper and an EncapsulatedFork in the census.
func PeriodicalProcess(w *sim.World, reg *Registry, name string, period vclock.Duration, fn func(t *sim.Thread)) *Sleeper {
	reg.registerInternal(KindEncapsulatedFork)
	return StartSleeper(w, reg, name, sim.PriorityNormal, period, fn)
}

// WorkQueue is the callback-servicing sleeper of §4.3: clients enqueue
// work "removed from time-critical paths in the garbage collector and
// filesystem", and the client's code is then called from the sleeper.
type WorkQueue struct {
	buf     *Buffer
	sleeper *sim.Thread
	reg     *Registry
	served  int
}

// NewWorkQueue forks the servicing thread.
func NewWorkQueue(w *sim.World, reg *Registry, name string, pri sim.Priority) *WorkQueue {
	reg.registerInternal(KindSleeper)
	if pri == 0 {
		pri = sim.PriorityNormal
	}
	q := &WorkQueue{buf: NewBuffer(w, name+".q", 0), reg: reg}
	q.sleeper = w.Spawn(name, pri, func(t *sim.Thread) any {
		for {
			item, ok := q.buf.Get(t)
			if !ok {
				return q.served
			}
			item.(func(*sim.Thread))(t)
			q.served++
		}
	})
	return q
}

// Add enqueues fn to be called from the servicing thread.
func (q *WorkQueue) Add(t *sim.Thread, fn func(*sim.Thread)) {
	q.buf.Put(t, fn)
}

// Close shuts the queue down after draining.
func (q *WorkQueue) Close(t *sim.Thread) { q.buf.Close(t) }

// Served returns the number of callbacks run.
func (q *WorkQueue) Served() int { return q.served }

// Thread returns the servicing thread.
func (q *WorkQueue) Thread() *sim.Thread { return q.sleeper }
