package paradigm

import (
	"testing"
	"testing/quick"

	"repro/internal/vclock"
)

func TestAdaptiveTimeoutConverges(t *testing.T) {
	a := NewAdaptiveTimeout(10 * vclock.Millisecond)
	// Feed a steady 100ms response time; the estimate should converge
	// and Next should propose ~200ms (2x margin).
	for i := 0; i < 50; i++ {
		a.Observe(100 * vclock.Millisecond)
	}
	est := a.Estimate()
	if est < 95*vclock.Millisecond || est > 105*vclock.Millisecond {
		t.Fatalf("estimate = %v, want ~100ms", est)
	}
	next := a.Next()
	if next < 190*vclock.Millisecond || next > 210*vclock.Millisecond {
		t.Fatalf("Next = %v, want ~200ms", next)
	}
	if a.Observations() != 50 {
		t.Fatalf("observations = %d", a.Observations())
	}
}

func TestAdaptiveTimeoutBackoff(t *testing.T) {
	a := NewAdaptiveTimeout(10 * vclock.Millisecond)
	first := a.Next()
	a.ObserveTimeout()
	second := a.Next()
	if second <= first {
		t.Fatalf("backoff did not grow: %v -> %v", first, second)
	}
	// Repeated timeouts saturate at Max * Margin clamp.
	for i := 0; i < 100; i++ {
		a.ObserveTimeout()
	}
	if a.Next() > a.Max {
		t.Fatalf("Next %v exceeded Max %v", a.Next(), a.Max)
	}
}

func TestAdaptiveTimeoutClamps(t *testing.T) {
	a := NewAdaptiveTimeout(vclock.Microsecond)
	if a.Next() < a.Min {
		t.Fatalf("Next %v below Min %v", a.Next(), a.Min)
	}
	a.Observe(-5) // negative observations clamp to 0
	if a.Estimate() < 0 {
		t.Fatalf("estimate went negative: %v", a.Estimate())
	}
}

// Property: Next always lies in [Min, Max] and the estimate is always
// non-negative, under arbitrary observation sequences.
func TestAdaptiveTimeoutBounds(t *testing.T) {
	f := func(obs []int32, timeouts uint8) bool {
		a := NewAdaptiveTimeout(10 * vclock.Millisecond)
		for _, o := range obs {
			a.Observe(vclock.Duration(o) * vclock.Microsecond)
		}
		for i := 0; i < int(timeouts%16); i++ {
			a.ObserveTimeout()
		}
		n := a.Next()
		return n >= a.Min && n <= a.Max && a.Estimate() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
