package paradigm

import (
	"fmt"

	"repro/internal/monitor"
	"repro/internal/sim"
)

// AvoidFork is the deadlock-avoidance paradigm of §4.4: a thread that
// "already holds some, but not all, of the locks needed" forks the rest
// of the work so the child can acquire locks in proper order with a clean
// slate, instead of unwinding and reacquiring. The forked thread is
// detached; the caller continues (and typically releases its locks soon
// after).
func AvoidFork(reg *Registry, t *sim.Thread, name string, body func(t *sim.Thread)) *sim.Thread {
	reg.registerInternal(KindDeadlockAvoid)
	child := t.Fork(name, func(c *sim.Thread) any {
		body(c)
		return nil
	})
	child.Detach()
	return child
}

// ForkingCallback models the §4.8 convention: "many modules that do
// callbacks offer a fork boolean parameter in their interface ... The
// default is almost always TRUE", because an unforked callback "makes
// future execution of the calling thread within the module dependent on
// successful completion of the client callback" — it is for experts. It
// also insulates the service from client errors (§4.4).
func ForkingCallback(reg *Registry, t *sim.Thread, name string, fork bool, fn func(t *sim.Thread)) {
	if fork {
		reg.registerInternal(KindDeadlockAvoid)
		t.Fork(name, func(c *sim.Thread) any {
			fn(c)
			return nil
		}).Detach()
		return
	}
	fn(t) // expert mode: any client error kills the service thread
}

// LockSet enforces a global lock ordering over a set of monitors: Acquire
// takes monitors in rank order and panics on an out-of-order acquisition
// attempt, surfacing the "very, very complicated" overall locking schemes
// (§5.1) as an explicit invariant.
type LockSet struct {
	ranks map[*monitor.Monitor]int
	held  map[*sim.Thread][]*monitor.Monitor
}

// NewLockSet creates an ordering over monitors; earlier arguments rank
// lower and must be acquired first.
func NewLockSet(monitors ...*monitor.Monitor) *LockSet {
	ls := &LockSet{
		ranks: make(map[*monitor.Monitor]int, len(monitors)),
		held:  make(map[*sim.Thread][]*monitor.Monitor),
	}
	for i, m := range monitors {
		ls.ranks[m] = i
	}
	return ls
}

// Acquire enters m, checking the ordering against locks t already holds
// through this set.
func (ls *LockSet) Acquire(t *sim.Thread, m *monitor.Monitor) {
	rank, ok := ls.ranks[m]
	if !ok {
		panic(fmt.Sprintf("paradigm: monitor %q not in lock set", m.Name()))
	}
	for _, h := range ls.held[t] {
		if ls.ranks[h] >= rank {
			panic(fmt.Sprintf("paradigm: lock-order violation: %q (rank %d) acquired while holding %q (rank %d)",
				m.Name(), rank, h.Name(), ls.ranks[h]))
		}
	}
	m.Enter(t)
	ls.held[t] = append(ls.held[t], m)
}

// Release exits m and clears the bookkeeping.
func (ls *LockSet) Release(t *sim.Thread, m *monitor.Monitor) {
	held := ls.held[t]
	for i := len(held) - 1; i >= 0; i-- {
		if held[i] == m {
			ls.held[t] = append(held[:i], held[i+1:]...)
			m.Exit(t)
			return
		}
	}
	panic(fmt.Sprintf("paradigm: release of %q not held via lock set", m.Name()))
}

// Holding returns the monitors t currently holds through this set, in
// acquisition order.
func (ls *LockSet) Holding(t *sim.Thread) []*monitor.Monitor {
	out := make([]*monitor.Monitor, len(ls.held[t]))
	copy(out, ls.held[t])
	return out
}

// ParallelDo is the concurrency-exploiter paradigm (§4.7): fork n workers
// "specifically to make use of multiple processors" and join them all.
// The paper found very few of these — the systems only recently ran on
// multiprocessors — and they "tend to be very problem-specific".
func ParallelDo(reg *Registry, t *sim.Thread, name string, n int, work func(t *sim.Thread, i int)) error {
	reg.registerInternal(KindConcurrencyExploit)
	children := make([]*sim.Thread, 0, n)
	for i := 0; i < n; i++ {
		i := i
		children = append(children, t.Fork(fmt.Sprintf("%s-%d", name, i), func(c *sim.Thread) any {
			work(c, i)
			return nil
		}))
	}
	var firstErr error
	for _, c := range children {
		if _, err := t.Join(c); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// DeferTo forks body as a detached worker — the paper's most common
// paradigm (§4.1): "a procedure can often reduce the latency seen by its
// clients by forking a thread to do work not required for the procedure's
// return value". Returns the worker so callers may still observe it.
func DeferTo(reg *Registry, t *sim.Thread, name string, body func(t *sim.Thread)) *sim.Thread {
	reg.registerInternal(KindDeferWork)
	child := t.Fork(name, func(c *sim.Thread) any {
		body(c)
		return nil
	})
	child.Detach()
	return child
}

// DeferAt forks body at an explicit priority — critical threads "fork to
// defer almost any work at all", pushing the real work to a lower
// priority so the critical thread can respond to the next event (§4.1's
// Notifier).
func DeferAt(reg *Registry, t *sim.Thread, name string, pri sim.Priority, body func(t *sim.Thread)) *sim.Thread {
	reg.registerInternal(KindDeferWork)
	child := t.ForkPri(name, pri, func(c *sim.Thread) any {
		body(c)
		return nil
	})
	child.Detach()
	return child
}
