package vclock

import (
	"testing"
	"testing/quick"
)

func TestTimeAdd(t *testing.T) {
	cases := []struct {
		t    Time
		d    Duration
		want Time
	}{
		{0, Second, Time(Second)},
		{Time(Second), -Second, 0},
		{Never, Second, Never},
		{Never, -Second, Never},
		{Time(1<<63 - 10), 100, Never}, // overflow saturates
	}
	for _, c := range cases {
		if got := c.t.Add(c.d); got != c.want {
			t.Errorf("%v.Add(%v) = %v, want %v", c.t, c.d, got, c.want)
		}
	}
}

func TestTimeOrdering(t *testing.T) {
	a, b := Time(10), Time(20)
	if !a.Before(b) || b.Before(a) {
		t.Fatalf("Before broken: a=%v b=%v", a, b)
	}
	if !b.After(a) || a.After(b) {
		t.Fatalf("After broken")
	}
	if b.Sub(a) != 10 {
		t.Fatalf("Sub = %v, want 10", b.Sub(a))
	}
}

func TestTimeString(t *testing.T) {
	cases := map[Time]string{
		0:                          "0.000000s",
		Time(50 * Millisecond):     "0.050000s",
		Time(Second + Microsecond): "1.000001s",
		Never:                      "never",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(in), got, want)
		}
	}
}

func TestDurationString(t *testing.T) {
	cases := map[Duration]string{
		0:                        "0",
		Microsecond:              "1us",
		120 * Microsecond:        "120us",
		Millisecond:              "1ms",
		3500 * Microsecond:       "3.5ms",
		50 * Millisecond:         "50ms",
		Second:                   "1s",
		Second + 500*Millisecond: "1.5s",
		-Millisecond:             "-1ms",
		2 * Minute:               "120s",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("Duration(%d).String() = %q, want %q", int64(in), got, want)
		}
	}
}

func TestRoundUp(t *testing.T) {
	g := 50 * Millisecond
	cases := []struct {
		in, want Duration
	}{
		{0, 0},
		{-Second, -Second},
		{Millisecond, g},
		{g, g},
		{g + 1, 2 * g},
		{99 * Millisecond, 2 * g},
		{100 * Millisecond, 2 * g},
	}
	for _, c := range cases {
		if got := c.in.RoundUp(g); got != c.want {
			t.Errorf("RoundUp(%v, %v) = %v, want %v", c.in, g, got, c.want)
		}
	}
	if got := (123 * Microsecond).RoundUp(0); got != 123*Microsecond {
		t.Errorf("RoundUp with zero granularity changed value: %v", got)
	}
}

func TestRoundUpProperties(t *testing.T) {
	f := func(dRaw int32, gRaw int16) bool {
		d := Duration(dRaw)
		g := Duration(gRaw)
		r := d.RoundUp(g)
		if g <= 0 || d <= 0 {
			return r == d
		}
		// r is >= d, a multiple of g, and within one granule.
		return r >= d && r%g == 0 && r-d < g
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSeconds(t *testing.T) {
	if got := Time(1500 * Millisecond).Seconds(); got != 1.5 {
		t.Errorf("Seconds = %v, want 1.5", got)
	}
	if got := (250 * Millisecond).Seconds(); got != 0.25 {
		t.Errorf("Duration.Seconds = %v, want 0.25", got)
	}
	if got := (1500 * Microsecond).Millis(); got != 1.5 {
		t.Errorf("Millis = %v, want 1.5", got)
	}
}
