// Package vclock provides the virtual time base used by the thread
// simulator. All simulated activity is stamped in virtual microseconds;
// nothing in the repository depends on wall-clock time, which keeps every
// experiment deterministic and lets traces claim the "microsecond
// resolution" the paper's instrumentation had.
package vclock

import (
	"fmt"
	"strconv"
	"strings"
)

// Time is an instant of virtual time, in microseconds since the start of
// the simulation. The zero value is the simulation epoch.
type Time int64

// Duration is a span of virtual time in microseconds.
type Duration int64

// Convenient duration units.
const (
	Microsecond Duration = 1
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
)

// Never is a sentinel Time later than any reachable instant. It is used
// for "no deadline".
const Never Time = 1<<63 - 1

// Add returns the instant d after t. Adding to Never yields Never, and
// any addition that would overflow saturates at Never, so deadline
// arithmetic is safe with the sentinel.
func (t Time) Add(d Duration) Time {
	if t == Never {
		return Never
	}
	s := t + Time(d)
	if d > 0 && s < t {
		return Never
	}
	return s
}

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t precedes u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t follows u.
func (t Time) After(u Time) bool { return t > u }

// Micros returns t as integer microseconds since the epoch.
func (t Time) Micros() int64 { return int64(t) }

// Seconds returns t as floating-point seconds since the epoch.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats t as seconds with microsecond precision, e.g. "1.000050s".
func (t Time) String() string {
	if t == Never {
		return "never"
	}
	return fmt.Sprintf("%d.%06ds", int64(t)/int64(Second), int64(t)%int64(Second))
}

// Micros returns d as integer microseconds.
func (d Duration) Micros() int64 { return int64(d) }

// Millis returns d as floating-point milliseconds.
func (d Duration) Millis() float64 { return float64(d) / float64(Millisecond) }

// Seconds returns d as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// String formats d using the largest natural unit, e.g. "50ms", "3.5ms",
// "120us", "2s".
func (d Duration) String() string {
	neg := d < 0
	if neg {
		d = -d
	}
	var s string
	switch {
	case d == 0:
		s = "0"
	case d%Second == 0:
		s = strconv.FormatInt(int64(d/Second), 10) + "s"
	case d >= Second:
		s = trimZeros(fmt.Sprintf("%.6f", d.Seconds())) + "s"
	case d%Millisecond == 0:
		s = strconv.FormatInt(int64(d/Millisecond), 10) + "ms"
	case d >= Millisecond:
		s = trimZeros(fmt.Sprintf("%.3f", d.Millis())) + "ms"
	default:
		s = strconv.FormatInt(int64(d), 10) + "us"
	}
	if neg {
		return "-" + s
	}
	return s
}

func trimZeros(s string) string {
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// RoundUp returns the smallest multiple of granularity that is >= d.
// A granularity <= 0 returns d unchanged. This models CV timeout rounding:
// the paper's PCR had a 50 ms timeout granularity, so a requested timeout
// takes effect only at the next tick boundary.
func (d Duration) RoundUp(granularity Duration) Duration {
	if granularity <= 0 || d <= 0 {
		return d
	}
	rem := d % granularity
	if rem == 0 {
		return d
	}
	return d + granularity - rem
}
