package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Trace couples an event stream with the thread-name table needed to make
// it human-readable. The v2 binary format stores both; v1 traces decode
// with an empty name table.
type Trace struct {
	Events []Event
	Names  map[int32]string
}

var magic2 = []byte("THTRACE2")

// WriteTrace encodes tr in the v2 binary format (a name table followed by
// the same delta-encoded records as v1).
func WriteTrace(w io.Writer, tr Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic2); err != nil {
		return err
	}
	var buf [2 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(tr.Names)))
	if _, err := bw.Write(buf[:n]); err != nil {
		return err
	}
	// Deterministic order: ascending IDs.
	ids := make([]int32, 0, len(tr.Names))
	for id := range tr.Names {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		name := tr.Names[id]
		n := binary.PutVarint(buf[:], int64(id))
		n += binary.PutUvarint(buf[n:], uint64(len(name)))
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		if _, err := bw.WriteString(name); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return Write(bw, tr.Events) // the v1 body (its own magic + records) follows
}

// ReadTrace decodes either format: v2 yields the name table, v1 an empty
// one.
func ReadTrace(r io.Reader) (Trace, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(magic2))
	if err != nil {
		return Trace{}, fmt.Errorf("%w: missing header: %v", ErrBadTrace, err)
	}
	if string(head) == string(magic) {
		events, err := Read(br)
		return Trace{Events: events, Names: map[int32]string{}}, err
	}
	if string(head) != string(magic2) {
		return Trace{}, fmt.Errorf("%w: bad magic %q", ErrBadTrace, head)
	}
	if _, err := br.Discard(len(magic2)); err != nil {
		return Trace{}, err
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return Trace{}, fmt.Errorf("%w: truncated name table: %v", ErrBadTrace, err)
	}
	if count > 1<<20 {
		return Trace{}, fmt.Errorf("%w: implausible name count %d", ErrBadTrace, count)
	}
	names := make(map[int32]string, count)
	for i := uint64(0); i < count; i++ {
		id, err := binary.ReadVarint(br)
		if err != nil {
			return Trace{}, fmt.Errorf("%w: truncated name table: %v", ErrBadTrace, err)
		}
		ln, err := binary.ReadUvarint(br)
		if err != nil || ln > 1<<16 {
			return Trace{}, fmt.Errorf("%w: bad name length", ErrBadTrace)
		}
		b := make([]byte, ln)
		if _, err := io.ReadFull(br, b); err != nil {
			return Trace{}, fmt.Errorf("%w: truncated name: %v", ErrBadTrace, err)
		}
		names[int32(id)] = string(b)
	}
	events, err := Read(br)
	if err != nil {
		return Trace{}, err
	}
	return Trace{Events: events, Names: names}, nil
}

// NameOf renders a thread reference with its name when known:
// "t3(Notifier)" or "t3" or "idle".
func (tr Trace) NameOf(id int32) string {
	if id == NoThread {
		return "idle"
	}
	if n, ok := tr.Names[id]; ok && n != "" {
		return fmt.Sprintf("t%d(%s)", id, n)
	}
	return fmt.Sprintf("t%d", id)
}

// FormatNamed renders ev like Format but substitutes thread names from
// the table.
func (tr Trace) FormatNamed(ev Event) string {
	line := Format(ev)
	// Substitute the acting-thread token. Format always renders the
	// actor as "tN" or "idle" in a fixed position after the timestamp.
	actor := fmt.Sprintf("t%d", ev.Thread)
	if ev.Thread == NoThread {
		return line
	}
	named := tr.NameOf(ev.Thread)
	if named == actor {
		return line
	}
	return strings.Replace(line, actor+" ", named+" ", 1)
}

// WriteTextNamed writes one FormatNamed line per event.
func WriteTextNamed(w io.Writer, tr Trace) error {
	bw := bufio.NewWriter(w)
	for _, ev := range tr.Events {
		if _, err := bw.WriteString(tr.FormatNamed(ev)); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
