package trace

import (
	"bufio"
	"encoding/binary"
	"io"

	"repro/internal/vclock"
)

// Encoder is a Sink that streams events to an io.Writer in the binary
// trace format (the same format Write produces and Read decodes),
// without retaining them. Attach it as a world's Trace to capture
// arbitrarily long runs with flat memory.
//
// Record has no error channel, so write failures are sticky: the first
// error — short writes included — is remembered, later events are
// dropped, and Flush reports it. Always check Flush before trusting the
// output file.
type Encoder struct {
	bw   *bufio.Writer
	prev vclock.Time
	err  error
}

// NewEncoder returns an Encoder streaming to w. The format header is
// written immediately.
func NewEncoder(w io.Writer) *Encoder {
	e := &Encoder{bw: bufio.NewWriter(&shortWriteWriter{w: w})}
	_, e.err = e.bw.Write(magic)
	return e
}

// Record implements Sink, appending one delta-encoded event record.
func (e *Encoder) Record(ev Event) {
	if e.err != nil {
		return
	}
	var buf [5 * binary.MaxVarintLen64]byte
	n := 0
	n += binary.PutUvarint(buf[n:], uint64(ev.Time-e.prev))
	e.prev = ev.Time
	n += binary.PutUvarint(buf[n:], uint64(ev.Kind))
	n += binary.PutVarint(buf[n:], int64(ev.Thread))
	n += binary.PutVarint(buf[n:], ev.Arg)
	n += binary.PutVarint(buf[n:], ev.Aux)
	_, e.err = e.bw.Write(buf[:n])
}

// Flush implements Sink: buffered records are pushed to the underlying
// writer and the first write error encountered so far is returned.
func (e *Encoder) Flush() error {
	if e.err != nil {
		return e.err
	}
	e.err = e.bw.Flush()
	return e.err
}

// shortWriteWriter turns a destination that accepts fewer bytes than
// offered without reporting an error into an explicit io.ErrShortWrite,
// so a silently-truncating writer cannot corrupt a trace file
// undetected.
type shortWriteWriter struct {
	w io.Writer
}

func (s *shortWriteWriter) Write(p []byte) (int, error) {
	n, err := s.w.Write(p)
	if n < len(p) && err == nil {
		err = io.ErrShortWrite
	}
	return n, err
}
