package trace

import (
	"bytes"
	"testing"
)

// FuzzRead ensures the binary decoder never panics on malformed input —
// it must either return events or ErrBadTrace.
func FuzzRead(f *testing.F) {
	var buf bytes.Buffer
	_ = Write(&buf, sampleEvents())
	f.Add(buf.Bytes())
	f.Add([]byte("THTRACE1"))
	f.Add([]byte("THTRACE1\x00\x01\x02"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = Read(bytes.NewReader(data))
	})
}

// FuzzReadTrace covers the v2 container the same way.
func FuzzReadTrace(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteTrace(&buf, Trace{Events: sampleEvents(), Names: map[int32]string{1: "a"}})
	f.Add(buf.Bytes())
	f.Add([]byte("THTRACE2\x01\x02\x01x"))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = ReadTrace(bytes.NewReader(data))
	})
}
