package trace

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/vclock"
)

// FuzzRead ensures the binary decoder never panics on malformed input —
// it must either return events or ErrBadTrace.
func FuzzRead(f *testing.F) {
	var buf bytes.Buffer
	_ = Write(&buf, sampleEvents())
	f.Add(buf.Bytes())
	f.Add([]byte("THTRACE1"))
	f.Add([]byte("THTRACE1\x00\x01\x02"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = Read(bytes.NewReader(data))
	})
}

// FuzzReadTrace covers the v2 container the same way.
func FuzzReadTrace(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteTrace(&buf, Trace{Events: sampleEvents(), Names: map[int32]string{1: "a"}})
	f.Add(buf.Bytes())
	f.Add([]byte("THTRACE2\x01\x02\x01x"))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = ReadTrace(bytes.NewReader(data))
	})
}

// FuzzEncodeDecode drives the v2 container from the other direction:
// arbitrary bytes become a syntactically valid trace (monotone times,
// in-range kinds — the only invariants the encoder itself demands), and
// WriteTrace → ReadTrace must reproduce it exactly, name table included.
func FuzzEncodeDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14})
	f.Add([]byte("\xff\xff\xff\xff\xff\xff\xff\xff some name bytes \x00\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr := traceFromBytes(data)
		var buf bytes.Buffer
		if err := WriteTrace(&buf, tr); err != nil {
			t.Fatalf("encode: %v", err)
		}
		got, err := ReadTrace(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("decode of own output: %v", err)
		}
		if len(got.Events) != len(tr.Events) {
			t.Fatalf("round trip: %d events, want %d", len(got.Events), len(tr.Events))
		}
		for i := range tr.Events {
			if got.Events[i] != tr.Events[i] {
				t.Fatalf("event %d: %+v, want %+v", i, got.Events[i], tr.Events[i])
			}
		}
		if len(got.Names) != len(tr.Names) {
			t.Fatalf("round trip: %d names, want %d", len(got.Names), len(tr.Names))
		}
		for id, name := range tr.Names {
			if got.Names[id] != name {
				t.Fatalf("name[%d] = %q, want %q", id, got.Names[id], name)
			}
		}
	})
}

// traceFromBytes deterministically shapes raw fuzz bytes into a valid
// Trace: each 14-byte chunk becomes one event, leftovers become name
// table entries.
func traceFromBytes(data []byte) Trace {
	tr := Trace{Names: map[int32]string{}}
	var now vclock.Time
	for len(data) >= 14 {
		c := data[:14]
		data = data[14:]
		now = now.Add(vclock.Duration(binary.LittleEndian.Uint32(c[0:4]) % (1 << 30)))
		tr.Events = append(tr.Events, Event{
			Time:   now,
			Kind:   Kind(c[4] % byte(numKinds)),
			Thread: int32(binary.LittleEndian.Uint16(c[5:7])),
			Arg:    int64(binary.LittleEndian.Uint32(c[7:11])) - 1<<31,
			Aux:    int64(c[11]) | int64(c[12])<<8 | -int64(c[13]&1)<<16,
		})
	}
	for i := 0; len(data) > 0; i++ {
		n := min(int(data[0])%7+1, len(data))
		tr.Names[int32(i)-2] = string(data[:n]) // negative IDs (monitors/CVs) included
		data = data[n:]
	}
	return tr
}
