package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/vclock"
)

// Binary trace format: a magic header followed by one varint-encoded
// record per event. Timestamps are delta-encoded against the previous
// event so long quiet traces stay small.

var magic = []byte("THTRACE1")

// ErrBadTrace is returned when decoding input that is not a valid trace.
var ErrBadTrace = errors.New("trace: malformed trace data")

// Write encodes events to w in the binary trace format.
func Write(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic); err != nil {
		return err
	}
	var buf [5 * binary.MaxVarintLen64]byte
	var prev vclock.Time
	for _, ev := range events {
		n := 0
		n += binary.PutUvarint(buf[n:], uint64(ev.Time-prev))
		prev = ev.Time
		n += binary.PutUvarint(buf[n:], uint64(ev.Kind))
		n += binary.PutVarint(buf[n:], int64(ev.Thread))
		n += binary.PutVarint(buf[n:], ev.Arg)
		n += binary.PutVarint(buf[n:], ev.Aux)
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read decodes a binary trace written by Write.
func Read(r io.Reader) ([]Event, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("%w: missing header: %v", ErrBadTrace, err)
	}
	if string(head) != string(magic) {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadTrace, head)
	}
	var events []Event
	var prev vclock.Time
	for {
		dt, err := binary.ReadUvarint(br)
		if err == io.EOF {
			return events, nil
		}
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
		}
		kind, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: truncated record: %v", ErrBadTrace, err)
		}
		if kind >= uint64(numKinds) {
			return nil, fmt.Errorf("%w: unknown kind %d", ErrBadTrace, kind)
		}
		thread, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: truncated record: %v", ErrBadTrace, err)
		}
		arg, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: truncated record: %v", ErrBadTrace, err)
		}
		aux, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: truncated record: %v", ErrBadTrace, err)
		}
		prev = prev.Add(vclock.Duration(dt))
		events = append(events, Event{
			Time:   prev,
			Kind:   Kind(kind),
			Thread: int32(thread),
			Arg:    arg,
			Aux:    aux,
		})
	}
}

// Format renders ev as a single human-readable line, e.g.
// "0.050000s t3 wait cv=7 timeout=50ms".
func Format(ev Event) string {
	who := fmt.Sprintf("t%d", ev.Thread)
	if ev.Thread == NoThread {
		who = "idle"
	}
	switch ev.Kind {
	case KindFork:
		return fmt.Sprintf("%s %s fork child=t%d pri=%d", ev.Time, who, ev.Arg, ev.Aux)
	case KindExit:
		d := ""
		if ev.Aux == 1 {
			d = " detached"
		}
		return fmt.Sprintf("%s %s exit%s", ev.Time, who, d)
	case KindJoin:
		return fmt.Sprintf("%s %s join t%d", ev.Time, who, ev.Arg)
	case KindSwitch:
		from := fmt.Sprintf("t%d", ev.Arg)
		if ev.Arg == NoThread {
			from = "idle"
		}
		return fmt.Sprintf("%s cpu%d switch %s -> %s", ev.Time, ev.Aux, from, who)
	case KindMLEnter:
		c := ""
		if ev.Aux == 1 {
			c = " contended"
		}
		return fmt.Sprintf("%s %s ml-enter m%d%s", ev.Time, who, ev.Arg, c)
	case KindMLExit:
		return fmt.Sprintf("%s %s ml-exit m%d", ev.Time, who, ev.Arg)
	case KindWait:
		to := "none"
		if ev.Aux >= 0 {
			to = vclock.Duration(ev.Aux).String()
		}
		return fmt.Sprintf("%s %s wait cv=%d timeout=%s", ev.Time, who, ev.Arg, to)
	case KindWaitDone:
		how := "notified"
		if ev.Aux == 1 {
			how = "timeout"
		}
		return fmt.Sprintf("%s %s wait-done cv=%d %s", ev.Time, who, ev.Arg, how)
	case KindNotify:
		return fmt.Sprintf("%s %s notify cv=%d woke=%d", ev.Time, who, ev.Arg, ev.Aux)
	case KindBroadcast:
		return fmt.Sprintf("%s %s broadcast cv=%d woke=%d", ev.Time, who, ev.Arg, ev.Aux)
	case KindYield:
		switch ev.Aux {
		case YieldButNotToMe:
			return fmt.Sprintf("%s %s yield-but-not-to-me", ev.Time, who)
		case YieldDirected:
			return fmt.Sprintf("%s %s directed-yield t%d", ev.Time, who, ev.Arg)
		default:
			return fmt.Sprintf("%s %s yield", ev.Time, who)
		}
	case KindSetPriority:
		return fmt.Sprintf("%s %s set-priority %d -> %d", ev.Time, who, ev.Arg, ev.Aux)
	case KindSleep:
		return fmt.Sprintf("%s %s sleep %s", ev.Time, who, vclock.Duration(ev.Aux))
	case KindReady:
		by := "timer"
		if ev.Arg != NoThread {
			by = fmt.Sprintf("t%d", ev.Arg)
		}
		return fmt.Sprintf("%s %s ready by=%s", ev.Time, who, by)
	case KindBlock:
		reasons := [...]string{"mutex", "cv", "join", "sleep", "fork"}
		r := "unknown"
		if ev.Aux >= 0 && int(ev.Aux) < len(reasons) {
			r = reasons[ev.Aux]
		}
		return fmt.Sprintf("%s %s block %s", ev.Time, who, r)
	default:
		return fmt.Sprintf("%s %s kind=%d arg=%d aux=%d", ev.Time, who, ev.Kind, ev.Arg, ev.Aux)
	}
}

// WriteText writes one Format line per event to w.
func WriteText(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	for _, ev := range events {
		if _, err := bw.WriteString(Format(ev)); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
