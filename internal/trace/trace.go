// Package trace defines the microsecond-resolution thread-event records
// produced by the simulator, mirroring the instrumented PCR the paper's
// authors built: forks, yields, scheduler switches, monitor-lock entries
// and condition-variable waits, each stamped in virtual microseconds.
//
// Traces flow through the Sink interface so that experiments can choose
// between full in-memory capture (Buffer), bounded capture (Ring), cheap
// online aggregation (the stats package implements Sink), file encoding,
// or any combination (Tee).
package trace

import (
	"errors"

	"repro/internal/vclock"
)

// Kind identifies the type of a thread event.
type Kind uint8

// Event kinds. The Arg/Aux fields of Event are interpreted per kind.
const (
	// KindFork: thread Thread forked a child; Arg = child thread ID,
	// Aux = child priority.
	KindFork Kind = iota
	// KindExit: thread Thread terminated; Arg = 1 if it was detached.
	KindExit
	// KindJoin: thread Thread completed a JOIN on thread Arg.
	KindJoin
	// KindSwitch: the scheduler switched CPU Aux from thread Arg to
	// thread Thread. Thread or Arg is NoThread when the CPU was or
	// becomes idle.
	KindSwitch
	// KindMLEnter: thread Thread entered monitor Arg; Aux = 1 if the
	// entry contended (the thread had to queue for the mutex).
	KindMLEnter
	// KindMLExit: thread Thread exited monitor Arg.
	KindMLExit
	// KindWait: thread Thread began a WAIT on condition variable Arg
	// (monitor implicit); Aux = timeout in microseconds, or -1 for none.
	KindWait
	// KindWaitDone: thread Thread's WAIT on CV Arg completed;
	// Aux = 1 if it timed out rather than being notified.
	KindWaitDone
	// KindNotify: thread Thread notified CV Arg; Aux = number of
	// waiters woken (0 or 1).
	KindNotify
	// KindBroadcast: thread Thread broadcast CV Arg; Aux = waiters woken.
	KindBroadcast
	// KindYield: thread Thread yielded; Aux distinguishes the yield
	// flavor (see YieldPlain and friends), Arg = directed-yield target
	// or NoThread.
	KindYield
	// KindSetPriority: thread Thread changed priority; Arg = old,
	// Aux = new.
	KindSetPriority
	// KindSleep: thread Thread began a timed sleep of Aux microseconds.
	KindSleep
	// KindReady: thread Thread entered the ready queue; Arg = thread
	// responsible (NoThread for timer wakeups, the preemptor for a
	// preemption re-queue, the thread itself for a yield re-queue).
	KindReady
	// KindBlock: thread Thread blocked; Aux = block reason (see Block*).
	KindBlock
	numKinds
)

// Yield flavors carried in Event.Aux for KindYield.
const (
	YieldPlain      = 0 // YIELD: reschedule, caller remains eligible
	YieldButNotToMe = 1 // cede to highest-priority ready thread other than caller
	YieldDirected   = 2 // donate the rest of the slice to a specific thread
)

// Block reasons carried in Event.Aux for KindBlock.
const (
	BlockMutex = 0 // waiting for a monitor lock
	BlockCV    = 1 // waiting on a condition variable
	BlockJoin  = 2 // waiting in JOIN
	BlockSleep = 3 // timed sleep
	BlockFork  = 4 // waiting in FORK for thread resources (paper §5.4)
)

// NoThread is the Arg/Thread value meaning "no thread" (e.g. the idle side
// of a switch).
const NoThread = -1

var kindNames = [numKinds]string{
	"fork", "exit", "join", "switch", "ml-enter", "ml-exit",
	"wait", "wait-done", "notify", "broadcast", "yield",
	"set-priority", "sleep", "ready", "block",
}

// String returns a short lowercase name for k.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one timestamped thread event. Events are small value types;
// a trace is a []Event.
type Event struct {
	Time   vclock.Time
	Kind   Kind
	Thread int32 // acting thread ID, or NoThread
	Arg    int64 // kind-specific, see Kind docs
	Aux    int64 // kind-specific, see Kind docs
}

// Sink receives events as the simulation produces them.
//
// Flush pushes any buffered state to the sink's final destination and
// reports the first error that has prevented events from reaching it.
// Purely in-memory sinks (Buffer, Ring, the stats collectors) have
// nothing to push and always return nil; file-encoding sinks (Encoder)
// surface write errors — short writes included — here rather than
// silently dropping events, because Record has no error channel of its
// own. Flush must be safe to call more than once.
type Sink interface {
	Record(Event)
	Flush() error
}

// SinkFunc adapts a function to the Sink interface. The adapted sink
// buffers nothing, so Flush always succeeds.
type SinkFunc func(Event)

// Record implements Sink.
func (f SinkFunc) Record(ev Event) { f(ev) }

// Flush implements Sink; it is a no-op.
func (f SinkFunc) Flush() error { return nil }

// Discard is a Sink that drops all events. Its dynamic type is a
// comparable struct (not a SinkFunc), so holders of a Sink may test
// `sink == Discard` to skip event construction entirely — the simulator's
// allocation-free tracing fast path depends on this.
var Discard Sink = discardSink{}

type discardSink struct{}

// Record implements Sink; it drops the event.
func (discardSink) Record(Event) {}

// Flush implements Sink; it is a no-op.
func (discardSink) Flush() error { return nil }

// Buffer is a Sink that retains every event in order. The zero value is
// ready to use.
type Buffer struct {
	Events []Event
}

// Record implements Sink.
func (b *Buffer) Record(ev Event) { b.Events = append(b.Events, ev) }

// Flush implements Sink; the buffer holds events in memory, so there is
// nothing to push.
func (b *Buffer) Flush() error { return nil }

// Len returns the number of captured events.
func (b *Buffer) Len() int { return len(b.Events) }

// Reset discards captured events but keeps capacity.
func (b *Buffer) Reset() { b.Events = b.Events[:0] }

// Ring is a Sink that retains only the most recent Cap events — the
// "100 millisecond event histories" style of capture the authors stared
// at for a year.
type Ring struct {
	buf  []Event
	next int
	full bool
}

// NewRing returns a ring sink holding at most capacity events.
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Record implements Sink.
func (r *Ring) Record(ev Event) {
	r.buf[r.next] = ev
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// Flush implements Sink; it is a no-op.
func (r *Ring) Flush() error { return nil }

// Snapshot returns the retained events in chronological order.
func (r *Ring) Snapshot() []Event {
	if !r.full {
		out := make([]Event, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Tee returns a Sink that forwards each event to all of sinks. Its
// Flush flushes every branch and aggregates the errors (errors.Join),
// so one failing file sink cannot mask another.
//
// Discard branches are dropped and nested tees flattened at
// construction, so Tee(Discard, s) returns s itself: the per-event
// fan-out loop — measurable on profiled benchmark runs, where every
// world records millions of events into a single profiler sink — is
// paid only when there are really two or more observers.
func Tee(sinks ...Sink) Sink {
	// Copy to guard against caller mutation of the slice.
	s := make(teeSink, 0, len(sinks))
	for _, sink := range sinks {
		if sink == Discard {
			continue
		}
		if t, ok := sink.(teeSink); ok {
			s = append(s, t...)
			continue
		}
		s = append(s, sink)
	}
	switch len(s) {
	case 0:
		return Discard
	case 1:
		return s[0]
	}
	return s
}

type teeSink []Sink

// Record implements Sink.
func (t teeSink) Record(ev Event) {
	for _, sink := range t {
		sink.Record(ev)
	}
}

// Flush implements Sink: every branch is flushed even when an earlier
// one fails, and all failures are reported.
func (t teeSink) Flush() error {
	var errs []error
	for _, sink := range t {
		if err := sink.Flush(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Filter returns a Sink that forwards only events for which keep returns
// true. Flush delegates to dst.
func Filter(dst Sink, keep func(Event) bool) Sink {
	return filterSink{dst: dst, keep: keep}
}

type filterSink struct {
	dst  Sink
	keep func(Event) bool
}

// Record implements Sink.
func (f filterSink) Record(ev Event) {
	if f.keep(ev) {
		f.dst.Record(ev)
	}
}

// Flush implements Sink by flushing the destination.
func (f filterSink) Flush() error { return f.dst.Flush() }

// KindFilter returns a Sink forwarding only the listed kinds. Flush
// delegates to dst.
func KindFilter(dst Sink, kinds ...Kind) Sink {
	var mask [numKinds]bool
	for _, k := range kinds {
		if int(k) < len(mask) {
			mask[k] = true
		}
	}
	return Filter(dst, func(ev Event) bool {
		return int(ev.Kind) < len(mask) && mask[ev.Kind]
	})
}
