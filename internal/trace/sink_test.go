package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/vclock"
)

// failWriter fails every write after the first n bytes succeed.
type failWriter struct {
	n   int
	err error
}

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, w.err
	}
	if len(p) <= w.n {
		w.n -= len(p)
		return len(p), nil
	}
	n := w.n
	w.n = 0
	return n, w.err
}

// shortWriter accepts only half of each write and reports no error — the
// misbehavior io.ErrShortWrite exists for.
type shortWriter struct{}

func (shortWriter) Write(p []byte) (int, error) { return len(p) / 2, nil }

func testEvents() []Event {
	return []Event{
		{Time: 0, Kind: KindFork, Thread: 1, Arg: 2, Aux: 3},
		{Time: 10, Kind: KindSwitch, Thread: 2, Arg: NoThread, Aux: 0},
		{Time: 250, Kind: KindExit, Thread: 2},
	}
}

func TestEncoderStreamsV1(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	for _, ev := range testEvents() {
		enc.Record(ev)
	}
	if err := enc.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	want := testEvents()
	if len(got) != len(want) {
		t.Fatalf("round trip: %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d: %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestEncoderReportsWriteError(t *testing.T) {
	sentinel := errors.New("disk full")
	enc := NewEncoder(&failWriter{n: 4, err: sentinel})
	for i := 0; i < 10000; i++ {
		enc.Record(Event{Time: vclock.Time(i), Kind: KindYield, Thread: 1})
	}
	if err := enc.Flush(); !errors.Is(err, sentinel) {
		t.Fatalf("Flush = %v, want %v", err, sentinel)
	}
	// The error is sticky across further flushes.
	if err := enc.Flush(); !errors.Is(err, sentinel) {
		t.Fatalf("second Flush = %v, want sticky %v", err, sentinel)
	}
}

func TestEncoderReportsShortWrite(t *testing.T) {
	enc := NewEncoder(shortWriter{})
	for i := 0; i < 10000; i++ {
		enc.Record(Event{Time: vclock.Time(i), Kind: KindYield, Thread: 1})
	}
	if err := enc.Flush(); !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("Flush = %v, want io.ErrShortWrite", err)
	}
}

// flakySink fails Flush with a fixed error.
type flakySink struct{ err error }

func (s flakySink) Record(Event) {}
func (s flakySink) Flush() error { return s.err }

func TestTeeFlushAggregatesErrors(t *testing.T) {
	errA := errors.New("branch a")
	errB := errors.New("branch b")
	var buf Buffer
	tee := Tee(flakySink{errA}, &buf, flakySink{errB})
	tee.Record(Event{Time: 1, Kind: KindYield, Thread: 7})

	// The healthy branch still received the event.
	if buf.Len() != 1 {
		t.Fatalf("buffer got %d events, want 1", buf.Len())
	}
	err := tee.Flush()
	if !errors.Is(err, errA) || !errors.Is(err, errB) {
		t.Fatalf("Flush = %v, want both branch errors", err)
	}
}

func TestTeeFlushNilWhenHealthy(t *testing.T) {
	var a, b Buffer
	tee := Tee(&a, &b)
	if err := tee.Flush(); err != nil {
		t.Fatalf("Flush = %v, want nil", err)
	}
}

func TestFilterFlushDelegates(t *testing.T) {
	sentinel := errors.New("downstream")
	f := Filter(flakySink{sentinel}, func(Event) bool { return true })
	if err := f.Flush(); !errors.Is(err, sentinel) {
		t.Fatalf("Flush = %v, want %v", err, sentinel)
	}
	k := KindFilter(flakySink{sentinel}, KindSwitch)
	if err := k.Flush(); !errors.Is(err, sentinel) {
		t.Fatalf("KindFilter Flush = %v, want %v", err, sentinel)
	}
}
