package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/vclock"
)

func sampleEvents() []Event {
	return []Event{
		{Time: 0, Kind: KindFork, Thread: 1, Arg: 2, Aux: 4},
		{Time: 10, Kind: KindSwitch, Thread: 2, Arg: NoThread, Aux: 0},
		{Time: 55, Kind: KindMLEnter, Thread: 2, Arg: 7, Aux: 1},
		{Time: 80, Kind: KindWait, Thread: 2, Arg: 3, Aux: int64(50 * vclock.Millisecond)},
		{Time: 50080, Kind: KindWaitDone, Thread: 2, Arg: 3, Aux: 1},
		{Time: 50100, Kind: KindExit, Thread: 2, Arg: 0, Aux: 1},
	}
}

func TestBufferSink(t *testing.T) {
	var b Buffer
	for _, ev := range sampleEvents() {
		b.Record(ev)
	}
	if b.Len() != 6 {
		t.Fatalf("Len = %d, want 6", b.Len())
	}
	if !reflect.DeepEqual(b.Events, sampleEvents()) {
		t.Fatal("buffer did not retain events in order")
	}
	b.Reset()
	if b.Len() != 0 {
		t.Fatal("Reset did not clear buffer")
	}
}

func TestRingSink(t *testing.T) {
	r := NewRing(3)
	evs := sampleEvents()
	for _, ev := range evs {
		r.Record(ev)
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot len = %d, want 3", len(snap))
	}
	if !reflect.DeepEqual(snap, evs[3:]) {
		t.Fatalf("ring kept %v, want last 3 events", snap)
	}
	// Partial fill keeps chronological order too.
	r2 := NewRing(10)
	for _, ev := range evs[:2] {
		r2.Record(ev)
	}
	if got := r2.Snapshot(); !reflect.DeepEqual(got, evs[:2]) {
		t.Fatalf("partial ring = %v", got)
	}
	// Degenerate capacity clamps to 1.
	r3 := NewRing(0)
	r3.Record(evs[0])
	r3.Record(evs[1])
	if got := r3.Snapshot(); len(got) != 1 || got[0] != evs[1] {
		t.Fatalf("cap-0 ring = %v", got)
	}
}

func TestTeeAndFilter(t *testing.T) {
	var a, b Buffer
	tee := Tee(&a, Filter(&b, func(ev Event) bool { return ev.Kind == KindWait }))
	for _, ev := range sampleEvents() {
		tee.Record(ev)
	}
	if a.Len() != 6 {
		t.Fatalf("tee primary got %d events", a.Len())
	}
	if b.Len() != 1 || b.Events[0].Kind != KindWait {
		t.Fatalf("filter got %v", b.Events)
	}
}

func TestKindFilter(t *testing.T) {
	var b Buffer
	s := KindFilter(&b, KindFork, KindExit)
	for _, ev := range sampleEvents() {
		s.Record(ev)
	}
	if b.Len() != 2 {
		t.Fatalf("kind filter kept %d, want 2", b.Len())
	}
	if b.Events[0].Kind != KindFork || b.Events[1].Kind != KindExit {
		t.Fatalf("kind filter kept wrong kinds: %v", b.Events)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	evs := sampleEvents()
	var buf bytes.Buffer
	if err := Write(&buf, evs); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, evs) {
		t.Fatalf("round trip mismatch:\n got %v\nwant %v", got, evs)
	}
}

func TestEncodeDecodeEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("expected empty trace, got %d events", len(got))
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not a trace at all")); err == nil {
		t.Fatal("expected error for bad magic")
	}
	if _, err := Read(strings.NewReader("")); err == nil {
		t.Fatal("expected error for empty input")
	}
	// Valid header, truncated record.
	var buf bytes.Buffer
	if err := Write(&buf, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-2]
	if _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Fatal("expected error for truncated trace")
	}
}

// Property: encode/decode round-trips arbitrary monotonic event streams.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		evs := make([]Event, int(n))
		var tm vclock.Time
		for i := range evs {
			tm = tm.Add(vclock.Duration(rng.Int63n(1000000)))
			evs[i] = Event{
				Time:   tm,
				Kind:   Kind(rng.Intn(int(numKinds))),
				Thread: int32(rng.Intn(100) - 1),
				Arg:    rng.Int63n(2000) - 1000,
				Aux:    rng.Int63n(2000) - 1000,
			}
		}
		var buf bytes.Buffer
		if err := Write(&buf, evs); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if len(evs) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, evs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFormatCoversKinds(t *testing.T) {
	// Every kind should produce a line containing its thread and no panic.
	for k := Kind(0); k < numKinds; k++ {
		line := Format(Event{Time: 1000, Kind: k, Thread: 5, Arg: 2, Aux: 1})
		if line == "" {
			t.Fatalf("kind %v formatted empty", k)
		}
		if !strings.Contains(line, "t5") && k != KindSwitch {
			t.Errorf("kind %v line %q missing thread", k, line)
		}
	}
	if got := Format(Event{Kind: KindSwitch, Thread: NoThread, Arg: 3}); !strings.Contains(got, "idle") {
		t.Errorf("idle switch line = %q", got)
	}
}

func TestWriteText(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteText(&buf, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 6 {
		t.Fatalf("got %d lines, want 6", len(lines))
	}
	if !strings.Contains(lines[0], "fork") {
		t.Errorf("first line %q should mention fork", lines[0])
	}
}

func TestKindString(t *testing.T) {
	if KindFork.String() != "fork" || KindWaitDone.String() != "wait-done" {
		t.Fatal("kind names wrong")
	}
	if Kind(200).String() != "unknown" {
		t.Fatal("out-of-range kind should be unknown")
	}
}

func TestTraceV2RoundTrip(t *testing.T) {
	tr := Trace{
		Events: sampleEvents(),
		Names:  map[int32]string{1: "parent", 2: "Notifier"},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, tr)
	}
}

func TestReadTraceAcceptsV1(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Events, sampleEvents()) || len(got.Names) != 0 {
		t.Fatalf("v1 decode wrong: %+v", got)
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("THTRACE9xxxxxxxxxx")); err == nil {
		t.Fatal("expected bad-magic error")
	}
	if _, err := ReadTrace(strings.NewReader("TH")); err == nil {
		t.Fatal("expected short-header error")
	}
	// v2 header with truncated name table.
	var buf bytes.Buffer
	if err := WriteTrace(&buf, Trace{Events: nil, Names: map[int32]string{1: "averyveryverylongname"}}); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:12]
	if _, err := ReadTrace(bytes.NewReader(trunc)); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestFormatNamed(t *testing.T) {
	tr := Trace{Names: map[int32]string{2: "Notifier"}}
	ev := Event{Time: 1000, Kind: KindMLEnter, Thread: 2, Arg: 7}
	line := tr.FormatNamed(ev)
	if !strings.Contains(line, "t2(Notifier)") {
		t.Fatalf("line = %q", line)
	}
	// Unknown thread keeps the bare form; idle stays idle.
	if got := tr.FormatNamed(Event{Kind: KindMLEnter, Thread: 5, Arg: 1}); !strings.Contains(got, "t5 ") {
		t.Fatalf("unknown thread line = %q", got)
	}
	if got := tr.NameOf(NoThread); got != "idle" {
		t.Fatalf("NameOf(NoThread) = %q", got)
	}
	var buf bytes.Buffer
	if err := WriteTextNamed(&buf, Trace{Events: []Event{ev}, Names: tr.Names}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Notifier") {
		t.Fatalf("text = %q", buf.String())
	}
}
