package eventq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/vclock"
)

// drain pops every event, returning the timestamps in pop order and
// running the callbacks.
func drain(q *Queue) []vclock.Time {
	var out []vclock.Time
	for {
		do, when, ok := q.PopDo()
		if !ok {
			return out
		}
		out = append(out, when)
		if do != nil {
			do()
		}
	}
}

func TestPopOrder(t *testing.T) {
	var q Queue
	var got []int
	q.Schedule(30, func() { got = append(got, 3) })
	q.Schedule(10, func() { got = append(got, 1) })
	q.Schedule(20, func() { got = append(got, 2) })
	drain(&q)
	want := []int{1, 2, 3}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("pop order = %v, want %v", got, want)
	}
}

func TestFIFOTieBreak(t *testing.T) {
	var q Queue
	var got []int
	for i := 0; i < 50; i++ {
		i := i
		q.Schedule(100, func() { got = append(got, i) })
	}
	drain(&q)
	for i, v := range got {
		if v != i {
			t.Fatalf("equal-timestamp events delivered out of insertion order: %v", got)
		}
	}
}

func TestCancel(t *testing.T) {
	var q Queue
	ran := false
	e := q.Schedule(10, func() { ran = true })
	q.Schedule(20, func() {})
	q.Cancel(e)
	if e.Valid() {
		t.Fatal("canceled handle still valid")
	}
	if q.NextTime() != 20 {
		t.Fatalf("NextTime = %v, want 20", q.NextTime())
	}
	if _, when, ok := q.PopDo(); !ok || when != 20 {
		t.Fatalf("PopDo returned when=%v ok=%v, want event at 20", when, ok)
	}
	if _, _, ok := q.PopDo(); ok {
		t.Fatal("expected empty queue")
	}
	if ran {
		t.Fatal("canceled event ran")
	}
	// Double cancel and the zero Handle must not panic.
	q.Cancel(e)
	q.Cancel(Handle{})
}

// A Handle kept across the event's delivery and the struct's recycling
// must go stale rather than cancel the recycled event.
func TestStaleHandleAfterRecycle(t *testing.T) {
	var q Queue
	h := q.Schedule(10, nil)
	if _, _, ok := q.PopDo(); !ok {
		t.Fatal("pop failed")
	}
	if h.Valid() {
		t.Fatal("handle to popped event still valid")
	}
	// The pool reuses the struct for the next Schedule; the stale handle
	// must not be able to cancel it.
	h2 := q.Schedule(20, nil)
	q.Cancel(h)
	if !h2.Valid() {
		t.Fatal("stale Cancel revoked a recycled event")
	}
	q.Cancel(h2)
	if h2.Valid() {
		t.Fatal("fresh Cancel had no effect")
	}
}

func TestNextTimeEmpty(t *testing.T) {
	var q Queue
	if q.NextTime() != vclock.Never {
		t.Fatalf("empty NextTime = %v, want Never", q.NextTime())
	}
	if !q.Empty() || q.Len() != 0 {
		t.Fatal("zero queue should be empty")
	}
}

func TestLenExcludesCanceled(t *testing.T) {
	var q Queue
	a := q.Schedule(1, func() {})
	q.Schedule(2, func() {})
	q.Cancel(a)
	if q.Len() != 1 {
		t.Fatalf("Len = %d, want 1", q.Len())
	}
	if q.Empty() {
		t.Fatal("queue with one live event reported empty")
	}
}

// Property: popping a randomly scheduled set yields a sequence sorted by
// time, and every non-canceled event is delivered exactly once.
func TestPopSortedProperty(t *testing.T) {
	f := func(times []int16, seed int64) bool {
		var q Queue
		rng := rand.New(rand.NewSource(seed))
		delivered := 0
		var handles []Handle
		for _, ti := range times {
			handles = append(handles, q.Schedule(vclock.Time(int64(ti)+1<<15), func() { delivered++ }))
		}
		canceled := 0
		for _, h := range handles {
			if rng.Intn(4) == 0 {
				q.Cancel(h)
				canceled++
			}
		}
		popped := drain(&q)
		if len(popped) != len(times)-canceled || delivered != len(popped) {
			return false
		}
		return sort.SliceIsSorted(popped, func(i, j int) bool { return popped[i] < popped[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestInterleavedScheduleAndPop(t *testing.T) {
	var q Queue
	q.Schedule(10, nil)
	q.Schedule(5, nil)
	if _, when, _ := q.PopDo(); when != 5 {
		t.Fatalf("first pop at %v, want 5", when)
	}
	// Schedule earlier than an already queued event.
	q.Schedule(7, nil)
	if _, when, _ := q.PopDo(); when != 7 {
		t.Fatalf("second pop at %v, want 7", when)
	}
	if _, when, _ := q.PopDo(); when != 10 {
		t.Fatalf("third pop at %v, want 10", when)
	}
}

// The pool must keep steady-state scheduling allocation-free: after a
// warm-up, a schedule/pop cycle reuses recycled event structs.
func TestPoolingAllocFree(t *testing.T) {
	var q Queue
	fn := func() {}
	for i := 0; i < 64; i++ { // warm the pool and the heap slice
		q.Schedule(vclock.Time(i), fn)
	}
	drain(&q)
	now := vclock.Time(1000)
	allocs := testing.AllocsPerRun(1000, func() {
		h := q.Schedule(now, fn)
		_ = h
		q.PopDo()
		now++
	})
	if allocs != 0 {
		t.Fatalf("steady-state schedule/pop allocates %.1f objects/op, want 0", allocs)
	}
}

// Cancel from the middle of the heap must preserve ordering of the rest.
func TestCancelMiddle(t *testing.T) {
	var q Queue
	var hs []Handle
	for _, when := range []vclock.Time{50, 10, 40, 20, 30, 60, 15} {
		hs = append(hs, q.Schedule(when, nil))
	}
	q.Cancel(hs[2]) // 40
	q.Cancel(hs[3]) // 20
	got := drain(&q)
	want := []vclock.Time{10, 15, 30, 50, 60}
	if len(got) != len(want) {
		t.Fatalf("popped %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("popped %v, want %v", got, want)
		}
	}
}
