package eventq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/vclock"
)

func TestPopOrder(t *testing.T) {
	var q Queue
	var got []int
	q.Schedule(30, func() { got = append(got, 3) })
	q.Schedule(10, func() { got = append(got, 1) })
	q.Schedule(20, func() { got = append(got, 2) })
	for {
		e := q.Pop()
		if e == nil {
			break
		}
		e.Do()
	}
	want := []int{1, 2, 3}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("pop order = %v, want %v", got, want)
	}
}

func TestFIFOTieBreak(t *testing.T) {
	var q Queue
	var got []int
	for i := 0; i < 50; i++ {
		i := i
		q.Schedule(100, func() { got = append(got, i) })
	}
	for e := q.Pop(); e != nil; e = q.Pop() {
		e.Do()
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("equal-timestamp events delivered out of insertion order: %v", got)
		}
	}
}

func TestCancel(t *testing.T) {
	var q Queue
	ran := false
	e := q.Schedule(10, func() { ran = true })
	q.Schedule(20, func() {})
	q.Cancel(e)
	if !e.Canceled() {
		t.Fatal("event not marked canceled")
	}
	if q.NextTime() != 20 {
		t.Fatalf("NextTime = %v, want 20", q.NextTime())
	}
	if got := q.Pop(); got == nil || got.When != 20 {
		t.Fatalf("Pop returned %+v, want event at 20", got)
	}
	if q.Pop() != nil {
		t.Fatal("expected empty queue")
	}
	if ran {
		t.Fatal("canceled event ran")
	}
	// Double cancel and cancel-after-pop must not panic.
	q.Cancel(e)
	q.Cancel(nil)
}

func TestNextTimeEmpty(t *testing.T) {
	var q Queue
	if q.NextTime() != vclock.Never {
		t.Fatalf("empty NextTime = %v, want Never", q.NextTime())
	}
	if !q.Empty() || q.Len() != 0 {
		t.Fatal("zero queue should be empty")
	}
}

func TestLenExcludesCanceled(t *testing.T) {
	var q Queue
	a := q.Schedule(1, func() {})
	q.Schedule(2, func() {})
	q.Cancel(a)
	if q.Len() != 1 {
		t.Fatalf("Len = %d, want 1", q.Len())
	}
	if q.Empty() {
		t.Fatal("queue with one live event reported empty")
	}
}

// Property: popping a randomly scheduled set yields a sequence sorted by
// time, and every non-canceled event is delivered exactly once.
func TestPopSortedProperty(t *testing.T) {
	f := func(times []int16, seed int64) bool {
		var q Queue
		rng := rand.New(rand.NewSource(seed))
		var handles []*Event
		for _, ti := range times {
			handles = append(handles, q.Schedule(vclock.Time(int64(ti)+1<<15), nil))
		}
		canceled := map[*Event]bool{}
		for _, h := range handles {
			if rng.Intn(4) == 0 {
				q.Cancel(h)
				canceled[h] = true
			}
		}
		var popped []vclock.Time
		seen := map[*Event]bool{}
		for e := q.Pop(); e != nil; e = q.Pop() {
			if canceled[e] || seen[e] {
				return false
			}
			seen[e] = true
			popped = append(popped, e.When)
		}
		if len(popped) != len(times)-len(canceled) {
			return false
		}
		return sort.SliceIsSorted(popped, func(i, j int) bool { return popped[i] < popped[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestInterleavedScheduleAndPop(t *testing.T) {
	var q Queue
	q.Schedule(10, nil)
	q.Schedule(5, nil)
	if e := q.Pop(); e.When != 5 {
		t.Fatalf("first pop at %v, want 5", e.When)
	}
	// Schedule earlier than an already queued event.
	q.Schedule(7, nil)
	if e := q.Pop(); e.When != 7 {
		t.Fatalf("second pop at %v, want 7", e.When)
	}
	if e := q.Pop(); e.When != 10 {
		t.Fatalf("third pop at %v, want 10", e.When)
	}
}
