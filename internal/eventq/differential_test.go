package eventq

import (
	"math/rand"
	"testing"

	"repro/internal/vclock"
)

// The differential battery: every operation sequence is applied to both
// the wheel/heap hybrid and a naive reference model (a flat slice scanned
// for the (when, insertion) minimum), asserting identical pop order,
// NextTime, Len, and Handle-generation semantics after every step. The
// deterministic tests below and FuzzWheelDifferential share one byte-
// stream interpreter, so a fuzz crasher replays directly as a test case.

// failer is the subset of testing.TB the interpreter needs, letting the
// fuzz target and the plain tests share it.
type failer interface {
	Helper()
	Fatalf(format string, args ...any)
}

// refEvent is one scheduled event in the reference model.
type refEvent struct {
	when vclock.Time
	live bool
}

// maxDiffEvents bounds a single differential run so fuzz inputs cannot
// turn the O(n) reference scans into a timeout.
const maxDiffEvents = 2048

// runDifferential interprets data as an operation stream over a fresh
// Queue and the reference model.
//
// Stream grammar (total: any byte slice is a valid program):
//
//	op%6 == 0,1: schedule; a scale byte picks the temporal band (level-0
//	             ties through far-future heap spillover and past times),
//	             three raw bytes pick the offset within the band
//	op%6 == 2:   cancel the handle named by the next byte (possibly
//	             already popped or cancelled: must be a no-op)
//	op%6 == 3:   pop one event
//	op%6 == 4:   drain the entire run of events at NextTime (the batch
//	             path: same-timestamp events through one level-0 bucket)
//	op%6 == 5:   probe only (invariants still checked)
func runDifferential(t failer, data []byte) {
	t.Helper()
	var q Queue
	var ref []refEvent
	var handles []Handle
	lastPopped := -1
	now := vclock.Time(0)

	pos := 0
	next := func() byte {
		if pos >= len(data) {
			return 0
		}
		b := data[pos]
		pos++
		return b
	}

	refMin := func() int {
		best := -1
		for i := range ref {
			if !ref[i].live {
				continue
			}
			// Lower index == earlier insertion == lower seq: strictly
			// less-than keeps FIFO ties on the earliest id.
			if best == -1 || ref[i].when < ref[best].when {
				best = i
			}
		}
		return best
	}
	refNextTime := func() vclock.Time {
		if i := refMin(); i >= 0 {
			return ref[i].when
		}
		return vclock.Never
	}
	refLen := func() int {
		n := 0
		for i := range ref {
			if ref[i].live {
				n++
			}
		}
		return n
	}
	check := func(ctx string) {
		if got, want := q.Len(), refLen(); got != want {
			t.Fatalf("%s: Len = %d, reference has %d live events", ctx, got, want)
		}
		if got, want := q.NextTime(), refNextTime(); got != want {
			t.Fatalf("%s: NextTime = %v, reference min is %v", ctx, got, want)
		}
		if q.Empty() != (refLen() == 0) {
			t.Fatalf("%s: Empty = %v with %d reference events", ctx, q.Empty(), refLen())
		}
	}
	popOne := func() {
		want := refMin()
		do, when, ok := q.PopDo()
		if want == -1 {
			if ok {
				t.Fatalf("PopDo returned an event at %v from an empty reference", when)
			}
			return
		}
		if !ok {
			t.Fatalf("PopDo empty but reference holds an event at %v", ref[want].when)
		}
		if when != ref[want].when {
			t.Fatalf("popped at %v, reference min at %v", when, ref[want].when)
		}
		lastPopped = -1
		do()
		if lastPopped != want {
			t.Fatalf("popped event #%d, reference min is #%d (FIFO/seq order broken at t=%v)",
				lastPopped, want, when)
		}
		ref[want].live = false
		if handles[want].Valid() {
			t.Fatalf("handle of popped event #%d still valid", want)
		}
		if when > now {
			now = when
		}
	}

	for pos < len(data) {
		switch op := next(); op % 6 {
		case 0, 1:
			if len(ref) >= maxDiffEvents {
				continue
			}
			scale := next()
			raw := int64(next())<<16 | int64(next())<<8 | int64(next())
			var dt int64
			switch scale % 8 {
			case 0:
				dt = raw % 4 // same-timestamp batches
			case 1:
				dt = raw % 64 // level 0
			case 2:
				dt = raw % 4096 // level 1
			case 3:
				dt = raw % (1 << 18) // level 2
			case 4:
				dt = raw % (1 << 24) // level 3
			case 5:
				dt = 1<<24 + raw // beyond the wheel: far-future heap
			case 6:
				dt = -raw // past timestamp: heap
			case 7:
				dt = raw%260*63 + 1 // stride across slot boundaries
			}
			when := now.Add(vclock.Duration(dt))
			id := len(ref)
			h := q.Schedule(when, func() { lastPopped = id })
			if !h.Valid() {
				t.Fatalf("fresh handle for event #%d invalid", id)
			}
			handles = append(handles, h)
			ref = append(ref, refEvent{when: when, live: true})
		case 2:
			if len(handles) == 0 {
				continue
			}
			i := int(next()) % len(handles)
			if handles[i].Valid() != ref[i].live {
				t.Fatalf("handle #%d Valid = %v, reference live = %v",
					i, handles[i].Valid(), ref[i].live)
			}
			q.Cancel(handles[i]) // stale Cancel must be a no-op
			ref[i].live = false
			if handles[i].Valid() {
				t.Fatalf("cancelled handle #%d still valid", i)
			}
		case 3:
			popOne()
		case 4:
			nt := q.NextTime()
			for !q.Empty() && q.NextTime() == nt {
				popOne()
			}
		case 5:
			// Probe only.
		}
		check("after op")
	}
	for refLen() > 0 {
		popOne()
		check("final drain")
	}
	if _, _, ok := q.PopDo(); ok {
		t.Fatalf("queue still has events after the reference drained")
	}
}

// TestDifferentialTargeted drives hand-built sequences at the wheel's
// seams: window boundaries of every level, same-timestamp batches across
// a cascade, cancel-of-minimum, heap/wheel ties, and past timestamps.
func TestDifferentialTargeted(t *testing.T) {
	sched := func(scale byte, raw int) []byte {
		return []byte{0, scale, byte(raw >> 16), byte(raw >> 8), byte(raw)}
	}
	var cases = map[string][]byte{
		"level0-ties-then-batch-drain": concat(
			sched(0, 0), sched(0, 0), sched(0, 0), sched(0, 1), []byte{4}),
		"slot-boundary-63-64-65": concat(
			sched(1, 63), sched(2, 64), sched(2, 65), []byte{3, 3, 3}),
		"window-boundary-4095-4096": concat(
			sched(2, 4095), sched(3, 4096), []byte{3, 3}),
		"deep-window-boundary": concat(
			sched(3, (1<<18)-1), sched(4, 1<<18), []byte{3, 3}),
		"wheel-horizon-spillover": concat(
			sched(4, (1<<24)-1), sched(5, 0), sched(5, 1), []byte{3, 3, 3}),
		"past-schedule-pops-first": concat(
			sched(1, 10), sched(6, 5), []byte{3, 3}),
		"cancel-min-recompute": concat(
			sched(1, 1), sched(1, 2), sched(1, 3), []byte{2, 0, 3, 3}),
		"cancel-then-stale-cancel": concat(
			sched(1, 7), []byte{2, 0, 2, 0, 3}),
		"cascade-preserves-ties": concat(
			sched(2, 100), sched(2, 100), sched(2, 100), sched(2, 99), []byte{3, 4}),
		"interleave-pop-schedule": concat(
			sched(1, 10), []byte{3}, sched(0, 0), sched(1, 5), []byte{4, 3}),
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) { runDifferential(t, data) })
	}
}

func concat(parts ...[]byte) []byte {
	var out []byte
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// TestDifferentialRandom hammers the interpreter with seeded random
// operation streams: long schedules-heavy programs, cancel-heavy
// programs (the mostly-cancelled CV-timeout population), and mixed
// drains. Failures reduce to a byte string that drops straight into the
// fuzz corpus.
func TestDifferentialRandom(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 200 + rng.Intn(2000)
		data := make([]byte, n)
		rng.Read(data)
		if seed%3 == 0 {
			// Cancel-heavy: overwrite a third of ops with cancels.
			for i := 0; i+1 < len(data); i += 3 {
				data[i] = 2
			}
		}
		runDifferential(t, data)
	}
}

// TestDifferentialLongHorizon runs a sleeper-shaped workload: thousands
// of timers spread over multi-second horizons (every wheel level plus
// the heap tail), popped in full.
func TestDifferentialLongHorizon(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var data []byte
	for i := 0; i < 1500; i++ {
		raw := rng.Intn(1 << 24)
		data = append(data, 0, byte(rng.Intn(8)), byte(raw>>16), byte(raw>>8), byte(raw))
		if i%5 == 0 {
			data = append(data, 2, byte(rng.Intn(256))) // sprinkle cancels
		}
		if i%17 == 0 {
			data = append(data, 3)
		}
	}
	runDifferential(t, data)
}
