package eventq

import "testing"

// FuzzWheelDifferential feeds arbitrary operation streams through the
// differential interpreter: the timing wheel + far-future heap hybrid
// must match the naive sorted-reference model op for op — pop order,
// NextTime, Len, and Handle-generation semantics (a stale Cancel is a
// no-op) — on every input. The seed corpus under
// testdata/fuzz/FuzzWheelDifferential covers the wheel's seams: level
// boundaries, same-timestamp batches across cascades, cancel-of-minimum,
// heap spillover and past timestamps. `make check` runs this target in
// the fuzz-short pass.
func FuzzWheelDifferential(f *testing.F) {
	sched := func(scale byte, raw int) []byte {
		return []byte{0, scale, byte(raw >> 16), byte(raw >> 8), byte(raw)}
	}
	f.Add(concat(sched(0, 0), sched(0, 0), sched(0, 1), []byte{4}))
	f.Add(concat(sched(1, 63), sched(2, 64), sched(2, 65), []byte{3, 3, 3}))
	f.Add(concat(sched(2, 4095), sched(3, 4096), []byte{3, 3}))
	f.Add(concat(sched(4, (1<<24)-1), sched(5, 0), []byte{3, 3}))
	f.Add(concat(sched(1, 10), sched(6, 5), []byte{3, 3}))
	f.Add(concat(sched(1, 1), sched(1, 2), []byte{2, 0, 3}))
	f.Add(concat(sched(2, 100), sched(2, 100), sched(2, 99), []byte{3, 4}))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<14 {
			data = data[:1<<14]
		}
		runDifferential(t, data)
	})
}
