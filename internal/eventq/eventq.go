// Package eventq implements the deterministic timestamp-ordered event
// queue at the heart of the discrete-event thread simulator. Events with
// equal timestamps are delivered in insertion order (FIFO), which keeps
// simulations reproducible run to run.
//
// The queue is a hybrid of a hierarchical timing wheel and an indexed
// binary min-heap, split by temporal distance:
//
//   - Near-future events — the dense population: quantum expiries, compute
//     completions, the thousands of sleeper timers and mostly-cancelled
//     50 ms CV timeouts the paper's worlds generate — live in a four-level
//     timing wheel (64 slots per level, 1 µs ticks, ~16.8 virtual seconds
//     of horizon). Schedule and Cancel are O(1) pointer splices into
//     per-slot intrusive lists, and a run of same-timestamp events drains
//     from a single level-0 bucket without any heap traffic: one bitmap
//     lookup finds the bucket, then each pop is an O(1) head unlink.
//   - Far-future events (beyond the wheel horizon) and events scheduled in
//     the past stay in the indexed min-heap — the sparse tail for which
//     O(log n) is cheap and wheel cascading would be wasted work.
//
// Pop order is strictly (timestamp, insertion sequence) across both
// halves, so the hybrid is observably identical to a single heap; the
// differential tests in this package pin that equivalence against a naive
// sorted-list reference. Event structs are pooled and recycled, so a
// steady-state simulation — millions of timer, quantum and
// compute-completion events — allocates nothing in the scheduling hot
// path. Callers hold generation-checked Handles rather than raw pointers,
// which makes a stale Cancel (after the event fired or its struct was
// recycled) a safe no-op instead of a use-after-free.
package eventq

import (
	"math/bits"

	"repro/internal/vclock"
)

// Wheel geometry: four levels of 64 slots. Level L slots span 2^(6L)
// ticks (1 µs, 64 µs, ~4.1 ms, ~262 ms), so the wheel covers events up
// to 2^24 µs ≈ 16.8 virtual seconds ahead of the watermark — beyond the
// paper's 50 ms CV timeouts and multi-second sleeper population, with
// the heap absorbing the sparse remainder.
const (
	slotBits   = 6
	wheelSlots = 1 << slotBits // 64
	slotMask   = wheelSlots - 1
	numLevels  = 4
	wheelBits  = slotBits * numLevels // 24: the wheel's reach in ticks
)

// Location codes for event.lvl: 0..numLevels-1 are wheel levels.
const (
	locFree = -1 // not queued (free pool or never scheduled)
	locHeap = -2 // in the far-future/past min-heap
)

// event is one scheduled occurrence. Event structs are owned and recycled
// by their Queue; callers refer to them through Handles.
type event struct {
	when vclock.Time
	do   func()
	seq  uint64 // insertion order, the FIFO tie-break at equal timestamps

	// Wheel linkage: intrusive doubly-linked bucket list, O(1) cancel.
	next, prev *event

	idx int32  // heap index while lvl == locHeap, -1 otherwise
	lvl int8   // locFree, locHeap, or the wheel level holding the event
	gen uint32 // bumped on every recycle; Handles must match to act
}

// Handle identifies one scheduled event. The zero Handle is invalid (and
// safe to Cancel). A Handle outlives its event harmlessly: once the event
// fires or is canceled, the struct is recycled under a new generation and
// the stale Handle no longer matches.
type Handle struct {
	e   *event
	gen uint32
}

// Valid reports whether h still names a queued event.
func (h Handle) Valid() bool {
	return h.e != nil && h.e.gen == h.gen && h.e.lvl != locFree
}

// bucket is one wheel slot: an intrusive FIFO of events. Within a level-0
// bucket every event shares one timestamp, so FIFO order is exactly the
// (when, seq) order; higher-level buckets are unsorted holding pens whose
// FIFO order preserves relative seq among equal timestamps across
// cascades.
type bucket struct {
	head, tail *event
}

// Queue is a priority queue of events ordered by (When, insertion order).
// The zero value is an empty queue ready to use.
type Queue struct {
	// cur is the wheel watermark: the timestamp of the last popped event
	// (never decreasing). Every wheel event satisfies when >= cur; the
	// level of a queued wheel event is determined by when XOR cur at
	// placement time, and buckets cascade toward level 0 exactly when the
	// watermark enters their window, so level-0 buckets always hold a
	// single timestamp within the watermark's 64-tick window.
	cur vclock.Time

	wheel    [numLevels][wheelSlots]bucket
	occupied [numLevels]uint64 // per-level slot-occupancy bitmaps

	// Cached earliest wheel event. Finding it is O(1) while level 0 is
	// occupied (one TrailingZeros on the bitmap); when the minimum sits in
	// a higher level the bucket is scanned once and the result cached
	// until that exact event is popped or cancelled.
	minEv    *event
	minValid bool

	wheelLen int // events in the wheel
	h        []*event
	free     []*event // recycled event structs (event pooling)
	seq      uint64
}

// Len returns the number of queued events.
func (q *Queue) Len() int { return q.wheelLen + len(q.h) }

// Empty reports whether no events remain.
func (q *Queue) Empty() bool { return q.Len() == 0 }

// Schedule enqueues fn to run at t and returns a handle that can cancel it.
func (q *Queue) Schedule(t vclock.Time, fn func()) Handle {
	var e *event
	if n := len(q.free); n > 0 {
		e = q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
	} else {
		e = &event{idx: -1, lvl: locFree}
	}
	e.when, e.do, e.seq = t, fn, q.seq
	q.seq++
	q.place(e)
	return Handle{e: e, gen: e.gen}
}

// place routes e to the wheel or the heap by temporal distance from the
// watermark. Past timestamps (t < cur, impossible from the simulator but
// legal API inputs) and far-future timestamps take the heap; everything
// within the wheel's reach takes an O(1) bucket append.
func (q *Queue) place(e *event) {
	t := e.when
	if t < q.cur || uint64(t^q.cur) >= 1<<wheelBits {
		q.heapPush(e)
		return
	}
	lvl := levelOf(uint64(t ^ q.cur))
	b := &q.wheel[lvl][int(t>>(slotBits*lvl))&slotMask]
	e.lvl = int8(lvl)
	e.prev = b.tail
	e.next = nil
	if b.tail != nil {
		b.tail.next = e
	} else {
		b.head = e
		q.occupied[lvl] |= 1 << (uint(t>>(slotBits*lvl)) & slotMask)
	}
	b.tail = e
	q.wheelLen++
	if q.minValid && t < q.minEv.when {
		q.minEv = e
	}
}

// levelOf maps a nonzero-extended XOR distance (< 2^wheelBits) to its
// wheel level: the highest 6-bit digit in which t and cur differ.
func levelOf(d uint64) int {
	// d < 2^24 here; (bits.Len64(d|1)-1)/slotBits buckets the leading bit.
	return (bits.Len64(d|1) - 1) / slotBits
}

// Cancel removes the event named by h from the queue. Cancel on the zero
// Handle, an already-fired event, or an already-canceled event is a no-op.
func (q *Queue) Cancel(h Handle) {
	if !h.Valid() {
		return
	}
	e := h.e
	if e.lvl == locHeap {
		q.heapRemove(int(e.idx))
	} else {
		q.wheelUnlink(e)
	}
	q.recycle(e)
}

// wheelUnlink splices e out of its bucket, clearing the occupancy bit
// when the bucket empties and invalidating the min cache if e was the
// cached minimum.
func (q *Queue) wheelUnlink(e *event) {
	lvl := int(e.lvl)
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		q.wheel[lvl][int(e.when>>(slotBits*lvl))&slotMask].head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		q.wheel[lvl][int(e.when>>(slotBits*lvl))&slotMask].tail = e.prev
	}
	if q.wheel[lvl][int(e.when>>(slotBits*lvl))&slotMask].head == nil {
		q.occupied[lvl] &^= 1 << (uint(e.when>>(slotBits*lvl)) & slotMask)
	}
	e.next, e.prev = nil, nil
	q.wheelLen--
	if q.minValid && e == q.minEv {
		q.minValid = false
		q.minEv = nil
	}
}

// wheelMin returns the earliest wheel event in (when, seq) order, or nil
// when the wheel is empty. While level 0 is occupied this is one bitmap
// TrailingZeros plus a head load; otherwise the first occupied bucket of
// the shallowest occupied level is scanned once and the answer cached.
func (q *Queue) wheelMin() *event {
	if q.minValid {
		return q.minEv
	}
	if q.wheelLen == 0 {
		return nil
	}
	if m := q.occupied[0]; m != 0 {
		// Level-0 buckets hold one timestamp each within the watermark's
		// window, appended in seq order: the head of the first occupied
		// slot is the exact minimum.
		e := q.wheel[0][bits.TrailingZeros64(m)].head
		q.minEv, q.minValid = e, true
		return e
	}
	for lvl := 1; lvl < numLevels; lvl++ {
		m := q.occupied[lvl]
		if m == 0 {
			continue
		}
		// Higher-level buckets are unsorted across timestamps; scan the
		// earliest bucket for the (when, seq) minimum. The scan is paid
		// once per cache invalidation, and cascading on pop moves the
		// whole bucket to cheaper levels immediately afterwards.
		min := q.wheel[lvl][bits.TrailingZeros64(m)].head
		for e := min.next; e != nil; e = e.next {
			if e.when < min.when || (e.when == min.when && e.seq < min.seq) {
				min = e
			}
		}
		q.minEv, q.minValid = min, true
		return min
	}
	return nil
}

// NextTime returns the timestamp of the earliest event, or vclock.Never
// if the queue is empty.
func (q *Queue) NextTime() vclock.Time {
	w := q.wheelMin()
	if len(q.h) == 0 {
		if w == nil {
			return vclock.Never
		}
		return w.when
	}
	if w == nil || q.h[0].when < w.when {
		return q.h[0].when
	}
	return w.when
}

// PopDo removes the earliest event and returns its callback and
// timestamp. The event struct is recycled before the callback runs, so
// the callback itself may Schedule without growing the pool. ok is false
// when the queue is empty.
func (q *Queue) PopDo() (do func(), when vclock.Time, ok bool) {
	w := q.wheelMin()
	var e *event
	switch {
	case w == nil && len(q.h) == 0:
		return nil, 0, false
	case w == nil:
		e = q.heapPopMin()
	case len(q.h) == 0:
		e = q.popWheelMin(w)
	default:
		// Both halves populated: (when, seq) decides, so the hybrid pops
		// in exactly the order a single heap would.
		h := q.h[0]
		if h.when < w.when || (h.when == w.when && h.seq < w.seq) {
			e = q.heapPopMin()
		} else {
			e = q.popWheelMin(w)
		}
	}
	do, when = e.do, e.when
	if when > q.cur {
		if e.lvl == locHeap {
			// Heap pop: the watermark may cross wheel block boundaries
			// without touching the popped bucket, so re-normalize.
			q.advanceTo(when)
		} else {
			q.cur = when
		}
	}
	q.recycle(e)
	return do, when, true
}

// advanceTo moves the watermark to t after a heap pop. Wheel pops keep
// the level invariant by construction (the popped bucket is exactly the
// one whose window the watermark enters), but a heap pop — a far-future
// event maturing, or a past timestamp racing ahead of a sparse wheel —
// can advance the watermark across block boundaries without touching the
// wheel. Any bucket sitting under the new watermark's slot at a level
// whose boundary was crossed may now hold events whose XOR distance
// shrank below that level, which would break the level-ordered minimum
// scan; cascading those buckets restores the invariant that every queued
// event's level matches its distance from the current watermark.
func (q *Queue) advanceTo(t vclock.Time) {
	old := q.cur
	q.cur = t
	if q.wheelLen == 0 {
		return
	}
	for lvl := 1; lvl < numLevels; lvl++ {
		shift := uint(slotBits * lvl)
		if old>>shift == t>>shift {
			// No boundary crossed at this level — nor at any higher one.
			break
		}
		slot := int(t>>shift) & slotMask
		if q.occupied[lvl]&(1<<uint(slot)) != 0 {
			q.cascade(lvl, slot)
		}
	}
}

// heapPopMin removes and returns the heap's root.
func (q *Queue) heapPopMin() *event {
	e := q.h[0]
	q.heapRemove(0)
	return e
}

// popWheelMin removes the wheel's minimum event w. If w sits above level
// 0 its whole bucket cascades down first: the watermark advances to
// w.when (the pop instant — by then no earlier event can exist), and
// every event in the bucket re-places into a strictly lower level, in
// FIFO order so equal-timestamp runs keep their seq order. After the
// cascade w is guaranteed to head a level-0 bucket.
func (q *Queue) popWheelMin(w *event) *event {
	if w.lvl > 0 {
		q.cur = w.when
		q.cascade(int(w.lvl), int(w.when>>(slotBits*int(w.lvl)))&slotMask)
	}
	q.wheelUnlink(w)
	return w
}

// cascade redistributes one bucket's events toward level 0 after the
// watermark entered the bucket's window. Relative order is preserved per
// destination bucket, which keeps equal-timestamp FIFO delivery intact.
func (q *Queue) cascade(lvl, slot int) {
	b := &q.wheel[lvl][slot]
	e := b.head
	b.head, b.tail = nil, nil
	q.occupied[lvl] &^= 1 << uint(slot)
	q.minValid = false
	q.minEv = nil
	for e != nil {
		next := e.next
		e.next, e.prev = nil, nil
		q.wheelLen--
		q.place(e)
		e = next
	}
}

// recycle invalidates every outstanding Handle to e and returns the
// struct to the pool.
func (q *Queue) recycle(e *event) {
	e.gen++
	e.do = nil
	e.idx = -1
	e.lvl = locFree
	e.next, e.prev = nil, nil
	q.free = append(q.free, e)
}

// --- far-future / past-timestamp min-heap (indexed, pooled) ---

// heapPush adds e to the heap half.
func (q *Queue) heapPush(e *event) {
	e.lvl = locHeap
	e.idx = int32(len(q.h))
	q.h = append(q.h, e)
	q.up(int(e.idx))
}

// heapRemove unlinks the event at heap index i.
func (q *Queue) heapRemove(i int) {
	n := len(q.h) - 1
	last := q.h[n]
	q.h[n] = nil
	q.h = q.h[:n]
	if i == n {
		return
	}
	q.h[i] = last
	last.idx = int32(i)
	if !q.up(i) {
		q.down(i)
	}
}

// less orders events by (when, seq): earliest first, FIFO at ties.
func (q *Queue) less(i, j int) bool {
	a, b := q.h[i], q.h[j]
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

// up sifts the event at index i toward the root; it reports whether the
// event moved.
func (q *Queue) up(i int) bool {
	moved := false
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.swap(i, parent)
		i = parent
		moved = true
	}
	return moved
}

// down sifts the event at index i toward the leaves.
func (q *Queue) down(i int) {
	n := len(q.h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		min := l
		if r := l + 1; r < n && q.less(r, l) {
			min = r
		}
		if !q.less(min, i) {
			return
		}
		q.swap(i, min)
		i = min
	}
}

func (q *Queue) swap(i, j int) {
	q.h[i], q.h[j] = q.h[j], q.h[i]
	q.h[i].idx = int32(i)
	q.h[j].idx = int32(j)
}
