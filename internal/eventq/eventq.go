// Package eventq implements the deterministic timestamp-ordered event
// queue at the heart of the discrete-event thread simulator. Events with
// equal timestamps are delivered in insertion order (FIFO), which keeps
// simulations reproducible run to run.
//
// The queue is an indexed binary min-heap over pooled event structs: a
// canceled or delivered event is unlinked from the heap immediately and
// recycled for the next Schedule, so a steady-state simulation — millions
// of timer, quantum and compute-completion events — allocates nothing in
// the scheduling hot path. Callers hold generation-checked Handles rather
// than raw pointers, which makes a stale Cancel (after the event fired or
// its struct was recycled) a safe no-op instead of a use-after-free.
package eventq

import (
	"repro/internal/vclock"
)

// event is one scheduled occurrence. Event structs are owned and recycled
// by their Queue; callers refer to them through Handles.
type event struct {
	when vclock.Time
	do   func()
	seq  uint64 // insertion order, the FIFO tie-break at equal timestamps
	idx  int32  // heap index, -1 when not queued
	gen  uint32 // bumped on every recycle; Handles must match to act
}

// Handle identifies one scheduled event. The zero Handle is invalid (and
// safe to Cancel). A Handle outlives its event harmlessly: once the event
// fires or is canceled, the struct is recycled under a new generation and
// the stale Handle no longer matches.
type Handle struct {
	e   *event
	gen uint32
}

// Valid reports whether h still names a queued event.
func (h Handle) Valid() bool {
	return h.e != nil && h.e.gen == h.gen && h.e.idx >= 0
}

// Queue is a priority queue of events ordered by (When, insertion order).
// The zero value is an empty queue ready to use.
type Queue struct {
	h    []*event
	free []*event // recycled event structs (event pooling)
	seq  uint64
}

// Len returns the number of queued events.
func (q *Queue) Len() int { return len(q.h) }

// Empty reports whether no events remain.
func (q *Queue) Empty() bool { return len(q.h) == 0 }

// Schedule enqueues fn to run at t and returns a handle that can cancel it.
func (q *Queue) Schedule(t vclock.Time, fn func()) Handle {
	var e *event
	if n := len(q.free); n > 0 {
		e = q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
	} else {
		e = &event{}
	}
	e.when, e.do, e.seq = t, fn, q.seq
	q.seq++
	e.idx = int32(len(q.h))
	q.h = append(q.h, e)
	q.up(int(e.idx))
	return Handle{e: e, gen: e.gen}
}

// Cancel removes the event named by h from the queue. Cancel on the zero
// Handle, an already-fired event, or an already-canceled event is a no-op.
func (q *Queue) Cancel(h Handle) {
	if !h.Valid() {
		return
	}
	q.remove(int(h.e.idx))
	q.recycle(h.e)
}

// NextTime returns the timestamp of the earliest event, or vclock.Never
// if the queue is empty.
func (q *Queue) NextTime() vclock.Time {
	if len(q.h) == 0 {
		return vclock.Never
	}
	return q.h[0].when
}

// PopDo removes the earliest event and returns its callback and
// timestamp. The event struct is recycled before the callback runs, so
// the callback itself may Schedule without growing the pool. ok is false
// when the queue is empty.
func (q *Queue) PopDo() (do func(), when vclock.Time, ok bool) {
	if len(q.h) == 0 {
		return nil, 0, false
	}
	e := q.h[0]
	do, when = e.do, e.when
	q.remove(0)
	q.recycle(e)
	return do, when, true
}

// recycle invalidates every outstanding Handle to e and returns the
// struct to the pool.
func (q *Queue) recycle(e *event) {
	e.gen++
	e.do = nil
	e.idx = -1
	q.free = append(q.free, e)
}

// remove unlinks the event at heap index i.
func (q *Queue) remove(i int) {
	n := len(q.h) - 1
	last := q.h[n]
	q.h[n] = nil
	q.h = q.h[:n]
	if i == n {
		return
	}
	q.h[i] = last
	last.idx = int32(i)
	if !q.up(i) {
		q.down(i)
	}
}

// less orders events by (when, seq): earliest first, FIFO at ties.
func (q *Queue) less(i, j int) bool {
	a, b := q.h[i], q.h[j]
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

// up sifts the event at index i toward the root; it reports whether the
// event moved.
func (q *Queue) up(i int) bool {
	moved := false
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.swap(i, parent)
		i = parent
		moved = true
	}
	return moved
}

// down sifts the event at index i toward the leaves.
func (q *Queue) down(i int) {
	n := len(q.h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		min := l
		if r := l + 1; r < n && q.less(r, l) {
			min = r
		}
		if !q.less(min, i) {
			return
		}
		q.swap(i, min)
		i = min
	}
}

func (q *Queue) swap(i, j int) {
	q.h[i], q.h[j] = q.h[j], q.h[i]
	q.h[i].idx = int32(i)
	q.h[j].idx = int32(j)
}
