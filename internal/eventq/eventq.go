// Package eventq implements the deterministic timestamp-ordered event
// queue at the heart of the discrete-event thread simulator. Events with
// equal timestamps are delivered in insertion order (FIFO), which keeps
// simulations reproducible run to run.
package eventq

import (
	"container/heap"

	"repro/internal/vclock"
)

// Event is a scheduled occurrence. The simulator stores arbitrary payloads
// via the Do callback; cancellation is supported so that, e.g., a quantum
// expiry can be revoked when its thread blocks early.
type Event struct {
	When vclock.Time
	Do   func()

	seq      uint64
	index    int // heap index, -1 when not queued
	canceled bool
}

// Canceled reports whether Cancel was called on e.
func (e *Event) Canceled() bool { return e.canceled }

// Queue is a priority queue of events ordered by (When, insertion order).
// The zero value is an empty queue ready to use.
type Queue struct {
	h   eventHeap
	seq uint64
}

// Len returns the number of live (non-canceled) events in the queue.
// Canceled events still physically queued are not counted.
func (q *Queue) Len() int {
	n := 0
	for _, e := range q.h {
		if !e.canceled {
			n++
		}
	}
	return n
}

// Empty reports whether no live events remain.
func (q *Queue) Empty() bool {
	for _, e := range q.h {
		if !e.canceled {
			return false
		}
	}
	return true
}

// Schedule enqueues fn to run at t and returns a handle that can cancel it.
func (q *Queue) Schedule(t vclock.Time, fn func()) *Event {
	e := &Event{When: t, Do: fn, seq: q.seq, index: -1}
	q.seq++
	heap.Push(&q.h, e)
	return e
}

// Cancel marks e as canceled. A canceled event is skipped by Pop. Cancel
// on an already-popped or already-canceled event is a no-op.
func (q *Queue) Cancel(e *Event) {
	if e == nil || e.canceled {
		return
	}
	e.canceled = true
	if e.index >= 0 {
		heap.Remove(&q.h, e.index)
		e.index = -1
	}
}

// NextTime returns the timestamp of the earliest live event, or
// vclock.Never if the queue is empty.
func (q *Queue) NextTime() vclock.Time {
	q.skipCanceled()
	if len(q.h) == 0 {
		return vclock.Never
	}
	return q.h[0].When
}

// Pop removes and returns the earliest live event, or nil if none remain.
func (q *Queue) Pop() *Event {
	q.skipCanceled()
	if len(q.h) == 0 {
		return nil
	}
	e := heap.Pop(&q.h).(*Event)
	e.index = -1
	return e
}

func (q *Queue) skipCanceled() {
	for len(q.h) > 0 && q.h[0].canceled {
		e := heap.Pop(&q.h).(*Event)
		e.index = -1
	}
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].When != h[j].When {
		return h[i].When < h[j].When
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
