package eventq

import (
	"testing"

	"repro/internal/vclock"
)

// The package-level microbenchmarks `make bench` reports. Each one pins
// a distinct wheel regime: the mostly-cancelled near-future churn, the
// same-timestamp batch drain, the cascade-heavy stride pattern, and the
// far-future heap spillover.

// BenchmarkScheduleCancel: schedule 64 timers spanning every wheel
// level, cancel them all. The paper's dominant timer lifecycle — CV
// timeouts that are almost always cancelled before firing.
func BenchmarkScheduleCancel(b *testing.B) {
	var q Queue
	offsets := []vclock.Duration{3, 150, 20_000, 2_000_000} // µs, one per level
	handles := make([]Handle, 0, 64)
	nop := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		handles = handles[:0]
		for j := 0; j < 64; j++ {
			t := vclock.Time(0).Add(offsets[j%len(offsets)] + vclock.Duration(j))
			handles = append(handles, q.Schedule(t, nop))
		}
		for _, h := range handles {
			q.Cancel(h)
		}
	}
}

// BenchmarkBatchDrain: 64 events at one timestamp drained through a
// single level-0 bucket — one bitmap lookup, then O(1) head unlinks.
func BenchmarkBatchDrain(b *testing.B) {
	var q Queue
	fired := 0
	nop := func() { fired++ }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := vclock.Time(i + 1)
		for j := 0; j < 64; j++ {
			q.Schedule(at, nop)
		}
		for {
			do, _, ok := q.PopDo()
			if !ok {
				break
			}
			do()
		}
	}
	b.StopTimer()
	if fired != b.N*64 {
		b.Fatalf("fired %d of %d", fired, b.N*64)
	}
}

// BenchmarkStridePop: schedule/pop pairs striding across level-0 and
// level-1 windows, forcing regular cascades — the steady-state quantum
// and compute-completion traffic.
func BenchmarkStridePop(b *testing.B) {
	var q Queue
	nop := func() {}
	now := vclock.Time(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Schedule(now.Add(vclock.Duration(17+i%101)), nop)
		if _, when, ok := q.PopDo(); ok {
			now = when
		}
	}
}

// BenchmarkHeapSpillover: events beyond the 2^24-tick wheel horizon take
// the indexed min-heap path; schedule/cancel 64 of them per iteration.
func BenchmarkHeapSpillover(b *testing.B) {
	var q Queue
	nop := func() {}
	handles := make([]Handle, 0, 64)
	far := vclock.Time(0).Add(1 << 25) // past the wheel horizon
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		handles = handles[:0]
		for j := 0; j < 64; j++ {
			handles = append(handles, q.Schedule(far.Add(vclock.Duration(j)), nop))
		}
		for _, h := range handles {
			q.Cancel(h)
		}
	}
}
