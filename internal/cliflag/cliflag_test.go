package cliflag

import (
	"strings"
	"testing"
	"time"
)

func TestSetDiagnostics(t *testing.T) {
	var stderr strings.Builder
	s := New("toolx", &stderr)
	if code := s.Failf("bad %s", "flag"); code != ExitUsage {
		t.Fatalf("Failf returned %d, want %d", code, ExitUsage)
	}
	if got := stderr.String(); got != "toolx: bad flag\n" {
		t.Fatalf("Failf wrote %q", got)
	}
	stderr.Reset()
	s.Warnf("knob %d ignored", 7)
	if got := stderr.String(); got != "toolx: warning: knob 7 ignored\n" {
		t.Fatalf("Warnf wrote %q", got)
	}
	stderr.Reset()
	if code := s.Error(errFor("boom")); code != ExitFailure {
		t.Fatalf("Error returned %d, want %d", code, ExitFailure)
	}
	if got := stderr.String(); got != "toolx: boom\n" {
		t.Fatalf("Error wrote %q", got)
	}
}

func errFor(msg string) error { return &strErr{msg} }

type strErr struct{ s string }

func (e *strErr) Error() string { return e.s }

func TestParseConventions(t *testing.T) {
	var stderr strings.Builder
	s := New("toolx", &stderr)
	n := s.Int("n", 1, "a knob")
	if err := s.Parse([]string{"-n", "3", "extra", "more"}); err != nil {
		t.Fatal(err)
	}
	if *n != 3 {
		t.Fatalf("n = %d", *n)
	}
	if err := s.MaxArgs(1); err == nil || !strings.Contains(err.Error(), `unexpected argument "more"`) {
		t.Fatalf("MaxArgs(1) = %v", err)
	}
	if err := s.NoArgs(); err == nil || !strings.Contains(err.Error(), `unexpected argument "extra"`) {
		t.Fatalf("NoArgs = %v", err)
	}
	// Unknown flags surface through Parse with the stdlib's message on
	// the command's stderr.
	s2 := New("toolx", &stderr)
	stderr.Reset()
	if err := s2.Parse([]string{"-nope"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if !strings.Contains(stderr.String(), "flag provided but not defined") {
		t.Fatalf("stderr %q", stderr.String())
	}
}

func TestValidators(t *testing.T) {
	if err := CheckSeed(5, "must be nonzero"); err != nil {
		t.Fatal(err)
	}
	if err := CheckSeed(0, "must be nonzero (0 would disable the world RNG)"); err == nil ||
		err.Error() != "-seed must be nonzero (0 would disable the world RNG)" {
		t.Fatalf("CheckSeed: %v", err)
	}

	if err := MinInt("parallel", 4, 1, "need at least one worker"); err != nil {
		t.Fatal(err)
	}
	if err := MinInt("parallel", 0, 1, "need at least one worker"); err == nil ||
		err.Error() != "-parallel 0: need at least one worker" {
		t.Fatalf("MinInt: %v", err)
	}

	if err := AtLeast("budget", 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := AtLeast("budget", 0, 1); err == nil || err.Error() != "-budget must be at least 1" {
		t.Fatalf("AtLeast: %v", err)
	}

	if err := OneOf("format", "text", "text", "markdown"); err != nil {
		t.Fatal(err)
	}
	if err := OneOf("format", "yaml", "text", "markdown"); err == nil ||
		err.Error() != `unknown -format "yaml" (want text or markdown)` {
		t.Fatalf("OneOf: %v", err)
	}
	if err := OneOf("x", "d", "a", "b", "c"); err == nil ||
		!strings.Contains(err.Error(), "want a, b or c") {
		t.Fatalf("OneOf three: %v", err)
	}

	if err := Exclusive("replay", false, "shrink", true); err != nil {
		t.Fatal(err)
	}
	if err := Exclusive("replay", true, "shrink", true); err == nil ||
		err.Error() != "-replay and -shrink are mutually exclusive" {
		t.Fatalf("Exclusive: %v", err)
	}

	if d, err := VirtualDuration("traceduration", 1500*time.Microsecond); err != nil || d != 1500 {
		t.Fatalf("VirtualDuration = %v, %v", d, err)
	}
	if _, err := VirtualDuration("traceduration", 500*time.Nanosecond); err == nil ||
		err.Error() != "-traceduration 500ns rounds to 0us of virtual time; need at least 1us" {
		t.Fatalf("VirtualDuration sub-us: %v", err)
	}
	if _, err := VirtualDuration("traceduration", -time.Second); err == nil ||
		!strings.Contains(err.Error(), "need at least 1us") {
		t.Fatalf("VirtualDuration negative: %v", err)
	}
}

func TestList(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"T1", []string{"T1"}},
		{"T1,T2", []string{"T1", "T2"}},
		{" T1 , T2 ,", []string{"T1", "T2"}},
		{",,", nil},
	}
	for _, tc := range cases {
		got := List(tc.in)
		if len(got) != len(tc.want) {
			t.Fatalf("List(%q) = %v, want %v", tc.in, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("List(%q) = %v, want %v", tc.in, got, tc.want)
			}
		}
	}
}

func TestNoDuplicates(t *testing.T) {
	if err := NoDuplicates("experiment", []string{"T1", "T2", "W1"}); err != nil {
		t.Fatal(err)
	}
	if err := NoDuplicates("experiment", nil); err != nil {
		t.Fatal(err)
	}
	if err := NoDuplicates("experiment", []string{"W1", "W1"}); err == nil ||
		err.Error() != `-experiment: duplicate value "W1"` {
		t.Fatalf("NoDuplicates: %v", err)
	}
	// IDs compare case-insensitively, so w1 duplicates W1.
	if err := NoDuplicates("experiment", []string{"W1", "w1"}); err == nil ||
		err.Error() != `-experiment: duplicate value "w1"` {
		t.Fatalf("NoDuplicates case-insensitive: %v", err)
	}
}
