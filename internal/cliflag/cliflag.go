// Package cliflag is the shared command-line surface of this
// repository's binaries (cmd/threadstudy, cmd/traceview, cmd/schedcheck,
// cmd/paradigmscan). Each command used to hand-roll the same plumbing —
// a ContinueOnError flag set pointed at stderr, "<cmd>: <message>"
// diagnostics, exit-code conventions, and ad-hoc flag validation — with
// small divergences. This package is the single copy.
//
// Conventions every command shares:
//
//   - exit codes: 0 success, 1 runtime failure, 2 usage error
//   - usage errors and runtime failures print one "<cmd>: <message>"
//     line to stderr
//   - advisories print "<cmd>: warning: <message>" to stderr and never
//     change stdout (warned runs stay byte-identical to unwarned ones)
//   - seed, minimum-value, enumeration, duration and positional-argument
//     validation use the helpers below, so the message shapes match
//     across commands
package cliflag

import (
	"flag"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/vclock"
)

// The process exit codes every command in this repository uses.
const (
	ExitOK      = 0 // success
	ExitFailure = 1 // runtime failure (the work itself went wrong)
	ExitUsage   = 2 // usage error (bad flags or arguments)
)

// Set is a flag.FlagSet wired to the repository's CLI conventions: it
// parses with ContinueOnError, prints to the command's stderr, and
// carries the diagnostic helpers.
type Set struct {
	*flag.FlagSet
	stderr io.Writer
}

// New returns a Set for the named command writing diagnostics to stderr.
func New(name string, stderr io.Writer) *Set {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(stderr)
	return &Set{FlagSet: fs, stderr: stderr}
}

// Failf reports a usage error as "<cmd>: <message>" and returns
// ExitUsage, so callers can write `return fs.Failf(...)`.
func (s *Set) Failf(format string, a ...any) int {
	fmt.Fprintf(s.stderr, "%s: %s\n", s.Name(), fmt.Sprintf(format, a...))
	return ExitUsage
}

// Fail reports err as a usage error and returns ExitUsage.
func (s *Set) Fail(err error) int {
	return s.Failf("%v", err)
}

// Error reports err as a runtime failure ("<cmd>: <err>") and returns
// ExitFailure.
func (s *Set) Error(err error) int {
	fmt.Fprintf(s.stderr, "%s: %v\n", s.Name(), err)
	return ExitFailure
}

// Warnf prints a "<cmd>: warning: <message>" advisory to stderr.
// Warnings never affect stdout or the exit code.
func (s *Set) Warnf(format string, a ...any) {
	fmt.Fprintf(s.stderr, "%s: warning: %s\n", s.Name(), fmt.Sprintf(format, a...))
}

// NoArgs rejects any positional argument.
func (s *Set) NoArgs() error {
	return s.MaxArgs(0)
}

// MaxArgs rejects positional arguments beyond the first n.
func (s *Set) MaxArgs(n int) error {
	if s.NArg() > n {
		return fmt.Errorf("unexpected argument %q", s.Arg(n))
	}
	return nil
}

// CheckSeed rejects the zero seed, which every command treats as a
// usage error (zero either aliases the default seed or disables the
// world RNG). why completes the message after "-seed " in the command's
// own terms.
func CheckSeed(seed int64, why string) error {
	if seed != 0 {
		return nil
	}
	return fmt.Errorf("-seed %s", why)
}

// MinInt enforces a floor on an integer knob, echoing the rejected
// value: "-<name> <v>: <why>".
func MinInt(name string, v, min int, why string) error {
	if v >= min {
		return nil
	}
	return fmt.Errorf("-%s %d: %s", name, v, why)
}

// AtLeast is MinInt with the terse canonical message
// "-<name> must be at least <min>".
func AtLeast(name string, v, min int) error {
	if v >= min {
		return nil
	}
	return fmt.Errorf("-%s must be at least %d", name, min)
}

// OneOf validates an enumerated string flag:
// `unknown -<name> "<v>" (want a or b)`.
func OneOf(name, v string, allowed ...string) error {
	for _, a := range allowed {
		if v == a {
			return nil
		}
	}
	return fmt.Errorf("unknown -%s %q (want %s)", name, v, orList(allowed))
}

// Exclusive rejects two flags being set together:
// "-<a> and -<b> are mutually exclusive".
func Exclusive(a string, aSet bool, b string, bSet bool) error {
	if aSet && bSet {
		return fmt.Errorf("-%s and -%s are mutually exclusive", a, b)
	}
	return nil
}

// VirtualDuration converts a wall-clock flag value into virtual
// microseconds. Flags parse wall-clock syntax ("1.5s", "500ns") but the
// simulator runs in virtual microseconds, so sub-microsecond values
// would silently truncate to a zero-length run; they are rejected
// instead.
func VirtualDuration(name string, d time.Duration) (vclock.Duration, error) {
	us := d.Microseconds()
	if us <= 0 {
		return 0, fmt.Errorf("-%s %v rounds to %dus of virtual time; need at least 1us", name, d, us)
	}
	return vclock.Duration(us), nil
}

// List splits a comma-separated flag value into its items, trimming
// whitespace and dropping empties, so "-experiment T1, T2," and
// "-experiment T1,T2" parse identically.
func List(v string) []string {
	var items []string
	for _, item := range strings.Split(v, ",") {
		if item = strings.TrimSpace(item); item != "" {
			items = append(items, item)
		}
	}
	return items
}

// NoDuplicates rejects a repeated item in a list flag, case-insensitively
// (IDs compare case-insensitively everywhere else in these commands):
// `-<name>: duplicate value "<item>"`. A duplicated ID is always operator
// error — the command would silently run the experiment twice and emit
// its report twice.
func NoDuplicates(name string, items []string) error {
	seen := make(map[string]bool, len(items))
	for _, item := range items {
		k := strings.ToLower(item)
		if seen[k] {
			return fmt.Errorf("-%s: duplicate value %q", name, item)
		}
		seen[k] = true
	}
	return nil
}

// orList renders an enumeration as prose: "a", "a or b", "a, b or c".
func orList(items []string) string {
	switch len(items) {
	case 0:
		return ""
	case 1:
		return items[0]
	}
	return strings.Join(items[:len(items)-1], ", ") + " or " + items[len(items)-1]
}
