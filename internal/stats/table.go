package stats

import (
	"fmt"
	"strings"
)

// Table renders aligned plain-text tables in the style of the paper's
// Tables 1–4, for cmd/threadstudy and EXPERIMENTS.md.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row of cells; extra cells beyond the header count are
// kept and padded with empty headers at render time.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row built from fmt.Sprintf applied pairwise:
// AddRowf("%s", x, "%.1f", y).
func (t *Table) AddRowf(pairs ...any) {
	if len(pairs)%2 != 0 {
		panic("stats: AddRowf needs format/value pairs")
	}
	var cells []string
	for i := 0; i < len(pairs); i += 2 {
		cells = append(cells, fmt.Sprintf(pairs[i].(string), pairs[i+1]))
	}
	t.AddRow(cells...)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// String renders the table with a title line, a header rule and aligned
// columns (first column left-aligned, the rest right-aligned).
func (t *Table) String() string {
	cols := len(t.Headers)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	cell := func(r []string, i int) string {
		if i < len(r) {
			return r[i]
		}
		return ""
	}
	header := make([]string, cols)
	for i := range header {
		header[i] = cell(t.Headers, i)
	}
	for i := 0; i < cols; i++ {
		widths[i] = len(header[i])
		for _, r := range t.rows {
			if n := len(cell(r, i)); n > widths[i] {
				widths[i] = n
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(r []string) {
		for i := 0; i < cols; i++ {
			if i > 0 {
				sb.WriteString("  ")
			}
			c := cell(r, i)
			if i == 0 {
				sb.WriteString(c)
				sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			} else {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
				sb.WriteString(c)
			}
		}
		// Trim trailing padding.
		for sb.Len() > 0 {
			s := sb.String()
			if s[len(s)-1] != ' ' {
				break
			}
			// strings.Builder has no truncate; rebuild without the pad.
			trimmed := strings.TrimRight(s, " ")
			sb.Reset()
			sb.WriteString(trimmed)
		}
		sb.WriteByte('\n')
	}
	writeRow(header)
	total := 0
	for _, w := range widths {
		total += w
	}
	sb.WriteString(strings.Repeat("-", total+2*(cols-1)))
	sb.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return sb.String()
}

// Markdown renders the table as GitHub-flavored markdown with the first
// column left-aligned and the rest right-aligned — the form EXPERIMENTS.md
// uses.
func (t *Table) Markdown() string {
	cols := len(t.Headers)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	cell := func(r []string, i int) string {
		if i < len(r) {
			return r[i]
		}
		return ""
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString("**")
		sb.WriteString(t.Title)
		sb.WriteString("**\n\n")
	}
	writeRow := func(r []string) {
		sb.WriteString("|")
		for i := 0; i < cols; i++ {
			sb.WriteString(" ")
			sb.WriteString(cell(r, i))
			sb.WriteString(" |")
		}
		sb.WriteString("\n")
	}
	writeRow(t.Headers)
	sb.WriteString("|")
	for i := 0; i < cols; i++ {
		if i == 0 {
			sb.WriteString("---|")
		} else {
			sb.WriteString("---:|")
		}
	}
	sb.WriteString("\n")
	for _, r := range t.rows {
		writeRow(r)
	}
	return sb.String()
}
