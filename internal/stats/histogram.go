package stats

import (
	"fmt"
	"strings"

	"repro/internal/vclock"
)

// Histogram accumulates durations into buckets with fixed upper bounds,
// tracking both counts and summed totals per bucket. It backs the
// execution-interval analysis of §3 of the paper (the bimodal 3 ms /
// 45 ms distribution and the share of total execution time accumulated in
// 45–50 ms intervals).
type Histogram struct {
	// bounds are ascending exclusive upper limits; bucket i holds values
	// in [bounds[i-1], bounds[i]). A final overflow bucket holds values
	// >= bounds[len-1].
	bounds []vclock.Duration
	counts []int64
	totals []vclock.Duration
}

// NewHistogram creates a histogram with the given ascending bucket upper
// bounds. It panics on empty or non-ascending bounds.
func NewHistogram(bounds ...vclock.Duration) *Histogram {
	if len(bounds) == 0 {
		panic("stats: histogram needs at least one bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("stats: histogram bounds must ascend")
		}
	}
	b := make([]vclock.Duration, len(bounds))
	copy(b, bounds)
	return &Histogram{
		bounds: b,
		counts: make([]int64, len(bounds)+1),
		totals: make([]vclock.Duration, len(bounds)+1),
	}
}

// NewIntervalHistogram returns the bucketing used for execution-interval
// analysis: 1 ms bins to 10 ms, then 5 ms bins to 60 ms, then overflow.
func NewIntervalHistogram() *Histogram {
	var bounds []vclock.Duration
	for ms := 1; ms <= 10; ms++ {
		bounds = append(bounds, vclock.Duration(ms)*vclock.Millisecond)
	}
	for ms := 15; ms <= 60; ms += 5 {
		bounds = append(bounds, vclock.Duration(ms)*vclock.Millisecond)
	}
	return NewHistogram(bounds...)
}

// Add records one duration.
func (h *Histogram) Add(d vclock.Duration) {
	i := h.bucketOf(d)
	h.counts[i]++
	h.totals[i] += d
}

func (h *Histogram) bucketOf(d vclock.Duration) int {
	for i, b := range h.bounds {
		if d < b {
			return i
		}
	}
	return len(h.bounds)
}

// Buckets returns the number of buckets, including the overflow bucket.
func (h *Histogram) Buckets() int { return len(h.counts) }

// BucketRange returns bucket i's [lo, hi) range; the overflow bucket's hi
// is vclock.Never's duration equivalent, reported as lo itself with
// unbounded=true.
func (h *Histogram) BucketRange(i int) (lo, hi vclock.Duration, unbounded bool) {
	if i > 0 {
		lo = h.bounds[i-1]
	}
	if i == len(h.bounds) {
		return lo, 0, true
	}
	return lo, h.bounds[i], false
}

// BucketCount returns the number of values recorded in bucket i.
func (h *Histogram) BucketCount(i int) int64 { return h.counts[i] }

// BucketTotal returns the summed durations recorded in bucket i.
func (h *Histogram) BucketTotal(i int) vclock.Duration { return h.totals[i] }

// Count returns the total number of recorded values.
func (h *Histogram) Count() int64 {
	var n int64
	for _, c := range h.counts {
		n += c
	}
	return n
}

// Total returns the sum of all recorded values.
func (h *Histogram) Total() vclock.Duration {
	var t vclock.Duration
	for _, x := range h.totals {
		t += x
	}
	return t
}

// FractionCount returns the fraction of recorded values lying in buckets
// fully contained in [lo, hi). Bounds should coincide with bucket edges;
// partially overlapped buckets are excluded.
func (h *Histogram) FractionCount(lo, hi vclock.Duration) float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	var in int64
	for i := range h.counts {
		blo, bhi, unbounded := h.BucketRange(i)
		if blo >= lo && !unbounded && bhi <= hi {
			in += h.counts[i]
		}
	}
	return float64(in) / float64(n)
}

// FractionTotal returns the fraction of summed duration lying in buckets
// fully contained in [lo, hi).
func (h *Histogram) FractionTotal(lo, hi vclock.Duration) float64 {
	t := h.Total()
	if t == 0 {
		return 0
	}
	var in vclock.Duration
	for i := range h.totals {
		blo, bhi, unbounded := h.BucketRange(i)
		if blo >= lo && !unbounded && bhi <= hi {
			in += h.totals[i]
		}
	}
	return float64(in) / float64(t)
}

// PeakBucket returns the index of the bucket with the highest count
// (ties broken toward the smaller bucket), or -1 if empty.
func (h *Histogram) PeakBucket() int {
	best, bestCount := -1, int64(0)
	for i, c := range h.counts {
		if c > bestCount {
			best, bestCount = i, c
		}
	}
	return best
}

// String renders the non-empty buckets as an ASCII bar chart.
func (h *Histogram) String() string {
	var sb strings.Builder
	total := h.Count()
	if total == 0 {
		return "(empty histogram)"
	}
	var max int64
	for _, c := range h.counts {
		if c > max {
			max = c
		}
	}
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		lo, hi, unbounded := h.BucketRange(i)
		label := fmt.Sprintf("%8s-%-8s", lo, hi)
		if unbounded {
			label = fmt.Sprintf("%8s+%-8s", lo, "")
		}
		bar := strings.Repeat("#", int(40*c/max))
		fmt.Fprintf(&sb, "%s %7d (%5.1f%%) %s\n", label, c, 100*float64(c)/float64(total), bar)
	}
	return sb.String()
}
