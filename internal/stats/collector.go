package stats

import (
	"repro/internal/trace"
	"repro/internal/vclock"
)

// Collector computes an Analysis online, as events stream in, without
// retaining them. It implements trace.Sink, so it can be attached
// directly to a sim.World (possibly Tee'd with a Buffer) and a multi-hour
// virtual soak stays memory-flat.
//
// Usage: create with NewCollector(from, to), attach as the world's trace
// sink, run, then call Finish(now) once. Events before `from` feed state
// reconstruction only (thread priorities, live counts, CPU occupancy), so
// a warm-up period is excluded exactly as with Analyze.
type Collector struct {
	a        *Analysis
	from, to vclock.Time

	mls     map[int64]bool
	cvs     map[int64]bool
	live    int
	gen     map[int32]int
	born    map[int32]vclock.Time
	lifeSum vclock.Duration

	cpuOcc   map[int64]*occupancy
	finished bool
}

type occupancy struct {
	thread int32
	since  vclock.Time
}

// NewCollector creates a collector measuring the window [from, to]. Pass
// to = vclock.Never to measure until Finish.
func NewCollector(from, to vclock.Time) *Collector {
	return &Collector{
		a: &Analysis{
			From:             from,
			To:               to,
			Intervals:        NewIntervalHistogram(),
			ExecByThread:     make(map[int32]vclock.Duration),
			PriorityOfThread: make(map[int32]int),
			ForkGenerations:  make([]int, 0, 4),
		},
		from:   from,
		to:     to,
		mls:    make(map[int64]bool),
		cvs:    make(map[int64]bool),
		gen:    make(map[int32]int),
		born:   make(map[int32]vclock.Time),
		cpuOcc: make(map[int64]*occupancy),
	}
}

func (c *Collector) inWindow(t vclock.Time) bool { return t >= c.from && t <= c.to }

func (c *Collector) closeInterval(o *occupancy, now vclock.Time) {
	if o.thread == trace.NoThread {
		o.since = now
		return
	}
	lo, hi := o.since, now
	if lo < c.from {
		lo = c.from
	}
	if hi > c.to {
		hi = c.to
	}
	if hi > lo {
		d := hi.Sub(lo)
		c.a.Intervals.Add(now.Sub(o.since)) // full interval length for the distribution
		c.a.ExecByThread[o.thread] += d
		if p, ok := c.a.PriorityOfThread[o.thread]; ok && p >= 1 && p < len(c.a.ExecByPriority) {
			c.a.ExecByPriority[p] += d
		}
	}
	o.since = now
}

// Flush implements trace.Sink; the collector aggregates in memory, so
// there is nothing to push.
func (c *Collector) Flush() error { return nil }

// Record implements trace.Sink.
func (c *Collector) Record(ev trace.Event) {
	if c.finished {
		return
	}
	a := c.a
	switch ev.Kind {
	case trace.KindFork:
		child := int32(ev.Arg)
		a.PriorityOfThread[child] = int(ev.Aux)
		c.born[child] = ev.Time
		g := 0
		if ev.Thread != trace.NoThread {
			g = c.gen[ev.Thread] + 1
		}
		c.gen[child] = g
		c.live++
		if c.live > a.MaxLive {
			a.MaxLive = c.live
		}
		if c.inWindow(ev.Time) {
			a.Forks++
			for len(a.ForkGenerations) <= g {
				a.ForkGenerations = append(a.ForkGenerations, 0)
			}
			a.ForkGenerations[g]++
		}
	case trace.KindExit:
		c.live--
		if birth, ok := c.born[ev.Thread]; ok {
			life := ev.Time.Sub(birth)
			a.ExitedCount++
			c.lifeSum += life
			if life < vclock.Second {
				a.TransientCount++
			}
			if life > a.LongestExitedLife {
				a.LongestExitedLife = life
			}
			delete(c.born, ev.Thread)
		}
		if c.inWindow(ev.Time) {
			a.Exits++
		}
	case trace.KindSetPriority:
		a.PriorityOfThread[ev.Thread] = int(ev.Aux)
	case trace.KindSwitch:
		o := c.cpuOcc[ev.Aux]
		if o == nil {
			o = &occupancy{thread: trace.NoThread, since: ev.Time}
			c.cpuOcc[ev.Aux] = o
		}
		c.closeInterval(o, ev.Time)
		o.thread = ev.Thread
		if ev.Thread != trace.NoThread && c.inWindow(ev.Time) {
			a.Switches++
		}
	case trace.KindYield:
		if c.inWindow(ev.Time) {
			a.Yields++
		}
	case trace.KindWait:
		if c.inWindow(ev.Time) {
			c.cvs[ev.Arg] = true // Table 3: distinct CVs waited on in-window
			a.Waits++
		}
	case trace.KindWaitDone:
		if c.inWindow(ev.Time) {
			a.WaitDones++
			if ev.Aux == 1 {
				a.WaitTimeouts++
			}
		}
	case trace.KindMLEnter:
		if c.inWindow(ev.Time) {
			c.mls[ev.Arg] = true // Table 3: distinct monitors entered in-window
			a.MLEnters++
			if ev.Aux == 1 {
				a.MLContended++
			}
		}
	case trace.KindNotify:
		if c.inWindow(ev.Time) {
			a.Notifies++
			if ev.Aux == 0 {
				a.NotifyMisses++
			}
		}
	case trace.KindBroadcast:
		if c.inWindow(ev.Time) {
			a.Broadcasts++
		}
	}
}

// Finish closes the measurement at `now` and returns the Analysis. The
// collector ignores further events. If the window end was Never, it
// becomes now.
func (c *Collector) Finish(now vclock.Time) *Analysis {
	if c.finished {
		return c.a
	}
	c.finished = true
	if c.to == vclock.Never || c.to > now {
		c.to = now
		if c.to < c.from {
			c.to = c.from
		}
		c.a.To = c.to
	}
	for _, o := range c.cpuOcc {
		c.closeInterval(o, c.to)
	}
	c.a.DistinctMLs = len(c.mls)
	c.a.DistinctCVs = len(c.cvs)
	c.a.EternalCount = len(c.born)
	if c.a.ExitedCount > 0 {
		c.a.MeanExitedLifetime = c.lifeSum / vclock.Duration(c.a.ExitedCount)
	}
	return c.a
}
