// Package stats turns simulator traces into the measurements the paper
// reports: macroscopic rates (Table 1's forks/sec and thread
// switches/sec, Table 2's waits/sec, %-timeouts and monitor-entry rates),
// distinct monitor/CV populations (Table 3), execution-interval
// distributions and per-priority CPU shares (the prose "figures" of §3).
package stats

import (
	"sort"

	"repro/internal/trace"
	"repro/internal/vclock"
)

// Analysis is the digest of one trace over an observation window.
// Populate it with Analyze.
type Analysis struct {
	From, To vclock.Time

	Forks        int // KindFork events in window
	Exits        int
	Switches     int // switch-ins of a real thread
	Yields       int
	Waits        int // WAIT operations begun
	WaitDones    int // WAIT operations completed
	WaitTimeouts int // completed by timeout rather than notification
	MLEnters     int // monitor entries (incl. reacquisition after WAIT)
	MLContended  int // entries that had to queue
	Notifies     int
	NotifyMisses int // NOTIFY with no waiter to wake
	Broadcasts   int

	DistinctMLs int // distinct monitors entered in window (Table 3)
	DistinctCVs int // distinct CVs waited on in window (Table 3)

	// MaxLive is the peak number of concurrently existing threads,
	// counted over the whole trace (thread population predates the
	// window). §3: "the maximum number of threads concurrently existing
	// ... never exceeded 41".
	MaxLive int

	// Intervals is the distribution of execution intervals ("the lengths
	// of time between thread switches").
	Intervals *Histogram

	// ExecByPriority is virtual CPU time consumed per priority level
	// during the window (index by priority 1..7).
	ExecByPriority [8]vclock.Duration

	// ExecByThread is virtual CPU time per thread ID during the window.
	ExecByThread map[int32]vclock.Duration

	// PriorityOfThread records the last known priority of each thread.
	PriorityOfThread map[int32]int

	// ForkGenerations counts forks by the forking thread's depth:
	// index 0 = forks by spawned (eternal/worker) threads, 1 = forks by
	// their children, etc. (§3: "forking generations greater than 2" do
	// not occur.)
	ForkGenerations []int

	// Thread lifetime classification per §3's dynamic-behavior analysis
	// ("there were eternal threads ... worker threads ... and short-lived
	// transient threads"), computed over the whole trace:
	//
	// EternalCount is threads never observed exiting; ExitedCount is the
	// rest; TransientCount is exited threads that lived under one second
	// (§3: "transient threads are by far the most numerous resulting in
	// an average lifetime for non-eternal threads that is well under 1
	// second").
	EternalCount       int
	ExitedCount        int
	TransientCount     int
	MeanExitedLifetime vclock.Duration
	LongestExitedLife  vclock.Duration
}

// Window returns the observation window length.
func (a *Analysis) Window() vclock.Duration {
	return a.To.Sub(a.From)
}

func (a *Analysis) rate(n int) float64 {
	w := a.Window().Seconds()
	if w <= 0 {
		return 0
	}
	return float64(n) / w
}

// ForksPerSec is Table 1, column 1.
func (a *Analysis) ForksPerSec() float64 { return a.rate(a.Forks) }

// SwitchesPerSec is Table 1, column 2.
func (a *Analysis) SwitchesPerSec() float64 { return a.rate(a.Switches) }

// WaitsPerSec is Table 2, column 1.
func (a *Analysis) WaitsPerSec() float64 { return a.rate(a.WaitDones) }

// TimeoutFraction is Table 2, column 2: the fraction of completed waits
// that timed out rather than being notified.
func (a *Analysis) TimeoutFraction() float64 {
	if a.WaitDones == 0 {
		return 0
	}
	return float64(a.WaitTimeouts) / float64(a.WaitDones)
}

// MLEntersPerSec is Table 2, column 3.
func (a *Analysis) MLEntersPerSec() float64 { return a.rate(a.MLEnters) }

// ContentionFraction is the fraction of monitor entries that contended
// (§3 reports 0.01–0.1 % for Cedar, up to 0.4 % for GVX).
func (a *Analysis) ContentionFraction() float64 {
	if a.MLEnters == 0 {
		return 0
	}
	return float64(a.MLContended) / float64(a.MLEnters)
}

// CPUShareOfPriority returns the fraction of all executed CPU time that
// ran at priority p during the window.
func (a *Analysis) CPUShareOfPriority(p int) float64 {
	var total vclock.Duration
	for _, d := range a.ExecByPriority {
		total += d
	}
	if total == 0 || p < 0 || p >= len(a.ExecByPriority) {
		return 0
	}
	return float64(a.ExecByPriority[p]) / float64(total)
}

// BusiestThreads returns the n thread IDs with the most executed CPU time
// in the window, busiest first.
func (a *Analysis) BusiestThreads(n int) []int32 {
	ids := make([]int32, 0, len(a.ExecByThread))
	for id := range a.ExecByThread {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		di, dj := a.ExecByThread[ids[i]], a.ExecByThread[ids[j]]
		if di != dj {
			return di > dj
		}
		return ids[i] < ids[j]
	})
	if len(ids) > n {
		ids = ids[:n]
	}
	return ids
}

// Analyze digests events, counting only those with From <= t <= To (pass
// From=0, To=vclock.Never for everything). Events before From still feed
// state reconstruction (thread priorities, live counts, CPU occupancy) so
// a measurement window after a warm-up period is accurate. Analyze is a
// convenience over Collector, which computes the same Analysis online
// without retaining events.
func Analyze(events []trace.Event, from, to vclock.Time) *Analysis {
	c := NewCollector(from, to)
	for i := range events {
		c.Record(events[i])
	}
	end := from
	if len(events) > 0 {
		end = events[len(events)-1].Time
	}
	return c.Finish(end)
}
