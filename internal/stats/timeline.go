package stats

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/trace"
	"repro/internal/vclock"
)

// Timeline renders the microscopic view the paper's authors lived in —
// "even after a year of looking at the same 100 millisecond event
// histories we are seeing new things in them" — as an ASCII Gantt chart:
// one row per thread, one column per time bucket, with each cell showing
// the thread's dominant state in that bucket:
//
//	# running      - runnable (ready, waiting for a CPU)
//	. blocked      (space) not yet created / exited
//
// Threads are ordered by executed CPU time (busiest first).
type Timeline struct {
	From, To vclock.Time
	Width    int // columns
	MaxRows  int // threads shown (busiest first); 0 = all
}

// threadState tracks one thread's state transitions inside the window.
type timelineState int

const (
	tlAbsent timelineState = iota
	tlBlocked
	tlRunnable
	tlRunning
)

var tlChars = [...]byte{' ', '.', '-', '#'}

// Render draws the timeline from a trace.
func (tl Timeline) Render(tr trace.Trace) string {
	if tl.Width <= 0 {
		tl.Width = 100
	}
	if tl.To <= tl.From {
		return "(empty window)\n"
	}
	span := tl.To.Sub(tl.From)
	bucket := func(t vclock.Time) int {
		i := int(int64(t.Sub(tl.From)) * int64(tl.Width) / int64(span))
		if i < 0 {
			i = 0
		}
		if i >= tl.Width {
			i = tl.Width - 1
		}
		return i
	}

	// Reconstruct per-thread state over time; paint buckets with the
	// "most active" state seen in each (running > runnable > blocked).
	rows := map[int32][]byte{}
	state := map[int32]timelineState{}
	lastAt := map[int32]vclock.Time{}
	exec := map[int32]vclock.Duration{}
	cpuCur := map[int64]int32{}

	row := func(id int32) []byte {
		r, ok := rows[id]
		if !ok {
			r = make([]byte, tl.Width)
			for i := range r {
				r[i] = ' '
			}
			rows[id] = r
		}
		return r
	}
	// paint fills [from,to) with st, without overwriting a "more active"
	// state already drawn there.
	paint := func(id int32, from, to vclock.Time, st timelineState) {
		if to < tl.From || from > tl.To || st == tlAbsent {
			return
		}
		if from < tl.From {
			from = tl.From
		}
		if to > tl.To {
			to = tl.To
		}
		r := row(id)
		lo, hi := bucket(from), bucket(to)
		for i := lo; i <= hi; i++ {
			if tlChars[st] == '#' || r[i] == ' ' || r[i] == '.' && st == tlRunnable {
				r[i] = tlChars[st]
			}
		}
		if st == tlRunning {
			exec[id] += to.Sub(from)
		}
	}
	transition := func(id int32, at vclock.Time, st timelineState) {
		if prev, ok := state[id]; ok {
			paint(id, lastAt[id], at, prev)
		}
		state[id] = st
		lastAt[id] = at
	}

	for _, ev := range tr.Events {
		if ev.Time > tl.To {
			break
		}
		switch ev.Kind {
		case trace.KindFork:
			transition(int32(ev.Arg), ev.Time, tlRunnable)
		case trace.KindExit:
			transition(ev.Thread, ev.Time, tlAbsent)
		case trace.KindSwitch:
			// End the previous occupant's running span via per-CPU
			// occupancy (a yield vacates the CPU without its own switch
			// record, so Arg alone is not reliable).
			if prev, ok := cpuCur[ev.Aux]; ok && prev != trace.NoThread && state[prev] == tlRunning {
				transition(prev, ev.Time, tlRunnable)
			}
			cpuCur[ev.Aux] = ev.Thread
			if ev.Thread != trace.NoThread {
				transition(ev.Thread, ev.Time, tlRunning)
			}
		case trace.KindBlock:
			transition(ev.Thread, ev.Time, tlBlocked)
		case trace.KindReady:
			if state[ev.Thread] != tlRunning {
				transition(ev.Thread, ev.Time, tlRunnable)
			}
		}
	}
	for id, st := range state {
		if st != tlAbsent {
			paint(id, lastAt[id], tl.To, st)
		}
	}

	// Order by executed time, busiest first.
	ids := make([]int32, 0, len(rows))
	for id := range rows {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if exec[ids[i]] != exec[ids[j]] {
			return exec[ids[i]] > exec[ids[j]]
		}
		return ids[i] < ids[j]
	})
	if tl.MaxRows > 0 && len(ids) > tl.MaxRows {
		ids = ids[:tl.MaxRows]
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "timeline %s .. %s  (%s per column; '#'=running '-'=ready '.'=blocked)\n",
		tl.From, tl.To, vclock.Duration(int64(span)/int64(tl.Width)))
	for _, id := range ids {
		label := tr.NameOf(id)
		if len(label) > 24 {
			label = label[:24]
		}
		fmt.Fprintf(&sb, "%-24s |%s|\n", label, rows[id])
	}
	return sb.String()
}
