package stats

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/vclock"
)

func TestJainFairness(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{7}, 1},
		{"equal", []float64{3, 3, 3, 3}, 1},
		{"all-zero", []float64{0, 0, 0}, 1},
		{"dominated", []float64{1, 0, 0, 0}, 0.25}, // → 1/n
		{"two-to-one", []float64{2, 1}, 0.9},       // (3²)/(2·5)
		{"nan-dropped", []float64{math.NaN(), 5}, 1},
		{"inf-dropped", []float64{math.Inf(1), 5, 5}, 1},
		{"negative-dropped", []float64{-1, 4, 4}, 1},
		{"all-invalid", []float64{math.NaN(), math.Inf(-1), -3}, 0},
	}
	for _, tc := range cases {
		if got := JainFairness(tc.xs); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: JainFairness(%v) = %v, want %v", tc.name, tc.xs, got, tc.want)
		}
	}
}

func TestClassLatencyBasics(t *testing.T) {
	var c ClassLatency
	if got := c.Classes(); len(got) != 0 {
		t.Fatalf("zero value Classes = %v, want empty", got)
	}
	if c.Class("interactive") != nil {
		t.Fatalf("zero value Class != nil")
	}
	if c.Count() != 0 {
		t.Fatalf("zero value Count = %d", c.Count())
	}

	c.Add("interactive", 2*vclock.Millisecond)
	c.Add("interactive", 4*vclock.Millisecond)
	c.Add("batch", 100*vclock.Millisecond)
	if got, want := c.Classes(), []string{"batch", "interactive"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Classes = %v, want %v (sorted)", got, want)
	}
	if got := c.Class("interactive").Mean(); got != 3*vclock.Millisecond {
		t.Errorf("interactive mean = %v, want 3ms", got)
	}
	if c.Count() != 3 {
		t.Errorf("Count = %d, want 3", c.Count())
	}
	if got := c.MeanByClass(); !reflect.DeepEqual(got, []float64{float64(100 * vclock.Millisecond), float64(3 * vclock.Millisecond)}) {
		t.Errorf("MeanByClass = %v", got)
	}
	// Single class → trivially fair.
	var one ClassLatency
	one.Add("only", vclock.Millisecond)
	if got := JainFairness(one.MeanByClass()); got != 1 {
		t.Errorf("single-class fairness = %v, want 1", got)
	}
}

// TestClassLatencyMergeExact: merged percentiles equal percentiles over
// the concatenated samples, regardless of merge order, and merging leaves
// the source untouched.
func TestClassLatencyMergeExact(t *testing.T) {
	build := func(samples map[string][]vclock.Duration) *ClassLatency {
		c := &ClassLatency{}
		for class, ds := range samples {
			for _, d := range ds {
				c.Add(class, d)
			}
		}
		return c
	}
	a := build(map[string][]vclock.Duration{
		"interactive": {1, 9, 5},
		"batch":       {100},
	})
	b := build(map[string][]vclock.Duration{
		"interactive": {3, 7},
		"bulk":        {42},
	})
	want := build(map[string][]vclock.Duration{
		"interactive": {1, 9, 5, 3, 7},
		"batch":       {100},
		"bulk":        {42},
	})

	var ab ClassLatency
	ab.Merge(a)
	ab.Merge(b)
	var ba ClassLatency
	ba.Merge(b)
	ba.Merge(a)
	for _, merged := range []*ClassLatency{&ab, &ba} {
		if got, w := merged.Classes(), want.Classes(); !reflect.DeepEqual(got, w) {
			t.Fatalf("merged classes = %v, want %v", got, w)
		}
		for _, class := range want.Classes() {
			for _, p := range []float64{0, 0.5, 0.9, 1} {
				if got, w := merged.Class(class).Percentile(p), want.Class(class).Percentile(p); got != w {
					t.Errorf("merged %s p%v = %v, want %v", class, p, got, w)
				}
			}
		}
	}
	// Source untouched; self-merge and nil-merge are no-ops.
	if a.Class("interactive").Count() != 3 {
		t.Errorf("merge mutated the source: %d samples", a.Class("interactive").Count())
	}
	before := ab.Count()
	ab.Merge(&ab)
	ab.Merge(nil)
	if ab.Count() != before {
		t.Errorf("self/nil merge changed Count: %d → %d", before, ab.Count())
	}
	// Merging into a zero-value receiver from a class with zero samples.
	var zero ClassLatency
	zero.Merge(&ClassLatency{})
	if zero.Count() != 0 {
		t.Errorf("empty merge produced samples")
	}
}

// TestClassLatencyPercentileGuards: per-class recorders inherit
// Percentile's NaN/out-of-range clamping.
func TestClassLatencyPercentileGuards(t *testing.T) {
	var c ClassLatency
	c.Add("x", 1*vclock.Millisecond)
	c.Add("x", 2*vclock.Millisecond)
	r := c.Class("x")
	if got := r.Percentile(math.NaN()); got != 1*vclock.Millisecond {
		t.Errorf("NaN percentile = %v, want the minimum", got)
	}
	if got := r.Percentile(-3); got != 1*vclock.Millisecond {
		t.Errorf("negative percentile = %v, want the minimum", got)
	}
	if got := r.Percentile(7); got != 2*vclock.Millisecond {
		t.Errorf("out-of-range percentile = %v, want the maximum", got)
	}
}
