package stats

import (
	"math"
	"strings"
	"testing"

	"repro/internal/trace"
	"repro/internal/vclock"
)

// Edge-case table for the latency quantiles: empty series, a single
// sample, and hostile p values (NaN would otherwise become a huge
// negative index via int conversion).
func TestLatencyRecorderEdges(t *testing.T) {
	ms := vclock.Millisecond
	one := &LatencyRecorder{}
	one.Add(7 * ms)
	three := &LatencyRecorder{}
	for _, d := range []vclock.Duration{30 * ms, 10 * ms, 20 * ms} {
		three.Add(d)
	}
	cases := []struct {
		name string
		r    *LatencyRecorder
		p    float64
		want vclock.Duration
	}{
		{"empty p50", &LatencyRecorder{}, 0.5, 0},
		{"empty max", &LatencyRecorder{}, 1, 0},
		{"empty NaN", &LatencyRecorder{}, math.NaN(), 0},
		{"single p0", one, 0, 7 * ms},
		{"single p50", one, 0.5, 7 * ms},
		{"single p100", one, 1, 7 * ms},
		{"single NaN clamps low", one, math.NaN(), 7 * ms},
		{"three NaN clamps low", three, math.NaN(), 10 * ms},
		{"negative p clamps low", three, -4.5, 10 * ms},
		{"huge p clamps high", three, 17, 30 * ms},
		{"+Inf clamps high", three, math.Inf(1), 30 * ms},
		{"-Inf clamps low", three, math.Inf(-1), 10 * ms},
		{"median sorts", three, 0.5, 20 * ms},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.r.Percentile(tc.p); got != tc.want {
				t.Errorf("Percentile(%v) = %s, want %s", tc.p, got, tc.want)
			}
		})
	}
	if got := (&LatencyRecorder{}).Mean(); got != 0 {
		t.Errorf("empty Mean = %s", got)
	}
	if got := (&LatencyRecorder{}).String(); got != "n=0" {
		t.Errorf("empty String = %q", got)
	}
	if got := one.Mean(); got != 7*ms {
		t.Errorf("single Mean = %s", got)
	}
}

// Merge must preserve exact nearest-rank percentiles: a recorder built
// by merging per-instance recorders answers every quantile identically
// to one fed the union of samples directly.
func TestLatencyRecorderMerge(t *testing.T) {
	us := vclock.Microsecond
	fill := func(ds ...vclock.Duration) *LatencyRecorder {
		r := &LatencyRecorder{}
		for _, d := range ds {
			r.Add(d)
		}
		return r
	}
	cases := []struct {
		name string
		a, b []vclock.Duration
	}{
		{"empty+empty", nil, nil},
		{"empty+nonempty", nil, []vclock.Duration{5 * us, 1 * us, 9 * us}},
		{"nonempty+empty", []vclock.Duration{4 * us, 2 * us}, nil},
		{"interleaved duplicates",
			[]vclock.Duration{1 * us, 3 * us, 3 * us, 7 * us},
			[]vclock.Duration{3 * us, 1 * us, 7 * us, 3 * us, 2 * us}},
		{"disjoint ranges", []vclock.Duration{100 * us, 200 * us}, []vclock.Duration{1 * us, 2 * us, 3 * us}},
	}
	quantiles := []float64{0, 0.25, 0.5, 0.95, 0.99, 1}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			merged := fill(tc.a...)
			other := fill(tc.b...)
			// Sort other first so Merge sees a sorted donor — the merged
			// recorder must re-sort rather than trust donor order.
			other.Percentile(0.5)
			merged.Merge(other)
			direct := fill(append(append([]vclock.Duration{}, tc.a...), tc.b...)...)
			if merged.Count() != direct.Count() {
				t.Fatalf("merged count = %d, want %d", merged.Count(), direct.Count())
			}
			if merged.Mean() != direct.Mean() {
				t.Errorf("merged mean = %s, want %s", merged.Mean(), direct.Mean())
			}
			for _, p := range quantiles {
				if got, want := merged.Percentile(p), direct.Percentile(p); got != want {
					t.Errorf("merged p%v = %s, direct = %s", p, got, want)
				}
			}
			// The donor is untouched.
			if want := fill(tc.b...); other.Count() != want.Count() || other.Percentile(0.5) != want.Percentile(0.5) {
				t.Errorf("Merge mutated its argument: %s vs %s", other, want)
			}
		})
	}

	// Order independence: merging A into B equals merging B into A.
	ab := fill(9*us, 1*us)
	ab.Merge(fill(5*us, 5*us, 2*us))
	ba := fill(5*us, 5*us, 2*us)
	ba.Merge(fill(9*us, 1*us))
	for _, p := range quantiles {
		if ab.Percentile(p) != ba.Percentile(p) {
			t.Errorf("merge order changed p%v: %s vs %s", p, ab.Percentile(p), ba.Percentile(p))
		}
	}

	// Self-merge and nil-merge are no-ops.
	self := fill(3*us, 1*us)
	self.Merge(self)
	self.Merge(nil)
	if self.Count() != 2 || self.Mean() != 2*us {
		t.Errorf("self/nil merge changed the recorder: %s", self)
	}
}

func TestHistogramEdges(t *testing.T) {
	ms := vclock.Millisecond
	t.Run("empty", func(t *testing.T) {
		h := NewIntervalHistogram()
		if h.Count() != 0 || h.Total() != 0 {
			t.Errorf("empty: count=%d total=%s", h.Count(), h.Total())
		}
		if got := h.PeakBucket(); got != -1 {
			t.Errorf("empty PeakBucket = %d, want -1", got)
		}
		if got := h.FractionCount(0, vclock.Second); got != 0 {
			t.Errorf("empty FractionCount = %v (division by zero count?)", got)
		}
		if got := h.FractionTotal(0, vclock.Second); got != 0 {
			t.Errorf("empty FractionTotal = %v", got)
		}
	})
	t.Run("single sample", func(t *testing.T) {
		h := NewIntervalHistogram()
		h.Add(3 * ms)
		if h.Count() != 1 || h.Total() != 3*ms {
			t.Errorf("count=%d total=%s", h.Count(), h.Total())
		}
		if got := h.FractionCount(0, vclock.Second); got != 1 {
			t.Errorf("FractionCount = %v, want 1", got)
		}
		peak := h.PeakBucket()
		lo, hi, unbounded := h.BucketRange(peak)
		if unbounded || lo > 3*ms || hi <= 3*ms {
			t.Errorf("peak bucket [%s,%s) unbounded=%v does not contain the sample", lo, hi, unbounded)
		}
	})
	t.Run("negative duration clamps to first bucket", func(t *testing.T) {
		h := NewIntervalHistogram()
		h.Add(-5 * ms)
		if h.Count() != 1 {
			t.Fatalf("count = %d", h.Count())
		}
		if h.PeakBucket() != 0 {
			t.Errorf("negative sample landed in bucket %d, want 0", h.PeakBucket())
		}
	})
}

// An inverted or empty window must yield the degenerate SVG, and a valid
// window over an empty trace must not divide by zero or emit NaN
// coordinates.
func TestRenderSVGEdges(t *testing.T) {
	ms := vclock.Millisecond
	empty := trace.Trace{}
	if got := (Timeline{From: vclock.Time(5 * ms), To: vclock.Time(5 * ms)}).RenderSVG(empty); !strings.HasPrefix(got, "<svg") || strings.Contains(got, "rect") {
		t.Errorf("zero-width window: %q", got)
	}
	if got := (Timeline{From: vclock.Time(9 * ms), To: vclock.Time(2 * ms)}).RenderSVG(empty); strings.Contains(got, "NaN") {
		t.Errorf("inverted window emitted NaN: %q", got)
	}
	got := (Timeline{From: 0, To: vclock.Time(10 * ms)}).RenderSVG(empty)
	if strings.Contains(got, "NaN") || strings.Contains(got, "Inf") {
		t.Errorf("empty trace emitted non-finite coordinates: %q", got)
	}
	if !strings.Contains(got, "<svg") || !strings.Contains(got, "</svg>") {
		t.Errorf("not a complete SVG document: %q", got)
	}
}
