package stats

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/vclock"
)

// LatencyRecorder accumulates duration samples and reports percentiles —
// used for the user-visible latencies the paper cares most about ("the
// time between when a key is pressed and the corresponding glyph is
// echoed to a window is very important to the usability of these
// systems"). The zero value is ready to use.
type LatencyRecorder struct {
	samples []vclock.Duration
	sorted  bool
	sum     vclock.Duration
}

// Add records one sample.
func (r *LatencyRecorder) Add(d vclock.Duration) {
	r.samples = append(r.samples, d)
	r.sorted = false
	r.sum += d
}

// Count returns the number of samples.
func (r *LatencyRecorder) Count() int { return len(r.samples) }

// Merge folds every sample of o into r, so cross-instance percentiles
// (a cluster's aggregate p99) are computed by exact nearest-rank over
// the union of the samples — no histogram approximation, no loss at the
// tail. o is left unchanged and may be merged into several recorders;
// merging a recorder into itself or merging nil is a no-op. The result
// is order-independent: merging instance recorders in any order yields
// identical percentiles, because Percentile sorts the union.
func (r *LatencyRecorder) Merge(o *LatencyRecorder) {
	if o == nil || r == o || len(o.samples) == 0 {
		return
	}
	r.samples = append(r.samples, o.samples...)
	r.sum += o.sum
	r.sorted = false
}

// Mean returns the average sample, or 0 if empty.
func (r *LatencyRecorder) Mean() vclock.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	return r.sum / vclock.Duration(len(r.samples))
}

// Max returns the largest sample, or 0 if empty.
func (r *LatencyRecorder) Max() vclock.Duration {
	return r.Percentile(1)
}

// Percentile returns the p-quantile (0 <= p <= 1) by nearest-rank, or 0
// if empty. Out-of-range and NaN p clamp to the nearest valid quantile —
// int(NaN * n) is a huge negative index, not a graceful zero.
func (r *LatencyRecorder) Percentile(p float64) vclock.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	if !r.sorted {
		sort.Slice(r.samples, func(i, j int) bool { return r.samples[i] < r.samples[j] })
		r.sorted = true
	}
	if p < 0 || math.IsNaN(p) {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	i := int(p * float64(len(r.samples)-1))
	return r.samples[i]
}

// String summarizes as "n=120 p50=1.9ms p95=3.1ms max=52ms".
func (r *LatencyRecorder) String() string {
	if len(r.samples) == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d p50=%s p95=%s max=%s",
		r.Count(), r.Percentile(0.5), r.Percentile(0.95), r.Max())
}
