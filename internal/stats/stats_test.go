package stats

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/trace"
	"repro/internal/vclock"
)

func ms(n int64) vclock.Time      { return vclock.Time(vclock.Duration(n) * vclock.Millisecond) }
func msd(n int64) vclock.Duration { return vclock.Duration(n) * vclock.Millisecond }

func TestAnalyzeCounts(t *testing.T) {
	evs := []trace.Event{
		{Time: 0, Kind: trace.KindFork, Thread: trace.NoThread, Arg: 1, Aux: 4},
		{Time: 0, Kind: trace.KindSwitch, Thread: 1, Arg: trace.NoThread, Aux: 0},
		{Time: ms(1), Kind: trace.KindMLEnter, Thread: 1, Arg: 10, Aux: 0},
		{Time: ms(2), Kind: trace.KindWait, Thread: 1, Arg: 20, Aux: int64(msd(50))},
		{Time: ms(2), Kind: trace.KindSwitch, Thread: trace.NoThread, Arg: 1, Aux: 0},
		{Time: ms(52), Kind: trace.KindWaitDone, Thread: 1, Arg: 20, Aux: 1},
		{Time: ms(52), Kind: trace.KindSwitch, Thread: 1, Arg: trace.NoThread, Aux: 0},
		{Time: ms(52), Kind: trace.KindMLEnter, Thread: 1, Arg: 10, Aux: 1},
		{Time: ms(53), Kind: trace.KindNotify, Thread: 1, Arg: 20, Aux: 0},
		{Time: ms(54), Kind: trace.KindFork, Thread: 1, Arg: 2, Aux: 5},
		{Time: ms(55), Kind: trace.KindExit, Thread: 2},
		{Time: ms(60), Kind: trace.KindExit, Thread: 1},
		{Time: ms(60), Kind: trace.KindSwitch, Thread: trace.NoThread, Arg: 1, Aux: 0},
	}
	a := Analyze(evs, 0, vclock.Never)
	if a.Forks != 2 || a.Exits != 2 {
		t.Errorf("forks/exits = %d/%d, want 2/2", a.Forks, a.Exits)
	}
	if a.Switches != 2 {
		t.Errorf("switches = %d, want 2 (switch-ins only)", a.Switches)
	}
	if a.Waits != 1 || a.WaitDones != 1 || a.WaitTimeouts != 1 {
		t.Errorf("waits=%d dones=%d timeouts=%d", a.Waits, a.WaitDones, a.WaitTimeouts)
	}
	if a.MLEnters != 2 || a.MLContended != 1 {
		t.Errorf("ml enters=%d contended=%d", a.MLEnters, a.MLContended)
	}
	if a.Notifies != 1 || a.NotifyMisses != 1 {
		t.Errorf("notifies=%d misses=%d", a.Notifies, a.NotifyMisses)
	}
	if a.DistinctMLs != 1 || a.DistinctCVs != 1 {
		t.Errorf("distinct MLs=%d CVs=%d", a.DistinctMLs, a.DistinctCVs)
	}
	if a.MaxLive != 2 {
		t.Errorf("max live = %d, want 2", a.MaxLive)
	}
	if a.TimeoutFraction() != 1.0 {
		t.Errorf("timeout fraction = %v", a.TimeoutFraction())
	}
	if a.ContentionFraction() != 0.5 {
		t.Errorf("contention fraction = %v", a.ContentionFraction())
	}
	// Window is 60ms; 2 switches -> 33.3/sec.
	if got := a.SwitchesPerSec(); got < 33 || got > 34 {
		t.Errorf("switches/sec = %v", got)
	}
	// Execution: [0,2ms) and [52,60ms) on thread 1 = 10ms at priority 4.
	if a.ExecByThread[1] != msd(10) {
		t.Errorf("exec by thread 1 = %v, want 10ms", a.ExecByThread[1])
	}
	if a.ExecByPriority[4] != msd(10) {
		t.Errorf("exec at pri 4 = %v, want 10ms", a.ExecByPriority[4])
	}
	if a.CPUShareOfPriority(4) != 1.0 {
		t.Errorf("share pri 4 = %v", a.CPUShareOfPriority(4))
	}
}

func TestAnalyzeWindowing(t *testing.T) {
	evs := []trace.Event{
		{Time: 0, Kind: trace.KindFork, Thread: trace.NoThread, Arg: 1, Aux: 4},
		{Time: ms(10), Kind: trace.KindMLEnter, Thread: 1, Arg: 7},
		{Time: ms(110), Kind: trace.KindMLEnter, Thread: 1, Arg: 8},
		{Time: ms(210), Kind: trace.KindMLEnter, Thread: 1, Arg: 9},
	}
	a := Analyze(evs, ms(100), ms(200))
	if a.MLEnters != 1 {
		t.Fatalf("windowed ML enters = %d, want 1", a.MLEnters)
	}
	if a.DistinctMLs != 1 {
		t.Fatalf("windowed distinct MLs = %d, want 1 (only m8)", a.DistinctMLs)
	}
	if a.Window() != msd(100) {
		t.Fatalf("window = %v", a.Window())
	}
	// Pre-window fork still feeds priority reconstruction.
	if a.PriorityOfThread[1] != 4 {
		t.Fatalf("reconstructed priority = %d", a.PriorityOfThread[1])
	}
}

func TestForkGenerations(t *testing.T) {
	evs := []trace.Event{
		{Time: 0, Kind: trace.KindFork, Thread: trace.NoThread, Arg: 1, Aux: 4}, // root (gen 0)
		{Time: 1, Kind: trace.KindFork, Thread: 1, Arg: 2, Aux: 4},              // gen 1
		{Time: 2, Kind: trace.KindFork, Thread: 2, Arg: 3, Aux: 4},              // gen 2
		{Time: 3, Kind: trace.KindFork, Thread: 1, Arg: 4, Aux: 4},              // gen 1
	}
	a := Analyze(evs, 0, vclock.Never)
	if len(a.ForkGenerations) != 3 || a.ForkGenerations[0] != 1 || a.ForkGenerations[1] != 2 || a.ForkGenerations[2] != 1 {
		t.Fatalf("fork generations = %v", a.ForkGenerations)
	}
}

func TestBusiestThreads(t *testing.T) {
	evs := []trace.Event{
		{Time: 0, Kind: trace.KindFork, Thread: trace.NoThread, Arg: 1, Aux: 4},
		{Time: 0, Kind: trace.KindFork, Thread: trace.NoThread, Arg: 2, Aux: 4},
		{Time: 0, Kind: trace.KindSwitch, Thread: 1, Arg: trace.NoThread, Aux: 0},
		{Time: ms(30), Kind: trace.KindSwitch, Thread: 2, Arg: 1, Aux: 0},
		{Time: ms(40), Kind: trace.KindSwitch, Thread: trace.NoThread, Arg: 2, Aux: 0},
	}
	a := Analyze(evs, 0, vclock.Never)
	got := a.BusiestThreads(1)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("busiest = %v, want [1]", got)
	}
	if both := a.BusiestThreads(10); len(both) != 2 || both[0] != 1 || both[1] != 2 {
		t.Fatalf("busiest(10) = %v", both)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(msd(5), msd(10))
	h.Add(msd(1))
	h.Add(msd(3))
	h.Add(msd(7))
	h.Add(msd(100)) // overflow
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Total() != msd(111) {
		t.Fatalf("total = %v", h.Total())
	}
	if h.BucketCount(0) != 2 || h.BucketCount(1) != 1 || h.BucketCount(2) != 1 {
		t.Fatalf("buckets = %d %d %d", h.BucketCount(0), h.BucketCount(1), h.BucketCount(2))
	}
	if h.PeakBucket() != 0 {
		t.Fatalf("peak = %d", h.PeakBucket())
	}
	if got := h.FractionCount(0, msd(5)); got != 0.5 {
		t.Fatalf("fraction count [0,5ms) = %v", got)
	}
	if got := h.FractionTotal(msd(5), msd(10)); got != float64(msd(7))/float64(msd(111)) {
		t.Fatalf("fraction total [5,10ms) = %v", got)
	}
	lo, hi, unbounded := h.BucketRange(2)
	if lo != msd(10) || !unbounded {
		t.Fatalf("overflow range = %v %v %v", lo, hi, unbounded)
	}
	if !strings.Contains(h.String(), "%") {
		t.Fatal("String should render percentages")
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram() },
		func() { NewHistogram(msd(10), msd(5)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: count and total are conserved across buckets, and fractions
// lie in [0,1].
func TestHistogramConservation(t *testing.T) {
	f := func(raw []uint16) bool {
		h := NewIntervalHistogram()
		var total vclock.Duration
		for _, r := range raw {
			d := vclock.Duration(r) * 10 * vclock.Microsecond
			h.Add(d)
			total += d
		}
		if h.Count() != int64(len(raw)) || h.Total() != total {
			return false
		}
		var sum int64
		for i := 0; i < h.Buckets(); i++ {
			sum += h.BucketCount(i)
		}
		fc := h.FractionCount(0, msd(5))
		ft := h.FractionTotal(0, msd(5))
		return sum == h.Count() && fc >= 0 && fc <= 1 && ft >= 0 && ft <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEmptyHistogram(t *testing.T) {
	h := NewIntervalHistogram()
	if h.PeakBucket() != -1 {
		t.Fatal("empty peak should be -1")
	}
	if h.FractionCount(0, msd(5)) != 0 || h.FractionTotal(0, msd(5)) != 0 {
		t.Fatal("empty fractions should be 0")
	}
	if h.String() != "(empty histogram)" {
		t.Fatalf("empty String = %q", h.String())
	}
}

func TestEmptyAnalysis(t *testing.T) {
	a := Analyze(nil, 0, vclock.Never)
	if a.ForksPerSec() != 0 || a.TimeoutFraction() != 0 || a.ContentionFraction() != 0 {
		t.Fatal("empty analysis should produce zero rates")
	}
	if a.CPUShareOfPriority(4) != 0 {
		t.Fatal("empty CPU share should be 0")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Table 1: rates", "Benchmark", "Forks/sec", "Switches/sec")
	tb.AddRow("Idle Cedar", "0.9", "132")
	tb.AddRowf("%s", "Keyboard input", "%.1f", 5.0, "%d", 269)
	s := tb.String()
	if !strings.Contains(s, "Table 1: rates") {
		t.Fatalf("missing title:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), s)
	}
	if !strings.Contains(lines[3], "Idle Cedar") || !strings.Contains(lines[4], "269") {
		t.Fatalf("rows wrong:\n%s", s)
	}
	if tb.Rows() != 2 {
		t.Fatalf("Rows = %d", tb.Rows())
	}
	// Right alignment: the numeric columns line up on their right edge.
	i1 := strings.Index(lines[3], "0.9")
	i2 := strings.Index(lines[4], "5.0")
	if i1+len("0.9") != i2+len("5.0") {
		t.Errorf("numeric column misaligned:\n%s", s)
	}
}

func TestAddRowfPanicsOnOddArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTable("x", "a").AddRowf("%s")
}

func TestLifetimeClassification(t *testing.T) {
	evs := []trace.Event{
		{Time: 0, Kind: trace.KindFork, Thread: trace.NoThread, Arg: 1, Aux: 4}, // eternal
		{Time: 0, Kind: trace.KindFork, Thread: trace.NoThread, Arg: 2, Aux: 4}, // transient
		{Time: ms(100), Kind: trace.KindExit, Thread: 2},                        // lived 100ms
		{Time: ms(200), Kind: trace.KindFork, Thread: 1, Arg: 3, Aux: 4},        // worker
		{Time: ms(1500), Kind: trace.KindExit, Thread: 3},                       // lived 1.3s
	}
	a := Analyze(evs, 0, vclock.Never)
	if a.EternalCount != 1 {
		t.Errorf("eternal = %d, want 1", a.EternalCount)
	}
	if a.ExitedCount != 2 || a.TransientCount != 1 {
		t.Errorf("exited=%d transient=%d, want 2/1", a.ExitedCount, a.TransientCount)
	}
	if a.MeanExitedLifetime != msd(700) {
		t.Errorf("mean lifetime = %v, want 700ms", a.MeanExitedLifetime)
	}
	if a.LongestExitedLife != msd(1300) {
		t.Errorf("longest = %v, want 1.3s", a.LongestExitedLife)
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("Demo", "Name", "Value")
	tb.AddRow("a", "1")
	tb.AddRow("b", "2")
	md := tb.Markdown()
	for _, want := range []string{"**Demo**", "| Name | Value |", "|---|---:|", "| a | 1 |", "| b | 2 |"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}
