package stats

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestTimelineRendersStates(t *testing.T) {
	// Thread 1: runs [0,40ms), blocks [40,100ms).
	// Thread 2: ready [0,40ms), runs [40,100ms).
	evs := []trace.Event{
		{Time: 0, Kind: trace.KindFork, Thread: trace.NoThread, Arg: 1, Aux: 4},
		{Time: 0, Kind: trace.KindFork, Thread: trace.NoThread, Arg: 2, Aux: 4},
		{Time: 0, Kind: trace.KindSwitch, Thread: 1, Arg: trace.NoThread, Aux: 0},
		{Time: ms(40), Kind: trace.KindBlock, Thread: 1, Aux: 1},
		{Time: ms(40), Kind: trace.KindSwitch, Thread: trace.NoThread, Arg: 1, Aux: 0},
		{Time: ms(40), Kind: trace.KindSwitch, Thread: 2, Arg: trace.NoThread, Aux: 0},
	}
	tr := trace.Trace{Events: evs, Names: map[int32]string{1: "alpha", 2: "beta"}}
	tl := Timeline{From: 0, To: ms(100), Width: 10}
	out := tl.Render(tr)

	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // header + 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Busiest first: beta ran 60ms vs alpha's 40ms.
	if !strings.HasPrefix(lines[1], "t2(beta)") {
		t.Fatalf("first row should be beta:\n%s", out)
	}
	var alpha, beta string
	for _, l := range lines[1:] {
		cells := l[strings.Index(l, "|")+1 : strings.LastIndex(l, "|")]
		if strings.HasPrefix(l, "t1(alpha)") {
			alpha = cells
		} else {
			beta = cells
		}
	}
	// alpha: running for the first 4 buckets, blocked after.
	if alpha[0] != '#' || alpha[2] != '#' || alpha[6] != '.' || alpha[9] != '.' {
		t.Errorf("alpha row = %q", alpha)
	}
	// beta: ready first, running after.
	if beta[0] != '-' || beta[6] != '#' || beta[9] != '#' {
		t.Errorf("beta row = %q", beta)
	}
}

func TestTimelineWindowAndRows(t *testing.T) {
	evs := []trace.Event{
		{Time: 0, Kind: trace.KindFork, Thread: trace.NoThread, Arg: 1, Aux: 4},
		{Time: 0, Kind: trace.KindSwitch, Thread: 1, Arg: trace.NoThread, Aux: 0},
		{Time: ms(10), Kind: trace.KindFork, Thread: trace.NoThread, Arg: 2, Aux: 4},
	}
	tr := trace.Trace{Events: evs, Names: map[int32]string{}}
	out := Timeline{From: 0, To: ms(20), Width: 4, MaxRows: 1}.Render(tr)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("MaxRows=1 should keep one row:\n%s", out)
	}
	if !strings.Contains(lines[1], "t1") {
		t.Fatalf("busiest row should be t1:\n%s", out)
	}
	// Degenerate window.
	if got := (Timeline{From: ms(5), To: ms(5)}).Render(tr); got != "(empty window)\n" {
		t.Fatalf("empty window = %q", got)
	}
}

func TestTimelineExitClearsRow(t *testing.T) {
	evs := []trace.Event{
		{Time: 0, Kind: trace.KindFork, Thread: trace.NoThread, Arg: 1, Aux: 4},
		{Time: 0, Kind: trace.KindSwitch, Thread: 1, Arg: trace.NoThread, Aux: 0},
		{Time: ms(50), Kind: trace.KindExit, Thread: 1},
		{Time: ms(50), Kind: trace.KindSwitch, Thread: trace.NoThread, Arg: 1, Aux: 0},
	}
	tr := trace.Trace{Events: evs, Names: map[int32]string{}}
	out := Timeline{From: 0, To: ms(100), Width: 10}.Render(tr)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	cells := lines[1][strings.Index(lines[1], "|")+1 : strings.LastIndex(lines[1], "|")]
	if cells[1] != '#' {
		t.Errorf("should be running early: %q", cells)
	}
	if cells[9] != ' ' {
		t.Errorf("should be absent after exit: %q", cells)
	}
}

func TestRenderSVG(t *testing.T) {
	evs := []trace.Event{
		{Time: 0, Kind: trace.KindFork, Thread: trace.NoThread, Arg: 1, Aux: 4},
		{Time: 0, Kind: trace.KindSwitch, Thread: 1, Arg: trace.NoThread, Aux: 0},
		{Time: ms(40), Kind: trace.KindBlock, Thread: 1, Aux: 1},
		{Time: ms(40), Kind: trace.KindSwitch, Thread: trace.NoThread, Arg: 1, Aux: 0},
	}
	tr := trace.Trace{Events: evs, Names: map[int32]string{1: "a<b>"}}
	svg := Timeline{From: 0, To: ms(100), Width: 10}.RenderSVG(tr)
	for _, want := range []string{"<svg", "#2563eb", "#d1d5db", "a&lt;b&gt;", "</svg>"} {
		if !strings.Contains(svg, want) {
			t.Errorf("svg missing %q", want)
		}
	}
	if strings.Contains(svg, "<b>") {
		t.Error("unescaped markup in svg")
	}
	// Degenerate window.
	if got := (Timeline{From: ms(5), To: ms(5)}).RenderSVG(tr); !strings.Contains(got, "<svg") {
		t.Errorf("degenerate svg = %q", got)
	}
}
