package stats

import (
	"math"
	"sort"

	"repro/internal/vclock"
)

// JainFairness returns Jain's fairness index over the allocations xs:
//
//	J = (Σx)² / (n · Σx²)
//
// J is 1 when every x is equal (perfect fairness) and approaches 1/n as
// one allocation dominates — the standard scalar the S-series experiments
// use to compare how evenly a policy divides service across SLO classes.
//
// Edge cases follow the same defensive conventions as Percentile: an
// empty slice returns 0 (no allocations, no fairness to speak of); NaN,
// infinite, and negative samples are dropped before the computation
// rather than poisoning it; a single surviving sample is trivially fair
// (1); and an all-zero population — everyone equally starved — is also
// perfectly fair, returning 1 instead of 0/0.
func JainFairness(xs []float64) float64 {
	var sum, sumSq float64
	n := 0
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) || x < 0 {
			continue
		}
		sum += x
		sumSq += x * x
		n++
	}
	if n == 0 {
		return 0
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(n) * sumSq)
}

// ClassLatency groups latency samples by SLO class — one LatencyRecorder
// per class name, created lazily on first Add. The zero value is ready to
// use. It is the per-class companion to LatencyRecorder: the S-series
// experiments record every request under its class ("interactive",
// "batch", ...) and report per-class percentiles plus a Jain index over
// the class means.
type ClassLatency struct {
	classes map[string]*LatencyRecorder
}

// Add records one sample under the given class.
func (c *ClassLatency) Add(class string, d vclock.Duration) {
	if c.classes == nil {
		c.classes = map[string]*LatencyRecorder{}
	}
	r := c.classes[class]
	if r == nil {
		r = &LatencyRecorder{}
		c.classes[class] = r
	}
	r.Add(d)
}

// Class returns the recorder for a class, or nil if the class has no
// samples. The returned recorder is live: adding to it adds to c.
func (c *ClassLatency) Class(name string) *LatencyRecorder {
	return c.classes[name]
}

// Classes lists the class names with at least one sample, sorted, so
// reports iterate deterministically.
func (c *ClassLatency) Classes() []string {
	names := make([]string, 0, len(c.classes))
	for name := range c.classes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Count returns the total samples across all classes.
func (c *ClassLatency) Count() int {
	n := 0
	for _, r := range c.classes {
		n += r.Count()
	}
	return n
}

// Merge folds every class of o into c, class by class, with
// LatencyRecorder.Merge's exact-union semantics: percentiles over merged
// recorders equal percentiles over the concatenated samples, in any merge
// order. o is left unchanged; merging nil or c itself is a no-op.
func (c *ClassLatency) Merge(o *ClassLatency) {
	if o == nil || c == o {
		return
	}
	for class, r := range o.classes {
		if r.Count() == 0 {
			continue
		}
		if c.classes == nil {
			c.classes = map[string]*LatencyRecorder{}
		}
		mine := c.classes[class]
		if mine == nil {
			mine = &LatencyRecorder{}
			c.classes[class] = mine
		}
		mine.Merge(r)
	}
}

// MeanByClass returns each class's mean latency in microseconds, ordered
// like Classes — the canonical input to JainFairness when the question is
// "how evenly did the policy spread latency across classes".
func (c *ClassLatency) MeanByClass() []float64 {
	names := c.Classes()
	means := make([]float64, len(names))
	for i, name := range names {
		means[i] = float64(c.classes[name].Mean())
	}
	return means
}
