package stats

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/trace"
	"repro/internal/vclock"
)

// segment is one contiguous span of a thread's state.
type segment struct {
	from, to vclock.Time
	state    timelineState
}

// collectSegments reconstructs per-thread state spans within [from,to].
func collectSegments(tr trace.Trace, from, to vclock.Time) (map[int32][]segment, map[int32]vclock.Duration) {
	segs := map[int32][]segment{}
	exec := map[int32]vclock.Duration{}
	state := map[int32]timelineState{}
	lastAt := map[int32]vclock.Time{}
	cpuCur := map[int64]int32{}

	emit := func(id int32, lo, hi vclock.Time, st timelineState) {
		if st == tlAbsent || hi < from || lo > to {
			return
		}
		if lo < from {
			lo = from
		}
		if hi > to {
			hi = to
		}
		if hi <= lo {
			return
		}
		segs[id] = append(segs[id], segment{from: lo, to: hi, state: st})
		if st == tlRunning {
			exec[id] += hi.Sub(lo)
		}
	}
	transition := func(id int32, at vclock.Time, st timelineState) {
		if prev, ok := state[id]; ok {
			emit(id, lastAt[id], at, prev)
		}
		state[id] = st
		lastAt[id] = at
	}
	for _, ev := range tr.Events {
		if ev.Time > to {
			break
		}
		switch ev.Kind {
		case trace.KindFork:
			transition(int32(ev.Arg), ev.Time, tlRunnable)
		case trace.KindExit:
			transition(ev.Thread, ev.Time, tlAbsent)
		case trace.KindSwitch:
			// End the previous occupant's running span via per-CPU
			// occupancy (a yield vacates the CPU without its own switch
			// record, so Arg alone is not reliable).
			if prev, ok := cpuCur[ev.Aux]; ok && prev != trace.NoThread && state[prev] == tlRunning {
				transition(prev, ev.Time, tlRunnable)
			}
			cpuCur[ev.Aux] = ev.Thread
			if ev.Thread != trace.NoThread {
				transition(ev.Thread, ev.Time, tlRunning)
			}
		case trace.KindBlock:
			transition(ev.Thread, ev.Time, tlBlocked)
		case trace.KindReady:
			if state[ev.Thread] != tlRunning {
				transition(ev.Thread, ev.Time, tlRunnable)
			}
		}
	}
	for id, st := range state {
		if st != tlAbsent {
			emit(id, lastAt[id], to, st)
		}
	}
	return segs, exec
}

var svgColors = map[timelineState]string{
	tlRunning:  "#2563eb", // blue: on a CPU
	tlRunnable: "#f59e0b", // amber: ready, waiting for a CPU
	tlBlocked:  "#d1d5db", // grey: blocked
}

// RenderSVG draws the same Gantt view as Render as a standalone SVG
// document: blue = running, amber = ready, grey = blocked. Open the file
// in any browser.
func (tl Timeline) RenderSVG(tr trace.Trace) string {
	if tl.To <= tl.From {
		return `<svg xmlns="http://www.w3.org/2000/svg"/>`
	}
	const (
		labelW  = 200
		rowH    = 18
		rowPad  = 4
		chartW  = 1000
		headerH = 28
		footerH = 24
	)
	segs, exec := collectSegments(tr, tl.From, tl.To)
	ids := make([]int32, 0, len(segs))
	for id := range segs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if exec[ids[i]] != exec[ids[j]] {
			return exec[ids[i]] > exec[ids[j]]
		}
		return ids[i] < ids[j]
	})
	if tl.MaxRows > 0 && len(ids) > tl.MaxRows {
		ids = ids[:tl.MaxRows]
	}

	span := float64(tl.To.Sub(tl.From))
	x := func(t vclock.Time) float64 {
		return labelW + float64(t.Sub(tl.From))/span*chartW
	}
	height := headerH + len(ids)*(rowH+rowPad) + footerH

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="12">`+"\n",
		labelW+chartW+20, height)
	fmt.Fprintf(&sb, `<text x="%d" y="18">thread timeline %s .. %s (blue=running amber=ready grey=blocked)</text>`+"\n",
		labelW, tl.From, tl.To)
	for row, id := range ids {
		y := headerH + row*(rowH+rowPad)
		label := tr.NameOf(id)
		fmt.Fprintf(&sb, `<text x="4" y="%d">%s</text>`+"\n", y+rowH-5, svgEscape(label))
		for _, s := range segs[id] {
			x0, x1 := x(s.from), x(s.to)
			w := x1 - x0
			if w < 0.5 {
				w = 0.5
			}
			fmt.Fprintf(&sb, `<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s"><title>%s %s..%s</title></rect>`+"\n",
				x0, y, w, rowH, svgColors[s.state], svgEscape(label), s.from, s.to)
		}
	}
	fmt.Fprintf(&sb, `</svg>`+"\n")
	return sb.String()
}

func svgEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
