package stats

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/trace"
	"repro/internal/vclock"
)

// randomEvents builds a plausible monotonic event stream.
func randomEvents(seed int64, n int) []trace.Event {
	rng := rand.New(rand.NewSource(seed))
	var evs []trace.Event
	var tm vclock.Time
	live := []int32{}
	next := int32(1)
	for i := 0; i < n; i++ {
		tm = tm.Add(vclock.Duration(rng.Int63n(int64(5 * vclock.Millisecond))))
		switch rng.Intn(8) {
		case 0: // fork
			parent := int32(trace.NoThread)
			if len(live) > 0 && rng.Intn(2) == 0 {
				parent = live[rng.Intn(len(live))]
			}
			evs = append(evs, trace.Event{Time: tm, Kind: trace.KindFork, Thread: parent, Arg: int64(next), Aux: int64(1 + rng.Intn(7))})
			live = append(live, next)
			next++
		case 1: // exit
			if len(live) > 0 {
				i := rng.Intn(len(live))
				evs = append(evs, trace.Event{Time: tm, Kind: trace.KindExit, Thread: live[i]})
				live = append(live[:i], live[i+1:]...)
			}
		case 2: // switch
			to := int64(trace.NoThread)
			if len(live) > 0 {
				to = int64(live[rng.Intn(len(live))])
			}
			evs = append(evs, trace.Event{Time: tm, Kind: trace.KindSwitch, Thread: int32(to), Arg: trace.NoThread, Aux: int64(rng.Intn(2))})
		case 3:
			if len(live) > 0 {
				evs = append(evs, trace.Event{Time: tm, Kind: trace.KindMLEnter, Thread: live[rng.Intn(len(live))], Arg: int64(rng.Intn(20)), Aux: int64(rng.Intn(2))})
			}
		case 4:
			if len(live) > 0 {
				evs = append(evs, trace.Event{Time: tm, Kind: trace.KindWait, Thread: live[rng.Intn(len(live))], Arg: int64(rng.Intn(10)), Aux: -1})
			}
		case 5:
			if len(live) > 0 {
				evs = append(evs, trace.Event{Time: tm, Kind: trace.KindWaitDone, Thread: live[rng.Intn(len(live))], Arg: int64(rng.Intn(10)), Aux: int64(rng.Intn(2))})
			}
		case 6:
			if len(live) > 0 {
				evs = append(evs, trace.Event{Time: tm, Kind: trace.KindNotify, Thread: live[rng.Intn(len(live))], Arg: int64(rng.Intn(10)), Aux: int64(rng.Intn(2))})
			}
		case 7:
			if len(live) > 0 {
				evs = append(evs, trace.Event{Time: tm, Kind: trace.KindSetPriority, Thread: live[rng.Intn(len(live))], Arg: 4, Aux: int64(1 + rng.Intn(7))})
			}
		}
	}
	return evs
}

// comparable strips the map/pointer fields that reflect.DeepEqual handles
// fine but documents what we compare.
func summarize(a *Analysis) map[string]any {
	return map[string]any{
		"forks": a.Forks, "exits": a.Exits, "switches": a.Switches,
		"waits": a.Waits, "dones": a.WaitDones, "timeouts": a.WaitTimeouts,
		"ml": a.MLEnters, "contended": a.MLContended,
		"cvs": a.DistinctCVs, "mls": a.DistinctMLs,
		"maxlive": a.MaxLive, "eternal": a.EternalCount,
		"exited": a.ExitedCount, "transient": a.TransientCount,
		"meanlife": a.MeanExitedLifetime, "gens": len(a.ForkGenerations),
		"count": a.Intervals.Count(), "total": a.Intervals.Total(),
		"to": a.To, "from": a.From,
	}
}

// Property: the streaming Collector and batch Analyze agree exactly on
// arbitrary event streams and windows.
func TestCollectorMatchesAnalyze(t *testing.T) {
	f := func(seed int64, nRaw uint8, fromMs, winMs uint16) bool {
		evs := randomEvents(seed, 20+int(nRaw))
		from := vclock.Time(vclock.Duration(fromMs) * vclock.Millisecond / 8)
		to := from.Add(vclock.Duration(winMs) * vclock.Millisecond / 8)
		batch := Analyze(evs, from, to)

		c := NewCollector(from, to)
		for _, ev := range evs {
			c.Record(ev)
		}
		end := from
		if len(evs) > 0 {
			end = evs[len(evs)-1].Time
		}
		stream := c.Finish(end)
		return reflect.DeepEqual(summarize(batch), summarize(stream))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCollectorFinishIdempotent(t *testing.T) {
	c := NewCollector(0, vclock.Never)
	for _, ev := range randomEvents(3, 50) {
		c.Record(ev)
	}
	a1 := c.Finish(vclock.Time(vclock.Second))
	a2 := c.Finish(vclock.Time(2 * vclock.Second))
	if a1 != a2 {
		t.Fatal("Finish should return the same Analysis")
	}
	if a1.To != vclock.Time(vclock.Second) {
		t.Fatalf("To = %v, want 1s (first Finish wins)", a1.To)
	}
	// Records after Finish are ignored.
	before := a1.MLEnters
	c.Record(trace.Event{Time: vclock.Time(500 * vclock.Millisecond), Kind: trace.KindMLEnter, Thread: 1, Arg: 1})
	if a1.MLEnters != before {
		t.Fatal("Record after Finish mutated the analysis")
	}
}

func TestCollectorNeverWindow(t *testing.T) {
	c := NewCollector(0, vclock.Never)
	c.Record(trace.Event{Time: vclock.Time(10 * vclock.Millisecond), Kind: trace.KindMLEnter, Thread: 1, Arg: 1})
	a := c.Finish(vclock.Time(20 * vclock.Millisecond))
	if a.To != vclock.Time(20*vclock.Millisecond) {
		t.Fatalf("To = %v", a.To)
	}
	if a.MLEnters != 1 {
		t.Fatalf("MLEnters = %d", a.MLEnters)
	}
}
