package profile

import (
	"fmt"
	"strings"

	"repro/internal/stats"
	"repro/internal/vclock"
)

// Row caps keep reports readable for fork-heavy workloads (a Cedar
// compile creates hundreds of worker threads); truncation is always
// announced in a note so nothing is silently dropped.
const (
	maxThreadRows  = 24
	maxMonitorRows = 12
	maxCVRows      = 12
)

// Report is a profile rendered as tables plus notes, in the same shape
// cmd/threadstudy prints experiment reports.
type Report struct {
	Title  string
	Tables []*stats.Table
	Notes  []string
	// Blocks are preformatted multi-line sections (histogram bar
	// charts); markdown output fences them.
	Blocks []string
}

// String renders the report as plain text.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== profile: %s ==\n\n", r.Title)
	for _, t := range r.Tables {
		sb.WriteString(t.String())
		sb.WriteByte('\n')
	}
	for _, b := range r.Blocks {
		sb.WriteString(b)
		sb.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Markdown renders the report as GitHub-flavored markdown.
func (r *Report) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "## profile — %s\n\n", r.Title)
	for _, t := range r.Tables {
		sb.WriteString(t.Markdown())
		sb.WriteByte('\n')
	}
	for _, b := range r.Blocks {
		sb.WriteString("```\n")
		sb.WriteString(b)
		sb.WriteString("```\n\n")
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "> %s\n", n)
	}
	return sb.String()
}

// NewReport renders p into tables: the accounting identity, the
// per-thread state timeline, per-CPU utilization, monitor contention
// (§6.1 / Table 3), CV waits (Table 2 / §5.3) and §6.2
// priority-inversion episodes.
func NewReport(p *Profile) *Report {
	r := &Report{Title: "per-thread scheduler accounting"}

	window := p.Window()
	r.Notes = append(r.Notes, fmt.Sprintf(
		"window %s on %d CPU(s): running %s + idle %s = %s; residue %dus",
		window, p.CPUs, p.TotalRunning(), p.TotalIdle(),
		vclock.Duration(int64(p.CPUs))*window, int64(p.Residue())))

	r.Tables = append(r.Tables, threadTable(p))
	r.Tables = append(r.Tables, cpuTable(p))
	if len(p.Monitors) > 0 {
		r.Tables = append(r.Tables, monitorTable(p, r))
	}
	if len(p.CVs) > 0 {
		r.Tables = append(r.Tables, cvTable(p, r))
	}
	inversionSection(p, r)
	return r
}

func threadTable(p *Profile) *stats.Table {
	t := stats.NewTable("Per-thread accounting",
		"thread", "pri", "running", "ready", "mutex", "cv-wait", "sleep", "other",
		"switches", "preempt", "inverted")

	// Busiest first; creation order breaks ties so output is stable.
	idx := make([]int, len(p.Threads))
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0; j-- {
			a, b := p.Threads[idx[j-1]], p.Threads[idx[j]]
			if a.Running() >= b.Running() {
				break
			}
			idx[j-1], idx[j] = idx[j], idx[j-1]
		}
	}

	shown := idx
	if len(shown) > maxThreadRows {
		shown = shown[:maxThreadRows]
	}
	var restRunning vclock.Duration
	for _, i := range idx[len(shown):] {
		restRunning += p.Threads[i].Running()
	}
	for _, i := range shown {
		th := p.Threads[i]
		other := th.Durations[StateJoin] + th.Durations[StateForkWait]
		t.AddRow(th.Label(),
			fmt.Sprintf("%d", th.Priority),
			th.Running().String(), th.Ready().String(),
			th.Durations[StateMutex].String(), th.Durations[StateCV].String(),
			th.Durations[StateSleep].String(), other.String(),
			fmt.Sprintf("%d", th.Switches), fmt.Sprintf("%d", th.Preemptions),
			th.InvertedReady.String())
	}
	if n := len(p.Threads) - len(shown); n > 0 {
		t.AddRow(fmt.Sprintf("(+%d more)", n), "", restRunning.String())
	}
	return t
}

func cpuTable(p *Profile) *stats.Table {
	t := stats.NewTable("Per-CPU utilization", "cpu", "switches", "busy", "idle", "idle %")
	window := p.Window()
	for i, idle := range p.CPUIdle {
		busy := window - idle
		pct := 0.0
		if window > 0 {
			pct = 100 * idle.Seconds() / window.Seconds()
		}
		t.AddRow(fmt.Sprintf("cpu%d", i),
			fmt.Sprintf("%d", p.CPUSwitches[i]),
			busy.String(), idle.String(), fmt.Sprintf("%.1f%%", pct))
	}
	return t
}

func monitorTable(p *Profile, r *Report) *stats.Table {
	t := stats.NewTable("Monitor contention (§6.1)",
		"monitor", "enters", "contended", "hold mean", "hold max", "qwait mean", "qwait max")

	ms := append([]*MonitorProfile(nil), p.Monitors...)
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0; j-- {
			if ms[j-1].Enters > ms[j].Enters ||
				(ms[j-1].Enters == ms[j].Enters && ms[j-1].ID <= ms[j].ID) {
				break
			}
			ms[j-1], ms[j] = ms[j], ms[j-1]
		}
	}
	shown := ms
	if len(shown) > maxMonitorRows {
		shown = shown[:maxMonitorRows]
		r.Notes = append(r.Notes, fmt.Sprintf(
			"monitor table truncated to the %d busiest of %d monitors",
			maxMonitorRows, len(ms)))
	}
	for _, m := range shown {
		t.AddRow(fmt.Sprintf("ml%d", m.ID),
			fmt.Sprintf("%d", m.Enters), fmt.Sprintf("%d", m.Contended),
			meanOf(m.Hold), m.MaxHold.String(),
			meanOf(m.QueueWait), m.MaxQueueWait.String())
	}
	return t
}

func cvTable(p *Profile, r *Report) *stats.Table {
	t := stats.NewTable("Condition-variable waits (Table 2, §5.3)",
		"cv", "waits", "timeouts", "signals", "woken", "wait mean", "wait max")

	cs := append([]*CVProfile(nil), p.CVs...)
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0; j-- {
			if cs[j-1].Waits > cs[j].Waits ||
				(cs[j-1].Waits == cs[j].Waits && cs[j-1].ID <= cs[j].ID) {
				break
			}
			cs[j-1], cs[j] = cs[j], cs[j-1]
		}
	}
	shown := cs
	if len(shown) > maxCVRows {
		shown = shown[:maxCVRows]
		r.Notes = append(r.Notes, fmt.Sprintf(
			"CV table truncated to the %d busiest of %d CVs", maxCVRows, len(cs)))
	}
	for _, c := range shown {
		t.AddRow(fmt.Sprintf("cv%d", c.ID),
			fmt.Sprintf("%d", c.Waits), fmt.Sprintf("%d", c.Timeouts),
			fmt.Sprintf("%d", c.Signals), fmt.Sprintf("%d", c.Woken),
			meanOf(c.Wait), c.MaxWait.String())
	}
	return t
}

func inversionSection(p *Profile, r *Report) {
	inv := p.Inversion
	if inv.Episodes == 0 {
		r.Notes = append(r.Notes, "priority inversion (§6.2): none observed")
		return
	}
	r.Notes = append(r.Notes, fmt.Sprintf(
		"priority inversion (§6.2): %d episode(s), total %s, longest %s",
		inv.Episodes, inv.Total, inv.Longest))
	var sb strings.Builder
	sb.WriteString("Inversion episode durations (§6.2)\n")
	sb.WriteString(inv.Durations.String())
	r.Blocks = append(r.Blocks, sb.String())
}

// meanOf renders a histogram's mean, or "-" when it is empty.
func meanOf(h *stats.Histogram) string {
	n := h.Count()
	if n == 0 {
		return "-"
	}
	return (h.Total() / vclock.Duration(n)).String()
}
