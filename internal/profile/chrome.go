package profile

import (
	"bufio"
	"encoding/json"
	"errors"
	"io"
)

// Chrome trace-event export: the "JSON array format" understood by
// Perfetto (ui.perfetto.dev) and chrome://tracing. Virtual microseconds
// map directly onto the format's microsecond "ts"/"dur" fields, so the
// exported timeline is the simulation's timeline.
//
// Two processes organize the tracks: pid 1 carries one track per thread
// showing its full state timeline (running/ready/blocked spans), pid 2
// carries one track per CPU showing which thread occupied it (gaps are
// idle time).
const (
	chromePidThreads = 1
	chromePidCPUs    = 2
)

type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Cat  string         `json:"cat,omitempty"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// ErrNoSpans reports a Chrome export attempted on a profile whose
// profiler did not retain spans (KeepSpans was false).
var ErrNoSpans = errors.New("profile: Chrome export needs spans; enable KeepSpans before profiling")

// WriteChromeTrace writes p as Chrome trace-event JSON. The profile must
// have been collected with KeepSpans set (unless it saw no events at
// all); the output is deterministic for a deterministic profile.
func WriteChromeTrace(w io.Writer, p *Profile) error {
	if len(p.Spans) == 0 && p.TotalRunning() > 0 {
		return ErrNoSpans
	}
	bw := bufio.NewWriter(w)
	first := true
	emit := func(ev chromeEvent) error {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if first {
			if _, err := bw.WriteString("[\n"); err != nil {
				return err
			}
			first = false
		} else if _, err := bw.WriteString(",\n"); err != nil {
			return err
		}
		_, err = bw.Write(b)
		return err
	}

	meta := func(pid int, tid int64, key, name string, sort int) error {
		if err := emit(chromeEvent{Name: key + "_name", Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": name}}); err != nil {
			return err
		}
		return emit(chromeEvent{Name: key + "_sort_index", Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"sort_index": sort}})
	}

	if err := meta(chromePidThreads, 0, "process", "threads", chromePidThreads); err != nil {
		return err
	}
	if err := meta(chromePidCPUs, 0, "process", "cpus", chromePidCPUs); err != nil {
		return err
	}
	labels := make(map[int32]string, len(p.Threads))
	for i, t := range p.Threads {
		labels[t.ID] = t.Label()
		if err := meta(chromePidThreads, int64(t.ID), "thread", t.Label(), i); err != nil {
			return err
		}
	}
	for i := range p.CPUIdle {
		if err := meta(chromePidCPUs, int64(i), "thread", "cpu"+itoa32(int32(i)), i); err != nil {
			return err
		}
	}

	for _, s := range p.Spans {
		if s.State == StateDead || s.State == StateNew {
			continue
		}
		ev := chromeEvent{
			Name: s.State.String(),
			Ph:   "X",
			Cat:  "state",
			Ts:   int64(s.From),
			Dur:  int64(s.To.Sub(s.From)),
			Pid:  chromePidThreads,
			Tid:  int64(s.Thread),
		}
		if s.State == StateRunning && s.CPU >= 0 {
			ev.Args = map[string]any{"cpu": s.CPU}
		}
		if err := emit(ev); err != nil {
			return err
		}
		if s.State == StateRunning && s.CPU >= 0 {
			if err := emit(chromeEvent{
				Name: labels[s.Thread],
				Ph:   "X",
				Cat:  "cpu",
				Ts:   int64(s.From),
				Dur:  int64(s.To.Sub(s.From)),
				Pid:  chromePidCPUs,
				Tid:  int64(s.CPU),
				Args: map[string]any{"thread": s.Thread},
			}); err != nil {
				return err
			}
		}
	}
	if first {
		if _, err := bw.WriteString("[\n"); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]\n"); err != nil {
		return err
	}
	return bw.Flush()
}
