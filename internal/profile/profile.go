// Package profile computes per-thread scheduler accounting from the
// simulator's event stream: the state timeline of every thread (running,
// ready, blocked on a monitor mutex, waiting on a CV, sleeping), per-CPU
// idle time, per-monitor contention profiles, CV-wait distributions and
// §6.2 priority-inversion episodes — the accounting evidence behind the
// paper's Tables 1–3 and its priority-inversion analysis.
//
// The Profiler is an online trace.Sink: attach it to a world (directly,
// or to every world of an experiment run via Set and sim.Hooks.OnWorld)
// and it aggregates as events are recorded, so arbitrarily long virtual
// windows stay memory-flat unless span retention (KeepSpans, needed for
// Chrome-trace export) is requested.
//
// All accounting is in virtual time and is exact: for every finished
// profile, the running time summed over threads plus the idle time
// summed over CPUs equals CPUs × (End − Start) with zero residue, and
// each thread's state durations sum to its lifetime. Because the input
// is the deterministic virtual-time event stream, profiles are
// byte-identical across -parallel settings.
package profile

import (
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// State is a thread scheduler state as accounted by the profiler. It is
// finer-grained than sim.State: blocked states are split by reason, the
// split the paper's per-thread accounting needs.
type State int

// Profiler thread states.
const (
	// StateNew: forked but not yet on the ready queue. The simulator
	// makes new threads runnable in the same instant, so this state
	// accumulates no time; it exists to anchor the timeline.
	StateNew State = iota
	// StateReady: on the ready queue, waiting for a CPU.
	StateReady
	// StateRunning: installed on a CPU.
	StateRunning
	// StateMutex: blocked entering a monitor (queue wait).
	StateMutex
	// StateCV: blocked in WAIT on a condition variable.
	StateCV
	// StateJoin: blocked in JOIN.
	StateJoin
	// StateSleep: timed sleep or simulated synchronous I/O.
	StateSleep
	// StateForkWait: blocked in FORK waiting for thread resources (§5.4).
	StateForkWait
	// StateDead: exited.
	StateDead
	numStates
)

var stateNames = [numStates]string{
	"new", "ready", "running", "mutex", "cv-wait", "join", "sleep", "fork-wait", "dead",
}

// String returns the lowercase name of s.
func (s State) String() string {
	if s >= 0 && int(s) < len(stateNames) {
		return stateNames[s]
	}
	return "invalid"
}

// blockState maps a trace Block* reason to the profiler state.
func blockState(reason int64) State {
	switch reason {
	case trace.BlockMutex:
		return StateMutex
	case trace.BlockCV:
		return StateCV
	case trace.BlockJoin:
		return StateJoin
	case trace.BlockSleep:
		return StateSleep
	case trace.BlockFork:
		return StateForkWait
	}
	return StateSleep
}

// Span is one contiguous interval a thread spent in one state. Spans are
// retained only when KeepSpans is set; Chrome-trace export needs them.
type Span struct {
	Thread int32
	State  State
	CPU    int // CPU index for running spans, -1 otherwise
	From   vclock.Time
	To     vclock.Time
}

// ThreadProfile is one thread's accounted timeline.
type ThreadProfile struct {
	ID       int32
	Name     string // filled by ApplyNames; may be empty
	Priority int    // priority at the end of the window
	Born     vclock.Time
	Died     vclock.Time // End for threads still alive at Finish
	Alive    bool        // still live at Finish

	// Durations holds the total time spent in each State. The StateDead
	// entry accumulates time between exit and the end of the window and
	// is excluded from Lifetime.
	Durations [numStates]vclock.Duration

	// Switches counts dispatches onto a CPU; Yields counts YIELD-family
	// calls; Preemptions counts involuntary ready-queue re-entries.
	Switches    int64
	Yields      int64
	Preemptions int64

	// InvertedReady is the portion of ready time during which this
	// thread sat runnable while every CPU ran only strictly
	// lower-priority threads — the §6.2 priority-inversion condition.
	InvertedReady vclock.Duration
}

// Running returns the thread's total CPU time.
func (t *ThreadProfile) Running() vclock.Duration { return t.Durations[StateRunning] }

// Ready returns the total time spent runnable but not running.
func (t *ThreadProfile) Ready() vclock.Duration { return t.Durations[StateReady] }

// Blocked returns the total blocked time across every block reason,
// CV waits included.
func (t *ThreadProfile) Blocked() vclock.Duration {
	return t.Durations[StateMutex] + t.Durations[StateCV] + t.Durations[StateJoin] +
		t.Durations[StateSleep] + t.Durations[StateForkWait]
}

// Lifetime returns Died − Born: the window during which the thread
// existed. The per-thread invariant is that the non-dead state durations
// sum exactly to Lifetime.
func (t *ThreadProfile) Lifetime() vclock.Duration { return t.Died.Sub(t.Born) }

// Label renders "t<id>" or "t<id> <name>" for reports.
func (t *ThreadProfile) Label() string {
	if t.Name == "" {
		return "t" + itoa32(t.ID)
	}
	return "t" + itoa32(t.ID) + " " + t.Name
}

// MonitorProfile is one monitor lock's contention profile (Table 3's
// population, §6.1's conflict analysis).
type MonitorProfile struct {
	ID        int64
	Enters    int64 // completed ML-Enter operations
	Contended int64 // entries that had to queue for the mutex

	// Hold is the distribution of Enter→Exit hold intervals; QueueWait
	// the distribution of Block→Enter mutex queue waits.
	Hold      *stats.Histogram
	QueueWait *stats.Histogram

	MaxHold      vclock.Duration
	MaxQueueWait vclock.Duration
}

// CVProfile is one condition variable's wait profile (Table 2's WAIT
// rates, §5.3's timeout analysis).
type CVProfile struct {
	ID       int64
	Waits    int64 // completed WAITs (KindWaitDone observed)
	Timeouts int64 // completed WAITs that timed out
	Signals  int64 // NOTIFY + BROADCAST operations
	Woken    int64 // waiters those signals woke

	// Wait is the distribution of WAIT-begin → WAIT-done intervals as
	// the waiter experiences them (monitor reacquisition excluded; the
	// trace stamps WaitDone before the reacquire).
	Wait    *stats.Histogram
	MaxWait vclock.Duration
}

// InversionProfile aggregates §6.2 priority-inversion episodes: maximal
// intervals during which at least one thread sat ready while every CPU
// ran strictly lower-priority work.
type InversionProfile struct {
	Episodes int64
	Total    vclock.Duration
	Longest  vclock.Duration
	// Durations is the episode-length distribution.
	Durations *stats.Histogram
}

// Profile is a finished accounting result. Build one by feeding a
// Profiler and calling Finish.
type Profile struct {
	CPUs  int
	Start vclock.Time
	End   vclock.Time

	Threads []*ThreadProfile // creation order
	Names   map[int32]string // thread ID -> debug name (ApplyNames)

	CPUIdle     []vclock.Duration // per-CPU idle time
	CPUSwitches []int64           // per-CPU switch-in count

	Monitors []*MonitorProfile // ascending monitor ID
	CVs      []*CVProfile      // ascending CV ID

	Inversion InversionProfile

	// Spans is the full state timeline in chronological order, retained
	// only when the Profiler had KeepSpans set.
	Spans []Span
}

// Window returns the profiled virtual window End − Start.
func (p *Profile) Window() vclock.Duration { return p.End.Sub(p.Start) }

// TotalRunning sums CPU time over all threads.
func (p *Profile) TotalRunning() vclock.Duration {
	var d vclock.Duration
	for _, t := range p.Threads {
		d += t.Running()
	}
	return d
}

// TotalIdle sums idle time over all CPUs.
func (p *Profile) TotalIdle() vclock.Duration {
	var d vclock.Duration
	for _, c := range p.CPUIdle {
		d += c
	}
	return d
}

// Residue returns CPUs × Window − (total running + total idle). A
// correct profile of a complete trace has residue exactly zero; the
// accounting tests assert it.
func (p *Profile) Residue() vclock.Duration {
	return vclock.Duration(int64(p.CPUs))*p.Window() - p.TotalRunning() - p.TotalIdle()
}

// ApplyNames attaches debug names (e.g. from a v2 trace's name table or
// World.Threads) to the profile's threads for rendering.
func (p *Profile) ApplyNames(names map[int32]string) {
	if len(names) == 0 {
		return
	}
	p.Names = names
	for _, t := range p.Threads {
		if n, ok := names[t.ID]; ok {
			t.Name = n
		}
	}
}

// newLatencyHistogram buckets lock holds, queue waits and CV waits:
// fine sub-millisecond buckets up to the 50 ms quantum/timeout scale,
// then coarse buckets to a second.
func newLatencyHistogram() *stats.Histogram {
	return stats.NewHistogram(
		100*vclock.Microsecond,
		vclock.Millisecond,
		5*vclock.Millisecond,
		10*vclock.Millisecond,
		50*vclock.Millisecond,
		100*vclock.Millisecond,
		500*vclock.Millisecond,
		vclock.Second,
	)
}

// threadRec is a ThreadProfile plus the profiler's live state-machine
// fields. The mutex-queue and CV-wait trackers live inline rather than
// in side maps: every event that needs them already resolved the rec,
// so the hot path touches one cache line instead of three hash tables.
type threadRec struct {
	ThreadProfile
	state    State
	since    vclock.Time
	runCPU   int   // CPU while running (span attribution)
	readyIdx int32 // index into Profiler.ready while StateReady, -1 otherwise

	queueActive bool        // in a monitor mutex queue
	queueSince  vclock.Time // queue entry time while queueActive
	waitActive  bool        // in a CV wait
	waitCV      int64       // CV waited on while waitActive
	waitSince   vclock.Time // wait start while waitActive
}

type cpuRec struct {
	occupant  int32 // thread ID or trace.NoThread
	idleSince vclock.Time
	idle      vclock.Duration
	switches  int64
}

// holdEntry is one live monitor hold. The handful of concurrently held
// monitors lives in a flat slice scanned linearly: cheaper than a map
// for the few-element populations the simulator produces, and — unlike
// map iteration in the KindExit cleanup — deterministic to walk.
type holdEntry struct {
	mon    *MonitorProfile
	monID  int64
	thread int32
	since  vclock.Time
}

type waitRec struct {
	cv    int64
	since vclock.Time
}

// Profiler is the online accounting sink. Create with New, attach as a
// trace sink, then call Finish once the run is over.
//
// A Profiler is not safe for concurrent use; like any trace sink it
// belongs to exactly one world.
type Profiler struct {
	// KeepSpans retains the full state timeline for Chrome-trace export.
	// Set it before the first event; memory grows with trace length.
	KeepSpans bool

	cpus  int
	now   vclock.Time
	start vclock.Time
	cpu   []cpuRec

	// Thread/monitor/CV lookup is a dense slice indexed by ID: the
	// simulator allocates all three as small sequential integers, so the
	// per-event resolve is one bounds-checked load instead of a map
	// probe (the single hottest operation in a profiled run). Hostile or
	// synthetic replay inputs with huge IDs spill into fallback maps.
	denseThreads []*threadRec // index ID+1 (slot 0 is trace.NoThread)
	threads      map[int32]*threadRec
	order        []*threadRec // creation order
	denseMons    []*MonitorProfile
	monitors     map[int64]*MonitorProfile
	monOrder     []*MonitorProfile
	denseCVs     []*CVProfile
	cvs          map[int64]*CVProfile
	cvOrder      []*CVProfile

	// ready holds exactly the StateReady threads, so the advance loop —
	// run on every time-advancing event — charges inversion time without
	// visiting the (mostly blocked) full thread population.
	ready []*threadRec

	holds []holdEntry // live monitor holds

	// orphanWaits tracks CV waits recorded for threads the trace never
	// otherwise introduced (possible only in synthetic replays; the
	// simulator forks threads before they can wait).
	orphanWaits map[int32]waitRec

	invOpen  bool
	invSince vclock.Time
	inv      InversionProfile

	spans    []Span
	finished bool
	result   *Profile
}

// New creates a profiler for a world with the given CPU count. The
// profiled window starts at the virtual epoch (time 0), where every
// simulated world starts. CPUs that appear in switch events beyond the
// declared count are added on the fly, so a conservative count (e.g. 1
// when replaying a trace of unknown origin) underestimates only the
// idle time of CPUs that never dispatched at all.
func New(cpus int) *Profiler {
	if cpus < 1 {
		cpus = 1
	}
	p := &Profiler{
		cpus: cpus,
		cpu:  make([]cpuRec, cpus),
	}
	for i := range p.cpu {
		p.cpu[i].occupant = trace.NoThread
	}
	p.inv.Durations = stats.NewHistogram(
		vclock.Millisecond,
		5*vclock.Millisecond,
		10*vclock.Millisecond,
		50*vclock.Millisecond,
		100*vclock.Millisecond,
		500*vclock.Millisecond,
		vclock.Second,
	)
	return p
}

// Flush implements trace.Sink; the profiler aggregates in memory.
func (p *Profiler) Flush() error { return nil }

// Record implements trace.Sink.
func (p *Profiler) Record(ev trace.Event) {
	if p.finished {
		return
	}
	if ev.Time > p.now {
		p.advance(ev.Time)
	}
	switch ev.Kind {
	case trace.KindFork:
		child := p.thread(int32(ev.Arg), ev.Time)
		child.Priority = int(ev.Aux)

	case trace.KindReady:
		r := p.thread(ev.Thread, ev.Time)
		if r.state == StateRunning && int64(ev.Thread) != ev.Arg {
			// Re-queued by a preemptor (a yield re-queue carries the
			// thread's own ID in Arg).
			r.Preemptions++
		}
		p.setState(r, ev.Time, StateReady)

	case trace.KindBlock:
		r := p.thread(ev.Thread, ev.Time)
		s := blockState(ev.Aux)
		if s == StateMutex {
			r.queueActive = true
			r.queueSince = ev.Time
		}
		p.setState(r, ev.Time, s)

	case trace.KindSwitch:
		p.onSwitch(ev)

	case trace.KindExit:
		r := p.thread(ev.Thread, ev.Time)
		// Kill-unwind releases held monitors without MLExit records
		// (cf. the explore exclusion oracle); close those holds here.
		for i := 0; i < len(p.holds); {
			h := p.holds[i]
			if h.thread != ev.Thread {
				i++
				continue
			}
			d := ev.Time.Sub(h.since)
			h.mon.Hold.Add(d)
			if d > h.mon.MaxHold {
				h.mon.MaxHold = d
			}
			p.holds[i] = p.holds[len(p.holds)-1]
			p.holds = p.holds[:len(p.holds)-1]
		}
		r.queueActive = false
		r.waitActive = false
		if p.orphanWaits != nil {
			delete(p.orphanWaits, ev.Thread)
		}
		p.setState(r, ev.Time, StateDead)
		r.Died = ev.Time

	case trace.KindSetPriority:
		p.thread(ev.Thread, ev.Time).Priority = int(ev.Aux)

	case trace.KindYield:
		p.thread(ev.Thread, ev.Time).Yields++

	case trace.KindMLEnter:
		m := p.monitor(ev.Arg)
		m.Enters++
		if ev.Aux == 1 {
			m.Contended++
		}
		if r := p.lookupThread(ev.Thread); r != nil && r.queueActive {
			d := ev.Time.Sub(r.queueSince)
			m.QueueWait.Add(d)
			if d > m.MaxQueueWait {
				m.MaxQueueWait = d
			}
			r.queueActive = false
		}
		p.openHold(m, ev.Arg, ev.Thread, ev.Time)

	case trace.KindMLExit:
		for i := range p.holds {
			h := p.holds[i]
			if h.monID != ev.Arg {
				continue
			}
			if h.thread == ev.Thread {
				d := ev.Time.Sub(h.since)
				h.mon.Hold.Add(d)
				if d > h.mon.MaxHold {
					h.mon.MaxHold = d
				}
				p.holds[i] = p.holds[len(p.holds)-1]
				p.holds = p.holds[:len(p.holds)-1]
			}
			break
		}

	case trace.KindWait:
		p.cv(ev.Arg) // register in first-use order even if the wait never completes
		if r := p.lookupThread(ev.Thread); r != nil {
			r.waitActive = true
			r.waitCV = ev.Arg
			r.waitSince = ev.Time
			if p.orphanWaits != nil {
				delete(p.orphanWaits, ev.Thread)
			}
		} else {
			if p.orphanWaits == nil {
				p.orphanWaits = make(map[int32]waitRec)
			}
			p.orphanWaits[ev.Thread] = waitRec{cv: ev.Arg, since: ev.Time}
		}

	case trace.KindWaitDone:
		cv := p.cv(ev.Arg)
		cv.Waits++
		if ev.Aux == 1 {
			cv.Timeouts++
		}
		var since vclock.Time
		matched := false
		if r := p.lookupThread(ev.Thread); r != nil && r.waitActive && r.waitCV == ev.Arg {
			since = r.waitSince
			r.waitActive = false
			matched = true
		} else if ws, ok := p.orphanWaits[ev.Thread]; ok && ws.cv == ev.Arg {
			since = ws.since
			delete(p.orphanWaits, ev.Thread)
			matched = true
		}
		if matched {
			d := ev.Time.Sub(since)
			cv.Wait.Add(d)
			if d > cv.MaxWait {
				cv.MaxWait = d
			}
		}

	case trace.KindNotify, trace.KindBroadcast:
		cv := p.cv(ev.Arg)
		cv.Signals++
		cv.Woken += ev.Aux
	}
}

// openHold records that thread holds the monitor as of t, replacing any
// hold already open on the same monitor (an MLEnter without a matching
// MLExit, as a handoff records).
func (p *Profiler) openHold(m *MonitorProfile, id int64, thread int32, t vclock.Time) {
	for i := range p.holds {
		if p.holds[i].monID == id {
			p.holds[i].thread = thread
			p.holds[i].since = t
			return
		}
	}
	p.holds = append(p.holds, holdEntry{mon: m, monID: id, thread: thread, since: t})
}

// onSwitch applies a CPU dispatch record, using per-CPU occupancy (not
// the record's Arg) to close the outgoing interval: a yield vacates the
// CPU without a switch record of its own, so Arg alone is not reliable.
func (p *Profiler) onSwitch(ev trace.Event) {
	idx := int(ev.Aux)
	if idx < 0 {
		return
	}
	for idx >= len(p.cpu) {
		p.cpu = append(p.cpu, cpuRec{occupant: trace.NoThread, idleSince: p.start})
		p.cpus++
	}
	c := &p.cpu[idx]
	if c.occupant != trace.NoThread {
		if r := p.lookupThread(c.occupant); r != nil && r.state == StateRunning {
			// No explicit ready/block/exit record preceded this switch
			// (traces predating explicit re-queue events): infer the
			// ready-queue re-entry.
			p.setState(r, ev.Time, StateReady)
		}
	} else {
		c.idle += ev.Time.Sub(c.idleSince)
	}
	c.occupant = ev.Thread
	if ev.Thread == trace.NoThread {
		c.idleSince = ev.Time
		return
	}
	c.switches++
	r := p.thread(ev.Thread, ev.Time)
	r.runCPU = idx
	r.Switches++
	p.setState(r, ev.Time, StateRunning)
}

// advance charges the interval (p.now, t) — during which the settled
// state cannot change — with priority-inversion accounting, then moves
// the profiler clock. With no runnable-but-waiting thread there is
// nothing to charge, so the common case is a clock assignment; otherwise
// only the ready set is visited, never the full thread population.
func (p *Profiler) advance(t vclock.Time) {
	if len(p.ready) == 0 {
		if p.invOpen {
			p.closeEpisode(p.now)
		}
		p.now = t
		return
	}
	dt := t.Sub(p.now)
	inverted := false
	if minPri, busy := p.minRunningPriority(); busy {
		for _, r := range p.ready {
			if r.Priority > minPri {
				r.InvertedReady += dt
				inverted = true
			}
		}
	}
	if inverted && !p.invOpen {
		p.invOpen = true
		p.invSince = p.now
	} else if !inverted && p.invOpen {
		p.closeEpisode(p.now)
	}
	p.now = t
}

// minRunningPriority returns the lowest priority currently running and
// whether every CPU is busy. With an idle CPU no ready thread is being
// denied a processor, so no inversion can be in progress.
func (p *Profiler) minRunningPriority() (int, bool) {
	min := int(^uint(0) >> 1)
	for i := range p.cpu {
		occ := p.cpu[i].occupant
		if occ == trace.NoThread {
			return 0, false
		}
		if r := p.lookupThread(occ); r != nil && r.Priority < min {
			min = r.Priority
		}
	}
	return min, len(p.cpu) > 0
}

func (p *Profiler) closeEpisode(end vclock.Time) {
	d := end.Sub(p.invSince)
	p.invOpen = false
	if d <= 0 {
		return
	}
	p.inv.Episodes++
	p.inv.Total += d
	if d > p.inv.Longest {
		p.inv.Longest = d
	}
	p.inv.Durations.Add(d)
}

// setState closes the thread's current state interval and opens a new
// one at t, keeping the ready set in sync.
func (p *Profiler) setState(r *threadRec, t vclock.Time, s State) {
	if r.state == s {
		return
	}
	d := t.Sub(r.since)
	r.Durations[r.state] += d
	if p.KeepSpans && d > 0 && r.state != StateDead {
		cpu := -1
		if r.state == StateRunning {
			cpu = r.runCPU
		}
		p.spans = append(p.spans, Span{Thread: r.ID, State: r.state, CPU: cpu, From: r.since, To: t})
	}
	if r.state == StateReady {
		last := len(p.ready) - 1
		moved := p.ready[last]
		p.ready[r.readyIdx] = moved
		moved.readyIdx = r.readyIdx
		p.ready[last] = nil
		p.ready = p.ready[:last]
		r.readyIdx = -1
	}
	r.state = s
	r.since = t
	if s == StateReady {
		r.readyIdx = int32(len(p.ready))
		p.ready = append(p.ready, r)
	}
}

// denseLimit bounds how large an ID the dense lookup tables will grow
// to accommodate; anything beyond spills to the fallback maps so a
// hostile replay with huge IDs cannot balloon memory.
const denseLimit = 1 << 20

// lookupThread resolves an already-registered thread, or nil.
func (p *Profiler) lookupThread(id int32) *threadRec {
	if idx := int(id) + 1; idx >= 0 && idx < len(p.denseThreads) {
		return p.denseThreads[idx]
	}
	return p.threads[id]
}

func (p *Profiler) thread(id int32, t vclock.Time) *threadRec {
	if id == trace.NoThread {
		id = -1
	}
	if r := p.lookupThread(id); r != nil {
		return r
	}
	r := &threadRec{state: StateNew, since: t, runCPU: -1, readyIdx: -1}
	r.ID = id
	r.Born = t
	if idx := int(id) + 1; idx >= 0 && idx < denseLimit {
		for idx >= len(p.denseThreads) {
			p.denseThreads = append(p.denseThreads, nil)
		}
		p.denseThreads[idx] = r
	} else {
		if p.threads == nil {
			p.threads = make(map[int32]*threadRec)
		}
		p.threads[id] = r
	}
	p.order = append(p.order, r)
	return r
}

func (p *Profiler) monitor(id int64) *MonitorProfile {
	if id >= 0 && id < int64(len(p.denseMons)) {
		if m := p.denseMons[id]; m != nil {
			return m
		}
	} else if m := p.monitors[id]; m != nil {
		return m
	}
	m := &MonitorProfile{ID: id, Hold: newLatencyHistogram(), QueueWait: newLatencyHistogram()}
	if id >= 0 && id < denseLimit {
		for id >= int64(len(p.denseMons)) {
			p.denseMons = append(p.denseMons, nil)
		}
		p.denseMons[id] = m
	} else {
		if p.monitors == nil {
			p.monitors = make(map[int64]*MonitorProfile)
		}
		p.monitors[id] = m
	}
	p.monOrder = append(p.monOrder, m)
	return m
}

func (p *Profiler) cv(id int64) *CVProfile {
	if id >= 0 && id < int64(len(p.denseCVs)) {
		if c := p.denseCVs[id]; c != nil {
			return c
		}
	} else if c := p.cvs[id]; c != nil {
		return c
	}
	c := &CVProfile{ID: id, Wait: newLatencyHistogram()}
	if id >= 0 && id < denseLimit {
		for id >= int64(len(p.denseCVs)) {
			p.denseCVs = append(p.denseCVs, nil)
		}
		p.denseCVs[id] = c
	} else {
		if p.cvs == nil {
			p.cvs = make(map[int64]*CVProfile)
		}
		p.cvs[id] = c
	}
	p.cvOrder = append(p.cvOrder, c)
	return c
}

// Finish closes every open interval at end and returns the completed
// profile. Calling Finish again returns the same profile; events
// recorded after Finish are ignored.
func (p *Profiler) Finish(end vclock.Time) *Profile {
	if p.finished {
		return p.result
	}
	if end < p.now {
		end = p.now
	}
	p.advance(end)
	if p.invOpen {
		p.closeEpisode(end)
	}
	prof := &Profile{
		CPUs:      p.cpus,
		Start:     p.start,
		End:       end,
		Inversion: p.inv,
	}
	for _, r := range p.order {
		// Close the final interval without a state change.
		d := end.Sub(r.since)
		r.Durations[r.state] += d
		if p.KeepSpans && d > 0 && r.state != StateDead {
			cpu := -1
			if r.state == StateRunning {
				cpu = r.runCPU
			}
			p.spans = append(p.spans, Span{Thread: r.ID, State: r.state, CPU: cpu, From: r.since, To: end})
		}
		r.since = end
		if r.state != StateDead {
			r.Died = end
			r.Alive = true
		}
		prof.Threads = append(prof.Threads, &r.ThreadProfile)
	}
	for i := range p.cpu {
		c := &p.cpu[i]
		if c.occupant == trace.NoThread {
			c.idle += end.Sub(c.idleSince)
			c.idleSince = end
		}
		prof.CPUIdle = append(prof.CPUIdle, c.idle)
		prof.CPUSwitches = append(prof.CPUSwitches, c.switches)
	}
	prof.Monitors = append(prof.Monitors, p.monOrder...)
	prof.CVs = append(prof.CVs, p.cvOrder...)
	sortMonitors(prof.Monitors)
	sortCVs(prof.CVs)
	prof.Spans = p.spans
	p.finished = true
	p.result = prof
	return prof
}

// sortMonitors orders by ascending ID (allocation order).
func sortMonitors(ms []*MonitorProfile) {
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0 && ms[j-1].ID > ms[j].ID; j-- {
			ms[j-1], ms[j] = ms[j], ms[j-1]
		}
	}
}

func sortCVs(cs []*CVProfile) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j-1].ID > cs[j].ID; j-- {
			cs[j-1], cs[j] = cs[j], cs[j-1]
		}
	}
}

func itoa32(v int32) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
