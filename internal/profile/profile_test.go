package profile

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vclock"
	"repro/internal/workload"
)

func ms(n int64) vclock.Duration { return vclock.Duration(n) * vclock.Millisecond }

// fixtureWorld runs a 3-thread/1-CPU scenario whose timeline is simple
// enough to compute by hand:
//
//	t=0     c (high) dispatched; a, b (normal) ready
//	t=4ms   c sleeps 10ms; a runs its 9ms compute
//	t=13ms  a exits; b runs
//	t=14ms  c wakes and preempts b; c runs 2ms
//	t=16ms  c exits; b resumes
//	t=21ms  b exits; world quiescent
func fixtureWorld(t *testing.T) (*Profile, map[string]*ThreadProfile) {
	t.Helper()
	p := New(1)
	p.KeepSpans = true
	w := sim.NewWorld(sim.Config{
		CPUs:               1,
		SwitchCost:         -1, // exact timings
		TimeoutGranularity: vclock.Microsecond,
		Hooks: sim.Hooks{
			OnWorld: func(w *sim.World) trace.Sink { return p },
		},
	})
	defer w.Shutdown()

	w.Spawn("a", sim.PriorityNormal, func(t *sim.Thread) any {
		t.Compute(ms(9))
		return nil
	})
	w.Spawn("b", sim.PriorityNormal, func(t *sim.Thread) any {
		t.Compute(ms(6))
		return nil
	})
	w.Spawn("c", sim.PriorityHigh, func(t *sim.Thread) any {
		t.Compute(ms(4))
		t.Sleep(ms(10))
		t.Compute(ms(2))
		return nil
	})
	w.Run(vclock.Time(0).Add(ms(30)))

	prof := p.Finish(w.Now())
	names := make(map[int32]string)
	for _, th := range w.Threads() {
		names[th.ID()] = th.Name()
	}
	prof.ApplyNames(names)

	byName := make(map[string]*ThreadProfile)
	for _, th := range prof.Threads {
		byName[th.Name] = th
	}
	return prof, byName
}

func TestHandComputedFixture(t *testing.T) {
	prof, th := fixtureWorld(t)

	if got, want := prof.End, vclock.Time(0).Add(ms(21)); got != want {
		t.Fatalf("End = %v, want %v", got, want)
	}
	if res := prof.Residue(); res != 0 {
		t.Fatalf("Residue = %v, want 0", res)
	}

	checks := []struct {
		name     string
		running  vclock.Duration
		ready    vclock.Duration
		sleep    vclock.Duration
		switches int64
		preempts int64
		died     vclock.Time
	}{
		{"a", ms(9), ms(4), 0, 1, 0, vclock.Time(0).Add(ms(13))},
		{"b", ms(6), ms(15), 0, 2, 1, vclock.Time(0).Add(ms(21))},
		{"c", ms(6), 0, ms(10), 2, 0, vclock.Time(0).Add(ms(16))},
	}
	for _, c := range checks {
		p := th[c.name]
		if p == nil {
			t.Fatalf("thread %q missing from profile", c.name)
		}
		if p.Running() != c.running {
			t.Errorf("%s: running = %v, want %v", c.name, p.Running(), c.running)
		}
		if p.Ready() != c.ready {
			t.Errorf("%s: ready = %v, want %v", c.name, p.Ready(), c.ready)
		}
		if p.Durations[StateSleep] != c.sleep {
			t.Errorf("%s: sleep = %v, want %v", c.name, p.Durations[StateSleep], c.sleep)
		}
		if p.Switches != c.switches {
			t.Errorf("%s: switches = %d, want %d", c.name, p.Switches, c.switches)
		}
		if p.Preemptions != c.preempts {
			t.Errorf("%s: preemptions = %d, want %d", c.name, p.Preemptions, c.preempts)
		}
		if p.Died != c.died {
			t.Errorf("%s: died = %v, want %v", c.name, p.Died, c.died)
		}
		// Per-thread identity: non-dead states sum to the lifetime.
		var sum vclock.Duration
		for s := StateNew; s < StateDead; s++ {
			sum += p.Durations[s]
		}
		if sum != p.Lifetime() {
			t.Errorf("%s: state sum %v != lifetime %v", c.name, sum, p.Lifetime())
		}
	}

	// The high-priority thread always preempted immediately: no inversion.
	if prof.Inversion.Episodes != 0 {
		t.Errorf("inversion episodes = %d, want 0", prof.Inversion.Episodes)
	}

	// Summary totals must reproduce the accounting identity.
	sum := Summarize(prof)
	if sum.Running != ms(21) || sum.Idle != 0 || sum.Residue != 0 {
		t.Errorf("summary running/idle/residue = %v/%v/%v, want 21ms/0/0",
			sum.Running, sum.Idle, sum.Residue)
	}
	if sum.Preemptions != 1 {
		t.Errorf("summary preemptions = %d, want 1", sum.Preemptions)
	}
}

func TestChromeTraceFixture(t *testing.T) {
	prof, _ := fixtureWorld(t)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, prof); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("chrome trace is not valid JSON:\n%s", buf.String())
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("chrome trace is not a JSON array of events: %v", err)
	}
	var complete, meta int
	for _, ev := range evs {
		switch ev["ph"] {
		case "X":
			complete++
			if _, ok := ev["dur"]; !ok {
				t.Errorf("complete event without dur: %v", ev)
			}
		case "M":
			meta++
		default:
			t.Errorf("unexpected phase %v", ev["ph"])
		}
	}
	if complete == 0 || meta == 0 {
		t.Fatalf("want both complete and metadata events, got %d/%d", complete, meta)
	}
}

func TestChromeTraceNeedsSpans(t *testing.T) {
	prof, _ := func() (*Profile, map[string]*ThreadProfile) {
		p := New(1)
		w := sim.NewWorld(sim.Config{
			CPUs:       1,
			SwitchCost: -1,
			Hooks:      sim.Hooks{OnWorld: func(w *sim.World) trace.Sink { return p }},
		})
		defer w.Shutdown()
		w.Spawn("a", sim.PriorityNormal, func(t *sim.Thread) any {
			t.Compute(ms(1))
			return nil
		})
		w.Run(vclock.Time(0).Add(ms(5)))
		return p.Finish(w.Now()), nil
	}()
	if err := WriteChromeTrace(&bytes.Buffer{}, prof); err != ErrNoSpans {
		t.Fatalf("err = %v, want ErrNoSpans", err)
	}
}

// runBenchmarkProfile profiles a real workload via the Set/OnWorld seam.
func runBenchmarkProfile(t *testing.T, cpus int) []*Profile {
	t.Helper()
	set := NewSet()
	rc := workload.RunConfig{
		Warmup: 0,
		Window: 2 * vclock.Second,
		Seed:   1,
		CPUs:   cpus,
		Hooks:  sim.Hooks{OnWorld: set.Attach},
	}
	b := workload.CedarBenchmarks()[0]
	workload.Run(b, rc)
	return set.Finish()
}

func TestRealWorkloadExactAccounting(t *testing.T) {
	for _, cpus := range []int{1, 2, 4} {
		profs := runBenchmarkProfile(t, cpus)
		if len(profs) != 1 {
			t.Fatalf("cpus=%d: %d profiles, want 1", cpus, len(profs))
		}
		p := profs[0]
		if res := p.Residue(); res != 0 {
			t.Errorf("cpus=%d: residue = %v, want 0 (running %v, idle %v, window %v)",
				cpus, res, p.TotalRunning(), p.TotalIdle(), p.Window())
		}
		for _, th := range p.Threads {
			var sum vclock.Duration
			for s := StateNew; s < StateDead; s++ {
				sum += th.Durations[s]
			}
			if sum != th.Lifetime() {
				t.Errorf("cpus=%d %s: state sum %v != lifetime %v",
					cpus, th.Label(), sum, th.Lifetime())
			}
		}
		if cpus != len(p.CPUIdle) {
			t.Errorf("cpus=%d: profile tracked %d CPUs", cpus, len(p.CPUIdle))
		}
	}
}

func TestProfileDeterministic(t *testing.T) {
	a := NewReport(runBenchmarkProfile(t, 2)[0]).String()
	b := NewReport(runBenchmarkProfile(t, 2)[0]).String()
	if a != b {
		t.Fatalf("profile reports differ across identical runs:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
	if len(a) == 0 {
		t.Fatal("empty profile report")
	}
}
