package profile

import (
	"sync"

	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// Set profiles every world a run creates. Install Attach as
// sim.Hooks.OnWorld and each new world gets its own Profiler teed into
// the world's trace stream; Finish then closes every profiler at its
// world's final virtual clock.
//
// Attach/Finish are mutex-guarded so a Set survives callers that build
// worlds from more than one goroutine, but each returned sink is still
// single-world (worlds record events from one goroutine at a time).
type Set struct {
	// KeepSpans is copied to every attached Profiler.
	KeepSpans bool

	mu     sync.Mutex
	worlds []*sim.World
	profs  []*Profiler
	done   []*Profile
}

// NewSet returns an empty set.
func NewSet() *Set { return &Set{} }

// Attach creates a profiler for w and returns it as the extra trace
// sink for the world; it has the sim.Hooks.OnWorld signature.
func (s *Set) Attach(w *sim.World) trace.Sink {
	p := New(w.Config().CPUs)
	p.KeepSpans = s.KeepSpans
	s.mu.Lock()
	s.worlds = append(s.worlds, w)
	s.profs = append(s.profs, p)
	s.mu.Unlock()
	return p
}

// Finish closes every attached profiler at its world's current virtual
// clock and returns the profiles in world-creation order. Worlds
// attached after a Finish are picked up by the next Finish call;
// already-finished profilers return their existing profile.
func (s *Set) Finish() []*Profile {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := len(s.done); i < len(s.profs); i++ {
		w, p := s.worlds[i], s.profs[i]
		prof := p.Finish(w.Now())
		names := make(map[int32]string)
		for _, t := range w.Threads() {
			if t.Name() != "" {
				names[t.ID()] = t.Name()
			}
		}
		prof.ApplyNames(names)
		s.done = append(s.done, prof)
	}
	return s.done
}

// Summary finishes the set and aggregates every profile into one
// machine-readable record.
func (s *Set) Summary() Summary {
	profs := s.Finish()
	var sum Summary
	for _, p := range profs {
		sum.add(p)
	}
	return sum
}

// Summary is the machine-readable aggregate of one or more profiles;
// cmd/threadstudy -bench emits it as JSON. Every duration field is in
// virtual microseconds.
type Summary struct {
	Worlds  int `json:"worlds"`
	Threads int `json:"threads"`

	// VirtualTime sums each world's profiled window; CPUTime sums
	// CPUs × window — the denominator of the accounting identity.
	VirtualTime vclock.Duration `json:"virtual_us"`
	CPUTime     vclock.Duration `json:"cpu_time_us"`

	Running   vclock.Duration `json:"running_us"`
	Ready     vclock.Duration `json:"ready_us"`
	MutexWait vclock.Duration `json:"mutex_wait_us"`
	CVWait    vclock.Duration `json:"cv_wait_us"`
	Sleep     vclock.Duration `json:"sleep_us"`
	// OtherBlocked covers JOIN and FORK-exhaustion waits.
	OtherBlocked vclock.Duration `json:"other_blocked_us"`
	Idle         vclock.Duration `json:"idle_us"`

	// Residue is the accounting error summed over worlds; it is zero
	// for complete traces and the bench harness treats nonzero as a bug.
	Residue vclock.Duration `json:"residue_us"`

	Switches    int64 `json:"switches"`
	Preemptions int64 `json:"preemptions"`
	Yields      int64 `json:"yields"`

	Monitors        int   `json:"monitors"`
	MonitorEnters   int64 `json:"monitor_enters"`
	ContendedEnters int64 `json:"contended_enters"`
	CVs             int   `json:"cvs"`
	CVWaits         int64 `json:"cv_waits"`
	CVTimeouts      int64 `json:"cv_timeouts"`

	InversionEpisodes int64           `json:"inversion_episodes"`
	InversionTime     vclock.Duration `json:"inversion_us"`
	LongestInversion  vclock.Duration `json:"longest_inversion_us"`
}

// add folds one profile into the aggregate.
func (s *Summary) add(p *Profile) {
	s.Worlds++
	s.Threads += len(p.Threads)
	s.VirtualTime += p.Window()
	s.CPUTime += vclock.Duration(int64(p.CPUs)) * p.Window()
	for _, t := range p.Threads {
		s.Running += t.Durations[StateRunning]
		s.Ready += t.Durations[StateReady]
		s.MutexWait += t.Durations[StateMutex]
		s.CVWait += t.Durations[StateCV]
		s.Sleep += t.Durations[StateSleep]
		s.OtherBlocked += t.Durations[StateJoin] + t.Durations[StateForkWait]
		s.Switches += t.Switches
		s.Preemptions += t.Preemptions
		s.Yields += t.Yields
	}
	s.Idle += p.TotalIdle()
	s.Residue += p.Residue()
	s.Monitors += len(p.Monitors)
	for _, m := range p.Monitors {
		s.MonitorEnters += m.Enters
		s.ContendedEnters += m.Contended
	}
	s.CVs += len(p.CVs)
	for _, c := range p.CVs {
		s.CVWaits += c.Waits
		s.CVTimeouts += c.Timeouts
	}
	s.InversionEpisodes += p.Inversion.Episodes
	s.InversionTime += p.Inversion.Total
	if p.Inversion.Longest > s.LongestInversion {
		s.LongestInversion = p.Inversion.Longest
	}
}

// Summarize aggregates profiles without a Set (e.g. a single replayed
// trace).
func Summarize(profs ...*Profile) Summary {
	var sum Summary
	for _, p := range profs {
		sum.add(p)
	}
	return sum
}
