package monitor

import "fmt"

// CVStats are a condition variable's lifetime counters, the raw material
// for the §5.3 audit: "there were cases where timeouts had been
// introduced to compensate for missing NOTIFYs (bugs), instead of fixing
// the underlying problem."
type CVStats struct {
	Waits      int // completed WAIT operations
	Timeouts   int // completed by timeout
	Notifies   int // NOTIFY operations (regardless of waiters woken)
	Broadcasts int
}

// Stats returns the CV's counters.
func (c *Cond) Stats() CVStats { return c.stats }

// Suspicious reports the masked-missing-NOTIFY signature: at least
// minWaits completed waits, every one of them by timeout, and no NOTIFY
// or BROADCAST ever issued. As the paper warns, "legitimate timeouts can
// mask an omitted NOTIFY as well" — a purely periodic sleeper looks the
// same — so this is a lead for a human, not a verdict: the timeout-driven
// system "apparently works correctly but slowly".
func (c *Cond) Suspicious(minWaits int) bool {
	s := c.stats
	return s.Waits >= minWaits &&
		s.Timeouts == s.Waits &&
		s.Notifies == 0 && s.Broadcasts == 0
}

// Conds returns the monitor's condition variables in creation order.
func (m *Monitor) Conds() []*Cond {
	out := make([]*Cond, len(m.conds))
	copy(out, m.conds)
	return out
}

// auditReport renders this monitor's suspicious CVs as human-readable
// findings. Every monitor registers it with its world's probe
// (sim.World.RegisterAuditor) at creation, so a harness holding the
// probe can sweep every CV an experiment created — threadstudy's -audit
// flag — without the experiment having to expose its monitors.
func (m *Monitor) auditReport(minWaits int) []string {
	var out []string
	for _, c := range AuditCVs(minWaits, m) {
		s := c.Stats()
		out = append(out, fmt.Sprintf("monitor %q cv %q: %d waits, all timed out, 0 notifies (§5.3 masked-missing-NOTIFY signature)", m.name, c.name, s.Waits))
	}
	return out
}

// AuditCVs scans a set of monitors for suspicious CVs (see
// Cond.Suspicious) and returns them.
func AuditCVs(minWaits int, monitors ...*Monitor) []*Cond {
	var out []*Cond
	for _, m := range monitors {
		for _, c := range m.conds {
			if c.Suspicious(minWaits) {
				out = append(out, c)
			}
		}
	}
	return out
}
