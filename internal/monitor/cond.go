package monitor

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// Cond is a Mesa condition variable belonging to a monitor. Each CV
// "represents a state of the module's data structures (a condition) and a
// queue of threads waiting for that condition to become true" (§2). CVs
// carry an optional timeout interval; §3 of the paper found that 50–80 %
// of Cedar's waits and up to 99 % of GVX's end in timeout rather than
// notification.
type Cond struct {
	m       *Monitor
	id      int64
	name    string
	timeout vclock.Duration // 0 means wait forever
	queue   []*waiter
	stats   CVStats
}

// waiter is one thread's registration on a CV queue. The notified flag
// resolves the race between a NOTIFY and the waiter's own timeout.
type waiter struct {
	t        *sim.Thread
	notified bool
	gone     bool // waiter timed out and removed itself
}

// NewCond creates a condition variable on m with no timeout interval.
func (m *Monitor) NewCond(name string) *Cond {
	c := &Cond{m: m, id: m.w.AllocCVID(), name: name}
	m.conds = append(m.conds, c)
	return c
}

// NewCondTimeout creates a condition variable whose WAITs time out after
// d (rounded up to the world's 50 ms timeout granularity when they run).
func (m *Monitor) NewCondTimeout(name string, d vclock.Duration) *Cond {
	c := m.NewCond(name)
	c.timeout = d
	return c
}

// ID returns the CV's world-unique identifier (Table 3 counts these).
func (c *Cond) ID() int64 { return c.id }

// Name returns the CV's debug name.
func (c *Cond) Name() string { return c.name }

// Monitor returns the monitor the CV belongs to.
func (c *Cond) Monitor() *Monitor { return c.m }

// SetTimeout changes the CV's timeout interval; 0 disables timeouts.
func (c *Cond) SetTimeout(d vclock.Duration) {
	if d < 0 {
		d = 0
	}
	c.timeout = d
}

// Timeout returns the CV's timeout interval.
func (c *Cond) Timeout() vclock.Duration { return c.timeout }

// Waiters returns the number of threads currently waiting.
func (c *Cond) Waiters() int {
	n := 0
	for _, w := range c.queue {
		if !w.gone {
			n++
		}
	}
	return n
}

// Wait atomically releases the monitor and waits for a NOTIFY/BROADCAST
// or the CV's timeout, then reacquires the monitor before returning. It
// reports whether the wait timed out. Like Mesa — and unlike Hoare — the
// condition is NOT guaranteed to hold on return: callers must use
//
//	for !condition { cv.Wait(t) }
//
// never an IF (§5.3 lists IF-waits among the community's recurring bugs).
func (c *Cond) Wait(t *sim.Thread) (timedOut bool) {
	m := c.m
	if m.holder != t {
		panic(fmt.Sprintf("monitor: WAIT on cv %q without holding monitor %q", c.name, m.name))
	}
	t.Compute(m.opt.WaitCost)
	aux := int64(-1)
	if c.timeout > 0 {
		aux = int64(c.timeout)
	}
	m.w.Trace().Record(trace.Event{Time: m.w.Now(), Kind: trace.KindWait, Thread: t.ID(), Arg: c.id, Aux: aux})

	wtr := &waiter{t: t}
	c.queue = append(c.queue, wtr)
	// WAIT atomically releases the monitor lock; trace the implicit exit
	// so enter/exit events pair up for trace validators.
	m.w.Trace().Record(trace.Event{Time: m.w.Now(), Kind: trace.KindMLExit, Thread: t.ID(), Arg: m.id})
	m.releaseLocked(t)

	func() {
		// If an injected fault (World.KillThread) unwinds the wait, the
		// dead waiter must leave the CV queue — otherwise it would absorb
		// a future NOTIFY — and must pass the monitor on if a Hoare
		// signal had already handed it over. World.Shutdown's teardown
		// unwind (t.Killed) deliberately skips the cleanup: teardown
		// never resumes the simulation, and mutating queues under it
		// would change what traces record.
		defer func() {
			if r := recover(); r != nil {
				if !t.Killed() {
					wtr.gone = true
					c.compact()
					if m.holder == t {
						m.releaseLocked(t)
					}
				}
				panic(r)
			}
		}()
		if c.timeout > 0 {
			t.BlockTimed(sim.BlockCV, c.timeout)
		} else {
			t.Block(sim.BlockCV)
		}
	}()

	// A NOTIFY that raced our timeout wins: the notification did occur.
	timedOut = !wtr.notified
	if timedOut {
		wtr.gone = true
		c.compact()
	}
	to := int64(0)
	c.stats.Waits++
	if timedOut {
		to = 1
		c.stats.Timeouts++
	}
	m.w.Trace().Record(trace.Event{Time: m.w.Now(), Kind: trace.KindWaitDone, Thread: t.ID(), Arg: c.id, Aux: to})

	// Under Hoare signalling the monitor was handed to us directly; under
	// Mesa we must compete for the mutex before re-entering — which is
	// where the spurious lock conflict of §6.1 materializes when the
	// reschedule was not deferred.
	if m.holder == t {
		m.w.Trace().Record(trace.Event{Time: m.w.Now(), Kind: trace.KindMLEnter, Thread: t.ID(), Arg: m.id, Aux: 0})
		return timedOut
	}
	m.reacquire(t)
	return timedOut
}

// reacquire takes the mutex for a thread returning from WAIT.
func (m *Monitor) reacquire(t *sim.Thread) {
	t.Compute(m.opt.LockCost)
	contended := int64(0)
	if m.holder != nil {
		contended = 1
		m.inherit(t)
		m.blockOnMutex(t)
	} else {
		m.acquire(t)
	}
	m.w.Trace().Record(trace.Event{Time: m.w.Now(), Kind: trace.KindMLEnter, Thread: t.ID(), Arg: m.id, Aux: contended})
}

// Notify makes exactly one waiting thread runnable ("exactly one waiter
// wakens"; some packages instead promise at least one, which WAIT-in-a-
// loop code cannot distinguish). With the monitor's §6.1 option the
// reschedule is deferred until the notifier exits the monitor.
func (c *Cond) Notify(t *sim.Thread) {
	if c.m.w.NotifyDropped(c.name) {
		// Fault injection swallowed the NOTIFY (§5.3): no waiter wakes,
		// and neither the stats nor the trace record that it was ever
		// attempted — exactly as if the call had been deleted.
		return
	}
	c.stats.Notifies++
	woke := c.signal(t, 1)
	c.m.w.Trace().Record(trace.Event{Time: c.m.w.Now(), Kind: trace.KindNotify, Thread: t.ID(), Arg: c.id, Aux: int64(woke)})
}

// NotifyExternal delivers a notification from driver context — a device
// interrupt posting a condition, with no thread identity and no monitor
// held. It marks the oldest live waiter notified and makes it runnable;
// the waiter still competes for the mutex before re-entering, exactly as
// for a thread-context NOTIFY. Returns the number of waiters woken (0 or
// 1).
func (c *Cond) NotifyExternal() int {
	if c.m.w.NotifyDropped(c.name) {
		return 0
	}
	c.stats.Notifies++
	wtr := c.pop()
	if wtr == nil {
		return 0
	}
	wtr.notified = true
	c.m.w.WakeIfBlocked(wtr.t, nil)
	c.m.w.Trace().Record(trace.Event{Time: c.m.w.Now(), Kind: trace.KindNotify, Thread: trace.NoThread, Arg: c.id, Aux: 1})
	return 1
}

// Broadcast makes all waiting threads runnable. It is not a Hoare
// primitive and panics under the HoareSignal option.
func (c *Cond) Broadcast(t *sim.Thread) {
	if c.m.opt.HoareSignal {
		panic(fmt.Sprintf("monitor: BROADCAST on cv %q is not a Hoare primitive", c.name))
	}
	c.stats.Broadcasts++
	woke := c.signal(t, len(c.queue))
	c.m.w.Trace().Record(trace.Event{Time: c.m.w.Now(), Kind: trace.KindBroadcast, Thread: t.ID(), Arg: c.id, Aux: int64(woke)})
}

func (c *Cond) signal(t *sim.Thread, max int) int {
	m := c.m
	if m.holder != t {
		panic(fmt.Sprintf("monitor: NOTIFY on cv %q without holding monitor %q", c.name, m.name))
	}
	t.Compute(m.opt.NotifyCost)
	if m.opt.HoareSignal {
		if max > 1 {
			panic(fmt.Sprintf("monitor: BROADCAST on cv %q is not a Hoare primitive", c.name))
		}
		return c.signalHoare(t)
	}
	woke := 0
	for woke < max {
		wtr := c.pop()
		if wtr == nil {
			break
		}
		wtr.notified = true
		woke++
		if m.opt.DeferNotifyReschedule {
			m.deferred = append(m.deferred, wtr.t)
		} else {
			m.w.WakeIfBlocked(wtr.t, t)
		}
	}
	return woke
}

// signalHoare implements Hoare's original semantics: the monitor is
// handed directly to the woken waiter, so the condition the signaller
// just established still holds when WAIT returns; the signaller waits on
// the urgent queue and resumes holding the monitor once the waiter
// releases it (by exiting or waiting again).
func (c *Cond) signalHoare(t *sim.Thread) int {
	m := c.m
	wtr := c.pop()
	if wtr == nil {
		return 0
	}
	wtr.notified = true
	m.acquire(wtr.t)
	m.w.WakeIfBlocked(wtr.t, t)
	// The signaller implicitly releases the monitor to the waiter and
	// reacquires it from the urgent queue on resumption; trace both so
	// enter/exit events pair up.
	m.w.Trace().Record(trace.Event{Time: m.w.Now(), Kind: trace.KindMLExit, Thread: t.ID(), Arg: m.id})
	m.urgent = append(m.urgent, t)
	t.Block(sim.BlockMutex)
	if m.holder != t {
		panic(fmt.Sprintf("monitor: Hoare signaller %s resumed without monitor %q", t.Name(), m.name))
	}
	m.w.Trace().Record(trace.Event{Time: m.w.Now(), Kind: trace.KindMLEnter, Thread: t.ID(), Arg: m.id, Aux: 1})
	return 1
}

// pop removes and returns the oldest live waiter, or nil.
func (c *Cond) pop() *waiter {
	for len(c.queue) > 0 {
		w := c.queue[0]
		c.queue = c.queue[1:]
		if !w.gone && !w.notified {
			return w
		}
	}
	return nil
}

// compact drops waiters that marked themselves gone.
func (c *Cond) compact() {
	live := c.queue[:0]
	for _, w := range c.queue {
		if !w.gone {
			live = append(live, w)
		}
	}
	c.queue = live
}
