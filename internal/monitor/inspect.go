package monitor

import "repro/internal/sim"

// Oracle accessors: read-only snapshots of a monitor's internal queues,
// exposed so schedule-exploration oracles (package explore) can check
// invariants — exclusion, FIFO handoff, deadlock-set soundness — against
// the live structures rather than re-deriving everything from the trace.
// All are driver-context snapshots; none mutate the monitor.

// QueuedEntrants returns the threads blocked waiting for the mutex, in
// handoff (FIFO) order. Hoare signallers parked on the urgent queue are
// not included; see UrgentWaiters.
func (m *Monitor) QueuedEntrants() []*sim.Thread {
	out := make([]*sim.Thread, len(m.queue))
	copy(out, m.queue)
	return out
}

// UrgentWaiters returns the Hoare signallers waiting to get the monitor
// back, most-recent first (the order releaseLocked will serve them).
func (m *Monitor) UrgentWaiters() []*sim.Thread {
	out := make([]*sim.Thread, 0, len(m.urgent))
	for i := len(m.urgent) - 1; i >= 0; i-- {
		out = append(out, m.urgent[i])
	}
	return out
}

// WaitingThreads returns the threads currently waiting on the condition
// variable, oldest first. Waiters that timed out or were already notified
// are excluded — these are the threads a NOTIFY could still wake.
func (c *Cond) WaitingThreads() []*sim.Thread {
	var out []*sim.Thread
	for _, w := range c.queue {
		if !w.gone && !w.notified {
			out = append(out, w.t)
		}
	}
	return out
}
