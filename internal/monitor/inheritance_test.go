package monitor

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/vclock"
)

// TestPriorityInheritanceResolvesInversion is the §7 future-work
// experiment at unit scale: with inheritance the high-priority waiter's
// delay is bounded by the critical section, not by the middle-priority
// hog.
func TestPriorityInheritanceResolvesInversion(t *testing.T) {
	run := func(inherit bool) vclock.Duration {
		w := sim.NewWorld(sim.Config{SwitchCost: -1, TimeoutGranularity: 1})
		defer w.Shutdown()
		opt := Options{LockCost: -1, NotifyCost: -1, WaitCost: -1, PriorityInheritance: inherit}
		m := NewWithOptions(w, "mu", opt)
		var acquired vclock.Time
		w.Spawn("lo", sim.PriorityLow, func(th *sim.Thread) any {
			m.Enter(th)
			th.Compute(20 * vclock.Millisecond)
			m.Exit(th)
			return nil
		})
		start := vclock.Time(vclock.Millisecond)
		w.At(start, func() {
			w.Spawn("hog", sim.PriorityNormal, func(th *sim.Thread) any {
				th.Compute(500 * vclock.Millisecond)
				return nil
			})
			w.Spawn("hi", sim.PriorityHigh, func(th *sim.Thread) any {
				m.Enter(th)
				acquired = th.Now()
				m.Exit(th)
				return nil
			})
		})
		w.Run(vclock.Time(2 * vclock.Second))
		if acquired == 0 {
			return 2 * vclock.Second
		}
		return acquired.Sub(start)
	}
	plain := run(false)
	inherited := run(true)
	if plain < 400*vclock.Millisecond {
		t.Errorf("without inheritance the inversion should last past the hog: %v", plain)
	}
	if inherited > 25*vclock.Millisecond {
		t.Errorf("with inheritance the delay should be ~the critical section (19ms): %v", inherited)
	}
}

// TestInheritanceRestoresPriority verifies the holder's own priority
// comes back at release.
func TestInheritanceRestoresPriority(t *testing.T) {
	w := sim.NewWorld(sim.Config{SwitchCost: -1, TimeoutGranularity: 1})
	defer w.Shutdown()
	opt := Options{LockCost: -1, NotifyCost: -1, WaitCost: -1, PriorityInheritance: true}
	m := NewWithOptions(w, "mu", opt)
	var duringBoost, afterRelease sim.Priority
	lo := w.Spawn("lo", sim.PriorityLow, func(th *sim.Thread) any {
		m.Enter(th)
		th.Compute(10 * vclock.Millisecond)
		m.Exit(th)
		afterRelease = th.Priority()
		return nil
	})
	w.At(vclock.Time(vclock.Millisecond), func() {
		w.Spawn("hi", sim.PriorityHigh, func(th *sim.Thread) any {
			m.Enter(th)
			m.Exit(th)
			return nil
		})
	})
	w.At(vclock.Time(5*vclock.Millisecond), func() {
		duringBoost = lo.Priority()
	})
	if out := w.Run(vclock.Time(vclock.Second)); out != sim.OutcomeQuiescent {
		t.Fatalf("outcome = %v", out)
	}
	if duringBoost != sim.PriorityHigh {
		t.Errorf("holder priority during boost = %d, want %d", duringBoost, sim.PriorityHigh)
	}
	if afterRelease != sim.PriorityLow {
		t.Errorf("holder priority after release = %d, want %d", afterRelease, sim.PriorityLow)
	}
}

// TestInheritanceAcrossHandoff: when the mutex is handed to a queued
// waiter, the new holder's own base is snapshotted (no stale boost).
func TestInheritanceAcrossHandoff(t *testing.T) {
	w := sim.NewWorld(sim.Config{SwitchCost: -1, TimeoutGranularity: 1})
	defer w.Shutdown()
	opt := Options{LockCost: -1, NotifyCost: -1, WaitCost: -1, PriorityInheritance: true}
	m := NewWithOptions(w, "mu", opt)
	var prios []sim.Priority
	mk := func(name string, pri sim.Priority, hold vclock.Duration, delay vclock.Duration) {
		w.At(vclock.Time(delay), func() {
			w.Spawn(name, pri, func(th *sim.Thread) any {
				m.Enter(th)
				th.Compute(hold)
				m.Exit(th)
				prios = append(prios, th.Priority())
				return nil
			})
		})
	}
	mk("a-low", sim.PriorityLow, 10*vclock.Millisecond, 0)
	mk("b-high", sim.PriorityHigh, vclock.Millisecond, vclock.Millisecond)
	mk("c-normal", sim.PriorityNormal, vclock.Millisecond, 2*vclock.Millisecond)
	if out := w.Run(vclock.Time(vclock.Second)); out != sim.OutcomeQuiescent {
		t.Fatalf("outcome = %v", out)
	}
	want := []sim.Priority{sim.PriorityLow, sim.PriorityHigh, sim.PriorityNormal}
	for i, p := range prios {
		if p != want[i] {
			t.Errorf("thread %d final priority = %d, want %d (no stale boost)", i, p, want[i])
		}
	}
}

// TestInheritanceWithCVReacquire exposes a genuine interplay between the
// §6.1 "spurious lock conflict" and priority inheritance: the very
// conflict the paper's NOTIFY fix eliminates — a woken high-priority
// waiter blocking on the still-held mutex — is what lets inheritance
// donate priority to the low-priority notifier. With the naive NOTIFY the
// high thread enters within the notifier's hold time; the §6.1 deferral
// removes the donation channel and leaves the notifier starved behind a
// middle-priority hog (the condition itself is an "abstract resource...
// the thread implementation has little hope of automatically adjusting
// thread priority", §5.2).
func TestInheritanceWithCVReacquire(t *testing.T) {
	run := func(deferFix bool) vclock.Duration {
		w := sim.NewWorld(sim.Config{SwitchCost: -1, TimeoutGranularity: 1})
		defer w.Shutdown()
		opt := Options{LockCost: -1, NotifyCost: -1, WaitCost: -1,
			PriorityInheritance: true, DeferNotifyReschedule: deferFix}
		m := NewWithOptions(w, "mu", opt)
		cv := m.NewCond("cv")
		var hiEnteredAt vclock.Time
		// hi waits first; lo enters and notifies; a hog arrives while lo
		// still holds the monitor.
		w.Spawn("hi-waiter", sim.PriorityHigh, func(th *sim.Thread) any {
			m.Enter(th)
			cv.Wait(th)
			hiEnteredAt = th.Now()
			m.Exit(th)
			return nil
		})
		w.Spawn("lo-notifier", sim.PriorityLow, func(th *sim.Thread) any {
			m.Enter(th)
			cv.Notify(th)
			th.Compute(5 * vclock.Millisecond)
			m.Exit(th)
			return nil
		})
		w.At(vclock.Time(vclock.Millisecond), func() {
			w.Spawn("hog", sim.PriorityNormal, func(th *sim.Thread) any {
				th.Compute(300 * vclock.Millisecond)
				return nil
			})
		})
		w.Run(vclock.Time(2 * vclock.Second))
		return vclock.Duration(hiEnteredAt)
	}
	naive := run(false)
	deferred := run(true)
	if naive > 10*vclock.Millisecond {
		t.Errorf("naive NOTIFY + inheritance: hi entered at %v, want within the notifier's 5ms hold", naive)
	}
	if deferred < 250*vclock.Millisecond {
		t.Errorf("deferred NOTIFY removes the donation channel: hi entered at %v, want ~300ms (starved)", deferred)
	}
}
