package monitor_test

import (
	"fmt"

	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/vclock"
)

// The §2 Mesa idiom: WAIT in a WHILE loop, NOTIFY on state change.
func Example() {
	w := sim.NewWorld(sim.Config{SwitchCost: -1, TimeoutGranularity: 1})
	defer w.Shutdown()

	m := monitor.NewWithOptions(w, "mailbox", monitor.Options{LockCost: -1, NotifyCost: -1, WaitCost: -1})
	hasMail := m.NewCond("has-mail")
	var mail []string

	w.Spawn("reader", sim.PriorityNormal, func(t *sim.Thread) any {
		m.Enter(t)
		for len(mail) == 0 { // WHILE, never IF (§5.3)
			hasMail.Wait(t)
		}
		fmt.Printf("read %q at %s\n", mail[0], t.Now())
		m.Exit(t)
		return nil
	})
	w.Spawn("writer", sim.PriorityNormal, func(t *sim.Thread) any {
		t.Compute(25 * vclock.Millisecond)
		m.Enter(t)
		mail = append(mail, "hello")
		hasMail.Notify(t)
		m.Exit(t)
		return nil
	})
	w.Run(vclock.Time(vclock.Second))
	// Output:
	// read "hello" at 0.025000s
}

// A CV timeout rounds up to PCR's 50ms granularity — why the paper's
// systems wait in 50ms quanta.
func ExampleCond_Wait() {
	w := sim.NewWorld(sim.Config{SwitchCost: -1}) // default 50ms granularity
	defer w.Shutdown()
	m := monitor.NewWithOptions(w, "mu", monitor.Options{LockCost: -1, NotifyCost: -1, WaitCost: -1})
	cv := m.NewCondTimeout("cv", 10*vclock.Millisecond)

	w.Spawn("sleeper", sim.PriorityNormal, func(t *sim.Thread) any {
		m.Enter(t)
		timedOut := cv.Wait(t)
		fmt.Printf("timed out=%v at %s\n", timedOut, t.Now())
		m.Exit(t)
		return nil
	})
	w.Run(vclock.Time(vclock.Second))
	// Output:
	// timed out=true at 0.050000s
}
