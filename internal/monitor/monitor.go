// Package monitor implements Mesa-style monitors and condition variables
// on top of the sim thread kernel, following the model summarized in §2
// of "Using Threads in Interactive Systems: A Case Study": a monitor is a
// mutual-exclusion lock protecting a module's data; condition variables
// give explicit scheduling control; WAIT atomically releases the lock and
// may time out; NOTIFY has exactly-one-waiter-wakens semantics; BROADCAST
// wakes all waiters; and a woken waiter must compete for the mutex before
// re-entering — which is why "WAIT only in a loop" is the law (§5.3).
//
// Two of the paper's implementation issues are modeled as switchable
// options so their cost can be measured rather than assumed:
//
//   - DeferNotifyReschedule (§6.1): PCR's fix for spurious lock
//     conflicts. The notification itself is not deferred, but the
//     processor reschedule is, until the notifier exits the monitor, so
//     a higher-priority notifyee no longer wakes up only to block
//     immediately on the still-held mutex.
//
//   - Metalock donation (§6.2): each monitor's queue of waiting threads
//     is itself protected by a short-lived metalock; PCR donates cycles
//     from a thread blocked on the metalock to the thread holding it —
//     the one place PCR implements priority donation.
package monitor

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// Options tune a monitor's modeled costs and semantics. The zero value
// selects defaults; negative costs disable the charge.
type Options struct {
	// DeferNotifyReschedule enables the §6.1 fix: a NOTIFY'd waiter
	// becomes runnable only when the notifier exits the monitor.
	DeferNotifyReschedule bool

	// LockCost is CPU charged on each monitor entry (and each mutex
	// reacquisition after a WAIT). Default 1 µs.
	LockCost vclock.Duration

	// NotifyCost is CPU charged by NOTIFY and BROADCAST. Default 1 µs.
	NotifyCost vclock.Duration

	// WaitCost is CPU charged when a WAIT begins. Default 2 µs.
	WaitCost vclock.Duration

	// MetalockHold, when positive, models the per-monitor metalock: each
	// entry/exit/notify holds the metalock for this long, and other
	// threads touching the monitor meanwhile contend for it.
	MetalockHold vclock.Duration

	// MetalockDonation makes a thread blocked on the metalock donate its
	// cycles to the holder via a directed yield (the PCR behavior);
	// without it the blocked thread busy-waits at its own priority and
	// metalock priority inversion is possible.
	MetalockDonation bool

	// HoareSignal selects the semantics of "the monitors originally
	// described by Hoare" that §2 contrasts with Mesa: NOTIFY hands the
	// monitor directly to the woken waiter (so the waited-for condition
	// is guaranteed to hold when WAIT returns, and "IF NOT cond THEN
	// WAIT" is actually correct, §5.3), while the signaller waits on an
	// urgent queue that outranks ordinary entrants. BROADCAST is not a
	// Hoare primitive and panics under this option.
	HoareSignal bool

	// PriorityInheritance implements the technique the paper declined
	// ("we chose not to incur the implementation overhead of providing
	// priority inheritance from blocked threads to threads holding
	// locks") and called for as future work (§7): a thread blocking on
	// the mutex raises the holder to its own priority until the holder
	// releases the monitor. Direct (one-level) inheritance only; as the
	// paper notes, the analogous problem on CV conditions is beyond what
	// an implementation can automate.
	PriorityInheritance bool
}

func (o Options) defaults() Options {
	switch {
	case o.LockCost == 0:
		o.LockCost = 1 * vclock.Microsecond
	case o.LockCost < 0:
		o.LockCost = 0
	}
	switch {
	case o.NotifyCost == 0:
		o.NotifyCost = 1 * vclock.Microsecond
	case o.NotifyCost < 0:
		o.NotifyCost = 0
	}
	switch {
	case o.WaitCost == 0:
		o.WaitCost = 2 * vclock.Microsecond
	case o.WaitCost < 0:
		o.WaitCost = 0
	}
	return o
}

// Monitor is a Mesa monitor lock. Create with New; the zero value is not
// usable. Monitors are not reentrant — Mesa's were not — and re-entry by
// the holder panics, surfacing the bug instead of deadlocking silently.
type Monitor struct {
	w    *sim.World
	id   int64
	name string
	opt  Options

	holder *sim.Thread
	queue  []*sim.Thread // FIFO mutex waiters
	urgent []*sim.Thread // Hoare signallers awaiting the monitor back (LIFO)

	// Priority-inheritance bookkeeping: the holder's own priority at
	// acquisition, restored at release if a blocker boosted it.
	holderBase sim.Priority
	boosted    bool

	// deferred reschedules accumulated by NOTIFY under the §6.1 fix,
	// released at monitor exit.
	deferred []*sim.Thread

	// metalock state (only used when opt.MetalockHold > 0)
	metaHolder  *sim.Thread
	metaWaiters []*sim.Thread

	conds []*Cond
}

// New creates a monitor in w with default options.
func New(w *sim.World, name string) *Monitor {
	return NewWithOptions(w, name, Options{})
}

// NewWithOptions creates a monitor with explicit options.
func NewWithOptions(w *sim.World, name string, opt Options) *Monitor {
	m := &Monitor{w: w, id: w.AllocMonitorID(), name: name, opt: opt.defaults()}
	w.RegisterAuditor(m.auditReport)
	return m
}

// ID returns the monitor's world-unique identifier, as stamped on trace
// events (Table 3 counts the distinct IDs seen).
func (m *Monitor) ID() int64 { return m.id }

// Name returns the monitor's debug name.
func (m *Monitor) Name() string { return m.name }

// Holder returns the thread currently inside the monitor, or nil.
func (m *Monitor) Holder() *sim.Thread { return m.holder }

// Enter acquires the monitor for t, queueing FIFO behind other entrants
// if it is held. This is the operation the Mesa compiler inserted at the
// top of every monitored procedure.
func (m *Monitor) Enter(t *sim.Thread) {
	t.Compute(m.opt.LockCost)
	m.withMetalock(t, func() {})
	contended := int64(0)
	if m.holder != nil {
		if m.holder == t {
			panic(fmt.Sprintf("monitor: thread %s re-entered monitor %q", t.Name(), m.name))
		}
		contended = 1
		m.inherit(t)
		m.blockOnMutex(t)
		if m.holder != t {
			panic(fmt.Sprintf("monitor: %s woke from mutex queue of %q without ownership", t.Name(), m.name))
		}
	} else {
		m.acquire(t)
	}
	m.w.Trace().Record(trace.Event{Time: m.w.Now(), Kind: trace.KindMLEnter, Thread: t.ID(), Arg: m.id, Aux: contended})
}

// Exit releases the monitor. Deferred NOTIFY reschedules (the §6.1 fix)
// are released here, and the mutex is handed FIFO to the next entrant.
func (m *Monitor) Exit(t *sim.Thread) {
	if m.holder != t {
		panic(fmt.Sprintf("monitor: thread %s exited monitor %q it does not hold", t.Name(), m.name))
	}
	m.withMetalock(t, func() {})
	m.w.Trace().Record(trace.Event{Time: m.w.Now(), Kind: trace.KindMLExit, Thread: t.ID(), Arg: m.id})
	m.releaseLocked(t)
}

// blockOnMutex parks t on the monitor's FIFO mutex queue. If an injected
// fault (World.KillThread) unwinds the wait, t's registration is removed
// — or, when the mutex had already been handed to t by a release that
// raced the kill, ownership is passed on — so the monitor cannot be left
// held by a corpse. World.Shutdown's teardown unwind (t.Killed) skips
// the cleanup, preserving the historical teardown semantics.
func (m *Monitor) blockOnMutex(t *sim.Thread) {
	m.queue = append(m.queue, t)
	defer func() {
		if r := recover(); r != nil {
			if !t.Killed() {
				if m.holder == t {
					m.releaseLocked(t)
				} else {
					for i, x := range m.queue {
						if x == t {
							m.queue = append(m.queue[:i], m.queue[i+1:]...)
							break
						}
					}
				}
			}
			panic(r)
		}
	}()
	t.Block(sim.BlockMutex)
}

// acquire installs t as the holder and snapshots its priority for
// inheritance restoration.
func (m *Monitor) acquire(t *sim.Thread) {
	m.holder = t
	if m.opt.PriorityInheritance {
		m.holderBase = t.Priority()
		m.boosted = false
	}
}

// inherit raises the holder to the blocker's priority when inheritance
// is enabled.
func (m *Monitor) inherit(blocker *sim.Thread) {
	if !m.opt.PriorityInheritance || m.holder == nil {
		return
	}
	if blocker.Priority() > m.holder.Priority() {
		m.w.SetPriorityOf(m.holder, blocker.Priority())
		m.boosted = true
	}
}

// releaseLocked passes the mutex on and flushes deferred wakes. Caller
// must be the holder. Hoare signallers on the urgent queue outrank
// ordinary entrants.
func (m *Monitor) releaseLocked(t *sim.Thread) {
	if m.boosted {
		m.w.SetPriorityOf(t, m.holderBase)
		m.boosted = false
	}
	switch {
	case len(m.urgent) > 0:
		next := m.urgent[len(m.urgent)-1]
		m.urgent = m.urgent[:len(m.urgent)-1]
		m.acquire(next)
		m.w.WakeIfBlocked(next, t)
	case len(m.queue) > 0:
		next := m.queue[0]
		m.queue = m.queue[1:]
		m.acquire(next)
		m.w.WakeIfBlocked(next, t)
	default:
		m.holder = nil
	}
	if len(m.deferred) > 0 {
		pending := m.deferred
		m.deferred = nil
		for _, waiter := range pending {
			m.w.WakeIfBlocked(waiter, t)
		}
	}
}

// With runs fn with the monitor held, modeling a monitored procedure (the
// compiler-inserted lock/unlock pair).
func (m *Monitor) With(t *sim.Thread, fn func()) {
	m.Enter(t)
	defer m.Exit(t)
	fn()
}

// withMetalock models the short per-monitor metalock protecting the
// monitor's waiter queues, held across each entry and exit. With donation
// enabled (the PCR behavior) a contender whose holder was preempted
// donates its cycles to the holder via a directed yield; without it the
// contender blocks and a middle-priority CPU hog can sustain a priority
// inversion on a lock held for mere microseconds.
func (m *Monitor) withMetalock(t *sim.Thread, fn func()) {
	if m.opt.MetalockHold <= 0 {
		fn()
		return
	}
	for m.metaHolder != nil && m.metaHolder != t {
		holder := m.metaHolder
		switch {
		case m.opt.MetalockDonation && holder.State() == sim.StateRunnable:
			t.DirectedYieldFor(holder, m.opt.MetalockHold)
		case holder.State() == sim.StateRunning:
			// Holder is live on another CPU: spin for one hold period.
			t.Compute(m.opt.MetalockHold)
		default:
			m.metaWaiters = append(m.metaWaiters, t)
			t.Block(sim.BlockMutex)
		}
	}
	m.metaHolder = t
	t.Compute(m.opt.MetalockHold)
	fn()
	m.metaHolder = nil
	if len(m.metaWaiters) > 0 {
		pending := m.metaWaiters
		m.metaWaiters = nil
		for _, wt := range pending {
			m.w.WakeIfBlocked(wt, t)
		}
	}
}
