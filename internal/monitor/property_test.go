package monitor

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// TestMPSpuriousConflict reproduces Birrell's original multiprocessor
// form of the §6.1 problem: "the scheduler starts to run the notified
// thread on another processor while the notifying thread, still running
// on its processor, holds the associated monitor lock." The deferred
// reschedule prevents it here too.
func TestMPSpuriousConflict(t *testing.T) {
	run := func(deferFix bool) (contended int) {
		var buf trace.Buffer
		cfg := sim.Config{SwitchCost: -1, TimeoutGranularity: 1, Trace: &buf, CPUs: 2}
		w := sim.NewWorld(cfg)
		defer w.Shutdown()
		opt := fastOptions()
		opt.DeferNotifyReschedule = deferFix
		m := NewWithOptions(w, "mu", opt)
		cv := m.NewCond("cv")
		const rounds = 50
		items := 0
		w.Spawn("consumer", sim.PriorityNormal, func(th *sim.Thread) any {
			for got := 0; got < rounds; got++ {
				m.Enter(th)
				for items == 0 {
					cv.Wait(th)
				}
				items--
				m.Exit(th)
			}
			w.Stop()
			return nil
		})
		w.Spawn("producer", sim.PriorityNormal, func(th *sim.Thread) any {
			for {
				th.Compute(vclock.Millisecond)
				m.Enter(th)
				items++
				cv.Notify(th)
				th.Compute(100 * vclock.Microsecond) // still holding: the MP window
				m.Exit(th)
			}
		})
		w.Run(vclock.Time(vclock.Minute))
		for _, ev := range buf.Events {
			if ev.Kind == trace.KindMLEnter && ev.Aux == 1 {
				contended++
			}
		}
		return contended
	}
	naive := run(false)
	fixed := run(true)
	if naive < 40 {
		t.Errorf("naive NOTIFY on 2 CPUs: contended enters = %d, want ~50 (the notified thread starts on the other CPU and blocks)", naive)
	}
	if fixed != 0 {
		t.Errorf("deferred reschedule on 2 CPUs: contended enters = %d, want 0", fixed)
	}
}

// TestBroadcastNotifyEquivalence checks the paper's §2 claim: "under
// this ['WAIT only in a loop'] convention BROADCAST can be substituted
// for NOTIFY without affecting program correctness." A multi-producer,
// multi-consumer bounded buffer must deliver exactly the same multiset of
// items either way.
func TestBroadcastNotifyEquivalence(t *testing.T) {
	run := func(useBroadcast bool, seed int64) []int {
		w := sim.NewWorld(sim.Config{SwitchCost: -1, TimeoutGranularity: 1, Seed: seed})
		defer w.Shutdown()
		m := NewWithOptions(w, "buf", fastOptions())
		nonEmpty := m.NewCond("non-empty")
		nonFull := m.NewCond("non-full")
		signal := func(th *sim.Thread, cv *Cond) {
			if useBroadcast {
				cv.Broadcast(th)
			} else {
				cv.Notify(th)
			}
		}
		const cap = 3
		const total = 60
		var queue []int
		var got []int
		rng := rand.New(rand.NewSource(seed))
		for p := 0; p < 3; p++ {
			p := p
			w.Spawn("producer", sim.PriorityNormal, func(th *sim.Thread) any {
				for i := 0; i < total/3; i++ {
					th.Compute(vclock.Duration(1+rng.Intn(3)) * vclock.Millisecond)
					m.Enter(th)
					for len(queue) >= cap {
						nonFull.Wait(th)
					}
					queue = append(queue, p*1000+i)
					signal(th, nonEmpty)
					m.Exit(th)
				}
				return nil
			})
		}
		for c := 0; c < 2; c++ {
			w.Spawn("consumer", sim.PriorityNormal, func(th *sim.Thread) any {
				for {
					m.Enter(th)
					for len(queue) == 0 && len(got) < total {
						nonEmpty.Wait(th)
					}
					if len(got) >= total {
						// Wake any sibling stuck waiting and leave.
						nonEmpty.Broadcast(th)
						m.Exit(th)
						return nil
					}
					got = append(got, queue[0])
					queue = queue[1:]
					signal(th, nonFull)
					th.Compute(vclock.Duration(1+rng.Intn(2)) * vclock.Millisecond)
					m.Exit(th)
				}
			})
		}
		w.Run(vclock.Time(vclock.Minute))
		return got
	}

	for seed := int64(1); seed <= 5; seed++ {
		n := run(false, seed)
		bc := run(true, seed)
		if len(n) != 60 || len(bc) != 60 {
			t.Fatalf("seed %d: delivered %d/%d items, want 60/60", seed, len(n), len(bc))
		}
		// Same multiset (scheduling order may differ).
		count := func(xs []int) map[int]int {
			m := map[int]int{}
			for _, x := range xs {
				m[x]++
			}
			return m
		}
		cn, cb := count(n), count(bc)
		for k, v := range cn {
			if cb[k] != v {
				t.Fatalf("seed %d: item %d delivered %d times with NOTIFY but %d with BROADCAST", seed, k, v, cb[k])
			}
		}
	}
}

// Property: under random monitor traffic, mutual exclusion always holds
// and every Enter is eventually paired with an Exit (checked by the
// monitor's own holder assertions plus an in-section counter).
func TestMonitorExclusionProperty(t *testing.T) {
	f := func(seed int64, nThreads, nOps uint8) bool {
		threads := 2 + int(nThreads%5)
		ops := 5 + int(nOps%40)
		w := sim.NewWorld(sim.Config{SwitchCost: -1, TimeoutGranularity: 1, Seed: seed})
		defer w.Shutdown()
		m := NewWithOptions(w, "mu", fastOptions())
		rng := rand.New(rand.NewSource(seed))
		inside := 0
		violated := false
		for i := 0; i < threads; i++ {
			pri := sim.Priority(1 + rng.Intn(7))
			hold := vclock.Duration(rng.Intn(2000)) * vclock.Microsecond
			gap := vclock.Duration(rng.Intn(2000)) * vclock.Microsecond
			w.Spawn("t", pri, func(th *sim.Thread) any {
				for j := 0; j < ops; j++ {
					m.Enter(th)
					inside++
					if inside != 1 {
						violated = true
					}
					th.Compute(hold)
					inside--
					m.Exit(th)
					th.Compute(gap)
				}
				return nil
			})
		}
		out := w.Run(vclock.Time(vclock.Minute))
		return !violated && out == sim.OutcomeQuiescent
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: CV wait bookkeeping conserves waiters — after any mix of
// notifies, broadcasts and timeouts, the number of Wait returns equals
// the number of Wait calls, and the CV queue ends empty.
func TestCVConservationProperty(t *testing.T) {
	f := func(seed int64, nWaiters uint8) bool {
		waiters := 1 + int(nWaiters%6)
		w := sim.NewWorld(sim.Config{SwitchCost: -1, TimeoutGranularity: vclock.Millisecond, Seed: seed})
		defer w.Shutdown()
		m := NewWithOptions(w, "mu", fastOptions())
		cv := m.NewCondTimeout("cv", 5*vclock.Millisecond)
		started, finished := 0, 0
		for i := 0; i < waiters; i++ {
			w.Spawn("waiter", sim.PriorityNormal, func(th *sim.Thread) any {
				for j := 0; j < 10; j++ {
					m.Enter(th)
					started++
					cv.Wait(th)
					finished++
					m.Exit(th)
				}
				return nil
			})
		}
		rng := rand.New(rand.NewSource(seed))
		w.Spawn("signaller", sim.PriorityNormal, func(th *sim.Thread) any {
			for j := 0; j < 30; j++ {
				th.Compute(vclock.Duration(1+rng.Intn(3)) * vclock.Millisecond)
				m.Enter(th)
				if rng.Intn(2) == 0 {
					cv.Notify(th)
				} else {
					cv.Broadcast(th)
				}
				m.Exit(th)
			}
			return nil
		})
		w.Run(vclock.Time(vclock.Minute))
		return started == finished && started == waiters*10 && cv.Waiters() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
