package monitor

import (
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/vclock"
)

func hoareOptions() Options {
	o := fastOptions()
	o.HoareSignal = true
	return o
}

// TestHoareSignalGuaranteesCondition: the §5.3 IF-wait, correct under
// Hoare monitors. The exact thief scenario that breaks Mesa IF-waits
// (TestMesaSemanticsRequireLoop) cannot steal the condition here, because
// the monitor is handed directly from the notifier to the waiter.
func TestHoareSignalGuaranteesCondition(t *testing.T) {
	w := testWorld(t, cfgFast())
	m := NewWithOptions(w, "queue", hoareOptions())
	nonEmpty := m.NewCond("non-empty")
	var queue []int

	var ifWaiterOK bool
	w.Spawn("if-waiter", sim.PriorityLow, func(th *sim.Thread) any {
		m.Enter(th)
		defer m.Exit(th)
		if len(queue) == 0 { // IF, not WHILE: fine under Hoare
			nonEmpty.Wait(th)
		}
		if len(queue) == 0 {
			return nil
		}
		queue = queue[1:]
		ifWaiterOK = true
		return nil
	})
	w.At(vclock.Time(5*vclock.Millisecond), func() {
		w.Spawn("producer", sim.PriorityNormal, func(th *sim.Thread) any {
			m.Enter(th)
			queue = append(queue, 1)
			nonEmpty.Notify(th) // hands the monitor straight to the waiter
			th.Compute(2 * vclock.Millisecond)
			m.Exit(th)
			return nil
		})
	})
	w.At(vclock.Time(6*vclock.Millisecond), func() {
		w.Spawn("thief", sim.PriorityHigh, func(th *sim.Thread) any {
			m.Enter(th)
			if len(queue) > 0 {
				queue = queue[1:]
			}
			m.Exit(th)
			return nil
		})
	})
	if out := w.Run(vclock.Time(vclock.Second)); out != sim.OutcomeQuiescent {
		t.Fatalf("outcome = %v", out)
	}
	if !ifWaiterOK {
		t.Fatal("under Hoare semantics the IF-waiter must receive the condition intact")
	}
}

// TestHoareSignallerResumesWithMonitor: after the waiter releases, the
// signaller gets the monitor back (urgent queue beats ordinary entrants).
func TestHoareSignallerResumesWithMonitor(t *testing.T) {
	w := testWorld(t, cfgFast())
	m := NewWithOptions(w, "mu", hoareOptions())
	cv := m.NewCond("cv")
	var order []string
	w.Spawn("waiter", sim.PriorityNormal, func(th *sim.Thread) any {
		m.Enter(th)
		cv.Wait(th)
		order = append(order, "waiter-resumed")
		m.Exit(th)
		return nil
	})
	// Both arrive at 1ms: the signaller (spawned first) notifies and
	// parks on the urgent queue; the entrant then finds the monitor
	// already handed to the waiter and queues behind it.
	w.At(vclock.Time(vclock.Millisecond), func() {
		w.Spawn("signaller", sim.PriorityNormal, func(th *sim.Thread) any {
			m.Enter(th)
			cv.Notify(th)
			// Hoare: we resume only after the waiter released the
			// monitor, and before any ordinary entrant queued meanwhile.
			order = append(order, "signaller-back")
			th.Compute(5 * vclock.Millisecond)
			m.Exit(th)
			return nil
		})
		w.Spawn("entrant", sim.PriorityNormal, func(th *sim.Thread) any {
			m.Enter(th)
			order = append(order, "entrant")
			m.Exit(th)
			return nil
		})
	})
	if out := w.Run(vclock.Time(vclock.Second)); out != sim.OutcomeQuiescent {
		t.Fatalf("outcome = %v", out)
	}
	want := []string{"waiter-resumed", "signaller-back", "entrant"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v (urgent queue outranks entrants)", order, want)
	}
}

// TestHoareNotifyNoWaiter: signalling an empty CV is a no-op that keeps
// the monitor.
func TestHoareNotifyNoWaiter(t *testing.T) {
	w := testWorld(t, cfgFast())
	m := NewWithOptions(w, "mu", hoareOptions())
	cv := m.NewCond("cv")
	done := false
	w.Spawn("t", sim.PriorityNormal, func(th *sim.Thread) any {
		m.Enter(th)
		cv.Notify(th)
		if m.Holder() != th {
			t.Error("lost the monitor on an unheard notify")
		}
		m.Exit(th)
		done = true
		return nil
	})
	w.Run(vclock.Time(vclock.Second))
	if !done {
		t.Fatal("thread did not finish")
	}
}

// TestHoareBroadcastPanics: BROADCAST is not a Hoare primitive.
func TestHoareBroadcastPanics(t *testing.T) {
	w := testWorld(t, cfgFast())
	m := NewWithOptions(w, "mu", hoareOptions())
	cv := m.NewCond("cv")
	th := w.Spawn("t", sim.PriorityNormal, func(th *sim.Thread) any {
		m.Enter(th)
		cv.Broadcast(th)
		m.Exit(th)
		return nil
	})
	w.Run(vclock.Time(vclock.Second))
	if th.Err() == nil {
		t.Fatal("broadcast under Hoare semantics should panic")
	}
}

// TestHoareWaitTimeout: a timed-out Hoare waiter reacquires normally.
func TestHoareWaitTimeout(t *testing.T) {
	cfg := sim.Config{SwitchCost: -1, TimeoutGranularity: 50 * vclock.Millisecond}
	w := testWorld(t, cfg)
	m := NewWithOptions(w, "mu", hoareOptions())
	cv := m.NewCondTimeout("cv", 20*vclock.Millisecond)
	var timedOut bool
	w.Spawn("waiter", sim.PriorityNormal, func(th *sim.Thread) any {
		m.Enter(th)
		timedOut = cv.Wait(th)
		m.Exit(th)
		return nil
	})
	if out := w.Run(vclock.Time(vclock.Second)); out != sim.OutcomeQuiescent {
		t.Fatalf("outcome = %v", out)
	}
	if !timedOut {
		t.Fatal("expected timeout")
	}
}

// TestHoareChain: a chain of signals (waiter signals the next waiter
// while holding the handed-over monitor) preserves exclusion and order.
func TestHoareChain(t *testing.T) {
	w := testWorld(t, cfgFast())
	m := NewWithOptions(w, "mu", hoareOptions())
	cv := m.NewCond("cv")
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		w.Spawn("waiter", sim.PriorityNormal, func(th *sim.Thread) any {
			th.Compute(vclock.Duration(i+1) * vclock.Millisecond) // stagger wait order
			m.Enter(th)
			cv.Wait(th)
			order = append(order, i)
			cv.Notify(th) // pass the baton
			m.Exit(th)
			return nil
		})
	}
	w.Spawn("starter", sim.PriorityNormal, func(th *sim.Thread) any {
		th.Compute(10 * vclock.Millisecond)
		m.Enter(th)
		cv.Notify(th)
		m.Exit(th)
		return nil
	})
	if out := w.Run(vclock.Time(vclock.Second)); out != sim.OutcomeQuiescent {
		t.Fatalf("outcome = %v", out)
	}
	if !reflect.DeepEqual(order, []int{0, 1, 2}) {
		t.Fatalf("chain order = %v, want FIFO [0 1 2]", order)
	}
}

// TestHoareExclusionProperty: mutual exclusion holds under random
// monitor traffic with Hoare signalling — including across the direct
// monitor handoffs that make Hoare semantics tricky.
func TestHoareExclusionProperty(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		w := sim.NewWorld(sim.Config{SwitchCost: -1, TimeoutGranularity: 1, Seed: seed})
		m := NewWithOptions(w, "mu", hoareOptions())
		cv := m.NewCondTimeout("cv", 3*vclock.Millisecond)
		inside, violated := 0, false
		section := func(th *sim.Thread, d vclock.Duration) {
			inside++
			if inside != 1 {
				violated = true
			}
			th.Compute(d)
			inside--
		}
		rng := w.Rand()
		for i := 0; i < 4; i++ {
			hold := vclock.Duration(1+rng.Intn(1500)) * vclock.Microsecond
			gap := vclock.Duration(rng.Intn(1500)) * vclock.Microsecond
			w.Spawn("worker", sim.Priority(1+rng.Intn(7)), func(th *sim.Thread) any {
				for j := 0; j < 15; j++ {
					m.Enter(th)
					section(th, hold)
					switch j % 3 {
					case 0:
						cv.Notify(th) // may hand the monitor over directly
						section(th, hold)
					case 1:
						cv.Wait(th) // timeout or Hoare handoff back in
						section(th, hold)
					}
					m.Exit(th)
					th.Compute(gap)
				}
				return nil
			})
		}
		out := w.Run(vclock.Time(vclock.Minute))
		w.Shutdown()
		if violated {
			t.Fatalf("seed %d: mutual exclusion violated under Hoare signalling", seed)
		}
		if out != sim.OutcomeQuiescent {
			t.Fatalf("seed %d: outcome = %v", seed, out)
		}
	}
}
