package monitor

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/vclock"
)

// TestAuditFlagsMaskedMissingNotify builds the §5.3 bug — a consumer kept
// alive only by its CV timeout — and checks the audit finds exactly that
// CV and not the healthy one next to it.
func TestAuditFlagsMaskedMissingNotify(t *testing.T) {
	w := testWorld(t, cfgFast())
	m := NewWithOptions(w, "queues", fastOptions())
	buggy := m.NewCondTimeout("buggy", 10*vclock.Millisecond)
	healthy := m.NewCondTimeout("healthy", 10*vclock.Millisecond)
	var itemsA, itemsB int

	consume := func(cv *Cond, items *int) func(*sim.Thread) any {
		return func(th *sim.Thread) any {
			for got := 0; got < 10; {
				m.Enter(th)
				for *items == 0 {
					cv.Wait(th)
				}
				*items--
				got++
				m.Exit(th)
			}
			return nil
		}
	}
	w.Spawn("consumer-buggy", sim.PriorityNormal, consume(buggy, &itemsA))
	w.Spawn("consumer-healthy", sim.PriorityNormal, consume(healthy, &itemsB))
	w.Spawn("producer", sim.PriorityNormal, func(th *sim.Thread) any {
		for i := 0; i < 10; i++ {
			th.BlockIO(3 * vclock.Millisecond) // blocks: consumers get the CPU
			m.Enter(th)
			itemsA++ // forgot the NOTIFY: buggy's waiters limp on timeouts
			itemsB++
			healthy.Notify(th)
			m.Exit(th)
		}
		return nil
	})
	if out := w.Run(vclock.Time(5 * vclock.Second)); out != sim.OutcomeQuiescent {
		t.Fatalf("outcome = %v", out)
	}

	if !buggy.Suspicious(3) {
		t.Errorf("buggy CV not flagged: %+v", buggy.Stats())
	}
	if healthy.Suspicious(3) {
		t.Errorf("healthy CV wrongly flagged: %+v", healthy.Stats())
	}
	found := AuditCVs(3, m)
	if len(found) != 1 || found[0] != buggy {
		t.Fatalf("audit = %v", found)
	}
	// Counter sanity.
	bs := buggy.Stats()
	if bs.Waits == 0 || bs.Timeouts != bs.Waits || bs.Notifies != 0 {
		t.Errorf("buggy stats = %+v", bs)
	}
	hs := healthy.Stats()
	if hs.Notifies != 10 {
		t.Errorf("healthy notifies = %d, want 10", hs.Notifies)
	}
	if len(m.Conds()) != 2 {
		t.Errorf("Conds = %d", len(m.Conds()))
	}
}

// TestAuditCVsOrdering pins the findings order harnesses rely on for
// stable reports: monitors in argument order, and within a monitor its
// CVs in creation order — never alphabetical or map order.
func TestAuditCVsOrdering(t *testing.T) {
	w := testWorld(t, cfgFast())
	m1 := NewWithOptions(w, "m1", fastOptions())
	m2 := NewWithOptions(w, "m2", fastOptions())
	// Creation order deliberately disagrees with name order.
	zeta := m1.NewCondTimeout("zeta", vclock.Millisecond)
	alpha := m1.NewCondTimeout("alpha", vclock.Millisecond)
	mid := m2.NewCondTimeout("mid", vclock.Millisecond)
	for _, cv := range []*Cond{zeta, alpha, mid} {
		m := m1
		if cv == mid {
			m = m2
		}
		w.Spawn("waiter", sim.PriorityNormal, func(th *sim.Thread) any {
			m.Enter(th)
			cv.Wait(th) // times out; no NOTIFY exists anywhere
			m.Exit(th)
			return nil
		})
	}
	w.Run(vclock.Time(vclock.Second))

	got := AuditCVs(1, m2, m1)
	want := []*Cond{mid, zeta, alpha}
	if len(got) != len(want) {
		t.Fatalf("audit found %d CVs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("finding %d is %q, want %q (argument order then creation order)",
				i, got[i].name, want[i].name)
		}
	}
	// Swapping the argument order must swap the findings.
	if rev := AuditCVs(1, m1, m2); rev[0] != zeta || rev[2] != mid {
		t.Errorf("reversed arguments gave %q,%q,%q", rev[0].name, rev[1].name, rev[2].name)
	}
}

func TestAuditMinWaitsGuard(t *testing.T) {
	w := testWorld(t, cfgFast())
	m := NewWithOptions(w, "mu", fastOptions())
	cv := m.NewCondTimeout("cv", vclock.Millisecond)
	w.Spawn("waiter", sim.PriorityNormal, func(th *sim.Thread) any {
		m.Enter(th)
		cv.Wait(th) // a single timed-out wait: below the noise floor
		m.Exit(th)
		return nil
	})
	w.Run(vclock.Time(vclock.Second))
	if cv.Suspicious(3) {
		t.Error("one wait should not trip a minWaits=3 audit")
	}
	if !cv.Suspicious(1) {
		t.Error("minWaits=1 should trip")
	}
}
