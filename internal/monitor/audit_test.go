package monitor

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/vclock"
)

// TestAuditFlagsMaskedMissingNotify builds the §5.3 bug — a consumer kept
// alive only by its CV timeout — and checks the audit finds exactly that
// CV and not the healthy one next to it.
func TestAuditFlagsMaskedMissingNotify(t *testing.T) {
	w := testWorld(t, cfgFast())
	m := NewWithOptions(w, "queues", fastOptions())
	buggy := m.NewCondTimeout("buggy", 10*vclock.Millisecond)
	healthy := m.NewCondTimeout("healthy", 10*vclock.Millisecond)
	var itemsA, itemsB int

	consume := func(cv *Cond, items *int) func(*sim.Thread) any {
		return func(th *sim.Thread) any {
			for got := 0; got < 10; {
				m.Enter(th)
				for *items == 0 {
					cv.Wait(th)
				}
				*items--
				got++
				m.Exit(th)
			}
			return nil
		}
	}
	w.Spawn("consumer-buggy", sim.PriorityNormal, consume(buggy, &itemsA))
	w.Spawn("consumer-healthy", sim.PriorityNormal, consume(healthy, &itemsB))
	w.Spawn("producer", sim.PriorityNormal, func(th *sim.Thread) any {
		for i := 0; i < 10; i++ {
			th.BlockIO(3 * vclock.Millisecond) // blocks: consumers get the CPU
			m.Enter(th)
			itemsA++ // forgot the NOTIFY: buggy's waiters limp on timeouts
			itemsB++
			healthy.Notify(th)
			m.Exit(th)
		}
		return nil
	})
	if out := w.Run(vclock.Time(5 * vclock.Second)); out != sim.OutcomeQuiescent {
		t.Fatalf("outcome = %v", out)
	}

	if !buggy.Suspicious(3) {
		t.Errorf("buggy CV not flagged: %+v", buggy.Stats())
	}
	if healthy.Suspicious(3) {
		t.Errorf("healthy CV wrongly flagged: %+v", healthy.Stats())
	}
	found := AuditCVs(3, m)
	if len(found) != 1 || found[0] != buggy {
		t.Fatalf("audit = %v", found)
	}
	// Counter sanity.
	bs := buggy.Stats()
	if bs.Waits == 0 || bs.Timeouts != bs.Waits || bs.Notifies != 0 {
		t.Errorf("buggy stats = %+v", bs)
	}
	hs := healthy.Stats()
	if hs.Notifies != 10 {
		t.Errorf("healthy notifies = %d, want 10", hs.Notifies)
	}
	if len(m.Conds()) != 2 {
		t.Errorf("Conds = %d", len(m.Conds()))
	}
}

func TestAuditMinWaitsGuard(t *testing.T) {
	w := testWorld(t, cfgFast())
	m := NewWithOptions(w, "mu", fastOptions())
	cv := m.NewCondTimeout("cv", vclock.Millisecond)
	w.Spawn("waiter", sim.PriorityNormal, func(th *sim.Thread) any {
		m.Enter(th)
		cv.Wait(th) // a single timed-out wait: below the noise floor
		m.Exit(th)
		return nil
	})
	w.Run(vclock.Time(vclock.Second))
	if cv.Suspicious(3) {
		t.Error("one wait should not trip a minWaits=3 audit")
	}
	if !cv.Suspicious(1) {
		t.Error("minWaits=1 should trip")
	}
}
