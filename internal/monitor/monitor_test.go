package monitor

import (
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vclock"
)

func testWorld(t *testing.T, cfg sim.Config) *sim.World {
	t.Helper()
	w := sim.NewWorld(cfg)
	t.Cleanup(w.Shutdown)
	return w
}

// fastOptions disables modeled op costs for tests that assert timing.
func fastOptions() Options {
	return Options{LockCost: -1, NotifyCost: -1, WaitCost: -1}
}

func cfgFast() sim.Config {
	return sim.Config{SwitchCost: -1, TimeoutGranularity: 1}
}

func TestMutualExclusion(t *testing.T) {
	w := testWorld(t, cfgFast())
	m := NewWithOptions(w, "mu", fastOptions())
	inside := 0
	maxInside := 0
	for i := 0; i < 5; i++ {
		w.Spawn("worker", sim.PriorityNormal, func(th *sim.Thread) any {
			for j := 0; j < 10; j++ {
				m.Enter(th)
				inside++
				if inside > maxInside {
					maxInside = inside
				}
				th.Compute(vclock.Millisecond) // invite preemption inside
				inside--
				m.Exit(th)
				th.Compute(100 * vclock.Microsecond)
			}
			return nil
		})
	}
	if out := w.Run(vclock.Time(10 * vclock.Second)); out != sim.OutcomeQuiescent {
		t.Fatalf("outcome = %v", out)
	}
	if maxInside != 1 {
		t.Fatalf("max threads inside monitor = %d, want 1", maxInside)
	}
}

func TestFIFOHandoff(t *testing.T) {
	w := testWorld(t, cfgFast())
	m := NewWithOptions(w, "mu", fastOptions())
	var order []string
	w.Spawn("holder", sim.PriorityNormal, func(th *sim.Thread) any {
		m.Enter(th)
		th.Compute(10 * vclock.Millisecond)
		m.Exit(th)
		return nil
	})
	for _, name := range []string{"a", "b", "c"} {
		name := name
		w.Spawn(name, sim.PriorityNormal, func(th *sim.Thread) any {
			th.Compute(vclock.Millisecond) // let holder grab it first
			m.Enter(th)
			order = append(order, name)
			m.Exit(th)
			return nil
		})
	}
	w.Run(vclock.Time(vclock.Second))
	if !reflect.DeepEqual(order, []string{"a", "b", "c"}) {
		t.Fatalf("handoff order = %v, want FIFO", order)
	}
}

func TestReentryPanics(t *testing.T) {
	w := testWorld(t, cfgFast())
	m := NewWithOptions(w, "mu", fastOptions())
	var err error
	th := w.Spawn("t", sim.PriorityNormal, func(th *sim.Thread) any {
		m.Enter(th)
		m.Enter(th) // Mesa monitors are not reentrant
		return nil
	})
	w.Run(vclock.Time(vclock.Second))
	err = th.Err()
	if err == nil {
		t.Fatal("reentry did not panic")
	}
}

func TestExitWithoutHoldPanics(t *testing.T) {
	w := testWorld(t, cfgFast())
	m := NewWithOptions(w, "mu", fastOptions())
	th := w.Spawn("t", sim.PriorityNormal, func(th *sim.Thread) any {
		m.Exit(th)
		return nil
	})
	w.Run(vclock.Time(vclock.Second))
	if th.Err() == nil {
		t.Fatal("exit without hold did not panic")
	}
}

func TestWaitRequiresMonitor(t *testing.T) {
	w := testWorld(t, cfgFast())
	m := NewWithOptions(w, "mu", fastOptions())
	cv := m.NewCond("cv")
	th := w.Spawn("t", sim.PriorityNormal, func(th *sim.Thread) any {
		cv.Wait(th) // compiler-enforced rule in Mesa: CV ops only with lock held
		return nil
	})
	w.Run(vclock.Time(vclock.Second))
	if th.Err() == nil {
		t.Fatal("WAIT without monitor did not panic")
	}
}

func TestProducerConsumer(t *testing.T) {
	w := testWorld(t, cfgFast())
	m := NewWithOptions(w, "queue", fastOptions())
	nonEmpty := m.NewCond("non-empty")
	var queue []int
	var got []int
	w.Spawn("consumer", sim.PriorityNormal, func(th *sim.Thread) any {
		m.Enter(th)
		for len(got) < 10 {
			for len(queue) == 0 {
				nonEmpty.Wait(th)
			}
			got = append(got, queue[0])
			queue = queue[1:]
		}
		m.Exit(th)
		return nil
	})
	w.Spawn("producer", sim.PriorityNormal, func(th *sim.Thread) any {
		for i := 0; i < 10; i++ {
			th.Compute(vclock.Millisecond)
			m.Enter(th)
			queue = append(queue, i)
			nonEmpty.Notify(th)
			m.Exit(th)
		}
		return nil
	})
	if out := w.Run(vclock.Time(vclock.Second)); out != sim.OutcomeQuiescent {
		t.Fatalf("outcome = %v", out)
	}
	want := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("consumed %v", got)
	}
}

func TestNotifyWakesExactlyOne(t *testing.T) {
	w := testWorld(t, cfgFast())
	m := NewWithOptions(w, "mu", fastOptions())
	cv := m.NewCond("cv")
	woken := 0
	for i := 0; i < 3; i++ {
		w.Spawn("waiter", sim.PriorityNormal, func(th *sim.Thread) any {
			m.Enter(th)
			cv.Wait(th)
			woken++
			m.Exit(th)
			return nil
		})
	}
	w.Spawn("notifier", sim.PriorityNormal, func(th *sim.Thread) any {
		th.Compute(vclock.Millisecond)
		m.Enter(th)
		cv.Notify(th)
		m.Exit(th)
		return nil
	})
	out := w.Run(vclock.Time(vclock.Second))
	if woken != 1 {
		t.Fatalf("woken = %d, want exactly 1", woken)
	}
	// The other two waiters are stuck forever: deadlock outcome.
	if out != sim.OutcomeDeadlock {
		t.Fatalf("outcome = %v, want deadlock (2 waiters remain)", out)
	}
	if cv.Waiters() != 2 {
		t.Fatalf("cv.Waiters = %d, want 2", cv.Waiters())
	}
}

func TestBroadcastWakesAll(t *testing.T) {
	w := testWorld(t, cfgFast())
	m := NewWithOptions(w, "mu", fastOptions())
	cv := m.NewCond("cv")
	woken := 0
	for i := 0; i < 4; i++ {
		w.Spawn("waiter", sim.PriorityNormal, func(th *sim.Thread) any {
			m.Enter(th)
			cv.Wait(th)
			woken++
			m.Exit(th)
			return nil
		})
	}
	w.Spawn("notifier", sim.PriorityNormal, func(th *sim.Thread) any {
		th.Compute(vclock.Millisecond)
		m.With(th, func() { cv.Broadcast(th) })
		return nil
	})
	if out := w.Run(vclock.Time(vclock.Second)); out != sim.OutcomeQuiescent {
		t.Fatalf("outcome = %v", out)
	}
	if woken != 4 {
		t.Fatalf("woken = %d, want 4", woken)
	}
}

func TestWaitTimeout(t *testing.T) {
	cfg := sim.Config{SwitchCost: -1, TimeoutGranularity: 50 * vclock.Millisecond}
	w := testWorld(t, cfg)
	m := NewWithOptions(w, "mu", fastOptions())
	cv := m.NewCondTimeout("cv", 20*vclock.Millisecond) // rounds up to 50ms
	var timedOut bool
	var woke vclock.Time
	w.Spawn("waiter", sim.PriorityNormal, func(th *sim.Thread) any {
		m.Enter(th)
		timedOut = cv.Wait(th)
		woke = th.Now()
		m.Exit(th)
		return nil
	})
	if out := w.Run(vclock.Time(vclock.Second)); out != sim.OutcomeQuiescent {
		t.Fatalf("outcome = %v", out)
	}
	if !timedOut {
		t.Fatal("wait should have timed out")
	}
	if woke != vclock.Time(50*vclock.Millisecond) {
		t.Fatalf("woke at %v, want 50ms (granularity-rounded)", woke)
	}
}

func TestNotifyBeatsTimeout(t *testing.T) {
	w := testWorld(t, cfgFast())
	m := NewWithOptions(w, "mu", fastOptions())
	cv := m.NewCondTimeout("cv", 100*vclock.Millisecond)
	var timedOut bool
	w.Spawn("waiter", sim.PriorityNormal, func(th *sim.Thread) any {
		m.Enter(th)
		timedOut = cv.Wait(th)
		m.Exit(th)
		return nil
	})
	w.Spawn("notifier", sim.PriorityNormal, func(th *sim.Thread) any {
		th.Compute(10 * vclock.Millisecond)
		m.With(th, func() { cv.Notify(th) })
		return nil
	})
	w.Run(vclock.Time(vclock.Second))
	if timedOut {
		t.Fatal("wait reported timeout despite notify at 10ms < 100ms")
	}
}

// TestMesaSemanticsRequireLoop demonstrates §5.3: with Mesa monitors a
// waiter's condition can be stolen between NOTIFY and reacquisition, so
// IF-based waits are wrong. We build the failure deliberately.
func TestMesaSemanticsRequireLoop(t *testing.T) {
	w := testWorld(t, cfgFast())
	m := NewWithOptions(w, "queue", fastOptions())
	nonEmpty := m.NewCond("non-empty")
	var queue []int

	consumeIF := func(th *sim.Thread) (ok bool) {
		m.Enter(th)
		defer m.Exit(th)
		if len(queue) == 0 { // WRONG: IF, not WHILE
			nonEmpty.Wait(th)
		}
		if len(queue) == 0 {
			return false // would have crashed dequeueing
		}
		queue = queue[1:]
		return true
	}

	var ifWaiterOK bool
	// Phase 1 (t=0): the IF-waiter waits. Phase 2 (5ms): the producer
	// enqueues an item and notifies while holding the monitor for 2ms.
	// Phase 3 (6ms): a high-priority thief queues on the mutex; FIFO
	// handoff admits it at 7ms, before the low-priority waiter gets
	// scheduled to reacquire — so the thief steals the item between the
	// NOTIFY and the waiter's re-entry.
	w.Spawn("if-waiter", sim.PriorityLow, func(th *sim.Thread) any {
		ifWaiterOK = consumeIF(th)
		return nil
	})
	w.At(vclock.Time(5*vclock.Millisecond), func() {
		w.Spawn("producer", sim.PriorityNormal, func(th *sim.Thread) any {
			m.Enter(th)
			queue = append(queue, 1)
			nonEmpty.Notify(th)
			th.Compute(2 * vclock.Millisecond) // hold the monitor past the notify
			m.Exit(th)
			return nil
		})
	})
	w.At(vclock.Time(6*vclock.Millisecond), func() {
		w.Spawn("thief", sim.PriorityHigh, func(th *sim.Thread) any {
			m.Enter(th)
			if len(queue) > 0 {
				queue = queue[1:]
			}
			m.Exit(th)
			return nil
		})
	})
	w.Run(vclock.Time(vclock.Second))
	if ifWaiterOK {
		t.Fatal("IF-based wait observed its condition; expected it stolen (the §5.3 bug should reproduce)")
	}
}

// TestSpuriousLockConflict reproduces §6.1 on a uniprocessor: a
// higher-priority notifyee preempts the notifier while it still holds the
// monitor, wakes, and immediately blocks on the mutex — unless the
// reschedule is deferred to monitor exit.
func TestSpuriousLockConflict(t *testing.T) {
	run := func(deferFix bool) (contendedEnters int) {
		var buf trace.Buffer
		cfg := sim.Config{SwitchCost: -1, TimeoutGranularity: 1, Trace: &buf}
		w := sim.NewWorld(cfg)
		defer w.Shutdown()
		opt := fastOptions()
		opt.DeferNotifyReschedule = deferFix
		m := NewWithOptions(w, "mu", opt)
		cv := m.NewCond("cv")
		w.Spawn("hi-waiter", sim.PriorityHigh, func(th *sim.Thread) any {
			m.Enter(th)
			cv.Wait(th)
			m.Exit(th)
			return nil
		})
		w.Spawn("lo-notifier", sim.PriorityLow, func(th *sim.Thread) any {
			th.Compute(vclock.Millisecond)
			m.Enter(th)
			cv.Notify(th)
			th.Compute(vclock.Millisecond) // work between NOTIFY and exit
			m.Exit(th)
			return nil
		})
		w.Run(vclock.Time(vclock.Second))
		for _, ev := range buf.Events {
			if ev.Kind == trace.KindMLEnter && ev.Aux == 1 {
				contendedEnters++
			}
		}
		return contendedEnters
	}
	if got := run(false); got != 1 {
		t.Fatalf("without fix: contended enters = %d, want 1 (spurious conflict)", got)
	}
	if got := run(true); got != 0 {
		t.Fatalf("with fix: contended enters = %d, want 0", got)
	}
}

func TestWithReleasesOnPanic(t *testing.T) {
	w := testWorld(t, cfgFast())
	m := NewWithOptions(w, "mu", fastOptions())
	entered := false
	w.Spawn("dier", sim.PriorityNormal, func(th *sim.Thread) any {
		m.With(th, func() { panic("die inside") })
		return nil
	})
	w.Spawn("after", sim.PriorityNormal, func(th *sim.Thread) any {
		th.Compute(vclock.Millisecond)
		m.With(th, func() { entered = true })
		return nil
	})
	if out := w.Run(vclock.Time(vclock.Second)); out != sim.OutcomeQuiescent {
		t.Fatalf("outcome = %v", out)
	}
	if !entered {
		t.Fatal("monitor not released after panic inside With")
	}
}

func TestCondAccessors(t *testing.T) {
	w := testWorld(t, cfgFast())
	m := New(w, "mu")
	cv := m.NewCondTimeout("cv", 30*vclock.Millisecond)
	if cv.Name() != "cv" || cv.Monitor() != m || cv.Timeout() != 30*vclock.Millisecond {
		t.Fatal("accessors wrong")
	}
	cv.SetTimeout(-5)
	if cv.Timeout() != 0 {
		t.Fatal("negative timeout should clamp to 0")
	}
	if m.Name() != "mu" || m.ID() == 0 || cv.ID() == 0 {
		t.Fatal("IDs/names wrong")
	}
	if m.Holder() != nil {
		t.Fatal("fresh monitor should be free")
	}
}

func TestDistinctIDs(t *testing.T) {
	w := testWorld(t, cfgFast())
	m1, m2 := New(w, "a"), New(w, "b")
	c1, c2 := m1.NewCond("x"), m2.NewCond("y")
	if m1.ID() == m2.ID() || c1.ID() == c2.ID() {
		t.Fatal("IDs must be world-unique")
	}
}

// TestMetalockDonation checks §6.2's metalock cycle donation: with a
// middle-priority hog and a preempted low-priority metalock holder, a
// high-priority contender resolves the inversion only when donation is on.
func TestMetalockDonation(t *testing.T) {
	run := func(donation bool) vclock.Time {
		cfg := sim.Config{SwitchCost: -1, TimeoutGranularity: 1}
		w := sim.NewWorld(cfg)
		defer w.Shutdown()
		opt := Options{LockCost: -1, NotifyCost: -1, WaitCost: -1,
			MetalockHold: 10 * vclock.Microsecond, MetalockDonation: donation}
		m := NewWithOptions(w, "mu", opt)
		var acquired vclock.Time
		w.Spawn("lo", sim.PriorityLow, func(th *sim.Thread) any {
			m.Enter(th) // metalock held [0,10µs), then the mutex
			th.Compute(vclock.Millisecond)
			m.Exit(th) // metalock held [1010µs,1020µs)
			return nil
		})
		// The hog arrives while lo is inside the Exit-path metalock hold
		// (the mutex release happens the instant the metalock is done),
		// then monopolizes the CPU at middle priority. PCR donates
		// cycles only for the metalock, never for monitors themselves,
		// so this is the one inversion donation can fix.
		w.At(vclock.Time(1015*vclock.Microsecond), func() {
			w.Spawn("hog", sim.PriorityNormal, func(th *sim.Thread) any {
				th.Compute(300 * vclock.Millisecond)
				return nil
			})
			w.Spawn("hi", sim.PriorityHigh, func(th *sim.Thread) any {
				m.Enter(th)
				acquired = th.Now()
				m.Exit(th)
				return nil
			})
		})
		w.Run(vclock.Time(vclock.Second))
		return acquired
	}
	withDonation := run(true)
	withoutDonation := run(false)
	if withDonation == 0 || withoutDonation == 0 {
		t.Fatalf("hi never acquired: with=%v without=%v", withDonation, withoutDonation)
	}
	if withoutDonation < vclock.Time(100*vclock.Millisecond) {
		t.Fatalf("without donation, inversion should persist behind the hog: acquired at %v", withoutDonation)
	}
	if withDonation > vclock.Time(2*vclock.Millisecond) {
		t.Fatalf("with donation, hi should acquire quickly: acquired at %v", withDonation)
	}
}
