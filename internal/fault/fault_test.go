package fault

import (
	"errors"
	"io"
	"strings"
	"testing"

	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/vclock"
)

func testConfig() sim.Config {
	return sim.Config{SwitchCost: -1, TimeoutGranularity: vclock.Millisecond}
}

func TestPlanJSONRoundTrip(t *testing.T) {
	src := `{
		"lost_notify": [{"cv": "work", "from": "10ms", "until": "2s", "count": 3}],
		"crash_thread": [{"thread": "^worker$", "at": 20000, "when_blocked": true}],
		"fork_exhaustion": [{"max": 2, "from": "1ms", "until": "5ms"}],
		"stall_thread": [{"thread": "holder", "at": "0s", "stall": "400ms"}],
		"clock_jitter": [{"frac": 0.25}]
	}`
	p, err := Parse([]byte(src))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := p.LostNotify[0].From.Duration; got != 10*vclock.Millisecond {
		t.Errorf("string duration parsed to %v", got)
	}
	if got := p.CrashThread[0].At.Duration; got != 20*vclock.Millisecond {
		t.Errorf("numeric duration parsed to %v, want 20ms in microseconds", got)
	}
	if !p.CrashThread[0].WhenBlocked || p.LostNotify[0].Count != 3 {
		t.Error("field values lost in parse")
	}
	if p.Empty() {
		t.Error("plan reported empty")
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	if _, err := Parse([]byte(`{"lost_notfy": []}`)); err == nil {
		t.Fatal("typo'd injector name accepted")
	}
	if _, err := Parse([]byte(`{"lost_notify": [{"cv": "x", "cnt": 1}]}`)); err == nil {
		t.Fatal("typo'd rule field accepted")
	}
}

func TestPlanCheckErrors(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
		frag string
	}{
		{"bad cv regexp", Plan{LostNotify: []LostNotify{{CV: "("}}}, "bad cv pattern"},
		{"negative count", Plan{LostNotify: []LostNotify{{CV: "x", Count: -1}}}, "negative count"},
		{"inverted window", Plan{LostNotify: []LostNotify{{CV: "x", From: D(5 * vclock.Millisecond), Until: D(vclock.Millisecond)}}}, "not after"},
		{"bad thread regexp", Plan{CrashThread: []CrashThread{{Thread: "[", At: D(1)}}}, "bad thread pattern"},
		{"fork max zero", Plan{ForkExhaustion: []ForkExhaustion{{Max: 0, From: D(1), Until: D(2)}}}, "at least 1"},
		{"fork clamp forever", Plan{ForkExhaustion: []ForkExhaustion{{Max: 1, From: D(1)}}}, "until is required"},
		{"zero stall", Plan{StallThread: []StallThread{{Thread: "x", Stall: D(0)}}}, "stall > 0"},
		{"frac too big", Plan{ClockJitter: []ClockJitter{{Frac: 1.5}}}, "must be in (0, 1)"},
	}
	for _, tc := range cases {
		err := tc.plan.Check()
		if err == nil || !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.frag)
		}
	}
	if (Plan{}).Check() != nil {
		t.Error("zero plan rejected")
	}
}

// runLostNotify runs a waiter (50 ms CV timeout) plus a notifier that
// fires at 10 ms, under the given plan, and reports whether the wait
// timed out and how many notifies the injector swallowed.
func runLostNotify(t *testing.T, plan Plan) (timedOut bool, lost int) {
	t.Helper()
	cfg := testConfig()
	inj := MustNew(plan, 7)
	inj.Configure(&cfg)
	w := sim.NewWorld(cfg)
	defer w.Shutdown()
	inj.Arm(w)
	m := monitor.New(w, "m")
	c := m.NewCondTimeout("work", 50*vclock.Millisecond)
	w.Spawn("waiter", sim.PriorityNormal, func(th *sim.Thread) any {
		m.Enter(th)
		timedOut = c.Wait(th)
		m.Exit(th)
		return nil
	})
	w.Spawn("notifier", sim.PriorityNormal, func(th *sim.Thread) any {
		th.Sleep(10 * vclock.Millisecond)
		m.Enter(th)
		c.Notify(th)
		m.Exit(th)
		return nil
	})
	if out := w.Run(vclock.Time(vclock.Second)); out != sim.OutcomeQuiescent {
		t.Fatalf("outcome = %v", out)
	}
	return timedOut, inj.Counts().NotifiesLost
}

func TestLostNotifySwallowsAndTimeoutMasks(t *testing.T) {
	timedOut, lost := runLostNotify(t, Plan{LostNotify: []LostNotify{{CV: "work", Count: 1}}})
	if !timedOut {
		t.Error("wait completed by NOTIFY despite LostNotify rule")
	}
	if lost != 1 {
		t.Errorf("NotifiesLost = %d, want 1", lost)
	}
	// Control: no plan, the NOTIFY lands.
	timedOut, lost = runLostNotify(t, Plan{})
	if timedOut || lost != 0 {
		t.Errorf("fault-free run: timedOut=%v lost=%d", timedOut, lost)
	}
	// A rule for a different CV must not fire.
	timedOut, lost = runLostNotify(t, Plan{LostNotify: []LostNotify{{CV: "^other$"}}})
	if timedOut || lost != 0 {
		t.Errorf("non-matching rule: timedOut=%v lost=%d", timedOut, lost)
	}
	// A window that opens after the NOTIFY must not fire.
	timedOut, lost = runLostNotify(t, Plan{LostNotify: []LostNotify{{CV: "work", From: D(20 * vclock.Millisecond)}}})
	if timedOut || lost != 0 {
		t.Errorf("late window: timedOut=%v lost=%d", timedOut, lost)
	}
}

func TestLostNotifyFeedsAudit(t *testing.T) {
	cfg := testConfig()
	probe := &sim.Probe{}
	cfg.Hooks.Probe = probe
	inj := MustNew(Plan{LostNotify: []LostNotify{{CV: "work"}}}, 1)
	inj.Configure(&cfg)
	w := sim.NewWorld(cfg)
	defer w.Shutdown()
	inj.Arm(w)
	m := monitor.New(w, "m")
	c := m.NewCondTimeout("work", 10*vclock.Millisecond)
	w.Spawn("waiter", sim.PriorityNormal, func(th *sim.Thread) any {
		for i := 0; i < 3; i++ {
			m.Enter(th)
			c.Wait(th)
			m.Exit(th)
		}
		return nil
	})
	w.Spawn("notifier", sim.PriorityNormal, func(th *sim.Thread) any {
		for i := 0; i < 3; i++ {
			th.Sleep(5 * vclock.Millisecond)
			m.Enter(th)
			c.Notify(th)
			m.Exit(th)
		}
		return nil
	})
	w.Run(vclock.Time(vclock.Second))
	findings := probe.Audit(3)
	if len(findings) != 1 || !strings.Contains(findings[0], `cv "work"`) {
		t.Fatalf("audit findings = %q, want one masked-missing-NOTIFY report", findings)
	}
}

// jitteredSpan runs a fixed compute-loop workload under a jitter plan
// and returns the virtual completion time.
func jitteredSpan(t *testing.T, faultSeed int64) vclock.Time {
	t.Helper()
	cfg := testConfig()
	inj := MustNew(Plan{ClockJitter: []ClockJitter{{Frac: 0.5}}}, faultSeed)
	inj.Configure(&cfg)
	w := sim.NewWorld(cfg)
	defer w.Shutdown()
	inj.Arm(w)
	var done vclock.Time
	w.Spawn("worker", sim.PriorityNormal, func(th *sim.Thread) any {
		for i := 0; i < 20; i++ {
			th.Compute(vclock.Millisecond)
		}
		done = th.Now()
		return nil
	})
	if out := w.Run(vclock.Time(vclock.Second)); out != sim.OutcomeQuiescent {
		t.Fatalf("outcome = %v", out)
	}
	if got := inj.Counts().Jittered; got != 20 {
		t.Fatalf("Jittered = %d, want 20", got)
	}
	return done
}

func TestClockJitterDeterministicPerSeed(t *testing.T) {
	a := jitteredSpan(t, 42)
	b := jitteredSpan(t, 42)
	if a != b {
		t.Fatalf("same fault seed diverged: %v vs %v", a, b)
	}
	if a == vclock.Time(20*vclock.Millisecond) {
		t.Fatal("jitter plan had no effect on the schedule")
	}
	if c := jitteredSpan(t, 43); c == a {
		t.Fatalf("different fault seeds produced identical schedule %v", c)
	}
}

func TestCrashThreadAndSupervise(t *testing.T) {
	cfg := testConfig()
	plan := Plan{CrashThread: []CrashThread{
		{Thread: "^worker$", At: D(20 * vclock.Millisecond), WhenBlocked: true},
		{Thread: "^worker$", At: D(100 * vclock.Millisecond), WhenBlocked: true},
	}}
	inj := MustNew(plan, 1)
	inj.Configure(&cfg)
	w := sim.NewWorld(cfg)
	defer w.Shutdown()
	inj.Arm(w)
	var ticks int64
	s := Supervise(w, nil, "worker", sim.PriorityNormal, 5,
		10*vclock.Millisecond, 40*vclock.Millisecond,
		func(th *sim.Thread) any {
			for {
				th.Compute(vclock.Millisecond)
				ticks++
				th.BlockIO(4 * vclock.Millisecond)
			}
		}, nil)
	w.Run(vclock.Time(300 * vclock.Millisecond))
	if got := inj.Counts().Crashes; got != 2 {
		t.Fatalf("Crashes = %d, want 2", got)
	}
	if s.Restarts() != 2 {
		t.Fatalf("Restarts = %d, want 2", s.Restarts())
	}
	if !s.Alive() {
		t.Fatal("supervised service not alive after rejuvenation")
	}
	if ticks < 30 {
		t.Fatalf("only %d ticks in 300ms: service did not keep working across crashes", ticks)
	}
	dt, rt := s.DeathTimes(), s.RestartTimes()
	if len(dt) != 2 || len(rt) != 2 {
		t.Fatalf("death/restart times = %v / %v", dt, rt)
	}
	// Backoff doubles: first recovery 10 ms, second 20 ms.
	if got := rt[0].Sub(dt[0]); got != 10*vclock.Millisecond {
		t.Errorf("first recovery latency = %v, want 10ms", got)
	}
	if got := rt[1].Sub(dt[1]); got != 20*vclock.Millisecond {
		t.Errorf("second recovery latency = %v, want doubled 20ms", got)
	}
	for _, err := range s.Deaths() {
		var pe *sim.PanicError
		if !errors.As(err, &pe) {
			t.Errorf("death cause %v is not a PanicError", err)
		}
	}
}

func TestSuperviseRestartBudgetExhausts(t *testing.T) {
	w := sim.NewWorld(testConfig())
	defer w.Shutdown()
	s := Supervise(w, nil, "doomed", sim.PriorityNormal, 2,
		vclock.Millisecond, vclock.Millisecond,
		func(th *sim.Thread) any {
			th.Compute(vclock.Millisecond)
			panic("poisoned event")
		}, nil)
	w.Run(vclock.Time(vclock.Second))
	if s.Restarts() != 2 {
		t.Fatalf("Restarts = %d, want exactly the budget of 2", s.Restarts())
	}
	if s.Alive() {
		t.Fatal("service still alive after exhausting its restart budget")
	}
	if len(s.Deaths()) != 3 {
		t.Fatalf("Deaths = %d, want 3 (original + 2 replacements)", len(s.Deaths()))
	}
}

func TestWatchdogDetectsAndClears(t *testing.T) {
	w := sim.NewWorld(testConfig())
	defer w.Shutdown()
	var progress int64
	var dumped strings.Builder
	wd := StartWatchdog(w, nil, "watchdog", 10*vclock.Millisecond, 3,
		func() int64 { return progress },
		func(dump func(out io.Writer)) { dump(&dumped) })
	// The worker makes steady progress until 30 ms, starves until 100 ms,
	// then resumes.
	w.Spawn("worker", sim.PriorityNormal, func(th *sim.Thread) any {
		for th.Now() < vclock.Time(30*vclock.Millisecond) {
			th.Compute(vclock.Millisecond)
			progress++
			th.BlockIO(4 * vclock.Millisecond)
		}
		th.BlockIO(70 * vclock.Millisecond)
		for th.Now() < vclock.Time(200*vclock.Millisecond) {
			th.Compute(vclock.Millisecond)
			progress++
			th.BlockIO(4 * vclock.Millisecond)
		}
		return nil
	})
	w.Run(vclock.Time(200 * vclock.Millisecond))
	if wd.Detections() != 1 {
		t.Fatalf("Detections = %d, want 1", wd.Detections())
	}
	det := wd.DetectTimes()[0]
	// Progress stops at ~30 ms; three stale 10 ms periods should declare
	// starvation well before the worker resumes at 100 ms.
	if det <= vclock.Time(30*vclock.Millisecond) || det >= vclock.Time(100*vclock.Millisecond) {
		t.Errorf("detected at %v, want inside the starved window (30ms, 100ms)", det)
	}
	if !strings.Contains(dumped.String(), "worker") {
		t.Errorf("onStarve dump missing thread table:\n%s", dumped.String())
	}
	if len(wd.ClearTimes()) != 1 {
		t.Fatalf("ClearTimes = %v, want one cleared episode", wd.ClearTimes())
	}
	if clr := wd.ClearTimes()[0]; clr <= vclock.Time(100*vclock.Millisecond) {
		t.Errorf("cleared at %v, before progress resumed", clr)
	}
	if wd.Starving() {
		t.Error("watchdog still reports starvation after progress resumed")
	}
	wd.Stop()
}

func TestRetryPolicyForkRecovers(t *testing.T) {
	cfg := testConfig()
	cfg.MaxThreads = 2
	w := sim.NewWorld(cfg)
	defer w.Shutdown()
	var retries int
	var forkErr error
	w.Spawn("parent", sim.PriorityNormal, func(th *sim.Thread) any {
		// Fill the only free slot with a child that exits at 30 ms.
		c1, err := th.TryFork("hog", func(c *sim.Thread) any {
			c.BlockIO(30 * vclock.Millisecond)
			return nil
		})
		if err != nil {
			t.Errorf("first TryFork: %v", err)
			return nil
		}
		p := RetryPolicy{Tries: 8, Backoff: 5 * vclock.Millisecond}
		var c2 *sim.Thread
		c2, retries, forkErr = p.Fork(th, "wanted", func(c *sim.Thread) any { return nil })
		if forkErr == nil {
			th.Join(c2)
		}
		th.Join(c1)
		return nil
	})
	if out := w.Run(vclock.Time(vclock.Second)); out != sim.OutcomeQuiescent {
		t.Fatalf("outcome = %v", out)
	}
	if forkErr != nil {
		t.Fatalf("policy fork failed: %v (after %d retries)", forkErr, retries)
	}
	if retries == 0 {
		t.Fatal("fork succeeded without retrying despite a full thread table")
	}
}

func TestRetryPolicyForkGivesUp(t *testing.T) {
	cfg := testConfig()
	cfg.MaxThreads = 2
	w := sim.NewWorld(cfg)
	defer w.Shutdown()
	var retries int
	var forkErr error
	w.Spawn("parent", sim.PriorityNormal, func(th *sim.Thread) any {
		c1, err := th.TryFork("hog", func(c *sim.Thread) any {
			c.BlockIO(10 * vclock.Second) // outlasts every attempt
			return nil
		})
		if err != nil {
			t.Errorf("first TryFork: %v", err)
			return nil
		}
		p := RetryPolicy{Tries: 3, Backoff: vclock.Millisecond}
		_, retries, forkErr = p.Fork(th, "wanted", func(c *sim.Thread) any { return nil })
		th.Join(c1)
		return nil
	})
	w.Run(vclock.Time(20 * vclock.Second))
	if !errors.Is(forkErr, sim.ErrNoThreads) {
		t.Fatalf("err = %v, want ErrNoThreads", forkErr)
	}
	if retries != 2 {
		t.Fatalf("retries = %d, want 2 (3 tries total)", retries)
	}
}

func TestForkExhaustionClampsAndRestores(t *testing.T) {
	cfg := testConfig()
	cfg.MaxThreads = 8
	plan := Plan{ForkExhaustion: []ForkExhaustion{{
		Max: 1, From: D(10 * vclock.Millisecond), Until: D(50 * vclock.Millisecond),
	}}}
	inj := MustNew(plan, 1)
	inj.Configure(&cfg)
	w := sim.NewWorld(cfg)
	defer w.Shutdown()
	inj.Arm(w)
	var during, after error
	w.Spawn("parent", sim.PriorityNormal, func(th *sim.Thread) any {
		th.BlockIO(20 * vclock.Millisecond) // inside the clamp window
		_, during = th.TryFork("d", func(c *sim.Thread) any { return nil })
		th.BlockIO(40 * vclock.Millisecond) // past the window
		c, e := th.TryFork("a", func(c *sim.Thread) any { return nil })
		after = e
		if e == nil {
			th.Join(c)
		}
		return nil
	})
	if out := w.Run(vclock.Time(vclock.Second)); out != sim.OutcomeQuiescent {
		t.Fatalf("outcome = %v", out)
	}
	if !errors.Is(during, sim.ErrNoThreads) {
		t.Fatalf("TryFork inside clamp window: err = %v, want ErrNoThreads", during)
	}
	if after != nil {
		t.Fatalf("TryFork after clamp window failed: %v", after)
	}
	if got := w.Config().MaxThreads; got != 8 {
		t.Fatalf("MaxThreads = %d after window, want restored 8", got)
	}
	if inj.Counts().Forks == 0 {
		t.Fatal("OnFork hook recorded no thread creations")
	}
}
