package fault

import (
	"fmt"
	"math/rand"
	"regexp"

	"repro/internal/sim"
	"repro/internal/vclock"
)

// crashRetryPeriod is how often a pending CrashThread kill re-checks for
// its victim (not yet created, or not yet blocked under WhenBlocked).
const crashRetryPeriod = vclock.Millisecond

// crashRetryLimit bounds those re-checks so an unsatisfiable rule cannot
// keep an otherwise-finished world alive forever.
const crashRetryLimit = 60_000 // 60 s of virtual time at 1 ms per check

// Counts tallies what an Injector actually did, for recovery reports.
type Counts struct {
	NotifiesLost int // NOTIFYs swallowed by LostNotify rules
	Crashes      int // threads killed by CrashThread rules
	Stalls       int // Computes extended by StallThread rules
	Jittered     int // Computes scaled by ClockJitter rules
	Forks        int // thread creations observed while a clamp plan exists
}

// Injector is a Plan compiled against one world. Use it in three steps:
//
//	inj, err := fault.New(plan, faultSeed)
//	inj.Configure(&cfg)          // BEFORE sim.NewWorld(cfg)
//	w := sim.NewWorld(cfg)
//	inj.Arm(w)                   // BEFORE w.Run
//
// Configure installs only the hooks the plan needs, so an empty plan
// leaves the Config untouched. All injector state is driven from the
// world's single-threaded driver, so no locking is needed; an Injector
// must not be shared between worlds.
type Injector struct {
	w   *sim.World
	rng *rand.Rand

	lost    []*lostState
	crashes []*crashState
	clamps  []ForkExhaustion
	stalls  []*stallState
	jitters []ClockJitter

	counts     Counts
	crashTimes []vclock.Time
}

type lostState struct {
	rule   LostNotify
	re     *regexp.Regexp
	budget int // remaining swallows; -1 = unlimited
}

type crashState struct {
	rule    CrashThread
	re      *regexp.Regexp
	retries int
}

type stallState struct {
	rule  StallThread
	re    *regexp.Regexp
	fired bool
}

// New compiles a plan. seed drives the injector's private RNG (jitter
// draws); it is deliberately separate from the world's seed so adding a
// fault plan never perturbs workload randomness.
func New(p Plan, seed int64) (*Injector, error) {
	if err := p.Check(); err != nil {
		return nil, err
	}
	// Instance-scoped kinds name fleet members, a namespace a single
	// world does not have; compiling them here would silently inject
	// nothing, so refuse with the kind names spelled out.
	if p.HasInstanceFaults() {
		return nil, fmt.Errorf("%w: plan has cluster-scoped fault kinds "+
			"(crash_instance/stall_instance/degrade_instance); they target fleet instances "+
			"and need a cluster run, not a single world", ErrInvalidPlan)
	}
	in := &Injector{rng: rand.New(rand.NewSource(seed))}
	for _, r := range p.LostNotify {
		budget := r.Count
		if budget == 0 {
			budget = -1
		}
		in.lost = append(in.lost, &lostState{rule: r, re: regexp.MustCompile(r.CV), budget: budget})
	}
	for _, r := range p.CrashThread {
		in.crashes = append(in.crashes, &crashState{rule: r, re: regexp.MustCompile(r.Thread)})
	}
	in.clamps = append(in.clamps, p.ForkExhaustion...)
	for _, r := range p.StallThread {
		in.stalls = append(in.stalls, &stallState{rule: r, re: regexp.MustCompile(r.Thread)})
	}
	in.jitters = append(in.jitters, p.ClockJitter...)
	return in, nil
}

// MustNew is New for plans built in Go that are known valid.
func MustNew(p Plan, seed int64) *Injector {
	in, err := New(p, seed)
	if err != nil {
		panic(err)
	}
	return in
}

// Configure installs the hooks the plan needs into cfg. Call before
// sim.NewWorld; hooks fire only once Arm has attached the world.
func (in *Injector) Configure(cfg *sim.Config) {
	if len(in.lost) > 0 {
		cfg.Hooks.OnNotify = in.onNotify
	}
	if len(in.stalls) > 0 || len(in.jitters) > 0 {
		cfg.Hooks.OnCompute = in.onCompute
	}
	if len(in.clamps) > 0 {
		cfg.Hooks.OnFork = in.onFork
	}
}

// Arm attaches the injector to its world and schedules the time-driven
// injections (crashes, clamp windows). Call after NewWorld, before Run.
func (in *Injector) Arm(w *sim.World) {
	in.w = w
	for _, cs := range in.crashes {
		cs := cs
		var attempt func()
		attempt = func() {
			victim := in.findVictim(cs.re)
			ready := victim != nil && (!cs.rule.WhenBlocked || victim.State() == sim.StateBlocked)
			if !ready {
				if cs.retries < crashRetryLimit {
					cs.retries++
					w.After(crashRetryPeriod, attempt)
				}
				return
			}
			if w.KillThread(victim, fmt.Sprintf("fault: injected crash of %q", victim.Name())) {
				in.counts.Crashes++
				in.crashTimes = append(in.crashTimes, w.Now())
			}
		}
		w.At(vclock.Time(0).Add(cs.rule.At.Duration), attempt)
	}
	for _, c := range in.clamps {
		c := c
		var prev int
		w.At(vclock.Time(0).Add(c.From.Duration), func() {
			prev = w.Config().MaxThreads
			w.SetMaxThreads(c.Max)
		})
		w.At(vclock.Time(0).Add(c.Until.Duration), func() {
			w.SetMaxThreads(prev)
		})
	}
}

// Counts returns what the injector has done so far.
func (in *Injector) Counts() Counts { return in.counts }

// CrashTimes returns the virtual times at which CrashThread kills were
// actually delivered (after any WhenBlocked deferral).
func (in *Injector) CrashTimes() []vclock.Time { return in.crashTimes }

// findVictim returns the first live thread matching re, in creation
// order, or nil.
func (in *Injector) findVictim(re *regexp.Regexp) *sim.Thread {
	for _, t := range in.w.Threads() {
		if t.State() != sim.StateDead && re.MatchString(t.Name()) {
			return t
		}
	}
	return nil
}

func (in *Injector) inWindow(from, until Dur) bool {
	now := in.w.Now()
	if now < vclock.Time(0).Add(from.Duration) {
		return false
	}
	return until.Duration == 0 || now < vclock.Time(0).Add(until.Duration)
}

// onNotify implements sim.Config.OnNotify: swallow a matching NOTIFY.
func (in *Injector) onNotify(cv string) bool {
	if in.w == nil {
		return false
	}
	for _, ls := range in.lost {
		if ls.budget == 0 || !in.inWindow(ls.rule.From, ls.rule.Until) || !ls.re.MatchString(cv) {
			continue
		}
		if ls.budget > 0 {
			ls.budget--
		}
		in.counts.NotifiesLost++
		return true
	}
	return false
}

// onCompute implements sim.Config.OnCompute: stalls then jitter.
func (in *Injector) onCompute(t *sim.Thread, d vclock.Duration) vclock.Duration {
	if in.w == nil {
		return d
	}
	now := in.w.Now()
	for _, st := range in.stalls {
		if st.fired || now < vclock.Time(0).Add(st.rule.At.Duration) ||
			d < st.rule.MinDemand.Duration || !st.re.MatchString(t.Name()) {
			continue
		}
		st.fired = true
		in.counts.Stalls++
		d += st.rule.Stall.Duration
	}
	for _, j := range in.jitters {
		if !in.inWindow(j.From, j.Until) {
			continue
		}
		// Uniform in [1-frac, 1+frac); floor at 1 µs so the hook's
		// "non-positive skips the Compute" contract never fires here.
		f := 1 + j.Frac*(2*in.rng.Float64()-1)
		if nd := vclock.Duration(float64(d) * f); nd >= 1 {
			d = nd
		} else {
			d = 1
		}
		in.counts.Jittered++
	}
	return d
}

// onFork implements sim.Config.OnFork: count creations so exhaustion
// reports can relate demand to the clamp.
func (in *Injector) onFork(parent, child *sim.Thread) {
	in.counts.Forks++
}
