package fault

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzPlanJSON throws arbitrary bytes at the plan parser. Invariants:
// Parse never panics; every rejection wraps ErrInvalidPlan (callers
// branch on it); and an accepted plan survives a marshal → parse round
// trip, i.e. what Check admits, MarshalJSON can express.
func FuzzPlanJSON(f *testing.F) {
	seeds, err := filepath.Glob(filepath.Join("testdata", "*.json"))
	if err != nil || len(seeds) == 0 {
		f.Fatalf("seed corpus missing: %v (files %v)", err, seeds)
	}
	for _, path := range seeds {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"lost_notify": [{"cv": "("}]}`))
	f.Add([]byte(`{"crash_thread": [{"thread": "x", "at": "15ms"}]}`))
	f.Add([]byte(`{"fork_exhaustion": [{"max": 0, "until": 1}]}`))
	f.Add([]byte(`{"clock_jitter": [{"frac": 2}]}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"crash_instance": [{"instance": -1, "at": "400ms", "restart": "250ms"}]}`))
	f.Add([]byte(`{"crash_instance": [{"instance": -2, "at": 0}]}`))
	f.Add([]byte(`{"stall_instance": [{"instance": 1, "from": "100ms"}]}`))
	f.Add([]byte(`{"degrade_instance": [{"instance": 0, "factor": 1, "until": "1s"}]}`))
	f.Add([]byte(`{"degrade_instance": [{"instance": 0, "factor": 8, "from": 0, "until": "1s"}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Parse(data)
		if err != nil {
			if !errors.Is(err, ErrInvalidPlan) {
				t.Fatalf("rejection does not wrap ErrInvalidPlan: %v", err)
			}
			return
		}
		out, err := json.Marshal(p)
		if err != nil {
			t.Fatalf("accepted plan fails to marshal: %v", err)
		}
		if _, err := Parse(out); err != nil {
			t.Fatalf("round-tripped plan rejected: %v\noriginal: %s\nmarshaled: %s", err, data, out)
		}
	})
}

// TestSeedCorpusValid pins the checked-in corpus as parseable examples —
// they double as documentation of the plan schema.
func TestSeedCorpusValid(t *testing.T) {
	for _, path := range []string{"testdata/r-series.json", "testdata/lost-notify.json", "testdata/d-series.json"} {
		p, err := Load(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
		} else if p.Empty() {
			t.Errorf("%s: parsed empty", path)
		}
	}
}

// TestInstanceFaultScope pins the scope contract for the cluster-level
// kinds: they parse and validate as plan JSON, but a single-world
// Injector refuses them by name rather than silently injecting nothing,
// and an old-style unknown kind is still rejected with the kind in the
// message.
func TestInstanceFaultScope(t *testing.T) {
	p, err := Load("testdata/d-series.json")
	if err != nil {
		t.Fatal(err)
	}
	if !p.HasInstanceFaults() || p.HasThreadFaults() {
		t.Fatalf("d-series corpus scope wrong: instance=%v thread=%v",
			p.HasInstanceFaults(), p.HasThreadFaults())
	}
	if _, err := New(p, 1); !errors.Is(err, ErrInvalidPlan) {
		t.Fatalf("single-world New accepted an instance-fault plan: %v", err)
	} else if !strings.Contains(err.Error(), "crash_instance") {
		t.Fatalf("rejection does not name the cluster kinds: %v", err)
	}
	// A typo'd / future kind still fails loudly, naming the field.
	if _, err := Parse([]byte(`{"crash_fleet": [{"at": 1}]}`)); !errors.Is(err, ErrInvalidPlan) ||
		!strings.Contains(err.Error(), "crash_fleet") {
		t.Fatalf("unknown kind rejection = %v, want ErrInvalidPlan naming crash_fleet", err)
	}
	// Semantic validation of the new kinds.
	bad := []Plan{
		{CrashInstance: []CrashInstance{{Instance: -2, At: D(0)}}},
		{CrashInstance: []CrashInstance{{Instance: 0, At: D(-1)}}},
		{StallInstance: []StallInstance{{Instance: 0, From: D(5), Until: D(0)}}},
		{DegradeInstance: []DegradeInstance{{Instance: 0, Factor: 1, Until: D(10)}}},
		{DegradeInstance: []DegradeInstance{{Instance: 0, Factor: 4, From: D(10), Until: D(5)}}},
	}
	for i, plan := range bad {
		if err := plan.Check(); !errors.Is(err, ErrInvalidPlan) {
			t.Errorf("bad instance plan %d accepted (err=%v)", i, err)
		}
	}
}

func TestErrInvalidPlanSentinel(t *testing.T) {
	if _, err := Parse([]byte(`{"bogus_field": 1}`)); !errors.Is(err, ErrInvalidPlan) {
		t.Errorf("unknown field error = %v, want ErrInvalidPlan in chain", err)
	}
	if err := (Plan{ClockJitter: []ClockJitter{{Frac: 2}}}).Check(); !errors.Is(err, ErrInvalidPlan) {
		t.Errorf("semantic error = %v, want ErrInvalidPlan in chain", err)
	}
	if _, err := New(Plan{LostNotify: []LostNotify{{CV: "("}}}, 1); !errors.Is(err, ErrInvalidPlan) {
		t.Errorf("New error = %v, want ErrInvalidPlan in chain", err)
	}
	if _, err := Load("testdata/definitely-missing.json"); errors.Is(err, ErrInvalidPlan) {
		t.Errorf("I/O error %v must NOT claim the plan was invalid", err)
	}
}
