package fault

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// FuzzPlanJSON throws arbitrary bytes at the plan parser. Invariants:
// Parse never panics; every rejection wraps ErrInvalidPlan (callers
// branch on it); and an accepted plan survives a marshal → parse round
// trip, i.e. what Check admits, MarshalJSON can express.
func FuzzPlanJSON(f *testing.F) {
	seeds, err := filepath.Glob(filepath.Join("testdata", "*.json"))
	if err != nil || len(seeds) == 0 {
		f.Fatalf("seed corpus missing: %v (files %v)", err, seeds)
	}
	for _, path := range seeds {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"lost_notify": [{"cv": "("}]}`))
	f.Add([]byte(`{"crash_thread": [{"thread": "x", "at": "15ms"}]}`))
	f.Add([]byte(`{"fork_exhaustion": [{"max": 0, "until": 1}]}`))
	f.Add([]byte(`{"clock_jitter": [{"frac": 2}]}`))
	f.Add([]byte(`not json at all`))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Parse(data)
		if err != nil {
			if !errors.Is(err, ErrInvalidPlan) {
				t.Fatalf("rejection does not wrap ErrInvalidPlan: %v", err)
			}
			return
		}
		out, err := json.Marshal(p)
		if err != nil {
			t.Fatalf("accepted plan fails to marshal: %v", err)
		}
		if _, err := Parse(out); err != nil {
			t.Fatalf("round-tripped plan rejected: %v\noriginal: %s\nmarshaled: %s", err, data, out)
		}
	})
}

// TestSeedCorpusValid pins the checked-in corpus as parseable examples —
// they double as documentation of the plan schema.
func TestSeedCorpusValid(t *testing.T) {
	for _, path := range []string{"testdata/r-series.json", "testdata/lost-notify.json"} {
		p, err := Load(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
		} else if p.Empty() {
			t.Errorf("%s: parsed empty", path)
		}
	}
}

func TestErrInvalidPlanSentinel(t *testing.T) {
	if _, err := Parse([]byte(`{"bogus_field": 1}`)); !errors.Is(err, ErrInvalidPlan) {
		t.Errorf("unknown field error = %v, want ErrInvalidPlan in chain", err)
	}
	if err := (Plan{ClockJitter: []ClockJitter{{Frac: 2}}}).Check(); !errors.Is(err, ErrInvalidPlan) {
		t.Errorf("semantic error = %v, want ErrInvalidPlan in chain", err)
	}
	if _, err := New(Plan{LostNotify: []LostNotify{{CV: "("}}}, 1); !errors.Is(err, ErrInvalidPlan) {
		t.Errorf("New error = %v, want ErrInvalidPlan in chain", err)
	}
	if _, err := Load("testdata/definitely-missing.json"); errors.Is(err, ErrInvalidPlan) {
		t.Errorf("I/O error %v must NOT claim the plan was invalid", err)
	}
}
