package fault

import (
	"io"

	"repro/internal/paradigm"
	"repro/internal/sim"
	"repro/internal/vclock"
)

// Supervised is a service kept alive by rejuvenation with capped
// exponential backoff. It extends the bare §4.5 paradigm
// (paradigm.StartService forks a replacement instantly from the dying
// thread's handler) with the delay a production supervisor needs: an
// instantly-restarting service that dies deterministically — a poisoned
// event at the head of its queue, say — would otherwise crash-loop at
// simulator speed and burn its restart budget in microseconds.
type Supervised struct {
	w    *sim.World
	name string
	pri  sim.Priority
	body sim.Proc

	max        int
	backoff    vclock.Duration // next restart delay
	backoffCap vclock.Duration
	onRestart  func(restart int, cause error)

	restarts     int
	deaths       []error
	deathTimes   []vclock.Time
	restartTimes []vclock.Time
	current      *sim.Thread
}

// Supervise spawns body under backoff rejuvenation: when an incarnation
// dies of an uncaught error, a replacement is spawned (from driver
// context) after the current backoff, which then doubles up to
// backoffCap; up to maxRestarts replacements are made. reg (optional)
// records the task-rejuvenation paradigm in the census. backoff
// defaults to 50 ms, backoffCap to 10x backoff.
func Supervise(w *sim.World, reg *paradigm.Registry, name string, pri sim.Priority, maxRestarts int, backoff, backoffCap vclock.Duration, body sim.Proc, onRestart func(restart int, cause error)) *Supervised {
	if pri == 0 {
		pri = sim.PriorityNormal
	}
	if backoff <= 0 {
		backoff = 50 * vclock.Millisecond
	}
	if backoffCap < backoff {
		backoffCap = 10 * backoff
	}
	if reg != nil {
		reg.Register(paradigm.KindTaskRejuvenate)
	}
	s := &Supervised{
		w: w, name: name, pri: pri, body: body,
		max: maxRestarts, backoff: backoff, backoffCap: backoffCap,
		onRestart: onRestart,
	}
	s.current = w.Spawn(name, pri, s.wrap)
	s.current.Detach()
	return s
}

// wrap is the supervised incarnation body: run, and on an uncaught
// error schedule the next incarnation after the backoff.
func (s *Supervised) wrap(t *sim.Thread) any {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if t.Killed() {
			panic(r) // world teardown, not an application error
		}
		err := &sim.PanicError{Thread: s.name, Value: r}
		s.deaths = append(s.deaths, err)
		s.deathTimes = append(s.deathTimes, s.w.Now())
		if s.restarts >= s.max {
			panic(r) // out of lives: die for real
		}
		s.restarts++
		n := s.restarts
		d := s.backoff
		s.backoff *= 2
		if s.backoff > s.backoffCap {
			s.backoff = s.backoffCap
		}
		if s.onRestart != nil {
			s.onRestart(n, err)
		}
		s.w.After(d, func() {
			s.restartTimes = append(s.restartTimes, s.w.Now())
			s.current = s.w.Spawn(s.name, s.pri, s.wrap)
			s.current.Detach()
		})
	}()
	return s.body(t)
}

// Restarts returns how many replacements have been scheduled.
func (s *Supervised) Restarts() int { return s.restarts }

// Deaths returns the errors that killed each incarnation.
func (s *Supervised) Deaths() []error { return s.deaths }

// DeathTimes and RestartTimes return when each incarnation died and when
// its replacement started; pairing them gives per-crash recovery
// latency (the backoff actually applied).
func (s *Supervised) DeathTimes() []vclock.Time { return s.deathTimes }

// RestartTimes returns when each replacement incarnation was spawned.
func (s *Supervised) RestartTimes() []vclock.Time { return s.restartTimes }

// Thread returns the current incarnation's thread.
func (s *Supervised) Thread() *sim.Thread { return s.current }

// Alive reports whether the current incarnation is running (or a
// replacement is pending).
func (s *Supervised) Alive() bool {
	if len(s.restartTimes) < s.restarts {
		return true // replacement scheduled but not yet spawned
	}
	return s.current != nil && s.current.State() != sim.StateDead
}

// Watchdog is a liveness sleeper (§4.3 paradigm, aimed at §6.2
// pathologies): every period it samples a progress counter, and when the
// counter has not advanced for quanta consecutive periods it declares
// starvation, records the detection, and hands the onStarve callback a
// state dump — the "tool to reach for" output of World.DumpState. When
// progress resumes after a detection the episode is recorded as cleared.
type Watchdog struct {
	w        *sim.World
	period   vclock.Duration
	quanta   int
	progress func() int64
	onStarve func(dump func(io.Writer))

	last     int64
	stale    int
	starving bool
	stopped  bool

	detectTimes []vclock.Time
	clearTimes  []vclock.Time
	thread      *sim.Thread
}

// StartWatchdog spawns the watchdog thread at interrupt priority — it
// must keep running through the very starvation it exists to detect.
// period defaults to 100 ms, quanta to 3. reg (optional) records the
// sleeper paradigm. The watchdog sleeps on exact deadlines (BlockIO),
// not the 50 ms CV granularity, so detection latency is period*quanta.
func StartWatchdog(w *sim.World, reg *paradigm.Registry, name string, period vclock.Duration, quanta int, progress func() int64, onStarve func(dump func(io.Writer))) *Watchdog {
	if period <= 0 {
		period = 100 * vclock.Millisecond
	}
	if quanta < 1 {
		quanta = 3
	}
	if reg != nil {
		reg.Register(paradigm.KindSleeper)
	}
	wd := &Watchdog{w: w, period: period, quanta: quanta, progress: progress, onStarve: onStarve}
	wd.last = progress()
	wd.thread = w.Spawn(name, sim.PriorityInterrupt, func(t *sim.Thread) any {
		for !wd.stopped {
			t.BlockIO(wd.period)
			if wd.stopped {
				break
			}
			cur := wd.progress()
			if cur != wd.last {
				wd.last = cur
				wd.stale = 0
				if wd.starving {
					wd.starving = false
					wd.clearTimes = append(wd.clearTimes, t.Now())
				}
				continue
			}
			wd.stale++
			if wd.stale >= wd.quanta && !wd.starving {
				wd.starving = true
				wd.detectTimes = append(wd.detectTimes, t.Now())
				if wd.onStarve != nil {
					wd.onStarve(func(out io.Writer) { wd.w.DumpState(out) })
				}
			}
		}
		return nil
	})
	wd.thread.Detach()
	return wd
}

// Stop makes the watchdog exit at its next tick.
func (wd *Watchdog) Stop() { wd.stopped = true }

// Detections returns how many starvation episodes have been declared.
func (wd *Watchdog) Detections() int { return len(wd.detectTimes) }

// DetectTimes returns when each starvation episode was declared.
func (wd *Watchdog) DetectTimes() []vclock.Time { return wd.detectTimes }

// ClearTimes returns when progress resumed after each detection; an
// episode with no paired clear time was still starving at the end of
// the run.
func (wd *Watchdog) ClearTimes() []vclock.Time { return wd.clearTimes }

// Starving reports whether the watchdog currently believes the counter
// is starved.
func (wd *Watchdog) Starving() bool { return wd.starving }

// RetryPolicy is FORK retry with capped exponential backoff over
// TryFork — a concrete answer to §5.4's "the standard programming
// practice was to catch the error and to try to recover, but good
// recovery schemes seem never to have been worked out."
type RetryPolicy struct {
	// Tries is the total number of TryFork attempts; <= 0 selects 8.
	Tries int
	// Backoff is the delay before the second attempt; <= 0 selects 1 ms.
	// It doubles per failure up to Ceiling (default 100 ms).
	Backoff vclock.Duration
	Ceiling vclock.Duration
}

// Fork attempts t.TryFork under the policy, sleeping on exact deadlines
// between failures. It returns the child, the number of retries that
// were needed (0 on first-try success), and sim.ErrNoThreads if the
// thread limit outlasted every attempt.
func (p RetryPolicy) Fork(t *sim.Thread, name string, body sim.Proc) (*sim.Thread, int, error) {
	tries := p.Tries
	if tries <= 0 {
		tries = 8
	}
	d := p.Backoff
	if d <= 0 {
		d = vclock.Millisecond
	}
	ceiling := p.Ceiling
	if ceiling <= 0 {
		ceiling = 100 * vclock.Millisecond
	}
	if ceiling < d {
		ceiling = d
	}
	retries := 0
	for {
		child, err := t.TryFork(name, body)
		if err == nil {
			return child, retries, nil
		}
		if retries >= tries-1 {
			return nil, retries, err
		}
		retries++
		t.BlockIO(d)
		d *= 2
		if d > ceiling {
			d = ceiling
		}
	}
}
