// Package fault is a deterministic, seeded fault-injection layer for the
// sim thread kernel, built to provoke the failure modes §§5.3–5.5 and
// §6.2 of "Using Threads in Interactive Systems: A Case Study" describe
// and measure how well the paper's robustness paradigms recover:
//
//   - LostNotify swallows NOTIFYs on a named CV — the deleted-NOTIFY bug
//     whose timeout-masked aftermath "works, but slowly" (§5.3);
//   - CrashThread panics a thread by name at a virtual time — the
//     uncaught errors that motivated task rejuvenation (§4.5, §5.5);
//   - ForkExhaustion clamps the live-thread bound for a window — the
//     FORK failures for which "good recovery schemes seem never to have
//     been worked out" (§5.4);
//   - StallThread pins a lock holder in a long Compute — the raw
//     material of a stable priority inversion (§6.2);
//   - ClockJitter perturbs Compute durations by a seeded ± fraction,
//     shaking out schedules that only work at one operating point.
//
// A Plan is declarative and JSON-loadable (threadstudy -faults). An
// Injector compiled from a plan hooks a single world at well-defined
// seams (sim.Config.OnNotify/OnFork/OnCompute, sim.World.KillThread,
// sim.World.SetMaxThreads) and is driven entirely by virtual time and
// its own seeded RNG, so a given (plan, seed, world seed) triple always
// injects the identical fault sequence — and a world with no plan runs
// byte-identically to one built before this package existed.
//
// The recovery half of the story is Supervise (rejuvenation with capped
// exponential backoff), StartWatchdog (a liveness sleeper that detects
// starvation on a progress counter and dumps world state), and
// RetryPolicy (FORK retry over TryFork).
package fault

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"regexp"
	"time"

	"repro/internal/vclock"
)

// Dur is a vclock.Duration with friendly JSON: it unmarshals from either
// a Go duration string ("250ms", "2s") or a raw microsecond count, and
// marshals as microseconds.
type Dur struct{ vclock.Duration }

// D wraps a vclock.Duration for building plans in Go.
func D(v vclock.Duration) Dur { return Dur{v} }

// MarshalJSON implements json.Marshaler (microseconds).
func (d Dur) MarshalJSON() ([]byte, error) { return json.Marshal(int64(d.Duration)) }

// UnmarshalJSON implements json.Unmarshaler.
func (d *Dur) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		td, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("fault: bad duration %q (want Go syntax like \"250ms\")", s)
		}
		d.Duration = vclock.Duration(td.Microseconds())
		return nil
	}
	var us int64
	if err := json.Unmarshal(b, &us); err != nil {
		return fmt.Errorf("fault: bad duration %s (want microseconds or a quoted Go duration)", b)
	}
	d.Duration = vclock.Duration(us)
	return nil
}

// Plan is a declarative fault schedule. All times are virtual, measured
// from the world's start (time 0). The zero Plan injects nothing.
//
// Two scopes of fault live side by side. The thread-scoped kinds
// (LostNotify through ClockJitter) are compiled by an Injector against a
// single world. The instance-scoped kinds (CrashInstance, StallInstance,
// DegradeInstance) target whole fleet members and are compiled by the
// cluster layer's own injector (internal/cluster), which owns the
// instance-index namespace; a single-world Injector rejects them so an
// instance fault can never silently no-op against the wrong scope.
type Plan struct {
	LostNotify     []LostNotify     `json:"lost_notify,omitempty"`
	CrashThread    []CrashThread    `json:"crash_thread,omitempty"`
	ForkExhaustion []ForkExhaustion `json:"fork_exhaustion,omitempty"`
	StallThread    []StallThread    `json:"stall_thread,omitempty"`
	ClockJitter    []ClockJitter    `json:"clock_jitter,omitempty"`

	CrashInstance   []CrashInstance   `json:"crash_instance,omitempty"`
	StallInstance   []StallInstance   `json:"stall_instance,omitempty"`
	DegradeInstance []DegradeInstance `json:"degrade_instance,omitempty"`
}

// Empty reports whether the plan injects nothing.
func (p Plan) Empty() bool {
	return len(p.LostNotify) == 0 && len(p.CrashThread) == 0 &&
		len(p.ForkExhaustion) == 0 && len(p.StallThread) == 0 && len(p.ClockJitter) == 0 &&
		!p.HasInstanceFaults()
}

// HasInstanceFaults reports whether the plan carries any cluster-scoped
// (instance) fault rules.
func (p Plan) HasInstanceFaults() bool {
	return len(p.CrashInstance) > 0 || len(p.StallInstance) > 0 || len(p.DegradeInstance) > 0
}

// HasThreadFaults reports whether the plan carries any single-world
// (thread-scoped) fault rules.
func (p Plan) HasThreadFaults() bool {
	return len(p.LostNotify) > 0 || len(p.CrashThread) > 0 ||
		len(p.ForkExhaustion) > 0 || len(p.StallThread) > 0 || len(p.ClockJitter) > 0
}

// LostNotify swallows NOTIFYs (thread- or driver-context, not BROADCAST)
// on matching condition variables during a window (§5.3).
type LostNotify struct {
	// CV is an anchored-nowhere regexp matched against CV debug names.
	CV string `json:"cv"`
	// From/Until bound the window; a zero Until leaves it open-ended.
	From  Dur `json:"from,omitempty"`
	Until Dur `json:"until,omitempty"`
	// Count caps how many notifies this rule swallows; 0 = unlimited.
	Count int `json:"count,omitempty"`
}

// CrashThread panics the first live thread whose name matches at virtual
// time At, as if its own body had raised an uncaught error (§5.5).
type CrashThread struct {
	Thread string `json:"thread"`
	At     Dur    `json:"at"`
	// WhenBlocked defers the kill until the victim is blocked — a crash
	// in its wait loop — so the error never lands while the victim holds
	// a monitor mid-computation. If no matching thread (ever) blocks the
	// kill is retried every millisecond and eventually abandoned.
	WhenBlocked bool `json:"when_blocked,omitempty"`
}

// ForkExhaustion clamps the world's MaxThreads to Max during the window,
// then restores the previous bound (§5.4).
type ForkExhaustion struct {
	Max   int `json:"max"`
	From  Dur `json:"from"`
	Until Dur `json:"until"`
}

// StallThread extends the first Compute a matching thread issues at or
// after At by Stall — pinning, say, a lock holder in a long computation
// to set up a stable priority inversion (§6.2).
type StallThread struct {
	Thread string `json:"thread"`
	At     Dur    `json:"at"`
	Stall  Dur    `json:"stall"`
	// MinDemand skips computes shorter than this, so the stall lands on
	// a real critical-section computation rather than on lock-cost or
	// other bookkeeping charges the thread issues first.
	MinDemand Dur `json:"min_demand,omitempty"`
}

// ClockJitter scales every Compute demand issued during the window by a
// factor drawn uniformly from [1-Frac, 1+Frac) using the injector's own
// seeded RNG (never the world's, so the workload's randomness is
// untouched).
type ClockJitter struct {
	Frac  float64 `json:"frac"`
	From  Dur     `json:"from,omitempty"`
	Until Dur     `json:"until,omitempty"`
}

// AnyInstance is the CrashInstance/StallInstance/DegradeInstance
// Instance value meaning "let the cluster injector pick a victim with
// its own seeded RNG" — the same instance for a given (plan, seed,
// fleet size) triple, whatever the shard count.
const AnyInstance = -1

// CrashInstance stops a fleet instance from serving at virtual time At:
// its queued requests are lost, in-flight responses are never delivered,
// and new connections are refused. If Restart is nonzero the instance
// comes back Restart later with cold session state (§5.5's uncaught
// error, scaled from one thread to one machine).
type CrashInstance struct {
	// Instance is the fleet index of the victim, or AnyInstance (-1)
	// for a seeded-random pick by the cluster injector.
	Instance int `json:"instance"`
	At       Dur `json:"at"`
	// Restart is the downtime; zero means the instance never returns.
	Restart Dur `json:"restart,omitempty"`
}

// StallInstance freezes a fleet instance's service during [From, Until):
// it keeps admitting requests but completes none until the window ends —
// the paper's §6.2 stall ("the system seemed to stop") writ large, the
// failure mode that poisons a merged SLO without tripping liveness.
type StallInstance struct {
	Instance int `json:"instance"`
	From     Dur `json:"from"`
	Until    Dur `json:"until"`
}

// DegradeInstance multiplies a fleet instance's service time by Factor
// during [From, Until) — a brownout: the instance stays up and passes
// health probes while quietly dragging the tail.
type DegradeInstance struct {
	Instance int     `json:"instance"`
	Factor   float64 `json:"factor"`
	From     Dur     `json:"from"`
	Until    Dur     `json:"until"`
}

// Load reads and parses a JSON fault plan from path.
func Load(path string) (Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Plan{}, err
	}
	p, err := Parse(data)
	if err != nil {
		return Plan{}, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}

// Parse decodes and validates a JSON fault plan. Unknown fields are
// rejected so a typo'd injector name fails loudly instead of silently
// injecting nothing.
func Parse(data []byte) (Plan, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var p Plan
	if err := dec.Decode(&p); err != nil {
		return Plan{}, fmt.Errorf("%w: %w", ErrInvalidPlan, err)
	}
	if err := p.Check(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

// ErrInvalidPlan is wrapped by every error Parse, Load, Check, and New
// return for a malformed or semantically invalid plan, so callers can
// distinguish "the plan is wrong" from I/O failures with errors.Is.
var ErrInvalidPlan = errors.New("fault: invalid plan")

// Check validates the plan: regexps compile, windows are ordered, and
// magnitudes are sane. All errors wrap ErrInvalidPlan. New performs the
// same validation.
func (p Plan) Check() error {
	if err := p.check(); err != nil {
		return fmt.Errorf("%w: %w", ErrInvalidPlan, err)
	}
	return nil
}

func (p Plan) check() error {
	window := func(what string, from, until Dur) error {
		if from.Duration < 0 || until.Duration < 0 {
			return fmt.Errorf("%s: negative window bound", what)
		}
		if until.Duration != 0 && until.Duration <= from.Duration {
			return fmt.Errorf("%s: until %s not after from %s", what, until, from)
		}
		return nil
	}
	for i, r := range p.LostNotify {
		what := fmt.Sprintf("lost_notify[%d]", i)
		if _, err := regexp.Compile(r.CV); err != nil {
			return fmt.Errorf("%s: bad cv pattern: %v", what, err)
		}
		if r.Count < 0 {
			return fmt.Errorf("%s: negative count", what)
		}
		if err := window(what, r.From, r.Until); err != nil {
			return err
		}
	}
	for i, r := range p.CrashThread {
		what := fmt.Sprintf("crash_thread[%d]", i)
		if _, err := regexp.Compile(r.Thread); err != nil {
			return fmt.Errorf("%s: bad thread pattern: %v", what, err)
		}
		if r.At.Duration < 0 {
			return fmt.Errorf("%s: negative at", what)
		}
	}
	for i, r := range p.ForkExhaustion {
		what := fmt.Sprintf("fork_exhaustion[%d]", i)
		if r.Max < 1 {
			return fmt.Errorf("%s: max %d must be at least 1", what, r.Max)
		}
		if r.Until.Duration == 0 {
			return fmt.Errorf("%s: until is required (the clamp must end)", what)
		}
		if err := window(what, r.From, r.Until); err != nil {
			return err
		}
	}
	for i, r := range p.StallThread {
		what := fmt.Sprintf("stall_thread[%d]", i)
		if _, err := regexp.Compile(r.Thread); err != nil {
			return fmt.Errorf("%s: bad thread pattern: %v", what, err)
		}
		if r.At.Duration < 0 || r.Stall.Duration <= 0 {
			return fmt.Errorf("%s: need at >= 0 and stall > 0", what)
		}
		if r.MinDemand.Duration < 0 {
			return fmt.Errorf("%s: negative min_demand", what)
		}
	}
	for i, r := range p.ClockJitter {
		what := fmt.Sprintf("clock_jitter[%d]", i)
		if r.Frac <= 0 || r.Frac >= 1 {
			return fmt.Errorf("%s: frac %v must be in (0, 1)", what, r.Frac)
		}
		if err := window(what, r.From, r.Until); err != nil {
			return err
		}
	}
	instance := func(what string, i int) error {
		if i < AnyInstance {
			return fmt.Errorf("%s: instance %d must be >= 0 (or %d for a seeded-random pick)", what, i, AnyInstance)
		}
		return nil
	}
	for i, r := range p.CrashInstance {
		what := fmt.Sprintf("crash_instance[%d]", i)
		if err := instance(what, r.Instance); err != nil {
			return err
		}
		if r.At.Duration < 0 {
			return fmt.Errorf("%s: negative at", what)
		}
		if r.Restart.Duration < 0 {
			return fmt.Errorf("%s: negative restart", what)
		}
	}
	for i, r := range p.StallInstance {
		what := fmt.Sprintf("stall_instance[%d]", i)
		if err := instance(what, r.Instance); err != nil {
			return err
		}
		if r.Until.Duration == 0 {
			return fmt.Errorf("%s: until is required (the stall must end)", what)
		}
		if err := window(what, r.From, r.Until); err != nil {
			return err
		}
	}
	for i, r := range p.DegradeInstance {
		what := fmt.Sprintf("degrade_instance[%d]", i)
		if err := instance(what, r.Instance); err != nil {
			return err
		}
		if r.Factor <= 1 {
			return fmt.Errorf("%s: factor %v must be > 1 (1 is no degradation)", what, r.Factor)
		}
		if r.Until.Duration == 0 {
			return fmt.Errorf("%s: until is required (the brownout must end)", what)
		}
		if err := window(what, r.From, r.Until); err != nil {
			return err
		}
	}
	return nil
}
