package sim

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/vclock"
)

func TestTryForkFailsAtLimit(t *testing.T) {
	cfg := testConfig()
	cfg.MaxThreads = 2
	w := NewWorld(cfg)
	defer w.Shutdown()
	var err1, err2 error
	w.Spawn("parent", PriorityNormal, func(th *Thread) any {
		c1, e := th.TryFork("c1", func(c *Thread) any {
			c.Compute(20 * vclock.Millisecond)
			return nil
		})
		err1 = e
		// Limit reached: old-PCR behavior raises the error instead of
		// waiting (§5.4).
		_, err2 = th.TryFork("c2", func(c *Thread) any { return nil })
		th.Join(c1)
		// After c1 exits, TryFork succeeds again.
		c3, e := th.TryFork("c3", func(c *Thread) any { return nil })
		if e != nil {
			t.Errorf("TryFork after exit failed: %v", e)
		}
		th.Join(c3)
		return nil
	})
	if out := w.Run(vclock.Time(vclock.Second)); out != OutcomeQuiescent {
		t.Fatalf("outcome = %v", out)
	}
	if err1 != nil {
		t.Fatalf("first TryFork failed: %v", err1)
	}
	if !errors.Is(err2, ErrNoThreads) {
		t.Fatalf("second TryFork error = %v, want ErrNoThreads", err2)
	}
}

func TestSetPriorityOfRunnableThread(t *testing.T) {
	w := NewWorld(testConfig())
	defer w.Shutdown()
	var order []string
	slow := w.Spawn("slow", PriorityLow, func(th *Thread) any {
		th.Compute(vclock.Millisecond)
		order = append(order, "slow")
		return nil
	})
	w.Spawn("normal", PriorityNormal, func(th *Thread) any {
		th.Compute(10 * vclock.Millisecond)
		order = append(order, "normal")
		return nil
	})
	// Mid-run, promote the low thread above normal: it should preempt.
	w.At(vclock.Time(2*vclock.Millisecond), func() {
		w.SetPriorityOf(slow, PriorityHigh)
	})
	w.Run(vclock.Time(vclock.Second))
	if !reflect.DeepEqual(order, []string{"slow", "normal"}) {
		t.Fatalf("order = %v, want promoted slow first", order)
	}
	if slow.Priority() != PriorityHigh {
		t.Fatalf("priority = %d", slow.Priority())
	}
}

func TestSetPriorityOfBlockedThread(t *testing.T) {
	w := NewWorld(testConfig())
	defer w.Shutdown()
	th := w.Spawn("sleeper", PriorityLow, func(th *Thread) any {
		th.Sleep(50 * vclock.Millisecond)
		return nil
	})
	w.At(vclock.Time(10*vclock.Millisecond), func() {
		w.SetPriorityOf(th, PriorityDaemon) // while blocked: no runq surgery
	})
	if out := w.Run(vclock.Time(vclock.Second)); out != OutcomeQuiescent {
		t.Fatalf("outcome = %v", out)
	}
	if th.Priority() != PriorityDaemon {
		t.Fatalf("priority = %d", th.Priority())
	}
}

func TestSetPriorityOfNoopAndInvalid(t *testing.T) {
	w := NewWorld(testConfig())
	defer w.Shutdown()
	th := w.Spawn("t", PriorityNormal, func(th *Thread) any {
		th.Sleep(vclock.Millisecond)
		return nil
	})
	w.SetPriorityOf(th, PriorityNormal) // same priority: no-op
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid priority")
		}
	}()
	w.SetPriorityOf(th, Priority(0))
}

func TestKilledAccessor(t *testing.T) {
	w := NewWorld(testConfig())
	th := w.Spawn("t", PriorityNormal, func(th *Thread) any {
		th.Block(BlockCV) // parked forever
		return nil
	})
	w.Run(vclock.Time(10 * vclock.Millisecond))
	if th.Killed() {
		t.Fatal("thread reported killed before shutdown")
	}
	w.Shutdown()
	if !th.Killed() {
		t.Fatal("thread not marked killed after shutdown")
	}
}

// TestBlockTimedExactIgnoresGranularity verifies the OS-level wait
// primitive used by socket reads.
func TestBlockTimedExactIgnoresGranularity(t *testing.T) {
	cfg := Config{SwitchCost: -1, TimeoutGranularity: 50 * vclock.Millisecond}
	w := NewWorld(cfg)
	defer w.Shutdown()
	var woke vclock.Time
	w.Spawn("reader", PriorityNormal, func(th *Thread) any {
		if !th.BlockTimedExact(BlockCV, 7*vclock.Millisecond) {
			t.Error("expected timeout")
		}
		woke = th.Now()
		return nil
	})
	w.Run(vclock.Time(vclock.Second))
	if woke != vclock.Time(7*vclock.Millisecond) {
		t.Fatalf("woke at %v, want exactly 7ms", woke)
	}
}

// TestBlockIOExact verifies device I/O completion timing.
func TestBlockIOExact(t *testing.T) {
	cfg := Config{SwitchCost: -1, TimeoutGranularity: 50 * vclock.Millisecond}
	w := NewWorld(cfg)
	defer w.Shutdown()
	var woke vclock.Time
	w.Spawn("io", PriorityNormal, func(th *Thread) any {
		th.BlockIO(3 * vclock.Millisecond)
		woke = th.Now()
		th.BlockIO(0) // no-op
		return nil
	})
	w.Run(vclock.Time(vclock.Second))
	if woke != vclock.Time(3*vclock.Millisecond) {
		t.Fatalf("woke at %v, want 3ms (granularity must not apply)", woke)
	}
}

// TestDirectedYieldForSliceEnds verifies the SystemDaemon's bounded
// donation: the boost ends after the slice even mid-compute.
func TestDirectedYieldForSliceEnds(t *testing.T) {
	w := NewWorld(testConfig())
	defer w.Shutdown()
	var loProgress vclock.Duration
	lo := w.Spawn("lo", PriorityLow, func(th *Thread) any {
		for i := 0; i < 1000; i++ {
			th.Compute(vclock.Millisecond)
			loProgress += vclock.Millisecond
		}
		return nil
	})
	w.Spawn("donor", PriorityNormal, func(th *Thread) any {
		th.Compute(vclock.Millisecond)
		th.DirectedYieldFor(lo, 5*vclock.Millisecond)
		// After the donated slice, strict priority puts us back.
		th.Compute(100 * vclock.Millisecond)
		w.Stop()
		return nil
	})
	w.Run(vclock.Time(vclock.Second))
	if loProgress < 4*vclock.Millisecond || loProgress > 6*vclock.Millisecond {
		t.Fatalf("lo progressed %v during a 5ms donation, want ~5ms", loProgress)
	}
}

// TestMPSpuriousConflict reproduces Birrell's original multiprocessor
// spurious lock conflict: on 2 CPUs the notified thread starts on the
// other processor while the notifier still holds the lock — unless the
// reschedule is deferred. (The §6.1 fix "prevents the problem both in
// the case of interpriority notifications and on multiprocessors.")
func TestMPSpuriousConflictSetup(t *testing.T) {
	// Verified at the monitor level in package monitor; here we check the
	// kernel schedules onto both CPUs concurrently at equal priority.
	cfg := testConfig()
	cfg.CPUs = 2
	w := NewWorld(cfg)
	defer w.Shutdown()
	var aDone, bDone vclock.Time
	w.Spawn("a", PriorityNormal, func(th *Thread) any {
		th.Compute(50 * vclock.Millisecond)
		aDone = th.Now()
		return nil
	})
	w.Spawn("b", PriorityNormal, func(th *Thread) any {
		th.Compute(50 * vclock.Millisecond)
		bDone = th.Now()
		return nil
	})
	w.Run(vclock.Time(vclock.Second))
	if aDone != bDone || aDone != vclock.Time(50*vclock.Millisecond) {
		t.Fatalf("2-CPU overlap broken: a=%v b=%v", aDone, bDone)
	}
}

// TestForkBlocksWithBlockFork pins down the §5.4 "wait in the fork
// implementation" path: at the MaxThreads bound the forking thread is
// parked with BlockFork (observed mid-wait), and it resumes as soon as a
// thread exits.
func TestForkBlocksWithBlockFork(t *testing.T) {
	cfg := testConfig()
	cfg.MaxThreads = 2
	w := NewWorld(cfg)
	defer w.Shutdown()
	var parent *Thread
	var resumedAt vclock.Time
	parent = w.Spawn("parent", PriorityNormal, func(th *Thread) any {
		c1 := th.Fork("c1", func(c *Thread) any {
			c.Compute(30 * vclock.Millisecond)
			return nil
		})
		c1.Detach()
		c2 := th.Fork("c2", func(c *Thread) any { return nil }) // must wait for c1
		resumedAt = th.Now()
		th.Join(c2)
		return nil
	})
	// Mid-wait, the parent must be parked specifically on BlockFork.
	var stateMidWait State
	var reasonMidWait int
	w.At(vclock.Time(10*vclock.Millisecond), func() {
		stateMidWait = parent.State()
		reasonMidWait = parent.BlockedOn()
	})
	if out := w.Run(vclock.Time(vclock.Second)); out != OutcomeQuiescent {
		t.Fatalf("outcome = %v", out)
	}
	if stateMidWait != StateBlocked || reasonMidWait != BlockFork {
		t.Fatalf("mid-wait parent state = %v blocked-on %s, want blocked on %s",
			stateMidWait, BlockReasonName(reasonMidWait), BlockReasonName(BlockFork))
	}
	if resumedAt != vclock.Time(30*vclock.Millisecond) {
		t.Fatalf("fork resumed at %v, want 30ms (c1's exit)", resumedAt)
	}
}

// TestKillThreadDeliversPanic: the fault-injection kill primitive wakes a
// blocked victim and unwinds it as an ordinary application panic, so
// rejuvenation wrappers see a PanicError, not a silent disappearance.
func TestKillThreadDeliversPanic(t *testing.T) {
	w := NewWorld(testConfig())
	defer w.Shutdown()
	victim := w.Spawn("victim", PriorityNormal, func(th *Thread) any {
		th.Block(BlockCV) // parked forever unless killed
		return nil
	})
	w.At(vclock.Time(10*vclock.Millisecond), func() {
		if !w.KillThread(victim, "injected boom") {
			t.Error("KillThread refused a live blocked victim")
		}
	})
	if out := w.Run(vclock.Time(vclock.Second)); out != OutcomeQuiescent {
		t.Fatalf("outcome = %v", out)
	}
	var pe *PanicError
	if !errors.As(victim.Err(), &pe) || !strings.Contains(pe.Error(), "injected boom") {
		t.Fatalf("victim error = %v, want PanicError carrying the injected value", victim.Err())
	}
	if victim.Killed() {
		t.Fatal("injected crash must read as an application error, not a Shutdown kill")
	}
	if w.KillThread(victim, nil) {
		t.Fatal("KillThread succeeded on a dead thread")
	}
}

// TestSetMaxThreadsAdmitsWaiters: raising the bound wakes exactly the
// FORKs the new bound allows, in FIFO order; n <= 0 removes the bound.
func TestSetMaxThreadsAdmitsWaiters(t *testing.T) {
	cfg := testConfig()
	cfg.MaxThreads = 1
	w := NewWorld(cfg)
	defer w.Shutdown()
	var forked []vclock.Time
	w.Spawn("parent", PriorityNormal, func(th *Thread) any {
		for i := 0; i < 3; i++ {
			c := th.Fork("c", func(c *Thread) any {
				c.Block(BlockCV) // stays live so the bound stays saturated
				return nil
			})
			c.Detach()
			forked = append(forked, th.Now())
		}
		return nil
	})
	// parent alone saturates MaxThreads=1, so even the first FORK waits.
	w.At(vclock.Time(20*vclock.Millisecond), func() { w.SetMaxThreads(2) })
	w.At(vclock.Time(40*vclock.Millisecond), func() { w.SetMaxThreads(0) }) // unbounded
	w.Run(vclock.Time(vclock.Second))
	want := []vclock.Time{
		vclock.Time(20 * vclock.Millisecond),
		vclock.Time(40 * vclock.Millisecond),
		vclock.Time(40 * vclock.Millisecond),
	}
	if !reflect.DeepEqual(forked, want) {
		t.Fatalf("fork admission times = %v, want %v", forked, want)
	}
	if w.Config().MaxThreads != 0 {
		t.Fatalf("MaxThreads = %d after removing the bound", w.Config().MaxThreads)
	}
}

// TestRunResetsDeadlocked: a later Run must not report the previous
// Run's deadlocked set (the stale-verdict bug).
func TestRunResetsDeadlocked(t *testing.T) {
	w := NewWorld(testConfig())
	defer w.Shutdown()
	stuck := w.Spawn("stuck", PriorityNormal, func(th *Thread) any {
		th.Block(BlockMutex)
		return nil
	})
	if out := w.Run(vclock.Time(vclock.Second)); out != OutcomeDeadlock {
		t.Fatalf("first run outcome = %v, want deadlock", out)
	}
	if len(w.Deadlocked()) != 1 {
		t.Fatalf("deadlocked = %v", w.Deadlocked())
	}
	w.WakeIfBlocked(stuck, nil)
	if out := w.Run(vclock.Time(2 * vclock.Second)); out != OutcomeQuiescent {
		t.Fatalf("second run outcome = %v, want quiescent", out)
	}
	if len(w.Deadlocked()) != 0 {
		t.Fatalf("stale deadlocked set survived a clean Run: %v", w.Deadlocked())
	}
}

func TestDumpState(t *testing.T) {
	w := NewWorld(testConfig())
	defer w.Shutdown()
	w.Spawn("runner", PriorityNormal, func(th *Thread) any {
		th.Compute(100 * vclock.Millisecond)
		return nil
	})
	w.Spawn("stuck", PriorityHigh, func(th *Thread) any {
		th.Block(BlockMutex)
		return nil
	})
	w.Spawn("napping", PriorityDaemon, func(th *Thread) any {
		th.Sleep(500 * vclock.Millisecond)
		return nil
	})
	w.Run(vclock.Time(10 * vclock.Millisecond))
	var sb strings.Builder
	w.DumpState(&sb)
	out := sb.String()
	for _, want := range []string{"3 live thread(s)", "runner", "stuck", "blocked-on=mutex since 0.000000s (forever)", "napping", "blocked-on=sleep since 0.000000s (timed)", "cpu0"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}
