// Package sim is a deterministic discrete-event simulator of the PCR
// (Portable Common Runtime) thread system described in "Using Threads in
// Interactive Systems: A Case Study" (Hauser et al., SOSP '93).
//
// It provides the thread model of §2 of the paper: multiple lightweight,
// pre-emptively scheduled threads sharing an address space, FORK/JOIN/
// DETACH, seven strict priorities with round-robin within a priority, a
// 50 ms default scheduling quantum, preemption when a higher-priority
// thread becomes runnable, YIELD, the paper's YieldButNotToMe and directed
// yield, and the high-priority SystemDaemon that donates random timeslices
// to overcome stable priority inversions (§6.2).
//
// Simulated threads are goroutines, but exactly one goroutine — a thread
// or the driver loop — runs at a time, enforced by unbuffered channel
// handoff. All time is virtual (package vclock), so every run is exactly
// reproducible and the instrumentation has true microsecond resolution,
// like the instrumented PCR the paper's authors built.
//
// A thread's body interacts with the world only through its *Thread
// handle: Compute consumes virtual CPU, Sleep blocks for virtual time,
// Fork/Join create and reap children, and package monitor supplies Mesa
// monitors and condition variables on top of the Block/Wake primitives.
// Bodies must reach a sim call on every code path of every loop;
// a body that spins without one would hang the (real) driver.
package sim

import (
	"repro/internal/trace"
	"repro/internal/vclock"
)

// Priority is a PCR thread priority. There are 7 priorities; higher values
// run first. The default is the middle priority, 4. By convention (paper
// §2, §3) lower priorities are used for long-running background work and
// higher priorities for device- and UI-related threads.
type Priority int

// The priority levels of PCR, as used by Cedar and GVX.
const (
	PriorityMin        Priority = 1
	PriorityBackground Priority = 2
	PriorityLow        Priority = 3
	PriorityNormal     Priority = 4 // the default
	PriorityHigh       Priority = 5
	PriorityDaemon     Priority = 6 // SystemDaemon, GC daemon
	PriorityInterrupt  Priority = 7
	NumPriorities               = 7
)

func (p Priority) valid() bool { return p >= PriorityMin && p <= PriorityInterrupt }

// Valid reports whether p is one of the seven PCR priorities.
func (p Priority) Valid() bool { return p.valid() }

// State is a thread's lifecycle state.
type State int

// Thread states.
const (
	StateNew State = iota
	StateRunnable
	StateRunning
	StateBlocked
	StateDead
)

var stateNames = [...]string{"new", "runnable", "running", "blocked", "dead"}

// String returns the lowercase name of s.
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return "invalid"
}

// Proc is a thread body. Its return value is delivered to JOIN. The
// thread handle gives the body access to all thread operations.
type Proc func(t *Thread) any

// Config parameterizes a World. The zero value is usable; Defaults fills
// in the paper's PCR operating point.
type Config struct {
	// CPUs is the number of simulated processors. Default 1: the paper
	// emphasizes the uniprocessor heritage of Cedar and GVX.
	CPUs int

	// Quantum is the scheduling timeslice. PCR's was 50 ms, a value §6.3
	// shows is "not to be taken lightly".
	Quantum vclock.Duration

	// SwitchCost is charged each time a CPU switches between different
	// threads ("less than 50 microseconds ... on a SPARCstation-2").
	// Zero selects the 50 µs default; a negative value disables the
	// charge entirely (useful in tests that assert exact timings).
	SwitchCost vclock.Duration

	// TimeoutGranularity rounds up CV timeouts and sleeps, modeling the
	// 50 ms CV-timeout granularity of PCR.
	TimeoutGranularity vclock.Duration

	// MaxThreads, when positive, bounds the number of live threads. A
	// FORK past the bound waits for resources, the "more recent"
	// behavior of §5.4 (earlier PCRs raised an error instead).
	MaxThreads int

	// Trace receives every thread event. Nil means discard.
	Trace trace.Sink

	// Hooks bundles the world's observe-and-fault seams: the Probe
	// counters plus every On* callback. The zero value (all nil) is the
	// default and leaves the world byte-identical to an unhooked one.
	Hooks Hooks

	// Seed seeds the world's deterministic RNG (SystemDaemon victim
	// choice and workload jitter).
	Seed int64

	// SystemDaemon enables the priority-6 sleeper that "regularly wakes
	// up and donates, using a directed yield, a small timeslice to
	// another thread chosen at random" (§6.2).
	SystemDaemon bool

	// SystemDaemonPeriod is how often the daemon wakes. Default 100 ms.
	SystemDaemonPeriod vclock.Duration

	// SystemDaemonSlice is the donated timeslice. Default 5 ms.
	SystemDaemonSlice vclock.Duration
}

// Hooks is Config's observability-and-fault surface, one nested struct
// instead of loose Config fields so callers can pass a whole seam set
// (probe + fault hooks + schedule hook + sink attachment) through
// intermediate layers in a single value.
//
// The hooks divide into two semantic classes:
//
//   - Observe-only hooks — Probe, OnFork, OnWorld — must never change
//     the simulation: a world runs byte-identically with or without
//     them, which is what lets the experiment harness attach per-run
//     metrics and profiles without invalidating golden outputs.
//
//   - Fault/steer hooks — OnNotify, OnCompute, OnSchedule — are allowed
//     to change what the simulation does, but only within the model's
//     legal envelope (drop a NOTIFY, stretch a Compute, pick another
//     equal-priority thread). They are how packages fault and explore
//     perturb a run on purpose.
//
// Every field defaults to nil and a nil hook is never called, so the
// zero Hooks is byte-identical to a world built before the seams
// existed.
type Hooks struct {
	// Probe, when non-nil, accumulates coarse observability counters
	// (worlds created, driver events processed, virtual time simulated)
	// across every world configured with it. Unlike Config.Trace it is
	// safe to share between worlds running on different goroutines; the
	// experiment harness uses one Probe per experiment run. Observe-only.
	Probe *Probe

	// OnWorld, when non-nil, is consulted once per world at the end of
	// NewWorld, before any thread — the SystemDaemon included — exists.
	// A non-nil returned sink is attached alongside Config.Trace (via
	// trace.Tee) for the world's whole lifetime, which is how the
	// experiment harness hangs a per-world profiler on every world a run
	// creates, wherever in the stack it is built. Observe-only: the
	// returned sink sees every event but must not call into the world
	// while recording.
	OnWorld func(w *World) trace.Sink

	// OnNotify, when non-nil, is consulted before every NOTIFY (thread or
	// driver context) on a condition variable; cv is the CV's debug name.
	// Returning true swallows the notification — no waiter wakes, no
	// stats or trace records are made — modeling the deleted-NOTIFY bugs
	// of §5.3 that timeouts then paper over. Package monitor honors the
	// hook; it does not apply to BROADCAST. Fault hook.
	OnNotify func(cv string) (drop bool)

	// OnFork, when non-nil, observes every thread creation (Spawn, FORK,
	// TryFork) after the child exists; parent is nil for Spawn. It must
	// not call into the world. Observe-only.
	OnFork func(parent, child *Thread)

	// OnCompute, when non-nil, maps every Compute demand to the duration
	// actually charged, enabling seeded clock jitter and induced stalls
	// (§6.2) without touching workload code. Returning d unchanged is a
	// no-op; non-positive results skip the Compute entirely. Fault hook.
	OnCompute func(t *Thread, d vclock.Duration) vclock.Duration

	// OnSchedule, when non-nil, is consulted at every scheduling decision
	// point where more than one dispatch choice is legal: installing a
	// thread on a CPU when several threads of the winning priority are
	// ready, and end-of-quantum round-robin rotation. The hook returns an
	// index into Decision.Candidates; 0 (or any out-of-range value)
	// selects Candidates[0], the schedule the simulator would have chosen
	// on its own. Because every candidate has the same priority as the
	// default pick, any schedule the hook produces is one legal PCR
	// execution — strict-priority dispatch is preserved by construction.
	// Package explore drives this seam to enumerate interleavings; a nil
	// hook leaves the scheduler byte-identical to one built before the
	// seam existed. Steering hook.
	OnSchedule func(d Decision) int

	// Policy, when non-nil, replaces the built-in pcr-rr dispatch
	// discipline (see the Policy interface and package sched). A nil
	// Policy — and the PCRPolicy value itself — selects the default and
	// keeps the dispatcher byte-identical to a world built before the
	// seam existed. When both Policy and OnSchedule are set, the hook is
	// layered over the policy as an adapter: the hook sees every decision
	// first and defers to the policy on 0/out-of-range answers, so
	// explore can steer any policy's schedule. A Policy instance may hold
	// per-thread state and must not be shared between worlds. Steering
	// hook.
	Policy Policy
}

// Decision is one scheduling decision point offered to Config.OnSchedule.
// Seq numbers decision points 0,1,2,... in the order the driver reaches
// them; for a fixed world configuration and hook behavior the sequence is
// fully deterministic, which is what makes a recorded decision trace
// replayable.
type Decision struct {
	// Seq is the world-wide decision-point sequence number.
	Seq int64
	// CPU is the index of the CPU being dispatched.
	CPU int
	// Now is the virtual time of the decision point.
	Now vclock.Time
	// Candidates are the legal picks, all on the same ready-queue level
	// (the same priority under the default pcr-rr policy); Candidates[0]
	// is the default (the choice an unhooked scheduler makes). The slice
	// is reused between calls — hooks must not retain it.
	Candidates []*Thread
}

// Defaults returns cfg with unset fields replaced by the paper's PCR
// operating point.
func (cfg Config) Defaults() Config {
	if cfg.CPUs <= 0 {
		cfg.CPUs = 1
	}
	if cfg.Quantum <= 0 {
		cfg.Quantum = 50 * vclock.Millisecond
	}
	if cfg.SwitchCost < 0 {
		cfg.SwitchCost = 0
	} else if cfg.SwitchCost == 0 {
		cfg.SwitchCost = 50 * vclock.Microsecond
	}
	if cfg.TimeoutGranularity <= 0 {
		cfg.TimeoutGranularity = 50 * vclock.Millisecond
	}
	if cfg.Trace == nil {
		cfg.Trace = trace.Discard
	}
	if cfg.SystemDaemonPeriod <= 0 {
		cfg.SystemDaemonPeriod = 100 * vclock.Millisecond
	}
	if cfg.SystemDaemonSlice <= 0 {
		cfg.SystemDaemonSlice = 5 * vclock.Millisecond
	}
	return cfg
}

// Block reasons, re-exported from package trace for callers of Block and
// BlockTimed.
const (
	BlockMutex = trace.BlockMutex
	BlockCV    = trace.BlockCV
	BlockJoin  = trace.BlockJoin
	BlockSleep = trace.BlockSleep
	BlockFork  = trace.BlockFork
)

var blockReasonNames = [...]string{
	BlockMutex: "mutex",
	BlockCV:    "cv",
	BlockJoin:  "join",
	BlockSleep: "sleep",
	BlockFork:  "fork",
}

// BlockReasonName returns the lowercase name of a Block* reason, or
// "unknown" for values outside the known set. DumpState and the fault
// watchdog's state dumps use it.
func BlockReasonName(r int) string {
	if r >= 0 && r < len(blockReasonNames) {
		return blockReasonNames[r]
	}
	return "unknown"
}

// Outcome says why Run returned.
type Outcome int

// Run outcomes.
const (
	// OutcomeHorizon: the time horizon was reached with activity pending.
	OutcomeHorizon Outcome = iota
	// OutcomeQuiescent: no events and no runnable threads remain, and no
	// thread is blocked (every thread exited).
	OutcomeQuiescent
	// OutcomeDeadlock: no events and no runnable threads remain but
	// blocked threads exist — they can never be woken.
	OutcomeDeadlock
	// OutcomeStopped: Stop was called.
	OutcomeStopped
)

var outcomeNames = [...]string{"horizon", "quiescent", "deadlock", "stopped"}

// String returns the lowercase name of o.
func (o Outcome) String() string {
	if int(o) < len(outcomeNames) {
		return outcomeNames[o]
	}
	return "invalid"
}
