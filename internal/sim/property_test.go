package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/trace"
	"repro/internal/vclock"
)

// TestSchedulerChaosProperty throws a random soup of threads at the
// kernel — computing, sleeping, yielding, forking, joining, changing
// priority, blocking with timeouts — and checks the invariants that must
// survive anything:
//
//   - the trace clock never runs backwards;
//   - every fork has at most one exit, and exits never exceed forks;
//   - every thread that was created eventually exits (the bodies are
//     finite), i.e. the run quiesces before the horizon;
//   - with the SystemDaemon enabled, no runnable thread starves forever.
func TestSchedulerChaosProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 2 + int(nRaw%8)
		var buf trace.Buffer
		w := NewWorld(Config{Seed: seed, Trace: &buf, SystemDaemon: true})
		rng := rand.New(rand.NewSource(seed))

		var mkBody func(depth int) Proc
		mkBody = func(depth int) Proc {
			ops := 1 + rng.Intn(12)
			type op struct {
				kind int
				d    vclock.Duration
			}
			plan := make([]op, ops)
			for i := range plan {
				plan[i] = op{kind: rng.Intn(6), d: vclock.Duration(rng.Intn(5000)) * vclock.Microsecond}
			}
			pri := Priority(1 + rng.Intn(7))
			canFork := depth < 2
			return func(th *Thread) any {
				for _, o := range plan {
					switch o.kind {
					case 0:
						th.Compute(o.d)
					case 1:
						th.Sleep(o.d)
					case 2:
						th.Yield()
					case 3:
						th.SetPriority(pri)
					case 4:
						if canFork {
							c := th.Fork("child", mkBody(depth+1))
							if o.d%2 == 0 {
								th.Join(c)
							} else {
								c.Detach()
							}
						} else {
							th.Compute(o.d)
						}
					case 5:
						th.BlockTimed(BlockCV, o.d) // always times out
					}
				}
				return nil
			}
		}
		for i := 0; i < n; i++ {
			w.Spawn("root", Priority(1+rng.Intn(7)), mkBody(0))
		}
		out := w.Run(vclock.Time(10 * vclock.Minute))
		w.Shutdown()

		// Invariants over the trace.
		var last vclock.Time
		forks, exits := 0, 0
		for _, ev := range buf.Events {
			if ev.Time < last {
				return false // clock ran backwards
			}
			last = ev.Time
			switch ev.Kind {
			case trace.KindFork:
				forks++
			case trace.KindExit:
				exits++
			}
			if exits > forks {
				return false
			}
		}
		// The SystemDaemon itself never exits, so quiescence is not
		// expected; but every non-daemon thread must have exited by the
		// (enormous) horizon. Daemon = 1 live thread.
		if out == OutcomeDeadlock {
			return false
		}
		return forks-exits <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestRunQueueConservation: a thread is never simultaneously on a CPU and
// in the run queue, and the number of live threads reported by the world
// always matches forks minus exits observed in the trace.
func TestRunQueueConservation(t *testing.T) {
	var buf trace.Buffer
	w := NewWorld(Config{Seed: 5, Trace: &buf})
	defer w.Shutdown()
	for i := 0; i < 6; i++ {
		w.Spawn("worker", Priority(1+i%7), func(th *Thread) any {
			for j := 0; j < 30; j++ {
				th.Compute(vclock.Duration(1+j%7) * vclock.Millisecond)
				th.Yield()
			}
			return nil
		})
	}
	// Probe the live count against the trace at several instants.
	for _, at := range []vclock.Duration{10, 50, 200, 800} {
		at := at
		w.At(vclock.Time(at*vclock.Millisecond), func() {
			forks, exits := 0, 0
			for _, ev := range buf.Events {
				switch ev.Kind {
				case trace.KindFork:
					forks++
				case trace.KindExit:
					exits++
				}
			}
			if w.LiveThreads() != forks-exits {
				t.Errorf("at %v: live=%d but trace says %d-%d=%d", w.Now(), w.LiveThreads(), forks, exits, forks-exits)
			}
		})
	}
	if out := w.Run(vclock.Time(vclock.Minute)); out != OutcomeQuiescent {
		t.Fatalf("outcome = %v", out)
	}
}

// TestMaxLiveNeverExceedsLimit: the §5.4 thread limit is a hard bound.
func TestMaxLiveNeverExceedsLimit(t *testing.T) {
	f := func(seed int64, limRaw uint8) bool {
		limit := 2 + int(limRaw%6)
		cfg := Config{Seed: seed, MaxThreads: limit, SwitchCost: -1, TimeoutGranularity: 1}
		var buf trace.Buffer
		cfg.Trace = &buf
		w := NewWorld(cfg)
		defer w.Shutdown()
		w.Spawn("spawner", PriorityNormal, func(th *Thread) any {
			for i := 0; i < 20; i++ {
				c := th.Fork("c", func(c *Thread) any {
					c.Compute(vclock.Duration(1+i%3) * vclock.Millisecond)
					return nil
				})
				c.Detach()
			}
			return nil
		})
		w.Run(vclock.Time(vclock.Minute))
		live, maxLive := 0, 0
		for _, ev := range buf.Events {
			switch ev.Kind {
			case trace.KindFork:
				live++
			case trace.KindExit:
				live--
			}
			if live > maxLive {
				maxLive = live
			}
		}
		return maxLive <= limit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
