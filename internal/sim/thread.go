package sim

import (
	"fmt"

	"repro/internal/eventq"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// killSignal is panicked into a thread goroutine by Shutdown.
type killSignalT struct{}

var killSignal any = killSignalT{}

// PanicError wraps a panic value recovered from a thread body, the
// simulator's equivalent of Mesa's "uncaught errors" that motivate the
// task-rejuvenation paradigm (§4.5).
type PanicError struct {
	Thread string
	Value  any
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("sim: thread %q died of uncaught error: %v", e.Thread, e.Value)
}

// yieldKind describes a pending reschedule request set by a thread before
// it parks.
type yieldKind int

const (
	yieldNone yieldKind = iota
	yieldPlain
	yieldButNotToMe
	yieldDirected
	yieldPoll // re-evaluate scheduling only (SetPriority)
)

// Thread is one simulated PCR thread. All methods except the accessors
// must be called from the thread's own body (thread context). The zero
// value is not usable; threads are created by World.Spawn and
// Thread.Fork.
type Thread struct {
	w     *World
	id    int32
	name  string
	pri   Priority
	state State
	gen   int // fork generation: 0 for spawned roots

	cpu int // index of the CPU running this thread, or -1

	// Intrusive ready-queue linkage: threads are spliced directly into
	// their level's FIFO (World.readyHead/readyTail), so enqueue and
	// dequeue are pointer writes with no per-operation allocation. level
	// is the queue the thread was last enqueued on — always equal to pri
	// under the default pcr-rr policy, possibly remapped by a scheduling
	// Policy (Level) otherwise.
	qnext, qprev *Thread
	level        Priority

	// Scheduling-policy metadata, declared by workloads and consumed by
	// deadline-, size- and class-aware policies (package sched). The
	// default pcr-rr policy never reads them.
	deadline   vclock.Time     // absolute completion deadline; 0 = none
	serviceEst vclock.Duration // expected remaining service demand; 0 = unknown
	sloClass   string          // SLO class label ("interactive", "batch", ...)

	// Virtual CPU demand. When positive, a completion event is scheduled
	// while the thread occupies a CPU. completionFn is the pre-bound
	// completion callback, allocated once at thread creation.
	computeLeft  vclock.Duration
	grantStart   vclock.Time
	completion   eventq.Handle
	completionFn func()

	// Pending reschedule request, consumed by the driver at park.
	yieldReq    yieldKind
	yieldTarget *Thread
	yieldSlice  vclock.Duration // cap for DirectedYieldFor; 0 = rest of slice

	blockReason int
	blockSince  vclock.Time // when the current block began (DumpState)
	wakeTimer   eventq.Handle
	wakeFn      func() // pre-bound timeout callback, allocated once
	timedOut    bool

	// Pending fault injection (World.KillThread): the thread panics with
	// injected at its next dispatch.
	injected    any
	hasInjected bool

	// fork/join linkage
	detached bool
	joined   bool
	joiner   *Thread
	finished bool
	result   any
	err      error

	body    Proc
	resume  chan struct{}
	started bool
	killed  bool
}

// ID returns the thread's world-unique identifier (also used in traces).
func (t *Thread) ID() int32 { return t.id }

// Name returns the thread's debug name.
func (t *Thread) Name() string { return t.name }

// Priority returns the thread's current priority.
func (t *Thread) Priority() Priority { return t.pri }

// State returns the thread's current lifecycle state.
func (t *Thread) State() State { return t.state }

// Deadline returns the thread's absolute completion deadline, or 0 when
// none has been declared.
func (t *Thread) Deadline() vclock.Time { return t.deadline }

// SetDeadline declares the thread's absolute completion deadline (0
// clears it). Deadline-aware policies (edf, hybrid) order same-level
// candidates by it; the default policy ignores it. Callable from thread
// or driver context — workload arrival injectors stamp the deadline of
// the oldest pending request; the new value takes effect at the next
// scheduling decision.
func (t *Thread) SetDeadline(d vclock.Time) { t.deadline = d }

// ServiceEstimate returns the declared expected remaining service
// demand, or 0 when unknown.
func (t *Thread) ServiceEstimate() vclock.Duration { return t.serviceEst }

// SetServiceEstimate declares the expected remaining service demand (0
// clears it). Size-aware policies (sjf) order candidates by it. Callable
// from thread or driver context.
func (t *Thread) SetServiceEstimate(d vclock.Duration) { t.serviceEst = d }

// SLOClass returns the thread's SLO class label, or "" when none is set.
func (t *Thread) SLOClass() string { return t.sloClass }

// SetSLOClass declares the thread's SLO class label. Class-aware
// policies (hybrid) and the per-class latency breakdowns key on it.
func (t *Thread) SetSLOClass(class string) { t.sloClass = class }

// Generation returns the fork depth: 0 for threads created with Spawn,
// parent+1 for forked threads. Section 3 of the paper observed that "none
// of our benchmarks exhibited forking generations greater than 2".
func (t *Thread) Generation() int { return t.gen }

// Err returns the uncaught error that killed the thread, if any.
func (t *Thread) Err() error { return t.err }

// Killed reports whether the world is tearing this thread down
// (World.Shutdown). Bodies that recover panics for their own purposes —
// task rejuvenation, most notably — must re-panic when Killed is true so
// the teardown can complete:
//
//	if r := recover(); r != nil {
//		if t.Killed() {
//			panic(r)
//		}
//		// ... handle the application error
//	}
func (t *Thread) Killed() bool { return t.killed }

// BlockedOn returns the Block* reason the thread is currently blocked
// for, or -1 if it is not blocked. External wakers use it to avoid
// disturbing a thread that is blocked on something else (e.g. a monitor
// mutex) than the event they deliver.
func (t *Thread) BlockedOn() int {
	if t.state != StateBlocked {
		return -1
	}
	return t.blockReason
}

// World returns the world the thread belongs to.
func (t *Thread) World() *World { return t.w }

// Now returns the current virtual time.
func (t *Thread) Now() vclock.Time { return t.w.clock }

// String implements fmt.Stringer.
func (t *Thread) String() string {
	return fmt.Sprintf("t%d(%s pri=%d %v)", t.id, t.name, t.pri, t.state)
}

// main is the goroutine body wrapping the thread's Proc.
func (t *Thread) main() {
	defer func() {
		if r := recover(); r != nil {
			if r == killSignal {
				t.finished = true
				t.w.yield <- t // hand control back to Shutdown
				return
			}
			// An uncaught error: the thread dies (paper §4.5); JOIN
			// observes the error.
			t.exit(nil, &PanicError{Thread: t.name, Value: r})
			t.w.yield <- t
			return
		}
	}()
	<-t.resume // first dispatch
	t.started = true
	if t.killed {
		panic(killSignal)
	}
	if t.hasInjected {
		t.hasInjected = false
		panic(t.injected)
	}
	res := t.body(t)
	t.exit(res, nil)
	t.w.yield <- t // final handoff; goroutine ends
}

// exit performs end-of-life bookkeeping in thread context (which is
// driver-exclusive, so direct mutation is safe).
func (t *Thread) exit(result any, err error) {
	w := t.w
	t.result, t.err = result, err
	t.finished = true
	t.state = StateDead
	t.computeLeft = 0
	w.liveCount--
	detachedFlag := int64(0)
	if t.detached {
		detachedFlag = 1
	}
	w.record(trace.Event{Time: w.clock, Kind: trace.KindExit, Thread: t.id, Arg: detachedFlag})
	if t.joiner != nil {
		w.WakeIfBlocked(t.joiner, t)
		t.joiner = nil
	}
	// A thread slot freed: admit one fork waiter (§5.4).
	if len(w.forkWaiters) > 0 {
		waiter := w.forkWaiters[0]
		w.forkWaiters = w.forkWaiters[1:]
		w.WakeIfBlocked(waiter, t)
	}
}

// park transfers control to the driver and blocks until the driver
// resumes this thread. Every operation that consumes time or gives up the
// CPU funnels through here.
func (t *Thread) park() {
	t.w.yield <- t
	<-t.resume
	if t.killed {
		panic(killSignal)
	}
	if t.hasInjected {
		t.hasInjected = false
		panic(t.injected)
	}
}

// Compute consumes d of virtual CPU time. The thread may be preempted and
// rescheduled arbitrarily many times before Compute returns. Non-positive
// d returns immediately.
func (t *Thread) Compute(d vclock.Duration) {
	if d <= 0 {
		return
	}
	if f := t.w.cfg.Hooks.OnCompute; f != nil {
		if d = f(t, d); d <= 0 {
			return
		}
	}
	w := t.w
	// Fast path: a running thread with no runnable competitor and no
	// intervening event can consume its demand by advancing the clock in
	// place, skipping two goroutine handoffs and a heap round-trip. This
	// is legal exactly when nothing could observe the difference: no
	// thread is ready (readyMask == 0 — an idle peer CPU stays idle), no
	// event fires at or before the completion instant (strict >, so
	// same-timestamp FIFO order survives; the quantum-expiry and any
	// other-CPU completion events are in the queue and so bound `end`),
	// the current Run's horizon is not crossed, and no Stop is pending.
	// The bumped eventsProcessed stands in for the completion event the
	// slow path would have popped, keeping event counts byte-identical.
	if t.computeLeft == 0 && t.state == StateRunning && w.readyMask == 0 && !w.stopped {
		if end := w.clock.Add(d); end <= w.horizon && w.evq.NextTime() > end {
			w.eventsProcessed++
			w.clock = end
			return
		}
	}
	t.computeLeft += d
	for t.computeLeft > 0 {
		t.park()
	}
}

// Block parks the thread until some other agent calls
// World.WakeIfBlocked. reason is one of the Block* constants and is
// recorded in the trace.
func (t *Thread) Block(reason int) {
	t.blockAt(reason, vclock.Never)
}

// BlockTimed parks the thread until woken or until d elapses, whichever
// comes first, and reports whether the timeout fired. The duration is
// rounded up to the world's timeout granularity (50 ms in PCR), which is
// why §3 of the paper sees CV wait times quantized at 50 ms.
func (t *Thread) BlockTimed(reason int, d vclock.Duration) (timedOut bool) {
	if d < 0 {
		d = 0
	}
	d = d.RoundUp(t.w.cfg.TimeoutGranularity)
	return t.blockAt(reason, t.w.clock.Add(d))
}

func (t *Thread) blockAt(reason int, deadline vclock.Time) (timedOut bool) {
	w := t.w
	t.checkThreadContext("Block")
	t.blockReason = reason
	t.blockSince = w.clock
	t.timedOut = false
	t.state = StateBlocked
	w.record(trace.Event{Time: w.clock, Kind: trace.KindBlock, Thread: t.id, Aux: int64(reason)})
	if deadline != vclock.Never {
		t.wakeTimer = w.evq.Schedule(deadline, t.wakeFn)
	}
	t.park()
	return t.timedOut
}

// Sleep blocks the thread for d of virtual time (rounded up to the
// timeout granularity). It is the primitive under the sleeper and
// one-shot paradigms.
func (t *Thread) Sleep(d vclock.Duration) {
	if d <= 0 {
		return
	}
	t.w.record(trace.Event{Time: t.w.clock, Kind: trace.KindSleep, Thread: t.id, Aux: int64(d)})
	t.BlockTimed(BlockSleep, d)
}

// BlockTimedExact is BlockTimed without the CV-timeout granularity
// rounding: it models OS-level waits (a read or poll with a timeout)
// whose deadline the kernel honors precisely.
func (t *Thread) BlockTimedExact(reason int, d vclock.Duration) (timedOut bool) {
	if d < 0 {
		d = 0
	}
	return t.blockAt(reason, t.w.clock.Add(d))
}

// BlockIO blocks the thread for exactly d, modeling synchronous device or
// file I/O: the completion interrupt wakes the thread precisely, so —
// unlike Sleep — the 50 ms CV-timeout granularity does not apply.
func (t *Thread) BlockIO(d vclock.Duration) {
	if d <= 0 {
		return
	}
	t.w.record(trace.Event{Time: t.w.clock, Kind: trace.KindSleep, Thread: t.id, Aux: int64(d)})
	t.blockAt(BlockSleep, t.w.clock.Add(d))
}

// Yield invokes the scheduler: the calling thread remains runnable and
// competes again. If it is still the highest-priority ready thread it is
// rescheduled immediately — the behavior that defeats the slack process in
// §5.2 when the buffer thread outranks the imaging thread.
func (t *Thread) Yield() {
	t.checkThreadContext("Yield")
	t.w.record(trace.Event{Time: t.w.clock, Kind: trace.KindYield, Thread: t.id, Arg: trace.NoThread, Aux: trace.YieldPlain})
	t.yieldReq = yieldPlain
	t.park()
}

// YieldButNotToMe gives the processor to the highest-priority ready
// thread other than the caller, if such a thread exists, even if that
// thread has lower priority than the caller. The effect lasts until the
// end of the current timeslice (§6.3). This is the primitive the authors
// invented to make the X-server slack process batch effectively (§5.2).
func (t *Thread) YieldButNotToMe() {
	t.checkThreadContext("YieldButNotToMe")
	t.w.record(trace.Event{Time: t.w.clock, Kind: trace.KindYield, Thread: t.id, Arg: trace.NoThread, Aux: trace.YieldButNotToMe})
	t.yieldReq = yieldButNotToMe
	t.park()
}

// DirectedYield donates the remainder of the caller's timeslice to the
// target thread if it is runnable; otherwise it behaves like Yield. The
// SystemDaemon uses directed yields to give all ready threads some CPU
// regardless of priority (§6.2).
func (t *Thread) DirectedYield(target *Thread) {
	t.checkThreadContext("DirectedYield")
	arg := int64(trace.NoThread)
	if target != nil {
		arg = int64(target.id)
	}
	t.w.record(trace.Event{Time: t.w.clock, Kind: trace.KindYield, Thread: t.id, Arg: arg, Aux: trace.YieldDirected})
	t.yieldReq = yieldDirected
	t.yieldTarget = target
	t.park()
}

// SetPriority changes the thread's own priority and invokes the
// scheduler, which may preempt the caller if it no longer ranks highest.
func (t *Thread) SetPriority(p Priority) {
	t.checkThreadContext("SetPriority")
	if !p.valid() {
		panic(fmt.Sprintf("sim: invalid priority %d", p))
	}
	if p == t.pri {
		return
	}
	t.w.record(trace.Event{Time: t.w.clock, Kind: trace.KindSetPriority, Thread: t.id, Arg: int64(t.pri), Aux: int64(p)})
	t.pri = p
	t.yieldReq = yieldPoll
	t.park()
}

// Fork creates a child thread running body at the caller's priority and
// returns it. If the world has a thread limit and it is reached, Fork
// waits for resources (the §5.4 behavior: "our more recent
// implementations simply wait in the fork implementation"), which the
// user experiences as an unexplained delay.
func (t *Thread) Fork(name string, body Proc) *Thread {
	return t.ForkPri(name, t.pri, body)
}

// ForkPri creates a child thread with an explicit initial priority.
func (t *Thread) ForkPri(name string, pri Priority, body Proc) *Thread {
	w := t.w
	t.checkThreadContext("Fork")
	for w.cfg.MaxThreads > 0 && w.liveCount >= w.cfg.MaxThreads {
		w.forkWaiters = append(w.forkWaiters, t)
		t.Block(BlockFork)
	}
	child := w.newThread(name, pri, body, t)
	w.record(trace.Event{Time: w.clock, Kind: trace.KindFork, Thread: t.id, Arg: int64(child.id), Aux: int64(pri)})
	w.makeRunnable(child, t)
	// Forking invokes the scheduler: a higher-priority child preempts
	// its parent at this point.
	t.yieldReq = yieldPoll
	t.park()
	return child
}

// ErrNoThreads is returned by TryFork when the world's thread limit is
// reached — the behavior of "earlier versions of the systems [which]
// would raise an error when a FORK failed" (§5.4). The paper records that
// "the standard programming practice was to catch the error and to try to
// recover, but good recovery schemes seem never to have been worked out."
var ErrNoThreads = fmt.Errorf("sim: FORK failed: thread limit reached")

// TryFork is Fork with the old §5.4 failure semantics: instead of waiting
// for resources it returns ErrNoThreads when the world's MaxThreads limit
// is reached.
func (t *Thread) TryFork(name string, body Proc) (*Thread, error) {
	w := t.w
	t.checkThreadContext("TryFork")
	if w.cfg.MaxThreads > 0 && w.liveCount >= w.cfg.MaxThreads {
		return nil, ErrNoThreads
	}
	child := w.newThread(name, t.pri, body, t)
	w.record(trace.Event{Time: w.clock, Kind: trace.KindFork, Thread: t.id, Arg: int64(child.id), Aux: int64(t.pri)})
	w.makeRunnable(child, t)
	t.yieldReq = yieldPoll
	t.park()
	return child, nil
}

// Join waits for child to exit and returns its body's result and error.
// A thread may be joined at most once, and never after Detach; violations
// panic, as they indicate a programming error in the simulation.
func (t *Thread) Join(child *Thread) (any, error) {
	t.checkThreadContext("Join")
	if child.detached {
		panic(fmt.Sprintf("sim: JOIN of detached thread %s", child.name))
	}
	if child.joined {
		panic(fmt.Sprintf("sim: thread %s joined twice", child.name))
	}
	child.joined = true
	for !child.finished {
		child.joiner = t
		t.Block(BlockJoin)
	}
	t.w.record(trace.Event{Time: t.w.clock, Kind: trace.KindJoin, Thread: t.id, Arg: int64(child.id)})
	return child.result, child.err
}

// Detach declares that the thread will never be joined, letting the
// implementation recover its resources at exit.
func (t *Thread) Detach() {
	if t.joined {
		panic(fmt.Sprintf("sim: DETACH after JOIN of thread %s", t.name))
	}
	t.detached = true
}

func (t *Thread) checkThreadContext(op string) {
	if t.state != StateRunning {
		panic(fmt.Sprintf("sim: %s called on thread %s which is %v (thread-context operations may only be invoked from the thread's own body)", op, t.name, t.state))
	}
}
