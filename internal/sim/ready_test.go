package sim

import (
	"testing"

	"repro/internal/trace"
	"repro/internal/vclock"
)

// TestReadyEventOnPreemption pins the explicit ready-queue re-entry
// record: when a waking high-priority thread preempts a runner, the
// runner's KindReady carries the preemptor in Arg.
func TestReadyEventOnPreemption(t *testing.T) {
	var buf trace.Buffer
	cfg := testConfig()
	cfg.Trace = &buf
	w := NewWorld(cfg)
	defer w.Shutdown()

	low := w.Spawn("low", PriorityNormal, func(t *Thread) any {
		t.Compute(10 * vclock.Millisecond)
		return nil
	})
	hi := w.Spawn("hi", PriorityHigh, func(t *Thread) any {
		t.Sleep(2 * vclock.Millisecond)
		t.Compute(vclock.Millisecond)
		return nil
	})
	w.Run(vclock.Time(0).Add(20 * vclock.Millisecond))

	found := false
	for _, ev := range buf.Events {
		if ev.Kind == trace.KindReady && ev.Thread == low.ID() && ev.Arg == int64(hi.ID()) {
			found = true
			if want := vclock.Time(0).Add(2 * vclock.Millisecond); ev.Time != want {
				t.Errorf("preemption ready at %v, want %v", ev.Time, want)
			}
		}
	}
	if !found {
		t.Fatalf("no KindReady{Thread: low, Arg: hi} preemption record in trace")
	}
}

// TestReadyEventOnYield pins the yield re-queue record: a thread that
// YIELDs back into the ready queue records KindReady with itself in Arg.
func TestReadyEventOnYield(t *testing.T) {
	var buf trace.Buffer
	cfg := testConfig()
	cfg.Trace = &buf
	w := NewWorld(cfg)
	defer w.Shutdown()

	a := w.Spawn("a", PriorityNormal, func(t *Thread) any {
		t.Compute(vclock.Millisecond)
		t.Yield()
		t.Compute(vclock.Millisecond)
		return nil
	})
	w.Spawn("b", PriorityNormal, func(t *Thread) any {
		t.Compute(3 * vclock.Millisecond)
		return nil
	})
	w.Run(vclock.Time(0).Add(20 * vclock.Millisecond))

	found := false
	for _, ev := range buf.Events {
		if ev.Kind == trace.KindReady && ev.Thread == a.ID() && ev.Arg == int64(a.ID()) {
			found = true
		}
	}
	if !found {
		t.Fatalf("no KindReady{Thread: a, Arg: a} yield re-queue record in trace")
	}
}
