package sim

import (
	"testing"

	"repro/internal/vclock"
)

// drawN burns n draws from the world's own stream and returns them.
func drawN(w *World, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = w.Rand().Int63()
	}
	return out
}

// DeriveRand must hand out streams that are (a) reproducible for the
// same (seed, name), (b) distinct across names and seeds, and (c)
// isolated: draws from a derived stream never move the world's own
// stream, and vice versa.
func TestDeriveRandIndependence(t *testing.T) {
	w := NewWorld(Config{Seed: 5})
	defer w.Shutdown()

	// Same (seed, name) twice: identical streams.
	a, b := w.DeriveRand("load"), w.DeriveRand("load")
	for i := 0; i < 16; i++ {
		if x, y := a.Int63(), b.Int63(); x != y {
			t.Fatalf("draw %d: same-name streams diverged: %d vs %d", i, x, y)
		}
	}

	// Different names: different streams.
	c, d := w.DeriveRand("load"), w.DeriveRand("router")
	same := true
	for i := 0; i < 8; i++ {
		if c.Int63() != d.Int63() {
			same = false
		}
	}
	if same {
		t.Fatal(`DeriveRand("load") and DeriveRand("router") produced identical streams`)
	}

	// Different seeds: different streams under the same name.
	w2 := NewWorld(Config{Seed: 6})
	defer w2.Shutdown()
	e, f := w.DeriveRand("load"), w2.DeriveRand("load")
	same = true
	for i := 0; i < 8; i++ {
		if e.Int63() != f.Int63() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical derived streams")
	}

	// Isolation: burning a derived stream leaves the world stream exactly
	// where an untouched world's stream would be.
	clean := NewWorld(Config{Seed: 5})
	defer clean.Shutdown()
	burn := w.DeriveRand("burn")
	for i := 0; i < 1000; i++ {
		burn.Int63()
	}
	got, want := drawN(w, 8), drawN(clean, 8)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("world stream perturbed by derived draws: draw %d = %d, want %d", i, got[i], want[i])
		}
	}
}

// The cross-instance regression the cluster depends on: one instance's
// simulated output must be bitwise independent of how many sibling
// instances exist and how much randomness those siblings consume.
func TestSiblingDrawsDoNotPerturbInstance(t *testing.T) {
	runInstance := func(siblings int) (vclock.Time, int64, []int64) {
		w := NewWorld(Config{Seed: 11, SystemDaemon: true})
		defer w.Shutdown()
		// Sibling instances with their own worlds and derived streams,
		// drawing interleaved with the instance's run.
		var sibs []*World
		for i := 0; i < siblings; i++ {
			s := NewWorld(Config{Seed: 11, SystemDaemon: true})
			defer s.Shutdown()
			rng := s.DeriveRand("sibling-load")
			for j := 0; j < 100*(i+1); j++ {
				rng.Int63()
			}
			sibs = append(sibs, s)
		}
		// A little in-world activity that consumes the world's own stream
		// (the SystemDaemon draws victims) around a derived-stream user.
		load := w.DeriveRand("load")
		var sum int64
		w.Spawn("worker", PriorityNormal, func(th *Thread) any {
			for i := 0; i < 50; i++ {
				th.Compute(vclock.Duration(1+load.Int63n(100)) * vclock.Microsecond)
				th.Sleep(vclock.Millisecond)
			}
			return nil
		})
		w.Run(vclock.Time(0).Add(2 * vclock.Second))
		for _, s := range sibs {
			s.Run(vclock.Time(0).Add(vclock.Second))
		}
		return w.Now(), w.EventsProcessed(), append(drawN(w, 4), sum)
	}

	nowA, evA, tailA := runInstance(0)
	nowB, evB, tailB := runInstance(3)
	if nowA != nowB || evA != evB {
		t.Fatalf("instance diverged with siblings present: clock %v vs %v, events %d vs %d", nowA, nowB, evA, evB)
	}
	for i := range tailA {
		if tailA[i] != tailB[i] {
			t.Fatalf("instance RNG state diverged with siblings present: %v vs %v", tailA, tailB)
		}
	}
}

// The thread arena must hand out stable, distinct slots across slab
// growth, and every slot must behave exactly like an individually
// allocated Thread.
func TestThreadArenaBulkSpawn(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	defer w.Shutdown()
	const n = 1000 // spans several doubled slabs
	ran := make([]bool, n)
	for i := 0; i < n; i++ {
		i := i
		w.Spawn("bulk", PriorityNormal, func(th *Thread) any {
			th.Compute(vclock.Microsecond)
			ran[i] = true
			return nil
		})
	}
	if got := w.LiveThreads(); got != n {
		t.Fatalf("live threads = %d, want %d", got, n)
	}
	seen := make(map[*Thread]bool)
	ids := make(map[int32]bool)
	w.EachThread(func(th *Thread) bool {
		if seen[th] {
			t.Fatalf("arena handed out thread %v twice", th)
		}
		seen[th] = true
		if ids[th.ID()] {
			t.Fatalf("duplicate thread id %d", th.ID())
		}
		ids[th.ID()] = true
		return true
	})
	if len(seen) != n {
		t.Fatalf("thread table has %d entries, want %d", len(seen), n)
	}
	if got := w.Run(vclock.Time(0).Add(10 * vclock.Second)); got != OutcomeQuiescent {
		t.Fatalf("bulk run ended %v, want quiescent", got)
	}
	for i, ok := range ran {
		if !ok {
			t.Fatalf("thread %d never ran", i)
		}
	}
}
