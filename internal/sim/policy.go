package sim

import "repro/internal/vclock"

// Policy is a pluggable scheduling discipline. The dispatcher consults it
// at every point where the PCR runtime hardwired a choice: ready-queue
// admission (Level), the pick among equal-level candidates at a dispatch
// switch (Pick), end-of-quantum rotation (Rotate), timeslice sizing
// (Quantum), quantum-expiry bookkeeping (Expired), and periodic re-leveling
// of queued threads (Age/Tick).
//
// The interface lives in package sim so policies can accept *Thread
// without an import cycle; package sched re-exports it (`sched.Policy`),
// hosts the registry of named implementations, and parses the
// "name:param=val,..." specs the CLIs accept.
//
// The contract that keeps every policy a drop-in:
//
//   - Level maps a thread to one of the seven ready-queue levels. The
//     bitmap dispatcher then always runs the FIFO head of the highest
//     non-empty level, so a policy expresses ordering either spatially
//     (spread threads across levels, as pcr-rr and mlfq do) or by choice
//     (put everything on one level and order it via Pick, as edf and sjf
//     do). An invalid returned level falls back to the thread's priority.
//
//   - Pick and Rotate return an index into Decision.Candidates;
//     out-of-range values select Candidates[0]. At rotation the running
//     thread, when it shares the winning level, is appended last —
//     choosing it keeps the CPU without a switch.
//
//   - A Policy instance may hold per-thread state (mlfq and hybrid do)
//     and therefore MUST NOT be shared between worlds: thread pointers
//     from a dead world could alias a later world's arena. Construct one
//     instance per world (sched.Parse does).
//
// The built-in default, PCRPolicy, reproduces the paper's discipline
// byte-identically; worlds configured without Hooks.Policy use it and
// stay on the exact pre-policy fast paths.
type Policy interface {
	// Name returns the registry name ("pcr-rr", "edf", ...).
	Name() string

	// Level returns the ready-queue level for t as it is (re)enqueued.
	// wake is true when t just became runnable from blocked/new, false
	// when it is being requeued after preemption or a yield.
	Level(t *Thread, wake bool, now vclock.Time) Priority

	// Pick chooses among the equal-level candidates of an imminent
	// dispatch switch; Candidates[0] is the FIFO default.
	Pick(d Decision) int

	// Rotate chooses at end-of-quantum rotation; when the expiring
	// thread shares the winning level it is Candidates[len-1].
	Rotate(d Decision) int

	// Quantum returns the timeslice to grant t on dispatch; def is
	// Config.Quantum. Non-positive results select def.
	Quantum(t *Thread, def vclock.Duration) vclock.Duration

	// Expired observes that t consumed a full quantum while running
	// (the MLFQ demotion signal). The dispatcher refreshes t's level
	// via Level immediately afterwards.
	Expired(t *Thread, now vclock.Time)

	// Age is consulted for every queued thread on each policy tick;
	// returning (level, true) re-enqueues the thread at the tail of
	// level. It is the anti-starvation / aging seam.
	Age(t *Thread, now vclock.Time) (Priority, bool)

	// Tick returns the period of the aging sweep, or 0 for none. The
	// sweep stops once the world has no live threads.
	Tick() vclock.Duration
}

// pcrPolicy is the built-in discipline of the paper's PCR runtime: seven
// strict priorities, FIFO round-robin within a priority, one fixed
// quantum. Every method is the neutral answer, so the dispatcher's
// behavior with this policy is byte-identical to the pre-policy code.
type pcrPolicy struct{}

func (pcrPolicy) Name() string                                           { return "pcr-rr" }
func (pcrPolicy) Level(t *Thread, wake bool, now vclock.Time) Priority   { return t.pri }
func (pcrPolicy) Pick(d Decision) int                                    { return 0 }
func (pcrPolicy) Rotate(d Decision) int                                  { return 0 }
func (pcrPolicy) Quantum(t *Thread, def vclock.Duration) vclock.Duration { return def }
func (pcrPolicy) Expired(t *Thread, now vclock.Time)                     {}
func (pcrPolicy) Age(t *Thread, now vclock.Time) (Priority, bool)        { return 0, false }
func (pcrPolicy) Tick() vclock.Duration                                  { return 0 }

// PCRPolicy is the default scheduling policy — the paper's strict-priority
// + round-robin discipline. Worlds with a nil Hooks.Policy use it, and
// sched.Parse("pcr-rr") returns exactly this value, which is how the
// dispatcher recognizes the default and keeps its original fast paths.
var PCRPolicy Policy = pcrPolicy{}

// hookPolicy adapts a Hooks.OnSchedule callback over a base policy: the
// hook sees every decision point first and a positive in-range answer
// wins; 0 or out-of-range defers to the base policy's choice. With the
// PCR base (whose choice is always Candidates[0]) this reproduces the
// original hook semantics exactly — 0 and out-of-range both select the
// default — so explore's decision recording, replay tokens and ddmin
// shrinking work unmodified over every policy.
type hookPolicy struct {
	base Policy
	hook func(Decision) int
}

func (h hookPolicy) Name() string { return h.base.Name() }

func (h hookPolicy) Level(t *Thread, wake bool, now vclock.Time) Priority {
	return h.base.Level(t, wake, now)
}

func (h hookPolicy) Pick(d Decision) int {
	if i := h.hook(d); i > 0 && i < len(d.Candidates) {
		return i
	}
	return h.base.Pick(d)
}

func (h hookPolicy) Rotate(d Decision) int {
	if i := h.hook(d); i > 0 && i < len(d.Candidates) {
		return i
	}
	return h.base.Rotate(d)
}

func (h hookPolicy) Quantum(t *Thread, def vclock.Duration) vclock.Duration {
	return h.base.Quantum(t, def)
}

func (h hookPolicy) Expired(t *Thread, now vclock.Time) { h.base.Expired(t, now) }

func (h hookPolicy) Age(t *Thread, now vclock.Time) (Priority, bool) { return h.base.Age(t, now) }

func (h hookPolicy) Tick() vclock.Duration { return h.base.Tick() }
