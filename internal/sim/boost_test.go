package sim

import (
	"reflect"
	"testing"

	"repro/internal/vclock"
)

// TestBoostEndsAtQuantum: a YieldButNotToMe boost never outlives the
// timeslice that granted it, even if the boosted thread still has work.
func TestBoostEndsAtQuantum(t *testing.T) {
	cfg := testConfig()
	cfg.Quantum = 30 * vclock.Millisecond
	w := NewWorld(cfg)
	defer w.Shutdown()
	var hiResumed vclock.Time
	w.Spawn("lo", PriorityLow, func(th *Thread) any {
		th.Compute(500 * vclock.Millisecond)
		return nil
	})
	w.Spawn("hi", PriorityHigh, func(th *Thread) any {
		th.Compute(10 * vclock.Millisecond) // quantum now ends at 30ms
		th.YieldButNotToMe()
		hiResumed = th.Now()
		return nil
	})
	w.Run(vclock.Time(vclock.Second))
	if hiResumed != vclock.Time(30*vclock.Millisecond) {
		t.Fatalf("hi resumed at %v, want 30ms (end of the granting timeslice)", hiResumed)
	}
}

// TestBoostClearedWhenTargetBlocks: if the boosted thread blocks, strict
// priority resumes immediately.
func TestBoostClearedWhenTargetBlocks(t *testing.T) {
	w := NewWorld(testConfig())
	defer w.Shutdown()
	var hiResumed vclock.Time
	w.Spawn("lo", PriorityLow, func(th *Thread) any {
		th.Compute(5 * vclock.Millisecond)
		th.Sleep(200 * vclock.Millisecond) // blocks mid-boost
		return nil
	})
	w.Spawn("hi", PriorityHigh, func(th *Thread) any {
		th.YieldButNotToMe()
		hiResumed = th.Now()
		return nil
	})
	w.Run(vclock.Time(vclock.Second))
	if hiResumed != vclock.Time(5*vclock.Millisecond) {
		t.Fatalf("hi resumed at %v, want 5ms (boost target blocked)", hiResumed)
	}
}

// TestDirectedYieldToSelfActsLikeYield: a degenerate directed yield to an
// unrunnable target (including oneself) degrades to a plain yield.
func TestDirectedYieldDegenerate(t *testing.T) {
	w := NewWorld(testConfig())
	defer w.Shutdown()
	var order []string
	var self *Thread
	self = w.Spawn("self", PriorityNormal, func(th *Thread) any {
		th.DirectedYield(self) // self is running, not runnable: plain yield
		order = append(order, "self")
		return nil
	})
	w.Spawn("peer", PriorityNormal, func(th *Thread) any {
		order = append(order, "peer")
		return nil
	})
	if out := w.Run(vclock.Time(vclock.Second)); out != OutcomeQuiescent {
		t.Fatalf("outcome = %v", out)
	}
	// Plain-yield semantics: self requeues behind peer.
	if !reflect.DeepEqual(order, []string{"peer", "self"}) {
		t.Fatalf("order = %v", order)
	}

	// Directed yield to a dead thread also degrades cleanly.
	w2 := NewWorld(testConfig())
	defer w2.Shutdown()
	done := false
	var dead *Thread
	w2.Spawn("spawner", PriorityNormal, func(th *Thread) any {
		dead = th.Fork("shortlived", func(c *Thread) any { return nil })
		th.Join(dead)
		th.DirectedYield(dead) // dead: plain yield, no panic
		done = true
		return nil
	})
	w2.Run(vclock.Time(vclock.Second))
	if !done {
		t.Fatal("directed yield to dead thread wedged")
	}
}

// TestForkWaitersAdmittedFIFO: §5.4 fork-waiters get thread slots in
// arrival order.
func TestForkWaitersAdmittedFIFO(t *testing.T) {
	cfg := testConfig()
	cfg.MaxThreads = 4 // three forkers + one child slot
	w := NewWorld(cfg)
	defer w.Shutdown()
	var admitted []string
	forker := func(name string, startDelay vclock.Duration) {
		w.Spawn(name, PriorityNormal, func(th *Thread) any {
			th.Compute(startDelay)
			c := th.Fork(name+"-child", func(c *Thread) any {
				c.Compute(20 * vclock.Millisecond)
				return nil
			})
			admitted = append(admitted, name)
			th.Join(c)
			return nil
		})
	}
	forker("a", vclock.Millisecond)   // forks first, gets the slot
	forker("b", 2*vclock.Millisecond) // waits
	forker("c", 3*vclock.Millisecond) // waits behind b
	if out := w.Run(vclock.Time(vclock.Second)); out != OutcomeQuiescent {
		t.Fatalf("outcome = %v", out)
	}
	if !reflect.DeepEqual(admitted, []string{"a", "b", "c"}) {
		t.Fatalf("admission order = %v, want FIFO", admitted)
	}
}

// TestPreemptionMidBoostWaits: a higher-priority wake during a boost does
// not cut the boost short (the donated slice is honored), but takes over
// the instant it ends.
func TestPreemptionMidBoostWaits(t *testing.T) {
	cfg := testConfig()
	cfg.Quantum = 40 * vclock.Millisecond
	w := NewWorld(cfg)
	defer w.Shutdown()
	var interruptRan vclock.Time
	w.Spawn("lo", PriorityLow, func(th *Thread) any {
		th.Compute(500 * vclock.Millisecond)
		return nil
	})
	w.Spawn("donor", PriorityNormal, func(th *Thread) any {
		th.YieldButNotToMe() // boost lo until 40ms
		return nil
	})
	w.At(vclock.Time(10*vclock.Millisecond), func() {
		w.Spawn("interrupt", PriorityInterrupt, func(th *Thread) any {
			interruptRan = th.Now()
			return nil
		})
	})
	w.Run(vclock.Time(vclock.Second))
	if interruptRan != vclock.Time(40*vclock.Millisecond) {
		t.Fatalf("interrupt ran at %v, want 40ms (boost honored, then preemption)", interruptRan)
	}
}

// TestMPHigherPriorityPreemptsTheRightCPU: on two CPUs, a high-priority
// wake preempts one CPU while the other keeps running.
func TestMPPreemptsOneCPU(t *testing.T) {
	cfg := testConfig()
	cfg.CPUs = 2
	w := NewWorld(cfg)
	defer w.Shutdown()
	var aDone, bDone, hiDone vclock.Time
	w.Spawn("a", PriorityNormal, func(th *Thread) any {
		th.Compute(100 * vclock.Millisecond)
		aDone = th.Now()
		return nil
	})
	w.Spawn("b", PriorityNormal, func(th *Thread) any {
		th.Compute(100 * vclock.Millisecond)
		bDone = th.Now()
		return nil
	})
	w.At(vclock.Time(50*vclock.Millisecond), func() {
		w.Spawn("hi", PriorityHigh, func(th *Thread) any {
			th.Compute(10 * vclock.Millisecond)
			hiDone = th.Now()
			return nil
		})
	})
	w.Run(vclock.Time(vclock.Second))
	if hiDone != vclock.Time(60*vclock.Millisecond) {
		t.Fatalf("hi done at %v, want 60ms", hiDone)
	}
	// One of a/b finishes on time (kept its CPU), the other is delayed
	// by exactly the preemption (10ms).
	times := []vclock.Time{aDone, bDone}
	want1, want2 := vclock.Time(100*vclock.Millisecond), vclock.Time(110*vclock.Millisecond)
	if !(times[0] == want1 && times[1] == want2 || times[0] == want2 && times[1] == want1) {
		t.Fatalf("a=%v b=%v, want one at 100ms and one at 110ms", aDone, bDone)
	}
}
