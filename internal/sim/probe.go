package sim

import (
	"sync"
	"sync/atomic"

	"repro/internal/vclock"
)

// Probe accumulates scheduler-level observability counters from every
// World configured with it (Config.Probe): how many worlds were created,
// how many discrete events their drivers processed, and how much virtual
// time they simulated. A single Probe may be shared by many worlds, and
// those worlds may run on different goroutines — the experiment harness
// attaches one Probe per experiment run and executes runs concurrently —
// so all updates are atomic.
//
// A Probe never influences the simulation; attaching one cannot change
// any experiment's output.
type Probe struct {
	worlds  atomic.Int64
	events  atomic.Int64
	virtual atomic.Int64 // microseconds of simulated time

	mu       sync.Mutex
	auditors []func(minWaits int) []string
}

// Worlds returns the number of worlds created against this probe.
func (p *Probe) Worlds() int64 { return p.worlds.Load() }

// Events returns the total number of discrete events processed by the
// drivers of all attached worlds.
func (p *Probe) Events() int64 { return p.events.Load() }

// VirtualTime returns the total virtual time simulated across all
// attached worlds (the sum of each world's final clock).
func (p *Probe) VirtualTime() vclock.Duration {
	return vclock.Duration(p.virtual.Load())
}

// observeWorld records a new world.
func (p *Probe) observeWorld() {
	if p == nil {
		return
	}
	p.worlds.Add(1)
}

// registerAuditor records a post-run audit closure (World.RegisterAuditor).
func (p *Probe) registerAuditor(f func(minWaits int) []string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.auditors = append(p.auditors, f)
	p.mu.Unlock()
}

// Audit invokes every registered auditor in registration order and
// concatenates their findings — for the experiment harness, the
// suspicious all-timeout CVs of every monitor its worlds created (§5.3).
// Call only after the attached worlds have finished running; the auditors
// read simulation state without synchronization.
func (p *Probe) Audit(minWaits int) []string {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	auditors := p.auditors
	p.mu.Unlock()
	var out []string
	for _, f := range auditors {
		out = append(out, f(minWaits)...)
	}
	return out
}

// add accumulates an events/virtual-time delta from one world.
func (p *Probe) add(events int64, virtual vclock.Duration) {
	if p == nil {
		return
	}
	p.events.Add(events)
	p.virtual.Add(int64(virtual))
}
