package sim

import (
	"fmt"

	"repro/internal/eventq"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// settle brings the scheduler to a fixed point at the current instant:
// every CPU either is idle with an empty run queue, or runs the thread
// strict-priority dispatch (as modified by any boost) selects, with that
// thread's pending compute scheduled as a completion event. Threads whose
// goroutines have instantaneous work to do are pumped until they park
// again. The driver calls settle after every event.
func (w *World) settle() {
	for {
		progress := false
		for _, c := range w.cpus {
			if w.adjust(c) {
				progress = true
			}
		}
		pumped := false
		for _, c := range w.cpus {
			t := c.current
			if t != nil && t.state == StateRunning && t.computeLeft == 0 && !t.completion.Valid() {
				w.pump(t)
				pumped = true
				break // re-evaluate dispatch after each pump
			}
		}
		if !pumped && !progress {
			return
		}
	}
}

// adjust performs at most one dispatch change on c and ensures the
// resident thread's compute is scheduled. It reports whether it switched.
func (w *World) adjust(c *cpu) bool {
	desired := w.pickFor(c)
	if desired != c.current {
		w.switchTo(c, desired)
		return true
	}
	t := c.current
	if t != nil && t.computeLeft > 0 && !t.completion.Valid() {
		t.grantStart = w.clock
		t.completion = w.evq.Schedule(w.clock.Add(t.computeLeft), t.completionFn)
	}
	return false
}

// pickFor returns the thread c should be running right now: the boost
// target while a boost is in force, otherwise the current thread unless a
// thread on a strictly higher ready level is runnable (preemption only
// for higher levels between quantum expiries; under the default pcr-rr
// policy levels are exactly the PCR priorities).
//
// When the dispatch is about to install a different thread and several
// threads of the winning level are queued, the choice among them is a
// genuine scheduling freedom — FIFO order is PCR's policy, not a
// correctness requirement — so the policy's Pick (and any OnSchedule
// hook layered over it) is consulted exactly once per such switch. The
// consultation never fires on the settle loop's post-switch re-evaluation
// (the installed thread is then c.current and no switch is pending),
// keeping decision sequences dense and replayable.
func (w *World) pickFor(c *cpu) *Thread {
	if c.boost != nil {
		b := c.boost
		stale := w.clock >= c.boostEnd ||
			b.state == StateDead || b.state == StateBlocked ||
			(b.state == StateRunning && b.cpu != c.index)
		if stale {
			c.boost = nil
		} else {
			return b
		}
	}
	top := w.topRunnable()
	cur := c.current
	if cur != nil && (top == nil || top.level <= w.levelOf(cur)) {
		return cur
	}
	if top == nil {
		return nil
	}
	// A switch to top is imminent (top sits on the run queue, cur does
	// not, so they differ). Offer the whole winning-level queue.
	if w.needPick && top.qnext != nil {
		return w.consultSchedule(c, w.scheduleCands(top, nil), false)
	}
	return top
}

// levelOf returns the ready level a thread competes at: its priority
// under the default policy, else the level of its last enqueue (refreshed
// at quantum expiry for the running thread).
func (w *World) levelOf(t *Thread) Priority {
	if w.defaultLevels {
		return t.pri
	}
	return t.level
}

// scheduleCands assembles an OnSchedule candidate list by walking a ready
// FIFO from head, plus an optional extra entry, reusing the world's
// scratch slice.
func (w *World) scheduleCands(head *Thread, extra *Thread) []*Thread {
	cands := w.schedCands[:0]
	for t := head; t != nil; t = t.qnext {
		cands = append(cands, t)
	}
	if extra != nil {
		cands = append(cands, extra)
	}
	w.schedCands = cands
	return cands
}

// consultSchedule offers one decision point to the effective policy
// (which layers any OnSchedule hook over the base policy's Pick/Rotate).
// cands[0] is the default pick; out-of-range answers select it.
func (w *World) consultSchedule(c *cpu, cands []*Thread, rotation bool) *Thread {
	d := Decision{Seq: w.schedSeq, CPU: c.index, Now: w.clock, Candidates: cands}
	w.schedSeq++
	var i int
	if rotation {
		i = w.policy.Rotate(d)
	} else {
		i = w.policy.Pick(d)
	}
	if i < 0 || i >= len(cands) {
		i = 0
	}
	return cands[i]
}

// switchTo installs `to` (possibly nil, meaning idle) on c, preempting
// any current thread back to the tail of its run queue. It charges the
// context-switch cost to the incoming thread and emits the switch trace
// event that Table 1's "thread switches/sec" column counts.
func (w *World) switchTo(c *cpu, to *Thread) {
	from := c.current
	if from == to {
		return
	}
	fromID := int64(trace.NoThread)
	if from != nil {
		fromID = int64(from.id)
		w.unscheduleCompute(from)
		from.state = StateRunnable
		from.cpu = -1
		w.pushReady(from, false)
		// A preempted thread re-enters the ready queue; record the
		// transition explicitly (Arg = the preemptor) so per-thread state
		// accounting never has to infer it from the switch record alone.
		toID := int64(trace.NoThread)
		if to != nil {
			toID = int64(to.id)
		}
		w.record(trace.Event{Time: w.clock, Kind: trace.KindReady, Thread: from.id, Arg: toID})
	}
	c.current = to
	if to == nil {
		if c.quantumEv.Valid() {
			w.evq.Cancel(c.quantumEv)
			c.quantumEv = eventq.Handle{}
		}
		w.record(trace.Event{Time: w.clock, Kind: trace.KindSwitch, Thread: trace.NoThread, Arg: fromID, Aux: int64(c.index)})
		return
	}
	w.removeReady(to)
	to.state = StateRunning
	to.cpu = c.index
	// A boost continues the current timeslice ("the end of a timeslice
	// ends the effect of a YieldButNotToMe", §6.3); a normal dispatch
	// starts a fresh quantum.
	if !(c.boost == to && c.quantumEv.Valid()) {
		if c.quantumEv.Valid() {
			w.evq.Cancel(c.quantumEv)
		}
		c.quantumEnd = w.clock.Add(w.quantumFor(to))
		c.quantumEv = w.evq.Schedule(c.quantumEnd, c.quantumFn)
	}
	if w.cfg.SwitchCost > 0 {
		to.computeLeft += w.cfg.SwitchCost
	}
	w.record(trace.Event{Time: w.clock, Kind: trace.KindSwitch, Thread: to.id, Arg: fromID, Aux: int64(c.index)})
}

// unscheduleCompute cancels t's pending completion event and banks the
// virtual CPU it has consumed so far.
func (w *World) unscheduleCompute(t *Thread) {
	if !t.completion.Valid() {
		return
	}
	w.evq.Cancel(t.completion)
	t.completion = eventq.Handle{}
	consumed := w.clock.Sub(t.grantStart)
	t.computeLeft -= consumed
	if t.computeLeft < 0 {
		panic(fmt.Sprintf("sim: thread %s over-consumed its grant by %v", t.name, -t.computeLeft))
	}
}

// quantumExpire implements end-of-timeslice: any boost ends, and the CPU
// round-robins to another thread of equal or higher ready level if one is
// ready; otherwise the current thread continues with a fresh quantum.
//
// Rotation is the second decision point: when the incoming level equals
// the expiring thread's, both "rotate to any queued peer" and "let the
// current thread keep the CPU" are legal schedules, so the policy's
// Rotate (and any OnSchedule hook) may choose among the queue plus the
// current thread (appended last; picking it skips the switch). A strictly
// higher-level top offers only that queue — continuing would violate the
// level discipline.
//
// Under a non-default policy this is also where the Expired seam fires
// (MLFQ demotion, hybrid boost expiry) and the running thread's level is
// refreshed before the rotation comparison, so a policy that demotes the
// expiring thread sees the demotion take effect at this very expiry.
func (w *World) quantumExpire(c *cpu) {
	c.quantumEv = eventq.Handle{}
	c.boost = nil
	t := c.current
	if t == nil {
		return
	}
	if !w.defaultLevels {
		w.policy.Expired(t, w.clock)
		t.level = w.policyLevel(t, false)
	}
	top := w.topRunnable()
	if top != nil && top.level >= w.levelOf(t) {
		pick := top
		if w.needPick {
			var keep *Thread
			if w.levelOf(t) == top.level {
				keep = t
			}
			if cands := w.scheduleCands(w.readyHead[top.level], keep); len(cands) > 1 {
				pick = w.consultSchedule(c, cands, true)
			}
		}
		if pick != t {
			w.switchTo(c, pick)
			return
		}
		// The policy elected to continue the current thread.
	}
	c.quantumEnd = w.clock.Add(w.quantumFor(t))
	c.quantumEv = w.evq.Schedule(c.quantumEnd, c.quantumFn)
}

// quantumFor returns the timeslice to grant t: Config.Quantum under the
// default policy, else the policy's Quantum (non-positive answers fall
// back to the default).
func (w *World) quantumFor(t *Thread) vclock.Duration {
	q := w.cfg.Quantum
	if !w.defaultLevels {
		if pq := w.policy.Quantum(t, q); pq > 0 {
			q = pq
		}
	}
	return q
}

// pump resumes t's goroutine, waits for it to park again, and applies the
// state transition it requested.
func (w *World) pump(t *Thread) {
	t.resume <- struct{}{}
	parked := <-w.yield
	if parked != t {
		panic(fmt.Sprintf("sim: pumped %s but %s parked", t.name, parked.name))
	}
	w.afterPark(t)
}

// afterPark applies the effect of whatever sim call made t park.
func (w *World) afterPark(t *Thread) {
	req := t.yieldReq
	t.yieldReq = yieldNone
	target := t.yieldTarget
	t.yieldTarget = nil
	slice := t.yieldSlice
	t.yieldSlice = 0

	var c *cpu
	if t.cpu >= 0 {
		c = w.cpus[t.cpu]
	}

	switch {
	case t.state == StateDead || t.state == StateBlocked:
		if c != nil && c.current == t {
			c.current = nil
			t.cpu = -1
			if c.quantumEv.Valid() {
				w.evq.Cancel(c.quantumEv)
				c.quantumEv = eventq.Handle{}
			}
			// Mark the CPU idle so interval accounting sees the end of
			// this thread's execution interval; a successor dispatched
			// at the same instant appears as a separate switch-in.
			w.record(trace.Event{Time: w.clock, Kind: trace.KindSwitch, Thread: trace.NoThread, Arg: int64(t.id), Aux: int64(c.index)})
		}

	case req == yieldPlain || req == yieldButNotToMe || req == yieldDirected:
		if c == nil || c.current != t {
			panic(fmt.Sprintf("sim: yield from off-CPU thread %s", t.name))
		}
		switch req {
		case yieldButNotToMe:
			other := w.topRunnable()
			if other == nil {
				return // no other ready thread: caller keeps the CPU
			}
			c.boost = other
			c.boostEnd = c.quantumEnd
		case yieldDirected:
			if target != nil && target.state == StateRunnable {
				c.boost = target
				end := c.quantumEnd
				if slice > 0 {
					if e := w.clock.Add(slice); e < end {
						end = e
						// Force a dispatch pass when the donated slice
						// ends; the quantum event is too late.
						cc := c
						w.evq.Schedule(end, func() {
							if cc.boost == target && w.clock >= cc.boostEnd {
								cc.boost = nil
							}
						})
					}
				}
				c.boostEnd = end
			}
			// An unrunnable target degrades to a plain yield.
		}
		// Vacate: back of our priority's queue; the timeslice keeps
		// running so a boost lasts only until quantum end.
		w.unscheduleCompute(t)
		t.state = StateRunnable
		t.cpu = -1
		c.current = nil
		w.pushReady(t, false)
		// A yield vacates the CPU without a switch record of its own;
		// record the ready-queue re-entry (Arg = the thread itself) so
		// state accounting sees the running→ready edge at the yield
		// instant rather than at the successor's switch-in.
		w.record(trace.Event{Time: w.clock, Kind: trace.KindReady, Thread: t.id, Arg: int64(t.id)})

	case req == yieldPoll:
		// Scheduler poll (Fork, SetPriority): adjust() decides.

	case t.computeLeft > 0:
		// Compute request: adjust() schedules the completion.

	default:
		panic(fmt.Sprintf("sim: thread %s parked for no reason (state %v)", t.name, t.state))
	}
}
