package sim

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/trace"
	"repro/internal/vclock"
)

// testConfig returns a config with zero switch cost and 1 µs timeout
// granularity so tests can assert exact virtual timings.
func testConfig() Config {
	return Config{SwitchCost: -1, TimeoutGranularity: 1}
}

func TestSingleThreadCompute(t *testing.T) {
	w := NewWorld(testConfig())
	defer w.Shutdown()
	var finished vclock.Time
	w.Spawn("worker", PriorityNormal, func(th *Thread) any {
		th.Compute(10 * vclock.Millisecond)
		finished = th.Now()
		return nil
	})
	out := w.Run(vclock.Time(vclock.Second))
	if out != OutcomeQuiescent {
		t.Fatalf("outcome = %v, want quiescent", out)
	}
	if finished != vclock.Time(10*vclock.Millisecond) {
		t.Fatalf("finished at %v, want 10ms", finished)
	}
	if w.LiveThreads() != 0 {
		t.Fatalf("live threads = %d, want 0", w.LiveThreads())
	}
}

func TestForkJoinResult(t *testing.T) {
	w := NewWorld(testConfig())
	defer w.Shutdown()
	var got any
	var gotErr error
	w.Spawn("parent", PriorityNormal, func(th *Thread) any {
		child := th.Fork("child", func(c *Thread) any {
			c.Compute(vclock.Millisecond)
			return 42
		})
		got, gotErr = th.Join(child)
		return nil
	})
	if out := w.Run(vclock.Time(vclock.Second)); out != OutcomeQuiescent {
		t.Fatalf("outcome = %v", out)
	}
	if gotErr != nil || got != 42 {
		t.Fatalf("Join = (%v, %v), want (42, nil)", got, gotErr)
	}
}

func TestJoinAlreadyDead(t *testing.T) {
	w := NewWorld(testConfig())
	defer w.Shutdown()
	var got any
	w.Spawn("parent", PriorityNormal, func(th *Thread) any {
		child := th.Fork("child", func(c *Thread) any { return "done" })
		th.Compute(10 * vclock.Millisecond) // child exits long before join
		got, _ = th.Join(child)
		return nil
	})
	w.Run(vclock.Time(vclock.Second))
	if got != "done" {
		t.Fatalf("Join after child death = %v, want done", got)
	}
}

func TestDoubleJoinPanics(t *testing.T) {
	w := NewWorld(testConfig())
	defer w.Shutdown()
	var err error
	w.Spawn("parent", PriorityNormal, func(th *Thread) any {
		child := th.Fork("child", func(c *Thread) any { return nil })
		th.Join(child)
		th.Join(child) // must panic -> PanicError on this thread
		return nil
	})
	w.Run(vclock.Time(vclock.Second))
	for _, th := range w.Threads() {
		if th.Name() == "parent" {
			err = th.Err()
		}
	}
	if err == nil || !strings.Contains(err.Error(), "joined twice") {
		t.Fatalf("double join error = %v", err)
	}
}

func TestJoinDetachedPanics(t *testing.T) {
	w := NewWorld(testConfig())
	defer w.Shutdown()
	w.Spawn("parent", PriorityNormal, func(th *Thread) any {
		child := th.Fork("child", func(c *Thread) any { return nil })
		child.Detach()
		th.Join(child)
		return nil
	})
	w.Run(vclock.Time(vclock.Second))
	parent := w.Threads()[0]
	if parent.Err() == nil || !strings.Contains(parent.Err().Error(), "detached") {
		t.Fatalf("join-detached error = %v", parent.Err())
	}
}

func TestPanicBecomesError(t *testing.T) {
	w := NewWorld(testConfig())
	defer w.Shutdown()
	var joinErr error
	w.Spawn("parent", PriorityNormal, func(th *Thread) any {
		child := th.Fork("child", func(c *Thread) any {
			panic("boom")
		})
		_, joinErr = th.Join(child)
		return nil
	})
	if out := w.Run(vclock.Time(vclock.Second)); out != OutcomeQuiescent {
		t.Fatalf("outcome = %v", out)
	}
	pe, ok := joinErr.(*PanicError)
	if !ok {
		t.Fatalf("join error = %v (%T), want *PanicError", joinErr, joinErr)
	}
	if pe.Value != "boom" || pe.Thread != "child" {
		t.Fatalf("PanicError = %+v", pe)
	}
}

func TestPriorityPreemption(t *testing.T) {
	w := NewWorld(testConfig())
	defer w.Shutdown()
	var order []string
	w.Spawn("low", PriorityLow, func(th *Thread) any {
		th.Compute(100 * vclock.Millisecond)
		order = append(order, "low@"+th.Now().String())
		return nil
	})
	// A high-priority thread arriving mid-compute must preempt low
	// immediately and finish first.
	w.At(vclock.Time(10*vclock.Millisecond), func() {
		w.Spawn("high", PriorityHigh, func(th *Thread) any {
			th.Compute(5 * vclock.Millisecond)
			order = append(order, "high@"+th.Now().String())
			return nil
		})
	})
	w.Run(vclock.Time(vclock.Second))
	want := []string{"high@0.015000s", "low@0.105000s"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestRoundRobinAtQuantum(t *testing.T) {
	cfg := testConfig()
	cfg.Quantum = 50 * vclock.Millisecond
	var buf trace.Buffer
	cfg.Trace = &buf
	w := NewWorld(cfg)
	defer w.Shutdown()
	for _, name := range []string{"a", "b"} {
		w.Spawn(name, PriorityNormal, func(th *Thread) any {
			th.Compute(100 * vclock.Millisecond)
			return nil
		})
	}
	w.Run(vclock.Time(vclock.Second))
	// a runs [0,50), b [50,100), a [100,150), b [150,200). Both finish
	// their compute exactly at a quantum boundary, are preempted, and are
	// re-dispatched at 200ms to run their (instantaneous) exits — so the
	// trace shows switch-ins at 0, 50, 100, 150 and two at 200.
	var switches []vclock.Time
	for _, ev := range buf.Events {
		if ev.Kind == trace.KindSwitch && ev.Thread != trace.NoThread {
			switches = append(switches, ev.Time)
		}
	}
	ms := func(n int64) vclock.Time { return vclock.Time(vclock.Duration(n) * vclock.Millisecond) }
	want := []vclock.Time{ms(0), ms(50), ms(100), ms(150), ms(200), ms(200)}
	if !reflect.DeepEqual(switches, want) {
		t.Fatalf("switch times = %v, want %v", switches, want)
	}
	if w.Now() != vclock.Time(200*vclock.Millisecond) {
		t.Fatalf("end time = %v, want 200ms", w.Now())
	}
}

func TestQuantumNotResetWhenAlone(t *testing.T) {
	// A lone thread keeps running across quantum expiries with no
	// spurious switch events.
	cfg := testConfig()
	var buf trace.Buffer
	cfg.Trace = &buf
	w := NewWorld(cfg)
	defer w.Shutdown()
	w.Spawn("solo", PriorityNormal, func(th *Thread) any {
		th.Compute(500 * vclock.Millisecond)
		return nil
	})
	w.Run(vclock.Time(vclock.Second))
	n := 0
	for _, ev := range buf.Events {
		if ev.Kind == trace.KindSwitch {
			n++
		}
	}
	if n != 2 { // switch-in at 0, switch-to-idle at exit
		t.Fatalf("switch events = %d, want 2", n)
	}
}

func TestYieldRoundRobins(t *testing.T) {
	w := NewWorld(testConfig())
	defer w.Shutdown()
	var order []string
	mk := func(name string) {
		w.Spawn(name, PriorityNormal, func(th *Thread) any {
			for i := 0; i < 3; i++ {
				order = append(order, name)
				th.Yield()
			}
			return nil
		})
	}
	mk("a")
	mk("b")
	w.Run(vclock.Time(vclock.Second))
	want := []string{"a", "b", "a", "b", "a", "b"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestYieldAloneIsImmediate(t *testing.T) {
	// §5.2: a high-priority thread that YIELDs while it is the only
	// ready thread at its level gets rescheduled immediately.
	w := NewWorld(testConfig())
	defer w.Shutdown()
	var reran vclock.Time
	w.Spawn("buffer", PriorityHigh, func(th *Thread) any {
		th.Yield()
		reran = th.Now()
		return nil
	})
	w.Run(vclock.Time(vclock.Second))
	if reran != 0 {
		t.Fatalf("rescheduled at %v, want 0 (immediate)", reran)
	}
}

func TestYieldButNotToMeRunsLowerPriority(t *testing.T) {
	// The §5.2 fix: the high-priority buffer thread cedes the CPU to a
	// lower-priority image thread until the end of the timeslice.
	cfg := testConfig()
	cfg.Quantum = 50 * vclock.Millisecond
	w := NewWorld(cfg)
	defer w.Shutdown()
	var imageRan vclock.Time
	var bufferBack vclock.Time
	w.Spawn("image", PriorityLow, func(th *Thread) any {
		th.Compute(10 * vclock.Millisecond)
		imageRan = th.Now()
		th.Compute(200 * vclock.Millisecond)
		return nil
	})
	w.Spawn("buffer", PriorityHigh, func(th *Thread) any {
		th.Compute(vclock.Millisecond)
		th.YieldButNotToMe()
		bufferBack = th.Now()
		return nil
	})
	w.Run(vclock.Time(vclock.Second))
	// buffer runs [0,1ms), YBNTM boosts image despite lower priority;
	// image runs from 1ms; the boost ends at the buffer's quantum end
	// (50ms), when strict priority resumes and buffer preempts image.
	if imageRan != vclock.Time(11*vclock.Millisecond) {
		t.Fatalf("image first ran to completion at %v, want 11ms", imageRan)
	}
	if bufferBack != vclock.Time(50*vclock.Millisecond) {
		t.Fatalf("buffer resumed at %v, want 50ms (quantum end)", bufferBack)
	}
}

func TestYieldButNotToMeNoOtherThread(t *testing.T) {
	w := NewWorld(testConfig())
	defer w.Shutdown()
	var resumed vclock.Time
	w.Spawn("only", PriorityNormal, func(th *Thread) any {
		th.YieldButNotToMe()
		resumed = th.Now()
		return nil
	})
	if out := w.Run(vclock.Time(vclock.Second)); out != OutcomeQuiescent {
		t.Fatalf("outcome = %v", out)
	}
	if resumed != 0 {
		t.Fatalf("resumed at %v, want 0", resumed)
	}
}

func TestDirectedYield(t *testing.T) {
	w := NewWorld(testConfig())
	defer w.Shutdown()
	var order []string
	var lo *Thread
	lo = w.Spawn("lo", PriorityLow, func(th *Thread) any {
		th.Compute(vclock.Millisecond)
		order = append(order, "lo")
		return nil
	})
	w.Spawn("mid1", PriorityNormal, func(th *Thread) any {
		th.DirectedYield(lo) // donate to lo, skipping mid2
		order = append(order, "mid1")
		return nil
	})
	w.Spawn("mid2", PriorityNormal, func(th *Thread) any {
		th.Compute(vclock.Millisecond)
		order = append(order, "mid2")
		return nil
	})
	w.Run(vclock.Time(vclock.Second))
	// mid1 donates to lo; lo finishes within the boost; then strict
	// priority resumes with mid1 and mid2 (round robin: mid2 was queued
	// before mid1 re-queued itself).
	want := []string{"lo", "mid2", "mid1"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestSleepRoundsToGranularity(t *testing.T) {
	cfg := Config{SwitchCost: -1, TimeoutGranularity: 50 * vclock.Millisecond}
	w := NewWorld(cfg)
	defer w.Shutdown()
	var woke vclock.Time
	w.Spawn("sleeper", PriorityNormal, func(th *Thread) any {
		th.Sleep(vclock.Millisecond) // rounds up to 50ms
		woke = th.Now()
		return nil
	})
	w.Run(vclock.Time(vclock.Second))
	if woke != vclock.Time(50*vclock.Millisecond) {
		t.Fatalf("woke at %v, want 50ms (granularity rounding)", woke)
	}
}

func TestBlockTimedTimeoutAndWake(t *testing.T) {
	w := NewWorld(testConfig())
	defer w.Shutdown()
	var timedOut1, timedOut2 bool
	t1 := w.Spawn("waiter1", PriorityNormal, func(th *Thread) any {
		timedOut1 = th.BlockTimed(BlockCV, 10*vclock.Millisecond)
		return nil
	})
	w.Spawn("waiter2", PriorityNormal, func(th *Thread) any {
		timedOut2 = th.BlockTimed(BlockCV, 100*vclock.Millisecond)
		return nil
	})
	_ = t1
	w.At(vclock.Time(20*vclock.Millisecond), func() {
		// waiter2 is still blocked; wake it before its timeout.
		for _, th := range w.Threads() {
			if th.Name() == "waiter2" {
				if !w.WakeIfBlocked(th, nil) {
					t.Error("waiter2 was not blocked")
				}
			}
		}
	})
	w.Run(vclock.Time(vclock.Second))
	if !timedOut1 {
		t.Error("waiter1 should have timed out")
	}
	if timedOut2 {
		t.Error("waiter2 should have been woken, not timed out")
	}
}

func TestWakeIfBlockedOnRunnable(t *testing.T) {
	w := NewWorld(testConfig())
	defer w.Shutdown()
	th := w.Spawn("t", PriorityNormal, func(th *Thread) any {
		th.Compute(10 * vclock.Millisecond)
		return nil
	})
	w.At(vclock.Time(vclock.Millisecond), func() {
		if w.WakeIfBlocked(th, nil) {
			t.Error("WakeIfBlocked succeeded on a running thread")
		}
	})
	w.Run(vclock.Time(vclock.Second))
}

func TestMaxThreadsForkWaits(t *testing.T) {
	cfg := testConfig()
	cfg.MaxThreads = 2
	w := NewWorld(cfg)
	defer w.Shutdown()
	var forkedAt vclock.Time
	w.Spawn("parent", PriorityNormal, func(th *Thread) any {
		c1 := th.Fork("c1", func(c *Thread) any {
			c.Compute(30 * vclock.Millisecond)
			return nil
		})
		c1.Detach()
		// Limit reached (parent + c1): this fork must wait until c1
		// exits — the unexplained delay of §5.4.
		c2 := th.Fork("c2", func(c *Thread) any { return nil })
		forkedAt = th.Now()
		th.Join(c2)
		return nil
	})
	if out := w.Run(vclock.Time(vclock.Second)); out != OutcomeQuiescent {
		t.Fatalf("outcome = %v", out)
	}
	if forkedAt != vclock.Time(30*vclock.Millisecond) {
		t.Fatalf("second fork completed at %v, want 30ms (after c1 exit)", forkedAt)
	}
}

func TestDeadlockDetection(t *testing.T) {
	w := NewWorld(testConfig())
	defer w.Shutdown()
	w.Spawn("stuck", PriorityNormal, func(th *Thread) any {
		th.Block(BlockMutex) // nobody will ever wake it
		return nil
	})
	out := w.Run(vclock.Time(vclock.Second))
	if out != OutcomeDeadlock {
		t.Fatalf("outcome = %v, want deadlock", out)
	}
	if len(w.Deadlocked()) != 1 || w.Deadlocked()[0].Name() != "stuck" {
		t.Fatalf("deadlocked = %v", w.Deadlocked())
	}
}

func TestHorizonAndResume(t *testing.T) {
	w := NewWorld(testConfig())
	defer w.Shutdown()
	var done vclock.Time
	w.Spawn("worker", PriorityNormal, func(th *Thread) any {
		th.Compute(100 * vclock.Millisecond)
		done = th.Now()
		return nil
	})
	if out := w.Run(vclock.Time(30 * vclock.Millisecond)); out != OutcomeHorizon {
		t.Fatalf("first run outcome = %v", out)
	}
	if w.Now() != vclock.Time(30*vclock.Millisecond) {
		t.Fatalf("clock = %v, want 30ms", w.Now())
	}
	if done != 0 {
		t.Fatal("worker finished early")
	}
	if out := w.Run(vclock.Time(vclock.Second)); out != OutcomeQuiescent {
		t.Fatalf("second run outcome = %v", out)
	}
	if done != vclock.Time(100*vclock.Millisecond) {
		t.Fatalf("done = %v, want 100ms", done)
	}
}

func TestStop(t *testing.T) {
	w := NewWorld(testConfig())
	defer w.Shutdown()
	w.Spawn("spinner", PriorityNormal, func(th *Thread) any {
		for {
			th.Compute(vclock.Millisecond)
		}
	})
	w.At(vclock.Time(10*vclock.Millisecond), w.Stop)
	if out := w.Run(vclock.Time(vclock.Second)); out != OutcomeStopped {
		t.Fatalf("outcome = %v, want stopped", out)
	}
	if w.Now() != vclock.Time(10*vclock.Millisecond) {
		t.Fatalf("stopped at %v", w.Now())
	}
}

func TestMultiprocessorParallelism(t *testing.T) {
	cfg := testConfig()
	cfg.CPUs = 2
	w := NewWorld(cfg)
	defer w.Shutdown()
	for _, n := range []string{"a", "b"} {
		w.Spawn(n, PriorityNormal, func(th *Thread) any {
			th.Compute(100 * vclock.Millisecond)
			return nil
		})
	}
	if out := w.Run(vclock.Time(vclock.Second)); out != OutcomeQuiescent {
		t.Fatalf("outcome = %v", out)
	}
	if w.Now() != vclock.Time(100*vclock.Millisecond) {
		t.Fatalf("2 CPUs finished at %v, want 100ms (parallel)", w.Now())
	}
}

func TestSystemDaemonBreaksStarvation(t *testing.T) {
	// A middle-priority CPU hog starves a low-priority thread under
	// strict priority. With the SystemDaemon donating random slices, the
	// low thread makes progress (§6.2).
	run := func(daemon bool) bool {
		cfg := testConfig()
		cfg.SystemDaemon = daemon
		cfg.Seed = 7
		w := NewWorld(cfg)
		defer w.Shutdown()
		lowRan := false
		w.Spawn("hog", PriorityNormal, func(th *Thread) any {
			for {
				th.Compute(10 * vclock.Millisecond)
			}
		})
		w.Spawn("low", PriorityLow, func(th *Thread) any {
			th.Compute(vclock.Millisecond)
			lowRan = true
			return nil
		})
		w.Run(vclock.Time(5 * vclock.Second))
		return lowRan
	}
	if run(false) {
		t.Fatal("low-priority thread ran without the SystemDaemon under a CPU hog")
	}
	if !run(true) {
		t.Fatal("SystemDaemon failed to give the low-priority thread CPU")
	}
}

func TestDeterminism(t *testing.T) {
	capture := func() []trace.Event {
		var buf trace.Buffer
		cfg := Config{Seed: 42, Trace: &buf, SystemDaemon: true}
		w := NewWorld(cfg)
		defer w.Shutdown()
		for i := 0; i < 5; i++ {
			w.Spawn("worker", PriorityNormal, func(th *Thread) any {
				for j := 0; j < 20; j++ {
					th.Compute(vclock.Duration(1+j) * vclock.Millisecond)
					th.Yield()
				}
				return nil
			})
		}
		w.Spawn("sleeper", PriorityLow, func(th *Thread) any {
			for k := 0; k < 10; k++ {
				th.Sleep(30 * vclock.Millisecond)
			}
			return nil
		})
		w.Run(vclock.Time(2 * vclock.Second))
		return buf.Events
	}
	a, b := capture(), capture()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identically seeded runs diverged: %d vs %d events", len(a), len(b))
	}
	if len(a) == 0 {
		t.Fatal("no events captured")
	}
}

func TestSwitchCostCharged(t *testing.T) {
	cfg := Config{SwitchCost: 50 * vclock.Microsecond, TimeoutGranularity: 1}
	w := NewWorld(cfg)
	defer w.Shutdown()
	var done vclock.Time
	w.Spawn("worker", PriorityNormal, func(th *Thread) any {
		th.Compute(vclock.Millisecond)
		done = th.Now()
		return nil
	})
	w.Run(vclock.Time(vclock.Second))
	// 50µs switch-in cost + 1ms compute.
	if done != vclock.Time(1050*vclock.Microsecond) {
		t.Fatalf("done = %v, want 1.05ms", done)
	}
}

func TestForkGenerations(t *testing.T) {
	w := NewWorld(testConfig())
	defer w.Shutdown()
	var gens []int
	w.Spawn("root", PriorityNormal, func(th *Thread) any {
		gens = append(gens, th.Generation())
		c := th.Fork("gen1", func(c1 *Thread) any {
			gens = append(gens, c1.Generation())
			g2 := c1.Fork("gen2", func(c2 *Thread) any {
				gens = append(gens, c2.Generation())
				return nil
			})
			c1.Join(g2)
			return nil
		})
		th.Join(c)
		return nil
	})
	w.Run(vclock.Time(vclock.Second))
	if !reflect.DeepEqual(gens, []int{0, 1, 2}) {
		t.Fatalf("generations = %v, want [0 1 2]", gens)
	}
}

func TestHigherPriorityChildPreemptsParent(t *testing.T) {
	w := NewWorld(testConfig())
	defer w.Shutdown()
	var order []string
	w.Spawn("parent", PriorityNormal, func(th *Thread) any {
		th.ForkPri("hi-child", PriorityHigh, func(c *Thread) any {
			c.Compute(vclock.Millisecond)
			order = append(order, "child")
			return nil
		}).Detach()
		order = append(order, "parent")
		return nil
	})
	w.Run(vclock.Time(vclock.Second))
	if !reflect.DeepEqual(order, []string{"child", "parent"}) {
		t.Fatalf("order = %v, want child first", order)
	}
}

func TestEveryCallback(t *testing.T) {
	w := NewWorld(testConfig())
	defer w.Shutdown()
	var ticks []vclock.Time
	w.Every(10*vclock.Millisecond, func() {
		ticks = append(ticks, w.Now())
		if len(ticks) == 3 {
			w.Stop()
		}
	})
	w.Run(vclock.Time(vclock.Second))
	want := []vclock.Time{
		vclock.Time(10 * vclock.Millisecond),
		vclock.Time(20 * vclock.Millisecond),
		vclock.Time(30 * vclock.Millisecond),
	}
	if !reflect.DeepEqual(ticks, want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
}

func TestSetPriorityPreemptsSelf(t *testing.T) {
	w := NewWorld(testConfig())
	defer w.Shutdown()
	var order []string
	w.Spawn("self-demoter", PriorityHigh, func(th *Thread) any {
		th.Compute(vclock.Millisecond)
		th.SetPriority(PriorityLow) // other thread should now run first
		order = append(order, "demoted")
		return nil
	})
	w.Spawn("other", PriorityNormal, func(th *Thread) any {
		th.Compute(vclock.Millisecond)
		order = append(order, "other")
		return nil
	})
	w.Run(vclock.Time(vclock.Second))
	if !reflect.DeepEqual(order, []string{"other", "demoted"}) {
		t.Fatalf("order = %v", order)
	}
}

func TestOutcomeAndStateStrings(t *testing.T) {
	if OutcomeDeadlock.String() != "deadlock" || OutcomeQuiescent.String() != "quiescent" {
		t.Fatal("outcome names wrong")
	}
	if StateRunnable.String() != "runnable" || StateDead.String() != "dead" {
		t.Fatal("state names wrong")
	}
	if State(99).String() != "invalid" || Outcome(99).String() != "invalid" {
		t.Fatal("out-of-range names wrong")
	}
}

func TestSpawnInvalidPriorityPanics(t *testing.T) {
	w := NewWorld(testConfig())
	defer w.Shutdown()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid priority")
		}
	}()
	w.Spawn("bad", Priority(9), func(th *Thread) any { return nil })
}
