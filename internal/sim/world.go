package sim

import (
	"fmt"
	"io"
	"math/bits"
	"math/rand"

	"repro/internal/eventq"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// World is one simulated PCR instance: a clock, an event queue, a set of
// CPUs, a run queue, and the population of threads. Create one with
// NewWorld, populate it with Spawn and At, then drive it with Run.
//
// A World is not safe for concurrent use; the simulation itself supplies
// all the concurrency semantics.
type World struct {
	cfg     Config
	clock   vclock.Time
	horizon vclock.Time // current Run's `until`; bounds the compute fast path
	evq     eventq.Queue
	sink    trace.Sink
	traceOn bool // false when sink is trace.Discard: record() short-circuits
	rng     *rand.Rand

	cpus []*cpu

	// The ready threads form one intrusive doubly-linked FIFO per priority
	// (Thread.qnext/qprev), with readyMask holding a set bit for every
	// non-empty level so pick-next is a single bits.Len32 rather than a
	// scan, and enqueue/dequeue are pointer splices rather than slice
	// surgery. readyCount caches the total population for DumpState and
	// the SystemDaemon's uniform victim choice.
	readyHead  [NumPriorities + 1]*Thread
	readyTail  [NumPriorities + 1]*Thread
	readyMask  uint32
	readyCount int

	threads     []*Thread // every thread ever created (for Shutdown)
	liveCount   int
	nextID      int32
	forkWaiters []*Thread

	// threadArena is the tail of the current allocation chunk: Thread
	// structs are carved from doubling slabs instead of being allocated
	// one heap object at a time, which is what keeps worlds with
	// 10k-session populations — and fleets of such worlds — cheap to
	// instantiate in bulk. Slots are never recycled; dead threads keep
	// their struct, exactly as before.
	threadArena []Thread
	arenaNext   int

	yield   chan *Thread // a thread hands control back to the driver
	stopped bool

	monitorIDs int64
	cvIDs      int64

	// eventsProcessed counts driver-loop event pops; the probe fields
	// remember what has already been flushed to cfg.Probe so repeated
	// Run calls account each event and clock advance exactly once.
	eventsProcessed int64
	probeSentEvents int64
	probeSentClock  vclock.Time

	// onIdleDeadlock, if set, is invoked (driver context) when the world
	// detects deadlock; used by tests.
	deadlocked []*Thread

	// schedSeq numbers OnSchedule decision points; schedCands is the
	// candidate scratch slice reused across consultations.
	schedSeq   int64
	schedCands []*Thread

	// policy is the effective scheduling discipline (Hooks.Policy with
	// any OnSchedule hook layered on top; PCRPolicy when unset).
	// defaultLevels is true when the base policy is the built-in pcr-rr:
	// levels equal priorities, quanta are Config.Quantum, and the
	// Expired/Age/Tick seams are never consulted — the exact pre-policy
	// dispatch. needPick gates the Pick/Rotate consultation: it is set
	// when an OnSchedule hook exists (the original seam) or the base
	// policy is non-default (the policy must order its candidates).
	policy        Policy
	defaultLevels bool
	needPick      bool
	ageScratch    []ageMove
}

// ageMove is ageReady's scratch record: a queued thread and the level the
// policy's Age wants it moved to.
type ageMove struct {
	t     *Thread
	level Priority
}

type cpu struct {
	index   int
	current *Thread

	quantumEv  eventq.Handle
	quantumEnd vclock.Time
	quantumFn  func() // pre-bound quantumExpire closure, allocated once

	boost    *Thread // dispatch override from YieldButNotToMe / directed yield
	boostEnd vclock.Time
}

// NewWorld creates a world from cfg (see Config.Defaults). If
// cfg.SystemDaemon is set, the daemon thread is spawned immediately.
func NewWorld(cfg Config) *World {
	cfg = cfg.Defaults()
	w := &World{
		cfg:   cfg,
		sink:  cfg.Trace,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		yield: make(chan *Thread),
	}
	pol := cfg.Hooks.Policy
	if pol == nil {
		pol = PCRPolicy
	}
	w.defaultLevels = pol == PCRPolicy
	if h := cfg.Hooks.OnSchedule; h != nil {
		pol = hookPolicy{base: pol, hook: h}
	}
	w.policy = pol
	w.needPick = cfg.Hooks.OnSchedule != nil || !w.defaultLevels
	for i := 0; i < cfg.CPUs; i++ {
		c := &cpu{index: i}
		c.quantumFn = func() { w.quantumExpire(c) }
		w.cpus = append(w.cpus, c)
	}
	// Attach any per-world observer sink before the first thread (the
	// SystemDaemon included) exists, so it sees the complete event stream.
	if f := cfg.Hooks.OnWorld; f != nil {
		if s := f(w); s != nil {
			w.sink = trace.Tee(w.sink, s)
		}
	}
	// Tracing fast path: when the effective sink is the Discard singleton
	// no one can observe the stream, so record() skips building events
	// altogether. Discard's dynamic type is a comparable struct, which
	// makes this test safe against arbitrary sink implementations.
	w.traceOn = w.sink != trace.Discard
	if cfg.SystemDaemon {
		w.spawnSystemDaemon()
	}
	// A non-default policy may request a periodic aging sweep. The tick
	// re-arms itself while live threads exist, so aging worlds still
	// quiesce once every thread has exited. (A world that goes entirely
	// dead and later spawns new threads from At callbacks loses its tick;
	// none of the shipped workloads do that.)
	if !w.defaultLevels {
		if period := w.policy.Tick(); period > 0 {
			w.schedulePolicyTick(period)
		}
	}
	cfg.Hooks.Probe.observeWorld()
	return w
}

// schedulePolicyTick arms the policy's aging sweep one period from now.
func (w *World) schedulePolicyTick(period vclock.Duration) {
	w.evq.Schedule(w.clock.Add(period), func() {
		w.ageReady()
		if w.liveCount > 0 && !w.stopped {
			w.schedulePolicyTick(period)
		}
	})
}

// ageReady offers every queued thread to the policy's Age seam and
// re-enqueues the movers at their new levels. Collect-then-move keeps the
// sweep well-defined while the queues are being walked.
func (w *World) ageReady() {
	moved := w.ageScratch[:0]
	for p := PriorityMin; p <= PriorityInterrupt; p++ {
		for t := w.readyHead[p]; t != nil; t = t.qnext {
			if nl, ok := w.policy.Age(t, w.clock); ok && nl.valid() && nl != t.level {
				moved = append(moved, ageMove{t, nl})
			}
		}
	}
	for _, m := range moved {
		w.removeReady(m.t)
		m.t.level = m.level
		w.pushReadyAt(m.t, m.level)
	}
	w.ageScratch = moved[:0]
}

// Now returns the current virtual time.
func (w *World) Now() vclock.Time { return w.clock }

// Config returns the world's effective (defaulted) configuration.
func (w *World) Config() Config { return w.cfg }

// Rand returns the world's deterministic random source. It is live
// state: every draw advances the stream that the world's own machinery
// (the SystemDaemon's victim choice, the in-world workload models)
// consumes, so two callers sharing it perturb each other. Code outside
// the world — a cluster's router, a test harness, an open-loop load
// generator — must use DeriveRand instead, so sibling instances in a
// multi-world run stay bitwise independent.
func (w *World) Rand() *rand.Rand { return w.rng }

// DeriveRand returns a new deterministic random stream derived from the
// world's seed and name. Unlike Rand, the returned stream is private to
// the caller: drawing from it never perturbs the world's own stream or
// any stream derived under a different name, and the world never draws
// from it. The same (seed, name) pair always yields the same stream, so
// derived streams are as reproducible as the world itself. Each call
// returns a fresh generator positioned at the stream's start.
func (w *World) DeriveRand(name string) *rand.Rand {
	// FNV-1a over the name, mixed with the seed through splitmix64's
	// finalizer: cheap, portable integer arithmetic with no platform-
	// dependent behavior, so derived streams are stable everywhere.
	const (
		fnvOffset = 0xcbf29ce484222325
		fnvPrime  = 0x100000001b3
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= fnvPrime
	}
	z := h + uint64(w.cfg.Seed)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return rand.New(rand.NewSource(int64(z)))
}

// Trace returns the world's trace sink, letting higher layers (monitors,
// workloads) emit their own events into the same stream.
func (w *World) Trace() trace.Sink { return w.sink }

// LiveThreads returns the number of threads that have been created and
// not yet exited.
func (w *World) LiveThreads() int { return w.liveCount }

// Threads returns a copy of the world's thread table — every thread ever
// created, in creation order. Callers may keep or reorder the returned
// slice freely; use EachThread to iterate without allocating.
func (w *World) Threads() []*Thread {
	out := make([]*Thread, len(w.threads))
	copy(out, w.threads)
	return out
}

// EachThread calls f for every thread ever created, in creation order,
// stopping early if f returns false. It is the allocation-free companion
// to Threads for hot callers (fault injection, per-run accounting).
func (w *World) EachThread(f func(*Thread) bool) {
	for _, t := range w.threads {
		if !f(t) {
			return
		}
	}
}

// AllocMonitorID and AllocCVID hand out world-unique identifiers so the
// monitor package can stamp trace events; Table 3 of the paper counts the
// distinct IDs observed during a benchmark.
func (w *World) AllocMonitorID() int64 { w.monitorIDs++; return w.monitorIDs }

// AllocCVID allocates a world-unique condition-variable identifier.
func (w *World) AllocCVID() int64 { w.cvIDs++; return w.cvIDs }

func (w *World) record(ev trace.Event) {
	if !w.traceOn {
		return
	}
	w.sink.Record(ev)
}

// At schedules fn to run in driver context at time t (or now, if t is in
// the past). Driver-context callbacks may Spawn threads and schedule more
// callbacks but must not call thread-context operations (Compute, monitor
// entry, ...). Workload generators are built from At callbacks.
func (w *World) At(t vclock.Time, fn func()) {
	if t < w.clock {
		t = w.clock
	}
	w.evq.Schedule(t, fn)
}

// After schedules fn to run in driver context d from now.
func (w *World) After(d vclock.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	w.At(w.clock.Add(d), fn)
}

// Every schedules fn to run in driver context every period, starting one
// period from now, until the world stops.
func (w *World) Every(period vclock.Duration, fn func()) {
	if period <= 0 {
		panic("sim: Every period must be positive")
	}
	var tick func()
	tick = func() {
		fn()
		if !w.stopped {
			w.After(period, tick)
		}
	}
	w.After(period, tick)
}

// Stop makes the current Run return at the end of the current event.
func (w *World) Stop() { w.stopped = true }

// Spawn creates a thread from driver context (before Run, or inside an At
// callback) and makes it runnable. Threads created by other threads
// should use Thread.Fork instead, which also traces the fork edge.
func (w *World) Spawn(name string, pri Priority, body Proc) *Thread {
	t := w.newThread(name, pri, body, nil)
	w.record(trace.Event{Time: w.clock, Kind: trace.KindFork, Thread: trace.NoThread, Arg: int64(t.id), Aux: int64(pri)})
	w.makeRunnable(t, nil)
	return t
}

func (w *World) newThread(name string, pri Priority, body Proc, parent *Thread) *Thread {
	if !pri.valid() {
		panic(fmt.Sprintf("sim: invalid priority %d for thread %q", pri, name))
	}
	if body == nil {
		panic("sim: nil thread body")
	}
	w.nextID++
	t := w.allocThread()
	*t = Thread{
		w:      w,
		id:     w.nextID,
		name:   name,
		pri:    pri,
		state:  StateNew,
		cpu:    -1,
		body:   body,
		resume: make(chan struct{}),
	}
	// The wake-timeout and compute-completion callbacks close over the
	// thread once at creation; re-creating them per Block/Compute would
	// put a closure allocation on the hottest path in the simulator.
	t.wakeFn = func() {
		t.wakeTimer = eventq.Handle{}
		t.timedOut = true
		w.makeRunnable(t, nil)
	}
	t.completionFn = func() {
		t.completion = eventq.Handle{}
		t.computeLeft = 0
	}
	if parent != nil {
		t.gen = parent.gen + 1
	}
	w.threads = append(w.threads, t)
	w.liveCount++
	go t.main()
	if f := w.cfg.Hooks.OnFork; f != nil {
		f(parent, t)
	}
	return t
}

// Thread-arena chunk bounds: the first slab is small so toy worlds stay
// lean, then slabs double so a 10k-thread world needs ~11 allocations
// for its Thread structs instead of 10k.
const (
	threadArenaMin = 8
	threadArenaMax = 4096
)

// allocThread carves the next Thread slot out of the arena, growing it
// with a doubled slab when the current one is exhausted. Pointers into
// earlier slabs stay valid forever: slabs are never moved or reused.
func (w *World) allocThread() *Thread {
	if w.arenaNext == len(w.threadArena) {
		n := len(w.threadArena) * 2
		if n < threadArenaMin {
			n = threadArenaMin
		}
		if n > threadArenaMax {
			n = threadArenaMax
		}
		w.threadArena = make([]Thread, n)
		w.arenaNext = 0
	}
	t := &w.threadArena[w.arenaNext]
	w.arenaNext++
	return t
}

// Run drives the simulation until the given horizon, until it quiesces or
// deadlocks, or until Stop is called, and reports why it returned. Run may
// be called repeatedly with increasing horizons to continue a simulation.
func (w *World) Run(until vclock.Time) Outcome {
	defer w.flushProbe()
	w.stopped = false
	w.horizon = until
	// A fresh Run gets a fresh verdict: without this, a run that ends
	// OutcomeHorizon after an earlier OutcomeDeadlock would still report
	// the stale deadlocked set from Deadlocked().
	w.deadlocked = nil
	for {
		w.settle()
		if w.stopped {
			return OutcomeStopped
		}
		next := w.evq.NextTime()
		if next == vclock.Never {
			// Nothing scheduled: either everyone exited or the rest are
			// blocked forever.
			w.deadlocked = w.blockedThreads()
			if len(w.deadlocked) == 0 {
				return OutcomeQuiescent
			}
			return OutcomeDeadlock
		}
		if next > until {
			w.clock = until
			return OutcomeHorizon
		}
		do, when, _ := w.evq.PopDo()
		if when < w.clock {
			panic(fmt.Sprintf("sim: clock would run backwards: %v -> %v", w.clock, when))
		}
		w.eventsProcessed++
		w.clock = when
		if do != nil {
			do()
		}
	}
}

// Deadlocked returns the threads that were blocked with no possible waker
// when Run last returned OutcomeDeadlock, or nil. The returned slice is
// the caller's to keep.
func (w *World) Deadlocked() []*Thread {
	if len(w.deadlocked) == 0 {
		return nil
	}
	out := make([]*Thread, len(w.deadlocked))
	copy(out, w.deadlocked)
	return out
}

// EventsProcessed returns the number of discrete events the driver loop
// has executed so far.
func (w *World) EventsProcessed() int64 { return w.eventsProcessed }

// ScheduleDecisions returns how many decision points have been offered to
// the scheduling policy (Config.Hooks.OnSchedule / Hooks.Policy) so far.
// It is always zero without a hook or a non-default policy: decision
// points exist only where a consultation could have changed the schedule,
// so the count doubles as the length of a replayable decision trace.
func (w *World) ScheduleDecisions() int64 { return w.schedSeq }

// flushProbe forwards the not-yet-reported event and clock deltas to the
// configured probe (if any). Called every time Run returns.
func (w *World) flushProbe() {
	if w.cfg.Hooks.Probe == nil {
		return
	}
	w.cfg.Hooks.Probe.add(w.eventsProcessed-w.probeSentEvents, w.clock.Sub(w.probeSentClock))
	w.probeSentEvents = w.eventsProcessed
	w.probeSentClock = w.clock
}

func (w *World) blockedThreads() []*Thread {
	var out []*Thread
	for _, t := range w.threads {
		if t.state == StateBlocked {
			out = append(out, t)
		}
	}
	return out
}

// DumpState writes a human-readable snapshot of every live thread — its
// state, priority and block reason — plus the run queue and CPUs, to out.
// It is the tool to reach for when Run returns OutcomeDeadlock.
func (w *World) DumpState(out io.Writer) {
	fmt.Fprintf(out, "world at %s: %d live thread(s), %d runnable\n", w.clock, w.liveCount, w.runnableCount())
	for i, c := range w.cpus {
		cur := "idle"
		if c.current != nil {
			cur = c.current.String()
		}
		boost := ""
		if c.boost != nil {
			boost = fmt.Sprintf(" boost=%s until %s", c.boost.name, c.boostEnd)
		}
		fmt.Fprintf(out, "  cpu%d: %s%s\n", i, cur, boost)
	}
	for _, t := range w.threads {
		if t.state == StateDead {
			continue
		}
		extra := ""
		if t.state == StateBlocked {
			deadline := "forever"
			if t.wakeTimer.Valid() {
				deadline = "timed"
			}
			extra = fmt.Sprintf(" blocked-on=%s since %s (%s)",
				BlockReasonName(t.blockReason), t.blockSince, deadline)
		}
		fmt.Fprintf(out, "  %s%s\n", t, extra)
	}
}

// Shutdown terminates every live thread goroutine. After Shutdown the
// world must not be used again. Tests use it to avoid leaking goroutines;
// experiments that simply let the process exit may skip it.
func (w *World) Shutdown() {
	for _, t := range w.threads {
		if t.state == StateDead || t.started && t.finished {
			continue
		}
		t.killed = true
		t.resume <- struct{}{}
		<-w.yield
		t.state = StateDead
	}
}

// makeRunnable moves t to the run queue. by is the thread responsible for
// the wakeup (nil for timers and external events).
func (w *World) makeRunnable(t *Thread, by *Thread) {
	if t.state == StateRunnable || t.state == StateRunning {
		panic(fmt.Sprintf("sim: makeRunnable on %v thread %s", t.state, t.name))
	}
	t.state = StateRunnable
	w.pushReady(t, true)
	byID := int64(trace.NoThread)
	if by != nil {
		byID = int64(by.id)
	}
	w.record(trace.Event{Time: w.clock, Kind: trace.KindReady, Thread: t.id, Arg: byID})
}

// SetPriorityOf changes another thread's priority — the primitive under
// priority inheritance, the §6.2/§7 technique the paper left as future
// work ("we chose not to incur the implementation overhead of providing
// priority inheritance from blocked threads to threads holding locks...
// someone should investigate these techniques for interactive systems").
// Callable from thread or driver context; any needed preemption happens
// at the next scheduling point.
func (w *World) SetPriorityOf(t *Thread, p Priority) {
	if !p.valid() {
		panic(fmt.Sprintf("sim: invalid priority %d", p))
	}
	if p == t.pri {
		return
	}
	w.record(trace.Event{Time: w.clock, Kind: trace.KindSetPriority, Thread: t.id, Arg: int64(t.pri), Aux: int64(p)})
	if t.state == StateRunnable {
		w.removeReady(t)
		t.pri = p
		w.pushReady(t, false)
		return
	}
	t.pri = p
}

// NotifyDropped consults the Hooks.OnNotify fault hook for a NOTIFY on
// the named condition variable and reports whether the notification
// should be swallowed. Package monitor calls it on every NOTIFY; with no
// hook configured it is always false.
func (w *World) NotifyDropped(cv string) bool {
	return w.cfg.Hooks.OnNotify != nil && w.cfg.Hooks.OnNotify(cv)
}

// KillThread injects an uncaught error into t: the next time t would run
// it panics with v instead, dying exactly as if its own body had raised v
// (§5.5 crashes; JOIN and task rejuvenation observe a PanicError). A
// blocked victim is woken to receive the error. Call from driver context
// (an At callback); a nil v is replaced with a generic crash value.
// Returns false if t is already dead. Unlike Shutdown's teardown, the
// panic unwinds as an application error, so rejuvenation wrappers catch
// it and monitor queues the victim was waiting on are cleaned up.
func (w *World) KillThread(t *Thread, v any) bool {
	if t.state == StateDead || t.finished {
		return false
	}
	if v == nil {
		v = fmt.Sprintf("thread %q killed by fault injection", t.name)
	}
	t.injected = v
	t.hasInjected = true
	if t.state == StateBlocked {
		w.WakeIfBlocked(t, nil)
	}
	return true
}

// SetMaxThreads changes the world's live-thread bound at runtime — the
// primitive under the fault layer's ForkExhaustion window (§5.4). n <= 0
// removes the bound. Raising or removing the bound admits as many waiting
// FORKs as the new bound allows. Call from driver context.
func (w *World) SetMaxThreads(n int) {
	if n < 0 {
		n = 0
	}
	if n == w.cfg.MaxThreads {
		return
	}
	w.cfg.MaxThreads = n
	free := len(w.forkWaiters)
	if n > 0 {
		free = n - w.liveCount
	}
	// Each admitted waiter re-checks the bound in its FORK loop, so
	// over-admission is safe; under-admission would strand a waiter.
	for free > 0 && len(w.forkWaiters) > 0 {
		t := w.forkWaiters[0]
		w.forkWaiters = w.forkWaiters[1:]
		w.WakeIfBlocked(t, nil)
		free--
	}
}

// RegisterAuditor forwards a post-run audit closure to the world's probe,
// if any. Package monitor registers one per monitor so harnesses can
// sweep every CV an experiment created for the §5.3 masked-missing-NOTIFY
// signature after the run completes (Probe.Audit). With no probe
// configured the registration is dropped.
func (w *World) RegisterAuditor(f func(minWaits int) []string) {
	if w.cfg.Hooks.Probe != nil {
		w.cfg.Hooks.Probe.registerAuditor(f)
	}
}

// WakeIfBlocked makes t runnable if it is currently blocked, and reports
// whether it did so. It is the low-level wake primitive used by package
// monitor; by attributes the wake in the trace. A pending block timeout
// is cancelled.
func (w *World) WakeIfBlocked(t *Thread, by *Thread) bool {
	if t.state != StateBlocked {
		return false
	}
	if t.wakeTimer.Valid() {
		w.evq.Cancel(t.wakeTimer)
		t.wakeTimer = eventq.Handle{}
	}
	w.makeRunnable(t, by)
	return true
}

// runnableCount returns the number of threads in the run queue.
func (w *World) runnableCount() int { return w.readyCount }

// pushReady enqueues t at the tail of the ready level the scheduling
// policy assigns it — always the thread's own priority under the default
// pcr-rr policy. wake distinguishes a fresh wakeup (blocked/new →
// runnable) from a preemption or yield requeue; policies like mlfq treat
// the two differently.
func (w *World) pushReady(t *Thread, wake bool) {
	p := t.pri
	if !w.defaultLevels {
		p = w.policyLevel(t, wake)
	}
	t.level = p
	w.pushReadyAt(t, p)
}

// policyLevel asks the policy for t's ready level, falling back to the
// thread's priority on an invalid answer.
func (w *World) policyLevel(t *Thread, wake bool) Priority {
	if p := w.policy.Level(t, wake, w.clock); p.valid() {
		return p
	}
	return t.pri
}

// pushReadyAt appends t to the tail of level p's ready FIFO and marks
// the level occupied. t.level must already equal p.
func (w *World) pushReadyAt(t *Thread, p Priority) {
	t.qnext = nil
	t.qprev = w.readyTail[p]
	if w.readyTail[p] != nil {
		w.readyTail[p].qnext = t
	} else {
		w.readyHead[p] = t
		w.readyMask |= 1 << uint(p)
	}
	w.readyTail[p] = t
	w.readyCount++
}

// removeReady unlinks t from its level's ready FIFO. It panics if t is
// not queued, which would indicate state corruption.
func (w *World) removeReady(t *Thread) {
	p := t.level
	if t.qprev == nil && w.readyHead[p] != t {
		panic(fmt.Sprintf("sim: thread %s not on run queue", t.name))
	}
	if t.qprev != nil {
		t.qprev.qnext = t.qnext
	} else {
		w.readyHead[p] = t.qnext
	}
	if t.qnext != nil {
		t.qnext.qprev = t.qprev
	} else {
		w.readyTail[p] = t.qprev
	}
	t.qnext, t.qprev = nil, nil
	if w.readyHead[p] == nil {
		w.readyMask &^= 1 << uint(p)
	}
	w.readyCount--
}

// topRunnable returns the head of the highest non-empty priority queue in
// O(1) via the occupancy bitmap.
func (w *World) topRunnable() *Thread {
	if w.readyMask == 0 {
		return nil
	}
	return w.readyHead[bits.Len32(w.readyMask)-1]
}
