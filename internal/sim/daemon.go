package sim

import "repro/internal/vclock"

// spawnSystemDaemon creates the priority-6 sleeper of §6.2: it "regularly
// wakes up and donates, using a directed yield, a small timeslice to
// another thread chosen at random. In this way we ensure that all ready
// threads get some cpu resource, regardless of their priorities." It is
// the workaround PCR shipped for stable priority inversions, at the cost
// of an incompletely specified priority model (§6.2's own complaint).
func (w *World) spawnSystemDaemon() {
	w.Spawn("SystemDaemon", PriorityDaemon, func(t *Thread) any {
		for {
			t.Sleep(w.cfg.SystemDaemonPeriod)
			if victim := w.randomRunnable(); victim != nil {
				t.DirectedYieldFor(victim, w.cfg.SystemDaemonSlice)
			}
		}
	})
}

// randomRunnable picks a uniformly random thread from the run queue, or
// nil if the queue is empty.
func (w *World) randomRunnable() *Thread {
	n := w.runnableCount()
	if n == 0 {
		return nil
	}
	k := w.rng.Intn(n)
	for p := PriorityMin; p <= PriorityInterrupt; p++ {
		for t := w.readyHead[p]; t != nil; t = t.qnext {
			if k == 0 {
				return t
			}
			k--
		}
	}
	return nil
}

// DirectedYieldFor donates at most slice of the caller's timeslice to
// target, then parks the caller at the back of its priority queue. A
// non-positive slice donates the remainder of the timeslice, like
// DirectedYield.
func (t *Thread) DirectedYieldFor(target *Thread, slice vclock.Duration) {
	t.checkThreadContext("DirectedYieldFor")
	if slice < 0 {
		slice = 0
	}
	t.yieldSlice = slice
	t.DirectedYield(target)
}
