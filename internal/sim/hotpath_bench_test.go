package sim

import (
	"fmt"
	"testing"

	"repro/internal/eventq"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// The hot-path allocation suite. The PR-5 overhaul made the event loop,
// the ready queues and the discard-sink tracing path allocation-free in
// steady state; these benchmarks report allocs/op so a regression is
// visible in `make bench` output, and TestHotPathAllocs pins the
// steady-state counts to zero so a regression fails the suite outright.

// BenchmarkEventLoop measures one pooled timer event: schedule into the
// indexed heap, pop, recycle the event struct.
func BenchmarkEventLoop(b *testing.B) {
	w := NewWorld(Config{TimeoutGranularity: 1})
	defer w.Shutdown()
	n := b.N
	fired := 0
	var tick func()
	tick = func() {
		fired++
		if fired < n {
			w.After(vclock.Microsecond, tick)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	w.After(vclock.Microsecond, tick)
	w.Run(vclock.Never - 1)
	if fired != n {
		b.Fatalf("fired %d of %d", fired, n)
	}
}

// BenchmarkReadyQueueOps measures the intrusive ready-queue primitives:
// 64 threads across all seven priorities pushed, then drained in
// priority order through the occupancy bitmap.
func BenchmarkReadyQueueOps(b *testing.B) {
	w := NewWorld(Config{})
	defer w.Shutdown()
	body := func(t *Thread) any { return nil }
	ths := make([]*Thread, 64)
	for i := range ths {
		ths[i] = w.newThread(fmt.Sprintf("t%d", i), Priority(1+i%int(NumPriorities)), body, nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, t := range ths {
			w.pushReady(t, false)
		}
		for w.readyMask != 0 {
			w.removeReady(w.topRunnable())
		}
	}
}

// BenchmarkDiscardTrace measures the tracing fast path when the sink is
// trace.Discard: one predicate load, no event copy.
func BenchmarkDiscardTrace(b *testing.B) {
	w := NewWorld(Config{})
	defer w.Shutdown()
	ev := trace.Event{Time: 1, Kind: trace.KindYield, Thread: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.record(ev)
	}
}

// BenchmarkComputeFastPath measures the inline clock advance: a lone
// running thread consuming CPU demand with no competitor and no
// intervening event skips the park/heap round trip entirely.
func BenchmarkComputeFastPath(b *testing.B) {
	w := NewWorld(Config{SwitchCost: -1, TimeoutGranularity: 1})
	defer w.Shutdown()
	stop := false
	w.Spawn("worker", PriorityNormal, func(t *Thread) any {
		for !stop {
			t.Compute(vclock.Microsecond)
		}
		return nil
	})
	horizon := vclock.Time(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		horizon = horizon.Add(vclock.Microsecond)
		w.Run(horizon)
	}
	b.StopTimer()
	stop = true
}

// BenchmarkWheelScheduleCancel measures the mostly-cancelled timer
// population the paper's CV timeouts produce: schedule a spread of
// pooled timers across every wheel level, then cancel them all before
// any fires — pure O(1) bucket splices, no heap traffic.
func BenchmarkWheelScheduleCancel(b *testing.B) {
	w := NewWorld(Config{TimeoutGranularity: 1})
	defer w.Shutdown()
	nop := func() {}
	offsets := []vclock.Duration{ // one per wheel level, plus slot strides
		3 * vclock.Microsecond, 150 * vclock.Microsecond,
		20 * vclock.Millisecond, 2 * vclock.Second,
	}
	handles := make([]eventq.Handle, 0, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		handles = handles[:0]
		for j := 0; j < 64; j++ {
			d := offsets[j%len(offsets)] + vclock.Duration(j)*vclock.Microsecond
			handles = append(handles, w.evq.Schedule(w.clock.Add(d), nop))
		}
		for _, h := range handles {
			w.evq.Cancel(h)
		}
	}
}

// BenchmarkBatchAdmission measures a same-timestamp event run draining
// through a single level-0 wheel bucket: after the first pop finds the
// bucket, each further event is an O(1) head unlink with no per-event
// heap consultation.
func BenchmarkBatchAdmission(b *testing.B) {
	w := NewWorld(Config{TimeoutGranularity: 1})
	defer w.Shutdown()
	const batch = 64
	fired := 0
	nop := func() { fired++ }
	horizon := vclock.Time(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < batch; j++ {
			w.After(vclock.Microsecond, nop) // all at the same instant
		}
		horizon = horizon.Add(2 * vclock.Microsecond)
		w.Run(horizon)
	}
	b.StopTimer()
	if fired != b.N*batch {
		b.Fatalf("fired %d of %d", fired, b.N*batch)
	}
}

// TestHotPathAllocs pins the steady-state allocation counts of the three
// hot paths to exactly zero. `make bench` runs this test alongside the
// benchmarks, so an allocation slipping back into the hot path fails CI
// rather than silently eroding the throughput win.
func TestHotPathAllocs(t *testing.T) {
	// Event loop: batches of pooled timer events through the indexed heap.
	w := NewWorld(Config{TimeoutGranularity: 1})
	defer w.Shutdown()
	const batch = 100
	fired := 0
	var tick func()
	tick = func() {
		fired++
		if fired%batch != 0 {
			w.After(vclock.Microsecond, tick)
		}
	}
	horizon := vclock.Time(0)
	runBatch := func() {
		w.After(vclock.Microsecond, tick)
		horizon = horizon.Add(2 * batch * vclock.Microsecond)
		w.Run(horizon)
	}
	runBatch() // warm the event pool
	if got := testing.AllocsPerRun(10, runBatch); got > 0 {
		t.Errorf("event loop: %.1f allocs per %d events, want 0", got, batch)
	}

	// Ready-queue ops: intrusive splice in, bitmap-guided drain.
	body := func(th *Thread) any { return nil }
	ths := make([]*Thread, 64)
	for i := range ths {
		ths[i] = w.newThread(fmt.Sprintf("rq%d", i), Priority(1+i%int(NumPriorities)), body, nil)
	}
	pushDrain := func() {
		for _, th := range ths {
			w.pushReady(th, false)
		}
		for w.readyMask != 0 {
			w.removeReady(w.topRunnable())
		}
	}
	if got := testing.AllocsPerRun(10, pushDrain); got > 0 {
		t.Errorf("ready queue: %.1f allocs per push+drain of %d threads, want 0", got, len(ths))
	}

	// Discard-sink tracing: record must be a guarded no-op.
	ev := trace.Event{Time: 1, Kind: trace.KindYield, Thread: 1}
	if got := testing.AllocsPerRun(100, func() { w.record(ev) }); got > 0 {
		t.Errorf("discard tracing: %.1f allocs per record, want 0", got)
	}

	// Timing wheel schedule/cancel: the mostly-cancelled CV-timeout
	// population. Offsets span all four wheel levels so a regression in
	// any level's bucket splice shows up.
	nop := func() {}
	offsets := []vclock.Duration{
		3 * vclock.Microsecond, 150 * vclock.Microsecond,
		20 * vclock.Millisecond, 2 * vclock.Second,
	}
	handles := make([]eventq.Handle, 0, 64)
	churn := func() {
		handles = handles[:0]
		for j := 0; j < 64; j++ {
			d := offsets[j%len(offsets)] + vclock.Duration(j)*vclock.Microsecond
			handles = append(handles, w.evq.Schedule(w.clock.Add(d), nop))
		}
		for _, h := range handles {
			w.evq.Cancel(h)
		}
	}
	churn() // warm the event pool across levels
	if got := testing.AllocsPerRun(10, churn); got > 0 {
		t.Errorf("wheel schedule/cancel: %.1f allocs per %d-timer churn, want 0", got, len(handles))
	}

	// Batch admission: a same-timestamp run drains through one level-0
	// bucket without per-event heap consultation — and without allocating.
	const batchN = 64
	drained := 0
	bump := func() { drained++ }
	batchDrain := func() {
		for j := 0; j < batchN; j++ {
			w.After(vclock.Microsecond, bump)
		}
		horizon = horizon.Add(2 * vclock.Microsecond)
		w.Run(horizon)
	}
	batchDrain() // warm the pool to batch depth
	before := drained
	if got := testing.AllocsPerRun(10, batchDrain); got > 0 {
		t.Errorf("batch admission: %.1f allocs per %d-event drain, want 0", got, batchN)
	}
	if drained-before != 10*batchN+batchN {
		// AllocsPerRun does runs+1 invocations (one extra warmup call).
		t.Errorf("batch admission drained %d events, want %d", drained-before, 11*batchN)
	}
}
