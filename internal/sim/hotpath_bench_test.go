package sim

import (
	"fmt"
	"testing"

	"repro/internal/trace"
	"repro/internal/vclock"
)

// The hot-path allocation suite. The PR-5 overhaul made the event loop,
// the ready queues and the discard-sink tracing path allocation-free in
// steady state; these benchmarks report allocs/op so a regression is
// visible in `make bench` output, and TestHotPathAllocs pins the
// steady-state counts to zero so a regression fails the suite outright.

// BenchmarkEventLoop measures one pooled timer event: schedule into the
// indexed heap, pop, recycle the event struct.
func BenchmarkEventLoop(b *testing.B) {
	w := NewWorld(Config{TimeoutGranularity: 1})
	defer w.Shutdown()
	n := b.N
	fired := 0
	var tick func()
	tick = func() {
		fired++
		if fired < n {
			w.After(vclock.Microsecond, tick)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	w.After(vclock.Microsecond, tick)
	w.Run(vclock.Never - 1)
	if fired != n {
		b.Fatalf("fired %d of %d", fired, n)
	}
}

// BenchmarkReadyQueueOps measures the intrusive ready-queue primitives:
// 64 threads across all seven priorities pushed, then drained in
// priority order through the occupancy bitmap.
func BenchmarkReadyQueueOps(b *testing.B) {
	w := NewWorld(Config{})
	defer w.Shutdown()
	body := func(t *Thread) any { return nil }
	ths := make([]*Thread, 64)
	for i := range ths {
		ths[i] = w.newThread(fmt.Sprintf("t%d", i), Priority(1+i%int(NumPriorities)), body, nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, t := range ths {
			w.pushReady(t)
		}
		for w.readyMask != 0 {
			w.removeReady(w.topRunnable())
		}
	}
}

// BenchmarkDiscardTrace measures the tracing fast path when the sink is
// trace.Discard: one predicate load, no event copy.
func BenchmarkDiscardTrace(b *testing.B) {
	w := NewWorld(Config{})
	defer w.Shutdown()
	ev := trace.Event{Time: 1, Kind: trace.KindYield, Thread: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.record(ev)
	}
}

// BenchmarkComputeFastPath measures the inline clock advance: a lone
// running thread consuming CPU demand with no competitor and no
// intervening event skips the park/heap round trip entirely.
func BenchmarkComputeFastPath(b *testing.B) {
	w := NewWorld(Config{SwitchCost: -1, TimeoutGranularity: 1})
	defer w.Shutdown()
	stop := false
	w.Spawn("worker", PriorityNormal, func(t *Thread) any {
		for !stop {
			t.Compute(vclock.Microsecond)
		}
		return nil
	})
	horizon := vclock.Time(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		horizon = horizon.Add(vclock.Microsecond)
		w.Run(horizon)
	}
	b.StopTimer()
	stop = true
}

// TestHotPathAllocs pins the steady-state allocation counts of the three
// hot paths to exactly zero. `make bench` runs this test alongside the
// benchmarks, so an allocation slipping back into the hot path fails CI
// rather than silently eroding the throughput win.
func TestHotPathAllocs(t *testing.T) {
	// Event loop: batches of pooled timer events through the indexed heap.
	w := NewWorld(Config{TimeoutGranularity: 1})
	defer w.Shutdown()
	const batch = 100
	fired := 0
	var tick func()
	tick = func() {
		fired++
		if fired%batch != 0 {
			w.After(vclock.Microsecond, tick)
		}
	}
	horizon := vclock.Time(0)
	runBatch := func() {
		w.After(vclock.Microsecond, tick)
		horizon = horizon.Add(2 * batch * vclock.Microsecond)
		w.Run(horizon)
	}
	runBatch() // warm the event pool
	if got := testing.AllocsPerRun(10, runBatch); got > 0 {
		t.Errorf("event loop: %.1f allocs per %d events, want 0", got, batch)
	}

	// Ready-queue ops: intrusive splice in, bitmap-guided drain.
	body := func(th *Thread) any { return nil }
	ths := make([]*Thread, 64)
	for i := range ths {
		ths[i] = w.newThread(fmt.Sprintf("rq%d", i), Priority(1+i%int(NumPriorities)), body, nil)
	}
	pushDrain := func() {
		for _, th := range ths {
			w.pushReady(th)
		}
		for w.readyMask != 0 {
			w.removeReady(w.topRunnable())
		}
	}
	if got := testing.AllocsPerRun(10, pushDrain); got > 0 {
		t.Errorf("ready queue: %.1f allocs per push+drain of %d threads, want 0", got, len(ths))
	}

	// Discard-sink tracing: record must be a guarded no-op.
	ev := trace.Event{Time: 1, Kind: trace.KindYield, Thread: 1}
	if got := testing.AllocsPerRun(100, func() { w.record(ev) }); got > 0 {
		t.Errorf("discard tracing: %.1f allocs per record, want 0", got)
	}
}
