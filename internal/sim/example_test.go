package sim_test

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/vclock"
)

// A minimal world: fork a child, join it, observe virtual time.
func ExampleWorld() {
	w := sim.NewWorld(sim.Config{SwitchCost: -1, TimeoutGranularity: 1})
	defer w.Shutdown()

	w.Spawn("parent", sim.PriorityNormal, func(t *sim.Thread) any {
		child := t.Fork("child", func(c *sim.Thread) any {
			c.Compute(30 * vclock.Millisecond)
			return "result"
		})
		v, err := t.Join(child)
		fmt.Printf("joined %q (err=%v) at %s\n", v, err, t.Now())
		return nil
	})
	outcome := w.Run(vclock.Time(vclock.Second))
	fmt.Println("outcome:", outcome)
	// Output:
	// joined "result" (err=<nil>) at 0.030000s
	// outcome: quiescent
}

// Preemption: a higher-priority thread takes the CPU the instant it
// becomes runnable.
func ExampleThread_ForkPri() {
	w := sim.NewWorld(sim.Config{SwitchCost: -1, TimeoutGranularity: 1})
	defer w.Shutdown()

	w.Spawn("worker", sim.PriorityNormal, func(t *sim.Thread) any {
		t.ForkPri("urgent", sim.PriorityHigh, func(c *sim.Thread) any {
			fmt.Println("urgent first")
			return nil
		}).Detach()
		fmt.Println("worker resumes")
		return nil
	})
	w.Run(vclock.Time(vclock.Second))
	// Output:
	// urgent first
	// worker resumes
}

// YieldButNotToMe gives the CPU to a lower-priority thread until the end
// of the timeslice — the §5.2 primitive.
func ExampleThread_YieldButNotToMe() {
	w := sim.NewWorld(sim.Config{SwitchCost: -1, TimeoutGranularity: 1, Quantum: 50 * vclock.Millisecond})
	defer w.Shutdown()

	w.Spawn("background", sim.PriorityLow, func(t *sim.Thread) any {
		t.Compute(10 * vclock.Millisecond)
		fmt.Println("background progressed at", t.Now())
		t.Compute(200 * vclock.Millisecond) // still busy at quantum end
		return nil
	})
	w.Spawn("buffer", sim.PriorityHigh, func(t *sim.Thread) any {
		t.YieldButNotToMe() // cede to the low thread despite outranking it
		fmt.Println("buffer back at", t.Now())
		return nil
	})
	w.Run(vclock.Time(vclock.Second))
	// The boost ends with the timeslice: the buffer thread resumes at the
	// 50ms quantum boundary, not when the background thread finishes.
	// Output:
	// background progressed at 0.010000s
	// buffer back at 0.050000s
}
