package sim

import (
	"reflect"
	"testing"

	"repro/internal/trace"
	"repro/internal/vclock"
)

// runOrderWorld spawns n equal-priority workers that each append their
// name to order as they run, under the given hook, and returns the order.
func runOrderWorld(t *testing.T, hook func(Decision) int, names ...string) ([]string, *World) {
	t.Helper()
	cfg := testConfig()
	cfg.Hooks.OnSchedule = hook
	w := NewWorld(cfg)
	t.Cleanup(w.Shutdown)
	var order []string
	for _, name := range names {
		name := name
		w.Spawn(name, PriorityNormal, func(th *Thread) any {
			order = append(order, name)
			th.Compute(vclock.Millisecond)
			return nil
		})
	}
	if out := w.Run(vclock.Time(vclock.Second)); out != OutcomeQuiescent {
		t.Fatalf("outcome = %v, want quiescent", out)
	}
	return order, w
}

// TestOnScheduleNil: without a hook no decision points are counted, and a
// hook that always answers 0 (the default pick) leaves the trace
// byte-identical to the nil-hook run — the seam must be invisible unless
// exercised.
func TestOnScheduleNil(t *testing.T) {
	capture := func(hook func(Decision) int) ([]trace.Event, int64) {
		var buf trace.Buffer
		cfg := testConfig()
		cfg.Trace = &buf
		cfg.Hooks.OnSchedule = hook
		w := NewWorld(cfg)
		defer w.Shutdown()
		for _, name := range []string{"a", "b", "c"} {
			w.Spawn(name, PriorityNormal, func(th *Thread) any {
				for i := 0; i < 3; i++ {
					th.Compute(60 * vclock.Millisecond) // crosses quantum expiries
					th.Yield()
				}
				return nil
			})
		}
		w.Run(vclock.Time(vclock.Second))
		return buf.Events, w.ScheduleDecisions()
	}

	evNil, seqNil := capture(nil)
	if seqNil != 0 {
		t.Fatalf("nil hook counted %d decisions, want 0", seqNil)
	}
	evDefault, seqDefault := capture(func(Decision) int { return 0 })
	if seqDefault == 0 {
		t.Fatalf("default hook saw no decision points; scenario too small")
	}
	if !reflect.DeepEqual(evNil, evDefault) {
		t.Errorf("always-default hook changed the trace (%d vs %d events)", len(evDefault), len(evNil))
	}
}

// TestOnScheduleFlipsDispatch: at the first decision point two
// equal-priority threads are both ready; answering 1 runs the
// second-spawned thread first, inverting FIFO order.
func TestOnScheduleFlipsDispatch(t *testing.T) {
	def, _ := runOrderWorld(t, nil, "first", "second")
	if !reflect.DeepEqual(def, []string{"first", "second"}) {
		t.Fatalf("default order = %v", def)
	}
	flipped, w := runOrderWorld(t, func(d Decision) int {
		if d.Seq == 0 {
			if len(d.Candidates) != 2 {
				t.Errorf("candidates = %d, want 2", len(d.Candidates))
			}
			for _, c := range d.Candidates {
				if c.Priority() != PriorityNormal {
					t.Errorf("candidate %s has priority %d", c.Name(), c.Priority())
				}
			}
			return 1
		}
		return 0
	}, "first", "second")
	if !reflect.DeepEqual(flipped, []string{"second", "first"}) {
		t.Errorf("flipped order = %v, want [second first]", flipped)
	}
	if w.ScheduleDecisions() == 0 {
		t.Errorf("no decision points recorded")
	}
}

// TestOnScheduleOutOfRange: answers outside [0, len) select the default.
func TestOnScheduleOutOfRange(t *testing.T) {
	for _, bad := range []int{-1, 99} {
		order, _ := runOrderWorld(t, func(Decision) int { return bad }, "first", "second")
		if !reflect.DeepEqual(order, []string{"first", "second"}) {
			t.Errorf("answer %d: order = %v, want default FIFO", bad, order)
		}
	}
}

// TestOnScheduleRotationKeep: at quantum expiry with an equal-priority
// peer queued, the candidate list ends with the current thread; choosing
// it suppresses the rotation, so the incumbent finishes before the peer
// ever runs.
func TestOnScheduleRotationKeep(t *testing.T) {
	run := func(hook func(Decision) int) []string {
		cfg := testConfig()
		cfg.Hooks.OnSchedule = hook
		w := NewWorld(cfg)
		defer w.Shutdown()
		var done []string
		for _, name := range []string{"incumbent", "peer"} {
			name := name
			w.Spawn(name, PriorityNormal, func(th *Thread) any {
				th.Compute(120 * vclock.Millisecond) // > 2 quanta
				done = append(done, name)
				return nil
			})
		}
		if out := w.Run(vclock.Time(vclock.Second)); out != OutcomeQuiescent {
			t.Fatalf("outcome = %v", out)
		}
		return done
	}

	// Default: round-robin interleaves, so the peer's remaining compute
	// delays the incumbent past the peer's own finish... both rotate, and
	// FIFO spawn order decides who completes first.
	def := run(nil)
	if !reflect.DeepEqual(def, []string{"incumbent", "peer"}) {
		t.Fatalf("default completion order = %v", def)
	}

	var sawKeep bool
	keep := run(func(d Decision) int {
		// Dispatch decisions offer only queued threads; rotation decisions
		// additionally offer the running incumbent as the last candidate.
		last := d.Candidates[len(d.Candidates)-1]
		if last.State() == StateRunning {
			sawKeep = true
			return len(d.Candidates) - 1
		}
		return 0
	})
	if !sawKeep {
		t.Fatalf("no rotation decision offered the running thread")
	}
	if !reflect.DeepEqual(keep, []string{"incumbent", "peer"}) {
		t.Errorf("keep-running order = %v, want incumbent first", keep)
	}
}

// TestOnScheduleRotationPicksTail: a rotation answer may select a
// non-head queue member, skipping over the FIFO-next thread.
func TestOnScheduleRotationPicksTail(t *testing.T) {
	order, _ := runOrderWorld(t, func(d Decision) int {
		if d.Seq == 0 && len(d.Candidates) == 3 {
			return 2
		}
		return 0
	}, "a", "b", "c")
	if !reflect.DeepEqual(order, []string{"c", "a", "b"}) {
		t.Errorf("order = %v, want [c a b]", order)
	}
}

// TestOnScheduleStrictPriority: candidates never span priorities, so no
// hook answer can run a lower-priority thread while a higher one waits.
func TestOnScheduleStrictPriority(t *testing.T) {
	cfg := testConfig()
	var order []string
	cfg.Hooks.OnSchedule = func(d Decision) int {
		pri := d.Candidates[0].Priority()
		for _, c := range d.Candidates {
			if c.Priority() != pri {
				t.Errorf("mixed-priority candidate list: %v vs %v", c.Priority(), pri)
			}
		}
		return len(d.Candidates) - 1 // adversarial: always last
	}
	w := NewWorld(cfg)
	defer w.Shutdown()
	spawn := func(name string, pri Priority) {
		w.Spawn(name, pri, func(th *Thread) any {
			order = append(order, name)
			th.Compute(vclock.Millisecond)
			return nil
		})
	}
	spawn("low1", PriorityLow)
	spawn("low2", PriorityLow)
	spawn("high1", PriorityHigh)
	spawn("high2", PriorityHigh)
	if out := w.Run(vclock.Time(vclock.Second)); out != OutcomeQuiescent {
		t.Fatalf("outcome = %v", out)
	}
	if len(order) != 4 || order[0][:4] != "high" || order[1][:4] != "high" {
		t.Errorf("order = %v, want both high-priority threads first", order)
	}
}

// TestOnScheduleSeqDense: sequence numbers are consecutive from zero —
// the property replay tokens depend on.
func TestOnScheduleSeqDense(t *testing.T) {
	var want int64
	hook := func(d Decision) int {
		if d.Seq != want {
			t.Errorf("decision seq = %d, want %d", d.Seq, want)
		}
		want++
		if len(d.Candidates) < 2 {
			t.Errorf("decision with %d candidate(s) offered", len(d.Candidates))
		}
		return int(d.Seq) % len(d.Candidates)
	}
	_, w := runOrderWorld(t, hook, "a", "b", "c", "d")
	if w.ScheduleDecisions() != want {
		t.Errorf("ScheduleDecisions = %d, hook saw %d", w.ScheduleDecisions(), want)
	}
	if want == 0 {
		t.Errorf("scenario produced no decision points")
	}
}
