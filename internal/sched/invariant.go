package sched

import (
	"fmt"
	"sort"

	"repro/internal/trace"
	"repro/internal/vclock"
)

// CheckFunc is a trace-level scheduling invariant: it replays a run's
// events and reports the first violation. quantum is the world's
// configured timeslice, used to derive waiting-time tolerances.
type CheckFunc func(events []trace.Event, quantum vclock.Duration) error

// Invariant pairs a policy with its schedule invariant and the oracle
// name package explore registers it under. Every policy has one: the
// property that any legal schedule under that policy must satisfy, which
// is what de-hardwires explore's strict-priority oracle — pcr-rr's
// invariant IS that oracle, verbatim, and each alternative policy brings
// its own checkable discipline.
type Invariant struct {
	Policy string // policy name (see Names)
	Oracle string // oracle name for explore's table / schedcheck -list
	Check  CheckFunc
}

// Invariants returns every policy's invariant, in policy-name order.
func Invariants() []Invariant {
	invs := []Invariant{
		{Policy: "pcr-rr", Oracle: "strict-priority", Check: CheckStrictPriority},
		// One shared ready level: every thread's wait is bounded by the
		// queue draining ahead of it.
		{Policy: "rr", Oracle: "bounded-wait:rr", Check: checkBoundedWait(250 * vclock.Millisecond)},
		// EDF and SJF reorder within the level but still rotate every
		// quantum, so the same bound holds; SJF gets extra slack because
		// estimate-bearing short jobs may legally jump long ones for a
		// while under open arrivals.
		{Policy: "edf", Oracle: "bounded-wait:edf", Check: checkBoundedWait(250 * vclock.Millisecond)},
		{Policy: "sjf", Oracle: "bounded-wait:sjf", Check: checkBoundedWait(vclock.Second)},
		// Feedback and hybrid trade short-term ordering freedom for an
		// aging/boost guarantee: nothing waits unboundedly. The slack
		// covers the default aging horizon (mlfq) and boost cadence
		// (hybrid) with margin for parameter variation.
		{Policy: "mlfq", Oracle: "no-starvation:mlfq", Check: checkBoundedWait(vclock.Second)},
		{Policy: "hybrid", Oracle: "no-starvation:hybrid", Check: checkBoundedWait(vclock.Second)},
	}
	sort.Slice(invs, func(i, j int) bool { return invs[i].Policy < invs[j].Policy })
	return invs
}

// OracleFor returns the oracle name of a policy's invariant —
// "strict-priority" for pcr-rr — or "" for unknown policies. Explore uses
// it to substitute the policy-matched oracle when a scenario that opted
// into strict-priority runs under a different policy.
func OracleFor(policy string) string {
	for _, inv := range Invariants() {
		if inv.Policy == policy {
			return inv.Oracle
		}
	}
	return ""
}

// CheckStrictPriority is the pcr-rr invariant — and the explore oracle of
// the same name, moved here verbatim so the oracle table is built from
// the policy registry instead of hardwiring the PCR discipline: no
// runnable thread waits longer than a quantum (plus dispatch tolerance)
// while a strictly lower-priority thread runs. Opt-in at the scenario
// level — boosts and the SystemDaemon donate time to low-priority
// threads on purpose, and the check assumes one CPU.
func CheckStrictPriority(events []trace.Event, quantum vclock.Duration) error {
	tol := quantum + vclock.Millisecond
	pri := map[int32]int64{}
	readySince := map[int32]vclock.Time{}
	blocked := map[int32]bool{}
	dead := map[int32]bool{}
	running := int32(trace.NoThread)

	violation := func(now vclock.Time) error {
		ids := make([]int32, 0, len(readySince))
		for id := range readySince {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			if running != trace.NoThread && pri[id] > pri[running] && now.Sub(readySince[id]) > tol {
				return fmt.Errorf("t%d (pri %d) runnable since %v while t%d (pri %d) ran — starved %v at %v",
					id, pri[id], readySince[id], running, pri[running], now.Sub(readySince[id]), now)
			}
		}
		return nil
	}

	for _, ev := range events {
		if err := violation(ev.Time); err != nil {
			return err
		}
		switch ev.Kind {
		case trace.KindFork:
			pri[int32(ev.Arg)] = ev.Aux
		case trace.KindSetPriority:
			pri[ev.Thread] = ev.Aux
		case trace.KindReady:
			delete(blocked, ev.Thread)
			readySince[ev.Thread] = ev.Time
		case trace.KindBlock:
			blocked[ev.Thread] = true
			delete(readySince, ev.Thread)
		case trace.KindExit:
			dead[ev.Thread] = true
			delete(readySince, ev.Thread)
			if running == ev.Thread {
				running = trace.NoThread
			}
		case trace.KindSwitch:
			from := int32(ev.Arg)
			if ev.Thread != trace.NoThread {
				delete(readySince, ev.Thread)
				running = ev.Thread
			} else {
				running = trace.NoThread
			}
			// The switch-out target went back on the run queue unless its
			// Block/Exit event (recorded before the switch) says otherwise.
			if from != trace.NoThread && from != ev.Thread && !blocked[from] && !dead[from] {
				readySince[from] = ev.Time
			}
		}
	}
	return nil
}

// checkBoundedWait builds the priority-blind waiting-time invariant: at
// every trace position, no ready thread has been waiting longer than one
// quantum per queued-ready thread, plus `extra` policy slack and the
// dispatch tolerance, while some thread runs. It is the common shape of
// every non-strict policy's guarantee — round-robin rotation (rr, edf,
// sjf) and aging/boost anti-starvation (mlfq, hybrid) differ only in how
// much slack they need. Like the strict-priority check it assumes one
// CPU and is opt-in: boosts legitimately reorder short windows.
func checkBoundedWait(extra vclock.Duration) CheckFunc {
	return func(events []trace.Event, quantum vclock.Duration) error {
		tol := quantum + extra + vclock.Millisecond
		readySince := map[int32]vclock.Time{}
		blocked := map[int32]bool{}
		dead := map[int32]bool{}
		running := int32(trace.NoThread)

		violation := func(now vclock.Time) error {
			if running == trace.NoThread {
				return nil
			}
			bound := vclock.Duration(int64(quantum)*int64(len(readySince))) + tol
			ids := make([]int32, 0, len(readySince))
			for id := range readySince {
				ids = append(ids, id)
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			for _, id := range ids {
				if wait := now.Sub(readySince[id]); wait > bound {
					return fmt.Errorf("t%d runnable since %v while t%d ran — waited %v (> bound %v) at %v",
						id, readySince[id], running, wait, bound, now)
				}
			}
			return nil
		}

		for _, ev := range events {
			if err := violation(ev.Time); err != nil {
				return err
			}
			switch ev.Kind {
			case trace.KindReady:
				delete(blocked, ev.Thread)
				readySince[ev.Thread] = ev.Time
			case trace.KindBlock:
				blocked[ev.Thread] = true
				delete(readySince, ev.Thread)
			case trace.KindExit:
				dead[ev.Thread] = true
				delete(readySince, ev.Thread)
				if running == ev.Thread {
					running = trace.NoThread
				}
			case trace.KindSwitch:
				from := int32(ev.Arg)
				if ev.Thread != trace.NoThread {
					delete(readySince, ev.Thread)
					running = ev.Thread
				} else {
					running = trace.NoThread
				}
				if from != trace.NoThread && from != ev.Thread && !blocked[from] && !dead[from] {
					readySince[from] = ev.Time
				}
			}
		}
		return nil
	}
}
