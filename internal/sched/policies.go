package sched

import (
	"repro/internal/sim"
	"repro/internal/vclock"
)

func init() {
	register(&descriptor{
		name: "pcr-rr",
		doc:  "the paper's PCR discipline: 7 strict priorities, round-robin within one (default)",
		build: func(kv map[string]string) (Policy, error) {
			// The singleton, not a copy: the dispatcher keeps its exact
			// pre-policy fast paths only when it recognizes this value.
			return sim.PCRPolicy, nil
		},
	})
	register(&descriptor{
		name:   "rr",
		doc:    "single-level round-robin: every thread on one ready level, FIFO rotation",
		params: []string{"level", "quantum"},
		build: func(kv map[string]string) (Policy, error) {
			level, err := levelParam(kv, "rr", "level", sim.PriorityNormal)
			if err != nil {
				return nil, err
			}
			quantum, err := durParam(kv, "rr", "quantum", 0)
			if err != nil {
				return nil, err
			}
			return &rrPolicy{level: level, quantum: quantum}, nil
		},
	})
	register(&descriptor{
		name:   "edf",
		doc:    "earliest-deadline-first over Thread.Deadline; no deadline sorts last",
		params: []string{"level"},
		build: func(kv map[string]string) (Policy, error) {
			level, err := levelParam(kv, "edf", "level", sim.PriorityNormal)
			if err != nil {
				return nil, err
			}
			return &edfPolicy{level: level}, nil
		},
	})
	register(&descriptor{
		name:   "sjf",
		doc:    "shortest-job-first over Thread.ServiceEstimate; no estimate sorts last",
		params: []string{"level"},
		build: func(kv map[string]string) (Policy, error) {
			level, err := levelParam(kv, "sjf", "level", sim.PriorityNormal)
			if err != nil {
				return nil, err
			}
			return &sjfPolicy{level: level}, nil
		},
	})
}

// rrPolicy flattens every thread onto one ready level, so the dispatcher's
// FIFO + quantum rotation becomes classic single-queue round-robin — the
// maximal-fairness / minimal-promptness endpoint of the policy space.
type rrPolicy struct {
	level   sim.Priority
	quantum vclock.Duration // 0 = the world's Config.Quantum
}

func (p *rrPolicy) Name() string                                                 { return "rr" }
func (p *rrPolicy) Level(t *sim.Thread, wake bool, now vclock.Time) sim.Priority { return p.level }
func (p *rrPolicy) Pick(d sim.Decision) int                                      { return 0 }
func (p *rrPolicy) Rotate(d sim.Decision) int                                    { return 0 }
func (p *rrPolicy) Expired(t *sim.Thread, now vclock.Time)                       {}
func (p *rrPolicy) Age(t *sim.Thread, now vclock.Time) (sim.Priority, bool)      { return 0, false }
func (p *rrPolicy) Tick() vclock.Duration                                        { return 0 }

func (p *rrPolicy) Quantum(t *sim.Thread, def vclock.Duration) vclock.Duration {
	if p.quantum > 0 {
		return p.quantum
	}
	return def
}

// edfPolicy runs everything on one level and orders the candidate set by
// absolute deadline (Thread.SetDeadline); threads without a deadline sort
// after every deadline-bearing thread, FIFO among themselves. Within a
// quantum the running thread is not preempted by an equal-level arrival,
// so this is non-preemptive EDF at quantum granularity.
type edfPolicy struct {
	level sim.Priority
}

func (p *edfPolicy) Name() string                                                 { return "edf" }
func (p *edfPolicy) Level(t *sim.Thread, wake bool, now vclock.Time) sim.Priority { return p.level }
func (p *edfPolicy) Pick(d sim.Decision) int                                      { return pickEDF(d.Candidates) }
func (p *edfPolicy) Rotate(d sim.Decision) int                                    { return pickEDF(d.Candidates) }
func (p *edfPolicy) Quantum(t *sim.Thread, def vclock.Duration) vclock.Duration   { return def }
func (p *edfPolicy) Expired(t *sim.Thread, now vclock.Time)                       {}
func (p *edfPolicy) Age(t *sim.Thread, now vclock.Time) (sim.Priority, bool)      { return 0, false }
func (p *edfPolicy) Tick() vclock.Duration                                        { return 0 }

// pickEDF returns the index of the earliest-deadline candidate; ties and
// deadline-free threads keep FIFO order (lowest index wins).
func pickEDF(cands []*sim.Thread) int {
	best, bestDL := 0, deadlineOf(cands[0])
	for i := 1; i < len(cands); i++ {
		if dl := deadlineOf(cands[i]); dl < bestDL {
			best, bestDL = i, dl
		}
	}
	return best
}

func deadlineOf(t *sim.Thread) vclock.Time {
	if dl := t.Deadline(); dl != 0 {
		return dl
	}
	return vclock.Never
}

// sjfPolicy runs everything on one level and orders the candidate set by
// declared remaining service (Thread.SetServiceEstimate); threads without
// an estimate sort last, FIFO among themselves. Like edf it is
// non-preemptive within a quantum.
type sjfPolicy struct {
	level sim.Priority
}

func (p *sjfPolicy) Name() string                                                 { return "sjf" }
func (p *sjfPolicy) Level(t *sim.Thread, wake bool, now vclock.Time) sim.Priority { return p.level }
func (p *sjfPolicy) Pick(d sim.Decision) int                                      { return pickSJF(d.Candidates) }
func (p *sjfPolicy) Rotate(d sim.Decision) int                                    { return pickSJF(d.Candidates) }
func (p *sjfPolicy) Quantum(t *sim.Thread, def vclock.Duration) vclock.Duration   { return def }
func (p *sjfPolicy) Expired(t *sim.Thread, now vclock.Time)                       {}
func (p *sjfPolicy) Age(t *sim.Thread, now vclock.Time) (sim.Priority, bool)      { return 0, false }
func (p *sjfPolicy) Tick() vclock.Duration                                        { return 0 }

// pickSJF returns the index of the shortest-estimate candidate; ties and
// estimate-free threads keep FIFO order.
func pickSJF(cands []*sim.Thread) int {
	best, bestEst := 0, estimateOf(cands[0])
	for i := 1; i < len(cands); i++ {
		if est := estimateOf(cands[i]); est < bestEst {
			best, bestEst = i, est
		}
	}
	return best
}

func estimateOf(t *sim.Thread) vclock.Duration {
	if est := t.ServiceEstimate(); est > 0 {
		return est
	}
	return vclock.Duration(1<<63 - 1)
}
