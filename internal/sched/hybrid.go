package sched

import (
	"repro/internal/sim"
	"repro/internal/vclock"
)

func init() {
	register(&descriptor{
		name:   "hybrid",
		doc:    "promptness-vs-throughput: interactive EDF up top, batch below with a guaranteed share",
		params: []string{"share", "slice"},
		build: func(kv map[string]string) (Policy, error) {
			slice, err := durParam(kv, "hybrid", "slice", 10*vclock.Millisecond)
			if err != nil {
				return nil, err
			}
			share, err := floatParam(kv, "hybrid", "share", 0.3, 0.01, 0.9)
			if err != nil {
				return nil, err
			}
			// A boost of `slice` every (slice + gap) grants batch ≈ share
			// of the CPU even under saturating interactive load.
			gap := vclock.Duration(float64(slice) * (1 - share) / share)
			return &hybridPolicy{slice: slice, gap: gap}, nil
		},
	})
}

// hybridPolicy is the promptness-vs-throughput split that PAPERS.md's
// Competitive Parallelism argues mixed interactive/batch loads need:
//
//   - Interactive work (SLO class "interactive", or any thread with a
//     declared deadline) runs on a high band, EDF-ordered, so promptness
//     stays near the strict-priority optimum.
//   - Batch work (SLO class "batch") runs on a low band — but unlike
//     strict priority it is never starved for long: a timed boost
//     promotes one batch thread above the interactive band for a short
//     slice on a fixed cadence, guaranteeing batch ≈ share of the CPU
//     and bounding how long any batch thread goes without progress.
//   - Unclassified threads (daemons, scenario machinery) keep their own
//     PCR priority, so the policy composes with existing workloads.
//
// Pure strict priority starves batch progress under interactive bursts;
// pure round-robin destroys interactive latency under batch pressure;
// the hybrid bounds both, which experiment S4 demonstrates on the
// mixed-load promptness metric. Per-thread boost state makes an instance
// single-world, like mlfq.
type hybridPolicy struct {
	slice vclock.Duration // duration of one batch boost
	gap   vclock.Duration // pause between boosts (derived from share)

	boosted   *sim.Thread // the batch thread currently promoted, if any
	nextBoost vclock.Time // earliest instant the next boost may start
}

const (
	hybridBoostLevel       = sim.PriorityDaemon
	hybridInteractiveLevel = sim.PriorityHigh
	hybridBatchLevel       = sim.PriorityLow
)

type hybridClass int

const (
	classOther hybridClass = iota
	classInteractive
	classBatch
)

func classify(t *sim.Thread) hybridClass {
	switch {
	case t.SLOClass() == "batch":
		return classBatch
	case t.SLOClass() == "interactive" || t.Deadline() != 0:
		return classInteractive
	default:
		return classOther
	}
}

func (p *hybridPolicy) Name() string { return "hybrid" }

func (p *hybridPolicy) Level(t *sim.Thread, wake bool, now vclock.Time) sim.Priority {
	if t == p.boosted {
		return hybridBoostLevel
	}
	switch classify(t) {
	case classInteractive:
		return hybridInteractiveLevel
	case classBatch:
		return hybridBatchLevel
	default:
		return t.Priority()
	}
}

// Pick prefers the boosted batch thread (its guaranteed slice must not be
// stolen by whatever shares its level), then falls back to EDF — which
// orders the interactive band by deadline and degrades to FIFO on bands
// with no deadlines.
func (p *hybridPolicy) Pick(d sim.Decision) int {
	if p.boosted != nil {
		for i, c := range d.Candidates {
			if c == p.boosted {
				return i
			}
		}
	}
	return pickEDF(d.Candidates)
}

func (p *hybridPolicy) Rotate(d sim.Decision) int { return p.Pick(d) }

func (p *hybridPolicy) Quantum(t *sim.Thread, def vclock.Duration) vclock.Duration {
	if t == p.boosted {
		return p.slice
	}
	return def
}

// Expired ends a boost when the boosted thread's slice runs out; the
// dispatcher then refreshes its level, dropping it back to the batch band
// at this very expiry.
func (p *hybridPolicy) Expired(t *sim.Thread, now vclock.Time) {
	if t == p.boosted {
		p.boosted = nil
	}
}

// Age grants the next batch boost: on each tick, once the cadence allows
// and no boost is in flight, the longest-queued batch thread (the sweep
// visits queues in FIFO order) is promoted above the interactive band.
func (p *hybridPolicy) Age(t *sim.Thread, now vclock.Time) (sim.Priority, bool) {
	if b := p.boosted; b != nil && (b.State() == sim.StateDead || b.State() == sim.StateBlocked) {
		// The boosted thread stopped running before its slice expired;
		// release the boost so batch progress doesn't stall behind it.
		p.boosted = nil
	}
	if p.boosted == nil && now >= p.nextBoost && classify(t) == classBatch {
		p.boosted = t
		p.nextBoost = now.Add(p.slice + p.gap)
		return hybridBoostLevel, true
	}
	return 0, false
}

func (p *hybridPolicy) Tick() vclock.Duration { return p.slice }
