package sched

import (
	"repro/internal/sim"
	"repro/internal/vclock"
)

func init() {
	register(&descriptor{
		name:   "mlfq",
		doc:    "multi-level feedback: demote on quantum expiry, reset on wakeup, age back up",
		params: []string{"age", "levels", "quantum"},
		build: func(kv map[string]string) (Policy, error) {
			levels, err := intParam(kv, "mlfq", "levels", 4, 2, 6)
			if err != nil {
				return nil, err
			}
			base, err := durParam(kv, "mlfq", "quantum", 10*vclock.Millisecond)
			if err != nil {
				return nil, err
			}
			age, err := durParam(kv, "mlfq", "age", 200*vclock.Millisecond)
			if err != nil {
				return nil, err
			}
			return &mlfqPolicy{
				levels: levels,
				base:   base,
				age:    age,
				state:  map[*sim.Thread]*mlfqState{},
			}, nil
		},
	})
}

// mlfqPolicy is multi-level feedback queueing with aging: every thread
// starts (and restarts, on each wakeup) at the top feedback level with a
// short quantum; consuming a full quantum demotes it one level and
// doubles its quantum; waiting `age` on the ready queue promotes it one
// level back up. Interactive threads — which block long before their
// quantum expires — thus float at the top with minimal latency while
// CPU-bound threads sink, the classic estimate-free approximation of
// SJF. Per-thread state is keyed by *sim.Thread, so an instance serves
// exactly one world.
type mlfqPolicy struct {
	levels int             // feedback depth: sim levels Interrupt down to Interrupt-levels+1
	base   vclock.Duration // quantum at the top level; doubles per demotion
	age    vclock.Duration // ready wait that earns one promotion; also the sweep period
	state  map[*sim.Thread]*mlfqState
}

type mlfqState struct {
	level   int // 0 = top feedback level
	readyAt vclock.Time
}

func (p *mlfqPolicy) st(t *sim.Thread) *mlfqState {
	s := p.state[t]
	if s == nil {
		s = &mlfqState{}
		p.state[t] = s
	}
	return s
}

// pri maps feedback level i (0 = top) onto the sim's ready levels,
// growing downward from PriorityInterrupt.
func (p *mlfqPolicy) pri(level int) sim.Priority {
	return sim.PriorityInterrupt - sim.Priority(level)
}

func (p *mlfqPolicy) Name() string { return "mlfq" }

func (p *mlfqPolicy) Level(t *sim.Thread, wake bool, now vclock.Time) sim.Priority {
	s := p.st(t)
	if wake {
		// A fresh wakeup resets to the top: the thread just proved it
		// blocks (interactive behavior), so give it the fast lane.
		s.level = 0
	}
	s.readyAt = now
	return p.pri(s.level)
}

func (p *mlfqPolicy) Pick(d sim.Decision) int   { return 0 }
func (p *mlfqPolicy) Rotate(d sim.Decision) int { return 0 }

func (p *mlfqPolicy) Quantum(t *sim.Thread, def vclock.Duration) vclock.Duration {
	return p.base << uint(p.st(t).level)
}

func (p *mlfqPolicy) Expired(t *sim.Thread, now vclock.Time) {
	if s := p.st(t); s.level < p.levels-1 {
		s.level++
	}
}

func (p *mlfqPolicy) Age(t *sim.Thread, now vclock.Time) (sim.Priority, bool) {
	s := p.st(t)
	if s.level > 0 && now.Sub(s.readyAt) >= p.age {
		s.level--
		s.readyAt = now
		return p.pri(s.level), true
	}
	return 0, false
}

func (p *mlfqPolicy) Tick() vclock.Duration { return p.age }
