package sched

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/vclock"
)

// TestNames: the registry holds exactly the documented policy set, sorted.
func TestNames(t *testing.T) {
	want := []string{"edf", "hybrid", "mlfq", "pcr-rr", "rr", "sjf"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for _, name := range want {
		if Doc(name) == "" {
			t.Errorf("Doc(%q) is empty", name)
		}
	}
	if Doc("nope") != "" {
		t.Errorf("Doc of unknown policy = %q, want empty", Doc("nope"))
	}
}

// TestParseDefault: "pcr-rr" must yield the exact sim.PCRPolicy value —
// the dispatcher keeps its pre-policy fast paths only when it recognizes
// that singleton, which is what makes the explicit spec byte-identical to
// no spec at all.
func TestParseDefault(t *testing.T) {
	p, err := Parse("pcr-rr")
	if err != nil {
		t.Fatalf("Parse(pcr-rr): %v", err)
	}
	if p != Default || p != sim.PCRPolicy {
		t.Fatalf("Parse(pcr-rr) is not the PCRPolicy singleton")
	}
}

// TestParseOK: every legal spec shape builds, with params applied.
func TestParseOK(t *testing.T) {
	for _, spec := range []string{
		"rr", "rr:level=5", "rr:quantum=5ms", "rr:level=2,quantum=1ms",
		"edf", "edf:level=6",
		"sjf", "sjf:level=3",
		"mlfq", "mlfq:levels=3,quantum=5ms,age=100ms",
		"hybrid", "hybrid:slice=20ms,share=0.5",
		" rr : level = 5 ", // whitespace tolerated
		"rr:",              // empty param list
	} {
		p, err := Parse(spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", spec, err)
			continue
		}
		if p == nil {
			t.Errorf("Parse(%q) returned nil policy", spec)
		}
	}
}

// TestParseFresh: stateful policies get a fresh instance per call; an
// instance keys internal state by *sim.Thread and must not span worlds.
func TestParseFresh(t *testing.T) {
	a, _ := Parse("mlfq")
	b, _ := Parse("mlfq")
	if a == b {
		t.Fatalf("two Parse(mlfq) calls returned the same instance")
	}
}

// TestParseErrors: every malformed spec fails with a diagnostic that names
// the legal set, so CLIs can emit the text verbatim at exit 2.
func TestParseErrors(t *testing.T) {
	cases := []struct {
		spec string
		want string // substring of the error
	}{
		{"nope", `unknown policy "nope"`},
		{"nope", "edf, hybrid, mlfq, pcr-rr, rr, sjf"}, // legal set listed
		{"", `unknown policy ""`},
		{"rr:level", `malformed param "level"`},
		{"rr:=5", `malformed param`},
		{"rr:level=", `malformed param`},
		{"rr:level=5,level=6", `duplicate param "level"`},
		{"rr:bogus=1", `unknown param "bogus"`},
		{"rr:bogus=1", "have level, quantum"},
		{"pcr-rr:level=5", `unknown param "level"`},
		{"pcr-rr:level=5", "have none"},
		{"rr:level=0", "must be an integer in 1..7"},
		{"rr:level=8", "must be an integer in 1..7"},
		{"rr:level=abc", "must be an integer"},
		{"rr:quantum=0s", "must be a positive duration"},
		{"rr:quantum=-5ms", "must be a positive duration"},
		{"rr:quantum=fast", "must be a positive duration"},
		{"mlfq:levels=1", "must be an integer in 2..6"},
		{"mlfq:levels=7", "must be an integer in 2..6"},
		{"mlfq:age=0s", "must be a positive duration"},
		{"hybrid:share=0", "must be a number in 0.01..0.9"},
		{"hybrid:share=1.5", "must be a number in 0.01..0.9"},
		{"hybrid:share=lots", "must be a number"},
		{"hybrid:slice=xx", "must be a positive duration"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.spec)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", tc.spec, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Parse(%q) = %q, want substring %q", tc.spec, err, tc.want)
		}
	}
}

// TestMustParse: panics on a bad spec, passes a good one through.
func TestMustParse(t *testing.T) {
	if p := MustParse("rr:level=2"); p == nil {
		t.Fatalf("MustParse returned nil")
	}
	defer func() {
		if recover() == nil {
			t.Errorf("MustParse(bogus) did not panic")
		}
	}()
	MustParse("bogus")
}

// TestInvariantsTable: every policy has an invariant, sorted by policy
// name, and OracleFor maps pcr-rr to the historical oracle name.
func TestInvariantsTable(t *testing.T) {
	invs := Invariants()
	if len(invs) != len(Names()) {
		t.Fatalf("Invariants() has %d entries, want %d", len(invs), len(Names()))
	}
	for i, inv := range invs {
		if inv.Policy != Names()[i] {
			t.Errorf("invariant %d is for %q, want %q", i, inv.Policy, Names()[i])
		}
		if inv.Oracle == "" || inv.Check == nil {
			t.Errorf("invariant for %q is incomplete", inv.Policy)
		}
	}
	if got := OracleFor("pcr-rr"); got != "strict-priority" {
		t.Errorf("OracleFor(pcr-rr) = %q, want strict-priority", got)
	}
	if got := OracleFor("hybrid"); got != "no-starvation:hybrid" {
		t.Errorf("OracleFor(hybrid) = %q", got)
	}
	if got := OracleFor("nope"); got != "" {
		t.Errorf("OracleFor(nope) = %q, want empty", got)
	}
}

// TestDurParamUnits: durations parse in wall-clock syntax and land in
// virtual microseconds.
func TestDurParamUnits(t *testing.T) {
	p, err := Parse("rr:quantum=2ms")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	rr := p.(*rrPolicy)
	if rr.quantum != 2*vclock.Millisecond {
		t.Errorf("quantum = %d µs, want %d", rr.quantum, 2*vclock.Millisecond)
	}
}
