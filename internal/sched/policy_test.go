package sched

import (
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// newWorld builds a test world running the given policy spec, with exact
// virtual timings (zero switch cost) and an optional trace sink.
func newWorld(t *testing.T, spec string, tr trace.Sink) *sim.World {
	t.Helper()
	pol, err := Parse(spec)
	if err != nil {
		t.Fatalf("Parse(%q): %v", spec, err)
	}
	cfg := sim.Config{SwitchCost: -1, TimeoutGranularity: 1, Trace: tr}
	cfg.Hooks.Policy = pol
	w := sim.NewWorld(cfg)
	t.Cleanup(w.Shutdown)
	return w
}

// runStarts spawns one worker per (name, pri) pair, each computing for
// `work`, and returns the order in which they first got the CPU.
func runStarts(t *testing.T, spec string, work vclock.Duration, names []string, pris []sim.Priority, prep func(i int, th *sim.Thread)) []string {
	t.Helper()
	w := newWorld(t, spec, nil)
	var order []string
	for i, name := range names {
		name := name
		th := w.Spawn(name, pris[i], func(th *sim.Thread) any {
			order = append(order, name)
			th.Compute(work)
			return nil
		})
		if prep != nil {
			prep(i, th)
		}
	}
	if out := w.Run(vclock.Time(vclock.Second)); out != sim.OutcomeQuiescent {
		t.Fatalf("outcome = %v, want quiescent", out)
	}
	return order
}

// TestRRFlattensPriorities: under pcr-rr a high-priority late spawn runs
// first; under rr everything shares one level, so dispatch is pure FIFO in
// spawn order.
func TestRRFlattensPriorities(t *testing.T) {
	names := []string{"low", "high"}
	pris := []sim.Priority{sim.PriorityLow, sim.PriorityHigh}
	if got := runStarts(t, "pcr-rr", 10*vclock.Millisecond, names, pris, nil); !reflect.DeepEqual(got, []string{"high", "low"}) {
		t.Fatalf("pcr-rr order = %v, want [high low]", got)
	}
	if got := runStarts(t, "rr", 10*vclock.Millisecond, names, pris, nil); !reflect.DeepEqual(got, []string{"low", "high"}) {
		t.Fatalf("rr order = %v, want FIFO [low high]", got)
	}
}

// TestRRQuantumParam: rr's quantum override reaches the dispatcher. Two
// 8 ms jobs under a 5 ms quantum interleave — the first finishes at 13 ms
// (8 own + 5 of the peer's), not at 8 ms as the default 50 ms quantum
// would have it.
func TestRRQuantumParam(t *testing.T) {
	finish := map[string]vclock.Time{}
	run := func(spec string) {
		w := newWorld(t, spec, nil)
		for _, name := range []string{"a", "b"} {
			name := name
			w.Spawn(name, sim.PriorityNormal, func(th *sim.Thread) any {
				th.Compute(8 * vclock.Millisecond)
				finish[spec+"/"+name] = th.Now()
				return nil
			})
		}
		if out := w.Run(vclock.Time(vclock.Second)); out != sim.OutcomeQuiescent {
			t.Fatalf("%s: outcome = %v", spec, out)
		}
	}
	run("rr")
	run("rr:quantum=5ms")
	if got := finish["rr/a"]; got != vclock.Time(8*vclock.Millisecond) {
		t.Errorf("rr default quantum: a finished at %v, want 8ms", got)
	}
	if got := finish["rr:quantum=5ms/a"]; got != vclock.Time(13*vclock.Millisecond) {
		t.Errorf("rr 5ms quantum: a finished at %v, want 13ms", got)
	}
	for _, spec := range []string{"rr", "rr:quantum=5ms"} {
		if got := finish[spec+"/b"]; got != vclock.Time(16*vclock.Millisecond) {
			t.Errorf("%s: b finished at %v, want 16ms", spec, got)
		}
	}
}

// TestEDFOrdersByDeadline: dispatch follows declared deadlines, not spawn
// order; a thread with no deadline sorts after every deadline-bearing one.
func TestEDFOrdersByDeadline(t *testing.T) {
	names := []string{"none", "late", "early", "mid"}
	pris := []sim.Priority{sim.PriorityNormal, sim.PriorityNormal, sim.PriorityNormal, sim.PriorityNormal}
	deadlines := []vclock.Duration{0, 300 * vclock.Millisecond, 100 * vclock.Millisecond, 200 * vclock.Millisecond}
	got := runStarts(t, "edf", 10*vclock.Millisecond, names, pris, func(i int, th *sim.Thread) {
		if deadlines[i] != 0 {
			th.SetDeadline(vclock.Time(deadlines[i]))
		}
	})
	if want := []string{"early", "mid", "late", "none"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("edf order = %v, want %v", got, want)
	}
}

// TestSJFOrdersByEstimate: dispatch follows declared service estimates;
// no estimate sorts last.
func TestSJFOrdersByEstimate(t *testing.T) {
	names := []string{"none", "long", "short", "mid"}
	pris := []sim.Priority{sim.PriorityNormal, sim.PriorityNormal, sim.PriorityNormal, sim.PriorityNormal}
	ests := []vclock.Duration{0, 30 * vclock.Millisecond, 10 * vclock.Millisecond, 20 * vclock.Millisecond}
	got := runStarts(t, "sjf", 10*vclock.Millisecond, names, pris, func(i int, th *sim.Thread) {
		if ests[i] != 0 {
			th.SetServiceEstimate(ests[i])
		}
	})
	if want := []string{"short", "mid", "long", "none"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("sjf order = %v, want %v", got, want)
	}
}

// TestMLFQSeams drives the mlfq state machine through the Policy seams
// directly: wakeups reset to the top level, quantum expiry demotes (and
// doubles the quantum) down to the floor, and queued waiting ages a
// thread back up one level per period.
func TestMLFQSeams(t *testing.T) {
	w := newWorld(t, "pcr-rr", nil) // only a thread factory here
	th := w.Spawn("x", sim.PriorityNormal, func(*sim.Thread) any { return nil })
	p := MustParse("mlfq:levels=3,quantum=10ms,age=50ms")

	top := sim.PriorityInterrupt
	if got := p.Level(th, true, 0); got != top {
		t.Fatalf("fresh wake level = %v, want %v", got, top)
	}
	if got := p.Quantum(th, 50*vclock.Millisecond); got != 10*vclock.Millisecond {
		t.Fatalf("top quantum = %v, want 10ms", got)
	}

	// Two expiries demote to the floor (levels=3 → floor is top-2);
	// further expiries stay there. Quanta double per level.
	p.Expired(th, 0)
	if got := p.Level(th, false, 0); got != top-1 {
		t.Fatalf("after 1 expiry level = %v, want %v", got, top-1)
	}
	if got := p.Quantum(th, 0); got != 20*vclock.Millisecond {
		t.Fatalf("level-1 quantum = %v, want 20ms", got)
	}
	p.Expired(th, 0)
	p.Expired(th, 0)
	if got := p.Level(th, false, 0); got != top-2 {
		t.Fatalf("floor level = %v, want %v", got, top-2)
	}
	if got := p.Quantum(th, 0); got != 40*vclock.Millisecond {
		t.Fatalf("floor quantum = %v, want 40ms", got)
	}

	// Aging: enqueue (non-wake) at t=100ms; at 149ms nothing, at 150ms one
	// promotion, another period later the next.
	t0 := vclock.Time(100 * vclock.Millisecond)
	p.Level(th, false, t0)
	if _, ok := p.Age(th, t0.Add(49*vclock.Millisecond)); ok {
		t.Fatalf("aged before the period elapsed")
	}
	nl, ok := p.Age(th, t0.Add(50*vclock.Millisecond))
	if !ok || nl != top-1 {
		t.Fatalf("age promotion = %v,%v, want %v,true", nl, ok, top-1)
	}
	nl, ok = p.Age(th, t0.Add(100*vclock.Millisecond))
	if !ok || nl != top {
		t.Fatalf("second promotion = %v,%v, want %v,true", nl, ok, top)
	}
	if _, ok := p.Age(th, vclock.Time(vclock.Second)); ok {
		t.Fatalf("aged above the top level")
	}

	// A wakeup forgives everything: back to the top band.
	p.Expired(th, 0)
	if got := p.Level(th, true, 0); got != top {
		t.Fatalf("wake reset level = %v, want %v", got, top)
	}
	if p.Tick() != 50*vclock.Millisecond {
		t.Fatalf("tick = %v, want the age period", p.Tick())
	}
}

// TestMLFQFavorsInteractive: end to end, a sleep-heavy interactive thread
// finishes its bursts with low latency while a CPU hog sinks: the hog's
// presence must not delay any burst by more than the hog's floor quantum.
func TestMLFQFavorsInteractive(t *testing.T) {
	w := newWorld(t, "mlfq:levels=3,quantum=5ms,age=500ms", nil)
	var worst vclock.Duration
	w.Spawn("hog", sim.PriorityNormal, func(th *sim.Thread) any {
		th.Compute(400 * vclock.Millisecond)
		return nil
	})
	w.Spawn("interactive", sim.PriorityNormal, func(th *sim.Thread) any {
		for i := 0; i < 10; i++ {
			th.Sleep(5 * vclock.Millisecond)
			start := th.Now()
			th.Compute(vclock.Millisecond)
			if d := th.Now().Sub(start); d > worst {
				worst = d
			}
		}
		return nil
	})
	if out := w.Run(vclock.Time(vclock.Second)); out != sim.OutcomeQuiescent {
		t.Fatalf("outcome = %v, want quiescent", out)
	}
	// Each 1 ms burst may wait out at most the hog's current quantum
	// (≤ 20 ms at the floor) before the wakeup preempts at the next
	// dispatch point.
	if worst > 21*vclock.Millisecond {
		t.Errorf("worst interactive burst latency %v, want ≤ hog floor quantum", worst)
	}
}

// TestHybridBoundsBothClasses: a saturating interactive thread at high
// priority starves a low-priority batch thread completely under pcr-rr;
// under hybrid the timed boost guarantees batch progress while the
// interactive class keeps the large majority of the CPU.
func TestHybridBoundsBothClasses(t *testing.T) {
	const horizon = 300 * vclock.Millisecond
	chunks := func(spec string) int {
		w := newWorld(t, spec, nil)
		n := 0
		it := w.Spawn("interactive", sim.PriorityHigh, func(th *sim.Thread) any {
			for th.Now() < vclock.Time(horizon) {
				th.Compute(5 * vclock.Millisecond)
			}
			return nil
		})
		it.SetSLOClass("interactive")
		bt := w.Spawn("batch", sim.PriorityLow, func(th *sim.Thread) any {
			for {
				th.Compute(vclock.Millisecond)
				n++
			}
		})
		bt.SetSLOClass("batch")
		w.Run(vclock.Time(horizon))
		return n
	}
	if n := chunks("pcr-rr"); n != 0 {
		t.Errorf("pcr-rr: batch ran %d chunks under saturating interactive load, want 0", n)
	}
	n := chunks("hybrid:slice=10ms,share=0.3")
	if n < 20 {
		t.Errorf("hybrid: batch ran only %d ms in %v, starvation not bounded", n, horizon)
	}
	if n > 150 {
		t.Errorf("hybrid: batch ran %d ms in %v — interactive lost its majority share", n, horizon)
	}
}

// TestHybridSeams covers the boost bookkeeping directly: classification,
// band mapping, the boosted thread's pick preference and short quantum,
// and boost release on expiry.
func TestHybridSeams(t *testing.T) {
	w := newWorld(t, "pcr-rr", nil)
	mk := func(name, class string) *sim.Thread {
		th := w.Spawn(name, sim.PriorityBackground, func(*sim.Thread) any { return nil })
		th.SetSLOClass(class)
		return th
	}
	inter := mk("i", "interactive")
	batch := mk("b", "batch")
	other := mk("o", "")
	dlOnly := mk("d", "")
	dlOnly.SetDeadline(vclock.Time(vclock.Second))

	p := MustParse("hybrid:slice=10ms,share=0.5").(*hybridPolicy)
	if got := p.Level(inter, false, 0); got != hybridInteractiveLevel {
		t.Errorf("interactive level = %v", got)
	}
	if got := p.Level(dlOnly, false, 0); got != hybridInteractiveLevel {
		t.Errorf("deadline-bearing level = %v, want interactive band", got)
	}
	if got := p.Level(batch, false, 0); got != hybridBatchLevel {
		t.Errorf("batch level = %v", got)
	}
	if got := p.Level(other, false, 0); got != other.Priority() {
		t.Errorf("unclassified level = %v, want own priority %v", got, other.Priority())
	}

	// share=0.5 → gap equals slice.
	if p.gap != p.slice {
		t.Errorf("gap = %v, want %v at share 0.5", p.gap, p.slice)
	}

	// First tick grants the boost to a queued batch thread; while boosted
	// it outranks the interactive band, is picked over earlier deadlines,
	// and runs a slice-length quantum.
	nl, ok := p.Age(batch, vclock.Time(10*vclock.Millisecond))
	if !ok || nl != hybridBoostLevel {
		t.Fatalf("boost grant = %v,%v, want %v,true", nl, ok, hybridBoostLevel)
	}
	if got := p.Level(batch, false, 0); got != hybridBoostLevel {
		t.Errorf("boosted level = %v", got)
	}
	if got := p.Pick(sim.Decision{Candidates: []*sim.Thread{dlOnly, batch}}); got != 1 {
		t.Errorf("pick with boost = %d, want the boosted thread", got)
	}
	if got := p.Quantum(batch, 50*vclock.Millisecond); got != 10*vclock.Millisecond {
		t.Errorf("boosted quantum = %v, want the slice", got)
	}
	if got := p.Quantum(inter, 50*vclock.Millisecond); got != 50*vclock.Millisecond {
		t.Errorf("unboosted quantum = %v, want the default", got)
	}
	// No second boost while one is in flight, nor before the cadence.
	if _, ok := p.Age(batch, vclock.Time(10*vclock.Millisecond)); ok {
		t.Errorf("double boost granted")
	}
	p.Expired(batch, vclock.Time(20*vclock.Millisecond))
	if got := p.Level(batch, false, 0); got != hybridBatchLevel {
		t.Errorf("post-expiry level = %v, want batch band", got)
	}
	if _, ok := p.Age(batch, vclock.Time(25*vclock.Millisecond)); ok {
		t.Errorf("boost re-granted before the cadence gap")
	}
	if nl, ok := p.Age(batch, vclock.Time(30*vclock.Millisecond)); !ok || nl != hybridBoostLevel {
		t.Errorf("boost not re-granted at the cadence: %v,%v", nl, ok)
	}
	// Without the boosted thread in the candidate set, Pick falls back to
	// EDF ordering.
	if got := p.Pick(sim.Decision{Candidates: []*sim.Thread{other, dlOnly}}); got != 1 {
		t.Errorf("edf fallback pick = %d, want the deadline-bearing thread", got)
	}
}

// traceOf runs a mixed sleep/compute workload under the given policy and
// returns the trace.
func traceOf(t *testing.T, spec string) []trace.Event {
	t.Helper()
	var buf trace.Buffer
	w := newWorld(t, spec, &buf)
	for i, pri := range []sim.Priority{sim.PriorityLow, sim.PriorityNormal, sim.PriorityHigh} {
		name := string(rune('a' + i))
		w.Spawn(name, pri, func(th *sim.Thread) any {
			for j := 0; j < 10; j++ {
				th.Compute(7 * vclock.Millisecond)
				th.Sleep(3 * vclock.Millisecond)
			}
			return nil
		})
	}
	if out := w.Run(vclock.Time(2 * vclock.Second)); out != sim.OutcomeQuiescent {
		t.Fatalf("%s: outcome = %v, want quiescent", spec, out)
	}
	return buf.Events
}

// TestInvariantsHold: every policy's own trace invariant accepts a run
// scheduled under that policy.
func TestInvariantsHold(t *testing.T) {
	specs := map[string]string{
		"pcr-rr": "pcr-rr",
		"rr":     "rr",
		"edf":    "edf",
		"sjf":    "sjf",
		"mlfq":   "mlfq:quantum=5ms,age=100ms",
		"hybrid": "hybrid:slice=10ms,share=0.3",
	}
	for _, inv := range Invariants() {
		events := traceOf(t, specs[inv.Policy])
		if err := inv.Check(events, 50*vclock.Millisecond); err != nil {
			t.Errorf("%s invariant (%s) rejected its own schedule: %v", inv.Policy, inv.Oracle, err)
		}
	}
}

// TestCheckStrictPriorityViolation: a synthetic trace where a
// high-priority thread sits runnable while a low-priority thread runs
// must be rejected — and the inverse accepted.
func TestCheckStrictPriorityViolation(t *testing.T) {
	mk := func(hiPri int64) []trace.Event {
		none := int64(trace.NoThread)
		return []trace.Event{
			{Time: 0, Kind: trace.KindFork, Thread: trace.NoThread, Arg: 1, Aux: hiPri},
			{Time: 0, Kind: trace.KindFork, Thread: trace.NoThread, Arg: 2, Aux: 3},
			{Time: 0, Kind: trace.KindReady, Thread: 1},
			{Time: 0, Kind: trace.KindReady, Thread: 2},
			{Time: 0, Kind: trace.KindSwitch, Thread: 2, Arg: none},
			{Time: vclock.Time(200 * vclock.Millisecond), Kind: trace.KindSwitch, Thread: 1, Arg: 2},
		}
	}
	quantum := 50 * vclock.Millisecond
	if err := CheckStrictPriority(mk(5), quantum); err == nil {
		t.Errorf("starved high-priority thread not detected")
	}
	if err := CheckStrictPriority(mk(2), quantum); err != nil {
		t.Errorf("legal low-priority wait rejected: %v", err)
	}
}

// TestCheckBoundedWaitViolation: the priority-blind bound fires once a
// ready thread's wait exceeds quantum×queue + slack, and not before.
func TestCheckBoundedWaitViolation(t *testing.T) {
	check := checkBoundedWait(250 * vclock.Millisecond)
	none := int64(trace.NoThread)
	mk := func(wait vclock.Duration) []trace.Event {
		return []trace.Event{
			{Time: 0, Kind: trace.KindReady, Thread: 1},
			{Time: 0, Kind: trace.KindSwitch, Thread: 2, Arg: none},
			{Time: vclock.Time(wait), Kind: trace.KindSwitch, Thread: 1, Arg: 2},
		}
	}
	quantum := 50 * vclock.Millisecond
	// Bound: 50ms×1 waiter + 50ms + 250ms + 1ms = 351 ms.
	if err := check(mk(351*vclock.Millisecond), quantum); err != nil {
		t.Errorf("wait at the bound rejected: %v", err)
	}
	if err := check(mk(352*vclock.Millisecond), quantum); err == nil {
		t.Errorf("wait past the bound not detected")
	}
	// Blocked and exited threads stop counting as waiters.
	events := []trace.Event{
		{Time: 0, Kind: trace.KindReady, Thread: 1},
		{Time: 0, Kind: trace.KindBlock, Thread: 1},
		{Time: 0, Kind: trace.KindSwitch, Thread: 2, Arg: none},
		{Time: vclock.Time(vclock.Second), Kind: trace.KindExit, Thread: 2},
	}
	if err := check(events, quantum); err != nil {
		t.Errorf("blocked thread counted as starved: %v", err)
	}
}

// TestExplicitDefaultIsByteIdentical: a world handed Parse("pcr-rr") must
// produce the exact event stream of a world with no policy at all — the
// API's central compatibility promise.
func TestExplicitDefaultIsByteIdentical(t *testing.T) {
	capture := func(pol Policy) []trace.Event {
		var buf trace.Buffer
		cfg := sim.Config{SwitchCost: -1, TimeoutGranularity: 1, Trace: &buf}
		cfg.Hooks.Policy = pol
		w := sim.NewWorld(cfg)
		defer w.Shutdown()
		for i, pri := range []sim.Priority{sim.PriorityNormal, sim.PriorityHigh, sim.PriorityNormal} {
			name := string(rune('a' + i))
			w.Spawn(name, pri, func(th *sim.Thread) any {
				for j := 0; j < 5; j++ {
					th.Compute(60 * vclock.Millisecond) // crosses quantum expiries
					th.Yield()
					th.Sleep(vclock.Millisecond)
				}
				return nil
			})
		}
		w.Run(vclock.Time(2 * vclock.Second))
		if n := w.ScheduleDecisions(); n != 0 {
			t.Fatalf("default policy recorded %d schedule decisions, want 0", n)
		}
		return buf.Events
	}
	bare := capture(nil)
	explicit := capture(MustParse("pcr-rr"))
	if !reflect.DeepEqual(bare, explicit) {
		t.Fatalf("explicit pcr-rr trace differs from nil-policy trace (%d vs %d events)", len(explicit), len(bare))
	}
}

// badLevelPolicy answers an out-of-range level; the dispatcher must fall
// back to the thread's own priority rather than corrupt its queues.
type badLevelPolicy struct{ Policy }

func (badLevelPolicy) Name() string                                             { return "bad-level" }
func (badLevelPolicy) Level(*sim.Thread, bool, vclock.Time) sim.Priority        { return 0 }
func (badLevelPolicy) Tick() vclock.Duration                                    { return 0 }
func (badLevelPolicy) Age(*sim.Thread, vclock.Time) (sim.Priority, bool)        { return 0, false }
func (badLevelPolicy) Expired(*sim.Thread, vclock.Time)                         {}
func (badLevelPolicy) Quantum(t *sim.Thread, d vclock.Duration) vclock.Duration { return d }
func (badLevelPolicy) Pick(sim.Decision) int                                    { return 0 }
func (badLevelPolicy) Rotate(sim.Decision) int                                  { return 0 }

// TestInvalidLevelFallsBack: a policy answering a level outside 1..7 gets
// the thread's own priority instead, so the world still dispatches.
func TestInvalidLevelFallsBack(t *testing.T) {
	cfg := sim.Config{SwitchCost: -1, TimeoutGranularity: 1}
	cfg.Hooks.Policy = badLevelPolicy{}
	w := sim.NewWorld(cfg)
	t.Cleanup(w.Shutdown)
	var order []string
	for _, name := range []string{"low", "high"} {
		name := name
		pri := sim.PriorityLow
		if name == "high" {
			pri = sim.PriorityHigh
		}
		w.Spawn(name, pri, func(th *sim.Thread) any {
			order = append(order, name)
			th.Compute(vclock.Millisecond)
			return nil
		})
	}
	if out := w.Run(vclock.Time(vclock.Second)); out != sim.OutcomeQuiescent {
		t.Fatalf("outcome = %v, want quiescent", out)
	}
	// With every Level answer rejected, dispatch degrades to the threads'
	// own priorities: strict priority order.
	if !reflect.DeepEqual(order, []string{"high", "low"}) {
		t.Fatalf("order = %v, want priority order [high low]", order)
	}
}

// TestHookLayersOverPolicy: an OnSchedule hook wraps the configured base
// policy — a positive in-range answer overrides the base's pick, while 0
// defers to it (here EDF's earliest-deadline choice, not raw FIFO). This
// is what keeps explore's decision recording/replay working over any
// policy.
func TestHookLayersOverPolicy(t *testing.T) {
	run := func(hook func(sim.Decision) int) []string {
		pol := MustParse("edf")
		cfg := sim.Config{SwitchCost: -1, TimeoutGranularity: 1}
		cfg.Hooks.Policy = pol
		cfg.Hooks.OnSchedule = hook
		w := sim.NewWorld(cfg)
		defer w.Shutdown()
		var order []string
		// Spawn order c, b, a with deadlines 300, 200, 100 ms: FIFO order
		// is [c b a], EDF order is [a b c].
		for i, name := range []string{"c", "b", "a"} {
			name := name
			dl := vclock.Time(vclock.Duration(3-i) * 100 * vclock.Millisecond)
			th := w.Spawn(name, sim.PriorityNormal, func(th *sim.Thread) any {
				order = append(order, name)
				th.Compute(vclock.Millisecond)
				return nil
			})
			th.SetDeadline(dl)
		}
		if out := w.Run(vclock.Time(vclock.Second)); out != sim.OutcomeQuiescent {
			t.Fatalf("outcome = %v, want quiescent", out)
		}
		if w.ScheduleDecisions() == 0 {
			t.Fatalf("no decision points recorded with hook present")
		}
		return order
	}
	// Hook defers (0): EDF runs the deadlines in order despite FIFO [c b a].
	if got := run(func(sim.Decision) int { return 0 }); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("deferring hook: order = %v, want EDF [a b c]", got)
	}
	// Hook overrides the first decision with index 1 ("b", neither the
	// FIFO head nor EDF's choice); thereafter it defers, so EDF finishes
	// the rest in deadline order.
	forced := run(func(d sim.Decision) int {
		if d.Seq == 0 {
			if len(d.Candidates) != 3 || d.Candidates[1].Name() != "b" {
				t.Errorf("first decision candidates unexpected: %v", d.Candidates)
			}
			return 1
		}
		return 0
	})
	if !reflect.DeepEqual(forced, []string{"b", "a", "c"}) {
		t.Errorf("overriding hook: order = %v, want [b a c]", forced)
	}
}
