// Package sched is the scheduling-policy registry: the pluggable
// disciplines the simulator's dispatcher can run instead of the paper's
// hardwired strict-priority + round-robin, the "name:param=val,..." spec
// syntax the CLIs accept, and the per-policy trace invariants the explore
// oracles check.
//
// The Policy interface itself lives in package sim (its methods take
// *sim.Thread); this package re-exports it, hosts the named
// implementations, and owns their parameter validation:
//
//	pcr-rr                    the paper's discipline (the default; byte-
//	                          identical to a world with no policy at all)
//	rr[:level=,quantum=]      single-level round-robin: every thread on one
//	                          ready level, FIFO rotation
//	edf[:level=]              earliest-deadline-first among the declared
//	                          Thread deadlines (no deadline sorts last)
//	sjf[:level=]              shortest-job-first by declared service
//	                          estimate (no estimate sorts last)
//	mlfq[:levels=,quantum=,age=]
//	                          multi-level feedback: demote on quantum
//	                          expiry, reset to top on wakeup, age back up
//	hybrid[:slice=,share=]    promptness-vs-throughput split: interactive/
//	                          deadline work EDF-ordered up top, batch below
//	                          with a guaranteed CPU share via timed boosts
//
// Parse returns a fresh instance per call: stateful policies (mlfq,
// hybrid) key internal state by *sim.Thread and must not be shared
// between worlds.
package sched

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/sim"
	"repro/internal/vclock"
)

// Policy is the scheduling-discipline interface consulted by the
// dispatcher; see sim.Policy for the full seam contract.
type Policy = sim.Policy

// Default is the built-in pcr-rr policy — the exact value the dispatcher
// recognizes as "no policy configured".
var Default = sim.PCRPolicy

// descriptor is one registry entry.
type descriptor struct {
	name   string
	doc    string   // one-line summary for CLI listings
	params []string // sorted legal param names
	build  func(kv map[string]string) (Policy, error)
}

// table is the policy registry, keyed by name.
var table = map[string]*descriptor{}

func register(d *descriptor) {
	sort.Strings(d.params)
	table[d.name] = d
}

// Names lists every registered policy, sorted.
func Names() []string {
	names := make([]string, 0, len(table))
	for n := range table {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Doc returns the one-line description of a registered policy ("" for
// unknown names). CLI listings use it.
func Doc(name string) string {
	if d, ok := table[name]; ok {
		return d.doc
	}
	return ""
}

// Parse builds a policy from a "name" or "name:param=val,param=val" spec.
// Unknown names, unknown params, malformed pairs and out-of-range values
// are all errors with the full legal set in the message, so CLIs can pass
// the text straight through as their exit-2 diagnostic. Each call returns
// a fresh instance, safe to hand to exactly one world.
func Parse(spec string) (Policy, error) {
	name, rest, hasParams := strings.Cut(spec, ":")
	name = strings.TrimSpace(name)
	d, ok := table[name]
	if !ok {
		return nil, fmt.Errorf("unknown policy %q (have %s)", name, strings.Join(Names(), ", "))
	}
	kv := map[string]string{}
	if hasParams {
		for _, item := range strings.Split(rest, ",") {
			item = strings.TrimSpace(item)
			if item == "" {
				continue
			}
			k, v, ok := strings.Cut(item, "=")
			k, v = strings.TrimSpace(k), strings.TrimSpace(v)
			if !ok || k == "" || v == "" {
				return nil, fmt.Errorf("policy %s: malformed param %q (want key=val)", name, item)
			}
			if _, dup := kv[k]; dup {
				return nil, fmt.Errorf("policy %s: duplicate param %q", name, k)
			}
			kv[k] = v
		}
	}
	for k := range kv {
		if !paramKnown(d.params, k) {
			have := "none"
			if len(d.params) > 0 {
				have = strings.Join(d.params, ", ")
			}
			return nil, fmt.Errorf("policy %s: unknown param %q (have %s)", name, k, have)
		}
	}
	return d.build(kv)
}

// MustParse is Parse for specs validated upstream; it panics on error.
// The experiment harness uses it on specs the CLIs already checked.
func MustParse(spec string) Policy {
	p, err := Parse(spec)
	if err != nil {
		panic(fmt.Sprintf("sched: %v", err))
	}
	return p
}

func paramKnown(params []string, k string) bool {
	for _, p := range params {
		if p == k {
			return true
		}
	}
	return false
}

// intParam parses an integer param with bounds, defaulting when absent.
func intParam(kv map[string]string, policy, key string, def, min, max int) (int, error) {
	v, ok := kv[key]
	if !ok {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < min || n > max {
		return 0, fmt.Errorf("policy %s: %s %q: must be an integer in %d..%d", policy, key, v, min, max)
	}
	return n, nil
}

// levelParam parses a ready-level param (one of the seven sim levels).
func levelParam(kv map[string]string, policy, key string, def sim.Priority) (sim.Priority, error) {
	n, err := intParam(kv, policy, key, int(def), int(sim.PriorityMin), int(sim.PriorityInterrupt))
	return sim.Priority(n), err
}

// durParam parses a wall-clock-syntax duration param ("10ms", "1.5s")
// into virtual microseconds, defaulting when absent.
func durParam(kv map[string]string, policy, key string, def vclock.Duration) (vclock.Duration, error) {
	v, ok := kv[key]
	if !ok {
		return def, nil
	}
	d, err := time.ParseDuration(v)
	if err != nil || d.Microseconds() <= 0 {
		return 0, fmt.Errorf("policy %s: %s %q: must be a positive duration (e.g. 10ms)", policy, key, v)
	}
	return vclock.Duration(d.Microseconds()), nil
}

// floatParam parses a float param with bounds, defaulting when absent.
func floatParam(kv map[string]string, policy, key string, def, min, max float64) (float64, error) {
	v, ok := kv[key]
	if !ok {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil || f < min || f > max {
		return 0, fmt.Errorf("policy %s: %s %q: must be a number in %g..%g", policy, key, v, min, max)
	}
	return f, nil
}
