package explore

import (
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/paradigm"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// -explore.budget raises the per-scenario run budget beyond the default
// 200 for deeper sweeps (e.g. go test ./internal/explore -explore.budget=2000).
var budgetFlag = flag.Int("explore.budget", 0, "schedule-exploration run budget per scenario (0 = default 200)")

func testBudget() int {
	if *budgetFlag > 0 {
		return *budgetFlag
	}
	return 200
}

func TestTokenRoundTrip(t *testing.T) {
	cases := []struct {
		scenario string
		sched    Schedule
		want     string
	}{
		{"ping-pong", Schedule{Seed: 1}, "v1;ping-pong;seed=1;steps=-"},
		{"broken-timeout-wait", Schedule{Seed: 7, Steps: []Step{{3, 1}, {10, 2}}},
			"v1;broken-timeout-wait;seed=7;steps=3.1,10.2"},
	}
	for _, c := range cases {
		tok := EncodeToken(c.scenario, c.sched)
		if tok != c.want {
			t.Errorf("EncodeToken = %q, want %q", tok, c.want)
		}
		name, sched, err := DecodeToken(tok)
		if err != nil {
			t.Fatalf("DecodeToken(%q): %v", tok, err)
		}
		if name != c.scenario || sched.Seed != c.sched.Seed || !reflect.DeepEqual(sched.Steps, c.sched.Steps) {
			t.Errorf("DecodeToken(%q) = %q %+v, want %q %+v", tok, name, sched, c.scenario, c.sched)
		}
	}
}

func TestTokenErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"v2;x;seed=1;steps=-",
		"v1;;seed=1;steps=-",
		"v1;x;seed=;steps=-",
		"v1;x;seed=abc;steps=-",
		"v1;x;seed=1",
		"v1;x;seed=1;steps=3",
		"v1;x;seed=1;steps=3.0",  // choice 0 is the default; never encoded
		"v1;x;seed=1;steps=-1.2", // negative seq
	} {
		if _, _, err := DecodeToken(bad); err == nil {
			t.Errorf("DecodeToken(%q) succeeded, want error", bad)
		}
	}
}

func TestScenarioRegistry(t *testing.T) {
	all := paradigm.Scenarios()
	if len(all) < 12 {
		t.Fatalf("only %d scenarios registered, want >= 12", len(all))
	}
	var knownBad int
	for _, sc := range all {
		if sc.KnownBad {
			knownBad++
		}
		got, ok := paradigm.ScenarioByName(sc.Name)
		if !ok || got.Name != sc.Name {
			t.Errorf("ScenarioByName(%q) lookup failed", sc.Name)
		}
	}
	if knownBad != 1 {
		t.Errorf("%d known-bad scenarios, want exactly 1 (broken-timeout-wait)", knownBad)
	}
	for _, name := range []string{"broken-timeout-wait", "r1-crash-rejuvenate", "r2-fork-retry", "r3-inversion-daemon"} {
		if _, ok := paradigm.ScenarioByName(name); !ok {
			t.Errorf("scenario %q not registered", name)
		}
	}
}

// TestExploreHealthy: every non-fixture scenario must survive its whole
// exploration budget — seed sweep, single and paired forced decisions,
// random walks — with every oracle green.
func TestExploreHealthy(t *testing.T) {
	for _, sc := range paradigm.Scenarios() {
		if sc.KnownBad {
			continue
		}
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			v := Explore(sc, Options{Budget: testBudget()})
			if v.Failure != nil {
				min, _ := Shrink(sc, v.Failure, Options{})
				t.Errorf("schedule exploration failed after %d runs: %s\n  replay: %s",
					v.Runs, v.Failure.Error(), EncodeToken(sc.Name, min.Schedule))
			}
		})
	}
}

// TestExploreFindsKnownBad: exploration must find the broken-timeout-wait
// fixture's losing schedule, shrink it to a short decision sequence, and
// do so deterministically — the same token on every invocation.
func TestExploreFindsKnownBad(t *testing.T) {
	sc, ok := paradigm.ScenarioByName("broken-timeout-wait")
	if !ok {
		t.Fatal("fixture scenario missing")
	}
	find := func() (string, int, int) {
		v := Explore(sc, Options{Budget: testBudget()})
		if v.Failure == nil {
			t.Fatalf("exploration missed the seeded bug in %d runs over %d decision points", v.Runs, v.Decisions)
		}
		min, shrinkRuns := Shrink(sc, v.Failure, Options{})
		if min.Oracle != v.Failure.Oracle {
			t.Fatalf("shrink wandered from oracle %q to %q", v.Failure.Oracle, min.Oracle)
		}
		if len(min.Schedule.Steps) > 10 {
			t.Errorf("shrunk schedule has %d steps, want <= 10: %+v", len(min.Schedule.Steps), min.Schedule.Steps)
		}
		return EncodeToken(sc.Name, min.Schedule), v.Runs, shrinkRuns
	}
	tok1, runs, shrinkRuns := find()
	tok2, _, _ := find()
	if tok1 != tok2 {
		t.Errorf("non-deterministic shrink: %q vs %q", tok1, tok2)
	}
	t.Logf("found in %d runs, shrunk in %d: %s", runs, shrinkRuns, tok1)

	// The found schedule replays to the same failure, and the failure
	// really is the lost item, not an infrastructure oracle.
	res, err := Replay(tok1)
	if err != nil {
		t.Fatalf("Replay(%q): %v", tok1, err)
	}
	if res.Failure == nil {
		t.Fatalf("token %q no longer fails on replay", tok1)
	}
	if res.Failure.Oracle != "check" || !strings.Contains(res.Failure.Msg, "gave up") {
		t.Errorf("unexpected failure %q: %s", res.Failure.Oracle, res.Failure.Msg)
	}
}

// TestRegressionCorpus: every token persisted under testdata/regressions
// must still reproduce its failure — these are shrunk schedules from past
// exploration finds.
func TestRegressionCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "regressions", "*.token"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no regression tokens found; the corpus should hold at least broken-timeout-wait")
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			data, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			tok := strings.TrimSpace(string(data))
			res, err := Replay(tok)
			if err != nil {
				t.Fatalf("Replay(%q): %v", tok, err)
			}
			if res.Failure == nil {
				t.Errorf("regression schedule %q no longer fails — if the bug was fixed on purpose, delete this file", tok)
			}
		})
	}
}

// TestShrinkDropsRedundantSteps: padding a real failing schedule with
// no-op steps must shrink back down to the minimal sequence.
func TestShrinkDropsRedundantSteps(t *testing.T) {
	sc, _ := paradigm.ScenarioByName("broken-timeout-wait")
	v := Explore(sc, Options{Budget: testBudget()})
	if v.Failure == nil {
		t.Fatal("exploration missed the seeded bug")
	}
	min, _ := Shrink(sc, v.Failure, Options{})

	padded := &Failure{Oracle: min.Oracle, Msg: min.Msg, Schedule: Schedule{Seed: min.Schedule.Seed}}
	padded.Schedule.Steps = append(padded.Schedule.Steps, min.Schedule.Steps...)
	// Redundant perturbations far past the failing prefix are harmless
	// (clamped or never reached) and must be shrunk away.
	padded.Schedule.Steps = append(padded.Schedule.Steps, Step{Seq: 2000, Choice: 1}, Step{Seq: 3000, Choice: 2})
	re, _ := runSchedule(sc, padded.Schedule, Options{}.withDefaults(), nil)
	if re == nil || re.Oracle != min.Oracle {
		t.Fatalf("padded schedule does not fail the same way: %+v", re)
	}
	shrunk, _ := Shrink(sc, re, Options{})
	if len(shrunk.Schedule.Steps) > len(min.Schedule.Steps) {
		t.Errorf("shrink left %d steps, want <= %d: %+v", len(shrunk.Schedule.Steps), len(min.Schedule.Steps), shrunk.Schedule.Steps)
	}
}

// Synthetic-trace oracle tests: feed hand-built event lists straight to
// the checkers to pin their violation conditions independently of the
// simulator.

func TestOracleExclusionSynthetic(t *testing.T) {
	ok := &Run{Events: []trace.Event{
		{Kind: trace.KindMLEnter, Thread: 1, Arg: 7},
		{Kind: trace.KindMLExit, Thread: 1, Arg: 7},
		{Kind: trace.KindMLEnter, Thread: 2, Arg: 7},
		{Kind: trace.KindExit, Thread: 2}, // kill-unwind: no MLExit
		{Kind: trace.KindMLEnter, Thread: 3, Arg: 7},
	}}
	if err := checkExclusion(ok); err != nil {
		t.Errorf("clean trace flagged: %v", err)
	}
	for name, evs := range map[string][]trace.Event{
		"double enter": {
			{Kind: trace.KindMLEnter, Thread: 1, Arg: 7},
			{Kind: trace.KindMLEnter, Thread: 2, Arg: 7},
		},
		"exit without hold": {
			{Kind: trace.KindMLExit, Thread: 1, Arg: 7},
		},
		"exit by non-holder": {
			{Kind: trace.KindMLEnter, Thread: 1, Arg: 7},
			{Kind: trace.KindMLExit, Thread: 2, Arg: 7},
		},
	} {
		if err := checkExclusion(&Run{Events: evs}); err == nil {
			t.Errorf("%s: not flagged", name)
		}
	}
}

func TestOracleLostWakeupSynthetic(t *testing.T) {
	ok := &Run{Events: []trace.Event{
		{Kind: trace.KindWait, Thread: 1, Arg: 5},
		{Kind: trace.KindNotify, Thread: 2, Arg: 5, Aux: 1},
		{Kind: trace.KindWaitDone, Thread: 1, Arg: 5, Aux: 0},
		// Device-style CV: consumption without signals is not audited.
		{Kind: trace.KindWait, Thread: 3, Arg: 9, Aux: -1},
		{Kind: trace.KindWaitDone, Thread: 3, Arg: 9, Aux: 0},
	}}
	if err := checkLostWakeup(ok); err != nil {
		t.Errorf("clean trace flagged: %v", err)
	}
	lost := &Run{Events: []trace.Event{
		{Kind: trace.KindWait, Thread: 1, Arg: 5},
		{Kind: trace.KindNotify, Thread: 2, Arg: 5, Aux: 1},
		{Kind: trace.KindWaitDone, Thread: 1, Arg: 5, Aux: 1}, // timed out anyway: signal vanished
	}}
	if err := checkLostWakeup(lost); err == nil {
		t.Error("lost wakeup not flagged")
	}
	phantom := &Run{Events: []trace.Event{
		{Kind: trace.KindWait, Thread: 1, Arg: 5},
		{Kind: trace.KindNotify, Thread: 2, Arg: 5, Aux: 0}, // woke nobody
		{Kind: trace.KindWaitDone, Thread: 1, Arg: 5, Aux: 0},
	}}
	if err := checkLostWakeup(phantom); err == nil {
		t.Error("phantom wakeup not flagged")
	}
}

func TestOracleFIFOSynthetic(t *testing.T) {
	blockMutex := int64(trace.BlockMutex)
	ok := &Run{Events: []trace.Event{
		{Kind: trace.KindMLEnter, Thread: 1, Arg: 7},
		{Kind: trace.KindBlock, Thread: 2, Aux: blockMutex},
		{Kind: trace.KindBlock, Thread: 3, Aux: blockMutex},
		{Kind: trace.KindMLExit, Thread: 1, Arg: 7},
		{Kind: trace.KindMLEnter, Thread: 2, Arg: 7, Aux: 1},
		{Kind: trace.KindMLExit, Thread: 2, Arg: 7},
		{Kind: trace.KindMLEnter, Thread: 3, Arg: 7, Aux: 1},
	}}
	if err := checkFIFO(ok); err != nil {
		t.Errorf("FIFO handoff flagged: %v", err)
	}
	barged := &Run{Events: []trace.Event{
		{Kind: trace.KindMLEnter, Thread: 1, Arg: 7},
		{Kind: trace.KindBlock, Thread: 2, Aux: blockMutex},
		{Kind: trace.KindBlock, Thread: 3, Aux: blockMutex},
		{Kind: trace.KindMLExit, Thread: 1, Arg: 7},
		{Kind: trace.KindMLEnter, Thread: 3, Arg: 7, Aux: 1}, // jumped the queue
		{Kind: trace.KindMLExit, Thread: 3, Arg: 7},
		{Kind: trace.KindMLEnter, Thread: 2, Arg: 7, Aux: 1},
	}}
	if err := checkFIFO(barged); err == nil {
		t.Error("queue-jumping not flagged")
	}
	// A queued thread that dies is skipped, not a violation.
	death := &Run{Events: []trace.Event{
		{Kind: trace.KindMLEnter, Thread: 1, Arg: 7},
		{Kind: trace.KindBlock, Thread: 2, Aux: blockMutex},
		{Kind: trace.KindBlock, Thread: 3, Aux: blockMutex},
		{Kind: trace.KindExit, Thread: 2},
		{Kind: trace.KindMLExit, Thread: 1, Arg: 7},
		{Kind: trace.KindMLEnter, Thread: 3, Arg: 7, Aux: 1},
	}}
	if err := checkFIFO(death); err != nil {
		t.Errorf("dead queued thread flagged: %v", err)
	}
}

func TestOracleStrictPrioritySynthetic(t *testing.T) {
	q := 50 * vclock.Millisecond
	mk := func(starveFor vclock.Duration) *Run {
		return &Run{Quantum: q, Events: []trace.Event{
			{Time: 0, Kind: trace.KindFork, Thread: trace.NoThread, Arg: 1, Aux: 3}, // low
			{Time: 0, Kind: trace.KindFork, Thread: trace.NoThread, Arg: 2, Aux: 5}, // high
			{Time: 0, Kind: trace.KindReady, Thread: 1},
			{Time: 0, Kind: trace.KindSwitch, Thread: 1, Arg: int64(trace.NoThread)},
			{Time: vclock.Time(vclock.Millisecond), Kind: trace.KindReady, Thread: 2},
			{Time: vclock.Time(vclock.Millisecond + starveFor), Kind: trace.KindSwitch, Thread: 2, Arg: 1},
		}}
	}
	if err := checkStrictPriority(mk(vclock.Microsecond)); err != nil {
		t.Errorf("prompt preemption flagged: %v", err)
	}
	if err := checkStrictPriority(mk(q * 3)); err == nil {
		t.Error("three-quantum starvation of a higher-priority thread not flagged")
	}
}

// TestOracleNamesIncludePolicyInvariants: the oracle table is built from
// the policy registry — every policy's invariant is a listable oracle.
func TestOracleNamesIncludePolicyInvariants(t *testing.T) {
	names := OracleNames()
	has := func(want string) bool {
		for _, n := range names {
			if n == want {
				return true
			}
		}
		return false
	}
	for _, want := range []string{
		"strict-priority", "bounded-wait:rr", "bounded-wait:edf",
		"bounded-wait:sjf", "no-starvation:mlfq", "no-starvation:hybrid",
	} {
		if !has(want) {
			t.Errorf("OracleNames() missing %q (have %v)", want, names)
		}
	}
}

// TestExploreUnderPolicy: the explorer is policy-parameterized. Under rr
// the priority-ladder scenario — which opted into strict-priority — is
// checked against rr's own bounded-wait invariant instead, and passes; a
// bogus spec surfaces as a "policy" failure rather than a panic.
func TestExploreUnderPolicy(t *testing.T) {
	sc, ok := paradigm.ScenarioByName("priority-ladder")
	if !ok {
		t.Fatal("priority-ladder scenario missing")
	}
	v := Explore(sc, Options{Budget: 6, Policy: "rr"})
	if v.Failure != nil {
		t.Fatalf("priority-ladder under rr failed: %v", v.Failure)
	}
	if v.Decisions == 0 {
		t.Errorf("no decision points under rr — flattening should merge the ladder into one level")
	}
	v = Explore(sc, Options{Budget: 2, Policy: "no-such-policy"})
	if v.Failure == nil || v.Failure.Oracle != "policy" {
		t.Fatalf("bogus policy spec: failure = %v, want policy pseudo-oracle", v.Failure)
	}
}
