package explore

import (
	"fmt"

	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/monitor"
	"repro/internal/paradigm"
	"repro/internal/sim"
	"repro/internal/vclock"
)

// The R-series fault plans (internal/experiments) double as explore
// scenarios: instead of one measured run per plan, the explorer sweeps
// schedules and seeds under the same injected faults and asserts the
// recovery paradigms hold everywhere. They live here rather than in
// paradigm because they need internal/fault and internal/experiments
// (paradigm sits below both).
func init() {
	ms := vclock.Millisecond

	// r1-crash-rejuvenate: R1's plan — crash the event dispatcher twice,
	// while blocked — against a §4.5 rejuvenated service. A crash landing
	// in a CV WAIT must not lose the awaited item: the killed waiter never
	// took it, so the restarted incarnation drains the backlog completely.
	paradigm.RegisterScenario(paradigm.Scenario{
		Name:    "r1-crash-rejuvenate",
		Desc:    "dispatcher crashed twice mid-stream (R1 plan); rejuvenation loses nothing (§4.5, §5.5)",
		Horizon: 2 * vclock.Second,
		Build: func(cfg sim.Config) (*sim.World, *paradigm.ScenarioHooks) {
			const span = 900 * vclock.Millisecond
			inj := fault.MustNew(experiments.R1DefaultPlan(span), cfg.Seed)
			inj.Configure(&cfg)
			w := sim.NewWorld(cfg)
			inj.Arm(w)

			buf := paradigm.NewBuffer(w, "events", 64)
			const items = 30
			w.Spawn("source", sim.PriorityNormal, func(t *sim.Thread) any {
				for i := 0; i < items; i++ {
					t.Compute(20 * ms)
					buf.Put(t, i)
				}
				buf.Close(t)
				return nil
			})
			var dispatched int
			var wd *fault.Watchdog
			svc := paradigm.StartService(w, nil, "event-dispatcher", sim.PriorityNormal, 5,
				func(t *sim.Thread) {
					for {
						_, ok := buf.Get(t)
						if !ok {
							wd.Stop() // drained: the counter may legally stall now
							return
						}
						t.Compute(2 * ms)
						dispatched++
					}
				}, nil)
			// Negative watchdog direction: restarts are fast and events flow
			// every ~20 ms, so a 400 ms starvation threshold must stay silent
			// even across the crashes.
			wd = fault.StartWatchdog(w, nil, "dispatch-watchdog", 100*ms, 4,
				func() int64 { return int64(dispatched) }, nil)
			wdCheck := WatchdogConsistent(wd, false, false)
			return w, &paradigm.ScenarioHooks{
				Monitors: []*monitor.Monitor{buf.Monitor()},
				Oracles:  []string{OracleExclusion, OracleLostWakeup, OracleDeadlockSound},
				Check: func(w *sim.World, out sim.Outcome) error {
					if err := wdCheck(w, out); err != nil {
						return err
					}
					// On schedules where the dispatcher never blocks again
					// after the stream ends, the second WhenBlocked crash
					// stays pending in the injector and the run ends at the
					// horizon — legal, as long as nothing deadlocked.
					if out == sim.OutcomeDeadlock {
						return fmt.Errorf("outcome %v", out)
					}
					if crashes := len(inj.CrashTimes()); svc.Restarts() != crashes {
						return fmt.Errorf("%d crashes injected but %d restarts", crashes, svc.Restarts())
					}
					if svc.Restarts() == 0 {
						return fmt.Errorf("no crash was ever injected")
					}
					if dispatched != items {
						return fmt.Errorf("dispatched %d of %d events: a crash lost work", dispatched, items)
					}
					return nil
				},
			}
		},
	})

	// r2-fork-retry: R2's plan clamps the thread limit to 2 mid-stream; a
	// notifier forking an echo transient per keystroke under
	// fault.RetryPolicy must still lose nothing. The clamp stalls the
	// served counter for most of the [500ms,1200ms) window (the watchdog
	// itself holds one of the two slots), so the positive watchdog
	// direction applies: it must detect that starvation AND see it clear
	// once the window lifts.
	paradigm.RegisterScenario(paradigm.Scenario{
		Name:    "r2-fork-retry",
		Desc:    "thread limit clamped mid-stream (R2 plan); FORK retry loses no keystrokes (§5.4)",
		Horizon: 2 * vclock.Second,
		Build: func(cfg sim.Config) (*sim.World, *paradigm.ScenarioHooks) {
			inj := fault.MustNew(experiments.R2DefaultPlan(), cfg.Seed)
			cfg.MaxThreads = 16
			inj.Configure(&cfg)
			w := sim.NewWorld(cfg)
			inj.Arm(w)

			dev := paradigm.NewDeviceQueue(w, "keyboard")
			const keys = 12
			for i := 0; i < keys; i++ {
				w.At(vclock.Time((50+100*vclock.Duration(i))*ms), func() { dev.Push(i) })
			}
			w.At(vclock.Time((50+100*keys)*ms), dev.CloseDevice)

			var served, lost int
			var wd *fault.Watchdog
			policy := fault.RetryPolicy{Tries: 12, Backoff: 10 * ms, Ceiling: 100 * ms}
			w.Spawn("notifier", sim.PriorityNormal, func(t *sim.Thread) any {
				for {
					_, ok := dev.Get(t)
					if !ok {
						// Outlive one watchdog period so its next tick can
						// observe the post-clamp recovery before we stop it.
						t.Sleep(250 * ms)
						wd.Stop()
						return nil
					}
					child, _, err := policy.Fork(t, "echo", func(c *sim.Thread) any {
						c.Compute(2 * ms)
						served++
						c.BlockIO(180 * ms) // the transient's working life
						return nil
					})
					if err != nil {
						lost++
						continue
					}
					child.Detach()
				}
			})
			wd = fault.StartWatchdog(w, nil, "echo-watchdog", 100*ms, 4,
				func() int64 { return int64(served) }, nil)
			wdCheck := WatchdogConsistent(wd, true, true)
			return w, &paradigm.ScenarioHooks{
				Oracles: []string{OracleExclusion, OracleLostWakeup, OracleDeadlockSound},
				Check: func(w *sim.World, out sim.Outcome) error {
					if err := wdCheck(w, out); err != nil {
						return err
					}
					if out != sim.OutcomeQuiescent {
						return fmt.Errorf("outcome %v, want quiescent", out)
					}
					if lost != 0 || served != keys {
						return fmt.Errorf("served %d of %d keystrokes, lost %d: retry policy failed", served, keys, lost)
					}
					return nil
				},
			}
		},
	})

	// r3-inversion-daemon: R3's plan stalls a low-priority lock holder
	// under a middle-priority hog while a high-priority thread waits
	// (§6.2's stable inversion). With the SystemDaemon on, the watchdog
	// must detect the starvation AND see it clear — random donation
	// eventually pushes the holder through its critical section.
	paradigm.RegisterScenario(paradigm.Scenario{
		Name:    "r3-inversion-daemon",
		Desc:    "induced priority inversion (R3 plan); watchdog detects, SystemDaemon clears (§6.2)",
		Horizon: 6 * vclock.Second,
		Build: func(cfg sim.Config) (*sim.World, *paradigm.ScenarioHooks) {
			inj := fault.MustNew(experiments.R3DefaultPlan(), cfg.Seed)
			cfg.SystemDaemon = true
			inj.Configure(&cfg)
			w := sim.NewWorld(cfg)
			inj.Arm(w)

			m := monitor.New(w, "resource")
			w.Spawn("lo-holder", sim.PriorityLow, func(t *sim.Thread) any {
				m.Enter(t)
				t.Compute(10 * ms) // stalled to 60 ms by the plan
				m.Exit(t)
				return nil
			})
			var progress int64
			w.At(vclock.Time(ms), func() {
				w.Spawn("mid-hog", sim.PriorityNormal, func(t *sim.Thread) any {
					for {
						t.Compute(10 * ms)
					}
				})
				w.Spawn("hi-waiter", sim.PriorityHigh, func(t *sim.Thread) any {
					for {
						m.Enter(t)
						progress++
						m.Exit(t)
						t.BlockIO(10 * ms)
					}
				})
			})
			wd := fault.StartWatchdog(w, nil, "inversion-watchdog", 20*ms, 3,
				func() int64 { return progress }, nil)
			wdCheck := WatchdogConsistent(wd, true, true)
			return w, &paradigm.ScenarioHooks{
				Monitors: []*monitor.Monitor{m},
				// The hog never exits, so the run always ends at the horizon,
				// and the daemon's donations run low-priority threads on
				// purpose — no quiescence check, no strict-priority oracle.
				Oracles: []string{OracleExclusion, OracleLostWakeup, OracleDeadlockSound},
				Check:   wdCheck,
			}
		},
	})
}
