package explore

import "repro/internal/paradigm"

// Shrink reduces a failure's schedule to a locally minimal decision
// sequence using ddmin: progressively finer chunk removal, then a final
// one-step-at-a-time pass. A candidate counts as reproducing only if the
// SAME oracle fails — shrinking must not wander onto a different bug. It
// returns the minimal failure (the original if nothing could be removed)
// and the number of runs spent.
func Shrink(sc paradigm.Scenario, f *Failure, opts Options) (*Failure, int) {
	opts = opts.withDefaults()
	runs := 0
	fails := func(steps []Step) *Failure {
		runs++
		fail, _ := runSchedule(sc, Schedule{Seed: f.Schedule.Seed, Steps: steps}, opts, nil)
		if fail != nil && fail.Oracle == f.Oracle {
			return fail
		}
		return nil
	}

	// The scenario may fail with no forced steps at all under this seed.
	if ff := fails(nil); ff != nil {
		return ff, runs
	}

	best := f
	steps := f.Schedule.Steps
	without := func(start, end int) []Step {
		out := make([]Step, 0, len(steps)-(end-start))
		out = append(out, steps[:start]...)
		return append(out, steps[end:]...)
	}

	n := 2
	for len(steps) >= 2 {
		chunk := (len(steps) + n - 1) / n
		reduced := false
		for start := 0; start < len(steps); start += chunk {
			end := min(start+chunk, len(steps))
			if ff := fails(without(start, end)); ff != nil {
				steps = ff.Schedule.Steps
				best = ff
				n = max(n-1, 2)
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(steps) {
				break
			}
			n = min(2*n, len(steps))
		}
	}

	// Final pass: drop individual surviving steps.
	for i := 0; i < len(steps) && len(steps) > 1; {
		if ff := fails(without(i, i+1)); ff != nil {
			steps = ff.Schedule.Steps
			best = ff
			i = 0
		} else {
			i++
		}
	}
	return best, runs
}
