package explore

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/fault"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Oracle names. A scenario selects oracles by listing these in
// ScenarioHooks.Oracles; nil selects DefaultOracles.
const (
	// OracleExclusion replays MLEnter/MLExit pairs: at most one holder per
	// monitor at any trace position, exits only by the holder, and (via
	// the monitor accessors) no dead holders or unblocked queued entrants
	// at the end. A killed thread's monitors release without MLExit events
	// during unwind, so a holder's exit clears its holdings.
	OracleExclusion = "exclusion"

	// OracleLostWakeup audits every condition variable's final balance:
	// completed WAITs that consumed a signal never exceed signals sent,
	// and signals sent never exceed consumers plus still-pending waiters —
	// the §5.3 wakeup-waiting-flag guarantee at trace level. CVs that saw
	// no NOTIFY/BROADCAST at all (device queues wake by event, not signal)
	// are skipped.
	OracleLostWakeup = "lost-wakeup"

	// OracleFIFO checks monitor-queue handoff order: threads that blocked
	// on a monitor's mutex acquire it in block order. Opt-in — Hoare
	// signalling and metalocks serve an urgent queue LIFO by design.
	OracleFIFO = "fifo"

	// OracleStrictPriority checks that no runnable thread waits longer
	// than a quantum (plus dispatch tolerance) while a strictly
	// lower-priority thread runs — the pcr-rr policy's invariant, which
	// lives in package sched (sched.CheckStrictPriority). Opt-in — boosts
	// and the SystemDaemon donate time to low-priority threads on
	// purpose, and the check assumes one CPU. When a scenario that opted
	// in runs under a different policy (Options.Policy), the explorer
	// substitutes that policy's own invariant (sched.OracleFor).
	OracleStrictPriority = "strict-priority"

	// OracleDeadlockSound cross-checks the outcome against the world's
	// deadlock report: a deadlock outcome names a non-empty set of blocked
	// threads all present in DumpState, and any other outcome reports
	// none.
	OracleDeadlockSound = "deadlock-sound"
)

// DefaultOracles applies to every scenario that doesn't pick its own set.
var DefaultOracles = []string{OracleExclusion, OracleLostWakeup, OracleDeadlockSound}

var oracleTable = map[string]func(*Run) error{
	OracleExclusion:      checkExclusion,
	OracleLostWakeup:     checkLostWakeup,
	OracleFIFO:           checkFIFO,
	OracleStrictPriority: checkStrictPriority,
	OracleDeadlockSound:  checkDeadlockSound,
}

// The policy registry contributes one oracle per scheduling policy —
// bounded-wait for the rotation disciplines, no-starvation for the
// feedback ones. pcr-rr's is the static strict-priority entry above.
func init() {
	for _, inv := range sched.Invariants() {
		if _, ok := oracleTable[inv.Oracle]; ok {
			continue
		}
		check := inv.Check
		oracleTable[inv.Oracle] = func(r *Run) error { return check(r.Events, r.Quantum) }
	}
}

// OracleNames lists every library oracle, sorted — the concurrency
// oracles plus every policy invariant from the sched registry.
func OracleNames() []string {
	names := make([]string, 0, len(oracleTable))
	for n := range oracleTable {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func checkExclusion(r *Run) error {
	holder := map[int64]int32{} // monitor ID -> holding thread
	for _, ev := range r.Events {
		switch ev.Kind {
		case trace.KindMLEnter:
			if h, held := holder[ev.Arg]; held {
				return fmt.Errorf("t%d entered monitor %d at %v while t%d held it", ev.Thread, ev.Arg, ev.Time, h)
			}
			holder[ev.Arg] = ev.Thread
		case trace.KindMLExit:
			h, held := holder[ev.Arg]
			if !held {
				return fmt.Errorf("t%d exited monitor %d at %v while nobody held it", ev.Thread, ev.Arg, ev.Time)
			}
			if h != ev.Thread {
				return fmt.Errorf("t%d exited monitor %d at %v held by t%d", ev.Thread, ev.Arg, ev.Time, h)
			}
			delete(holder, ev.Arg)
		case trace.KindExit:
			// Kill-unwind releases held monitors without MLExit events.
			for id, h := range holder {
				if h == ev.Thread {
					delete(holder, id)
				}
			}
		}
	}
	if r.Hooks == nil {
		return nil
	}
	for _, m := range r.Hooks.Monitors {
		if h := m.Holder(); h != nil && h.State() == sim.StateDead {
			return fmt.Errorf("monitor %q still held by dead thread %s", m.Name(), h.Name())
		}
		for _, t := range m.QueuedEntrants() {
			if t.State() != sim.StateBlocked {
				return fmt.Errorf("thread %s queued on monitor %q but in state %v", t.Name(), m.Name(), t.State())
			}
		}
	}
	return nil
}

func checkLostWakeup(r *Run) error {
	type tally struct {
		waits, dones, consumed int
		signals                int // NOTIFY/BROADCAST events
		woken                  int64
	}
	cvs := map[int64]*tally{}
	at := func(id int64) *tally {
		t := cvs[id]
		if t == nil {
			t = &tally{}
			cvs[id] = t
		}
		return t
	}
	for _, ev := range r.Events {
		switch ev.Kind {
		case trace.KindWait:
			at(ev.Arg).waits++
		case trace.KindWaitDone:
			t := at(ev.Arg)
			t.dones++
			if ev.Aux == 0 { // woken by a signal, not a timeout
				t.consumed++
			}
		case trace.KindNotify, trace.KindBroadcast:
			t := at(ev.Arg)
			t.signals++
			t.woken += ev.Aux
		}
	}
	ids := make([]int64, 0, len(cvs))
	for id := range cvs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		t := cvs[id]
		if t.signals == 0 {
			continue // device-style queue: wakeups arrive as events, not signals
		}
		if int64(t.consumed) > t.woken {
			return fmt.Errorf("cv %d: %d WAITs consumed a signal but only %d were woken (phantom wakeup)", id, t.consumed, t.woken)
		}
		pending := t.waits - t.dones // waiters still parked (or killed) at the end
		if t.woken-int64(t.consumed) > int64(pending) {
			return fmt.Errorf("cv %d: %d woken, %d consumed, %d still waiting — a wakeup was lost", id, t.woken, t.consumed, pending)
		}
	}
	return nil
}

// checkFIFO replays monitor mutex queues. A KindBlock(BlockMutex) event
// is bound to the blocking thread's next KindMLEnter — the monitor it was
// queueing on — because a thread blocked on a mutex records nothing else
// before acquiring it. Threads that die queued are dropped.
func checkFIFO(r *Run) error {
	// Binding pass: for each BlockMutex event index, the monitor acquired.
	nextEnter := make(map[int]int64) // event index of the Block -> monitor ID
	lastBlock := map[int32]int{}     // thread -> pending Block event index
	for i, ev := range r.Events {
		switch {
		case ev.Kind == trace.KindBlock && ev.Aux == int64(trace.BlockMutex):
			lastBlock[ev.Thread] = i
		case ev.Kind == trace.KindMLEnter:
			if bi, ok := lastBlock[ev.Thread]; ok {
				nextEnter[bi] = ev.Arg
				delete(lastBlock, ev.Thread)
			}
		case ev.Kind == trace.KindExit:
			delete(lastBlock, ev.Thread)
		}
	}

	queues := map[int64][]int32{} // monitor ID -> blocked threads, FIFO
	dead := map[int32]bool{}
	for i, ev := range r.Events {
		switch {
		case ev.Kind == trace.KindBlock && ev.Aux == int64(trace.BlockMutex):
			if mon, ok := nextEnter[i]; ok {
				queues[mon] = append(queues[mon], ev.Thread)
			}
			// A block that never reaches MLEnter (killed, or still queued at
			// the horizon) is not modelled; its queue entry would only ever
			// be skipped.
		case ev.Kind == trace.KindExit:
			dead[ev.Thread] = true
		case ev.Kind == trace.KindMLEnter:
			q := queues[ev.Arg]
			for len(q) > 0 && dead[q[0]] {
				q = q[1:]
			}
			if len(q) > 0 && q[0] == ev.Thread {
				q = q[1:]
			} else if contains(q, ev.Thread) {
				return fmt.Errorf("t%d acquired monitor %d at %v ahead of t%d, breaking FIFO handoff", ev.Thread, ev.Arg, ev.Time, q[0])
			}
			queues[ev.Arg] = q
		}
	}
	return nil
}

func contains(q []int32, id int32) bool {
	for _, t := range q {
		if t == id {
			return true
		}
	}
	return false
}

// checkStrictPriority is the pcr-rr policy invariant; the replay itself
// moved to package sched with the policy API, so the oracle table can be
// built from the policy registry.
func checkStrictPriority(r *Run) error {
	return sched.CheckStrictPriority(r.Events, r.Quantum)
}

func checkDeadlockSound(r *Run) error {
	d := r.World.Deadlocked()
	if r.Outcome != sim.OutcomeDeadlock {
		if len(d) != 0 {
			return fmt.Errorf("outcome %v but Deadlocked() reports %d threads", r.Outcome, len(d))
		}
		return nil
	}
	if len(d) == 0 {
		return fmt.Errorf("deadlock outcome but Deadlocked() is empty")
	}
	var dump strings.Builder
	r.World.DumpState(&dump)
	for _, t := range d {
		if t.State() != sim.StateBlocked {
			return fmt.Errorf("deadlocked thread %s is %v, not blocked", t.Name(), t.State())
		}
		if !strings.Contains(dump.String(), t.Name()) {
			return fmt.Errorf("deadlocked thread %s missing from DumpState", t.Name())
		}
	}
	return nil
}

// WatchdogConsistent builds a scenario Check asserting §6.2 watchdog
// soundness: the watchdog detected starvation iff the scenario starved
// its progress counter, and — when it both starved and was expected to
// recover — the episode cleared before the horizon.
func WatchdogConsistent(wd *fault.Watchdog, expectStarve, expectClear bool) func(w *sim.World, out sim.Outcome) error {
	return func(w *sim.World, out sim.Outcome) error {
		switch {
		case expectStarve && wd.Detections() == 0:
			return fmt.Errorf("progress counter starved but the watchdog never fired")
		case !expectStarve && wd.Detections() > 0:
			return fmt.Errorf("watchdog fired %d times with no starvation induced", wd.Detections())
		case expectStarve && expectClear && len(wd.ClearTimes()) == 0:
			return fmt.Errorf("starvation detected at %v but never cleared", wd.DetectTimes()[0])
		}
		return nil
	}
}
