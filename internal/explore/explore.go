// Package explore is a CHESS-style systematic schedule explorer for the
// simulator: it runs small paradigm scenarios many times, steering the
// scheduler's genuine freedoms — which equal-priority thread to dispatch,
// whether a quantum rotation happens — through sim.Config.OnSchedule, and
// checks a library of §5/§6 invariants (oracles) after every run. A
// failing schedule is shrunk to a minimal decision sequence and printed
// as a replay token, so "works on my interleaving" bugs like §5.3's
// timeout-as-answer WAIT become deterministic regression tests.
package explore

import (
	"fmt"
	"math/rand"

	"repro/internal/paradigm"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// A Step forces one scheduling decision: at decision point Seq, pick
// candidate Choice instead of the default (index 0).
type Step struct {
	Seq    int64
	Choice int
}

// A Schedule is a reproducible run: an RNG seed plus the decision points
// that were steered away from the default. An empty Steps list is the
// scenario's default schedule under that seed.
type Schedule struct {
	Seed  int64
	Steps []Step
}

// Options bounds an exploration.
type Options struct {
	// Budget caps the total number of runs (default 200).
	Budget int

	// Seeds are swept first; systematic perturbation then works on
	// Seeds[0]. Default {1, 2}.
	Seeds []int64

	// WalkProb is the per-decision perturbation probability of the
	// random-walk phase (default 0.25).
	WalkProb float64

	// WalkSeed seeds the random-walk phase (default 1). It is independent
	// of the world seeds: walks are replayed via their recorded Steps, so
	// walk randomness never needs to be reproduced.
	WalkSeed int64

	// MaxDecisions caps consultations per run; past it every decision
	// takes the default, bounding runs that a perturbation made livelock
	// (default 4096).
	MaxDecisions int

	// Policy is the scheduling-policy spec (sched.Parse syntax) every run
	// executes under; empty means the default pcr-rr. The explorer's
	// steering hook layers over the policy unchanged — decision points
	// are wherever the policy leaves genuine freedom — and a scenario
	// that opted into the strict-priority oracle is checked against the
	// selected policy's own invariant instead (sched.OracleFor). Specs
	// must be pre-validated (the CLIs do); a bad spec fails every run
	// with a "policy" pseudo-oracle failure.
	Policy string
}

func (o Options) withDefaults() Options {
	if o.Budget <= 0 {
		o.Budget = 200
	}
	if len(o.Seeds) == 0 {
		o.Seeds = []int64{1, 2}
	}
	if o.WalkProb <= 0 || o.WalkProb > 1 {
		o.WalkProb = 0.25
	}
	if o.WalkSeed == 0 {
		o.WalkSeed = 1
	}
	if o.MaxDecisions <= 0 {
		o.MaxDecisions = 4096
	}
	return o
}

// A Failure is one oracle violation together with the schedule that
// provokes it.
type Failure struct {
	Oracle   string // oracle name, or "check" for the scenario's own invariant
	Msg      string
	Schedule Schedule
}

func (f *Failure) Error() string {
	return fmt.Sprintf("%s: %s", f.Oracle, f.Msg)
}

// A Verdict summarizes one scenario's exploration.
type Verdict struct {
	Scenario  string
	Runs      int
	Decisions int // decision points on the default schedule of Seeds[0]
	Failure   *Failure
}

// A Run is one finished execution handed to oracles: the world is still
// inspectable (not yet shut down), the trace is complete.
type Run struct {
	World   *sim.World
	Hooks   *paradigm.ScenarioHooks
	Events  []trace.Event
	Outcome sim.Outcome
	Quantum vclock.Duration
}

// controller is the OnSchedule hook driving one run: forced steps replay
// a schedule, the optional RNG takes a random walk, and every non-default
// choice actually applied is recorded so the run stays replayable.
type controller struct {
	forced map[int64]int
	rng    *rand.Rand
	prob   float64
	cap    int64
	counts []int
	taken  []Step
}

func (c *controller) choose(d sim.Decision) int {
	// Decision sequences are dense from 0, so the candidate-count record
	// is a plain append.
	if int64(len(c.counts)) == d.Seq {
		c.counts = append(c.counts, len(d.Candidates))
	}
	if d.Seq >= c.cap {
		return 0
	}
	ch, ok := c.forced[d.Seq]
	if !ok && c.rng != nil && c.rng.Float64() < c.prob {
		ch = c.rng.Intn(len(d.Candidates))
	}
	if ch >= len(d.Candidates) || ch < 0 {
		ch = 0 // perturbed structure shifted under a stale step: fall back
	}
	if ch != 0 {
		c.taken = append(c.taken, Step{Seq: d.Seq, Choice: ch})
	}
	return ch
}

// runSchedule executes sc once under the given schedule (plus, when rng
// is non-nil, random perturbation) and evaluates its oracles. It returns
// the failure (nil if the run is clean) and the candidate count at every
// decision point reached.
func runSchedule(sc paradigm.Scenario, schedule Schedule, opts Options, rng *rand.Rand) (*Failure, []int) {
	ctl := &controller{
		forced: make(map[int64]int, len(schedule.Steps)),
		rng:    rng,
		prob:   opts.WalkProb,
		cap:    int64(opts.MaxDecisions),
	}
	for _, s := range schedule.Steps {
		ctl.forced[s.Seq] = s.Choice
	}
	var buf trace.Buffer
	cfg := sim.Config{Seed: schedule.Seed, Trace: &buf, Hooks: sim.Hooks{OnSchedule: ctl.choose}}
	polName := "pcr-rr"
	if opts.Policy != "" {
		// Fresh instance per run: stateful policies key state by thread
		// pointer and serve exactly one world.
		pol, err := sched.Parse(opts.Policy)
		if err != nil {
			return &Failure{Oracle: "policy", Msg: err.Error(), Schedule: schedule}, nil
		}
		cfg.Hooks.Policy = pol
		polName = pol.Name()
	}
	w, hooks := sc.Build(cfg)
	defer w.Shutdown()
	out := w.Run(vclock.Time(sc.Horizon))

	r := &Run{World: w, Hooks: hooks, Events: buf.Events, Outcome: out, Quantum: w.Config().Quantum}
	applied := Schedule{Seed: schedule.Seed, Steps: ctl.taken}
	names := DefaultOracles
	if hooks != nil && hooks.Oracles != nil {
		names = hooks.Oracles
	}
	if polName != "pcr-rr" {
		// A scenario that opted into the priority discipline's oracle is
		// checked against the selected policy's own invariant instead:
		// strict priority is simply not the contract any other policy
		// makes. Copy-on-substitute keeps the scenario's slice intact.
		if sub := sched.OracleFor(polName); sub != "" {
			for i, n := range names {
				if n == OracleStrictPriority {
					names = append(append([]string{}, names[:i]...), names[i:]...)
					names[i] = sub
					break
				}
			}
		}
	}
	for _, name := range names {
		fn, ok := oracleTable[name]
		if !ok {
			return &Failure{Oracle: name, Msg: "unknown oracle (scenario misconfigured)", Schedule: applied}, ctl.counts
		}
		if err := fn(r); err != nil {
			return &Failure{Oracle: name, Msg: err.Error(), Schedule: applied}, ctl.counts
		}
	}
	if hooks != nil && hooks.Check != nil {
		if err := hooks.Check(w, out); err != nil {
			return &Failure{Oracle: "check", Msg: err.Error(), Schedule: applied}, ctl.counts
		}
	}
	return nil, ctl.counts
}

// Explore searches sc's schedule space until an oracle fails or the
// budget runs out. Phases, in order: the default schedule under every
// seed; every single-decision perturbation of Seeds[0]'s default run
// (preemption bound 1); every pair, ordered shallow-first (bound 2);
// seeded random walks for whatever budget remains. The returned verdict's
// Failure carries the exact schedule that provoked it — pass it to Shrink
// before persisting.
func Explore(sc paradigm.Scenario, opts Options) Verdict {
	opts = opts.withDefaults()
	v := Verdict{Scenario: sc.Name}
	try := func(seed int64, steps []Step, rng *rand.Rand) []int {
		fail, counts := runSchedule(sc, Schedule{Seed: seed, Steps: steps}, opts, rng)
		v.Runs++
		v.Failure = fail
		return counts
	}

	// Phase 1: default schedule under each seed.
	var counts []int
	for i, seed := range opts.Seeds {
		if v.Runs >= opts.Budget {
			return v
		}
		c := try(seed, nil, nil)
		if v.Failure != nil {
			return v
		}
		if i == 0 {
			counts = c
			v.Decisions = len(c)
		}
	}
	seed := opts.Seeds[0]

	// Phase 2: one forced decision (preemption bound 1).
	for seq := range counts {
		for choice := 1; choice < counts[seq]; choice++ {
			if v.Runs >= opts.Budget {
				return v
			}
			if try(seed, []Step{{Seq: int64(seq), Choice: choice}}, nil); v.Failure != nil {
				return v
			}
		}
	}

	// Phase 3: two forced decisions, shallow pairs first. Counts come from
	// the default run; a first perturbation can shift later structure, in
	// which case the stale second step falls back to the default choice.
	for s2 := 1; s2 < len(counts); s2++ {
		for s1 := 0; s1 < s2; s1++ {
			for c1 := 1; c1 < counts[s1]; c1++ {
				for c2 := 1; c2 < counts[s2]; c2++ {
					if v.Runs >= opts.Budget {
						return v
					}
					steps := []Step{{Seq: int64(s1), Choice: c1}, {Seq: int64(s2), Choice: c2}}
					if try(seed, steps, nil); v.Failure != nil {
						return v
					}
				}
			}
		}
	}

	// Phase 4: random walks. Each walk's perturbations are recorded as
	// Steps, so a failing walk replays without its RNG.
	for walk := 0; v.Runs < opts.Budget; walk++ {
		rng := rand.New(rand.NewSource(opts.WalkSeed + int64(walk)*1777))
		if try(opts.Seeds[walk%len(opts.Seeds)], nil, rng); v.Failure != nil {
			return v
		}
	}
	return v
}

// ReplayResult reports one replayed schedule.
type ReplayResult struct {
	Scenario string
	Schedule Schedule
	Failure  *Failure // nil: the schedule no longer fails
}

// Replay decodes a token (see EncodeToken) and reruns that exact
// schedule once.
func Replay(token string) (*ReplayResult, error) {
	name, sched, err := DecodeToken(token)
	if err != nil {
		return nil, err
	}
	sc, ok := paradigm.ScenarioByName(name)
	if !ok {
		return nil, fmt.Errorf("explore: token names unknown scenario %q", name)
	}
	fail, _ := runSchedule(sc, sched, Options{}.withDefaults(), nil)
	return &ReplayResult{Scenario: name, Schedule: sched, Failure: fail}, nil
}
