package explore

import (
	"fmt"
	"strconv"
	"strings"
)

// Replay tokens serialize a scenario name plus a Schedule into one
// copy-pasteable line:
//
//	v1;broken-timeout-wait;seed=1;steps=3.1,7.2
//	v1;ping-pong;seed=2;steps=-
//
// "steps=-" is the default schedule. Tokens are what schedcheck prints on
// a failure and what the regression corpus under testdata/regressions
// stores, so the format is versioned.

// TokenSchema is the replay-token format version. The "v1" prefix on
// every token is this number, and it is the same schema version 1 that
// the repository's JSON outputs carry as a top-level "schema" field
// (see the machine-readable output section of EXPERIMENTS.md).
const TokenSchema = 1

// tokenPrefix is the rendered version field, "v1".
var tokenPrefix = fmt.Sprintf("v%d", TokenSchema)

// EncodeToken renders a replay token.
func EncodeToken(scenario string, s Schedule) string {
	steps := "-"
	if len(s.Steps) > 0 {
		parts := make([]string, len(s.Steps))
		for i, st := range s.Steps {
			parts[i] = fmt.Sprintf("%d.%d", st.Seq, st.Choice)
		}
		steps = strings.Join(parts, ",")
	}
	return fmt.Sprintf("%s;%s;seed=%d;steps=%s", tokenPrefix, scenario, s.Seed, steps)
}

// DecodeToken parses a replay token.
func DecodeToken(tok string) (scenario string, s Schedule, err error) {
	fields := strings.Split(strings.TrimSpace(tok), ";")
	if len(fields) != 4 || fields[0] != tokenPrefix {
		return "", s, fmt.Errorf("explore: malformed token %q (want v1;<scenario>;seed=<n>;steps=...)", tok)
	}
	scenario = fields[1]
	if scenario == "" {
		return "", s, fmt.Errorf("explore: token has empty scenario name")
	}
	seedStr, ok := strings.CutPrefix(fields[2], "seed=")
	if !ok {
		return "", s, fmt.Errorf("explore: token field %q, want seed=<n>", fields[2])
	}
	if s.Seed, err = strconv.ParseInt(seedStr, 10, 64); err != nil {
		return "", s, fmt.Errorf("explore: bad seed in token: %v", err)
	}
	stepsStr, ok := strings.CutPrefix(fields[3], "steps=")
	if !ok {
		return "", s, fmt.Errorf("explore: token field %q, want steps=...", fields[3])
	}
	if stepsStr == "-" {
		return scenario, s, nil
	}
	for _, part := range strings.Split(stepsStr, ",") {
		seqStr, choiceStr, ok := strings.Cut(part, ".")
		if !ok {
			return "", s, fmt.Errorf("explore: bad step %q, want <seq>.<choice>", part)
		}
		var st Step
		if st.Seq, err = strconv.ParseInt(seqStr, 10, 64); err != nil || st.Seq < 0 {
			return "", s, fmt.Errorf("explore: bad step sequence number %q", seqStr)
		}
		if st.Choice, err = strconv.Atoi(choiceStr); err != nil || st.Choice < 1 {
			return "", s, fmt.Errorf("explore: bad step choice %q (must be >= 1)", choiceStr)
		}
		s.Steps = append(s.Steps, st)
	}
	return scenario, s, nil
}
