package cluster

import (
	"encoding/json"
	"runtime"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/vclock"
)

// dur is shorthand for plan-relative times in these tests.
func dur(d vclock.Duration) fault.Dur { return fault.Dur{Duration: d} }

// faultedSpec is the shared resilient scenario: a 4-instance fleet with
// Start pinned so the fault windows provably overlap the ~100ms arrival
// window, one crash-with-restart, one stall, one brownout, and the full
// client policy stack switched on.
func faultedSpec() Spec {
	return Spec{
		Instances: 4,
		Sessions:  16,
		Seed:      7,
		Requests:  2000,
		Rate:      20_000,
		Service:   20 * vclock.Microsecond,
		Start:     200 * vclock.Millisecond,
		Faults: &fault.Plan{
			CrashInstance:   []fault.CrashInstance{{Instance: 1, At: dur(220 * vclock.Millisecond), Restart: dur(30 * vclock.Millisecond)}},
			StallInstance:   []fault.StallInstance{{Instance: 2, From: dur(240 * vclock.Millisecond), Until: dur(255 * vclock.Millisecond)}},
			DegradeInstance: []fault.DegradeInstance{{Instance: 0, Factor: 6, From: dur(260 * vclock.Millisecond), Until: dur(280 * vclock.Millisecond)}},
		},
		ProbeEvery:   2 * vclock.Millisecond,
		Timeout:      10 * vclock.Millisecond,
		Retries:      2,
		RetryBackoff: 500 * vclock.Microsecond,
		RetryBudget:  0.5,
		HedgeAfter:   5 * vclock.Millisecond,
		BreakerAfter: 5,
		DegradedOver: 50 * vclock.Millisecond,
	}
}

func checkInvariant(t *testing.T, s *Summary, label string) {
	t.Helper()
	if got := s.Rejected + s.Shed + s.Failed + s.Degraded + s.Goodput; got != s.Offered {
		t.Errorf("%s: bucket identity broken: rejected %d + shed %d + failed %d + degraded %d + goodput %d = %d, offered %d",
			label, s.Rejected, s.Shed, s.Failed, s.Degraded, s.Goodput, got, s.Offered)
	}
	if s.Completed != s.Goodput+s.Degraded {
		t.Errorf("%s: completed %d != goodput %d + degraded %d", label, s.Completed, s.Goodput, s.Degraded)
	}
	if s.Offered != s.Admitted+s.Rejected {
		t.Errorf("%s: offered %d != admitted %d + rejected %d", label, s.Offered, s.Admitted, s.Rejected)
	}
}

// TestResilientShardDeterminism is the load-bearing test of the PR: the
// full fault + policy stack, under every router, must produce
// byte-identical summaries at any shard count and across reruns.
func TestResilientShardDeterminism(t *testing.T) {
	shards := []int{1, 2, runtime.GOMAXPROCS(0)}
	for _, router := range []string{RouteRoundRobin, RouteLeastLoaded, RouteAffinity} {
		var base string
		for _, sh := range shards {
			spec := faultedSpec()
			spec.Router = router
			spec.Shards = sh
			got := marshal(t, mustRun(t, spec))
			if base == "" {
				base = got
				// Rerun at the same shard count: same bytes again.
				if again := marshal(t, mustRun(t, spec)); again != base {
					t.Errorf("%s: rerun diverged at shards=%d", router, sh)
				}
				continue
			}
			if got != base {
				t.Errorf("%s: shards=%d diverged from shards=%d\n%s\nvs\n%s", router, sh, shards[0], got, base)
			}
		}
	}
}

// TestResilientInvariantEveryPreset pins the accounting identity for
// every world preset under the faulted scenario.
func TestResilientInvariantEveryPreset(t *testing.T) {
	for _, preset := range []string{"w1-echo", "cedar", "gvx"} {
		spec := faultedSpec()
		spec.Preset = preset
		spec.Requests = 400 // cedar/gvx carry background load; keep it quick
		s := mustRun(t, spec)
		checkInvariant(t, s, preset)
		if s.Resilience == nil {
			t.Fatalf("%s: resilient run returned no ResilienceSummary", preset)
		}
		if s.Goodput == 0 {
			t.Errorf("%s: zero goodput under a partial fault", preset)
		}
	}
}

// TestResilientMechanismsFire checks that the faulted scenario actually
// exercises every mechanism it claims to: ejection and re-admission
// with a recovery time, retries, timeouts, and faulted-phase samples.
func TestResilientMechanismsFire(t *testing.T) {
	s := mustRun(t, faultedSpec())
	r := s.Resilience
	if r.Ejections == 0 || r.Readmissions == 0 {
		t.Errorf("health monitor never cycled: ejections %d readmissions %d", r.Ejections, r.Readmissions)
	}
	if r.RecoveryUs <= 0 {
		t.Errorf("no recovery time recorded (got %dus)", r.RecoveryUs)
	}
	if r.Retries == 0 {
		t.Errorf("no retries under a crash+stall scenario")
	}
	if r.Refused+r.Lost+r.Timeouts == 0 {
		t.Errorf("no attempt-level failures recorded: %+v", r)
	}
	phases := map[string]bool{}
	for _, p := range r.Phases {
		phases[p.Phase] = true
	}
	for _, want := range []string{"healthy", "faulted"} {
		if !phases[want] {
			t.Errorf("missing %q phase latency slice (got %v)", want, r.Phases)
		}
	}
	checkInvariant(t, s, "faulted")
}

// TestAffinityRehoming extends the shard-determinism story to the
// failure case the ISSUE names: when an affinity-pinned instance is
// ejected, its sessions re-home to the next healthy instance in ring
// order, deterministically — and come back after recovery.
func TestAffinityRehoming(t *testing.T) {
	spec := faultedSpec()
	spec.Router = RouteAffinity
	faulted := mustRun(t, spec)

	baseline := faultedSpec()
	baseline.Router = RouteAffinity
	baseline.Faults = nil
	// Keep the resilient path (same driver, same draw order) but no
	// faults: only the fault plan differs between the two runs.
	base := mustRun(t, baseline)

	// Instance 1 crashes mid-window: pinned traffic must have shifted
	// off it relative to the fault-free run...
	if faulted.PerInstance[1].Completed >= base.PerInstance[1].Completed {
		t.Errorf("crashed home completed %d >= fault-free %d; no re-homing visible",
			faulted.PerInstance[1].Completed, base.PerInstance[1].Completed)
	}
	// ...while the fleet as a whole kept serving: far more than the
	// crashed instance's traffic survived.
	served := faulted.Goodput + faulted.Degraded
	if served < base.Completed*8/10 {
		t.Errorf("fleet served only %d of %d under failover", served, base.Completed)
	}
	checkInvariant(t, faulted, "affinity-faulted")
	checkInvariant(t, base, "affinity-baseline")
}

// TestLegacyPathAccounting pins the fire-and-forget path's view of the
// new buckets: goodput is completed, nothing is shed or degraded, and
// no ResilienceSummary appears (so existing JSON output only grows
// fields, never changes meaning).
func TestLegacyPathAccounting(t *testing.T) {
	s := mustRun(t, smallSpec())
	if s.Resilience != nil {
		t.Fatalf("legacy run grew a ResilienceSummary")
	}
	if s.Goodput != s.Completed || s.Shed != 0 || s.Degraded != 0 {
		t.Errorf("legacy buckets wrong: goodput %d completed %d shed %d degraded %d",
			s.Goodput, s.Completed, s.Shed, s.Degraded)
	}
	checkInvariant(t, s, "legacy")
}

// TestRetryBudgetSuppression: same overloaded crash scenario with and
// without a budget. The budget must deny retries, and issue strictly
// fewer than the unmetered run.
func TestRetryBudgetSuppression(t *testing.T) {
	mk := func(budget float64) Spec {
		spec := faultedSpec()
		// One instance dies for good, and nothing else protects the
		// fleet: no health ejection, no breaker, no hedging. Every rr
		// dispatch to the corpse refuses and turns into a retry — the
		// storm the budget exists to meter.
		spec.Faults = &fault.Plan{
			CrashInstance: []fault.CrashInstance{{Instance: 1, At: dur(220 * vclock.Millisecond)}},
		}
		spec.ProbeEvery = 0
		spec.BreakerAfter = 0
		spec.HedgeAfter = 0
		spec.Retries = 3
		spec.RetryBudget = budget
		return spec
	}
	unmetered := mustRun(t, mk(0)).Resilience
	metered := mustRun(t, mk(0.05)).Resilience
	if metered.RetriesDenied == 0 {
		t.Errorf("5%% budget denied nothing (issued %d)", metered.Retries)
	}
	if metered.Retries >= unmetered.Retries {
		t.Errorf("budgeted run issued %d retries, unmetered %d — no suppression", metered.Retries, unmetered.Retries)
	}
}

// TestHedgingShavesTail: a brownout on one instance with hedging on
// should win some hedges; the same scenario without hedging must show a
// worse pinned p99 for requests born in the faulted phase.
func TestHedgingShavesTail(t *testing.T) {
	mk := func(hedge vclock.Duration) Spec {
		spec := faultedSpec()
		spec.Faults = &fault.Plan{
			DegradeInstance: []fault.DegradeInstance{{Instance: 0, Factor: 400, From: dur(210 * vclock.Millisecond), Until: dur(290 * vclock.Millisecond)}},
		}
		spec.Timeout = 0
		spec.Retries = 0
		spec.BreakerAfter = 0
		spec.HedgeAfter = hedge
		return spec
	}
	faultedP99 := func(s *Summary) int64 {
		for _, p := range s.Resilience.Phases {
			if p.Phase == "faulted" {
				return p.P99Us
			}
		}
		t.Fatalf("no faulted phase in %+v", s.Resilience.Phases)
		return 0
	}
	hedged := mustRun(t, mk(2*vclock.Millisecond))
	bare := mustRun(t, mk(0))
	if hedged.Resilience.Hedges == 0 || hedged.Resilience.HedgeWins == 0 {
		t.Fatalf("hedging never fired/won: %+v", hedged.Resilience)
	}
	if hp, bp := faultedP99(hedged), faultedP99(bare); hp >= bp {
		t.Errorf("hedged faulted-phase p99 %dus >= unhedged %dus", hp, bp)
	}
	checkInvariant(t, hedged, "hedged")
}

// TestBreakerStateMachine drives the breaker directly through its
// closed → open → half-open → closed/open cycle.
func TestBreakerStateMachine(t *testing.T) {
	b := breaker{after: 3, openFor: 10 * vclock.Millisecond}
	t0 := vclock.Time(0).Add(vclock.Second)
	for i := 0; i < 3; i++ {
		if !b.allow(t0) {
			t.Fatalf("closed breaker refused dispatch %d", i)
		}
		b.onFailure(t0)
	}
	if b.state != bkOpen || b.opens != 1 {
		t.Fatalf("not open after 3 failures: state %v opens %d", b.state, b.opens)
	}
	if b.allow(t0.Add(vclock.Millisecond)) {
		t.Fatalf("open breaker allowed a dispatch inside openFor")
	}
	if b.fastFails != 1 {
		t.Fatalf("fast-fail not counted: %d", b.fastFails)
	}
	th := t0.Add(11 * vclock.Millisecond)
	if !b.allow(th) || b.state != bkHalfOpen {
		t.Fatalf("breaker did not half-open after openFor")
	}
	if b.allow(th) {
		t.Fatalf("half-open admitted a second concurrent trial")
	}
	b.onFailure(th)
	if b.state != bkOpen || b.opens != 2 {
		t.Fatalf("failed trial did not re-open: state %v opens %d", b.state, b.opens)
	}
	th2 := th.Add(11 * vclock.Millisecond)
	if !b.allow(th2) {
		t.Fatalf("no trial after second openFor")
	}
	b.onSuccess()
	if b.state != bkClosed || !b.allow(th2) {
		t.Fatalf("successful trial did not close the breaker")
	}
	// An abandoned trial must release the slot, not wedge the breaker.
	b.onFailure(th2)
	b.onFailure(th2)
	b.onFailure(th2)
	th3 := th2.Add(11 * vclock.Millisecond)
	if !b.allow(th3) {
		t.Fatalf("no trial after reopen")
	}
	b.abandon()
	if !b.allow(th3) {
		t.Fatalf("abandoned trial slot not released")
	}
	// Disabled breaker is transparent.
	off := breaker{}
	off.onFailure(t0)
	off.onFailure(t0)
	if !off.allow(t0) || off.opens != 0 {
		t.Fatalf("disabled breaker interfered")
	}
}

// TestHealthMonitorThresholds drives the monitor through an eject /
// readmit cycle and checks the consecutive-threshold hysteresis and the
// recovery clock.
func TestHealthMonitorThresholds(t *testing.T) {
	m := newHealthMonitor(2, 3, 2)
	tick := vclock.Time(0).Add(vclock.Second)
	step := func(alive0 bool) {
		m.probe(tick, func(i int) bool {
			if i == 0 {
				return alive0
			}
			return true
		})
		tick = tick.Add(vclock.Millisecond)
	}
	step(false)
	step(false)
	if !m.isHealthy(0) {
		t.Fatalf("ejected before failAfter consecutive failures")
	}
	step(false)
	if m.isHealthy(0) || m.ejections != 1 {
		t.Fatalf("not ejected after 3 consecutive failures")
	}
	step(true)
	if m.isHealthy(0) {
		t.Fatalf("readmitted before recoverAfter consecutive successes")
	}
	step(true)
	if !m.isHealthy(0) || m.readmissions != 1 {
		t.Fatalf("not readmitted after 2 consecutive successes")
	}
	if m.ttrMax != 2*vclock.Millisecond {
		t.Fatalf("recovery time = %v, want 2ms", m.ttrMax)
	}
	if m.healthyCount() != 2 {
		t.Fatalf("healthyCount = %d", m.healthyCount())
	}
	// failover ring-scan: with 0 ejected, choice 0 re-homes to 1.
	m.inst[0].healthy = false
	if got := m.failover(0, 2); got != 1 {
		t.Fatalf("failover(0) = %d, want 1", got)
	}
	m.inst[1].healthy = false
	if got := m.failover(0, 2); got != -1 {
		t.Fatalf("failover with no healthy instance = %d, want -1", got)
	}
	var nilMon *healthMonitor
	if !nilMon.isHealthy(3) || nilMon.failover(2, 4) != 2 {
		t.Fatalf("nil monitor must be transparent")
	}
}

// TestCompileFaultsScope pins compilation errors and the seeded
// AnyInstance resolution.
func TestCompileFaultsScope(t *testing.T) {
	if _, err := compileFaults(&fault.Plan{LostNotify: []fault.LostNotify{{CV: "x"}}}, 2, 1); err == nil ||
		!strings.Contains(err.Error(), "thread-scoped") {
		t.Errorf("thread-scoped plan accepted by cluster compile: %v", err)
	}
	if _, err := compileFaults(&fault.Plan{CrashInstance: []fault.CrashInstance{{Instance: 5, At: dur(0)}}}, 4, 1); err == nil ||
		!strings.Contains(err.Error(), "instance 5") {
		t.Errorf("out-of-range instance accepted: %v", err)
	}
	// AnyInstance picks are a pure function of the seed.
	plan := &fault.Plan{CrashInstance: []fault.CrashInstance{
		{Instance: fault.AnyInstance, At: dur(vclock.Second)},
		{Instance: fault.AnyInstance, At: dur(2 * vclock.Second)},
	}}
	pickOf := func(seed int64) []int {
		f, err := compileFaults(plan, 8, seed)
		if err != nil {
			t.Fatal(err)
		}
		var got []int
		for i := range f.inst {
			for range f.inst[i].crashes {
				got = append(got, i)
			}
		}
		return got
	}
	a, b := pickOf(42), pickOf(42)
	if len(a) != 2 || len(b) != 2 || a[0] != b[0] || a[1] != b[1] {
		t.Errorf("AnyInstance picks not deterministic: %v vs %v", a, b)
	}
	// Phase classification around the span.
	f, err := compileFaults(plan, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	if f.phaseIdx(vclock.Time(0).Add(vclock.Millisecond)) != 0 {
		t.Errorf("pre-span time not healthy")
	}
	if f.phaseIdx(vclock.Time(0).Add(vclock.Second)) != 1 {
		t.Errorf("in-span time not faulted (crash without restart keeps the span open)")
	}
	empty, _ := compileFaults(nil, 4, 0)
	if !empty.empty() || empty.phaseIdx(vclock.Time(0).Add(3600*vclock.Second)) != 0 {
		t.Errorf("nil plan compiled non-empty or non-healthy")
	}
}

// TestResilientSpecValidation covers the new knob validation.
func TestResilientSpecValidation(t *testing.T) {
	bad := []func(*Spec){
		func(s *Spec) { s.Timeout = -1 },
		func(s *Spec) { s.ProbeEvery = -1 },
		func(s *Spec) { s.Retries = -1 },
		func(s *Spec) { s.RetryBudget = -0.5 },
		func(s *Spec) { s.BreakerAfter = -2 },
		func(s *Spec) { s.HedgeAfter = -1 },
		func(s *Spec) { s.DegradedOver = -1 },
	}
	for i, mut := range bad {
		spec := smallSpec()
		mut(&spec)
		if _, err := New(spec); err == nil {
			t.Errorf("bad resilient spec %d accepted", i)
		}
	}
	// A thread-scoped plan must fail at New, not at Run.
	spec := smallSpec()
	spec.Faults = &fault.Plan{CrashThread: []fault.CrashThread{{Thread: "x", At: dur(vclock.Second)}}}
	if _, err := New(spec); err == nil || !strings.Contains(err.Error(), "thread-scoped") {
		t.Errorf("thread-scoped plan at New: err = %v", err)
	}
}

// TestResilienceSummaryJSONStable pins the new summary fields' JSON
// names — they are part of the bench artifact schema.
func TestResilienceSummaryJSONStable(t *testing.T) {
	s := mustRun(t, faultedSpec())
	raw := marshal(t, s)
	var m map[string]any
	if err := json.Unmarshal([]byte(raw), &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"goodput", "degraded", "shed", "failed", "resilience"} {
		if _, ok := m[key]; !ok {
			t.Errorf("summary JSON missing %q", key)
		}
	}
	res := m["resilience"].(map[string]any)
	for _, key := range []string{"timeouts", "retries", "retries_denied", "hedges", "hedge_wins",
		"refused", "lost", "breaker_opens", "breaker_fast_fails", "ejections", "readmissions",
		"recovery_us", "phases"} {
		if _, ok := res[key]; !ok {
			t.Errorf("resilience JSON missing %q", key)
		}
	}
}
