package cluster

import (
	"repro/internal/vclock"
)

// The health monitor is the fleet's failure detector: a virtual-time
// probe loop that ejects instances from the routing rotation after
// FailAfter consecutive failed probes and re-admits them after
// RecoverAfter consecutive successes. A probe models the usual
// shallow health check — it observes "is the instance accepting and
// serving right now" (crash or stall), not service quality, which is
// exactly why the D4 brownout slips past it.
//
// Everything is pure state driven from the cluster driver at
// deterministic probe instants, so ejection and re-admission times are
// byte-identical across reruns and Spec.Shards values.

// healthState is one instance's detector state.
type healthState struct {
	healthy    bool
	consecFail int
	consecOK   int
	ejectedAt  vclock.Time
}

// healthMonitor tracks the whole fleet.
type healthMonitor struct {
	failAfter    int
	recoverAfter int
	inst         []healthState

	ejections    int64
	readmissions int64
	ttrMax       vclock.Duration // slowest eject→readmit cycle
}

func newHealthMonitor(n, failAfter, recoverAfter int) *healthMonitor {
	m := &healthMonitor{failAfter: failAfter, recoverAfter: recoverAfter,
		inst: make([]healthState, n)}
	for i := range m.inst {
		m.inst[i].healthy = true
	}
	return m
}

// probe runs one probe round at virtual time now. alive(i) is the probe
// outcome for instance i — computed by the driver from the fault
// timeline (down or stalled ⇒ the probe times out).
func (m *healthMonitor) probe(now vclock.Time, alive func(int) bool) {
	for i := range m.inst {
		st := &m.inst[i]
		if alive(i) {
			st.consecFail, st.consecOK = 0, st.consecOK+1
			if !st.healthy && st.consecOK >= m.recoverAfter {
				st.healthy = true
				m.readmissions++
				if ttr := now.Sub(st.ejectedAt); ttr > m.ttrMax {
					m.ttrMax = ttr
				}
			}
			continue
		}
		st.consecOK, st.consecFail = 0, st.consecFail+1
		if st.healthy && st.consecFail >= m.failAfter {
			st.healthy = false
			st.ejectedAt = now
			m.ejections++
		}
	}
}

// healthyCount returns the number of instances in rotation.
func (m *healthMonitor) healthyCount() int {
	n := 0
	for i := range m.inst {
		if m.inst[i].healthy {
			n++
		}
	}
	return n
}

// isHealthy reports whether instance i is in rotation. A nil monitor
// (health-aware routing disabled) treats every instance as healthy.
func (m *healthMonitor) isHealthy(i int) bool {
	return m == nil || m.inst[i].healthy
}

// failover returns the routing target after health ejection: the base
// router's choice if it is in rotation, else the next healthy instance
// in ring order — which is also how affinity sessions re-home: user u's
// pinned instance (u mod N) degrades deterministically to the first
// healthy instance at or after it in the ring, and snaps back the probe
// round its home is re-admitted. Returns -1 when no instance is healthy.
func (m *healthMonitor) failover(choice, n int) int {
	if m == nil {
		return choice
	}
	for d := 0; d < n; d++ {
		if j := (choice + d) % n; m.inst[j].healthy {
			return j
		}
	}
	return -1
}
